// The go vet driver protocol: `go vet -vettool=entitylint` invokes the
// tool once per package with a JSON config file describing the unit —
// source files, the import map, and the export-data file of every
// dependency — and expects findings on stderr with exit status 2.
// This mirrors golang.org/x/tools/go/analysis/unitchecker on top of
// the internal/analysis framework.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"

	"entityid/internal/analysis"
)

// vetConfig is the unit description the go command writes for vet
// tools (a subset; unused fields are ignored by the decoder).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion answers the go command's -V=full probe. The build ID
// must change when the tool's behavior does, so hash the executable.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("entitylint version devel buildID=%x\n", h.Sum(nil)[:16])
}

// unitcheck analyzes one vet protocol unit; the return value is the
// process exit status.
func unitcheck(cfgPath string, enabled []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "entitylint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "entitylint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts output file to exist even
	// though this suite exchanges no facts between units.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "entitylint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "entitylint:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	var terrs []error
	tconf := types.Config{
		Importer: imp,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, _ := tconf.Check(cfg.ImportPath, fset, files, info)
	if len(terrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, e := range terrs {
			fmt.Fprintln(os.Stderr, "entitylint:", e)
		}
		return 1
	}

	sup := analysis.NewSuppressor(fset, files)
	var findings []string
	for _, a := range enabled {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				if !sup.Suppressed(a.Name, d.Pos) {
					findings = append(findings, fmt.Sprintf("%s: %s [%s]", fset.Position(d.Pos), d.Message, a.Name))
				}
			},
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "entitylint: %s: %v\n", a.Name, err)
			return 1
		}
	}
	if len(findings) > 0 {
		sort.Strings(findings)
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		return 2
	}
	return 0
}

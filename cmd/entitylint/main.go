// Command entitylint is the hub's multichecker: it runs the
// internal/analysis suite (lockorder, walfirst, hotpath, errwrapcheck,
// boundedcard) over Go packages.
//
// Standalone:
//
//	entitylint ./...                 # analyze package patterns
//	entitylint -disable hotpath ./...
//	entitylint -list                 # describe the analyzers
//
// As a vet tool (one analyzer protocol unit at a time, driven by the
// go command):
//
//	go vet -vettool=$(which entitylint) ./...
//
// Exit status: 0 clean, 1 usage or load failure, 2 findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"entityid/internal/analysis"
	"entityid/internal/analysis/analysistest"
	"entityid/internal/analysis/boundedcard"
	"entityid/internal/analysis/errwrapcheck"
	"entityid/internal/analysis/hotpath"
	"entityid/internal/analysis/load"
	"entityid/internal/analysis/lockorder"
	"entityid/internal/analysis/walfirst"
)

// suite is every analyzer the multichecker runs, in report order.
var suite = []*analysis.Analyzer{
	boundedcard.Analyzer,
	errwrapcheck.Analyzer,
	hotpath.Analyzer,
	lockorder.Analyzer,
	walfirst.Analyzer,
}

func main() {
	var (
		disable    = flag.String("disable", "", "comma-separated analyzer names to skip")
		list       = flag.Bool("list", false, "describe the analyzers and exit")
		versionV   = flag.String("V", "", "version flag used by the go vet protocol")
		printFlags = flag.Bool("flags", false, "print the tool's flags as JSON (go vet protocol)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: entitylint [-disable names] [packages]\n       go vet -vettool=$(which entitylint) [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *versionV != "" {
		// The go command probes vet tools with -V=full and expects a
		// "name version" line it can cache on.
		printVersion()
		return
	}
	if *printFlags {
		// The go command probes vet tools with -flags to learn which
		// options it may forward from the vet command line.
		fmt.Println(`[{"Name":"disable","Bool":false,"Usage":"comma-separated analyzer names to skip"}]`)
		return
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	enabled := enabledAnalyzers(*disable)

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], enabled))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, enabled))
}

func enabledAnalyzers(disable string) []*analysis.Analyzer {
	skip := map[string]bool{}
	for _, name := range strings.Split(disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			skip[name] = true
		}
	}
	var out []*analysis.Analyzer
	for _, a := range suite {
		if !skip[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// standalone loads the patterns itself and runs every analyzer over
// every package.
func standalone(patterns []string, enabled []*analysis.Analyzer) int {
	pkgs, err := load.Module(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "entitylint:", err)
		return 1
	}
	exit := 0
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			for _, e := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "entitylint: %s: %v\n", p.PkgPath, e)
			}
			exit = 1
			continue
		}
		for _, a := range enabled {
			findings, err := analysistest.Diagnose(a, p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "entitylint: %s: %s: %v\n", p.PkgPath, a.Name, err)
				exit = 1
				continue
			}
			for _, f := range findings {
				fmt.Println(f)
				exit = 2
			}
		}
	}
	return exit
}

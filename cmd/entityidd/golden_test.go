package main

// Golden-file tests for the serving contract: a fixed request script
// runs against a fresh server and every named response — status,
// content type, body — must match its checked-in golden file, so any
// refactor that changes the wire format is caught in review. The
// responses are fully deterministic (no timestamps, sorted JSON keys,
// deterministic cluster enumeration).
//
// Regenerate with:
//
//	go test ./cmd/entityidd -run TestServerGolden -update-golden

import (
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"entityid"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/*.golden.json")

// goldenStep is one scripted request; a named step is pinned to
// testdata/<name>.golden.json, an unnamed one is setup.
type goldenStep struct {
	name   string
	method string
	path   string
	body   string
}

var goldenScript = []goldenStep{
	{"register", "POST", "/v1/sources",
		`{"name":"zagat","attrs":[{"name":"name"},{"name":"street"},{"name":"cuisine"},{"name":"phone"}],"key":["name","street"]}`},
	{"", "POST", "/v1/sources",
		`{"name":"michelin","attrs":[{"name":"name"},{"name":"city"},{"name":"speciality"},{"name":"phone"}],"key":["name","city"]}`},
	{"register_conflict", "POST", "/v1/sources", `{"name":"zagat","attrs":[{"name":"name"}]}`},
	{"link", "POST", "/v1/links",
		`{"left":"zagat","right":"michelin","extkey":["name","cuisine"],
		  "ilfds":["speciality=hunan -> cuisine=chinese","speciality=mughalai -> cuisine=indian"],
		  "attrs":[{"name":"name","left":"name","right":"name"},{"name":"street","left":"street"},
		           {"name":"city","right":"city"},{"name":"cuisine","left":"cuisine"},
		           {"name":"speciality","right":"speciality"},{"name":"phone","left":"phone","right":"phone"}]}`},
	{"link_unknown_source", "POST", "/v1/links",
		`{"left":"zagat","right":"nowhere","extkey":["name"],"attrs":[{"name":"name","left":"name","right":"name"}]}`},
	// The zagat tuples commit in their own batch before the michelin
	// lines whose "matched" output is pinned: IngestBatch's worker pool
	// makes cross-source match output order-sensitive within one batch.
	{"insert", "POST", "/v1/insert", strings.Join([]string{
		`{"source":"zagat","tuple":["villagewok","wash ave","chinese","612-0001"]}`,
		`{"source":"zagat","tuple":["goldenleaf","lake st","chinese","612-0002"]}`,
	}, "\n")},
	{"insert_cross", "POST", "/v1/insert", strings.Join([]string{
		`{"source":"michelin","tuple":["villagewok","minneapolis","hunan","612-0001"]}`,
		`{"source":"michelin","tuple":["wrong","arity"]}`,
		`{"source":"michelin","tuple":["anjuman","st paul","mughalai","612-0004"]}`,
	}, "\n")},
	// The §3.2 uniqueness rejection: a second michelin villagewok would
	// pair the same zagat tuple twice.
	{"reject", "POST", "/v1/insert",
		`{"source":"michelin","tuple":["villagewok","st paul","hunan","612-0009"]}`},
	{"cluster", "GET", "/v1/cluster?source=zagat&key=villagewok&key=wash+ave&merge=coalesce", ""},
	{"clusters", "GET", "/v1/clusters?merge=coalesce", ""},
	// Pagination: limit truncates with a next_cursor line, the cursor
	// resumes after the named cluster, offset skips, and a malformed
	// cursor is rejected before any NDJSON is written.
	{"clusters_page1", "GET", "/v1/clusters?limit=2", ""},
	{"clusters_page2", "GET", "/v1/clusters?limit=2&cursor=zagat/1", ""},
	{"clusters_offset", "GET", "/v1/clusters?offset=1&limit=1", ""},
	{"clusters_bad_cursor", "GET", "/v1/clusters?cursor=nope", ""},
	{"clusters_bad_limit", "GET", "/v1/clusters?limit=-1", ""},
	{"stats", "GET", "/v1/stats", ""},
}

// goldenResponse is the pinned shape of one response.
type goldenResponse struct {
	Status      int    `json:"status"`
	ContentType string `json:"content_type"`
	Body        any    `json:"body"`
}

// scrubRequestID replaces the per-request random request_id with a
// fixed placeholder so error bodies stay pinnable.
func scrubRequestID(v any) any {
	switch t := v.(type) {
	case map[string]any:
		for k, e := range t {
			if k == "request_id" {
				t[k] = "REDACTED"
			} else {
				t[k] = scrubRequestID(e)
			}
		}
	case []any:
		for i, e := range t {
			t[i] = scrubRequestID(e)
		}
	}
	return v
}

func TestServerGolden(t *testing.T) {
	srv := newServer()
	for _, st := range goldenScript {
		req := httptest.NewRequest(st.method, st.path, strings.NewReader(st.body))
		rw := httptest.NewRecorder()
		srv.ServeHTTP(rw, req)
		if st.name == "" {
			if rw.Code >= 400 {
				t.Fatalf("setup %s %s: %d %s", st.method, st.path, rw.Code, rw.Body.String())
			}
			continue
		}
		got := goldenResponse{Status: rw.Code, ContentType: rw.Header().Get("Content-Type")}
		raw := rw.Body.String()
		if strings.Contains(got.ContentType, "ndjson") {
			var lines []any
			for _, line := range strings.Split(raw, "\n") {
				if strings.TrimSpace(line) == "" {
					continue
				}
				var v any
				if err := json.Unmarshal([]byte(line), &v); err != nil {
					t.Fatalf("%s: bad NDJSON line %q: %v", st.name, line, err)
				}
				lines = append(lines, v)
			}
			got.Body = scrubRequestID(lines)
		} else {
			var v any
			if err := json.Unmarshal([]byte(raw), &v); err != nil {
				t.Fatalf("%s: bad JSON body %q: %v", st.name, raw, err)
			}
			got.Body = scrubRequestID(v)
		}
		rendered, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		rendered = append(rendered, '\n')

		path := filepath.Join("testdata", st.name+".golden.json")
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, rendered, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update-golden)", st.name, err)
		}
		if string(want) != string(rendered) {
			t.Errorf("%s: response drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
				st.name, path, rendered, want)
		}
	}
}

// TestServerDurableRecovery drives the serving contract across a
// restart: register/link/insert over HTTP against a durable hub,
// reopen the data directory, and the recovered server must parse
// typed keys (registry rebuilt from the recovered schemas), serve the
// same clusters, and keep accepting inserts.
func TestServerDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	boot := func() *server {
		h, err := entityid.OpenHub(dir, entityid.WithSnapshotEvery(3))
		if err != nil {
			t.Fatal(err)
		}
		s, err := newServerFor(h)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	srv := boot()
	for _, st := range goldenScript {
		if st.name == "register_conflict" || st.name == "link_unknown_source" {
			continue
		}
		req := httptest.NewRequest(st.method, st.path, strings.NewReader(st.body))
		rw := httptest.NewRecorder()
		srv.ServeHTTP(rw, req)
		if rw.Code >= 500 {
			t.Fatalf("%s %s: %d %s", st.method, st.path, rw.Code, rw.Body.String())
		}
	}
	if err := srv.hub.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := boot()
	defer srv2.hub.Close()
	code, cl := do(t, srv2, "GET", "/v1/cluster?source=zagat&key=villagewok&key=wash+ave&merge=coalesce", "")
	if code != 200 {
		t.Fatalf("recovered cluster lookup: %d %v", code, cl)
	}
	if got := len(cl["members"].([]any)); got != 2 {
		t.Fatalf("recovered cluster has %d members, want 2", got)
	}
	if cl["merged"].(map[string]any)["speciality"] != "hunan" {
		t.Fatalf("recovered merge: %v", cl["merged"])
	}
	_, results := ndjson(t, srv2, "POST", "/v1/insert",
		`{"source":"michelin","tuple":["goldenleaf","minneapolis","hunan","612-0002"]}`)
	if len(results) != 1 || results[0]["ok"] != true {
		t.Fatalf("post-recovery insert: %v", results)
	}
	code, stats := do(t, srv2, "GET", "/v1/stats", "")
	if code != 200 || stats["tuples"].(float64) != 5 || stats["matches"].(float64) != 2 {
		t.Fatalf("post-recovery stats: %d %v", code, stats)
	}
}

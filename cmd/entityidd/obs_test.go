package main

// Observability-plane tests for the front-end: /metrics conformance
// and core families, request-ID plumbing (honored, generated, echoed
// in error bodies), /readyz uptime and snapshot age, the slow-op
// endpoint, and the debug listener (pprof opt-in only, no goroutines
// left behind).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"

	"entityid"
)

// Prometheus text-format line grammar, mirrored from the obs package's
// conformance checker (test helpers are not importable across
// packages): HELP/TYPE comments and samples with optional labels.
var (
	promHelpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})? (\+Inf|-?[0-9].*)$`)
)

// checkPromText validates every line of an exposition and returns the
// TYPE-announced families.
func checkPromText(t *testing.T, text string) map[string]string {
	t.Helper()
	if text == "" || !strings.HasSuffix(text, "\n") {
		t.Fatalf("exposition must end with a newline")
	}
	types := map[string]string{}
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !promHelpRe.MatchString(line) {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := promTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			types[m[1]] = m[2]
		default:
			if !promSampleRe.MatchString(line) {
				t.Fatalf("line %d: malformed sample: %q", ln+1, line)
			}
		}
	}
	return types
}

func TestMetricsEndpoint(t *testing.T) {
	srv := newServer()
	srv.logf = t.Logf
	// Drive enough traffic that the core families have samples.
	code, _ := do(t, srv, "POST", "/v1/sources",
		`{"name":"ma","attrs":[{"name":"name"},{"name":"phone"}],"key":["name"]}`)
	if code != 201 {
		t.Fatalf("source: %d", code)
	}
	ndjson(t, srv, "POST", "/v1/insert", `{"source":"ma","tuple":["x","1"]}`)
	do(t, srv, "GET", "/v1/stats", "")

	req := httptest.NewRequest("GET", "/metrics", nil)
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	if rw.Code != 200 {
		t.Fatalf("/metrics: %d", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	types := checkPromText(t, rw.Body.String())
	for family, typ := range map[string]string{
		"http_requests_total":       "counter",
		"http_request_seconds":      "histogram",
		"http_inflight":             "gauge",
		"process_uptime_seconds":    "gauge",
		"hub_ingest_total":          "counter",
		"hub_ingest_commit_seconds": "histogram",
		"hub_ingest_stage_seconds":  "histogram",
		"hub_health_state":          "gauge",
		"admit_inflight":            "gauge",
		"admit_admitted_total":      "counter",
		"admit_shed_total":          "counter",
		"wal_append_total":          "counter",
		"wal_fsync_seconds":         "histogram",
	} {
		if types[family] != typ {
			t.Errorf("family %s: type %q, want %q", family, types[family], typ)
		}
	}
	if !strings.Contains(rw.Body.String(), `http_requests_total{route="POST /v1/sources",class="2xx"}`) {
		t.Error("per-route sample missing")
	}
}

func TestRequestIDGenerated(t *testing.T) {
	srv := newServer()
	srv.logf = t.Logf
	req := httptest.NewRequest("GET", "/v1/cluster", nil) // missing params -> 400
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	rid := rw.Header().Get("X-Request-ID")
	if len(rid) != 16 {
		t.Fatalf("generated request ID %q, want 16 hex chars", rid)
	}
	var body map[string]string
	if err := json.Unmarshal(rw.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["request_id"] != rid {
		t.Fatalf("error body request_id %q != header %q", body["request_id"], rid)
	}
	if body["error"] == "" {
		t.Fatal("error body lost its error field")
	}
}

func TestRequestIDHonored(t *testing.T) {
	srv := newServer()
	var logged []string
	srv.logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	req := httptest.NewRequest("GET", "/v1/stats", nil)
	req.Header.Set("X-Request-ID", "upstream-trace-7")
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	if got := rw.Header().Get("X-Request-ID"); got != "upstream-trace-7" {
		t.Fatalf("incoming request ID not honored: %q", got)
	}
	found := false
	for _, line := range logged {
		if strings.Contains(line, "request_id=upstream-trace-7") && strings.Contains(line, "status=200") {
			found = true
		}
	}
	if !found {
		t.Fatalf("access log missing the honored request ID: %v", logged)
	}
}

func TestPanicRecoveryLogsRequestID(t *testing.T) {
	srv := newServer()
	var logged []string
	srv.logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	req := httptest.NewRequest("GET", "/boom", nil)
	req.Header.Set("X-Request-ID", "boom-42")
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	if rw.Code != 500 {
		t.Fatalf("panic answered %d, want 500", rw.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rw.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["request_id"] != "boom-42" {
		t.Fatalf("panic error body request_id %q", body["request_id"])
	}
	found := false
	for _, line := range logged {
		if strings.Contains(line, "panic") && strings.Contains(line, "request_id=boom-42") {
			found = true
		}
	}
	if !found {
		t.Fatalf("panic log missing request ID: %v", logged)
	}
}

func TestReadyzUptimeAndSnapshotAge(t *testing.T) {
	srv := newServer()
	srv.logf = t.Logf
	code, body := do(t, srv, "GET", "/readyz", "")
	if code != 200 {
		t.Fatalf("/readyz: %d %v", code, body)
	}
	up, ok := body["uptime_seconds"].(float64)
	if !ok || up < 0 {
		t.Fatalf("uptime_seconds = %v", body["uptime_seconds"])
	}
	if _, present := body["last_snapshot_age_seconds"]; present {
		t.Fatal("memory-only hub reported a snapshot age")
	}
	// With a snapshot on record, its age and watermark appear.
	srv.lastSnapshot = func() entityid.HubSnapshotStats {
		return entityid.HubSnapshotStats{Watermark: 42, Taken: time.Now().Add(-90 * time.Second)}
	}
	_, body = do(t, srv, "GET", "/readyz", "")
	age, ok := body["last_snapshot_age_seconds"].(float64)
	if !ok || age < 89 || age > 200 {
		t.Fatalf("last_snapshot_age_seconds = %v", body["last_snapshot_age_seconds"])
	}
	if wm := body["last_snapshot_watermark"].(float64); wm != 42 {
		t.Fatalf("last_snapshot_watermark = %v", wm)
	}
}

func TestSlowOpEndpoint(t *testing.T) {
	srv := newServer()
	srv.logf = t.Logf
	code, body := do(t, srv, "GET", "/debug/slow", "")
	if code != 200 {
		t.Fatalf("/debug/slow: %d", code)
	}
	if _, ok := body["threshold_ns"].(float64); !ok {
		t.Fatalf("threshold_ns missing: %v", body)
	}
	if _, ok := body["recorded"].(float64); !ok {
		t.Fatalf("recorded missing: %v", body)
	}
}

// TestPprofNotOnMainPort pins the security posture: profiling handlers
// are only reachable through the opt-in debug listener.
func TestPprofNotOnMainPort(t *testing.T) {
	srv := newServer()
	srv.logf = t.Logf
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	if rw.Code != 404 {
		t.Fatalf("/debug/pprof/ on the main mux answered %d, want 404", rw.Code)
	}
}

// TestDebugListener starts the real debug server, scrapes it over TCP,
// and verifies shutdown leaves no goroutines behind.
func TestDebugListener(t *testing.T) {
	before := runtime.NumGoroutine()
	dbg, addr, err := startDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()
	for _, path := range []string{"/metrics", "/debug/slow", "/debug/pprof/"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, b)
		}
		if path == "/metrics" {
			checkPromText(t, string(b))
		}
	}
	// Drop the client side's keep-alive conns first: their handler
	// goroutines belong to the client pool, not the debug server.
	http.DefaultClient.CloseIdleConnections()
	if err := dbg.Close(); err != nil {
		t.Fatal(err)
	}
	// The accept loop and any keep-alive conns must wind down.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines grew after debug listener shutdown: %d -> %d", before, runtime.NumGoroutine())
}

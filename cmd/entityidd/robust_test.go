package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"entityid"
	"entityid/internal/admit"
)

// TestReadyzTransitions drives /readyz through every announced status:
// 200 ready on a healthy hub, 503 with the degradation cause when the
// hub is read-only, 503 draining once shutdown starts.
func TestReadyzTransitions(t *testing.T) {
	srv := newServer()

	code, out := do(t, srv, "GET", "/readyz", "")
	if code != http.StatusOK || out["status"] != "ready" || out["hub"] != "ready" {
		t.Fatalf("healthy readyz = %d %v, want 200 ready", code, out)
	}

	since := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	srv.health = func() entityid.HubHealth {
		return entityid.HubHealth{State: entityid.HubDegraded, Cause: "write wal: no space left on device", Since: since, Probes: 3}
	}
	code, out = do(t, srv, "GET", "/readyz", "")
	if code != http.StatusServiceUnavailable || out["status"] != "degraded" {
		t.Fatalf("degraded readyz = %d %v, want 503 degraded", code, out)
	}
	if out["cause"] != "write wal: no space left on device" || out["since"] != "2026-08-08T12:00:00Z" || out["probes"] != float64(3) {
		t.Fatalf("degraded readyz body missing diagnostics: %v", out)
	}

	srv.health = func() entityid.HubHealth { return entityid.HubHealth{State: entityid.HubReady} }
	srv.draining.Store(true)
	code, out = do(t, srv, "GET", "/readyz", "")
	if code != http.StatusServiceUnavailable || out["status"] != "draining" {
		t.Fatalf("draining readyz = %d %v, want 503 draining", code, out)
	}
}

// TestIngestShedding pins the admission-control contract on
// /v1/insert: 503 + Retry-After while draining or degraded (before
// the body is even read), 429 + Retry-After when the concurrency gate
// is full — never a hang, never a silent queue.
func TestIngestShedding(t *testing.T) {
	srv := newServer()

	srv.draining.Store(true)
	req := httptest.NewRequest("POST", "/v1/insert", nil)
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	if rw.Code != http.StatusServiceUnavailable || rw.Header().Get("Retry-After") != "5" {
		t.Fatalf("draining insert = %d (Retry-After %q), want 503/5", rw.Code, rw.Header().Get("Retry-After"))
	}
	srv.draining.Store(false)

	srv.health = func() entityid.HubHealth {
		return entityid.HubHealth{State: entityid.HubDegraded, Cause: "disk gone"}
	}
	rw = httptest.NewRecorder()
	srv.ServeHTTP(rw, httptest.NewRequest("POST", "/v1/insert", nil))
	if rw.Code != http.StatusServiceUnavailable || rw.Header().Get("Retry-After") != "5" {
		t.Fatalf("degraded insert = %d (Retry-After %q), want 503/5", rw.Code, rw.Header().Get("Retry-After"))
	}
	var body map[string]string
	if err := json.Unmarshal(rw.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("degraded insert body = %q, want a JSON error", rw.Body.String())
	}

	srv.health = func() entityid.HubHealth { return entityid.HubHealth{State: entityid.HubReady} }
	srv.gate = admit.New(1)
	if !srv.gate.TryAcquire() {
		t.Fatal("setup: could not occupy the only gate slot")
	}
	rw = httptest.NewRecorder()
	srv.ServeHTTP(rw, httptest.NewRequest("POST", "/v1/insert", nil))
	if rw.Code != http.StatusTooManyRequests || rw.Header().Get("Retry-After") != "1" {
		t.Fatalf("gate-full insert = %d (Retry-After %q), want 429/1", rw.Code, rw.Header().Get("Retry-After"))
	}
	srv.gate.Release()

	// With the slot free again the request is admitted: it proceeds to
	// body parsing (400 on the empty body, not a shed status) and the
	// slot is returned.
	rw = httptest.NewRecorder()
	srv.ServeHTTP(rw, httptest.NewRequest("POST", "/v1/insert", nil))
	if rw.Code == http.StatusTooManyRequests || rw.Code == http.StatusServiceUnavailable {
		t.Fatalf("admitted insert still shed: %d", rw.Code)
	}
	if srv.gate.InFlight() != 0 {
		t.Fatalf("gate slot leaked: %d in flight", srv.gate.InFlight())
	}
}

// TestHubErrorMapping checks the mutation-failure mapping: typed
// degraded/poisoned errors answer 503 + Retry-After regardless of the
// handler's fallback status, everything else keeps the fallback.
func TestHubErrorMapping(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want int
	}{
		{fmt.Errorf("hub: insert: %w", entityid.ErrHubDegraded), http.StatusServiceUnavailable},
		{fmt.Errorf("hub: insert: %w", entityid.ErrHubPoisoned), http.StatusServiceUnavailable},
		{errors.New("duplicate source"), http.StatusConflict},
	} {
		rw := httptest.NewRecorder()
		httpHubError(rw, http.StatusConflict, tc.err)
		if rw.Code != tc.want {
			t.Fatalf("httpHubError(%v) = %d, want %d", tc.err, rw.Code, tc.want)
		}
		if tc.want == http.StatusServiceUnavailable && rw.Header().Get("Retry-After") == "" {
			t.Fatalf("httpHubError(%v) missing Retry-After", tc.err)
		}
	}
}

// TestPanicRecovery checks a panicking handler answers a clean JSON
// 500 instead of killing the connection, and that the recovery
// middleware leaves http.ErrAbortHandler's contract alone.
func TestPanicRecovery(t *testing.T) {
	srv := newServer()
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	srv.mux.HandleFunc("GET /abort", func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})

	code, out := do(t, srv, "GET", "/boom", "")
	if code != http.StatusInternalServerError || out["error"] != "internal server error" {
		t.Fatalf("panic route = %d %v, want JSON 500", code, out)
	}

	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler was swallowed by the recovery middleware")
		}
	}()
	srv.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/abort", nil))
	t.Fatal("ErrAbortHandler did not propagate")
}

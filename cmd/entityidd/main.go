// Command entityidd serves a multi-source entity-identification hub
// over HTTP with JSON/NDJSON bodies: register autonomous sources, link
// source pairs with their correspondences, extended keys, ILFDs and
// identity rules, stream tuple inserts, and query global entity
// clusters and merged cross-source records.
//
// Usage:
//
//	entityidd -addr :8080                 # serve, in-memory only
//	entityidd -addr :8080 -data-dir /var/lib/entityidd
//	                                      # serve durably (WAL + snapshots)
//	entityidd -demo                       # run the 3-source walkthrough and exit
//
// # Durability and crash recovery
//
// With -data-dir, every committed mutation (source registration, link,
// insert) is appended to a CRC-guarded write-ahead log in the data
// directory before it is acknowledged, and every -snapshot-every
// committed inserts a background snapshot is written atomically and
// the log truncated. On start the server loads the snapshot, replays
// the log tail, and serves exactly the pre-crash state: acknowledged
// inserts are never lost, rejected inserts never reappear, and a torn
// final write (a crash mid-append) is detected by checksum and
// dropped. SIGINT/SIGTERM close the hub cleanly; a kill -9 merely
// means the next start replays a longer log tail.
//
// Snapshots are chunked and incremental: the data directory holds a
// manifest plus per-source section files, unchanged sections carry
// forward untouched between snapshots, and hubs of any size snapshot
// without hitting a single-record ceiling. Against power loss (where
// the page cache itself is forfeit), -sync-every N additionally fsyncs
// the log every N appends, with the ingest pipeline batching the
// remainder into one sync per flush epoch (each time its input drains,
// and at every stream's end).
//
// # Serving
//
// The listener is a configured http.Server: request headers must
// arrive within a deadline (slowloris guard), bodies are size-capped
// (-max-insert-body for ingest, a fixed 1MB for control requests), and
// SIGINT/SIGTERM drain in-flight requests (refusing new connections)
// before the hub is checkpointed and closed.
//
// /v1/insert streams both ways: request lines decode as they arrive
// off the wire and flow through the hub's dataflow ingest pipeline
// (bounded stages with backpressure — a slow disk or consumer stalls
// the client's upload, never the server's memory), and one ack line
// streams back per input line, in input order, flushed per line while
// the body trickles and every 64 lines during a sustained bulk load.
// Acks are per line: a line that fails tuple parsing or hub admission
// is reported in place ({"ok":false,...}) without aborting the stream;
// a malformed-JSON line or a body hitting -max-insert-body ends the
// response with a final {"ok":false,...,"terminal":true} line, and
// lines acked before it remain committed (the pre-pipeline server
// rejected such bodies whole with 400/413 — that contract required
// buffering the entire body and is gone). A client disconnect cancels
// the stream and leaves exactly the acked prefix, plus at most the
// bounded in-flight window, committed — acknowledged lines are never
// lost, unacknowledged tails never half-apply.
//
// /v1/clusters streams one cluster per NDJSON line with bounded memory
// — the enumeration never materialises the hub — flushes periodically,
// stops as soon as the client disconnects, and paginates: pass limit=N
// for one page and resume with the returned next_cursor (the ID of the
// last cluster seen); offset=N skips N clusters first. Under
// concurrent ingest the enumeration is weakly consistent (each line is
// a committed cluster state at its visit time); on a quiescent hub it
// is exact and deterministic.
//
// API (all bodies JSON; /v1/insert and /v1/clusters stream NDJSON):
//
//	POST /v1/sources   {"name":"zagat","attrs":[{"name":"name","kind":"string"},...],"key":["name","street"]}
//	POST /v1/links     {"left":"zagat","right":"michelin",
//	                    "attrs":[{"name":"name","left":"name","right":"name"},...],
//	                    "extkey":["name","cuisine"],
//	                    "ilfds":["speciality=hunan -> cuisine=chinese"],
//	                    "identity":[{"name":"name-phone","eq":["name","phone"]}]}
//	POST /v1/insert    NDJSON stream of {"source":"zagat","tuple":["VillageWok","Wash.Ave.",null,"612-1234"]}
//	                   → NDJSON per line: {"ok":true,"index":0,"matched":[...],"cluster":{...}}
//	GET  /v1/cluster?source=zagat&key=VillageWok&key=Wash.Ave.[&merge=coalesce]
//	GET  /v1/clusters[?merge=coalesce&limit=N&offset=N&cursor=ID]
//	                   NDJSON stream, one cluster per line; limit > 0
//	                   paginates (a final {"next_cursor":ID} line marks a
//	                   truncated page), omitted or 0 streams everything
//	GET  /v1/stats
//	GET  /healthz
//	GET  /readyz
//
// # Failure modes and admission control
//
// Ingest is admission-controlled: at most -ingest-concurrency insert
// requests run at once, and a request finding no free slot is shed
// immediately with 429 and a Retry-After header instead of queueing.
// When the hub's disk fails persistently (ENOSPC, EIO) the hub enters
// a degraded read-only mode: reads and cluster streaming keep serving,
// while ingest and control-plane writes answer 503 with Retry-After
// until background recovery probes find the disk healthy again.
// /readyz reports ready/degraded/poisoned plus the draining flag with
// a JSON body (503 unless fully ready), so load balancers can stop
// routing ingest before liveness fails; /healthz stays a pure liveness
// check. A handler panic is recovered into a clean JSON 500 with the
// stack logged server-side.
//
// Attribute kinds are string (default), int, float, bool. Tuple values
// are JSON scalars matching the declared kind; null means NULL. JSON
// numbers pass through float64, which is exact only up to ±2^53:
// larger int values that survived the round-trip intact are accepted,
// anything non-integral or beyond the int64 range is rejected.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"entityid"
	"entityid/internal/admit"
	ihub "entityid/internal/hub"
	"entityid/internal/rules"
	"entityid/internal/value"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		demo          = flag.Bool("demo", false, "run the 3-source walkthrough and exit")
		dataDir       = flag.String("data-dir", "", "directory for the write-ahead log and snapshots (empty: in-memory only)")
		snapEvery     = flag.Int("snapshot-every", 1024, "committed inserts between background snapshots (0: only on shutdown)")
		syncEvery     = flag.Int("sync-every", 0, "fsync the write-ahead log every N appends, batching each ingest batch into one sync (0: leave durability between snapshots to the page cache)")
		maxInsertBody = flag.Int64("max-insert-body", defaultMaxInsertBody, "largest /v1/insert request body in bytes (0: unlimited)")
		drainTimeout  = flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests to finish")
		ingestConc    = flag.Int("ingest-concurrency", 64, "max concurrent /v1/insert requests; excess is shed with 429 + Retry-After (0: unlimited)")
		debugAddr     = flag.String("debug-addr", "", "operator-only listen address serving /metrics, /debug/slow and /debug/pprof (empty: disabled; pprof is never on the main port)")
		slowOpThresh  = flag.Duration("slow-op-threshold", 100*time.Millisecond, "commits slower than this are recorded with per-stage timings at /debug/slow (0: disabled)")
		storeName     = flag.String("store", "", "storage backend: mem keeps everything resident, disk spills cold cluster records and pair tables under the data dir (empty: $ENTITYID_STORE, then mem)")
		storeHotClus  = flag.Int("store-hot-clusters", 0, "disk backend: max resident cluster members before cold records spill (0: $ENTITYID_STORE_HOT_CLUSTERS, then the default)")
		storeHotPairs = flag.Int("store-hot-pairs", 0, "disk backend: max resident pairwise federations before cold pairs spill (0: $ENTITYID_STORE_HOT_PAIRS, then the default)")
	)
	flag.Parse()
	if *maxInsertBody < 0 {
		// Only 0 means unlimited; a negative value is a typo, not a
		// request to drop the DoS guard.
		log.Fatalf("entityidd: -max-insert-body must be >= 0 (0 disables the cap)")
	}
	if *demo {
		if err := runDemo(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	hub := entityid.NewHub()
	durable := *dataDir != ""
	if durable {
		var err error
		hub, err = entityid.OpenHub(*dataDir,
			entityid.WithSnapshotEvery(*snapEvery), entityid.WithSyncEvery(*syncEvery),
			entityid.WithStore(*storeName), entityid.WithStoreBudgets(*storeHotClus, *storeHotPairs))
		if err != nil {
			log.Fatalf("entityidd: %v", err)
		}
		st := hub.Stats()
		log.Printf("entityidd: recovered %d sources, %d links, %d tuples, %d clusters from %s (store: %s)",
			st.Sources, st.Pairs, st.Tuples, st.Clusters, *dataDir, hub.StoreInfo().Backend)
		if ri := hub.Recovery(); ri != nil && ri.TailDamage != "" {
			log.Printf("entityidd: WARNING: damaged log tail dropped during recovery (unacknowledged writes discarded): %s", ri.TailDamage)
		}
	}
	srv, err := newServerFor(hub)
	if err != nil {
		log.Fatalf("entityidd: %v", err)
	}
	srv.maxInsertBody = *maxInsertBody
	srv.gate = admit.New(*ingestConc)
	ihub.SlowOps.SetThreshold(*slowOpThresh)
	if *debugAddr != "" {
		dbg, dbgAddr, err := startDebugServer(*debugAddr)
		if err != nil {
			log.Fatalf("entityidd: %v", err)
		}
		defer dbg.Close()
		log.Printf("entityidd: debug listener (metrics, slow-ops, pprof) on %s", dbgAddr)
	}
	// inflight counts handlers between entry and return, so shutdown
	// can hold the hub open until the last one is truly out — even when
	// the drain timeout forces connections closed under them.
	var inflight sync.WaitGroup
	httpSrv := &http.Server{
		Addr: *addr,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			inflight.Add(1)
			defer inflight.Done()
			srv.ServeHTTP(w, r)
		}),
		// Slowloris guard: request headers must arrive promptly. Bodies
		// get no global deadline — NDJSON ingest streams legitimately —
		// but are size-capped per handler.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("entityidd: serving on %s", *addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("entityidd: %v", err)
	case s := <-sig:
		// Drain before the hub goes away: stop accepting, let in-flight
		// requests finish (bounded by -drain-timeout; past it their
		// connections are severed so they unblock), then wait for the
		// last handler to actually return — a handler can never observe
		// a closed hub.
		log.Printf("entityidd: %v: draining in-flight requests", s)
		// Flip /readyz to draining and start shedding new ingest before
		// the listener stops: a load balancer polling readiness sees the
		// drain as soon as it starts.
		srv.draining.Store(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("entityidd: drain: %v (severing connections)", err)
			httpSrv.Close()
		}
		cancel()
		inflight.Wait()
		if durable {
			// With automatic snapshots disabled, take the promised
			// shutdown snapshot so the next start replays nothing.
			if *snapEvery <= 0 {
				if err := hub.Checkpoint(); err != nil {
					log.Printf("entityidd: shutdown snapshot: %v", err)
				}
			}
			if err := hub.Close(); err != nil {
				log.Printf("entityidd: close: %v", err)
				os.Exit(1)
			}
			log.Printf("entityidd: hub closed cleanly")
		}
	}
}

const (
	// maxControlBody caps /v1/sources and /v1/links request bodies:
	// control-plane payloads are small by construction.
	maxControlBody = 1 << 20
	// defaultMaxInsertBody caps /v1/insert bodies unless -max-insert-body
	// overrides it.
	defaultMaxInsertBody = 64 << 20
	// clustersFlushEvery bounds how many NDJSON cluster lines buffer
	// before an explicit flush, so long enumerations stream progressively.
	clustersFlushEvery = 64
	// insertFlushEvery bounds how many /v1/insert ack lines buffer
	// before an explicit flush during a sustained bulk load; when the
	// request body trickles, acks flush as soon as the decoder idles.
	insertFlushEvery = 64
)

// server is the HTTP front-end over one hub. It keeps its own
// attribute registry (filled on source creation) so tuple parsing
// needs no hub round-trip.
type server struct {
	hub *entityid.Hub
	mux *http.ServeMux
	// maxInsertBody caps /v1/insert request bodies (0: unlimited).
	maxInsertBody int64
	// gate bounds concurrent ingest requests; excess is shed with 429.
	gate *admit.Gate
	// draining flips when shutdown starts: /readyz answers 503 and new
	// ingest is refused while in-flight requests finish.
	draining atomic.Bool
	// health reports the hub's health; a seam so tests can simulate
	// degraded state without a real disk fault.
	health func() entityid.HubHealth
	// lastSnapshot reports the latest snapshot; a seam so tests can
	// exercise /readyz snapshot-age reporting without a data dir.
	lastSnapshot func() entityid.HubSnapshotStats
	// logf writes the access log and panic reports; a seam so tests can
	// capture log output.
	logf func(format string, args ...any)

	mu      sync.RWMutex
	schemas map[string][]attrInfo
	// keyKinds holds each source's primary-key attribute kinds in key
	// order, so /v1/cluster can parse key query parameters typedly.
	keyKinds map[string][]value.Kind
}

// attrInfo is one declared attribute of a registered source.
type attrInfo struct {
	name string
	kind value.Kind
}

func newServer() *server {
	s, err := newServerFor(entityid.NewHub())
	if err != nil {
		// Unreachable: an empty hub has no sources to mirror.
		panic(err)
	}
	return s
}

// newServerFor builds the front-end over an existing hub — possibly
// one recovered from disk, whose sources must be mirrored into the
// server's tuple-parsing registry.
func newServerFor(h *entityid.Hub) (*server, error) {
	s := &server{
		hub:           h,
		mux:           http.NewServeMux(),
		maxInsertBody: defaultMaxInsertBody,
		gate:          admit.New(0),
		health:        h.Health,
		lastSnapshot:  h.LastSnapshot,
		logf:          log.Printf,
		schemas:       map[string][]attrInfo{},
		keyKinds:      map[string][]value.Kind{},
	}
	for _, name := range h.SourceNames() {
		sch, err := h.SourceSchema(name)
		if err != nil {
			return nil, err
		}
		infos := make([]attrInfo, sch.Arity())
		for i, a := range sch.Attrs() {
			infos[i] = attrInfo{name: a.Name, kind: a.Kind}
		}
		key := sch.PrimaryKey()
		kk := make([]value.Kind, len(key))
		for i, a := range key {
			kk[i] = sch.KindOf(a)
		}
		s.schemas[name] = infos
		s.keyKinds[name] = kk
	}
	s.mux.HandleFunc("POST /v1/sources", s.handleSources)
	s.mux.HandleFunc("POST /v1/links", s.handleLinks)
	s.mux.HandleFunc("POST /v1/insert", s.handleInsert)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /v1/clusters", s.handleClusters)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", handleMetrics)
	s.mux.HandleFunc("GET /debug/slow", handleSlow)
	return s, nil
}

// ServeHTTP dispatches through the mux with a request ID, per-route
// metrics, a structured access log line, and panic recovery: a handler
// panic logs the stack and answers a clean JSON 500 instead of
// net/http tearing the connection down mid-response.
// http.ErrAbortHandler keeps its contract (re-panicked, connection
// severed).
//
// An incoming X-Request-ID is honored (so a proxy's ID correlates
// across hops); otherwise one is generated. Either way the ID is set
// on the response before dispatch, which also makes it available to
// httpError for inclusion in error bodies.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := r.Header.Get("X-Request-ID")
	if rid == "" {
		rid = newRequestID()
	}
	w.Header().Set("X-Request-ID", rid)
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	mHTTPInFlight.Add(1)
	defer mHTTPInFlight.Add(-1)
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		mHTTPPanics.Inc()
		s.logf("entityidd: panic serving %s %s request_id=%s: %v\n%s", r.Method, r.URL.Path, rid, rec, debug.Stack())
		// Best effort: if the handler already wrote a response, the
		// status is gone and this write lands in the body or fails.
		httpError(sw, http.StatusInternalServerError, fmt.Errorf("internal server error"))
	}()
	s.mux.ServeHTTP(sw, r)
	// r.Pattern is the mux pattern that matched (Go 1.22+); empty means
	// 404/405 — collapse those so unmatched paths cannot grow the label
	// space.
	route := r.Pattern
	if route == "" {
		route = "unmatched"
	}
	dur := time.Since(start)
	//entitylint:bounded route is a registered mux pattern or "unmatched"; statusClass returns one of five constants
	mHTTPRequests.With(route, statusClass(sw.code)).Inc()
	//entitylint:bounded route is a registered mux pattern or "unmatched"
	mHTTPSeconds.With(route).Observe(dur)
	s.logf("entityidd: access method=%s path=%s route=%q status=%d bytes=%d dur_ms=%.3f request_id=%s",
		r.Method, r.URL.Path, route, sw.code, sw.bytes, float64(dur)/float64(time.Millisecond), rid)
}

// handleReadyz is the routing-readiness probe (distinct from the
// /healthz liveness check): 200 only when the hub is read-write and
// the server is not draining, 503 with the same JSON body otherwise —
// so a load balancer can stop routing ingest while reads still work
// and the process is still alive.
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := s.health()
	status := h.State.String()
	if s.draining.Load() {
		status = "draining"
	}
	st := s.hub.StoreInfo()
	body := map[string]any{
		"status":         status,
		"hub":            h.State.String(),
		"uptime_seconds": time.Since(processStart).Seconds(),
		"store": map[string]any{
			"backend":              st.Backend,
			"hot_cluster_records":  st.Clusters.HotRecords,
			"hot_cluster_entries":  st.Clusters.HotEntries,
			"cold_cluster_records": st.Clusters.ColdRecords,
			"cluster_entry_budget": st.Clusters.Budget,
			"hot_pairs":            st.HotPairs,
			"spilled_pairs":        st.Pairs.Spilled,
			"pair_budget":          st.PairBudget,
		},
	}
	if snap := s.lastSnapshot(); !snap.Taken.IsZero() {
		body["last_snapshot_age_seconds"] = time.Since(snap.Taken).Seconds()
		body["last_snapshot_watermark"] = snap.Watermark
	}
	if h.Cause != "" {
		body["cause"] = h.Cause
		body["since"] = h.Since.UTC().Format(time.RFC3339)
		body["probes"] = h.Probes
	}
	code := http.StatusOK
	if status != "ready" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// admitIngest applies admission control to an ingest request: shed
// with 503 while draining or while the hub is not read-write, shed
// with 429 when the concurrency gate is full. On true the caller holds
// a gate slot and must Release it.
func (s *server) admitIngest(w http.ResponseWriter) bool {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, errors.New("draining: ingest not accepted"))
		return false
	}
	if h := s.health(); h.State != entityid.HubReady {
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable,
			fmt.Errorf("hub %s: ingest suspended (%s)", h.State, h.Cause))
		return false
	}
	if !s.gate.TryAcquire() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("ingest concurrency limit (%d) reached", s.gate.Limit()))
		return false
	}
	return true
}

// httpHubError maps a hub mutation failure to its status: a degraded
// or poisoned hub answers 503 with Retry-After (the client should back
// off and retry elsewhere), anything else keeps the handler's status.
func httpHubError(w http.ResponseWriter, fallback int, err error) {
	if errors.Is(err, entityid.ErrHubDegraded) || errors.Is(err, entityid.ErrHubPoisoned) {
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	httpError(w, fallback, err)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body := map[string]string{"error": err.Error()}
	// The middleware stamps the request ID on the response header before
	// dispatch; echoing it in the error body lets a client quote one
	// string in a support report.
	if rid := w.Header().Get("X-Request-ID"); rid != "" {
		body["request_id"] = rid
	}
	json.NewEncoder(w).Encode(body)
}

// bodyErrStatus maps a request-body read/decode failure to its status:
// an exceeded size cap is 413, anything else a plain bad request.
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// sourceReq declares one source.
type sourceReq struct {
	Name  string `json:"name"`
	Attrs []struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	} `json:"attrs"`
	Key []string `json:"key"`
}

func (s *server) handleSources(w http.ResponseWriter, r *http.Request) {
	var req sourceReq
	r.Body = http.MaxBytesReader(w, r.Body, maxControlBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, bodyErrStatus(err), err)
		return
	}
	attrs := make([]entityid.Attribute, len(req.Attrs))
	for i, a := range req.Attrs {
		k, err := parseKind(a.Kind)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		attrs[i] = entityid.Attribute{Name: a.Name, Kind: k}
	}
	var keys [][]string
	if len(req.Key) > 0 {
		keys = append(keys, req.Key)
	}
	rel, err := entityid.NewRelation(req.Name, attrs, keys...)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.hub.AddSource(req.Name, rel); err != nil {
		httpHubError(w, http.StatusConflict, err)
		return
	}
	infos := make([]attrInfo, len(attrs))
	kindOf := map[string]value.Kind{}
	for i, a := range attrs {
		infos[i] = attrInfo{name: a.Name, kind: a.Kind}
		kindOf[a.Name] = a.Kind
	}
	// Primary key in key order; with no declared key the whole
	// attribute set is the key (the paper's convention, mirrored by
	// NewRelation).
	keyAttrs := req.Key
	if len(keyAttrs) == 0 {
		for _, a := range req.Attrs {
			keyAttrs = append(keyAttrs, a.Name)
		}
	}
	kk := make([]value.Kind, len(keyAttrs))
	for i, a := range keyAttrs {
		kk[i] = kindOf[a]
	}
	s.mu.Lock()
	s.schemas[req.Name] = infos
	s.keyKinds[req.Name] = kk
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"source": req.Name})
}

// linkReq declares one source pair.
type linkReq struct {
	Left  string `json:"left"`
	Right string `json:"right"`
	Attrs []struct {
		Name  string `json:"name"`
		Left  string `json:"left"`
		Right string `json:"right"`
	} `json:"attrs"`
	ExtKey   []string `json:"extkey"`
	ILFDs    []string `json:"ilfds"`
	Identity []struct {
		Name string   `json:"name"`
		Eq   []string `json:"eq"`
	} `json:"identity"`
}

func (s *server) handleLinks(w http.ResponseWriter, r *http.Request) {
	var req linkReq
	r.Body = http.MaxBytesReader(w, r.Body, maxControlBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, bodyErrStatus(err), err)
		return
	}
	spec := entityid.NewPair(req.Left, req.Right)
	for _, a := range req.Attrs {
		spec.MapAttr(a.Name, a.Left, a.Right)
	}
	spec.SetExtendedKey(req.ExtKey...)
	for _, line := range req.ILFDs {
		spec.AddILFDText(line)
	}
	for _, id := range req.Identity {
		// The key-equivalence form covers the serving API: agreement on
		// every listed attribute implies identity (§2.2 / §4.1).
		rule, err := rules.KeyEquivalence(id.Name, id.Eq)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		spec.AddIdentityRule(rule)
	}
	if err := s.hub.Link(spec); err != nil {
		httpHubError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"left": req.Left, "right": req.Right})
}

// insertLine is one NDJSON ingest item.
type insertLine struct {
	Source string `json:"source"`
	Tuple  []any  `json:"tuple"`
}

// insertLineMeta carries one body line's fate from the decoder to the
// writer, in line order: a parse error reported in place, a terminal
// stream failure (malformed framing, body cap), or a line that went to
// the hub — whose outcome is the next result off the pipeline, since
// the pipeline preserves order.
type insertLineMeta struct {
	err      error
	terminal bool
	hub      bool
}

// streamReadError rewrites a body read failure for the terminal result
// line, naming the ingest cap when that is what cut the stream off.
func streamReadError(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return fmt.Errorf("request body exceeds %d bytes: stream truncated (lines before the cap were processed)", mbe.Limit)
	}
	return err
}

// handleInsert streams the NDJSON ingest body through the hub's
// dataflow pipeline: lines decode as they arrive off the wire, commit
// in order with bounded in-flight work, and each result line is
// written — and periodically flushed — while later lines are still
// being read. Nothing buffers O(body).
//
// Contract (since the pipelined ingest path): acks are per line. A
// line that fails to parse is reported in place without aborting the
// stream; a malformed-JSON line or a body over -max-insert-body
// terminates the stream with a final {"ok":false,...,"terminal":true}
// line — lines already acked by then are committed and stay committed.
// (Previously such bodies were rejected whole with 400/413 after a
// full-body buffer; that whole-batch contract is gone with the batch
// barrier that made it possible.) A client disconnect cancels the
// pipeline stream mid-flight and leaves exactly the acked prefix — and
// at most a bounded in-flight window past it — committed.
func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	// Admission first: shed while draining or degraded (503) or when
	// the concurrency gate is full (429) — never queue.
	if !s.admitIngest(w) {
		return
	}
	defer s.gate.Release()
	if s.maxInsertBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxInsertBody)
	}
	ctx := r.Context()
	in := make(chan entityid.HubInsert)
	metas := make(chan insertLineMeta, insertFlushEvery)
	// Decoder: scan the body incrementally, parse each line, and hand
	// valid tuples to the pipeline. Every send selects on ctx so a
	// disconnected client never wedges the scan. The meta always
	// precedes its item, so the writer can pair hub results with lines.
	go func() {
		defer close(in)
		defer close(metas)
		sendMeta := func(m insertLineMeta) bool {
			select {
			case metas <- m:
				return true
			case <-ctx.Done():
				return false
			}
		}
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var il insertLine
			if err := json.Unmarshal([]byte(line), &il); err != nil {
				// Malformed framing: nothing after this line can be
				// trusted (it may be a torn tail). Terminal. If the tear
				// came from a read failure — the body cap truncating
				// mid-line is the common case — report that instead of
				// the confusing partial-JSON error.
				terr := error(fmt.Errorf("line %d: %w", lineNo, err))
				if !sc.Scan() {
					if serr := sc.Err(); serr != nil {
						terr = streamReadError(serr)
					}
				}
				sendMeta(insertLineMeta{err: terr, terminal: true})
				return
			}
			t, err := s.toTuple(il.Source, il.Tuple)
			if err != nil {
				// Tuple-level error: reported in place, stream continues.
				if !sendMeta(insertLineMeta{err: fmt.Errorf("line %d: %w", lineNo, err)}) {
					return
				}
				continue
			}
			if !sendMeta(insertLineMeta{hub: true}) {
				return
			}
			select {
			case in <- entityid.HubInsert{Source: il.Source, Tuple: t}:
			case <-ctx.Done():
				return
			}
		}
		if err := sc.Err(); err != nil {
			sendMeta(insertLineMeta{err: streamReadError(err), terminal: true})
		}
	}()
	results := s.hub.IngestStream(ctx, in, entityid.HubStreamOptions{})

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	// Commit the 200 and push headers now: acks stream per line, so a
	// client reading the response before it finishes sending the body
	// (the normal pipelined pattern) must not wait on the first result.
	// Full duplex is required first — without it net/http drains the
	// rest of the request body before the first response write, which
	// deadlocks against a client that reads acks as it sends.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	// dead flags a failed response write (client gone): stop writing but
	// keep draining metas and results so the decoder and pipeline wind
	// down through their normal paths.
	dead := false
	emit := func(v any) {
		if dead {
			return
		}
		if err := enc.Encode(v); err != nil {
			dead = true
		}
	}
	pending := 0
	flush := func() {
		if flusher != nil && !dead && pending > 0 {
			flusher.Flush()
		}
		pending = 0
	}
	for {
		var m insertLineMeta
		var ok bool
		select {
		case m, ok = <-metas:
		default:
			// The decoder has no line ready (client is trickling):
			// flush what's written so interactive streams see per-line
			// acks, then wait.
			flush()
			m, ok = <-metas
		}
		if !ok {
			break
		}
		switch {
		case m.terminal:
			emit(map[string]any{"ok": false, "error": m.err.Error(), "terminal": true})
		case m.err != nil:
			emit(map[string]any{"ok": false, "error": m.err.Error()})
		default:
			res, rok := <-results
			if !rok {
				// The pipeline closed early (canceled): nothing more to ack.
				dead = true
				continue
			}
			if res.Err != nil {
				emit(map[string]any{"ok": false, "error": res.Err.Error()})
			} else {
				emit(map[string]any{
					"ok":      true,
					"index":   res.Receipt.Index,
					"matched": membersJSON(res.Receipt.Matched),
					"cluster": s.clusterJSON(res.Receipt.Cluster, ""),
				})
			}
		}
		pending++
		if pending >= insertFlushEvery {
			flush()
		}
	}
	// Drain any residual results (cancellation races) so the pipeline's
	// pump is never left blocked on an unread channel.
	for range results {
	}
}

func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	source := r.URL.Query().Get("source")
	keys := r.URL.Query()["key"]
	if source == "" || len(keys) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("source and key parameters required"))
		return
	}
	s.mu.RLock()
	kinds, known := s.keyKinds[source]
	s.mu.RUnlock()
	if !known {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown source %q", source))
		return
	}
	if len(kinds) != len(keys) {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("source %q: %d key values, primary key has %d attributes", source, len(keys), len(kinds)))
		return
	}
	vals := make([]entityid.Value, len(keys))
	for i, k := range keys {
		v, err := value.Parse(k, kinds[i])
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("key %d: %w", i, err))
			return
		}
		vals[i] = v
	}
	cl, err := s.hub.Lookup(source, vals...)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, s.clusterJSON(cl, r.URL.Query().Get("merge")))
}

// handleClusters streams the cluster enumeration as NDJSON with
// bounded memory: one cluster is materialised at a time, the response
// is flushed periodically, and the scan stops as soon as the client
// disconnects or a write fails. limit/cursor paginate (a final
// next_cursor line marks a truncated page); offset skips clusters.
func (s *server) handleClusters(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	merge := q.Get("merge")
	limit, err := queryInt(q, "limit")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	offset, err := queryInt(q, "offset")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	flusher, _ := w.(http.Flusher)
	var enc *json.Encoder
	emit := func(v any) error {
		// The NDJSON header commits lazily, so a cursor parse error can
		// still answer with a JSON 400 before anything streams.
		if enc == nil {
			w.Header().Set("Content-Type", "application/x-ndjson")
			enc = json.NewEncoder(w)
		}
		return enc.Encode(v)
	}
	emitted, truncated, aborted := 0, false, false
	var last string
	walkErr := s.hub.ClustersWalk(q.Get("cursor"), offset, func(cl entityid.EntityCluster, resume string) bool {
		if ctx.Err() != nil {
			aborted = true // client gone: abandon the scan
			return false
		}
		if limit > 0 && emitted == limit {
			truncated = true
			return false
		}
		if err := emit(s.clusterJSON(cl, merge)); err != nil {
			aborted = true // write failed (client disconnected)
			return false
		}
		emitted++
		last = resume
		if flusher != nil && emitted%clustersFlushEvery == 0 {
			flusher.Flush()
		}
		return true
	})
	if walkErr != nil {
		httpError(w, http.StatusBadRequest, walkErr)
		return
	}
	if aborted {
		return
	}
	if truncated {
		emit(map[string]any{"next_cursor": last})
		return
	}
	// An empty enumeration still answers as NDJSON.
	if enc == nil {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
}

// queryInt parses a non-negative integer query parameter (absent: 0).
func queryInt(q url.Values, name string) (int, error) {
	raw := q.Get(name)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad %s %q", name, raw)
	}
	return v, nil
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.hub.Stats()
	writeJSON(w, http.StatusOK, map[string]int{
		"sources":  st.Sources,
		"pairs":    st.Pairs,
		"tuples":   st.Tuples,
		"matches":  st.Matches,
		"clusters": st.Clusters,
	})
}

// toTuple converts JSON scalars into a typed tuple per the source
// schema.
func (s *server) toTuple(source string, raw []any) (entityid.Tuple, error) {
	s.mu.RLock()
	infos, ok := s.schemas[source]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown source %q", source)
	}
	if len(raw) != len(infos) {
		return nil, fmt.Errorf("source %q: %d values, schema wants %d", source, len(raw), len(infos))
	}
	t := make(entityid.Tuple, len(raw))
	for i, rv := range raw {
		v, err := jsonToValue(rv, infos[i].kind)
		if err != nil {
			return nil, fmt.Errorf("source %q: attribute %q: %w", source, infos[i].name, err)
		}
		t[i] = v
	}
	return t, nil
}

func parseKind(k string) (entityid.Kind, error) {
	switch k {
	case "", "string":
		return entityid.KindString, nil
	case "int":
		return entityid.KindInt, nil
	case "float":
		return entityid.KindFloat, nil
	case "bool":
		return entityid.KindBool, nil
	default:
		return entityid.KindString, fmt.Errorf("unknown kind %q", k)
	}
}

// jsonToValue converts one decoded JSON scalar to a typed value.
func jsonToValue(raw any, kind value.Kind) (value.Value, error) {
	if raw == nil {
		return value.Null, nil
	}
	switch v := raw.(type) {
	case string:
		return value.Parse(v, kind)
	case float64:
		switch kind {
		case value.KindInt:
			if v != math.Trunc(v) {
				return value.Null, fmt.Errorf("non-integer %v for int attribute", v)
			}
			// Range-check before converting: float→int overflow is
			// implementation-defined in Go. Both bounds are exact float64
			// values (-2^63 is representable; 2^63 is the first excluded
			// value). Integers beyond ±2^53 already lost precision in
			// JSON's float64 carriage, but in-range ones convert exactly.
			if v < math.MinInt64 || v >= -(math.MinInt64) {
				return value.Null, fmt.Errorf("integer %v overflows int64", v)
			}
			return value.Int(int64(v)), nil
		case value.KindFloat:
			return value.Float(v), nil
		default:
			return value.Null, fmt.Errorf("number %v for %s attribute", v, kind)
		}
	case bool:
		if kind != value.KindBool {
			return value.Null, fmt.Errorf("bool for %s attribute", kind)
		}
		return value.Bool(v), nil
	default:
		return value.Null, fmt.Errorf("unsupported JSON value %T", raw)
	}
}

// valueToJSON renders a typed value as a JSON scalar.
func valueToJSON(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindInt:
		return v.IntVal()
	case value.KindFloat:
		return v.FloatVal()
	case value.KindBool:
		return v.BoolVal()
	default:
		return v.Str()
	}
}

func membersJSON(ms []entityid.ClusterMember) []map[string]any {
	out := make([]map[string]any, len(ms))
	for i, m := range ms {
		tuple := make([]any, len(m.Tuple))
		for j, v := range m.Tuple {
			tuple[j] = valueToJSON(v)
		}
		out[i] = map[string]any{"source": m.Source, "index": m.Index, "tuple": tuple}
	}
	return out
}

// clusterJSON renders a cluster, optionally with its merged record.
func (s *server) clusterJSON(cl entityid.EntityCluster, merge string) map[string]any {
	out := map[string]any{"id": cl.ID, "members": membersJSON(cl.Members)}
	if merge == "" {
		return out
	}
	strategy, ok := mergeStrategies[merge]
	if !ok {
		out["merge_error"] = fmt.Sprintf("unknown strategy %q", merge)
		return out
	}
	me, err := s.hub.Merged(cl, strategy)
	if err != nil {
		out["merge_error"] = err.Error()
		return out
	}
	vals := map[string]any{}
	for k, v := range me.Values {
		vals[k] = valueToJSON(v)
	}
	out["merged"] = vals
	if len(me.Conflicts) > 0 {
		out["conflicts"] = me.Conflicts
	}
	return out
}

var mergeStrategies = map[string]entityid.MergeStrategy{
	"coalesce": entityid.MergeCoalesce,
	"left":     entityid.MergePreferR,
	"right":    entityid.MergePreferS,
	"strict":   entityid.MergeStrict,
}

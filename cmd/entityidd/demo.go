// The -demo walkthrough: three autonomous restaurant publishers
// federated end-to-end through the public Hub API — concurrent
// streaming ingest, global clusters across pairwise extended keys, a
// merged cross-source record, and a transitive-uniqueness rejection
// with rollback.
package main

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"entityid"
)

// demoILFDs is the speciality→cuisine fragment the walkthrough needs
// (Table 8's ILFD family).
var demoILFDs = []string{
	"speciality=hunan -> cuisine=chinese",
	"speciality=sichuan -> cuisine=chinese",
	"speciality=mughalai -> cuisine=indian",
	"speciality=gyros -> cuisine=greek",
}

func runDemo(w io.Writer) error {
	h := entityid.NewHub()

	// Three publishers, no common candidate key anywhere: zagat keys on
	// (name, street), michelin on (name, city), infatuation on
	// (name, neighborhood). Only zagat records cuisine directly.
	mkSource := func(name string, attrs []entityid.Attribute, key []string) error {
		rel, err := entityid.NewRelation(name, attrs, key)
		if err != nil {
			return err
		}
		return h.AddSource(name, rel)
	}
	str := func(names ...string) []entityid.Attribute {
		out := make([]entityid.Attribute, len(names))
		for i, n := range names {
			out[i] = entityid.Attribute{Name: n}
		}
		return out
	}
	if err := mkSource("zagat", str("name", "street", "cuisine", "phone"), []string{"name", "street"}); err != nil {
		return err
	}
	if err := mkSource("michelin", str("name", "city", "speciality", "phone"), []string{"name", "city"}); err != nil {
		return err
	}
	if err := mkSource("infatuation", str("name", "neighborhood", "speciality", "phone"), []string{"name", "neighborhood"}); err != nil {
		return err
	}

	// Pairwise knowledge, per-pair extended keys (§4.1): the guides
	// that record speciality derive cuisine through the ILFD family;
	// michelin↔infatuation trusts shared phone numbers.
	withILFDs := func(p *entityid.PairSpec) *entityid.PairSpec {
		for _, line := range demoILFDs {
			p.AddILFDText(line)
		}
		return p
	}
	if err := h.Link(withILFDs(entityid.NewPair("zagat", "michelin").
		MapAttr("name", "name", "name").
		MapAttr("street", "street", "").
		MapAttr("city", "", "city").
		MapAttr("cuisine", "cuisine", "").
		MapAttr("speciality", "", "speciality").
		MapAttr("phone", "phone", "phone").
		SetExtendedKey("name", "cuisine"))); err != nil {
		return err
	}
	if err := h.Link(withILFDs(entityid.NewPair("zagat", "infatuation").
		MapAttr("name", "name", "name").
		MapAttr("street", "street", "").
		MapAttr("hood", "", "neighborhood").
		MapAttr("cuisine", "cuisine", "").
		MapAttr("speciality", "", "speciality").
		MapAttr("phone", "phone", "phone").
		SetExtendedKey("name", "cuisine"))); err != nil {
		return err
	}
	if err := h.Link(entityid.NewPair("michelin", "infatuation").
		MapAttr("name", "name", "name").
		MapAttr("city", "city", "").
		MapAttr("hood", "", "neighborhood").
		MapAttr("speciality", "speciality", "speciality").
		MapAttr("phone", "phone", "phone").
		SetExtendedKey("phone")); err != nil {
		return err
	}
	fmt.Fprintln(w, "== 3-source hub: zagat ⋈ michelin ⋈ infatuation ==")

	// Stream the guides concurrently through the ingest worker pool.
	tup := func(vals ...string) entityid.Tuple {
		t := make(entityid.Tuple, len(vals))
		for i, v := range vals {
			if v == "" {
				t[i] = entityid.Null
			} else {
				t[i] = entityid.String(v)
			}
		}
		return t
	}
	batch := []entityid.HubInsert{
		{Source: "zagat", Tuple: tup("villagewok", "wash ave", "chinese", "612-0001")},
		{Source: "zagat", Tuple: tup("goldenleaf", "lake st", "chinese", "612-0002")},
		{Source: "zagat", Tuple: tup("itsgreek", "univ ave", "greek", "612-0003")},
		{Source: "michelin", Tuple: tup("villagewok", "minneapolis", "hunan", "612-0001")},
		{Source: "michelin", Tuple: tup("anjuman", "st paul", "mughalai", "612-0004")},
		{Source: "infatuation", Tuple: tup("itsgreek", "dinkytown", "gyros", "612-9903")},
		{Source: "infatuation", Tuple: tup("anjuman", "cathedral hill", "mughalai", "612-0004")},
	}
	for i, res := range h.IngestBatch(batch) {
		if res.Err != nil {
			return fmt.Errorf("insert %d: %w", i, res.Err)
		}
	}
	st := h.Stats()
	fmt.Fprintf(w, "ingested %d tuples into %d sources over %d links: %d pairwise matches, %d clusters\n\n",
		st.Tuples, st.Sources, st.Pairs, st.Matches, st.Clusters)

	fmt.Fprintln(w, "-- global clusters --")
	for _, cl := range h.Clusters() {
		var members []string
		for _, m := range cl.Members {
			members = append(members, fmt.Sprintf("%s[%s]", m.Source, m.Tuple[0]))
		}
		fmt.Fprintf(w, "%-14s %s\n", cl.ID, strings.Join(members, " ≡ "))
	}
	fmt.Fprintln(w)

	// The merged cross-source record: anjuman is unknown to zagat, but
	// michelin and infatuation agree through their shared phone.
	cl, err := h.Lookup("michelin", entityid.String("anjuman"), entityid.String("st paul"))
	if err != nil {
		return err
	}
	merged, err := h.Merged(cl, entityid.MergeCoalesce)
	if err != nil {
		return err
	}
	var attrs []string
	for name := range merged.Values {
		attrs = append(attrs, name)
	}
	sort.Strings(attrs)
	fmt.Fprintln(w, "-- merged record for michelin[anjuman] --")
	for _, name := range attrs {
		fmt.Fprintf(w, "%-12s %s\n", name, merged.Values[name])
	}
	fmt.Fprintln(w)

	// A transitive uniqueness violation: this infatuation tuple matches
	// zagat[goldenleaf] on (name, derived cuisine) and — through a
	// recycled phone number — michelin[villagewok] on phone. Committing
	// it would merge villagewok's and goldenleaf's clusters, putting two
	// zagat rows into one entity; the hub must refuse and roll back.
	before := h.Stats()
	_, err = h.Insert("infatuation", tup("goldenleaf", "uptown", "hunan", "612-0001"))
	if err == nil {
		return fmt.Errorf("transitive violation was not rejected")
	}
	after := h.Stats()
	fmt.Fprintln(w, "-- transitive uniqueness guard --")
	fmt.Fprintf(w, "rejected: %v\n", err)
	fmt.Fprintf(w, "state unchanged: %+v == %+v: %v\n\n", before, after, before == after)

	// With the correct phone the tuple is admitted and clusters with
	// goldenleaf alone.
	rec, err := h.Insert("infatuation", tup("goldenleaf", "uptown", "hunan", "612-8802"))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "corrected insert clusters with: %s (cluster size %d)\n",
		rec.Matched[0].Source, len(rec.Cluster.Members))
	return nil
}

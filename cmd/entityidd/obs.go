// HTTP-layer observability: per-route request metrics, structured
// access logging with request IDs, the /metrics and /debug/slow
// endpoints, and the opt-in debug listener that additionally exposes
// net/http/pprof. pprof is never mounted on the serving port — heap
// dumps and CPU profiles belong on an operator-only address.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"entityid/internal/hub"
	"entityid/internal/obs"
)

var processStart = time.Now()

var (
	mHTTPRequests = obs.Default.CounterVec("http_requests_total",
		"Requests served, by route pattern and status class", "route", "class")
	mHTTPSeconds = obs.Default.LatencyHistogramVec("http_request_seconds",
		"Request latency by route pattern", "route")
	mHTTPInFlight = obs.Default.Gauge("http_inflight",
		"Requests currently being served")
	mHTTPPanics = obs.Default.Counter("http_panics_total",
		"Handler panics recovered into a 500")
)

func init() {
	obs.Default.GaugeFunc("process_uptime_seconds",
		"Seconds since the process started", func() float64 {
			return time.Since(processStart).Seconds()
		})
}

// newRequestID returns 16 hex characters of randomness — enough to
// correlate one request across the access log, error bodies and panic
// reports without pretending to be a distributed trace ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unavailable"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the status code and body size for the access
// log and metrics. It forwards Flush so the NDJSON streaming handlers
// keep flushing through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wrote = true
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying connection
// through the wrapper (the insert handler needs EnableFullDuplex).
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// statusClass buckets an HTTP status code into one of five constant
// label values, keeping the metrics label space finite.
func statusClass(code int) string {
	switch code / 100 {
	case 1:
		return "1xx"
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	default:
		return "5xx"
	}
}

// handleMetrics serves the process-wide registry in the Prometheus
// text exposition format.
func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WritePrometheus(w)
}

// handleSlow serves the slow-op ring: the most recent commits that
// blew the threshold, newest first, each with its per-stage breakdown.
func handleSlow(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ns": hub.SlowOps.Threshold().Nanoseconds(),
		"recorded":     hub.SlowOps.Recorded(),
		"traces":       hub.SlowOps.Snapshot(),
	})
}

// newDebugMux builds the operator-only debug surface: metrics and the
// slow-op ring (also served on the main port) plus pprof.
func newDebugMux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /metrics", handleMetrics)
	m.HandleFunc("GET /debug/slow", handleSlow)
	m.HandleFunc("/debug/pprof/", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return m
}

// startDebugServer listens on addr and serves the debug mux in the
// background. The returned server owns the listener: Close stops it.
func startDebugServer(addr string) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("debug listener: %w", err)
	}
	srv := &http.Server{
		Handler:           newDebugMux(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}

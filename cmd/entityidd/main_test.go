package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"entityid/internal/value"
)

// do runs one request against the server and decodes a JSON object
// response.
func do(t *testing.T, srv *server, method, path, body string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	out := map[string]any{}
	if len(bytes.TrimSpace(rw.Body.Bytes())) > 0 && !strings.Contains(rw.Header().Get("Content-Type"), "ndjson") {
		if err := json.Unmarshal(rw.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, rw.Body.String(), err)
		}
	}
	return rw.Code, out
}

// ndjson runs one request and decodes every NDJSON line.
func ndjson(t *testing.T, srv *server, method, path, body string) (int, []map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	var lines []map[string]any
	for _, line := range strings.Split(rw.Body.String(), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		m := map[string]any{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("%s %s: bad NDJSON line %q: %v", method, path, line, err)
		}
		lines = append(lines, m)
	}
	return rw.Code, lines
}

// TestServerEndToEnd drives the acceptance scenario over HTTP: three
// sources, per-pair knowledge with different extended keys, streaming
// NDJSON ingest, deterministic global clusters, a merged record, and a
// transitive-uniqueness rejection that leaves state untouched.
func TestServerEndToEnd(t *testing.T) {
	srv := newServer()

	for _, src := range []string{
		`{"name":"zagat","attrs":[{"name":"name"},{"name":"street"},{"name":"cuisine"},{"name":"phone"}],"key":["name","street"]}`,
		`{"name":"michelin","attrs":[{"name":"name"},{"name":"city"},{"name":"speciality"},{"name":"phone"}],"key":["name","city"]}`,
		`{"name":"infatuation","attrs":[{"name":"name"},{"name":"neighborhood"},{"name":"speciality"},{"name":"phone"}],"key":["name","neighborhood"]}`,
	} {
		if code, out := do(t, srv, "POST", "/v1/sources", src); code != http.StatusCreated {
			t.Fatalf("source: %d %v", code, out)
		}
	}
	// Duplicate source rejected.
	if code, _ := do(t, srv, "POST", "/v1/sources", `{"name":"zagat","attrs":[{"name":"name"}]}`); code != http.StatusConflict {
		t.Fatalf("duplicate source accepted: %d", code)
	}

	ilfds := `["speciality=hunan -> cuisine=chinese","speciality=gyros -> cuisine=greek","speciality=mughalai -> cuisine=indian"]`
	links := []string{
		`{"left":"zagat","right":"michelin","extkey":["name","cuisine"],"ilfds":` + ilfds + `,"attrs":[
			{"name":"name","left":"name","right":"name"},{"name":"street","left":"street"},
			{"name":"city","right":"city"},{"name":"cuisine","left":"cuisine"},
			{"name":"speciality","right":"speciality"},{"name":"phone","left":"phone","right":"phone"}]}`,
		`{"left":"zagat","right":"infatuation","extkey":["name","cuisine"],"ilfds":` + ilfds + `,"attrs":[
			{"name":"name","left":"name","right":"name"},{"name":"street","left":"street"},
			{"name":"hood","right":"neighborhood"},{"name":"cuisine","left":"cuisine"},
			{"name":"speciality","right":"speciality"},{"name":"phone","left":"phone","right":"phone"}]}`,
		`{"left":"michelin","right":"infatuation","extkey":["phone"],"attrs":[
			{"name":"name","left":"name","right":"name"},{"name":"city","left":"city"},
			{"name":"hood","right":"neighborhood"},{"name":"speciality","left":"speciality","right":"speciality"},
			{"name":"phone","left":"phone","right":"phone"}]}`,
	}
	for _, l := range links {
		if code, out := do(t, srv, "POST", "/v1/links", l); code != http.StatusCreated {
			t.Fatalf("link: %d %v", code, out)
		}
	}

	// Streaming ingest. The zagat tuples commit first in their own
	// request; the pipeline commits lines in order, so the cross-source
	// request's "matched" output below is deterministic.
	code, results := ndjson(t, srv, "POST", "/v1/insert", strings.Join([]string{
		`{"source":"zagat","tuple":["villagewok","wash ave","chinese","612-0001"]}`,
		`{"source":"zagat","tuple":["goldenleaf","lake st","chinese","612-0002"]}`,
	}, "\n"))
	if code != http.StatusOK || len(results) != 2 {
		t.Fatalf("insert: %d, %d results", code, len(results))
	}
	// The cross-source batch includes one malformed line (wrong arity)
	// reported in place without aborting the batch.
	code, results = ndjson(t, srv, "POST", "/v1/insert", strings.Join([]string{
		`{"source":"michelin","tuple":["villagewok","minneapolis","hunan","612-0001"]}`,
		`{"source":"michelin","tuple":["too","short"]}`,
		`{"source":"infatuation","tuple":["anjuman","cathedral hill","mughalai","612-0004"]}`,
	}, "\n"))
	if code != http.StatusOK || len(results) != 3 {
		t.Fatalf("insert: %d, %d results", code, len(results))
	}
	for i, want := range []bool{true, false, true} {
		if results[i]["ok"] != want {
			t.Fatalf("insert line %d: ok=%v want %v (%v)", i, results[i]["ok"], want, results[i])
		}
	}
	// The michelin villagewok matched the zagat one.
	if m := results[0]["matched"].([]any); len(m) != 1 {
		t.Fatalf("villagewok matched %v", results[0]["matched"])
	}

	// Cluster lookup with merged record.
	code, cl := do(t, srv, "GET", "/v1/cluster?source=michelin&key=villagewok&key=minneapolis&merge=coalesce", "")
	if code != http.StatusOK {
		t.Fatalf("cluster: %d %v", code, cl)
	}
	if got := len(cl["members"].([]any)); got != 2 {
		t.Fatalf("cluster members %d, want 2", got)
	}
	merged := cl["merged"].(map[string]any)
	for attr, want := range map[string]string{
		"name": "villagewok", "cuisine": "chinese", "speciality": "hunan",
		"street": "wash ave", "city": "minneapolis", "phone": "612-0001",
	} {
		if merged[attr] != want {
			t.Fatalf("merged[%s] = %v, want %s", attr, merged[attr], want)
		}
	}

	// Transitive uniqueness violation over HTTP: matches goldenleaf via
	// (name, derived cuisine) and villagewok's cluster via phone.
	code, results = ndjson(t, srv, "POST", "/v1/insert",
		`{"source":"infatuation","tuple":["goldenleaf","uptown","hunan","612-0001"]}`)
	if code != http.StatusOK || len(results) != 1 || results[0]["ok"] != false {
		t.Fatalf("violation not rejected: %d %v", code, results)
	}
	if msg := results[0]["error"].(string); !strings.Contains(msg, "transitive uniqueness") {
		t.Fatalf("unexpected rejection: %s", msg)
	}

	// State rolled back: stats as before the rejected insert.
	code, stats := do(t, srv, "GET", "/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats["tuples"].(float64) != 4 || stats["matches"].(float64) != 1 || stats["clusters"].(float64) != 3 {
		t.Fatalf("stats after rollback: %v", stats)
	}

	// Cluster enumeration is deterministic and complete.
	code, clusters := ndjson(t, srv, "GET", "/v1/clusters", "")
	if code != http.StatusOK || len(clusters) != 3 {
		t.Fatalf("clusters: %d, %d lines", code, len(clusters))
	}
	if clusters[0]["id"] != "zagat/0" {
		t.Fatalf("first cluster %v", clusters[0]["id"])
	}
}

func TestServerIdentityRuleLinks(t *testing.T) {
	srv := newServer()
	do(t, srv, "POST", "/v1/sources", `{"name":"a","attrs":[{"name":"id"},{"name":"name"},{"name":"phone"}],"key":["id"]}`)
	do(t, srv, "POST", "/v1/sources", `{"name":"b","attrs":[{"name":"id"},{"name":"name"},{"name":"phone"}],"key":["id"]}`)
	code, out := do(t, srv, "POST", "/v1/links", `{"left":"a","right":"b",
		"attrs":[{"name":"id_a","left":"id"},{"name":"id_b","right":"id"},
		         {"name":"name","left":"name","right":"name"},{"name":"phone","left":"phone","right":"phone"}],
		"extkey":["name"],
		"identity":[{"name":"phone-match","eq":["phone"]}]}`)
	if code != http.StatusCreated {
		t.Fatalf("link: %d %v", code, out)
	}
	// a0 and b0 share no name but the identity rule pairs them on phone
	// — through the incremental (streaming) path. a0 commits in its own
	// request so the b0 match outcome is deterministic.
	ndjson(t, srv, "POST", "/v1/insert", `{"source":"a","tuple":["a0","alpha","555-1"]}`)
	_, results := ndjson(t, srv, "POST", "/v1/insert", `{"source":"b","tuple":["b0","beta","555-1"]}`)
	if results[0]["ok"] != true {
		t.Fatalf("insert: %v", results[0])
	}
	if m := results[0]["matched"].([]any); len(m) != 1 {
		t.Fatalf("identity-rule streaming match missed: %v", results[0])
	}
}

func TestServerTypedKeyLookup(t *testing.T) {
	// Key query parameters must be parsed with the key attributes'
	// declared kinds: an int-keyed source is unreachable if the server
	// compares string values against stored ints.
	srv := newServer()
	do(t, srv, "POST", "/v1/sources", `{"name":"a","attrs":[{"name":"id","kind":"int"},{"name":"name"}],"key":["id"]}`)
	do(t, srv, "POST", "/v1/sources", `{"name":"b","attrs":[{"name":"id","kind":"int"},{"name":"name"}],"key":["id"]}`)
	do(t, srv, "POST", "/v1/links", `{"left":"a","right":"b","extkey":["name"],"attrs":[
		{"name":"id_a","left":"id"},{"name":"id_b","right":"id"},{"name":"name","left":"name","right":"name"}]}`)
	ndjson(t, srv, "POST", "/v1/insert", `{"source":"a","tuple":[5,"alpha"]}`)
	_, results := ndjson(t, srv, "POST", "/v1/insert", `{"source":"b","tuple":[7,"alpha"]}`)
	if results[0]["ok"] != true {
		t.Fatalf("insert: %v", results[0])
	}
	code, cl := do(t, srv, "GET", "/v1/cluster?source=a&key=5", "")
	if code != http.StatusOK {
		t.Fatalf("int-key lookup: %d %v", code, cl)
	}
	if got := len(cl["members"].([]any)); got != 2 {
		t.Fatalf("cluster members %d, want 2", got)
	}
	// Wrong arity and unknown source are client errors, not panics.
	if code, _ := do(t, srv, "GET", "/v1/cluster?source=a&key=5&key=6", ""); code != http.StatusBadRequest {
		t.Fatalf("arity mismatch: %d", code)
	}
	if code, _ := do(t, srv, "GET", "/v1/cluster?source=zzz&key=5", ""); code != http.StatusNotFound {
		t.Fatalf("unknown source: %d", code)
	}
}

func TestDemoRuns(t *testing.T) {
	var b bytes.Buffer
	if err := runDemo(&b); err != nil {
		t.Fatalf("demo: %v\n%s", err, b.String())
	}
	for _, want := range []string{
		"4 clusters",
		"zagat[villagewok] ≡ michelin[villagewok]",
		"transitive uniqueness violation",
		"state unchanged",
		"corrected insert clusters with: zagat",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("demo output missing %q:\n%s", want, b.String())
		}
	}
}

// TestJSONToValueIntRange pins the float64→int64 conversion guards:
// JSON numbers arrive as float64, so non-integral values, values beyond
// the int64 range (where Go's float→int conversion is
// implementation-defined) and the first excluded value 2^63 must all be
// rejected, while every in-range integral float converts exactly.
func TestJSONToValueIntRange(t *testing.T) {
	ok := []float64{0, 1, -1, 1 << 53, -(1 << 53), -9223372036854775808}
	for _, v := range ok {
		got, err := jsonToValue(v, value.KindInt)
		if err != nil {
			t.Fatalf("jsonToValue(%v): %v", v, err)
		}
		if got.IntVal() != int64(v) {
			t.Fatalf("jsonToValue(%v) = %d", v, got.IntVal())
		}
	}
	bad := []float64{
		9223372036854775808,  // 2^63: first value past int64
		-9223372036854777856, // next float64 below -2^63
		1e300, -1e300, 1.5, -0.25,
	}
	for _, v := range bad {
		if _, err := jsonToValue(v, value.KindInt); err == nil {
			t.Fatalf("jsonToValue(%v) accepted", v)
		}
	}
}

// TestInsertBodyCap pins the streaming ingest size cap: a body past
// -max-insert-body is truncated at the cap — lines before it are acked
// and committed, and the stream ends with a terminal error line instead
// of a whole-body 413 (headers are long gone by then).
func TestInsertBodyCap(t *testing.T) {
	srv := newServer()
	srv.maxInsertBody = 256
	do(t, srv, "POST", "/v1/sources", `{"name":"a","attrs":[{"name":"id"}],"key":["id"]}`)
	var b strings.Builder
	for i := 0; b.Len() < 1024; i++ {
		fmt.Fprintf(&b, `{"source":"a","tuple":["row-%d"]}`+"\n", i)
	}
	code, lines := ndjson(t, srv, "POST", "/v1/insert", b.String())
	if code != http.StatusOK || len(lines) == 0 {
		t.Fatalf("oversized insert body: %d, %d lines", code, len(lines))
	}
	last := lines[len(lines)-1]
	if last["terminal"] != true || !strings.Contains(last["error"].(string), "exceeds 256 bytes") {
		t.Fatalf("missing terminal cap error: %v", last)
	}
	acked := 0
	for _, ln := range lines[:len(lines)-1] {
		if ln["ok"] != true {
			t.Fatalf("pre-cap line not acked: %v", ln)
		}
		acked++
	}
	if acked == 0 {
		t.Fatalf("no lines acked before the cap: %v", lines)
	}
	// Every acked line is committed; nothing past the cap leaked in.
	if code, stats := do(t, srv, "GET", "/v1/stats", ""); code != http.StatusOK || stats["tuples"].(float64) != float64(acked) {
		t.Fatalf("committed tuples != acked lines (%d): %v", acked, stats)
	}
	// Control-plane bodies have their own (fixed) cap and still 413.
	huge := `{"name":"big","attrs":[{"name":"` + strings.Repeat("x", maxControlBody) + `"}]}`
	if code, _ := do(t, srv, "POST", "/v1/sources", huge); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized source body: %d", code)
	}
}

// TestInsertClientDisconnect pins the mid-stream disconnect contract: a
// client that vanishes leaves the hub with exactly the acked prefix —
// the handler stops pulling, cancels the pipeline stream, and exits
// without wedging any goroutine.
func TestInsertClientDisconnect(t *testing.T) {
	srv := newServer()
	do(t, srv, "POST", "/v1/sources", `{"name":"a","attrs":[{"name":"id"}],"key":["id"]}`)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/insert", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	// Feed a few lines, read their acks so we know they were committed,
	// then walk away mid-stream with the body still open.
	const fed = 3
	go func() {
		for i := 0; i < fed; i++ {
			fmt.Fprintf(pw, `{"source":"a","tuple":["row-%d"]}`+"\n", i)
		}
	}()
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < fed; i++ {
		if !sc.Scan() {
			t.Fatalf("ack %d never arrived: %v", i, sc.Err())
		}
		m := map[string]any{}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil || m["ok"] != true {
			t.Fatalf("ack %d: %q (%v)", i, sc.Text(), err)
		}
	}
	resp.Body.Close()
	pw.CloseWithError(io.ErrClosedPipe)

	// The handler unwinds on its own; only the acked prefix is durable
	// state. Poll briefly: disconnect propagation is asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, stats := do(t, srv, "GET", "/v1/stats", "")
		if code == http.StatusOK && stats["tuples"].(float64) == fed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("acked prefix not settled: %v", stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClustersAbortsOnDisconnect pins that a vanished client stops the
// enumeration: a request whose context is already canceled streams
// nothing.
func TestClustersAbortsOnDisconnect(t *testing.T) {
	srv := newServer()
	do(t, srv, "POST", "/v1/sources", `{"name":"a","attrs":[{"name":"id"}],"key":["id"]}`)
	ndjson(t, srv, "POST", "/v1/insert", `{"source":"a","tuple":["r0"]}`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/v1/clusters", nil).WithContext(ctx)
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	if body := strings.TrimSpace(rw.Body.String()); body != "" {
		t.Fatalf("canceled request still streamed: %q", body)
	}
}

// Command entityid is the reproduction of the paper's §6 prototype: it
// loads two relations (CSV) and a set of ILFDs (rule file), lets the
// user pick an extended key, verifies it, and prints the extended
// relations, the matching table and the integrated table.
//
// Usage:
//
//	entityid -r r.csv -s s.csv -ilfds rules.txt \
//	    -map name=name:name -map cuisine=cuisine: -map speciality=:speciality \
//	    -extkey name,cuisine,speciality [-print extended,matchtable,integtable]
//
//	entityid -example3            # run the paper's Example 3 end-to-end
//	entityid -example3 -extkey name   # reproduce the §6.3 unsound-key session
//
// CSV headers are "attr[:kind]" with key columns starred ("*name"); the
// rule file holds one ILFD per line ("speciality=Hunan ->
// cuisine=Chinese"). Each -map flag is integrated=rattr:sattr with
// either side optionally empty.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"entityid/internal/derive"
	"entityid/internal/ilfd"
	"entityid/internal/integrate"
	"entityid/internal/match"
	"entityid/internal/paperdata"
	"entityid/internal/relation"
	"entityid/internal/value"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "entityid:", err)
		os.Exit(1)
	}
}

type mapFlags []string

func (m *mapFlags) String() string { return strings.Join(*m, ",") }
func (m *mapFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("entityid", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		rPath    = fs.String("r", "", "CSV file for relation R")
		sPath    = fs.String("s", "", "CSV file for relation S")
		ilfdPath = fs.String("ilfds", "", "ILFD rule file (one per line)")
		extKey   = fs.String("extkey", "", "comma-separated extended key (integrated names)")
		printSel = fs.String("print", "extended,matchtable,integtable", "comma-separated outputs")
		example3 = fs.Bool("example3", false, "run the paper's Example 3 fixtures")
		fixpoint = fs.Bool("fixpoint", false, "use fixpoint derivation instead of Prolog-style cut")
		analyze  = fs.Bool("analyze", false, "analyze the ILFD knowledge base instead of matching")
		explain  = fs.String("explain", "", "with -analyze: derive the given ILFD with a proof trace")
		maps     mapFlags
	)
	fs.Var(&maps, "map", "attribute map entry integrated=rattr:sattr (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg match.Config
	if *example3 {
		cfg = match.Config{
			R: paperdata.Table5R(),
			S: paperdata.Table5S(),
			Attrs: []match.AttrMap{
				{Name: "name", R: "name", S: "name"},
				{Name: "cuisine", R: "cuisine", S: ""},
				{Name: "speciality", R: "", S: "speciality"},
				{Name: "street", R: "street", S: ""},
				{Name: "county", R: "", S: "county"},
			},
			ExtKey: paperdata.Example3ExtendedKey(),
			ILFDs:  paperdata.Example3ILFDs(),
		}
	} else {
		if *rPath == "" || *sPath == "" {
			return fmt.Errorf("need -r and -s (or -example3)")
		}
		r, err := loadCSV("R", *rPath)
		if err != nil {
			return err
		}
		s, err := loadCSV("S", *sPath)
		if err != nil {
			return err
		}
		cfg.R, cfg.S = r, s
		for _, m := range maps {
			am, err := parseMap(m)
			if err != nil {
				return err
			}
			cfg.Attrs = append(cfg.Attrs, am)
		}
		if *ilfdPath != "" {
			f, err := os.Open(*ilfdPath)
			if err != nil {
				return err
			}
			set, err := ilfd.ParseSet(f, nil)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", *ilfdPath, err)
			}
			cfg.ILFDs = set
		}
	}
	if *analyze {
		return analyzeILFDs(w, cfg.ILFDs, *explain)
	}
	if *extKey != "" {
		cfg.ExtKey = splitComma(*extKey)
	}
	if len(cfg.ExtKey) == 0 {
		return fmt.Errorf("need -extkey")
	}
	if *fixpoint {
		cfg.DeriveMode = derive.Fixpoint
	}

	// The prototype's setup_extkey flow: list candidates, build, verify.
	fmt.Fprintf(w, "extended key: {%s}\n", strings.Join(cfg.ExtKey, ", "))
	res, err := match.Build(cfg)
	if err != nil {
		return err
	}
	for _, c := range res.Conflicts {
		fmt.Fprintf(w, "warning: %v\n", c)
	}
	if verr := res.Verify(); verr != nil {
		fmt.Fprintf(w, "Message: The extended key causes unsound matching result.\n")
		fmt.Fprintf(w, "  (%v)\n", verr)
	} else {
		fmt.Fprintf(w, "Message: The extended key is verified.\n")
	}
	fmt.Fprintln(w)

	want := map[string]bool{}
	for _, p := range splitComma(*printSel) {
		want[p] = true
	}
	if want["extended"] {
		fmt.Fprintln(w, res.RPrime.String())
		fmt.Fprintln(w, res.SPrime.String())
	}
	if want["matchtable"] {
		fmt.Fprintln(w, res.RenderMT("matching table"))
	}
	if want["integtable"] {
		tab, err := integrate.Build(res, integrate.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, tab.Render("integrated table"))
	}
	return nil
}

// analyzeILFDs prints a knowledge-base report: the rules, the
// attributes they can derive, redundancies, a minimal cover, the
// relational (ILFD table) decomposition, and — when requested — a
// derivation proof for one goal.
func analyzeILFDs(w io.Writer, fs ilfd.Set, goal string) error {
	if len(fs) == 0 {
		return fmt.Errorf("no ILFDs to analyze (use -ilfds or -example3)")
	}
	fmt.Fprintf(w, "ILFDs (%d):\n", len(fs))
	for i, f := range fs {
		marker := " "
		if ilfd.Redundant(fs, i) {
			marker = "R" // implied by the others
		}
		fmt.Fprintf(w, "  %s I%d: %v\n", marker, i+1, f)
	}
	fmt.Fprintln(w, "  (R = redundant: implied by the remaining rules)")

	fmt.Fprint(w, "\nderivable attributes:")
	derivable := derive.Derivable(fs)
	attrs := make([]string, 0, len(derivable))
	for a := range derivable {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		fmt.Fprintf(w, " %s", a)
	}
	fmt.Fprintln(w)

	cover := ilfd.MinimalCover(fs)
	fmt.Fprintf(w, "\nminimal cover (%d rules):\n", len(cover))
	for _, f := range cover {
		fmt.Fprintf(w, "  %v\n", f)
	}

	tables, rest, err := ilfd.FromSet(fs, func(string) value.Kind { return value.KindString })
	if err != nil {
		fmt.Fprintf(w, "\nrelational storage: not possible (%v)\n", err)
	} else {
		fmt.Fprintf(w, "\nrelational storage (§4.2): %d ILFD table(s), %d rule(s) kept in rule form\n",
			len(tables), len(rest))
		for _, tab := range tables {
			fmt.Fprintln(w)
			fmt.Fprint(w, tab.Relation().String())
		}
	}

	if goal != "" {
		g, err := ilfd.ParseLine(goal)
		if err != nil {
			return fmt.Errorf("-explain: %w", err)
		}
		proof, ok := ilfd.Explain(fs, g)
		fmt.Fprintln(w)
		if !ok {
			fmt.Fprintf(w, "goal %v does NOT follow from the ILFDs\n", g)
			return nil
		}
		fmt.Fprint(w, proof.String())
	}
	return nil
}

func loadCSV(name, path string) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relation.ReadCSV(name, f)
}

// parseMap parses integrated=rattr:sattr.
func parseMap(s string) (match.AttrMap, error) {
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return match.AttrMap{}, fmt.Errorf("bad -map %q: want integrated=rattr:sattr", s)
	}
	name := s[:eq]
	rest := s[eq+1:]
	colon := strings.IndexByte(rest, ':')
	if colon < 0 {
		return match.AttrMap{}, fmt.Errorf("bad -map %q: want integrated=rattr:sattr", s)
	}
	return match.AttrMap{Name: name, R: rest[:colon], S: rest[colon+1:]}, nil
}

func splitComma(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExample3Session(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-example3"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"The extended key is verified.",
		"matching table",
		"integrated table",
		"Anjuman", "It'sGreek", "TwinCities", "VillageWok", "null",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestUnsoundKeySession(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-example3", "-extkey", "name"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "unsound matching result") {
		t.Errorf("missing unsound warning:\n%s", b.String())
	}
}

func TestCSVAndRuleFileFlow(t *testing.T) {
	dir := t.TempDir()
	rPath := filepath.Join(dir, "r.csv")
	sPath := filepath.Join(dir, "s.csv")
	rulePath := filepath.Join(dir, "rules.txt")
	writeFile(t, rPath, "*name,*cuisine,street\nTwinCities,Indian,Univ.Ave.\n")
	writeFile(t, sPath, "*name,*speciality,city\nTwinCities,Mughalai,St. Paul\n")
	writeFile(t, rulePath, "# Example 2\nspeciality=Mughalai -> cuisine=Indian\n")

	var b strings.Builder
	err := run([]string{
		"-r", rPath, "-s", sPath, "-ilfds", rulePath,
		"-map", "name=name:name",
		"-map", "cuisine=cuisine:",
		"-map", "speciality=:speciality",
		"-extkey", "name,cuisine",
		"-print", "matchtable",
	}, &b)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "The extended key is verified.") {
		t.Errorf("not verified:\n%s", out)
	}
	if !strings.Contains(out, "Mughalai") {
		t.Errorf("match missing:\n%s", out)
	}
	// Only the matching table was requested.
	if strings.Contains(out, "integrated table") {
		t.Errorf("unexpected integrated table:\n%s", out)
	}
}

func TestFixpointFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-example3", "-fixpoint"}, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "The extended key is verified.") {
		t.Errorf("fixpoint run failed:\n%s", b.String())
	}
}

func TestAnalyzeMode(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-example3", "-analyze",
		"-explain", "name=It'sGreek & street=FrontAve. -> speciality=Gyros"}, &b)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"ILFDs (8):",
		"derivable attributes: county cuisine speciality",
		"minimal cover (8 rules):",
		"4 ILFD table(s)",
		"IM(speciality;cuisine)",
		"goal:",
		"1. apply",
		"2. apply",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeUnprovableGoal(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-example3", "-analyze", "-explain", "cuisine=Greek -> speciality=Gyros"}, &b)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "does NOT follow") {
		t.Errorf("unprovable goal not reported:\n%s", b.String())
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var b strings.Builder
	// No ILFDs at all.
	dir := t.TempDir()
	writeFile(t, dir+"/r.csv", "*a\nx\n")
	writeFile(t, dir+"/s.csv", "*a\nx\n")
	if err := run([]string{"-r", dir + "/r.csv", "-s", dir + "/s.csv", "-analyze"}, &b); err == nil {
		t.Error("analyze without ILFDs accepted")
	}
	// Bad explain goal.
	if err := run([]string{"-example3", "-analyze", "-explain", "garbage"}, &b); err == nil {
		t.Error("bad goal accepted")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing files", nil, "need -r and -s"},
		{"missing key", []string{"-r", "x", "-s", "y"}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var b strings.Builder
			err := run(c.args, &b)
			if err == nil {
				t.Fatalf("run(%v) succeeded", c.args)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want contains %q", err, c.want)
			}
		})
	}
}

func TestParseMap(t *testing.T) {
	am, err := parseMap("cuisine=cuisine:")
	if err != nil || am.Name != "cuisine" || am.R != "cuisine" || am.S != "" {
		t.Errorf("parseMap = %+v, %v", am, err)
	}
	am, err = parseMap("speciality=:s_spec")
	if err != nil || am.R != "" || am.S != "s_spec" {
		t.Errorf("parseMap = %+v, %v", am, err)
	}
	if _, err := parseMap("noequals"); err == nil {
		t.Error("bad map accepted")
	}
	if _, err := parseMap("a=nocolon"); err == nil {
		t.Error("missing colon accepted")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

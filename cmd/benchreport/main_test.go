package main

import (
	"strings"
	"testing"
)

func TestSingleExperiment(t *testing.T) {
	var b strings.Builder
	if code := run([]string{"-id", "T7"}, &b); code != 0 {
		t.Fatalf("run = %d\n%s", code, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "[T7] REPRODUCED") {
		t.Errorf("T7 not reproduced:\n%s", out)
	}
	if !strings.Contains(out, "1/1 experiments reproduced") {
		t.Errorf("summary wrong:\n%s", out)
	}
}

func TestUnknownID(t *testing.T) {
	var b strings.Builder
	if code := run([]string{"-id", "ZZ"}, &b); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
}

func TestCheckModeOnFastSubset(t *testing.T) {
	// P2 is quick and must reproduce; -check keeps exit 0.
	var b strings.Builder
	if code := run([]string{"-id", "P2", "-check"}, &b); code != 0 {
		t.Fatalf("run = %d\n%s", code, b.String())
	}
}

// Command benchreport runs every experiment in the reproduction — the
// paper's Tables 1–8, Figures 1–4, both §6 prototype sessions, and the
// added sweeps S1–S4 — and prints each rendered artifact with its
// paper-vs-measured verdict. EXPERIMENTS.md is generated from this
// output.
//
// Usage:
//
//	benchreport          # print all reports
//	benchreport -id T7   # print one report
//	benchreport -check   # exit 1 if any reproduction check fails
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"entityid/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		id    = fs.String("id", "", "run only the experiment with this id (e.g. T7, F3)")
		check = fs.Bool("check", false, "exit nonzero if any reproduction check fails")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	failures := 0
	ran := 0
	for _, runner := range experiments.Registry() {
		if *id != "" && !strings.EqualFold(runner.ID, *id) {
			continue
		}
		rep := runner.Run()
		ran++
		fmt.Fprintf(w, "==== %s: %s ====\n", rep.ID, rep.Title)
		fmt.Fprint(w, rep.Text)
		if rep.Check == nil {
			fmt.Fprintf(w, "[%s] REPRODUCED\n\n", rep.ID)
		} else {
			failures++
			fmt.Fprintf(w, "[%s] FAILED: %v\n\n", rep.ID, rep.Check)
		}
	}
	if ran == 0 {
		fmt.Fprintf(w, "no experiment with id %q\n", *id)
		return 2
	}
	fmt.Fprintf(w, "%d/%d experiments reproduced\n", ran-failures, ran)
	if *check && failures > 0 {
		return 1
	}
	return 0
}

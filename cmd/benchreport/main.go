// Command benchreport runs every experiment in the reproduction — the
// paper's Tables 1–8, Figures 1–4, both §6 prototype sessions, and the
// added sweeps S1–S4 — and prints each rendered artifact with its
// paper-vs-measured verdict. EXPERIMENTS.md is generated from this
// output.
//
// Usage:
//
//	benchreport                          # print all reports
//	benchreport -id T7                   # print one report
//	benchreport -check                   # exit 1 if any reproduction check fails
//	benchreport -benchjson BENCH_match.json
//	                                     # time the scale matching workload
//	                                     # (engine vs naive) and write the
//	                                     # JSON perf record tracked across PRs
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"entityid/internal/admit"
	"entityid/internal/datagen"
	"entityid/internal/experiments"
	"entityid/internal/hub"
	"entityid/internal/match"
	"entityid/internal/obs"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
	"entityid/internal/wal/errfs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		id        = fs.String("id", "", "run only the experiment with this id (e.g. T7, F3)")
		check     = fs.Bool("check", false, "exit nonzero if any reproduction check fails")
		benchJSON = fs.String("benchjson", "", "measure the scale matching workload (engine vs naive) and write a JSON report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *benchJSON != "" {
		return runBenchJSON(*benchJSON, w)
	}
	failures := 0
	ran := 0
	for _, runner := range experiments.Registry() {
		if *id != "" && !strings.EqualFold(runner.ID, *id) {
			continue
		}
		rep := runner.Run()
		ran++
		fmt.Fprintf(w, "==== %s: %s ====\n", rep.ID, rep.Title)
		fmt.Fprint(w, rep.Text)
		if rep.Check == nil {
			fmt.Fprintf(w, "[%s] REPRODUCED\n\n", rep.ID)
		} else {
			failures++
			fmt.Fprintf(w, "[%s] FAILED: %v\n\n", rep.ID, rep.Check)
		}
	}
	if ran == 0 {
		fmt.Fprintf(w, "no experiment with id %q\n", *id)
		return 2
	}
	fmt.Fprintf(w, "%d/%d experiments reproduced\n", ran-failures, ran)
	if *check && failures > 0 {
		return 1
	}
	return 0
}

// benchRecord is the perf trajectory record written to BENCH_match.json:
// one engine-vs-naive measurement of the canonical scale workload
// (datagen.ScaleMatchConfig) per PR, so regressions and wins are visible
// in version control.
type benchRecord struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`

	RTuples       int `json:"r_tuples"`
	STuples       int `json:"s_tuples"`
	MTPairs       int `json:"mt_pairs"`
	DistinctRules int `json:"distinct_rules"`

	Matching     int `json:"matching"`
	NotMatching  int `json:"not_matching"`
	Undetermined int `json:"undetermined"`

	EngineBuildNS  int64   `json:"engine_build_ns"`
	NaiveBuildNS   int64   `json:"naive_build_ns"`
	BuildSpeedup   float64 `json:"build_speedup"`
	EngineCountsNS int64   `json:"engine_counts_ns"`
	NaiveCountsNS  int64   `json:"naive_counts_ns"`
	CountsSpeedup  float64 `json:"counts_speedup"`

	// Hub ingest: K-source concurrent streaming through the federation
	// hub (BenchmarkHubIngest's workload at fixed scale).
	HubSources      int     `json:"hub_sources"`
	HubTuples       int     `json:"hub_tuples"`
	HubMatches      int     `json:"hub_matches"`
	HubClusters     int     `json:"hub_clusters"`
	HubIngestNS     int64   `json:"hub_ingest_ns"`
	HubTuplesPerSec float64 `json:"hub_tuples_per_sec"`

	// Streaming dataflow ingest (PR 8): the same canonical workload
	// through IngestStream — per-item acks through the resident
	// pipeline stages, same commit semantics — which must hold up
	// against the batch path; plus a 100k-tuple bulk stream over a
	// lazily generated single-source feed, whose peak heap growth is
	// the pipeline's memory story (the hub state itself plus bounded
	// stage buffers, never an O(stream) ingest queue).
	StreamIngestNS     int64   `json:"ingest_stream_ns"`
	StreamTuplesPerSec float64 `json:"ingest_stream_tuples_per_sec"`
	StreamBulkTuples   int     `json:"stream_bulk_tuples"`
	StreamBulkPerSec   float64 `json:"stream_bulk_tuples_per_sec"`
	StreamBulkPeakHeap int64   `json:"stream_bulk_peak_heap_bytes"`

	// WAL replay: recovery of the same hub workload from its
	// write-ahead log alone (no snapshot), i.e. cold-start cost per
	// logged record.
	ReplayRecords    int     `json:"replay_records"`
	ReplayNS         int64   `json:"replay_ns"`
	ReplayRecsPerSec float64 `json:"replay_recs_per_sec"`

	// Chunked snapshots (PR 4): bytes a snapshot writes when the whole
	// hub changed vs when ~1% of one source changed (unchanged sections
	// carry forward by reference), and recovery wall time from the
	// chunked snapshot (sections decoded in parallel) vs the PR 3
	// single-frame encoding of the same state.
	SnapFullBytes      int64   `json:"snap_full_bytes"`
	SnapIncrBytes      int64   `json:"snap_incr_bytes"`
	SnapIncrRatio      float64 `json:"snap_incr_ratio"`
	SnapSectionsReused int     `json:"snap_sections_reused"`
	RecoverChunkedNS   int64   `json:"recover_chunked_ns"`
	RecoverV1FrameNS   int64   `json:"recover_v1_frame_ns"`

	// Read-scalable serving (PR 5, BenchmarkHubServe's workload): point
	// cluster reads hammered while ingest streams continuously (the
	// withheld half of the workload, then synthetic singletons until the
	// readers finish). Reads take only per-shard/per-source locks, so
	// the multi-reader series scales with cores (the ratio is ~1 on a
	// 1-core runner), and the enumeration streams in bounded pages
	// instead of materialising the hub.
	ServeReaders         int     `json:"serve_readers"`
	ServeReadsPerSec1    float64 `json:"serve_reads_per_sec_1reader"`
	ServeReadsPerSec     float64 `json:"serve_reads_per_sec"`
	ServeReadScaling     float64 `json:"serve_read_scaling"`
	ServeIngestPerSec    float64 `json:"serve_ingest_tuples_per_sec"`
	ClustersStreamPerSec float64 `json:"clusters_stream_per_sec"`
	ClustersStreamPages  int     `json:"clusters_stream_pages"`

	// Degraded serving (PR 6): point reads against a hub whose disk is
	// failing (every write answers ENOSPC through the errfs injector, so
	// the hub is read-only with ingest rejected typedly). The read rate
	// should be of the same order as healthy single-reader serving —
	// degradation is not allowed to tax the read path.
	DegradedReadsPerSec float64 `json:"degraded_reads_per_sec"`

	// Observability overhead (PR 7): the hub ingest workload with the
	// obs clock disabled (baseline — counters still tick, histogram and
	// slow-op timing capture off) vs the fully instrumented default.
	// The ratio prices the observability plane; it must stay within a
	// few percent of 1.0.
	ObsBaselineNS      int64   `json:"obs_baseline_ingest_ns"`
	ObsInstrumentedNS  int64   `json:"obs_instrumented_ingest_ns"`
	ObsBaselineTPS     float64 `json:"obs_baseline_tuples_per_sec"`
	ObsInstrumentedTPS float64 `json:"obs_instrumented_tuples_per_sec"`
	ObsOverheadRatio   float64 `json:"obs_overhead_ratio"`

	// Admission control under synthetic overload: many more workers than
	// gate slots hammer the ingest gate; the shed rate is the fraction
	// turned away (each turned-away request is a fast 429, not a queue
	// entry), and admitted throughput is what got through the gate.
	OverloadWorkers  int     `json:"overload_workers"`
	OverloadCapacity int     `json:"overload_capacity"`
	OverloadAdmitted int64   `json:"overload_admitted"`
	OverloadShed     int64   `json:"overload_shed"`
	OverloadShedRate float64 `json:"overload_shed_rate"`

	// Disk storage backend (PR 9): the canonical hub workload on the
	// disk backend with hot tiers squeezed far below the working set.
	// Cold-read page-in latency is a full sequential scan's wall time
	// divided by the cluster records it paged back from the spill
	// tier; the hit rate is a second randomized sweep over the same
	// tier (hits and misses count only record-bearing nodes —
	// singletons never touch the tier).
	DiskColdPageIns     int64   `json:"disk_cold_read_pageins"`
	DiskColdPageInNS    int64   `json:"disk_cold_read_pagein_ns"`
	DiskHotHitRate      float64 `json:"disk_hot_hit_rate"`
	DiskHotEntries      int     `json:"disk_hot_entries"`
	DiskColdRecords     int     `json:"disk_cold_records"`
	DiskClusterBudget   int     `json:"disk_cluster_entry_budget"`
	DiskReadsPerSecCold float64 `json:"disk_reads_per_sec_coldscan"`
}

// runBenchJSON times matching-table construction and the full Figure 3
// sweep on the scale workload with the engine and with the naive
// reference, double-checks the two paths agree (a last-line defence
// behind the differential tests), and writes the JSON record.
func runBenchJSON(path string, w io.Writer) int {
	timeIt := func(f func()) int64 {
		start := time.Now()
		f()
		return time.Since(start).Nanoseconds()
	}
	best := func(runs int, f func()) int64 {
		b := timeIt(f)
		for n := 1; n < runs; n++ {
			if t := timeIt(f); t < b {
				b = t
			}
		}
		return b
	}

	engCfg := datagen.ScaleMatchConfig()
	naiveCfg := engCfg
	naiveCfg.Naive = true

	var engRes, naiveRes *match.Result
	var err error
	rec := benchRecord{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	// The engine is fast enough to take best-of-3; the naive reference
	// path is measured once (it is the slow side by orders of magnitude).
	rec.EngineBuildNS = best(3, func() {
		engRes, err = match.Build(engCfg)
	})
	if err != nil {
		fmt.Fprintf(w, "benchjson: engine build: %v\n", err)
		return 1
	}
	rec.NaiveBuildNS = timeIt(func() {
		naiveRes, err = match.Build(naiveCfg)
	})
	if err != nil {
		fmt.Fprintf(w, "benchjson: naive build: %v\n", err)
		return 1
	}

	var em, en, eu, nm, nn, nu int
	rec.EngineCountsNS = best(3, func() {
		em, en, eu = engRes.Counts()
	})
	rec.NaiveCountsNS = timeIt(func() {
		nm, nn, nu = naiveRes.Counts()
	})
	if engRes.MT.Len() != naiveRes.MT.Len() || em != nm || en != nn || eu != nu {
		fmt.Fprintf(w, "benchjson: engine and naive paths disagree: MT %d vs %d, counts (%d,%d,%d) vs (%d,%d,%d)\n",
			engRes.MT.Len(), naiveRes.MT.Len(), em, en, eu, nm, nn, nu)
		return 1
	}

	rec.RTuples = engRes.RPrime.Len()
	rec.STuples = engRes.SPrime.Len()
	rec.MTPairs = engRes.MT.Len()
	rec.DistinctRules = len(engRes.Distinct())
	rec.Matching, rec.NotMatching, rec.Undetermined = em, en, eu
	rec.BuildSpeedup = float64(rec.NaiveBuildNS) / float64(rec.EngineBuildNS)
	rec.CountsSpeedup = float64(rec.NaiveCountsNS) / float64(rec.EngineCountsNS)

	// Hub ingest: stream the canonical 4-source workload through the
	// federation hub's worker pool, best of 3.
	mw := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 4, Entities: 600, PresenceFrac: 0.6, HomonymRate: 0.1,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 2024,
	})
	items := hub.MultiInserts(mw)
	var hubErr error
	var lastHub *hub.Hub
	rec.HubIngestNS = best(3, func() {
		h, err := hub.NewFromMulti(mw)
		if err != nil {
			hubErr = err
			return
		}
		for _, res := range h.IngestBatch(items) {
			if res.Err != nil {
				hubErr = res.Err
				return
			}
		}
		lastHub = h
	})
	if hubErr != nil {
		fmt.Fprintf(w, "benchjson: hub ingest: %v\n", hubErr)
		return 1
	}
	hubStats := lastHub.Stats()
	rec.HubSources = hubStats.Sources
	rec.HubTuples = hubStats.Tuples
	rec.HubMatches = hubStats.Matches
	rec.HubClusters = hubStats.Clusters
	rec.HubTuplesPerSec = float64(len(items)) / (float64(rec.HubIngestNS) / 1e9)

	// Streaming ingest: the identical workload through the dataflow
	// pipeline with per-item results, best of 3.
	var pipeErr error
	rec.StreamIngestNS = best(3, func() {
		h, err := hub.NewFromMulti(mw)
		if err != nil {
			pipeErr = err
			return
		}
		in := make(chan hub.Insert, 256)
		go func() {
			defer close(in)
			for _, it := range items {
				in <- it
			}
		}()
		for res := range h.IngestStream(context.Background(), in, hub.StreamOptions{}) {
			if res.Err != nil {
				pipeErr = res.Err
				return
			}
		}
	})
	if pipeErr != nil {
		fmt.Fprintf(w, "benchjson: stream ingest: %v\n", pipeErr)
		return 1
	}
	rec.StreamTuplesPerSec = float64(len(items)) / (float64(rec.StreamIngestNS) / 1e9)

	// Bulk stream: 100k lazily generated single-source tuples — the
	// feeder materialises nothing, so peak heap is hub state plus the
	// pipeline's bounded buffers. Sampled heap is a trajectory metric:
	// a regression to O(body) ingest buffering roughly doubles it.
	rec.StreamBulkTuples = 100_000
	bh := hub.New()
	if err := bh.AddSource("bulk", relation.New(schema.MustNew("bulk", []schema.Attribute{
		{Name: "id", Kind: value.KindString},
		{Name: "name", Kind: value.KindString},
	}, []string{"id"}))); err != nil {
		fmt.Fprintf(w, "benchjson: bulk stream: %v\n", err)
		return 1
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseHeap := ms.HeapAlloc
	peakHeap := baseHeap
	sampStop := make(chan struct{})
	var samp sync.WaitGroup
	samp.Add(1)
	go func() {
		defer samp.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampStop:
				return
			case <-tick.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peakHeap {
					peakHeap = m.HeapAlloc
				}
			}
		}
	}()
	bulkIn := make(chan hub.Insert, 256)
	go func() {
		defer close(bulkIn)
		for i := 0; i < rec.StreamBulkTuples; i++ {
			bulkIn <- hub.Insert{Source: "bulk", Tuple: relation.Tuple{
				value.String(fmt.Sprintf("bulk-%d", i)),
				value.String(fmt.Sprintf("entity %d", i)),
			}}
		}
	}()
	bulkStart := time.Now()
	var bulkErr error
	for res := range bh.IngestStream(context.Background(), bulkIn, hub.StreamOptions{}) {
		if res.Err != nil {
			bulkErr = res.Err
		}
	}
	bulkNS := time.Since(bulkStart).Nanoseconds()
	close(sampStop)
	samp.Wait()
	if bulkErr != nil {
		fmt.Fprintf(w, "benchjson: bulk stream: %v\n", bulkErr)
		return 1
	}
	rec.StreamBulkPerSec = float64(rec.StreamBulkTuples) / (float64(bulkNS) / 1e9)
	rec.StreamBulkPeakHeap = int64(peakHeap - baseHeap)

	// Observability overhead: the identical ingest, first with the obs
	// clock disabled and then fully instrumented, best of 5 each —
	// back-to-back so both sides see the same cache and GC state.
	ingestOnce := func() error {
		h, err := hub.NewFromMulti(mw)
		if err != nil {
			return err
		}
		for _, res := range h.IngestBatch(items) {
			if res.Err != nil {
				return res.Err
			}
		}
		return nil
	}
	var obsErr error
	obs.SetEnabled(false)
	rec.ObsBaselineNS = best(5, func() {
		if err := ingestOnce(); err != nil {
			obsErr = err
		}
	})
	obs.SetEnabled(true)
	rec.ObsInstrumentedNS = best(5, func() {
		if err := ingestOnce(); err != nil {
			obsErr = err
		}
	})
	if obsErr != nil {
		fmt.Fprintf(w, "benchjson: obs overhead: %v\n", obsErr)
		return 1
	}
	rec.ObsBaselineTPS = float64(len(items)) / (float64(rec.ObsBaselineNS) / 1e9)
	rec.ObsInstrumentedTPS = float64(len(items)) / (float64(rec.ObsInstrumentedNS) / 1e9)
	rec.ObsOverheadRatio = float64(rec.ObsInstrumentedNS) / float64(rec.ObsBaselineNS)

	// Mixed serving: point cluster reads race live ingest, once with a
	// single reader and once with GOMAXPROCS readers. The ingester
	// streams the withheld half of the workload, then keeps committing
	// fresh singleton tuples until the readers finish their quota, so
	// every timed read overlaps a live commit path; the reported ingest
	// rate is what ingest sustained under that read pressure.
	serveMixed := func(readers int) (readsPerSec, ingestPerSec float64, err error) {
		h, ing, err := hub.NewServeBench(mw)
		if err != nil {
			return 0, 0, err
		}
		names := h.SourceNames()
		// Large enough that the run spans many scheduler quanta — with a
		// small quota on few cores the ingester can fail to get a single
		// slice, and the "mixed" numbers would measure a quiescent hub.
		const totalReads = 400000
		quota := totalReads / readers
		readErrs := make([]error, readers)
		var wg sync.WaitGroup
		start := time.Now()
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100 + r)))
				for i := 0; i < quota; i++ {
					src := names[rng.Intn(len(names))]
					n, err := h.SourceLen(src)
					if err != nil {
						readErrs[r] = err
						return
					}
					if n == 0 {
						continue
					}
					if _, err := h.ClusterAt(src, rng.Intn(n)); err != nil {
						readErrs[r] = err
						return
					}
				}
			}(r)
		}
		wg.Wait()
		readNS := time.Since(start).Nanoseconds()
		ingested, ingestNS, err := ing.Stop()
		if err != nil {
			return 0, 0, err
		}
		for _, e := range readErrs {
			if e != nil {
				return 0, 0, e
			}
		}
		readsPerSec = float64(quota*readers) / (float64(readNS) / 1e9)
		ingestPerSec = float64(ingested) / (float64(ingestNS) / 1e9)
		return readsPerSec, ingestPerSec, nil
	}
	rec.ServeReaders = runtime.GOMAXPROCS(0)
	// Best of 3 per reader count: the mixed run is short, so scheduler
	// noise dominates single measurements (especially at 1 core).
	serveBest := func(readers int) (reads, ingest float64, err error) {
		for run := 0; run < 3; run++ {
			r, in, e := serveMixed(readers)
			if e != nil {
				return 0, 0, e
			}
			if r > reads {
				reads, ingest = r, in
			}
		}
		return reads, ingest, nil
	}
	r1, _, serveErr := serveBest(1)
	if serveErr != nil {
		fmt.Fprintf(w, "benchjson: serve (1 reader): %v\n", serveErr)
		return 1
	}
	rN, ingestPS, serveErr := serveBest(rec.ServeReaders)
	if serveErr != nil {
		fmt.Fprintf(w, "benchjson: serve (%d readers): %v\n", rec.ServeReaders, serveErr)
		return 1
	}
	rec.ServeReadsPerSec1, rec.ServeReadsPerSec = r1, rN
	rec.ServeReadScaling = rN / r1
	rec.ServeIngestPerSec = ingestPS

	// Streaming enumeration: walk the fully ingested hub one bounded
	// page at a time, best of 3.
	var streamErr error
	streamNS := best(3, func() {
		pages, clusters := 0, 0
		cursor := ""
		for {
			page, next, err := lastHub.ClustersPage(cursor, 128)
			if err != nil {
				streamErr = err
				return
			}
			pages++
			clusters += len(page)
			if next == "" {
				break
			}
			cursor = next
		}
		rec.ClustersStreamPages = pages
		rec.ClustersStreamPerSec = float64(clusters)
	})
	if streamErr != nil {
		fmt.Fprintf(w, "benchjson: clusters stream: %v\n", streamErr)
		return 1
	}
	rec.ClustersStreamPerSec = rec.ClustersStreamPerSec / (float64(streamNS) / 1e9)

	// WAL replay: write the canonical workload through a durable hub
	// (snapshots off, so recovery replays every record), then time
	// recovery, best of 3.
	walDir, err := os.MkdirTemp("", "entityid-benchreplay")
	if err != nil {
		fmt.Fprintf(w, "benchjson: %v\n", err)
		return 1
	}
	defer os.RemoveAll(walDir)
	dh, _, err := hub.Open(walDir, hub.Options{})
	if err != nil {
		fmt.Fprintf(w, "benchjson: durable hub: %v\n", err)
		return 1
	}
	for k, name := range mw.Names {
		if err := dh.AddSource(name, relation.New(mw.Relations[k].Schema())); err != nil {
			fmt.Fprintf(w, "benchjson: durable hub: %v\n", err)
			return 1
		}
	}
	for i := 0; i < len(mw.Names); i++ {
		for j := i + 1; j < len(mw.Names); j++ {
			if err := dh.Link(hub.SpecFromMultiPair(mw.Pair(i, j))); err != nil {
				fmt.Fprintf(w, "benchjson: durable hub: %v\n", err)
				return 1
			}
		}
	}
	for _, res := range dh.IngestBatch(items) {
		if res.Err != nil {
			fmt.Fprintf(w, "benchjson: durable ingest: %v\n", res.Err)
			return 1
		}
	}
	if err := dh.Close(); err != nil {
		fmt.Fprintf(w, "benchjson: durable hub: %v\n", err)
		return 1
	}
	var replayErr error
	rec.ReplayNS = best(3, func() {
		rh, info, err := hub.Open(walDir, hub.Options{})
		if err != nil {
			replayErr = err
			return
		}
		rec.ReplayRecords = info.Replayed
		if err := rh.Close(); err != nil {
			replayErr = err
		}
	})
	if replayErr != nil {
		fmt.Fprintf(w, "benchjson: replay: %v\n", replayErr)
		return 1
	}
	rec.ReplayRecsPerSec = float64(rec.ReplayRecords) / (float64(rec.ReplayNS) / 1e9)

	// Chunked snapshots: write a full snapshot, mutate ~1% of one
	// source, write an incremental one, and compare the bytes each put
	// on disk; then time recovery from the chunked snapshot against the
	// single-frame (PR 3) encoding of the same state.
	sh, _, err := hub.Open(walDir, hub.Options{})
	if err != nil {
		fmt.Fprintf(w, "benchjson: snapshot hub: %v\n", err)
		return 1
	}
	if err := sh.SnapshotNow(); err != nil {
		fmt.Fprintf(w, "benchjson: full snapshot: %v\n", err)
		return 1
	}
	full := sh.LastSnapshot()
	rec.SnapFullBytes = full.BytesWritten
	onePct := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 1, Entities: rec.HubTuples / 100, PresenceFrac: 1, Seed: 2025,
	})
	changed := 0
	for _, tup := range onePct.Relations[0].Tuples() {
		if _, err := sh.Insert(mw.Names[0], tup.Clone()); err == nil {
			changed++
		}
	}
	if changed == 0 {
		fmt.Fprintf(w, "benchjson: no incremental inserts landed\n")
		return 1
	}
	if err := sh.SnapshotNow(); err != nil {
		fmt.Fprintf(w, "benchjson: incremental snapshot: %v\n", err)
		return 1
	}
	incr := sh.LastSnapshot()
	rec.SnapIncrBytes = incr.BytesWritten
	rec.SnapSectionsReused = incr.SectionsReused
	rec.SnapIncrRatio = float64(rec.SnapIncrBytes) / float64(rec.SnapFullBytes)
	v1Frame, err := sh.EncodeLegacySnapshot()
	if err != nil {
		fmt.Fprintf(w, "benchjson: legacy snapshot encode: %v\n", err)
		return 1
	}
	v1Path := filepath.Join(walDir, "bench-v1-snapshot.ei")
	if err := os.WriteFile(v1Path, v1Frame, 0o644); err != nil {
		fmt.Fprintf(w, "benchjson: %v\n", err)
		return 1
	}
	if err := sh.Close(); err != nil {
		fmt.Fprintf(w, "benchjson: %v\n", err)
		return 1
	}
	var snapErr error
	rec.RecoverChunkedNS = best(3, func() {
		rh, info, err := hub.Open(walDir, hub.Options{})
		if err != nil {
			snapErr = err
			return
		}
		if !info.FromSnapshot {
			snapErr = fmt.Errorf("chunked recovery ignored the snapshot")
		}
		if err := rh.Close(); err != nil && snapErr == nil {
			snapErr = err
		}
	})
	rec.RecoverV1FrameNS = best(3, func() {
		f, err := os.Open(v1Path)
		if err != nil {
			snapErr = err
			return
		}
		_, _, err = hub.LoadSnapshot(f)
		f.Close()
		if err != nil {
			snapErr = err
		}
	})
	if snapErr != nil {
		fmt.Fprintf(w, "benchjson: snapshot recovery: %v\n", snapErr)
		return 1
	}

	// Degraded serving: stand up a durable hub on an injectable
	// filesystem, ingest the canonical workload, kill the disk (every
	// write ENOSPC), confirm ingest is rejected typedly, then time point
	// reads against the read-only hub.
	degDir, err := os.MkdirTemp("", "entityid-benchdegraded")
	if err != nil {
		fmt.Fprintf(w, "benchjson: %v\n", err)
		return 1
	}
	defer os.RemoveAll(degDir)
	fsErr := errfs.New(nil)
	gh, _, err := hub.Open(degDir, hub.Options{FS: fsErr})
	if err != nil {
		fmt.Fprintf(w, "benchjson: degraded hub: %v\n", err)
		return 1
	}
	for k, name := range mw.Names {
		if err := gh.AddSource(name, relation.New(mw.Relations[k].Schema())); err != nil {
			fmt.Fprintf(w, "benchjson: degraded hub: %v\n", err)
			return 1
		}
	}
	for i := 0; i < len(mw.Names); i++ {
		for j := i + 1; j < len(mw.Names); j++ {
			if err := gh.Link(hub.SpecFromMultiPair(mw.Pair(i, j))); err != nil {
				fmt.Fprintf(w, "benchjson: degraded hub: %v\n", err)
				return 1
			}
		}
	}
	for _, res := range gh.IngestBatch(items) {
		if res.Err != nil {
			fmt.Fprintf(w, "benchjson: degraded ingest: %v\n", res.Err)
			return 1
		}
	}
	fsErr.Inject(errfs.Rule{Op: errfs.OpWrite, Err: syscall.ENOSPC})
	fresh := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 1, Entities: 1, PresenceFrac: 1, Seed: 2026,
	})
	if _, err := gh.Insert(mw.Names[0], fresh.Relations[0].Tuples()[0].Clone()); !errors.Is(err, hub.ErrDegraded) {
		fmt.Fprintf(w, "benchjson: insert on failing disk = %v, want ErrDegraded\n", err)
		return 1
	}
	degNames := gh.SourceNames()
	const degradedReads = 200000
	var degReadErr error
	degNS := best(3, func() {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < degradedReads; i++ {
			src := degNames[rng.Intn(len(degNames))]
			n, err := gh.SourceLen(src)
			if err != nil {
				degReadErr = err
				return
			}
			if n == 0 {
				continue
			}
			if _, err := gh.ClusterAt(src, rng.Intn(n)); err != nil {
				degReadErr = err
				return
			}
		}
	})
	if degReadErr != nil {
		fmt.Fprintf(w, "benchjson: degraded reads: %v\n", degReadErr)
		return 1
	}
	rec.DegradedReadsPerSec = float64(degradedReads) / (float64(degNS) / 1e9)
	fsErr.Clear()
	gh.Close() // the log may still be poisoned mid-close; the dir is scratch

	// Overload shedding: 32 workers against a 4-slot gate, each admitted
	// request doing one point read as stand-in work.
	rec.OverloadWorkers, rec.OverloadCapacity = 32, 4
	gate := admit.New(rec.OverloadCapacity)
	var owg sync.WaitGroup
	for wk := 0; wk < rec.OverloadWorkers; wk++ {
		owg.Add(1)
		go func(wk int) {
			defer owg.Done()
			rng := rand.New(rand.NewSource(int64(500 + wk)))
			for i := 0; i < 2000; i++ {
				if !gate.TryAcquire() {
					continue
				}
				src := degNames[rng.Intn(len(degNames))]
				if n, err := lastHub.SourceLen(src); err == nil && n > 0 {
					lastHub.ClusterAt(src, rng.Intn(n))
				}
				// Yield while holding the slot so requests genuinely
				// overlap even on a single-core runner — otherwise each
				// admission completes within one scheduler slice and the
				// gate never fills.
				runtime.Gosched()
				gate.Release()
			}
		}(wk)
	}
	owg.Wait()
	rec.OverloadAdmitted, rec.OverloadShed = gate.Counts()
	rec.OverloadShedRate = float64(rec.OverloadShed) / float64(rec.OverloadAdmitted+rec.OverloadShed)

	// Disk backend tiers: the canonical workload again, on the disk
	// backend with the cluster hot tier squeezed far below the working
	// set so reads constantly spill and page back.
	diskDir, err := os.MkdirTemp("", "entityid-benchdisk")
	if err != nil {
		fmt.Fprintf(w, "benchjson: %v\n", err)
		return 1
	}
	defer os.RemoveAll(diskDir)
	th, _, err := hub.Open(diskDir, hub.Options{Store: "disk", HotClusterEntries: 128, HotPairs: 1})
	if err != nil {
		fmt.Fprintf(w, "benchjson: disk hub: %v\n", err)
		return 1
	}
	for k, name := range mw.Names {
		if err := th.AddSource(name, relation.New(mw.Relations[k].Schema())); err != nil {
			fmt.Fprintf(w, "benchjson: disk hub: %v\n", err)
			return 1
		}
	}
	for i := 0; i < len(mw.Names); i++ {
		for j := i + 1; j < len(mw.Names); j++ {
			if err := th.Link(hub.SpecFromMultiPair(mw.Pair(i, j))); err != nil {
				fmt.Fprintf(w, "benchjson: disk hub: %v\n", err)
				return 1
			}
		}
	}
	for _, res := range th.IngestBatch(items) {
		if res.Err != nil {
			fmt.Fprintf(w, "benchjson: disk ingest: %v\n", res.Err)
			return 1
		}
	}
	diskNames := th.SourceNames()
	scan := func() (reads int64, err error) {
		for _, src := range diskNames {
			n, serr := th.SourceLen(src)
			if serr != nil {
				return reads, serr
			}
			for i := 0; i < n; i++ {
				if _, cerr := th.ClusterAt(src, i); cerr != nil {
					return reads, cerr
				}
				reads++
			}
		}
		return reads, nil
	}
	// One warm-up pass leaves the LRU tail resident, then the timed
	// sequential pass pages essentially the whole record set back in.
	if _, err := scan(); err != nil {
		fmt.Fprintf(w, "benchjson: disk scan: %v\n", err)
		return 1
	}
	before := th.StoreInfo().Clusters
	var scanReads int64
	var scanErr error
	scanNS := timeIt(func() { scanReads, scanErr = scan() })
	if scanErr != nil {
		fmt.Fprintf(w, "benchjson: disk scan: %v\n", scanErr)
		return 1
	}
	after := th.StoreInfo().Clusters
	rec.DiskColdPageIns = after.PageIns - before.PageIns
	if rec.DiskColdPageIns > 0 {
		rec.DiskColdPageInNS = scanNS / rec.DiskColdPageIns
	}
	rec.DiskReadsPerSecCold = float64(scanReads) / (float64(scanNS) / 1e9)
	// Randomized sweep for the steady-state hit rate at this
	// budget-to-working-set ratio.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50000; i++ {
		src := diskNames[rng.Intn(len(diskNames))]
		if n, err := th.SourceLen(src); err == nil && n > 0 {
			th.ClusterAt(src, rng.Intn(n))
		}
	}
	final := th.StoreInfo().Clusters
	if probes := (final.Hits - after.Hits) + (final.Misses - after.Misses); probes > 0 {
		rec.DiskHotHitRate = float64(final.Hits-after.Hits) / float64(probes)
	}
	rec.DiskHotEntries = final.HotEntries
	rec.DiskColdRecords = final.ColdRecords
	rec.DiskClusterBudget = final.Budget
	if err := th.Close(); err != nil {
		fmt.Fprintf(w, "benchjson: disk hub: %v\n", err)
		return 1
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(w, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(w, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(w, "wrote %s: build %.1fx, counts %.1fx (engine vs naive, %d×%d grid, GOMAXPROCS=%d); hub ingest %.0f tuples/sec (%d sources); stream ingest %.0f tuples/sec, %d-tuple bulk stream %.0f tuples/sec at +%.1f MiB peak heap; obs overhead %.1f%% (%.0f instrumented vs %.0f baseline tuples/sec); serving reads %.0f/sec at %d readers (%.2fx vs 1 reader) with ingest at %.0f tuples/sec; clusters stream %.0f/sec over %d pages; WAL replay %.0f records/sec (%d records); snapshot 1%%-changed writes %.1f%% of full (%d of %d bytes, %d sections reused); chunked recovery %.1fms vs single-frame %.1fms; degraded reads %.0f/sec on a dead disk; overload shed %.0f%% (%d workers vs %d slots)\n",
		path, rec.BuildSpeedup, rec.CountsSpeedup, rec.RTuples, rec.STuples, rec.GoMaxProcs,
		rec.HubTuplesPerSec, rec.HubSources,
		rec.StreamTuplesPerSec, rec.StreamBulkTuples, rec.StreamBulkPerSec, float64(rec.StreamBulkPeakHeap)/(1<<20),
		100*(rec.ObsOverheadRatio-1), rec.ObsInstrumentedTPS, rec.ObsBaselineTPS,
		rec.ServeReadsPerSec, rec.ServeReaders, rec.ServeReadScaling, rec.ServeIngestPerSec,
		rec.ClustersStreamPerSec, rec.ClustersStreamPages,
		rec.ReplayRecsPerSec, rec.ReplayRecords,
		100*rec.SnapIncrRatio, rec.SnapIncrBytes, rec.SnapFullBytes, rec.SnapSectionsReused,
		float64(rec.RecoverChunkedNS)/1e6, float64(rec.RecoverV1FrameNS)/1e6,
		rec.DegradedReadsPerSec, 100*rec.OverloadShedRate, rec.OverloadWorkers, rec.OverloadCapacity)
	fmt.Fprintf(w, "disk store: cold page-in %.1fµs avg over %d page-ins (%.0f reads/sec full cold scan), hot hit rate %.1f%% at %d/%d resident entries (%d cold records)\n",
		float64(rec.DiskColdPageInNS)/1e3, rec.DiskColdPageIns, rec.DiskReadsPerSecCold,
		100*rec.DiskHotHitRate, rec.DiskHotEntries, rec.DiskClusterBudget, rec.DiskColdRecords)
	return 0
}

module entityid

go 1.24

package entityid

import (
	"strings"
	"testing"

	"entityid/internal/paperdata"
	"entityid/internal/rules"
	"entityid/internal/value"
)

// example3System wires the paper's Example 3 through the public API.
func example3System() *System {
	sys := New()
	sys.SetRelations(paperdata.Table5R(), paperdata.Table5S())
	sys.MapAttr("name", "name", "name")
	sys.MapAttr("cuisine", "cuisine", "")
	sys.MapAttr("speciality", "", "speciality")
	sys.MapAttr("street", "street", "")
	sys.MapAttr("county", "", "county")
	sys.SetExtendedKey("name", "cuisine", "speciality")
	for _, f := range paperdata.Example3ILFDs() {
		sys.AddILFD(f)
	}
	return sys
}

func TestIdentifyExample3(t *testing.T) {
	res, err := example3System().Identify()
	if err != nil {
		t.Fatalf("Identify: %v", err)
	}
	if res.VerifyErr != nil {
		t.Fatalf("VerifyErr = %v", res.VerifyErr)
	}
	if got := len(res.MatchingPairs()); got != 3 {
		t.Fatalf("matching pairs = %d, want 3", got)
	}
	if got := res.IntegratedTable().Len(); got != 6 {
		t.Errorf("integrated rows = %d, want 6", got)
	}
	part := res.Partition()
	if part.Matching != 3 {
		t.Errorf("partition = %v", part)
	}
	if part.Complete() {
		t.Error("Example 3 should not be complete")
	}
	mtOut := res.RenderMatchingTable()
	for _, want := range []string{"TwinCities", "Hunan", "It'sGreek", "Gyros", "Anjuman", "Mughalai"} {
		if !strings.Contains(mtOut, want) {
			t.Errorf("matching table missing %q:\n%s", want, mtOut)
		}
	}
	itOut := res.RenderIntegratedTable()
	for _, want := range []string{"VillageWok", "null", "Sichuan"} {
		if !strings.Contains(itOut, want) {
			t.Errorf("integrated table missing %q:\n%s", want, itOut)
		}
	}
}

func TestIdentifyFailsClosedOnUnsoundKey(t *testing.T) {
	sys := example3System()
	sys.SetExtendedKey("name")
	_, err := sys.Identify()
	if err == nil || !strings.Contains(err.Error(), "unsound matching result") {
		t.Fatalf("Identify = %v, want unsound error (the prototype's warning)", err)
	}
	// Unchecked returns the table plus the violation.
	res, err := sys.IdentifyUnchecked()
	if err != nil {
		t.Fatalf("IdentifyUnchecked: %v", err)
	}
	if res.VerifyErr == nil {
		t.Error("VerifyErr nil for unsound key")
	}
	if len(res.MatchingPairs()) == 0 {
		t.Error("unchecked result hides the unsound table")
	}
}

func TestIdentifyPreconditions(t *testing.T) {
	if _, err := New().Identify(); err == nil || !strings.Contains(err.Error(), "SetRelations") {
		t.Errorf("missing relations error = %v", err)
	}
	sys := New().SetRelations(paperdata.Table5R(), paperdata.Table5S())
	if _, err := sys.Identify(); err == nil || !strings.Contains(err.Error(), "SetExtendedKey") {
		t.Errorf("missing key error = %v", err)
	}
}

func TestAddILFDText(t *testing.T) {
	sys := New()
	if err := sys.AddILFDText("speciality=Hunan -> cuisine=Chinese"); err != nil {
		t.Fatalf("AddILFDText: %v", err)
	}
	if err := sys.AddILFDText("not an ilfd"); err == nil {
		t.Error("bad ILFD text accepted")
	}
	if got := len(sys.ILFDs()); got != 1 {
		t.Errorf("ILFDs = %d", got)
	}
}

func TestMonotonicityPublicAPI(t *testing.T) {
	// §3.3 through the public API: grow the ILFD set one at a time and
	// watch the partition move monotonically.
	all := paperdata.Example3ILFDs()
	var prev *Result
	for k := 0; k <= len(all); k++ {
		sys := New()
		sys.SetRelations(paperdata.Table5R(), paperdata.Table5S())
		sys.MapAttr("name", "name", "name").
			MapAttr("cuisine", "cuisine", "").
			MapAttr("speciality", "", "speciality").
			MapAttr("street", "street", "").
			MapAttr("county", "", "county")
		sys.SetExtendedKey("name", "cuisine", "speciality")
		for _, f := range all[:k] {
			sys.AddILFD(f)
		}
		res, err := sys.Identify()
		if err != nil {
			t.Fatalf("Identify(%d ILFDs): %v", k, err)
		}
		if prev != nil {
			a, b := prev.Partition(), res.Partition()
			if b.Matching < a.Matching || b.NotMatching < a.NotMatching || b.Undetermined > a.Undetermined {
				t.Errorf("not monotonic at %d ILFDs: %v -> %v", k, a, b)
			}
			// Previously matched pairs stay matched.
			for _, p := range prev.MatchingPairs() {
				if res.Classify(p.RIndex, p.SIndex) != Matching {
					t.Errorf("pair %v lost its match at %d ILFDs", p, k)
				}
			}
		}
		prev = res
	}
}

func TestAssertMatch(t *testing.T) {
	// VillageWok has no S counterpart; assert a user-specified pair with
	// the Sichuan tuple and watch it land in the matching table (and
	// then fail verification, because Sichuan already matches nothing
	// but TwinCities-Chinese pairs with it... actually Sichuan is
	// unmatched, so the assertion is accepted and verification passes
	// unless a distinctness rule objects — Prop 1 on I2 does object:
	// e1.speciality=Sichuan ∧ e2.cuisine≠Chinese → distinct. VillageWok
	// is Chinese, so no objection: the assertion stands.)
	sys := example3System()
	sys.AssertMatch(
		[]Value{String("VillageWok"), String("Chinese")},
		[]Value{String("TwinCities"), String("Sichuan")},
	)
	res, err := sys.Identify()
	if err != nil {
		t.Fatalf("Identify: %v", err)
	}
	if got := len(res.MatchingPairs()); got != 4 {
		t.Fatalf("pairs = %d, want 4 (3 derived + 1 asserted)", got)
	}
	// Integrated table shrinks by one row (two unmatched rows merged).
	if got := res.IntegratedTable().Len(); got != 5 {
		t.Errorf("integrated rows = %d, want 5", got)
	}
}

func TestAssertMatchConflictsWithDistinctness(t *testing.T) {
	// Asserting a pair a Prop-1 rule declares distinct must fail
	// verification: consistency constraint (§3.2).
	sys := example3System()
	sys.AssertMatch(
		// TwinCities-Indian (R) vs TwinCities-Hunan (S): I1 derives
		// e2.cuisine=Chinese ≠ Indian… the Prop-1 rule for I1 is
		// e1.speciality=Hunan ∧ e2.cuisine≠Chinese → distinct, matched
		// in the S→R orientation.
		[]Value{String("TwinCities"), String("Indian")},
		[]Value{String("TwinCities"), String("Hunan")},
	)
	_, err := sys.Identify()
	if err == nil || !strings.Contains(err.Error(), "unsound") {
		t.Fatalf("Identify = %v, want consistency failure", err)
	}
}

func TestAssertMatchUnknownKeys(t *testing.T) {
	sys := example3System()
	sys.AssertMatch([]Value{String("Nobody"), String("None")}, []Value{String("X"), String("Y")})
	if _, err := sys.Identify(); err == nil {
		t.Error("stale asserted pair accepted")
	}
}

func TestDistinctnessRulePublicAPI(t *testing.T) {
	sys := example3System()
	sys.AddDistinctnessRule(rules.MustNewDistinctness("no-cross-county", []rules.Predicate{
		{Left: rules.Attr1("name"), Op: rules.Eq, Right: rules.Attr2("name")},
		{Left: rules.Attr1("cuisine"), Op: rules.Ne, Right: rules.Attr2("cuisine")},
	}))
	res, err := sys.Identify()
	if err != nil {
		t.Fatalf("Identify: %v", err)
	}
	// R TwinCities-Indian vs S TwinCities-Hunan(Chinese): rule fires.
	if v := res.Classify(1, 0); v != NotMatching {
		t.Errorf("Classify = %v, want not-matching via explicit rule", v)
	}
}

func TestDisableProp1PublicAPI(t *testing.T) {
	sys := example3System()
	sys.DisableProp1()
	res, err := sys.Identify()
	if err != nil {
		t.Fatalf("Identify: %v", err)
	}
	if got := res.Partition().NotMatching; got != 0 {
		t.Errorf("not-matching = %d with Prop 1 disabled", got)
	}
}

func TestUseFixpointDerivation(t *testing.T) {
	sys := example3System()
	sys.UseFixpointDerivation()
	if err := sys.AddILFDText("speciality=Hunan -> cuisine=Thai"); err != nil {
		t.Fatal(err)
	}
	res, err := sys.IdentifyUnchecked()
	if err != nil {
		t.Fatalf("IdentifyUnchecked: %v", err)
	}
	if len(res.DerivationConflicts()) == 0 {
		t.Error("fixpoint conflicts not surfaced")
	}
}

func TestNewRelationHelper(t *testing.T) {
	r, err := NewRelation("R", []Attribute{
		{Name: "name", Kind: value.KindString},
	}, []string{"name"})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	r.MustInsert(String("x"))
	if r.Len() != 1 {
		t.Error("insert failed")
	}
	if _, err := NewRelation("", nil); err == nil {
		t.Error("bad schema accepted")
	}
}

func TestParseILFDHelper(t *testing.T) {
	f, err := ParseILFD("a=1 -> b=2")
	if err != nil || len(f.Antecedent) != 1 {
		t.Errorf("ParseILFD = %v, %v", f, err)
	}
	if _, err := ParseILFD("garbage"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMergedPublicAPI(t *testing.T) {
	res, err := example3System().Identify()
	if err != nil {
		t.Fatalf("Identify: %v", err)
	}
	merged, conflicts, err := res.Merged(MergeCoalesce)
	if err != nil {
		t.Fatalf("Merged: %v", err)
	}
	if len(conflicts) != 0 {
		t.Errorf("conflicts: %v", conflicts)
	}
	if merged.Len() != 6 {
		t.Errorf("merged rows = %d, want 6", merged.Len())
	}
	// One column per integrated attribute — no r_/s_ prefixes.
	sch := merged.Schema()
	for _, a := range []string{"name", "cuisine", "speciality", "street", "county"} {
		if !sch.Has(a) {
			t.Errorf("merged schema missing %q", a)
		}
	}
	if sch.Has("r_name") || sch.Has("s_name") {
		t.Error("merged schema kept prefixed columns")
	}
	// The matched TwinCities/Hunan entity carries street (from R) and
	// county (from S) in a single row.
	found := false
	for i := 0; i < merged.Len(); i++ {
		spec := merged.MustValue(i, "speciality")
		if !spec.IsNull() && spec.Str() == "Hunan" {
			found = true
			if v := merged.MustValue(i, "street"); v.IsNull() || v.Str() != "Co.B2" {
				t.Errorf("Hunan street = %v", v)
			}
			if v := merged.MustValue(i, "county"); v.IsNull() || v.Str() != "Roseville" {
				t.Errorf("Hunan county = %v", v)
			}
		}
	}
	if !found {
		t.Error("Hunan row missing from merged relation")
	}
}

func TestFederatePublicAPI(t *testing.T) {
	fed, err := example3System().Federate()
	if err != nil {
		t.Fatalf("Federate: %v", err)
	}
	if got := len(fed.Pairs()); got != 3 {
		t.Fatalf("initial pairs = %d", got)
	}
	// Stream knowledge then a tuple; the VillageWok pair completes.
	for _, line := range []string{
		"speciality=Cantonese -> cuisine=Chinese",
		"name=VillageWok & street=Wash.Ave. -> speciality=Cantonese",
	} {
		f, err := ParseILFD(line)
		if err != nil {
			t.Fatal(err)
		}
		if err := fed.AddILFD(f); err != nil {
			t.Fatalf("AddILFD: %v", err)
		}
	}
	pairs, err := fed.InsertS(Tuple{String("VillageWok"), String("Cantonese"), String("Hennepin")})
	if err != nil {
		t.Fatalf("InsertS: %v", err)
	}
	if len(pairs) != 1 {
		t.Fatalf("incremental pairs = %v", pairs)
	}
	if got := len(fed.Pairs()); got != 4 {
		t.Errorf("total pairs = %d, want 4", got)
	}
	it, err := fed.IntegratedTable()
	if err != nil {
		t.Fatalf("IntegratedTable: %v", err)
	}
	if it.Len() != 6 { // 4 merged + 1 R-only (TwinCities-Indian) + 1 S-only (Sichuan)
		t.Errorf("integrated rows = %d, want 6", it.Len())
	}
	// The system's own relations are untouched (the federation copies).
	res, err := example3System().Identify()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MatchingPairs()) != 3 {
		t.Error("federation mutated the source system")
	}
}

func TestFederatePreconditions(t *testing.T) {
	if _, err := New().Federate(); err == nil {
		t.Error("Federate without relations accepted")
	}
	sys := New().SetRelations(paperdata.Table5R(), paperdata.Table5S())
	if _, err := sys.Federate(); err == nil {
		t.Error("Federate without extended key accepted")
	}
}

func TestPossibleMatchesPublicAPI(t *testing.T) {
	sys := New()
	sys.SetRelations(paperdata.Table5R(), paperdata.Table5S())
	sys.MapAttr("name", "name", "name").
		MapAttr("cuisine", "cuisine", "").
		MapAttr("speciality", "", "speciality")
	sys.SetExtendedKey("name", "cuisine", "speciality")
	// No ILFDs: everything unmatched, residual possible matches remain.
	res, err := sys.Identify()
	if err != nil {
		t.Fatalf("Identify: %v", err)
	}
	pm, err := res.PossibleMatches()
	if err != nil {
		t.Fatalf("PossibleMatches: %v", err)
	}
	if len(pm) == 0 {
		t.Error("expected residual possible matches without ILFDs")
	}
}

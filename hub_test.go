package entityid_test

import (
	"strings"
	"testing"

	"entityid"
	"entityid/internal/rules"
)

func hubSource(t *testing.T, h *entityid.Hub, name string, attrs []string, key ...string) {
	t.Helper()
	as := make([]entityid.Attribute, len(attrs))
	for i, a := range attrs {
		as[i] = entityid.Attribute{Name: a}
	}
	rel, err := entityid.NewRelation(name, as, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddSource(name, rel); err != nil {
		t.Fatal(err)
	}
}

func TestHubPublicSurface(t *testing.T) {
	h := entityid.NewHub()
	hubSource(t, h, "r", []string{"name", "street", "cuisine", "phone"}, "name", "street")
	hubSource(t, h, "s", []string{"name", "city", "speciality", "phone"}, "name", "city")
	hubSource(t, h, "u", []string{"name", "hood", "speciality", "phone"}, "name", "hood")

	pair := func(left, right, rLoc, sLoc string) *entityid.PairSpec {
		return entityid.NewPair(left, right).
			MapAttr("name", "name", "name").
			MapAttr("loc_"+left, rLoc, "").
			MapAttr("loc_"+right, "", sLoc).
			MapAttr("phone", "phone", "phone")
	}
	if err := h.Link(pair("r", "s", "street", "city").
		MapAttr("cuisine", "cuisine", "").
		MapAttr("speciality", "", "speciality").
		SetExtendedKey("name", "cuisine").
		AddILFDText("speciality=hunan -> cuisine=chinese")); err != nil {
		t.Fatal(err)
	}
	// Identity rule through the public surface: s↔u agree on name+phone.
	namePhone, err := rules.NewIdentity("name-phone", []rules.Predicate{
		{Left: rules.Attr1("name"), Op: rules.Eq, Right: rules.Attr2("name")},
		{Left: rules.Attr1("phone"), Op: rules.Eq, Right: rules.Attr2("phone")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Link(pair("s", "u", "city", "hood").
		MapAttr("speciality", "speciality", "speciality").
		SetExtendedKey("name", "speciality").
		AddIdentityRule(namePhone)); err != nil {
		t.Fatal(err)
	}

	str := func(vals ...string) entityid.Tuple {
		out := make(entityid.Tuple, len(vals))
		for i, v := range vals {
			out[i] = entityid.String(v)
		}
		return out
	}
	results := h.IngestBatch([]entityid.HubInsert{
		{Source: "r", Tuple: str("villagewok", "wash ave", "chinese", "612-1")},
		{Source: "s", Tuple: str("villagewok", "mpls", "hunan", "612-1")},
		// Matches s's row only via the name-phone identity rule (the
		// speciality differs, so the extended key cannot join them).
		{Source: "u", Tuple: str("villagewok", "west bank", "sichuan", "612-1")},
	})
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("insert %d: %v", i, res.Err)
		}
	}
	cl, err := h.Lookup("r", entityid.String("villagewok"), entityid.String("wash ave"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Members) != 3 {
		t.Fatalf("cluster size %d, want 3 (identity rule must fire on streaming insert)", len(cl.Members))
	}
	merged, err := h.Merged(cl, entityid.MergeCoalesce)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Values["cuisine"].String(); got != "chinese" {
		t.Fatalf("merged cuisine %q", got)
	}
	// speciality disagrees between s (hunan) and u (sichuan): coalesce
	// keeps the first and reports the conflict.
	if len(merged.Conflicts) != 1 || merged.Conflicts[0] != "speciality" {
		t.Fatalf("conflicts %v, want [speciality]", merged.Conflicts)
	}
	if st := h.Stats(); st.Clusters != 1 || st.Tuples != 3 || st.Matches != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHubLinkReportsDeferredILFDParseError(t *testing.T) {
	h := entityid.NewHub()
	hubSource(t, h, "a", []string{"name"}, "name")
	hubSource(t, h, "b", []string{"name"}, "name")
	err := h.Link(entityid.NewPair("a", "b").
		MapAttr("name", "name", "name").
		SetExtendedKey("name").
		AddILFDText("not an ilfd"))
	if err == nil || !strings.Contains(err.Error(), "ilfd") {
		t.Fatalf("parse error not surfaced: %v", err)
	}
}

// TestHubDurability drives the public durable surface: OpenHub, a
// crash (abandon without Close), recovery with identical clusters, a
// forced Checkpoint, and a clean Close/reopen cycle.
func TestHubDurability(t *testing.T) {
	dir := t.TempDir()
	// Automatic snapshots are disabled so the mid-test "crash" (an
	// abandoned hub sharing the process) cannot race the reopen; the
	// internal crash harness covers background snapshotting, and
	// Checkpoint is exercised explicitly below.
	build := func() *entityid.Hub {
		h, err := entityid.OpenHub(dir, entityid.WithSnapshotEvery(0))
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h := build()
	hubSource(t, h, "r", []string{"name", "street", "cuisine", "phone"}, "name", "street")
	hubSource(t, h, "s", []string{"name", "city", "speciality", "phone"}, "name", "city")
	if err := h.Link(entityid.NewPair("r", "s").
		MapAttr("name", "name", "name").
		MapAttr("street", "street", "").
		MapAttr("city", "", "city").
		MapAttr("cuisine", "cuisine", "").
		MapAttr("speciality", "", "speciality").
		MapAttr("phone", "phone", "phone").
		SetExtendedKey("name", "cuisine").
		AddILFDText("speciality=hunan -> cuisine=chinese")); err != nil {
		t.Fatal(err)
	}
	str := func(vals ...string) entityid.Tuple {
		out := make(entityid.Tuple, len(vals))
		for i, v := range vals {
			out[i] = entityid.String(v)
		}
		return out
	}
	for _, in := range []entityid.HubInsert{
		{Source: "r", Tuple: str("villagewok", "wash ave", "chinese", "612-1")},
		{Source: "s", Tuple: str("villagewok", "mpls", "hunan", "612-1")},
		{Source: "r", Tuple: str("goldenleaf", "lake st", "chinese", "612-2")},
		{Source: "s", Tuple: str("anjuman", "st paul", "mughalai", "612-3")},
	} {
		if _, err := h.Insert(in.Source, in.Tuple); err != nil {
			t.Fatal(err)
		}
	}
	want := h.Clusters()
	// Restart: the durable directory is single-writer (flock), so the
	// public surface hands over with Close; hard-crash handover is
	// covered by the internal recovery harness.
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	h2 := build()
	if got := h2.Clusters(); len(got) != len(want) {
		t.Fatalf("recovered %d clusters, want %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i].ID != want[i].ID || len(got[i].Members) != len(want[i].Members) {
				t.Fatalf("recovered cluster %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	}
	if names := h2.SourceNames(); len(names) != 2 || names[0] != "r" || names[1] != "s" {
		t.Fatalf("recovered sources %v", names)
	}
	if sch, err := h2.SourceSchema("s"); err != nil || sch.Arity() != 4 {
		t.Fatalf("recovered schema: %v %v", sch, err)
	}
	if err := h2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}
	h3 := build()
	defer h3.Close()
	if st := h3.Stats(); st.Tuples != 4 || st.Clusters != 3 || st.Matches != 1 {
		t.Fatalf("stats after checkpointed reopen: %+v", st)
	}
	// A memory-only hub rejects Checkpoint but tolerates Close.
	m := entityid.NewHub()
	if err := m.Checkpoint(); err == nil {
		t.Fatal("memory-only checkpoint succeeded")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHubSyncEveryOption exercises the public group-commit knob: a hub
// opened WithSyncEvery keeps working across restart, and IngestBatch
// lands a whole batch durably.
func TestHubSyncEveryOption(t *testing.T) {
	dir := t.TempDir()
	h, err := entityid.OpenHub(dir, entityid.WithSnapshotEvery(0), entityid.WithSyncEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	hubSource(t, h, "r", []string{"name", "street"}, "name")
	hubSource(t, h, "s", []string{"name", "city"}, "name")
	if err := h.Link(entityid.NewPair("r", "s").
		MapAttr("name", "name", "name").
		MapAttr("street", "street", "").
		MapAttr("city", "", "city").
		SetExtendedKey("name")); err != nil {
		t.Fatal(err)
	}
	items := []entityid.HubInsert{
		{Source: "r", Tuple: entityid.Tuple{entityid.String("a"), entityid.String("s1")}},
		{Source: "r", Tuple: entityid.Tuple{entityid.String("b"), entityid.String("s2")}},
		{Source: "s", Tuple: entityid.Tuple{entityid.String("c"), entityid.String("mpls")}},
	}
	for _, res := range h.IngestBatch(items) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	h2, err := entityid.OpenHub(dir, entityid.WithSnapshotEvery(0), entityid.WithSyncEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if st := h2.Stats(); st.Tuples != 3 {
		t.Fatalf("recovered %d tuples, want 3", st.Tuples)
	}
}

// Package entityid is a library for entity identification in database
// integration, reproducing Lim, Srivastava, Prabhakar & Richardson
// (ICDE 1993): determining which tuples of two autonomous relations
// model the same real-world entity, soundly, even when the relations
// share no common candidate key.
//
// The workflow mirrors the paper:
//
//	sys := entityid.New()
//	sys.SetRelations(r, s)                       // two autonomous relations
//	sys.MapAttr("name", "r_name", "s_name")      // semantic correspondences
//	sys.MapAttr("cuisine", "r_cui", "")          // attribute only R models
//	sys.MapAttr("speciality", "", "s_spec")      // attribute only S models
//	sys.SetExtendedKey("name", "cuisine", "speciality")
//	sys.AddILFDText("speciality=Hunan -> cuisine=Chinese")
//	res, err := sys.Identify()                   // verified matching table
//	fmt.Print(res.RenderMatchingTable())
//	fmt.Print(res.RenderIntegratedTable())
//
// Identify extends both relations with their missing extended-key
// attributes, derives values with the registered instance-level
// functional dependencies (ILFDs), joins on the extended key, verifies
// the §3.2 uniqueness and consistency constraints, and builds the
// integrated table T_RS. Knowledge can be added incrementally; the
// process is monotonic (§3.3): matches and non-matches only grow,
// undetermined pairs only shrink.
//
// Beyond the paper's two-relation scope, the package federates N
// autonomous sources: a Hub (see NewHub and hub.go's example) registers
// named sources, links pairs with per-pair correspondences, extended
// keys, ILFDs and rules, streams inserts concurrently through one live
// Federation per link, and folds the pairwise matching tables into
// global entity clusters — with the §3.2 uniqueness constraint enforced
// transitively across sources and a merged cross-source record per
// entity. See examples/hub for a three-source walkthrough and
// cmd/entityidd for the JSON/NDJSON serving front-end.
//
// The underlying machinery lives in internal packages (relation model,
// relational algebra, ILFD theory with Armstrong-style axioms, rule
// language, derivation engine, matching, integration, §2.2 baselines,
// synthetic workloads); this package is the stable public surface.
package entityid

import (
	"fmt"

	"entityid/internal/derive"
	"entityid/internal/federate"
	"entityid/internal/ilfd"
	"entityid/internal/integrate"
	"entityid/internal/match"
	"entityid/internal/quality"
	"entityid/internal/relation"
	"entityid/internal/resolve"
	"entityid/internal/rules"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// Re-exported core types, so typical callers only import this package.
type (
	// Relation is an in-memory relation (ordered tuples over a schema
	// with candidate keys).
	Relation = relation.Relation
	// Tuple is one row of a relation.
	Tuple = relation.Tuple
	// Schema describes a relation's attributes and candidate keys.
	Schema = schema.Schema
	// Attribute is one named, typed column.
	Attribute = schema.Attribute
	// Value is a typed attribute value (string/int/float/bool/NULL).
	Value = value.Value
	// ILFD is an instance-level functional dependency.
	ILFD = ilfd.ILFD
	// DistinctnessRule asserts e1 ≢ e2 when its predicates hold.
	DistinctnessRule = rules.DistinctnessRule
	// Verdict is the three-valued identification outcome.
	Verdict = match.Verdict
	// Pair is one matching-table entry (tuple positions in R and S).
	Pair = match.Pair
)

// The three verdicts (§3.2).
const (
	Matching     = match.Matching
	NotMatching  = match.NotMatching
	Undetermined = match.Undetermined
)

// Kind identifies a value's dynamic type. Attribute declarations may
// omit the kind; it defaults to string.
type Kind = value.Kind

// The value kinds.
const (
	KindString = value.KindString
	KindInt    = value.KindInt
	KindFloat  = value.KindFloat
	KindBool   = value.KindBool
)

// Value constructors.
var (
	// Null is the NULL value.
	Null = value.Null
	// String wraps a string value.
	String = value.String
	// Int wraps an integer value.
	Int = value.Int
	// Float wraps a float value.
	Float = value.Float
	// Bool wraps a boolean value.
	Bool = value.Bool
)

// NewRelation creates an empty relation over a schema built from the
// given attributes and candidate keys (no keys: the whole attribute set
// is the key, per the paper's convention).
func NewRelation(name string, attrs []Attribute, keys ...[]string) (*Relation, error) {
	sch, err := schema.New(name, attrs, keys...)
	if err != nil {
		return nil, err
	}
	return relation.New(sch), nil
}

// ParseILFD parses one ILFD in the text format
// "a=1 & b=2 -> c=3" with string-typed values.
func ParseILFD(line string) (ILFD, error) { return ilfd.ParseLine(line) }

// System accumulates an entity-identification problem: two relations,
// attribute correspondences, an extended key, ILFDs and distinctness
// rules. The zero value is unusable; call New.
type System struct {
	r, s     *relation.Relation
	attrs    []match.AttrMap
	extKey   []string
	ilfds    ilfd.Set
	identity []rules.IdentityRule
	distinct []rules.DistinctnessRule
	asserted []assertedPair
	mode     derive.Mode
	prop1Off bool
}

type assertedPair struct {
	rKey, sKey []value.Value
}

// New creates an empty system.
func New() *System {
	return &System{}
}

// SetRelations registers the two source relations.
func (sys *System) SetRelations(r, s *Relation) *System {
	sys.r, sys.s = r, s
	return sys
}

// MapAttr declares an integrated-world attribute and its location in
// each relation; pass "" for a side that does not model the attribute.
// Every extended-key attribute and every attribute mentioned by an ILFD
// or distinctness rule must be mapped.
func (sys *System) MapAttr(name, rAttr, sAttr string) *System {
	sys.attrs = append(sys.attrs, match.AttrMap{Name: name, R: rAttr, S: sAttr})
	return sys
}

// SetExtendedKey declares the extended key (§4.1) over integrated
// attribute names.
func (sys *System) SetExtendedKey(attrs ...string) *System {
	sys.extKey = append([]string(nil), attrs...)
	return sys
}

// AddILFD registers an instance-level functional dependency.
func (sys *System) AddILFD(f ILFD) *System {
	sys.ilfds = append(sys.ilfds, f)
	return sys
}

// AddILFDText parses and registers an ILFD; it returns the parse error,
// if any.
func (sys *System) AddILFDText(line string) error {
	f, err := ilfd.ParseLine(line)
	if err != nil {
		return err
	}
	sys.ilfds = append(sys.ilfds, f)
	return nil
}

// ILFDs returns the registered ILFDs.
func (sys *System) ILFDs() []ILFD { return append([]ILFD(nil), sys.ilfds...) }

// IdentityRule asserts e1 ≡ e2 when its predicates hold; construct with
// the rules package (well-formedness per §3.2 is validated there).
type IdentityRule = rules.IdentityRule

// AddIdentityRule registers an extra identity rule evaluated alongside
// extended-key equivalence; pairs it matches join the matching table
// and are subject to the same §3.2 verification.
func (sys *System) AddIdentityRule(r IdentityRule) *System {
	sys.identity = append(sys.identity, r)
	return sys
}

// AddDistinctnessRule registers an extra distinctness rule.
func (sys *System) AddDistinctnessRule(d DistinctnessRule) *System {
	sys.distinct = append(sys.distinct, d)
	return sys
}

// AssertMatch records a user-specified matching pair (the §2.2
// "user-specified equivalence" escape hatch the paper's technique
// deliberately remains compatible with): key values for R's primary key
// and S's primary key. The pair is added to the matching table during
// Identify and participates in verification.
func (sys *System) AssertMatch(rKey, sKey []Value) *System {
	sys.asserted = append(sys.asserted, assertedPair{
		rKey: append([]value.Value(nil), rKey...),
		sKey: append([]value.Value(nil), sKey...),
	})
	return sys
}

// UseFixpointDerivation switches ILFD application from the prototype's
// first-match (cut) semantics to order-insensitive fixpoint semantics
// with conflict detection.
func (sys *System) UseFixpointDerivation() *System {
	sys.mode = derive.Fixpoint
	return sys
}

// DisableProp1 turns off the automatic ILFD → distinctness-rule
// conversion (Proposition 1); only explicitly added distinctness rules
// will produce non-match verdicts.
func (sys *System) DisableProp1() *System {
	sys.prop1Off = true
	return sys
}

// Result is a completed, verified identification outcome.
type Result struct {
	inner      *match.Result
	integrated *integrate.Table
	// VerifyErr is nil for a sound result. Identify only returns a
	// Result with VerifyErr != nil when called via IdentifyUnchecked.
	VerifyErr error
}

// Identify runs the §4.2 pipeline and verifies soundness; it fails
// closed on an unsound extended key (the prototype's warning becomes an
// error). Use IdentifyUnchecked to inspect an unsound result.
func (sys *System) Identify() (*Result, error) {
	res, err := sys.IdentifyUnchecked()
	if err != nil {
		return nil, err
	}
	if res.VerifyErr != nil {
		return nil, fmt.Errorf("entityid: unsound matching result: %w", res.VerifyErr)
	}
	return res, nil
}

// IdentifyUnchecked runs the pipeline and returns the result even when
// verification fails (VerifyErr reports the violation), mirroring the
// prototype, which prints the unsound table alongside its warning.
func (sys *System) IdentifyUnchecked() (*Result, error) {
	if sys.r == nil || sys.s == nil {
		return nil, fmt.Errorf("entityid: call SetRelations first")
	}
	if len(sys.extKey) == 0 {
		return nil, fmt.Errorf("entityid: call SetExtendedKey first")
	}
	inner, err := match.Build(match.Config{
		R:            sys.r,
		S:            sys.s,
		Attrs:        sys.attrs,
		ExtKey:       sys.extKey,
		ILFDs:        sys.ilfds,
		Identity:     sys.identity,
		Distinct:     sys.distinct,
		DeriveMode:   sys.mode,
		DisableProp1: sys.prop1Off,
	})
	if err != nil {
		return nil, err
	}
	// Fold in user-asserted pairs.
	for n, ap := range sys.asserted {
		i := sys.r.LookupKey(ap.rKey...)
		if i < 0 {
			return nil, fmt.Errorf("entityid: asserted pair %d: no R tuple with key %v", n, ap.rKey)
		}
		j := sys.s.LookupKey(ap.sKey...)
		if j < 0 {
			return nil, fmt.Errorf("entityid: asserted pair %d: no S tuple with key %v", n, ap.sKey)
		}
		if !inner.MT.Contains(i, j) {
			inner.MT.Add(match.Pair{RIndex: i, SIndex: j})
		}
	}
	res := &Result{inner: inner, VerifyErr: inner.Verify()}
	tab, err := integrate.Build(inner, integrate.Options{})
	if err != nil {
		return nil, err
	}
	res.integrated = tab
	return res, nil
}

// MatchingPairs returns the matching table as tuple-position pairs.
func (r *Result) MatchingPairs() []Pair {
	return append([]Pair(nil), r.inner.MT.Pairs...)
}

// Classify returns the three-valued verdict for R tuple i vs S tuple j.
func (r *Result) Classify(i, j int) Verdict { return r.inner.Classify(i, j) }

// Partition tallies the three verdicts over all pairs (Figure 3).
func (r *Result) Partition() quality.Partition {
	m, n, u := r.inner.Counts()
	return quality.Partition{Matching: m, NotMatching: n, Undetermined: u}
}

// ExtendedR returns R′, the source relation extended with derived
// extended-key attributes (Table 6).
func (r *Result) ExtendedR() *Relation { return r.inner.RPrime }

// ExtendedS returns S′.
func (r *Result) ExtendedS() *Relation { return r.inner.SPrime }

// IntegratedTable returns T_RS as a relation (columns r_*, s_*).
func (r *Result) IntegratedTable() *Relation { return r.integrated.Rel }

// PossibleMatches returns pairs of integrated rows that could still
// model the same entity (§4.1's residual relation).
func (r *Result) PossibleMatches() ([][2]int, error) {
	return r.integrated.PossibleMatches()
}

// DerivationConflicts lists fixpoint-mode derivation conflicts.
func (r *Result) DerivationConflicts() []derive.Conflict {
	return append([]derive.Conflict(nil), r.inner.Conflicts...)
}

// Federation is a live identification state over autonomous relations
// (virtual integration, §1): tuples stream in and are identified
// incrementally; knowledge grows monotonically. Obtain one with
// System.Federate.
type Federation struct {
	inner *federate.Federation
}

// Federate snapshots the system into a live federation. The system's
// current relations seed the federation (copied — later inserts do not
// touch the originals), and the initial matching table must verify.
func (sys *System) Federate() (*Federation, error) {
	if sys.r == nil || sys.s == nil {
		return nil, fmt.Errorf("entityid: call SetRelations first")
	}
	if len(sys.extKey) == 0 {
		return nil, fmt.Errorf("entityid: call SetExtendedKey first")
	}
	inner, err := federate.New(match.Config{
		R:            sys.r,
		S:            sys.s,
		Attrs:        sys.attrs,
		ExtKey:       sys.extKey,
		ILFDs:        sys.ilfds,
		Identity:     sys.identity,
		Distinct:     sys.distinct,
		DeriveMode:   sys.mode,
		DisableProp1: sys.prop1Off,
	})
	if err != nil {
		return nil, err
	}
	return &Federation{inner: inner}, nil
}

// InsertR streams a tuple into relation R, identifying it immediately;
// it returns the new matching pairs (at most one). Inserts that would
// break the §3.2 constraints are rejected with the state unchanged.
func (f *Federation) InsertR(t Tuple) ([]Pair, error) { return f.inner.InsertR(t) }

// InsertS streams a tuple into relation S.
func (f *Federation) InsertS(t Tuple) ([]Pair, error) { return f.inner.InsertS(t) }

// AddILFD grows the knowledge base; non-monotone or inconsistent
// knowledge is rejected and rolled back.
func (f *Federation) AddILFD(fd ILFD) error { return f.inner.AddILFD(fd) }

// Pairs returns the current matching pairs.
func (f *Federation) Pairs() []Pair { return f.inner.Pairs() }

// IntegratedTable returns the current integrated view.
func (f *Federation) IntegratedTable() (*Relation, error) {
	tab, err := f.inner.Integrated()
	if err != nil {
		return nil, err
	}
	return tab.Rel, nil
}

// MergeStrategy selects how Merged resolves attribute-value conflicts
// between the two sides of a matched pair (§2's "attribute value
// conflict" problem, performable only after entity identification).
type MergeStrategy = resolve.Strategy

// The merge strategies.
const (
	// MergeCoalesce takes whichever side is non-NULL and records a
	// conflict when both sides disagree (keeping R's value).
	MergeCoalesce = resolve.Coalesce
	// MergePreferR prefers R's value.
	MergePreferR = resolve.PreferR
	// MergePreferS prefers S's value.
	MergePreferS = resolve.PreferS
	// MergeStrict fails on any disagreement.
	MergeStrict = resolve.Strict
)

// MergeConflict records one attribute-value disagreement found while
// merging.
type MergeConflict = resolve.Conflict

// Merged collapses the integrated table into a final relation with one
// column per integrated attribute, resolving each paired r_*/s_* column
// under the given strategy. It returns the merged relation plus any
// conflicts (empty under MergeStrict, which fails instead).
func (r *Result) Merged(strategy MergeStrategy) (*Relation, []MergeConflict, error) {
	specs := resolve.AutoSpecs(r.integrated, "", "")
	for i := range specs {
		specs[i].Strategy = strategy
	}
	return resolve.Merge(r.integrated, "integrated", specs)
}

// RenderMatchingTable prints the matching table in the prototype's
// format.
func (r *Result) RenderMatchingTable() string {
	return r.inner.RenderMT("matching table")
}

// RenderIntegratedTable prints T_RS in the prototype's format.
func (r *Result) RenderIntegratedTable() string {
	return r.integrated.Render("integrated table")
}

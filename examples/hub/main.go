// Hub: multi-source federation (§1's federated-database setting, taken
// past the paper's two-relation scope). Three restaurant guides — three
// autonomous publishers with three different candidate keys — are
// linked pairwise with the knowledge each pair supports: extended keys
// over (name, cuisine) where cuisine is recorded or ILFD-derivable, and
// a phone-trusting extended key between the two guides that both list
// phone numbers. The hub folds the pairwise matching tables into global
// entity clusters, checks the §3.2 uniqueness constraint transitively
// across sources, and serves a merged per-entity record.
//
// Run with: go run ./examples/hub
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"entityid"
)

func main() {
	if err := demo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// ilfds is the Table 8 fragment this universe needs.
var ilfds = []string{
	"speciality=hunan -> cuisine=chinese",
	"speciality=mughalai -> cuisine=indian",
	"speciality=gyros -> cuisine=greek",
}

func source(name string, attrs []string, key ...string) (*entityid.Relation, error) {
	as := make([]entityid.Attribute, len(attrs))
	for i, a := range attrs {
		as[i] = entityid.Attribute{Name: a}
	}
	return entityid.NewRelation(name, as, key)
}

func demo(w io.Writer) error {
	h := entityid.NewHub()

	// Three publishers; no two share a candidate key (Example 1's
	// situation, now three ways).
	guides, err := source("guides", []string{"name", "street", "cuisine", "phone"}, "name", "street")
	if err != nil {
		return err
	}
	stars, err := source("stars", []string{"name", "city", "speciality", "phone"}, "name", "city")
	if err != nil {
		return err
	}
	eats, err := source("eats", []string{"name", "hood", "speciality", "phone"}, "name", "hood")
	if err != nil {
		return err
	}
	// The guides source is seeded before linking; the others stream in
	// afterwards — link-time batch identification and per-insert
	// incremental identification feed the same clusters.
	for _, row := range [][]string{
		{"villagewok", "wash ave", "chinese", "612-0001"},
		{"goldenleaf", "lake st", "chinese", "612-0002"},
		{"itsgreek", "univ ave", "greek", "612-0003"},
	} {
		if err := guides.InsertStrings(row...); err != nil {
			return err
		}
	}
	for _, s := range []struct {
		name string
		rel  *entityid.Relation
	}{{"guides", guides}, {"stars", stars}, {"eats", eats}} {
		if err := h.AddSource(s.name, s.rel); err != nil {
			return err
		}
	}

	// Pairwise knowledge. Every link carries only what its two sources
	// justify — per-pair autonomy, the hub's core premise: the guides
	// pairs extend {name, cuisine} with the speciality→cuisine ILFDs,
	// while stars↔eats trusts their shared phone listings.
	link := func(p *entityid.PairSpec, withILFDs bool) error {
		if withILFDs {
			for _, line := range ilfds {
				p.AddILFDText(line)
			}
		}
		return h.Link(p)
	}
	if err := link(entityid.NewPair("guides", "stars").
		MapAttr("name", "name", "name").
		MapAttr("street", "street", "").
		MapAttr("city", "", "city").
		MapAttr("cuisine", "cuisine", "").
		MapAttr("speciality", "", "speciality").
		MapAttr("phone", "phone", "phone").
		SetExtendedKey("name", "cuisine"), true); err != nil {
		return err
	}
	if err := link(entityid.NewPair("guides", "eats").
		MapAttr("name", "name", "name").
		MapAttr("street", "street", "").
		MapAttr("hood", "", "hood").
		MapAttr("cuisine", "cuisine", "").
		MapAttr("speciality", "", "speciality").
		MapAttr("phone", "phone", "phone").
		SetExtendedKey("name", "cuisine"), true); err != nil {
		return err
	}
	if err := link(entityid.NewPair("stars", "eats").
		MapAttr("name", "name", "name").
		MapAttr("city", "city", "").
		MapAttr("hood", "", "hood").
		MapAttr("speciality", "speciality", "speciality").
		MapAttr("phone", "phone", "phone").
		SetExtendedKey("phone"), false); err != nil {
		return err
	}

	// Stream the other two guides concurrently; the worker pool shards
	// the batch across the (mostly independent) pairwise states.
	s := func(v string) entityid.Value { return entityid.String(v) }
	batch := []entityid.HubInsert{
		{Source: "stars", Tuple: entityid.Tuple{s("villagewok"), s("minneapolis"), s("hunan"), s("612-0001")}},
		{Source: "stars", Tuple: entityid.Tuple{s("anjuman"), s("st paul"), s("mughalai"), s("612-0004")}},
		{Source: "eats", Tuple: entityid.Tuple{s("itsgreek"), s("dinkytown"), s("gyros"), s("612-9903")}},
		{Source: "eats", Tuple: entityid.Tuple{s("anjuman"), s("cathedral hill"), s("mughalai"), s("612-0004")}},
	}
	for i, res := range h.IngestBatch(batch) {
		if res.Err != nil {
			return fmt.Errorf("insert %d: %w", i, res.Err)
		}
	}

	st := h.Stats()
	fmt.Fprintf(w, "== hub: %d sources, %d links, %d tuples, %d pairwise matches, %d entities ==\n\n",
		st.Sources, st.Pairs, st.Tuples, st.Matches, st.Clusters)
	fmt.Fprintln(w, "global clusters (transitively closed over all links):")
	for _, cl := range h.Clusters() {
		var ms []string
		for _, m := range cl.Members {
			ms = append(ms, fmt.Sprintf("%s[%s]", m.Source, m.Tuple[0]))
		}
		fmt.Fprintf(w, "  %-10s %s\n", cl.ID, strings.Join(ms, " ≡ "))
	}
	fmt.Fprintln(w)

	// villagewok's merged record coalesces the integrated attributes of
	// both publishers that know it — including the speciality only
	// stars records and the street only guides records.
	cl, err := h.Lookup("stars", s("villagewok"), s("minneapolis"))
	if err != nil {
		return err
	}
	merged, err := h.Merged(cl, entityid.MergeCoalesce)
	if err != nil {
		return err
	}
	var attrs []string
	for a := range merged.Values {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	fmt.Fprintf(w, "merged record for the villagewok cluster (%d sources):\n", len(cl.Members))
	for _, a := range attrs {
		fmt.Fprintf(w, "  %-11s %s\n", a, merged.Values[a])
	}
	fmt.Fprintln(w)

	// The transitive uniqueness guard: this eats listing reuses
	// villagewok's phone number. It matches guides[goldenleaf] via
	// (name, derived cuisine) on one link and stars[villagewok] via
	// phone on another — and stars[villagewok] is already identified
	// with guides[villagewok], so committing would merge two guides
	// rows into one entity. The hub refuses; nothing is committed
	// anywhere.
	_, err = h.Insert("eats", entityid.Tuple{s("goldenleaf"), s("uptown"), s("hunan"), s("612-0001")})
	if err == nil {
		return fmt.Errorf("expected a transitive uniqueness rejection")
	}
	fmt.Fprintf(w, "rejected (state rolled back): %v\n", err)
	if after := h.Stats(); after != st {
		return fmt.Errorf("rollback failed: %+v != %+v", after, st)
	}

	// With the phone corrected the listing is admitted and clusters
	// with goldenleaf alone — monotone growth resumes.
	rec, err := h.Insert("eats", entityid.Tuple{s("goldenleaf"), s("uptown"), s("hunan"), s("612-8802")})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "corrected listing clusters with %s[%s]\n\n",
		rec.Matched[0].Source, rec.Matched[0].Tuple[0])

	// Durability: the same federation, written ahead to disk, surviving
	// a restart. The directory is single-writer (an flock guards it, so
	// a second live process cannot corrupt the log); after Close,
	// reopening replays the write-ahead log back to identical clusters.
	dir, err := os.MkdirTemp("", "entityid-hub-example")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	// Automatic snapshots are off so the restart below recovers from
	// the write-ahead log alone.
	d, err := entityid.OpenHub(dir, entityid.WithSnapshotEvery(0))
	if err != nil {
		return err
	}
	for _, src := range []struct {
		name  string
		attrs []string
		key   []string
	}{
		{"stars", []string{"name", "city", "speciality", "phone"}, []string{"name", "city"}},
		{"eats", []string{"name", "hood", "speciality", "phone"}, []string{"name", "hood"}},
	} {
		rel, err := source(src.name, src.attrs, src.key...)
		if err != nil {
			return err
		}
		if err := d.AddSource(src.name, rel); err != nil {
			return err
		}
	}
	if err := d.Link(entityid.NewPair("stars", "eats").
		MapAttr("name", "name", "name").
		MapAttr("city", "city", "").
		MapAttr("hood", "", "hood").
		MapAttr("speciality", "speciality", "speciality").
		MapAttr("phone", "phone", "phone").
		SetExtendedKey("phone")); err != nil {
		return err
	}
	for i, res := range d.IngestBatch(batch) {
		if res.Err != nil {
			return fmt.Errorf("durable insert %d: %w", i, res.Err)
		}
	}
	before := d.Stats()
	if err := d.Close(); err != nil {
		return err
	}
	recovered, err := entityid.OpenHub(dir)
	if err != nil {
		return err
	}
	defer recovered.Close()
	after := recovered.Stats()
	if after != before {
		return fmt.Errorf("recovery drifted: %+v != %+v", after, before)
	}
	fmt.Fprintf(w, "recovered across restart: %d tuples in %d clusters replayed from the write-ahead log\n",
		after.Tuples, after.Clusters)
	return nil
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestHubExample(t *testing.T) {
	var b bytes.Buffer
	if err := demo(&b); err != nil {
		t.Fatalf("demo: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"3 sources, 3 links, 7 tuples, 3 pairwise matches, 4 entities",
		"guides[villagewok] ≡ stars[villagewok]",
		"stars[anjuman] ≡ eats[anjuman]",
		"speciality  hunan",
		"transitive uniqueness violation",
		"corrected listing clusters with guides[goldenleaf]",
		"recovered across restart: 4 tuples in 3 clusters replayed from the write-ahead log",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

package main

import (
	"strings"
	"testing"
)

func TestRestaurants(t *testing.T) {
	var b strings.Builder
	if err := demo(&b); err != nil {
		t.Fatalf("demo: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"Example 1", "unsound", "uniqueness violation",
		"Example 2", "Mughalai", "not-matching",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

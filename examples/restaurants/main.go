// Restaurants: the paper's motivating Examples 1 and 2 (§2.1, §4.1).
//
// Example 1 shows why the classical approaches fail: R and S have no
// common candidate key, and matching on the shared attribute name turns
// ambiguous as soon as a second VillageWok opens on Penn.Ave.
//
// Example 2 shows the paper's fix: an extended key {name, cuisine} plus
// the ILFD "Mughalai restaurants are Indian" matches relations that
// share no key at all — and Proposition 1 simultaneously yields the
// negative pair of Table 4.
//
// Run with: go run ./examples/restaurants
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"entityid"
)

func main() {
	if err := demo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func demo(w io.Writer) error {
	if err := example1(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return example2(w)
}

// example1 builds Table 1 and demonstrates the name-match ambiguity.
func example1(w io.Writer) error {
	fmt.Fprintln(w, "== Example 1: no common candidate key ==")
	r, err := entityid.NewRelation("R", []entityid.Attribute{
		{Name: "name"}, {Name: "street"}, {Name: "cuisine"},
	}, []string{"name", "street"})
	if err != nil {
		return err
	}
	for _, row := range [][3]string{
		{"VillageWok", "Wash.Ave.", "Chinese"},
		{"Ching", "Co.B Rd.", "Chinese"},
		{"OldCountry", "Co.B2 Rd.", "American"},
	} {
		if err := r.InsertStrings(row[0], row[1], row[2]); err != nil {
			return err
		}
	}
	s, err := entityid.NewRelation("S", []entityid.Attribute{
		{Name: "name"}, {Name: "city"}, {Name: "manager"},
	}, []string{"name", "city"})
	if err != nil {
		return err
	}
	for _, row := range [][3]string{
		{"VillageWok", "Mpls", "Hwang"},
		{"OldCountry", "Roseville", "Libby"},
		{"ExpressCafe", "Burnsville", "Tom"},
	} {
		if err := s.InsertStrings(row[0], row[1], row[2]); err != nil {
			return err
		}
	}
	fmt.Fprint(w, r.String())
	fmt.Fprintln(w)
	fmt.Fprint(w, s.String())
	fmt.Fprintln(w)

	// Matching on the shared name with the extended-key machinery but a
	// deliberately weak key {name}: verification catches the ambiguity
	// the moment the second VillageWok appears.
	if err := r.InsertStrings("VillageWok", "Penn.Ave.", "Chinese"); err != nil {
		return err
	}
	fmt.Fprintln(w, "insert (VillageWok, Penn.Ave., Chinese) into R …")
	sys := entityid.New()
	sys.SetRelations(r, s)
	sys.MapAttr("name", "name", "name")
	sys.SetExtendedKey("name")
	res, err := sys.IdentifyUnchecked()
	if err != nil {
		return err
	}
	if res.VerifyErr == nil {
		return fmt.Errorf("expected the ambiguity to be caught")
	}
	fmt.Fprintf(w, "matching on name alone is unsound: %v\n", res.VerifyErr)
	return nil
}

// example2 runs Table 2's match with the extended key and ILFD I4.
func example2(w io.Writer) error {
	fmt.Fprintln(w, "== Example 2: extended key + ILFD ==")
	r, err := entityid.NewRelation("R", []entityid.Attribute{
		{Name: "name"}, {Name: "cuisine"}, {Name: "street"},
	}, []string{"name", "cuisine"})
	if err != nil {
		return err
	}
	for _, row := range [][3]string{
		{"TwinCities", "Chinese", "Wash.Ave."},
		{"TwinCities", "Indian", "Univ.Ave."},
	} {
		if err := r.InsertStrings(row[0], row[1], row[2]); err != nil {
			return err
		}
	}
	s, err := entityid.NewRelation("S", []entityid.Attribute{
		{Name: "name"}, {Name: "speciality"}, {Name: "city"},
	}, []string{"name", "speciality"})
	if err != nil {
		return err
	}
	if err := s.InsertStrings("TwinCities", "Mughalai", "St. Paul"); err != nil {
		return err
	}

	sys := entityid.New()
	sys.SetRelations(r, s)
	sys.MapAttr("name", "name", "name")
	sys.MapAttr("cuisine", "cuisine", "")
	sys.MapAttr("speciality", "", "speciality")
	sys.SetExtendedKey("name", "cuisine")
	if err := sys.AddILFDText("speciality=Mughalai -> cuisine=Indian"); err != nil {
		return err
	}
	res, err := sys.Identify()
	if err != nil {
		return err
	}
	fmt.Fprint(w, res.RenderMatchingTable())
	fmt.Fprintln(w)

	// Proposition 1 in action: the same ILFD rules the Chinese
	// TwinCities OUT (Table 4's negative matching entry).
	verdict := res.Classify(0, 0) // R row 0 is the Chinese TwinCities
	fmt.Fprintf(w, "Chinese TwinCities vs Mughalai TwinCities: %v (Table 4's NMT entry)\n", verdict)
	if verdict != entityid.NotMatching {
		return fmt.Errorf("Prop. 1 distinctness did not fire")
	}
	return nil
}

package main

import (
	"strings"
	"testing"
)

func TestQuickstart(t *testing.T) {
	var b strings.Builder
	if err := demo(&b); err != nil {
		t.Fatalf("demo: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"verified", "matching table", "integrated table",
		"TwinCities", "Hunan", "Anjuman", "Mughalai", "It'sGreek", "Gyros",
		"matching=3",
		"value conflicts during merge: 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

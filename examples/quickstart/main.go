// Quickstart: the paper's Example 3 end-to-end through the public API.
//
// Two restaurant databases share no common candidate key — R is keyed
// on (name, cuisine), S on (name, speciality). The extended key
// {name, cuisine, speciality} plus eight ILFDs lets the system match
// them soundly, then build the integrated table.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"entityid"
)

func main() {
	if err := demo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func demo(w io.Writer) error {
	// Relation R(name, cuisine, street), key (name, cuisine).
	r, err := entityid.NewRelation("R", []entityid.Attribute{
		{Name: "name"}, {Name: "cuisine"}, {Name: "street"},
	}, []string{"name", "cuisine"})
	if err != nil {
		return err
	}
	for _, row := range [][3]string{
		{"TwinCities", "Chinese", "Co.B2"},
		{"TwinCities", "Indian", "Co.B3"},
		{"It'sGreek", "Greek", "FrontAve."},
		{"Anjuman", "Indian", "LeSalleAve."},
		{"VillageWok", "Chinese", "Wash.Ave."},
	} {
		if err := r.InsertStrings(row[0], row[1], row[2]); err != nil {
			return err
		}
	}
	// Relation S(name, speciality, county), key (name, speciality).
	s, err := entityid.NewRelation("S", []entityid.Attribute{
		{Name: "name"}, {Name: "speciality"}, {Name: "county"},
	}, []string{"name", "speciality"})
	if err != nil {
		return err
	}
	for _, row := range [][3]string{
		{"TwinCities", "Hunan", "Roseville"},
		{"TwinCities", "Sichuan", "Hennepin"},
		{"It'sGreek", "Gyros", "Ramsey"},
		{"Anjuman", "Mughalai", "Mpls."},
	} {
		if err := s.InsertStrings(row[0], row[1], row[2]); err != nil {
			return err
		}
	}

	sys := entityid.New()
	sys.SetRelations(r, s)
	// Semantic correspondences: name exists in both; cuisine only in R;
	// speciality only in S; street/county are side-local but feed ILFDs.
	sys.MapAttr("name", "name", "name")
	sys.MapAttr("cuisine", "cuisine", "")
	sys.MapAttr("speciality", "", "speciality")
	sys.MapAttr("street", "street", "")
	sys.MapAttr("county", "", "county")
	sys.SetExtendedKey("name", "cuisine", "speciality")

	// The paper's ILFDs I1–I8 (I9 is derivable and not needed).
	for _, line := range []string{
		"speciality=Hunan -> cuisine=Chinese",
		"speciality=Sichuan -> cuisine=Chinese",
		"speciality=Gyros -> cuisine=Greek",
		"speciality=Mughalai -> cuisine=Indian",
		"name=TwinCities & street=Co.B2 -> speciality=Hunan",
		"name=Anjuman & street=LeSalleAve. -> speciality=Mughalai",
		"street=FrontAve. -> county=Ramsey",
		"name=It'sGreek & county=Ramsey -> speciality=Gyros",
	} {
		if err := sys.AddILFDText(line); err != nil {
			return err
		}
	}

	res, err := sys.Identify()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "The extended key is verified (sound matching).")
	fmt.Fprintln(w)
	fmt.Fprint(w, res.RenderMatchingTable())
	fmt.Fprintln(w)
	fmt.Fprint(w, res.RenderIntegratedTable())
	fmt.Fprintln(w)
	fmt.Fprintf(w, "three-valued partition: %v\n", res.Partition())

	// Final step: collapse the paired r_*/s_* columns into the merged
	// integrated relation (attribute-value conflict resolution, §2).
	merged, conflicts, err := res.Merged(entityid.MergeCoalesce)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := merged.Sort("name"); err != nil {
		return err
	}
	fmt.Fprint(w, merged.String())
	fmt.Fprintf(w, "value conflicts during merge: %d\n", len(conflicts))
	return nil
}

package main

import (
	"strings"
	"testing"
)

func TestFederated(t *testing.T) {
	var b strings.Builder
	if err := demo(&b); err != nil {
		t.Fatalf("demo: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"week", "matching=3", "after user assertion: 4 matched pairs",
		"monotonic",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

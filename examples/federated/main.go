// Federated: monotonic knowledge acquisition in a federated database
// (§3.3). In virtual integration the component databases stay live and
// the DBA supplies semantic knowledge incrementally; the identification
// process must be monotonic — once a pair is declared matching or
// non-matching it stays that way, and only the undetermined region
// shrinks.
//
// This example replays the paper's Example 3 as a timeline: each "week"
// the DBA learns one more ILFD, and the three-valued partition moves
// monotonically toward completeness. At the end, a knowledgeable user
// asserts one extra pair by hand (the §2.2 user-specified escape hatch
// the technique remains compatible with).
//
// Run with: go run ./examples/federated
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"entityid"
	"entityid/internal/paperdata"
)

func main() {
	if err := demo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func newSystem(k int) *entityid.System {
	sys := entityid.New()
	sys.SetRelations(paperdata.Table5R(), paperdata.Table5S())
	sys.MapAttr("name", "name", "name")
	sys.MapAttr("cuisine", "cuisine", "")
	sys.MapAttr("speciality", "", "speciality")
	sys.MapAttr("street", "street", "")
	sys.MapAttr("county", "", "county")
	sys.SetExtendedKey("name", "cuisine", "speciality")
	for _, f := range paperdata.Example3ILFDs()[:k] {
		sys.AddILFD(f)
	}
	return sys
}

func demo(w io.Writer) error {
	all := paperdata.Example3ILFDs()
	fmt.Fprintln(w, "week  new knowledge                                        partition")
	var lastM, lastU int
	for k := 0; k <= len(all); k++ {
		res, err := newSystem(k).Identify()
		if err != nil {
			return err
		}
		part := res.Partition()
		what := "(none yet)"
		if k > 0 {
			what = all[k-1].String()
		}
		fmt.Fprintf(w, "%4d  %-50s  %v\n", k, what, part)
		if k > 0 && (part.Matching < lastM || part.Undetermined > lastU) {
			return fmt.Errorf("monotonicity violated at week %d", k)
		}
		lastM, lastU = part.Matching, part.Undetermined
	}
	fmt.Fprintln(w)

	// Week 9: a user who knows VillageWok and the Sichuan TwinCities are
	// unrelated cannot add negative knowledge faster than ILFDs — but a
	// user who knows two residual rows ARE the same entity can assert
	// the pair directly.
	sys := newSystem(len(all))
	sys.AssertMatch(
		[]entityid.Value{entityid.String("VillageWok"), entityid.String("Chinese")},
		[]entityid.Value{entityid.String("TwinCities"), entityid.String("Sichuan")},
	)
	res, err := sys.Identify()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "after user assertion: %d matched pairs, integrated table has %d rows\n",
		len(res.MatchingPairs()), res.IntegratedTable().Len())
	fmt.Fprintln(w, "every earlier verdict survived — the process is monotonic.")
	return nil
}

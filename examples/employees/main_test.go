package main

import (
	"strings"
	"testing"
)

func TestEmployees(t *testing.T) {
	var b strings.Builder
	if err := demo(&b); err != nil {
		t.Fatalf("demo: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"WRONGLY matched",
		"extended key + ILFDs",
		"sound:",
		"j.smith",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// Employees: the paper's §4 motivating scenario. "A company wanting to
// dismiss employees with sales performance below expectation requires
// matching between the employee records in one database and their
// performance records in another. It is crucial that the set of matched
// records be correct; otherwise, some people may be wrongly fired."
//
// HR's database keys employees by (name, office); the sales database
// keys performance rows by (name, territory). Two different J. Smiths
// work in different offices. A probabilistic name match fires the wrong
// J. Smith; the extended-key technique refuses to match until the DBA
// supplies ILFDs tying offices to territories — and then matches only
// what the knowledge supports.
//
// Run with: go run ./examples/employees
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"entityid"
	"entityid/internal/baselines"
	"entityid/internal/match"
	"entityid/internal/quality"
)

func main() {
	if err := demo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func demo(w io.Writer) error {
	hr, err := entityid.NewRelation("HR", []entityid.Attribute{
		{Name: "name"}, {Name: "office"}, {Name: "title"},
	}, []string{"name", "office"})
	if err != nil {
		return err
	}
	for _, row := range [][3]string{
		{"j.smith", "minneapolis", "account-exec"},
		{"j.smith", "st.paul", "senior-exec"},
		{"m.jones", "minneapolis", "account-exec"},
		{"a.chen", "edina", "manager"},
	} {
		if err := hr.InsertStrings(row[0], row[1], row[2]); err != nil {
			return err
		}
	}
	perf, err := entityid.NewRelation("Sales", []entityid.Attribute{
		{Name: "name"}, {Name: "territory"}, {Name: "quota_met"},
	}, []string{"name", "territory"})
	if err != nil {
		return err
	}
	for _, row := range [][3]string{
		{"j.smith", "north", "no"}, // the St. Paul Smith — safe job, bad quarter
		{"m.jones", "south", "yes"},
		{"a.chen", "west", "yes"},
	} {
		if err := perf.InsertStrings(row[0], row[1], row[2]); err != nil {
			return err
		}
	}
	// Ground truth: north territory belongs to the St. Paul office, so
	// the performance row is the *second* J. Smith (HR row 1).
	truth := quality.TruthSet{
		{1, 0}: true, {2, 1}: true, {3, 2}: true,
	}

	fmt.Fprintln(w, "== probabilistic name matching (Pu, §2.2) ==")
	pk := baselines.ProbabilisticKey{
		Key:       []baselines.AttrPair{{R: "name", S: "name"}},
		Threshold: 0.7,
	}
	mt, err := pk.Match(hr, perf)
	if err != nil {
		return err
	}
	sc := quality.Evaluate(mt, truth)
	fmt.Fprintf(w, "matches: %d, score: %s\n", mt.Len(), sc)
	wrong := 0
	for _, p := range mt.Pairs {
		if !truth[[2]int{p.RIndex, p.SIndex}] {
			wrong++
			fmt.Fprintf(w, "  WRONGLY matched HR row %d (%s@%s) to performance row %d — someone gets fired by mistake\n",
				p.RIndex, hr.MustValue(p.RIndex, "name"), hr.MustValue(p.RIndex, "office"), p.SIndex)
		}
	}
	if wrong == 0 {
		return fmt.Errorf("expected the probabilistic baseline to mis-match a J. Smith")
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "== extended key + ILFDs (the paper's technique) ==")
	sys := entityid.New()
	sys.SetRelations(hr, perf)
	sys.MapAttr("name", "name", "name")
	sys.MapAttr("office", "office", "")
	sys.MapAttr("territory", "", "territory")
	sys.SetExtendedKey("name", "office")
	// DBA knowledge: territories determine offices.
	for _, line := range []string{
		"territory=north -> office=st.paul",
		"territory=south -> office=minneapolis",
		"territory=west -> office=edina",
	} {
		if err := sys.AddILFDText(line); err != nil {
			return err
		}
	}
	res, err := sys.Identify()
	if err != nil {
		return err
	}
	fmt.Fprint(w, res.RenderMatchingTable())
	ours := quality.Evaluate(&match.Table{Pairs: res.MatchingPairs()}, truth)
	fmt.Fprintf(w, "score: %s\n", ours)
	if !ours.Sound() {
		return fmt.Errorf("our matching is unsound: %s", ours)
	}
	if ours.Recall() != 1 {
		return fmt.Errorf("full knowledge should give full recall: %s", ours)
	}
	fmt.Fprintln(w, "sound: the Minneapolis J. Smith is never matched to the failing north-territory row.")
	return nil
}

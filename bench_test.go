package entityid

// Benchmarks: one testing.B target per paper artifact (Tables 1–8,
// Figures 1–4, the §6 prototype sessions) plus the quantitative sweeps
// S1–S4 of DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The paper reports no timings — its evaluation is the worked examples
// and the prototype transcripts — so these benches (a) pin that every
// artifact still reproduces while being measured and (b) provide the
// scaling data a modern reader expects (see EXPERIMENTS.md).

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"entityid/internal/baselines"
	"entityid/internal/datagen"
	"entityid/internal/derive"
	"entityid/internal/federate"
	"entityid/internal/hub"
	"entityid/internal/ilfd"
	"entityid/internal/integrate"
	"entityid/internal/match"
	"entityid/internal/obs"
	"entityid/internal/paperdata"
	"entityid/internal/quality"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

func example3Cfg() match.Config {
	return match.Config{
		R: paperdata.Table5R(),
		S: paperdata.Table5S(),
		Attrs: []match.AttrMap{
			{Name: "name", R: "name", S: "name"},
			{Name: "cuisine", R: "cuisine", S: ""},
			{Name: "speciality", R: "", S: "speciality"},
			{Name: "street", R: "street", S: ""},
			{Name: "county", R: "", S: "county"},
		},
		ExtKey: paperdata.Example3ExtendedKey(),
		ILFDs:  paperdata.Example3ILFDs(),
	}
}

// BenchmarkTable1KeyEquivalenceAmbiguity measures Example 1's
// common-attribute match including the ambiguous VillageWok case (T1).
func BenchmarkTable1KeyEquivalenceAmbiguity(b *testing.B) {
	r, s := paperdata.Table1R(), paperdata.Table1S()
	if err := r.Insert(relation.Tuple{
		value.String("VillageWok"), value.String("Penn.Ave."), value.String("Chinese"),
	}); err != nil {
		b.Fatal(err)
	}
	m := baselines.KeyEquivalence{Key: []baselines.AttrPair{{R: "name", S: "name"}}, AllowNonKey: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt, err := m.Match(r, s)
		if err != nil {
			b.Fatal(err)
		}
		if mt.Len() != 3 {
			b.Fatalf("pairs = %d", mt.Len())
		}
	}
}

// BenchmarkTable2ExtendedKeyMatch measures Example 2's extended-key +
// ILFD match (T2/T3).
func BenchmarkTable2ExtendedKeyMatch(b *testing.B) {
	cfg := match.Config{
		R: paperdata.Table2R(),
		S: paperdata.Table2S(),
		Attrs: []match.AttrMap{
			{Name: "name", R: "name", S: "name"},
			{Name: "cuisine", R: "cuisine", S: ""},
			{Name: "speciality", R: "", S: "speciality"},
		},
		ExtKey: []string{"name", "cuisine"},
		ILFDs:  ilfd.Set{paperdata.Example2ILFD()},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := match.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.MT.Len() != 1 {
			b.Fatalf("pairs = %d", res.MT.Len())
		}
	}
}

// BenchmarkTable4NegativeMatching measures NMT enumeration via the
// Proposition 1 distinctness rules (T4).
func BenchmarkTable4NegativeMatching(b *testing.B) {
	cfg := match.Config{
		R: paperdata.Table2R(),
		S: paperdata.Table2S(),
		Attrs: []match.AttrMap{
			{Name: "name", R: "name", S: "name"},
			{Name: "cuisine", R: "cuisine", S: ""},
			{Name: "speciality", R: "", S: "speciality"},
		},
		ExtKey: []string{"name", "cuisine"},
		ILFDs:  ilfd.Set{paperdata.Example2ILFD()},
	}
	res, err := match.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		neg := res.NegativePairs(0)
		if len(neg) == 0 {
			b.Fatal("no negative pairs")
		}
	}
}

// BenchmarkTable6ExtendRelations measures the ILFD derivation that
// produces the extended relations of Table 6 (T6).
func BenchmarkTable6ExtendRelations(b *testing.B) {
	r := paperdata.Table5R()
	fs := paperdata.Example3ILFDs()
	extra := []schema.Attribute{
		{Name: "speciality", Kind: value.KindString},
		{Name: "county", Kind: value.KindString},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext, _, err := derive.Extend(r, "R'", extra, fs, derive.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if ext.Len() != 5 {
			b.Fatal("wrong extension")
		}
	}
}

// BenchmarkTable7MatchingTable measures the full Example 3 matching-
// table construction (T7).
func BenchmarkTable7MatchingTable(b *testing.B) {
	cfg := example3Cfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := match.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.MT.Len() != 3 {
			b.Fatalf("pairs = %d", res.MT.Len())
		}
	}
}

// BenchmarkTable8ILFDTableDerivation measures relational (join-based)
// derivation through the Table 8 ILFD table (T8).
func BenchmarkTable8ILFDTableDerivation(b *testing.B) {
	s := paperdata.Table5S()
	tab := paperdata.Table8()
	extra := []schema.Attribute{{Name: "cuisine", Kind: value.KindString}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext, _, err := derive.ExtendWithTables(s, "S'", extra, []*ilfd.Table{tab}, derive.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if ext.Len() != 4 {
			b.Fatal("wrong extension")
		}
	}
}

// BenchmarkFigure1Correspondence measures sound correspondence recovery
// on a synthetic universe with ground truth (F1).
func BenchmarkFigure1Correspondence(b *testing.B) {
	w := datagen.MustGenerate(datagen.Config{
		Entities: 300, OverlapFrac: 0.4, HomonymRate: 0.1, ILFDCoverage: 0.8, Seed: 101,
	})
	cfg := w.MatchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := match.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sc := quality.Evaluate(res.MT, w.Truth)
		if !sc.Sound() {
			b.Fatalf("unsound: %s", sc)
		}
	}
}

// BenchmarkFigure2SoundnessFailure measures the probabilistic-attribute
// baseline on the Figure 2 scenario (F2).
func BenchmarkFigure2SoundnessFailure(b *testing.B) {
	r, s := paperdata.Figure2R(), paperdata.Figure2S()
	pa := baselines.ProbabilisticAttr{Common: []baselines.AttrPair{
		{R: "name", S: "name"}, {R: "cuisine", S: "cuisine"},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt, err := pa.Match(r, s)
		if err != nil {
			b.Fatal(err)
		}
		if mt.Len() != 1 {
			b.Fatal("unsound match did not fire")
		}
	}
}

// BenchmarkFigure3Monotonicity measures the full monotonicity series:
// nine matching-table builds with growing ILFD sets plus the three-way
// partition at each step (F3).
func BenchmarkFigure3Monotonicity(b *testing.B) {
	all := paperdata.Example3ILFDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k <= len(all); k++ {
			cfg := example3Cfg()
			cfg.ILFDs = all[:k]
			res, err := match.Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res.Counts()
		}
	}
}

// BenchmarkFigure4Pipeline measures the full Figure 4 pipeline:
// extend → match → verify → integrate (F4).
func BenchmarkFigure4Pipeline(b *testing.B) {
	cfg := example3Cfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := match.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			b.Fatal(err)
		}
		tab, err := integrate.Build(res, integrate.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if tab.Len() != 6 {
			b.Fatalf("rows = %d", tab.Len())
		}
	}
}

// BenchmarkPrototypeSession measures the §6.3 session-1 flow including
// table rendering (P1).
func BenchmarkPrototypeSession(b *testing.B) {
	cfg := example3Cfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := match.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			b.Fatal(err)
		}
		tab, err := integrate.Build(res, integrate.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.RenderMT("matching table")) == 0 || len(tab.Render("integrated table")) == 0 {
			b.Fatal("empty render")
		}
	}
}

// BenchmarkPrototypeUnsoundKey measures the §6.3 session-2 flow: build
// with extended key {name} and detect the uniqueness violation (P2).
func BenchmarkPrototypeUnsoundKey(b *testing.B) {
	cfg := example3Cfg()
	cfg.ExtKey = []string{"name"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := match.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Verify() == nil {
			b.Fatal("unsound key passed verification")
		}
	}
}

// BenchmarkScalingMatch is S1: matching-table construction across
// universe sizes.
func BenchmarkScalingMatch(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		w := datagen.MustGenerate(datagen.Config{
			Entities: n, OverlapFrac: 0.5, HomonymRate: 0.1, ILFDCoverage: 0.7, Seed: int64(n),
		})
		cfg := w.MatchConfig()
		b.Run(fmt.Sprintf("entities=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := match.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				_ = res.MT.Len()
			}
		})
	}
}

// BenchmarkClosure is S2: symbol-set closure over growing ILFD sets
// with depth-8 chains.
func BenchmarkClosure(b *testing.B) {
	for _, size := range []int{16, 128, 1024} {
		var fs ilfd.Set
		for i := 0; i < 8; i++ {
			fs = append(fs, ilfd.MustNew(
				ilfd.Conditions{ilfd.C(fmt.Sprintf("a%d", i), "1")},
				ilfd.Conditions{ilfd.C(fmt.Sprintf("a%d", i+1), "1")},
			))
		}
		for i := len(fs); i < size; i++ {
			fs = append(fs, ilfd.MustNew(
				ilfd.Conditions{ilfd.C(fmt.Sprintf("p%d", i), "x")},
				ilfd.Conditions{ilfd.C(fmt.Sprintf("q%d", i), "y")},
			))
		}
		seed := ilfd.Conditions{ilfd.C("a0", "1")}
		b.Run(fmt.Sprintf("ilfds=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clo := ilfd.Closure(seed, fs)
				if len(clo) < 9 {
					b.Fatalf("closure size %d", len(clo))
				}
			}
		})
	}
}

// BenchmarkBaselines is S3: each §2.2 technique on the same 600-entity
// workload with 10% homonyms.
func BenchmarkBaselines(b *testing.B) {
	w := datagen.MustGenerate(datagen.Config{
		Entities: 600, OverlapFrac: 0.5, HomonymRate: 0.1,
		ILFDCoverage: 0.7, MissingPhone: 0.2, DirtyPhone: 0.3, Seed: 1010,
	})
	b.Run("extended-key-ilfd", func(b *testing.B) {
		cfg := w.MatchConfig()
		for i := 0; i < b.N; i++ {
			if _, err := match.Build(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("name-equality", func(b *testing.B) {
		m := baselines.KeyEquivalence{Key: []baselines.AttrPair{{R: "name", S: "name"}}, AllowNonKey: true}
		for i := 0; i < b.N; i++ {
			if _, err := m.Match(w.R, w.S); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("probabilistic-key", func(b *testing.B) {
		m := baselines.ProbabilisticKey{Key: []baselines.AttrPair{{R: "name", S: "name"}}, Threshold: 0.6}
		for i := 0; i < b.N; i++ {
			if _, err := m.Match(w.R, w.S); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("probabilistic-attribute", func(b *testing.B) {
		m := baselines.ProbabilisticAttr{
			Common:    []baselines.AttrPair{{R: "name", S: "name"}, {R: "phone", S: "phone"}},
			Threshold: 0.99,
		}
		for i := 0; i < b.N; i++ {
			if _, err := m.Match(w.R, w.S); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFederateInsert is S5: per-insert incremental identification
// against a live federation seeded with 400 entities.
func BenchmarkFederateInsert(b *testing.B) {
	w := datagen.MustGenerate(datagen.Config{
		Entities: 400, OverlapFrac: 0.5, HomonymRate: 0.1, ILFDCoverage: 0.8, Seed: 505,
	})
	fed, err := federate.New(w.MatchConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := relation.Tuple{
			value.String(fmt.Sprintf("bench-entity-%d", i)),
			value.String(fmt.Sprintf("%d bench st", i)),
			value.String("chinese"),
			value.Null,
		}
		if _, err := fed.InsertR(t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHubIngest is S8: K-source streaming ingest through the hub
// — every insert is prepared against K-1 pairwise federations, checked
// for transitive uniqueness and committed under the per-pair locks,
// sharded across the ingest worker pool. ReportMetric exposes
// tuples/sec; BENCH_match.json (benchreport -benchjson) tracks the
// same measurement across PRs.
func BenchmarkHubIngest(b *testing.B) {
	for _, k := range []int{2, 4} {
		b.Run(fmt.Sprintf("sources=%d", k), func(b *testing.B) {
			w := datagen.MustMultiGenerate(datagen.MultiConfig{
				Sources: k, Entities: 300, PresenceFrac: 0.6,
				HomonymRate: 0.1, MissingPhone: 0.1, DirtyPhone: 0.2,
				Seed: int64(1000 + k),
			})
			items := hub.MultiInserts(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := hub.NewFromMulti(w)
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range h.IngestBatch(items) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
			b.ReportMetric(float64(len(items))*float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
		})
	}
}

// BenchmarkObsOverhead is the observability-overhead series: the
// 4-source BenchmarkHubIngest workload with the obs clock disabled
// (baseline — counters still tick, but histogram and slow-op timing
// capture is off) against the fully instrumented default. Compare the
// two tuples/sec metrics; instrumentation must stay within a few
// percent. BENCH_match.json (benchreport -benchjson) tracks the same
// ratio across PRs.
func BenchmarkObsOverhead(b *testing.B) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 4, Entities: 300, PresenceFrac: 0.6,
		HomonymRate: 0.1, MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 1004,
	})
	items := hub.MultiInserts(w)
	ingest := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h, err := hub.NewFromMulti(w)
			if err != nil {
				b.Fatal(err)
			}
			for _, res := range h.IngestBatch(items) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
		b.ReportMetric(float64(len(items))*float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
	}
	b.Run("baseline-obs-off", func(b *testing.B) {
		obs.SetEnabled(false)
		defer obs.SetEnabled(true)
		b.ResetTimer()
		ingest(b)
	})
	b.Run("instrumented", ingest)
}

// BenchmarkHubServe is S9: mixed read/ingest serving through the hub.
// reads-during-ingest hammers point cluster reads (ClusterAt over the
// committed prefix) from GOMAXPROCS-wide readers while a background
// ingester streams the second half of the workload — the reads take
// only per-shard/per-source read locks, so throughput scales with
// readers instead of serialising behind a hub-global lock.
// clusters-stream walks the full paginated enumeration, one bounded
// page at a time. BENCH_match.json (benchreport -benchjson) tracks
// both series across PRs.
func BenchmarkHubServe(b *testing.B) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 400, PresenceFrac: 0.6, HomonymRate: 0.1,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 9,
	})
	items := hub.MultiInserts(w)
	b.Run("reads-during-ingest", func(b *testing.B) {
		// The shared harness keeps committing until the readers finish —
		// every timed read races a live commit path, however large b.N
		// grows.
		h, ing, err := hub.NewServeBench(w)
		if err != nil {
			b.Fatal(err)
		}
		names := h.SourceNames()
		var seq atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(seq.Add(1)))
			for pb.Next() {
				src := names[rng.Intn(len(names))]
				n, err := h.SourceLen(src)
				if err != nil {
					b.Error(err)
					return
				}
				if n == 0 {
					continue
				}
				if _, err := h.ClusterAt(src, rng.Intn(n)); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		if _, _, err := ing.Stop(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/sec")
	})
	b.Run("clusters-stream", func(b *testing.B) {
		h, err := hub.NewFromMulti(w)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range h.IngestBatch(items) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			cursor := ""
			for {
				page, next, err := h.ClustersPage(cursor, 128)
				if err != nil {
					b.Fatal(err)
				}
				total += len(page)
				if next == "" {
					break
				}
				cursor = next
			}
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "clusters/sec")
	})
}

// BenchmarkScaleBuild is S6: full matching-table construction on the
// canonical ~2k×2k scale workload, blocked hash-join identity rules
// (engine) versus the nested-loop reference (naive).
func BenchmarkScaleBuild(b *testing.B) {
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"engine", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := datagen.ScaleMatchConfig()
			cfg.Naive = mode.naive
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := match.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.MT.Len() == 0 {
					b.Fatal("empty matching table")
				}
			}
		})
	}
}

// BenchmarkScaleCounts is S7: the full |R|×|S| Figure 3 partition on
// the canonical scale workload — the pair-indexed, compiled-rule,
// parallel sweep (engine) versus the linear-scan, interpreted,
// sequential reference (naive). BENCH_match.json (benchreport
// -benchjson) tracks the same measurement across PRs.
func BenchmarkScaleCounts(b *testing.B) {
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"engine", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := datagen.ScaleMatchConfig()
			cfg.Naive = mode.naive
			res, err := match.Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, _, u := res.Counts()
				if m == 0 || u == 0 {
					b.Fatal("degenerate partition")
				}
			}
		})
	}
}

// BenchmarkAblationDerive is S4: cut vs fixpoint semantics and rules vs
// relational ILFD tables, bulk derivation over 3000 entities.
func BenchmarkAblationDerive(b *testing.B) {
	w := datagen.MustGenerate(datagen.Config{
		Entities: 3000, OverlapFrac: 0.5, ILFDCoverage: 1, Seed: 77,
	})
	var uniform ilfd.Set
	for _, f := range w.ILFDs {
		if len(f.Antecedent) == 1 && f.Antecedent[0].Attr == "speciality" {
			uniform = append(uniform, f)
		}
	}
	tables, _, err := ilfd.FromSet(uniform, func(string) value.Kind { return value.KindString })
	if err != nil {
		b.Fatal(err)
	}
	extra := []schema.Attribute{{Name: "cuisine", Kind: value.KindString}}
	b.Run("cut-rules", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := derive.Extend(w.S, "S'", extra, uniform, derive.Options{Mode: derive.FirstMatch}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fixpoint-rules", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := derive.Extend(w.S, "S'", extra, uniform, derive.Options{Mode: derive.Fixpoint}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cut-tables", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := derive.ExtendWithTables(w.S, "S'", extra, tables, derive.Options{Mode: derive.FirstMatch}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package entityid

// The multi-source federation surface: Hub generalizes the pairwise
// System/Federation workflow to N autonomous sources with globally
// consistent entity identities. Register sources, link pairs with
// per-pair knowledge (the same correspondences, extended keys, ILFDs
// and rules a two-relation System takes), then stream inserts; the hub
// maintains one live pairwise federation per link and folds the
// pairwise matching tables into global entity clusters, rejecting — and
// rolling back — any insert whose matches would transitively merge two
// tuples of one source.
//
//	h := entityid.NewHub()
//	h.AddSource("zagat", zagat)
//	h.AddSource("michelin", michelin)
//	h.AddSource("infatuation", infatuation)
//	h.Link(entityid.NewPair("zagat", "michelin").
//	    MapAttr("name", "name", "name").
//	    MapAttr("cuisine", "cuisine", "").
//	    MapAttr("speciality", "", "speciality").
//	    SetExtendedKey("name", "cuisine"))
//	...
//	rec, err := h.Insert("zagat", tuple)
//	cluster, err := h.Lookup("michelin", key...)
//	merged, err := h.Merged(cluster, entityid.MergeCoalesce)
//
// OpenHub returns a durable hub instead: mutations are written ahead
// to a CRC-guarded log under a data directory, background snapshots
// bound the log, and re-opening the directory recovers the exact
// pre-crash state (see Checkpoint and Close).

import (
	"context"
	"iter"
	"time"

	"entityid/internal/hub"
	"entityid/internal/ilfd"
	"entityid/internal/match"
	"entityid/internal/resolve"
)

// AttrMap places one integrated-world attribute in two relations (the
// building block of PairSpec.Attrs; System.MapAttr constructs them
// internally).
type AttrMap = match.AttrMap

// EntityCluster is one global entity: its member tuples across sources.
type EntityCluster = hub.Cluster

// ClusterMember is one tuple of one cluster.
type ClusterMember = hub.Member

// HubReceipt reports a successful hub insert.
type HubReceipt = hub.Receipt

// HubInsert is one item of Hub.IngestBatch.
type HubInsert = hub.Insert

// HubInsertResult is one IngestBatch outcome, in input order.
type HubInsertResult = hub.InsertResult

// HubStreamOptions configures Hub.IngestStream.
type HubStreamOptions = hub.StreamOptions

// HubStreamResult is one Hub.IngestStream outcome, delivered in input
// (Seq) order.
type HubStreamResult = hub.StreamResult

// HubStats summarises a hub.
type HubStats = hub.Stats

// HubHealth is a point-in-time snapshot of a durable hub's health
// state machine: ready (read-write), degraded (read-only while the
// disk is sick, with background recovery probes), or poisoned
// (fail-closed until restart).
type HubHealth = hub.Health

// HubState is the hub's health state.
type HubState = hub.State

// Health states. A persistent I/O failure (ENOSPC, EIO, read-only
// remount) moves a durable hub Ready→Degraded; a successful recovery
// probe moves it back; a commit-path invariant violation moves it to
// the terminal Poisoned state.
const (
	HubReady    = hub.StateReady
	HubDegraded = hub.StateDegraded
	HubPoisoned = hub.StatePoisoned
)

// ErrHubDegraded matches (via errors.Is) every ingest rejection issued
// while the hub is degraded: reads keep serving, writes fail fast
// until the disk heals.
var ErrHubDegraded = hub.ErrDegraded

// ErrHubPoisoned matches every ingest rejection issued after a
// commit-path invariant violation; the hub serves reads but refuses
// writes until a restart replays the log.
var ErrHubPoisoned = hub.ErrPoisoned

// MergedEntity is a cluster's merged cross-source record.
type MergedEntity = hub.MergedEntity

// PairSpec accumulates the identification knowledge for one source
// pair, in the same fluent style as System. Construct with NewPair.
type PairSpec struct {
	inner   hub.PairSpec
	ilfdErr error
}

// NewPair starts a link specification between two registered sources.
// AttrMap entries address Left via their R side and Right via S.
func NewPair(left, right string) *PairSpec {
	return &PairSpec{inner: hub.PairSpec{Left: left, Right: right}}
}

// MapAttr declares an integrated-world attribute and its location in
// the two sources; pass "" for a side that does not model it.
func (p *PairSpec) MapAttr(name, leftAttr, rightAttr string) *PairSpec {
	p.inner.Attrs = append(p.inner.Attrs, match.AttrMap{Name: name, R: leftAttr, S: rightAttr})
	return p
}

// SetExtendedKey declares the pair's extended key (§4.1) over
// integrated attribute names.
func (p *PairSpec) SetExtendedKey(attrs ...string) *PairSpec {
	p.inner.ExtKey = append([]string(nil), attrs...)
	return p
}

// AddILFD registers an instance-level functional dependency for this
// pair.
func (p *PairSpec) AddILFD(f ILFD) *PairSpec {
	p.inner.ILFDs = append(p.inner.ILFDs, f)
	return p
}

// AddILFDText parses and registers an ILFD; a parse error is deferred
// to Hub.Link so the fluent chain stays unbroken.
func (p *PairSpec) AddILFDText(line string) *PairSpec {
	f, err := ilfd.ParseLine(line)
	if err != nil {
		if p.ilfdErr == nil {
			p.ilfdErr = err
		}
		return p
	}
	p.inner.ILFDs = append(p.inner.ILFDs, f)
	return p
}

// AddIdentityRule registers an extra identity rule for this pair.
func (p *PairSpec) AddIdentityRule(r IdentityRule) *PairSpec {
	p.inner.Identity = append(p.inner.Identity, r)
	return p
}

// AddDistinctnessRule registers an extra distinctness rule.
func (p *PairSpec) AddDistinctnessRule(d DistinctnessRule) *PairSpec {
	p.inner.Distinct = append(p.inner.Distinct, d)
	return p
}

// Hub is a live N-source federation: global entity clusters maintained
// over per-pair incremental identification. Safe for concurrent use.
// Obtain one with NewHub.
type Hub struct {
	inner    *hub.Hub
	recovery *HubRecovery
}

// HubRecovery reports what OpenHub reconstructed: snapshot use, the
// replayed log tail, and — critically — whether a torn or corrupt log
// tail was detected and dropped (TailDamage). Operators should surface
// TailDamage: it means the last unacknowledged write(s) before a crash
// were discarded.
type HubRecovery = hub.RecoveryInfo

// NewHub creates an empty, memory-only hub. Use OpenHub for a hub
// whose state survives process restarts.
func NewHub() *Hub {
	return &Hub{inner: hub.New()}
}

// HubOption configures OpenHub.
type HubOption func(*hubOptions)

type hubOptions struct {
	snapshotEvery   int
	syncEvery       int
	probeBackoff    time.Duration
	probeBackoffMax time.Duration
	store           string
	hotClusters     int
	hotPairs        int
}

// WithSnapshotEvery sets how many committed inserts elapse between
// background snapshots (each snapshot truncates the write-ahead log it
// covers). 0 disables automatic snapshots: the log grows until
// Checkpoint is called. The default is 1024.
func WithSnapshotEvery(n int) HubOption {
	return func(o *hubOptions) { o.snapshotEvery = n }
}

// WithSyncEvery opts into the group-commit fsync policy: the
// write-ahead log is forced to stable storage after every n appends,
// and IngestBatch flushes each batch with one final sync. This bounds
// what a power-loss crash can take to the last n acknowledged
// mutations, at the cost of an fsync on every n-th commit. 0 (the
// default) leaves durability between snapshots to the OS page cache —
// the right trade when the crash model is process death, not power
// loss.
func WithSyncEvery(n int) HubOption {
	return func(o *hubOptions) { o.syncEvery = n }
}

// WithProbeBackoff shapes the degraded-mode recovery probe loop: after
// a persistent I/O failure degrades the hub to read-only, the first
// probe fires after base, each failed probe doubles the delay, and max
// caps it. Zero values keep the defaults (500ms base, 15s cap).
func WithProbeBackoff(base, max time.Duration) HubOption {
	return func(o *hubOptions) {
		o.probeBackoff = base
		o.probeBackoffMax = max
	}
}

// WithStore selects the storage backend by name. "mem" (the default)
// keeps every structure resident; "disk" bounds resident memory by
// spilling cold cluster records and cold pair matching tables to a
// tier under the data directory and paging them back on demand. The
// empty string falls back to the ENTITYID_STORE environment variable,
// then to "mem". Durability is identical either way — the write-ahead
// log and snapshots — and the served state is bit-for-bit the same;
// the backend only decides what stays resident.
func WithStore(name string) HubOption {
	return func(o *hubOptions) { o.store = name }
}

// WithStoreBudgets bounds the disk backend's hot tiers:
// hotClusterEntries caps the total members across resident cluster
// records, hotPairs caps the resident pairwise federations. Zero keeps
// a value's default (the ENTITYID_STORE_HOT_CLUSTERS and
// ENTITYID_STORE_HOT_PAIRS environment variables, then built-in
// defaults). The memory backend ignores both.
func WithStoreBudgets(hotClusterEntries, hotPairs int) HubOption {
	return func(o *hubOptions) {
		o.hotClusters = hotClusterEntries
		o.hotPairs = hotPairs
	}
}

// OpenHub opens (or creates) a durable hub rooted at dir. Every
// committed mutation — source registration, pair link, tuple insert —
// is appended to a CRC-guarded write-ahead log before it is applied,
// and background snapshots bound the log; on open, the latest snapshot
// is loaded and the log tail replayed, reproducing the pre-crash
// clusters, matching tables and relations exactly. A torn or corrupt
// log tail (a crash mid-write) is detected and dropped: recovery stops
// at the last fully committed mutation. The hub must be Closed.
func OpenHub(dir string, opts ...HubOption) (*Hub, error) {
	o := hubOptions{snapshotEvery: 1024}
	for _, opt := range opts {
		opt(&o)
	}
	inner, info, err := hub.Open(dir, hub.Options{
		SnapshotEvery:     o.snapshotEvery,
		SyncEvery:         o.syncEvery,
		ProbeBackoff:      o.probeBackoff,
		ProbeBackoffMax:   o.probeBackoffMax,
		Store:             o.store,
		HotClusterEntries: o.hotClusters,
		HotPairs:          o.hotPairs,
	})
	if err != nil {
		return nil, err
	}
	return &Hub{inner: inner, recovery: info}, nil
}

// Recovery returns what OpenHub reconstructed (nil for a memory-only
// hub created with NewHub).
func (h *Hub) Recovery() *HubRecovery {
	return h.recovery
}

// AddSource registers an autonomous source under a unique name; the
// relation seeds the hub's canonical copy (cloned).
func (h *Hub) AddSource(name string, rel *Relation) error {
	return h.inner.AddSource(name, rel)
}

// Link registers the identification link between two sources. Already
// present tuples are identified immediately (batch, then verified and
// folded into the clusters); the hub is unchanged on any failure.
func (h *Hub) Link(p *PairSpec) error {
	if p.ilfdErr != nil {
		return p.ilfdErr
	}
	return h.inner.Link(p.inner)
}

// Insert streams one tuple into a source, identifying it against every
// linked source. The insert is committed everywhere or rejected
// everywhere (§3.2 uniqueness — pairwise and transitive — and
// consistency are insertion guards).
func (h *Hub) Insert(source string, t Tuple) (*HubReceipt, error) {
	return h.inner.Insert(source, t)
}

// IngestBatch runs a batch of inserts through the resident ingest
// pipeline, reporting per-item results in input order; commits happen
// strictly in input order. For unbounded or incremental input, prefer
// IngestStream.
func (h *Hub) IngestBatch(items []HubInsert) []HubInsertResult {
	return h.inner.IngestBatch(items)
}

// IngestStream feeds an insert stream through the hub's resident
// dataflow pipeline: items are read from in until it closes or ctx is
// canceled, committed strictly in input order with write-ahead
// durability per item, and each outcome is delivered on the returned
// channel (closed after the last). At most HubStreamOptions.Window
// items (default 64) are in flight between feeder and consumer, so a
// slow result consumer backpressures the stream at bounded memory.
// Cancellation leaves an acked-prefix-committed hub: every delivered
// result is committed, and the committed set is always a prefix of the
// submitted order.
func (h *Hub) IngestStream(ctx context.Context, in <-chan HubInsert, opts HubStreamOptions) <-chan HubStreamResult {
	return h.inner.IngestStream(ctx, in, opts)
}

// Lookup finds a source tuple by its primary-key values and returns
// its global cluster.
func (h *Hub) Lookup(source string, key ...Value) (EntityCluster, error) {
	return h.inner.Lookup(source, key...)
}

// Clusters enumerates every global entity cluster, deterministically.
// It materialises the whole enumeration; prefer ClustersIter or
// ClustersPage on large hubs.
func (h *Hub) Clusters() []EntityCluster {
	return h.inner.Clusters()
}

// ClustersIter streams every global entity cluster ordered by smallest
// member, holding no hub-global lock and materialising one cluster at a
// time. Under concurrent ingest the enumeration is weakly consistent:
// every emitted cluster is a committed state at its visit time and one
// pass's clusters are pairwise disjoint, but a tuple whose cluster
// merges mid-walk into a region already passed can be absent from that
// pass. A quiescent hub enumerates exactly its partition, every tuple
// included.
func (h *Hub) ClustersIter() iter.Seq[EntityCluster] {
	return h.inner.ClustersIter()
}

// ClustersFrom streams the clusters whose walk position follows the
// given source/index cursor ("" starts from the beginning). On a
// quiescent hub a cluster's ID is its walk position; to resume a walk
// racing concurrent ingest, prefer ClustersWalk or ClustersPage, whose
// returned cursors always track the visit position.
func (h *Hub) ClustersFrom(cursor string) (iter.Seq[EntityCluster], error) {
	return h.inner.ClustersFrom(cursor)
}

// ClustersPage returns up to limit clusters after the cursor plus the
// cursor of the next page ("" when the enumeration is exhausted) — the
// serving form of the streaming enumeration.
func (h *Hub) ClustersPage(cursor string, limit int) ([]EntityCluster, string, error) {
	return h.inner.ClustersPage(cursor, limit)
}

// ClustersWalk visits the clusters after the cursor, skipping the
// first skip of them without materialisation, handing each one to fn
// with the cursor that resumes the walk immediately after it (fn
// returns false to stop) — the pagination primitive: the resume cursor
// tracks the walk position, which stays monotone even when a
// concurrent merge moves a cluster's ID past the walk's cut.
func (h *Hub) ClustersWalk(cursor string, skip int, fn func(c EntityCluster, resume string) bool) error {
	return h.inner.ClustersWalk(cursor, skip, fn)
}

// Merged resolves a cluster into one record per integrated attribute
// under the given strategy (the §2 attribute-value-conflict resolution,
// lifted across N sources).
func (h *Hub) Merged(c EntityCluster, strategy MergeStrategy) (*MergedEntity, error) {
	return h.inner.Merged(c, resolve.Strategy(strategy))
}

// Stats summarises the hub.
func (h *Hub) Stats() HubStats {
	return h.inner.Stats()
}

// HubStoreInfo describes the active storage backend and its hot/cold
// tier occupancy.
type HubStoreInfo = hub.StoreInfo

// StoreInfo reports which storage backend serves the hub and how its
// tiers stand: resident vs spilled cluster records and pair matching
// tables, hit/miss and page-in counts. Lock-free.
func (h *Hub) StoreInfo() HubStoreInfo {
	return h.inner.StoreInfo()
}

// Health reports the hub's current health state: ready, degraded
// (read-only, recovery probes running) or poisoned (fail-closed until
// restart). A memory-only hub is always ready.
func (h *Hub) Health() HubHealth {
	return h.inner.Health()
}

// SourceNames lists the registered sources in registration order.
func (h *Hub) SourceNames() []string {
	return h.inner.SourceNames()
}

// SourceSchema returns a registered source's schema.
func (h *Hub) SourceSchema(source string) (*Schema, error) {
	return h.inner.SourceSchema(source)
}

// Checkpoint forces a synchronous snapshot — capture, atomic write,
// log truncation — so the next OpenHub replays nothing. It fails on a
// memory-only hub.
func (h *Hub) Checkpoint() error {
	return h.inner.SnapshotNow()
}

// HubSnapshotStats reports what the most recent snapshot wrote and
// when it committed.
type HubSnapshotStats = hub.SnapshotStats

// LastSnapshot reports the most recent completed snapshot: its WAL
// watermark, what it wrote, and when it committed (Taken is seeded
// from the on-disk manifest after OpenHub, so snapshot age survives
// restarts). The zero value means no snapshot exists — always the
// case for a memory-only hub.
func (h *Hub) LastSnapshot() HubSnapshotStats {
	return h.inner.LastSnapshot()
}

// Close quiesces background snapshotting and closes the write-ahead
// log. It is a no-op on a memory-only hub.
func (h *Hub) Close() error {
	return h.inner.Close()
}

// Package federate implements virtual database integration (§1, §2):
// the component relations stay live and autonomous, and entity
// identification is maintained incrementally as tuples arrive — "in the
// case of federated databases … instance integration may have to be
// performed whenever updating is done on the participating databases"
// (§2), and the paper's conclusion makes query-time identification the
// ongoing-work item this package closes.
//
// A Federation holds the current matching state and supports:
//
//   - InsertR / InsertS: O(1 + candidates) incremental identification of
//     the new tuple against the opposite extended relation, with the
//     §3.2 uniqueness and consistency constraints enforced as insertion
//     guards (a violating insert is rejected and rolled back, the way a
//     database rejects a key violation);
//   - PrepareR / PrepareS + Pending.Commit: the same identification
//     split into a side-effect-free phase and an infallible apply phase,
//     so multi-federation coordinators (the hub package) can prepare an
//     insert against several pairwise states and commit all of them or
//     none;
//   - AddILFD: monotone knowledge growth — the state is rebuilt and the
//     §3.3 monotonicity property is asserted: every previously matched
//     pair must survive;
//   - Integrated / Result: the current integrated view for query
//     processing.
//
// Incremental identification probes both sources of matching pairs the
// batch construction uses: the extended-key index and, per extra
// identity rule, the same hash blocks the engine's blocked join buckets
// by (rules without a usable equality predicate scan the opposite
// side, mirroring the engine's nested-loop fallback).
//
// Equivalence with batch identification (match.Build on the final
// relations) is the package's central invariant, pinned by tests.
package federate

import (
	"fmt"
	"sort"

	"entityid/internal/ilfd"
	"entityid/internal/integrate"
	"entityid/internal/match"
	"entityid/internal/relation"
	"entityid/internal/rules"
)

// Federation is a live, incrementally maintained identification state.
type Federation struct {
	cfg match.Config
	res *match.Result
	// rExt / sExt are the cached per-side rename+derive pipelines, so a
	// single insert pays only the per-tuple derivation, not pipeline
	// setup.
	rExt, sExt *match.SideExtender
	// extKeyIdx indexes each side's extended relation by its non-NULL
	// extended-key projection: projection -> tuple positions.
	rIdx, sIdx map[string][]int
	// rKeyPos / sKeyPos are the extended-key column offsets in each
	// side's extended schema, resolved once per rebuild so per-insert key
	// projection indexes raw tuples instead of calling Schema().Index per
	// attribute.
	rKeyPos, sKeyPos []int
	// idRules holds the incremental evaluation state of the extra
	// identity rules: compiled forms plus the blocked-join hash buckets
	// over both extended relations, maintained across inserts.
	idRules []idRuleState
	// matchedR / matchedS track current pairings for uniqueness guards.
	matchedR map[int]int
	matchedS map[int]int
	// gen counts state mutations (commits and rebuilds); a Pending
	// prepared at one generation refuses to commit at another.
	gen uint64
}

// idRuleState is one extra identity rule prepared for incremental
// probing: the same hash-block discipline as the engine's
// blockedIdentityPairs, maintained tuple by tuple.
type idRuleState struct {
	rule rules.IdentityRule
	// skip marks rules mentioning an equality attribute absent from
	// either extended schema: the cross equality can never hold.
	skip bool
	// fallback marks rules with no usable cross-equality attribute,
	// which must scan the opposite side (the engine's nested-loop path).
	fallback bool
	// rPos / sPos are the equality-attribute offsets in R′/S′.
	rPos, sPos []int
	// rBlocks / sBlocks bucket each side's tuples by their non-NULL
	// equality projection, exactly like the blocked hash join.
	rBlocks, sBlocks map[string][]int
	// fwd / rev are the rule compiled in both orientations
	// (e1 ← R′, e2 ← S′ and the reverse).
	fwd, rev rules.CompiledIdentityRule
}

// New builds the initial state from a configuration; the initial
// matching table must verify (fail-closed like System.Identify).
func New(cfg match.Config) (*Federation, error) {
	// Work on private copies: the federation owns its relations.
	cfg.R = cfg.R.Clone()
	cfg.S = cfg.S.Clone()
	f := &Federation{cfg: cfg}
	if err := f.rebuild(); err != nil {
		return nil, err
	}
	return f, nil
}

// rebuild runs batch identification and refreshes the indexes.
func (f *Federation) rebuild() error {
	res, err := match.Build(f.cfg)
	if err != nil {
		return err
	}
	if err := res.Verify(); err != nil {
		return fmt.Errorf("federate: %w", err)
	}
	f.res = res
	f.rExt = match.NewSideExtender(f.cfg, true)
	f.sExt = match.NewSideExtender(f.cfg, false)
	f.rKeyPos = keyOffsets(res.RPrime, res.ExtKey())
	f.sKeyPos = keyOffsets(res.SPrime, res.ExtKey())
	f.rIdx = indexByKey(res.RPrime, f.rKeyPos)
	f.sIdx = indexByKey(res.SPrime, f.sKeyPos)
	f.idRules = buildIDRules(f.cfg.Identity, res.RPrime, res.SPrime)
	f.matchedR = make(map[int]int, res.MT.Len())
	f.matchedS = make(map[int]int, res.MT.Len())
	for _, p := range res.MT.Pairs {
		f.matchedR[p.RIndex] = p.SIndex
		f.matchedS[p.SIndex] = p.RIndex
	}
	f.gen++
	return nil
}

// buildIDRules compiles the extra identity rules against the extended
// schemas and buckets both extended relations by each rule's equality
// projection.
func buildIDRules(identity []rules.IdentityRule, rp, sp *relation.Relation) []idRuleState {
	if len(identity) == 0 {
		return nil
	}
	rs, ss := rp.Schema(), sp.Schema()
	states := make([]idRuleState, len(identity))
	for n, rule := range identity {
		st := idRuleState{
			rule: rule,
			fwd:  rule.Compile(rs, ss),
			rev:  rule.Compile(ss, rs),
		}
		eq := rule.EqualityAttrs()
		for _, a := range eq {
			if !rs.Has(a) || !ss.Has(a) {
				st.skip = true
			}
		}
		switch {
		case st.skip:
		case len(eq) == 0:
			st.fallback = true
		default:
			st.rPos = make([]int, len(eq))
			st.sPos = make([]int, len(eq))
			for i, a := range eq {
				st.rPos[i] = rs.Index(a)
				st.sPos[i] = ss.Index(a)
			}
			st.rBlocks = make(map[string][]int)
			st.sBlocks = make(map[string][]int)
			for i, t := range rp.Tuples() {
				if k, ok := match.ProjectionKey(t, st.rPos); ok {
					st.rBlocks[k] = append(st.rBlocks[k], i)
				}
			}
			for j, t := range sp.Tuples() {
				if k, ok := match.ProjectionKey(t, st.sPos); ok {
					st.sBlocks[k] = append(st.sBlocks[k], j)
				}
			}
		}
		states[n] = st
	}
	return states
}

// keyOffsets resolves the extended-key attributes to column offsets in
// the extended relation's schema. Build guarantees they exist.
func keyOffsets(rel *relation.Relation, extKey []string) []int {
	pos := make([]int, len(extKey))
	for n, a := range extKey {
		pos[n] = rel.Schema().Index(a)
	}
	return pos
}

// indexByKey builds the probe index with match.ProjectionKey — the
// same encoding the batch join buckets by, so incremental probes and
// batch construction can never disagree on key equality.
func indexByKey(rel *relation.Relation, keyPos []int) map[string][]int {
	idx := make(map[string][]int, rel.Len())
	for i, t := range rel.Tuples() {
		if k, ok := match.ProjectionKey(t, keyPos); ok {
			idx[k] = append(idx[k], i)
		}
	}
	return idx
}

// Result returns the current match result (shared; do not mutate).
func (f *Federation) Result() *match.Result { return f.res }

// MT returns the current matching table.
func (f *Federation) MT() *match.Table { return f.res.MT }

// Integrated builds the current integrated table.
func (f *Federation) Integrated() (*integrate.Table, error) {
	return integrate.Build(f.res, integrate.Options{})
}

// InsertR adds a tuple to relation R, identifies it incrementally, and
// returns the pairs it produced (at most one, by uniqueness). The
// insert is rejected — with the federation state unchanged — if it
// would make the matching table unsound (uniqueness or consistency
// violation) or violate R's candidate keys.
func (f *Federation) InsertR(t relation.Tuple) ([]match.Pair, error) {
	p, err := f.prepare(t, true)
	if err != nil {
		return nil, err
	}
	return p.Commit()
}

// InsertS is InsertR for relation S.
func (f *Federation) InsertS(t relation.Tuple) ([]match.Pair, error) {
	p, err := f.prepare(t, false)
	if err != nil {
		return nil, err
	}
	return p.Commit()
}

// Pending is a prepared, not yet applied insert: the new tuple has been
// validated, extended and identified against the current state without
// mutating anything. Commit applies it. A Pending is invalidated by any
// intervening mutation of the federation; coordinators must serialise
// prepare→commit windows per federation (Commit re-checks and fails on
// a stale Pending rather than corrupting state).
type Pending struct {
	f    *Federation
	left bool
	src  relation.Tuple
	ext  relation.Tuple
	// pairs are the matching pairs the commit will add; the new tuple's
	// index is its side's pre-commit length. atGen is the federation
	// generation the prepare ran against.
	pairs []match.Pair
	atGen uint64
	done  bool
}

// PrepareR validates and identifies a tuple destined for relation R
// without mutating the federation. The returned Pending reports the
// pairs the insert will produce and commits the insert on demand.
func (f *Federation) PrepareR(t relation.Tuple) (*Pending, error) {
	return f.prepare(t, true)
}

// PrepareS is PrepareR for relation S.
func (f *Federation) PrepareS(t relation.Tuple) (*Pending, error) {
	return f.prepare(t, false)
}

// Pairs returns the matching pairs the commit will add (the new
// tuple's index is the side's pre-commit length).
func (p *Pending) Pairs() []match.Pair {
	return append([]match.Pair(nil), p.pairs...)
}

// Left reports which side the pending insert targets.
func (p *Pending) Left() bool { return p.left }

func (f *Federation) prepare(t relation.Tuple, left bool) (*Pending, error) {
	base := f.cfg.S
	if left {
		base = f.cfg.R
	}
	// Validate against the base schema and keys first, without mutating.
	if err := base.CanInsert(t); err != nil {
		return nil, fmt.Errorf("federate: %w", err)
	}
	// Extend the single new tuple: run derivation on a one-tuple
	// relation with the same schema.
	oneTuple := relation.New(base.Schema())
	if err := oneTuple.Insert(t.Clone()); err != nil {
		return nil, fmt.Errorf("federate: %w", err)
	}
	ext, err := f.extendOne(oneTuple, left)
	if err != nil {
		return nil, err
	}
	extTuple := ext.Tuple(0)

	// Probe the opposite side's extended-key index. The one-tuple
	// extended relation shares its side's schema layout (same rename +
	// extend pipeline), so the cached key offsets apply.
	keyPos := f.sKeyPos
	if left {
		keyPos = f.rKeyPos
	}
	var partners []int
	seen := map[int]bool{}
	if k, ok := match.ProjectionKey(extTuple, keyPos); ok {
		var hits []int
		if left {
			hits = f.sIdx[k]
		} else {
			hits = f.rIdx[k]
		}
		for _, j := range hits {
			if !seen[j] {
				seen[j] = true
				partners = append(partners, j)
			}
		}
	}
	// Probe the identity-rule hash blocks too: a tuple that matches
	// solely via an extra identity rule must be caught on insert, or the
	// batch ≡ incremental invariant breaks.
	for _, j := range f.identityPartners(extTuple, left) {
		if !seen[j] {
			seen[j] = true
			partners = append(partners, j)
		}
	}
	if len(partners) > 1 {
		return nil, fmt.Errorf("federate: insert would match %d tuples at once (unsound)", len(partners))
	}
	var newPairs []match.Pair
	for _, j := range partners {
		if left {
			if prev, taken := f.matchedS[j]; taken {
				return nil, fmt.Errorf("federate: uniqueness violation: S tuple %d already matched to R tuple %d", j, prev)
			}
			newPairs = append(newPairs, match.Pair{RIndex: f.res.RPrime.Len(), SIndex: j})
		} else {
			if prev, taken := f.matchedR[j]; taken {
				return nil, fmt.Errorf("federate: uniqueness violation: R tuple %d already matched to S tuple %d", j, prev)
			}
			newPairs = append(newPairs, match.Pair{RIndex: j, SIndex: f.res.SPrime.Len()})
		}
	}
	// Consistency guard: a new pair must not be declared distinct. The
	// result's compiled distinctness rules are reused — the candidate
	// tuple has R′/S′ layout, which is all compiled evaluation needs.
	for _, p := range newPairs {
		var rt, st relation.Tuple
		if left {
			rt, st = extTuple, f.res.SPrime.Tuple(p.SIndex)
		} else {
			rt, st = f.res.RPrime.Tuple(p.RIndex), extTuple
		}
		if name, fires := f.res.DistinctFires(rt, st); fires {
			return nil, fmt.Errorf("federate: consistency violation: new tuple matches a pair distinctness rule %q forbids", name)
		}
	}
	return &Pending{f: f, left: left, src: t, ext: extTuple, pairs: newPairs, atGen: f.gen}, nil
}

// identityPartners returns the opposite-side tuple positions some extra
// identity rule pairs the candidate extended tuple with: hash-block
// probing for rules with cross-equality attributes, a scan of the
// opposite side for fallback rules.
func (f *Federation) identityPartners(extTuple relation.Tuple, left bool) []int {
	var out []int
	for i := range f.idRules {
		st := &f.idRules[i]
		if st.skip {
			continue
		}
		holds := func(j int) bool {
			var rt, stup relation.Tuple
			if left {
				rt, stup = extTuple, f.res.SPrime.Tuple(j)
			} else {
				rt, stup = f.res.RPrime.Tuple(j), extTuple
			}
			return st.fwd.Holds(rt, stup) || st.rev.Holds(stup, rt)
		}
		if st.fallback {
			n := f.res.RPrime.Len()
			if left {
				n = f.res.SPrime.Len()
			}
			for j := 0; j < n; j++ {
				if holds(j) {
					out = append(out, j)
				}
			}
			continue
		}
		pos, blocks := st.rPos, st.sBlocks
		if !left {
			pos, blocks = st.sPos, st.rBlocks
		}
		k, ok := match.ProjectionKey(extTuple, pos)
		if !ok {
			continue
		}
		for _, j := range blocks[k] {
			if holds(j) {
				out = append(out, j)
			}
		}
	}
	return out
}

// Commit applies a prepared insert: base relation, extended relation,
// probe indexes, identity-rule blocks, matching pairs. It fails — with
// the state untouched — only on a stale Pending (any federation
// mutation since prepare: an insert on either side, or an AddILFD
// rebuild) or a base-relation race; under the documented
// serialise-per-federation discipline it cannot fail.
func (p *Pending) Commit() ([]match.Pair, error) {
	f := p.f
	if p.done {
		return nil, fmt.Errorf("federate: commit of an already committed insert")
	}
	side := f.res.SPrime
	base := f.cfg.S
	if p.left {
		side = f.res.RPrime
		base = f.cfg.R
	}
	if f.gen != p.atGen {
		return nil, fmt.Errorf("federate: stale prepared insert: federation mutated since prepare (generation %d, now %d)", p.atGen, f.gen)
	}
	if err := base.Insert(p.src); err != nil {
		return nil, fmt.Errorf("federate: %w", err)
	}
	if err := side.Insert(p.ext); err != nil {
		return nil, fmt.Errorf("federate: extended insert: %w", err)
	}
	p.done = true
	pos := side.Len() - 1
	if p.left {
		if k, ok := match.ProjectionKey(p.ext, f.rKeyPos); ok {
			f.rIdx[k] = append(f.rIdx[k], pos)
		}
	} else {
		if k, ok := match.ProjectionKey(p.ext, f.sKeyPos); ok {
			f.sIdx[k] = append(f.sIdx[k], pos)
		}
	}
	for i := range f.idRules {
		st := &f.idRules[i]
		if st.skip || st.fallback {
			continue
		}
		blockPos, blocks := st.sPos, st.sBlocks
		if p.left {
			blockPos, blocks = st.rPos, st.rBlocks
		}
		if k, ok := match.ProjectionKey(p.ext, blockPos); ok {
			blocks[k] = append(blocks[k], pos)
		}
	}
	for _, pr := range p.pairs {
		f.res.MT.Add(pr)
		f.matchedR[pr.RIndex] = pr.SIndex
		f.matchedS[pr.SIndex] = pr.RIndex
	}
	f.gen++
	return append([]match.Pair(nil), p.pairs...), nil
}

// extendOne runs the cached per-side rename + derivation pipeline on a
// single-tuple relation.
func (f *Federation) extendOne(one *relation.Relation, left bool) (*relation.Relation, error) {
	se := f.sExt
	if left {
		se = f.rExt
	}
	ext, _, err := se.Extend(one)
	if err != nil {
		return nil, fmt.Errorf("federate: extend: %w", err)
	}
	return ext, nil
}

// AddILFD grows the knowledge base and rebuilds the state, asserting
// §3.3 monotonicity: every previously matched pair must still be
// matched (by position). A non-monotone outcome — possible only when
// the new ILFD contradicts data or prior knowledge — is reported and
// the federation keeps its previous state.
func (f *Federation) AddILFD(fd ilfd.ILFD) error {
	prevPairs := append([]match.Pair(nil), f.res.MT.Pairs...)
	prev := f.cfg.ILFDs
	next := make(ilfd.Set, 0, len(prev)+1)
	next = append(next, prev...)
	next = append(next, fd)
	f.cfg.ILFDs = next
	if err := f.rebuild(); err != nil {
		f.cfg.ILFDs = prev
		if rerr := f.rebuild(); rerr != nil {
			return fmt.Errorf("federate: rollback failed: %v (original: %w)", rerr, err)
		}
		return err
	}
	for _, p := range prevPairs {
		if _, ok := f.matchedR[p.RIndex]; !ok || f.matchedR[p.RIndex] != p.SIndex {
			err := fmt.Errorf("federate: ILFD %v breaks monotonicity: pair (%d,%d) lost", fd, p.RIndex, p.SIndex)
			f.cfg.ILFDs = prev
			if rerr := f.rebuild(); rerr != nil {
				return fmt.Errorf("federate: rollback failed: %v (original: %w)", rerr, err)
			}
			return err
		}
	}
	return nil
}

// Pairs returns the current matching pairs.
func (f *Federation) Pairs() []match.Pair {
	return append([]match.Pair(nil), f.res.MT.Pairs...)
}

// State is a federation's exported mutable state — the matching table
// plus the side lengths it was computed over — in the canonical order
// (sorted pairs). Snapshots store it so recovery can verify that a
// rebuilt federation reproduces exactly the state that was saved.
type State struct {
	Pairs      []match.Pair
	RLen, SLen int
}

// sortedPairs returns a (RIndex, SIndex)-sorted copy.
func sortedPairs(ps []match.Pair) []match.Pair {
	out := append([]match.Pair(nil), ps...)
	SortPairs(out)
	return out
}

// PairsPrefix returns a copy of the first n matching pairs in commit
// order. The matching table is append-only under the hub's commit lock,
// so a (length, prefix) pair taken at a consistent cut reproduces the
// table exactly as it stood at that cut — the basis of per-section
// snapshot capture under briefly-held locks.
func (f *Federation) PairsPrefix(n int) []match.Pair {
	return append([]match.Pair(nil), f.res.MT.Pairs[:n]...)
}

// SortPairs sorts a pair slice into the canonical (RIndex, SIndex)
// order snapshots store.
func SortPairs(ps []match.Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].RIndex != ps[b].RIndex {
			return ps[a].RIndex < ps[b].RIndex
		}
		return ps[a].SIndex < ps[b].SIndex
	})
}

// Export captures the federation's mutable state for a snapshot.
func (f *Federation) Export() State {
	return State{
		Pairs: sortedPairs(f.res.MT.Pairs),
		RLen:  f.cfg.R.Len(),
		SLen:  f.cfg.S.Len(),
	}
}

// ExportOrdered captures the federation's mutable state with the
// matching table in COMMIT ORDER instead of the canonical sorted
// order. The hub's storage layer spills this form: the table is
// append-only under the commit lock, so the length-n prefix of a
// commit-order export reproduces any cut taken at length n — even a
// cut taken before the export. Restore accepts either form (it sorts
// before comparing).
func (f *Federation) ExportOrdered() State {
	return State{
		Pairs: append([]match.Pair(nil), f.res.MT.Pairs...),
		RLen:  f.cfg.R.Len(),
		SLen:  f.cfg.S.Len(),
	}
}

// Restore rebuilds a federation from a configuration (whose relations
// hold the snapshot-time tuples) and verifies it reproduces the
// exported state bit-for-bit: same side lengths, same matching pairs.
// Batch identification over the final relations is equivalent to the
// incremental inserts that produced the state (the package invariant),
// so any mismatch means the snapshot does not describe these relations
// — recovery fails closed instead of serving a silently different
// matching table.
func Restore(cfg match.Config, st State) (*Federation, error) {
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if got, want := f.cfg.R.Len(), st.RLen; got != want {
		return nil, fmt.Errorf("federate: restore: R has %d tuples, state expects %d", got, want)
	}
	if got, want := f.cfg.S.Len(), st.SLen; got != want {
		return nil, fmt.Errorf("federate: restore: S has %d tuples, state expects %d", got, want)
	}
	got := sortedPairs(f.res.MT.Pairs)
	want := sortedPairs(st.Pairs)
	if len(got) != len(want) {
		return nil, fmt.Errorf("federate: restore: rebuilt matching table has %d pairs, state expects %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return nil, fmt.Errorf("federate: restore: matching table diverges at pair %d: rebuilt (%d,%d), state (%d,%d)",
				i, got[i].RIndex, got[i].SIndex, want[i].RIndex, want[i].SIndex)
		}
	}
	// Adopt the state's pair order, not the batch rebuild's: callers
	// that spill and re-load live federations (the hub's storage tier)
	// record the table in commit order and read snapshot cuts as
	// prefixes of it, so the restored table must continue the recorded
	// order. The two orders hold the same set (just verified), so the
	// table's indexes are unaffected.
	f.res.MT.Pairs = append([]match.Pair(nil), st.Pairs...)
	return f, nil
}

// Package federate implements virtual database integration (§1, §2):
// the component relations stay live and autonomous, and entity
// identification is maintained incrementally as tuples arrive — "in the
// case of federated databases … instance integration may have to be
// performed whenever updating is done on the participating databases"
// (§2), and the paper's conclusion makes query-time identification the
// ongoing-work item this package closes.
//
// A Federation holds the current matching state and supports:
//
//   - InsertR / InsertS: O(1 + candidates) incremental identification of
//     the new tuple against the opposite extended relation, with the
//     §3.2 uniqueness and consistency constraints enforced as insertion
//     guards (a violating insert is rejected and rolled back, the way a
//     database rejects a key violation);
//   - AddILFD: monotone knowledge growth — the state is rebuilt and the
//     §3.3 monotonicity property is asserted: every previously matched
//     pair must survive;
//   - Integrated / Result: the current integrated view for query
//     processing.
//
// Equivalence with batch identification (match.Build on the final
// relations) is the package's central invariant, pinned by tests.
package federate

import (
	"fmt"

	"entityid/internal/ilfd"
	"entityid/internal/integrate"
	"entityid/internal/match"
	"entityid/internal/relation"
)

// Federation is a live, incrementally maintained identification state.
type Federation struct {
	cfg match.Config
	res *match.Result
	// rExt / sExt are the cached per-side rename+derive pipelines, so a
	// single insert pays only the per-tuple derivation, not pipeline
	// setup.
	rExt, sExt *match.SideExtender
	// extKeyIdx indexes each side's extended relation by its non-NULL
	// extended-key projection: projection -> tuple positions.
	rIdx, sIdx map[string][]int
	// rKeyPos / sKeyPos are the extended-key column offsets in each
	// side's extended schema, resolved once per rebuild so per-insert key
	// projection indexes raw tuples instead of calling Schema().Index per
	// attribute.
	rKeyPos, sKeyPos []int
	// matchedR / matchedS track current pairings for uniqueness guards.
	matchedR map[int]int
	matchedS map[int]int
}

// New builds the initial state from a configuration; the initial
// matching table must verify (fail-closed like System.Identify).
func New(cfg match.Config) (*Federation, error) {
	// Work on private copies: the federation owns its relations.
	cfg.R = cfg.R.Clone()
	cfg.S = cfg.S.Clone()
	f := &Federation{cfg: cfg}
	if err := f.rebuild(); err != nil {
		return nil, err
	}
	return f, nil
}

// rebuild runs batch identification and refreshes the indexes.
func (f *Federation) rebuild() error {
	res, err := match.Build(f.cfg)
	if err != nil {
		return err
	}
	if err := res.Verify(); err != nil {
		return fmt.Errorf("federate: %w", err)
	}
	f.res = res
	f.rExt = match.NewSideExtender(f.cfg, true)
	f.sExt = match.NewSideExtender(f.cfg, false)
	f.rKeyPos = keyOffsets(res.RPrime, res.ExtKey())
	f.sKeyPos = keyOffsets(res.SPrime, res.ExtKey())
	f.rIdx = indexByKey(res.RPrime, f.rKeyPos)
	f.sIdx = indexByKey(res.SPrime, f.sKeyPos)
	f.matchedR = make(map[int]int, res.MT.Len())
	f.matchedS = make(map[int]int, res.MT.Len())
	for _, p := range res.MT.Pairs {
		f.matchedR[p.RIndex] = p.SIndex
		f.matchedS[p.SIndex] = p.RIndex
	}
	return nil
}

// keyOffsets resolves the extended-key attributes to column offsets in
// the extended relation's schema. Build guarantees they exist.
func keyOffsets(rel *relation.Relation, extKey []string) []int {
	pos := make([]int, len(extKey))
	for n, a := range extKey {
		pos[n] = rel.Schema().Index(a)
	}
	return pos
}

// indexByKey builds the probe index with match.ProjectionKey — the
// same encoding the batch join buckets by, so incremental probes and
// batch construction can never disagree on key equality.
func indexByKey(rel *relation.Relation, keyPos []int) map[string][]int {
	idx := make(map[string][]int, rel.Len())
	for i, t := range rel.Tuples() {
		if k, ok := match.ProjectionKey(t, keyPos); ok {
			idx[k] = append(idx[k], i)
		}
	}
	return idx
}

// Result returns the current match result (shared; do not mutate).
func (f *Federation) Result() *match.Result { return f.res }

// MT returns the current matching table.
func (f *Federation) MT() *match.Table { return f.res.MT }

// Integrated builds the current integrated table.
func (f *Federation) Integrated() (*integrate.Table, error) {
	return integrate.Build(f.res, integrate.Options{})
}

// InsertR adds a tuple to relation R, identifies it incrementally, and
// returns the pairs it produced (at most one, by uniqueness). The
// insert is rejected — with the federation state unchanged — if it
// would make the matching table unsound (uniqueness or consistency
// violation) or violate R's candidate keys.
func (f *Federation) InsertR(t relation.Tuple) ([]match.Pair, error) {
	return f.insert(t, true)
}

// InsertS is InsertR for relation S.
func (f *Federation) InsertS(t relation.Tuple) ([]match.Pair, error) {
	return f.insert(t, false)
}

func (f *Federation) insert(t relation.Tuple, left bool) ([]match.Pair, error) {
	base := f.cfg.S
	if left {
		base = f.cfg.R
	}
	// Validate against the base schema and keys first, without mutating.
	if err := base.CanInsert(t); err != nil {
		return nil, fmt.Errorf("federate: %w", err)
	}
	// Extend the single new tuple: run derivation on a one-tuple
	// relation with the same schema.
	oneTuple := relation.New(base.Schema())
	if err := oneTuple.Insert(t.Clone()); err != nil {
		return nil, fmt.Errorf("federate: %w", err)
	}
	ext, err := f.extendOne(oneTuple, left)
	if err != nil {
		return nil, err
	}
	extTuple := ext.Tuple(0)

	// Probe the opposite side's extended-key index. The one-tuple
	// extended relation shares its side's schema layout (same rename +
	// extend pipeline), so the cached key offsets apply.
	keyPos := f.sKeyPos
	if left {
		keyPos = f.rKeyPos
	}
	var newPairs []match.Pair
	if k, ok := match.ProjectionKey(extTuple, keyPos); ok {
		var partners []int
		if left {
			partners = f.sIdx[k]
		} else {
			partners = f.rIdx[k]
		}
		if len(partners) > 1 {
			return nil, fmt.Errorf("federate: insert would match %d tuples at once (unsound)", len(partners))
		}
		for _, j := range partners {
			if left {
				if prev, taken := f.matchedS[j]; taken {
					return nil, fmt.Errorf("federate: uniqueness violation: S tuple %d already matched to R tuple %d", j, prev)
				}
				newPairs = append(newPairs, match.Pair{RIndex: f.res.RPrime.Len(), SIndex: j})
			} else {
				if prev, taken := f.matchedR[j]; taken {
					return nil, fmt.Errorf("federate: uniqueness violation: R tuple %d already matched to S tuple %d", j, prev)
				}
				newPairs = append(newPairs, match.Pair{RIndex: j, SIndex: f.res.SPrime.Len()})
			}
		}
	}
	// Consistency guard: a new pair must not be declared distinct. The
	// result's compiled distinctness rules are reused — the candidate
	// tuple has R′/S′ layout, which is all compiled evaluation needs.
	for _, p := range newPairs {
		var rt, st relation.Tuple
		if left {
			rt, st = extTuple, f.res.SPrime.Tuple(p.SIndex)
		} else {
			rt, st = f.res.RPrime.Tuple(p.RIndex), extTuple
		}
		if name, fires := f.res.DistinctFires(rt, st); fires {
			return nil, fmt.Errorf("federate: consistency violation: new tuple matches a pair distinctness rule %q forbids", name)
		}
	}

	// Commit: mutate base relation, extended relation, indexes, pairs.
	if left {
		if err := f.cfg.R.Insert(t); err != nil {
			return nil, fmt.Errorf("federate: %w", err)
		}
		if err := f.res.RPrime.Insert(extTuple); err != nil {
			return nil, fmt.Errorf("federate: extended insert: %w", err)
		}
		i := f.res.RPrime.Len() - 1
		if k, ok := match.ProjectionKey(extTuple, f.rKeyPos); ok {
			f.rIdx[k] = append(f.rIdx[k], i)
		}
		for _, p := range newPairs {
			f.res.MT.Add(p)
			f.matchedR[p.RIndex] = p.SIndex
			f.matchedS[p.SIndex] = p.RIndex
		}
	} else {
		if err := f.cfg.S.Insert(t); err != nil {
			return nil, fmt.Errorf("federate: %w", err)
		}
		if err := f.res.SPrime.Insert(extTuple); err != nil {
			return nil, fmt.Errorf("federate: extended insert: %w", err)
		}
		j := f.res.SPrime.Len() - 1
		if k, ok := match.ProjectionKey(extTuple, f.sKeyPos); ok {
			f.sIdx[k] = append(f.sIdx[k], j)
		}
		for _, p := range newPairs {
			f.res.MT.Add(p)
			f.matchedR[p.RIndex] = p.SIndex
			f.matchedS[p.SIndex] = p.RIndex
		}
	}
	return newPairs, nil
}

// extendOne runs the cached per-side rename + derivation pipeline on a
// single-tuple relation.
func (f *Federation) extendOne(one *relation.Relation, left bool) (*relation.Relation, error) {
	se := f.sExt
	if left {
		se = f.rExt
	}
	ext, _, err := se.Extend(one)
	if err != nil {
		return nil, fmt.Errorf("federate: extend: %w", err)
	}
	return ext, nil
}

// AddILFD grows the knowledge base and rebuilds the state, asserting
// §3.3 monotonicity: every previously matched pair must still be
// matched (by position). A non-monotone outcome — possible only when
// the new ILFD contradicts data or prior knowledge — is reported and
// the federation keeps its previous state.
func (f *Federation) AddILFD(fd ilfd.ILFD) error {
	prevPairs := append([]match.Pair(nil), f.res.MT.Pairs...)
	prev := f.cfg.ILFDs
	next := make(ilfd.Set, 0, len(prev)+1)
	next = append(next, prev...)
	next = append(next, fd)
	f.cfg.ILFDs = next
	if err := f.rebuild(); err != nil {
		f.cfg.ILFDs = prev
		if rerr := f.rebuild(); rerr != nil {
			return fmt.Errorf("federate: rollback failed: %v (original: %w)", rerr, err)
		}
		return err
	}
	for _, p := range prevPairs {
		if _, ok := f.matchedR[p.RIndex]; !ok || f.matchedR[p.RIndex] != p.SIndex {
			err := fmt.Errorf("federate: ILFD %v breaks monotonicity: pair (%d,%d) lost", fd, p.RIndex, p.SIndex)
			f.cfg.ILFDs = prev
			if rerr := f.rebuild(); rerr != nil {
				return fmt.Errorf("federate: rollback failed: %v (original: %w)", rerr, err)
			}
			return err
		}
	}
	return nil
}

// Pairs returns the current matching pairs.
func (f *Federation) Pairs() []match.Pair {
	return append([]match.Pair(nil), f.res.MT.Pairs...)
}

package federate

import (
	"sort"
	"strings"
	"testing"

	"entityid/internal/datagen"
	"entityid/internal/ilfd"
	"entityid/internal/match"
	"entityid/internal/paperdata"
	"entityid/internal/relation"
	"entityid/internal/value"
)

func s(v string) value.Value { return value.String(v) }

func example3Config() match.Config {
	return match.Config{
		R: paperdata.Table5R(),
		S: paperdata.Table5S(),
		Attrs: []match.AttrMap{
			{Name: "name", R: "name", S: "name"},
			{Name: "cuisine", R: "cuisine", S: ""},
			{Name: "speciality", R: "", S: "speciality"},
			{Name: "street", R: "street", S: ""},
			{Name: "county", R: "", S: "county"},
		},
		ExtKey: paperdata.Example3ExtendedKey(),
		ILFDs:  paperdata.Example3ILFDs(),
	}
}

func TestNewBuildsAndVerifies(t *testing.T) {
	f, err := New(example3Config())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if f.MT().Len() != 3 {
		t.Errorf("initial pairs = %d", f.MT().Len())
	}
	tab, err := f.Integrated()
	if err != nil || tab.Len() != 6 {
		t.Errorf("integrated = %d rows, %v", tab.Len(), err)
	}
}

func TestNewFailsClosedOnUnsoundKey(t *testing.T) {
	cfg := example3Config()
	cfg.ExtKey = []string{"name"}
	if _, err := New(cfg); err == nil {
		t.Fatal("unsound initial key accepted")
	}
}

func TestInsertRMatchesIncrementally(t *testing.T) {
	f, err := New(example3Config())
	if err != nil {
		t.Fatal(err)
	}
	// A new R restaurant with no derivable speciality matches nothing.
	pairs, err := f.InsertR(relation.Tuple{s("NewPlace"), s("Thai"), s("Main St")})
	if err != nil {
		t.Fatalf("InsertR: %v", err)
	}
	if len(pairs) != 0 {
		t.Fatalf("unexpected pairs %v", pairs)
	}
	// Teach the federation about VillageWok — R's so-far-unmatched row —
	// then stream in the S tuple that completes the pair.
	if err := f.AddILFD(mustILFD(t, "speciality=Cantonese -> cuisine=Chinese")); err != nil {
		t.Fatalf("AddILFD: %v", err)
	}
	if err := f.AddILFD(mustILFD(t, "name=VillageWok & street=Wash.Ave. -> speciality=Cantonese")); err != nil {
		t.Fatalf("AddILFD: %v", err)
	}
	pairs, err = f.InsertS(relation.Tuple{s("VillageWok"), s("Cantonese"), s("Hennepin")})
	if err != nil {
		t.Fatalf("InsertS: %v", err)
	}
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v, want 1", pairs)
	}
	rName := f.Result().RPrime.MustValue(pairs[0].RIndex, "name")
	if rName.Str() != "VillageWok" {
		t.Errorf("matched R row = %v", rName)
	}
	if f.MT().Len() != 4 {
		t.Errorf("total pairs = %d, want 4", f.MT().Len())
	}
	if err := f.Result().Verify(); err != nil {
		t.Fatalf("state unsound: %v", err)
	}
}

func TestInsertRejectsKeyViolation(t *testing.T) {
	f, err := New(example3Config())
	if err != nil {
		t.Fatal(err)
	}
	before := f.MT().Len()
	// Duplicate R key (name, cuisine).
	_, err = f.InsertR(relation.Tuple{s("TwinCities"), s("Chinese"), s("Anywhere")})
	if err == nil || !strings.Contains(err.Error(), "key") {
		t.Fatalf("key violation not rejected: %v", err)
	}
	if f.MT().Len() != before {
		t.Error("state mutated by rejected insert")
	}
}

func TestInsertRejectsUniquenessViolation(t *testing.T) {
	f, err := New(example3Config())
	if err != nil {
		t.Fatal(err)
	}
	// S's Hunan TwinCities row is already matched to R's Chinese
	// TwinCities. A second R tuple that derives the same extended key
	// must be rejected — but R's candidate key (name, cuisine) already
	// blocks exact duplicates, so construct the collision through a new
	// cuisine value... the extended key includes cuisine, so a true
	// collision needs equal (name, cuisine, speciality): impossible
	// through R's key. Instead exercise the S side: a new S tuple that
	// derives the extended key of the already-matched Hunan pair.
	_, err = f.InsertS(relation.Tuple{s("TwinCities"), s("Hunan2"), s("Dakota")})
	if err != nil {
		t.Fatalf("benign insert rejected: %v", err)
	}
	// Add knowledge mapping Hunan2 to the same (cuisine, speciality)
	// surface as Hunan... speciality is part of S's identity, so the
	// derived attribute is cuisine only. The Hunan2 tuple has extended
	// key (TwinCities, Chinese?, Hunan2) — distinct. So uniqueness can
	// only trip via a tuple matching an already-matched partner's key
	// exactly; simulate by inserting S tuple with speciality Hunan in a
	// different county — S's key (name, speciality) forbids it. The
	// remaining avenue: an R insert whose derived key equals a matched S
	// row's key. R key (name, cuisine) permits (TwinCities, Szechwan) +
	// ILFD street→speciality=Hunan ⇒ key (TwinCities, Szechwan, Hunan):
	// no collision either (cuisine differs). Conclusion: with these
	// schemas the extended key embeds both source keys, so incremental
	// uniqueness violations cannot arise — assert that invariant by
	// checking every insert path kept the table verified.
	if err := f.Result().Verify(); err != nil {
		t.Fatalf("state unsound after inserts: %v", err)
	}
}

func TestInsertConsistencyGuard(t *testing.T) {
	// Make a small world where a distinctness rule forbids the pair the
	// extended key would produce.
	r := relation.New(paperdata.Figure2RWithDomain().Schema())
	sRel := relation.New(paperdata.Figure2SWithDomain().Schema())
	cfg := match.Config{
		R: r, S: sRel,
		Attrs: []match.AttrMap{
			{Name: "name", R: "name", S: "name"},
			{Name: "cuisine", R: "cuisine", S: "cuisine"},
			{Name: "domain", R: "domain", S: "domain"},
		},
		ExtKey: []string{"name", "cuisine"},
	}
	cfg.Distinct = paperdata.Figure2Distinctness()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.InsertS(relation.Tuple{s("VillageWok"), s("Chinese"), s("DB2")}); err != nil {
		t.Fatalf("InsertS: %v", err)
	}
	_, err = f.InsertR(relation.Tuple{s("VillageWok"), s("Chinese"), s("DB1")})
	if err == nil || !strings.Contains(err.Error(), "consistency violation") {
		t.Fatalf("consistency guard did not fire: %v", err)
	}
}

// TestIncrementalEqualsBatch is the central invariant: a federation
// that received its tuples one by one ends in the same matching state
// as batch identification over the final relations.
func TestIncrementalEqualsBatch(t *testing.T) {
	w := datagen.MustGenerate(datagen.Config{
		Entities: 120, OverlapFrac: 0.5, HomonymRate: 0.15, ILFDCoverage: 0.8, Seed: 55,
	})
	// Start with empty relations, same knowledge.
	cfg := w.MatchConfig()
	empty := cfg
	empty.R = relation.New(w.R.Schema())
	empty.S = relation.New(w.S.Schema())
	f, err := New(empty)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range w.R.Tuples() {
		if _, err := f.InsertR(tup.Clone()); err != nil {
			t.Fatalf("InsertR: %v", err)
		}
	}
	for _, tup := range w.S.Tuples() {
		if _, err := f.InsertS(tup.Clone()); err != nil {
			t.Fatalf("InsertS: %v", err)
		}
	}
	batch, err := match.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Pairs()
	want := batch.MT.Pairs
	sortPairs(got)
	sortPairs(want)
	if len(got) != len(want) {
		t.Fatalf("incremental pairs = %d, batch = %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: incremental %v vs batch %v", i, got[i], want[i])
		}
	}
	if err := f.Result().Verify(); err != nil {
		t.Fatalf("incremental state unsound: %v", err)
	}
}

func sortPairs(ps []match.Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].RIndex != ps[b].RIndex {
			return ps[a].RIndex < ps[b].RIndex
		}
		return ps[a].SIndex < ps[b].SIndex
	})
}

func TestAddILFDMonotone(t *testing.T) {
	cfg := example3Config()
	cfg.ILFDs = cfg.ILFDs[:4] // only the uniform family
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := f.MT().Len()
	// I5 unlocks the TwinCities/Hunan pair.
	if err := f.AddILFD(paperdata.Example3ILFDs()[4]); err != nil {
		t.Fatalf("AddILFD: %v", err)
	}
	if f.MT().Len() < before {
		t.Error("AddILFD lost pairs")
	}
	if f.MT().Len() != before+1 {
		t.Errorf("pairs = %d, want %d", f.MT().Len(), before+1)
	}
}

func TestAddILFDRollbackOnBreakage(t *testing.T) {
	f, err := New(example3Config())
	if err != nil {
		t.Fatal(err)
	}
	before := f.Pairs()
	// A contradictory ILFD flips Hunan's cuisine, killing the
	// TwinCities pair — non-monotone, must be rejected and rolled back.
	// (Under FirstMatch the original I1 fires first, so inject the
	// contradiction in a way that wins: an instance rule with a
	// different consequent for the same S tuple is order-dependent;
	// instead use a rule that derives a *new* speciality for R's
	// VillageWok equal to nothing in S — harmless — so to build a true
	// breaker, flip the derivation for S's Gyros row by preempting I3.)
	breaker := mustILFD(t, "speciality=Gyros -> cuisine=Turkish")
	err = f.AddILFD(breaker)
	if err == nil {
		// Order-dependent: appended rules never preempt earlier ones
		// under FirstMatch, so monotonicity held — acceptable; assert
		// state intact instead.
		if len(f.Pairs()) < len(before) {
			t.Fatal("pairs lost without error")
		}
		return
	}
	// The breaker can fail in two legitimate ways: its Prop-1
	// distinctness rule contradicts the existing Gyros pair
	// (consistency), or — under other derivation orders — the pair is
	// simply lost (monotonicity). Both must roll back.
	if !strings.Contains(err.Error(), "monotonicity") &&
		!strings.Contains(err.Error(), "consistency violation") {
		t.Fatalf("unexpected error: %v", err)
	}
	after := f.Pairs()
	if len(after) != len(before) {
		t.Fatalf("rollback failed: %d vs %d pairs", len(after), len(before))
	}
}

func mustILFD(t *testing.T, line string) ilfd.ILFD {
	t.Helper()
	parsed, err := ilfd.ParseLine(line)
	if err != nil {
		t.Fatalf("parse %q: %v", line, err)
	}
	return parsed
}

func TestPrepareCommitTwoPhase(t *testing.T) {
	f, err := New(example3Config())
	if err != nil {
		t.Fatal(err)
	}
	before := f.MT().Len()
	p, err := f.PrepareR(relation.Tuple{s("NewPlace"), s("Elm St."), s("Greek")})
	if err != nil {
		t.Fatal(err)
	}
	// Prepare mutated nothing.
	if f.MT().Len() != before || f.Result().RPrime.Len() != 5 {
		t.Fatalf("prepare mutated state: %d pairs, %d R' tuples", f.MT().Len(), f.Result().RPrime.Len())
	}
	pairs, err := p.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 || f.Result().RPrime.Len() != 6 {
		t.Fatalf("commit: %d pairs, %d R' tuples", len(pairs), f.Result().RPrime.Len())
	}
	if _, err := p.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
}

func TestCommitFailsOnAnyInterveningMutation(t *testing.T) {
	// Any federation mutation between prepare and commit — even on the
	// OPPOSITE side, which leaves the pending's own side's length
	// untouched — must invalidate the Pending: the prepared pairs were
	// computed against state that no longer exists.
	f, err := New(example3Config())
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.PrepareR(relation.Tuple{s("NewPlace"), s("Elm St."), s("Greek")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.InsertS(relation.Tuple{s("OtherPlace"), s("Hennepin"), s("Gyros")}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Commit(); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale commit accepted after opposite-side insert: %v", err)
	}
	// An AddILFD rebuild (lengths unchanged) invalidates too.
	p2, err := f.PrepareR(relation.Tuple{s("NewPlace"), s("Elm St."), s("Greek")})
	if err != nil {
		t.Fatal(err)
	}
	fd, err := ilfd.ParseLine("speciality=Gyros -> cuisine=Greek")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddILFD(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Commit(); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale commit accepted after AddILFD rebuild: %v", err)
	}
}

func TestExportRestoreRoundTrip(t *testing.T) {
	f, err := New(example3Config())
	if err != nil {
		t.Fatal(err)
	}
	// Grow the state incrementally so Export captures more than the
	// initial batch build.
	if _, err := f.InsertS(relation.Tuple{s("dragon inn"), s("hunan"), s("hennepin")}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.InsertR(relation.Tuple{s("dragon inn"), s("chinese"), s("lake st")}); err != nil {
		t.Fatal(err)
	}
	st := f.Export()
	if st.RLen != f.cfg.R.Len() || st.SLen != f.cfg.S.Len() {
		t.Fatalf("export lens (%d,%d)", st.RLen, st.SLen)
	}
	for i := 1; i < len(st.Pairs); i++ {
		if st.Pairs[i-1].RIndex > st.Pairs[i].RIndex {
			t.Fatal("export pairs not sorted")
		}
	}

	// Restore over the same relations reproduces the matching table.
	cfg := example3Config()
	cfg.R, cfg.S = f.cfg.R.Clone(), f.cfg.S.Clone()
	g, err := Restore(cfg, st)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	got := g.Export()
	if len(got.Pairs) != len(st.Pairs) {
		t.Fatalf("restored %d pairs, want %d", len(got.Pairs), len(st.Pairs))
	}
	for i := range got.Pairs {
		if got.Pairs[i] != st.Pairs[i] {
			t.Fatalf("restored pair %d = %v, want %v", i, got.Pairs[i], st.Pairs[i])
		}
	}

	// A state that does not describe these relations fails closed.
	bad := st
	bad.Pairs = st.Pairs[:len(st.Pairs)-1]
	if _, err := Restore(cfg, bad); err == nil {
		t.Fatal("missing-pair state restored")
	}
	bad = st
	bad.RLen++
	if _, err := Restore(cfg, bad); err == nil {
		t.Fatal("wrong-length state restored")
	}
	bad = st
	bad.Pairs = append([]match.Pair(nil), st.Pairs...)
	bad.Pairs[0].SIndex = (bad.Pairs[0].SIndex + 1) % cfg.S.Len()
	if _, err := Restore(cfg, bad); err == nil {
		t.Fatal("doctored-pair state restored")
	}
}

// Package baselines implements the five pre-existing entity-
// identification approaches the paper surveys in §2.2, behind a common
// Matcher interface, so the experiments can measure the failure modes
// the paper argues qualitatively:
//
//  1. Key equivalence (Multibase): match on a common candidate key.
//  2. User-specified equivalence (Pegasus): an explicit mapping table.
//  3. Probabilistic key equivalence (Pu): subfield matching over key
//     values; a match needs only most subfields to agree.
//  4. Probabilistic attribute equivalence (Chatterjee & Segev): a
//     comparison value over all common attributes.
//  5. Heuristic rules (Wang & Madnick): rule-derived attributes feed an
//     equality match; the rules are heuristic, so the result may be
//     wrong.
//
// All matchers return match.Table pairs over tuple positions, like the
// paper's technique, so metrics can score them uniformly.
package baselines

import (
	"fmt"
	"sort"
	"strings"

	"entityid/internal/derive"
	"entityid/internal/ilfd"
	"entityid/internal/match"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// Matcher is a baseline entity-identification technique.
type Matcher interface {
	// Name identifies the technique in reports.
	Name() string
	// Match pairs tuples of r with tuples of s.
	Match(r, s *relation.Relation) (*match.Table, error)
}

// AttrPair names one attribute in each relation that the technique
// treats as semantically equivalent.
type AttrPair struct {
	R, S string
}

func validatePairs(r, s *relation.Relation, pairs []AttrPair) error {
	if len(pairs) == 0 {
		return fmt.Errorf("baselines: no attribute pairs")
	}
	for _, p := range pairs {
		if !r.Schema().Has(p.R) {
			return fmt.Errorf("baselines: %s has no attribute %q", r.Schema().Name(), p.R)
		}
		if !s.Schema().Has(p.S) {
			return fmt.Errorf("baselines: %s has no attribute %q", s.Schema().Name(), p.S)
		}
	}
	return nil
}

func mkTable(r, s *relation.Relation, pairs []match.Pair) *match.Table {
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].RIndex != pairs[b].RIndex {
			return pairs[a].RIndex < pairs[b].RIndex
		}
		return pairs[a].SIndex < pairs[b].SIndex
	})
	return &match.Table{
		RKey:  r.Schema().PrimaryKey(),
		SKey:  s.Schema().PrimaryKey(),
		Pairs: pairs,
	}
}

// KeyEquivalence matches tuples that agree (non-NULL) on every listed
// key attribute pair — §2.2's approach 1. It reports an error if the
// listed attributes are not a candidate key of both relations, the
// applicability condition the paper highlights ("limited because the
// relations may have no common key").
type KeyEquivalence struct {
	// Key lists the common candidate key, one attribute pair per key
	// attribute.
	Key []AttrPair
	// AllowNonKey skips the candidate-key applicability check, letting
	// experiments run the technique outside its sound envelope (e.g.
	// matching on the shared non-key attribute "name" in Example 1).
	AllowNonKey bool
}

// Name implements Matcher.
func (k KeyEquivalence) Name() string { return "key-equivalence" }

// Match implements Matcher.
func (k KeyEquivalence) Match(r, s *relation.Relation) (*match.Table, error) {
	if err := validatePairs(r, s, k.Key); err != nil {
		return nil, err
	}
	if !k.AllowNonKey {
		var rAttrs, sAttrs []string
		for _, p := range k.Key {
			rAttrs = append(rAttrs, p.R)
			sAttrs = append(sAttrs, p.S)
		}
		if !r.Schema().IsKey(rAttrs) {
			return nil, fmt.Errorf("baselines: key equivalence inapplicable: %v is not a candidate key of %s",
				rAttrs, r.Schema().Name())
		}
		if !s.Schema().IsKey(sAttrs) {
			return nil, fmt.Errorf("baselines: key equivalence inapplicable: %v is not a candidate key of %s",
				sAttrs, s.Schema().Name())
		}
	}
	index := map[string][]int{}
	for j, t := range s.Tuples() {
		if key, ok := projKey(s, t, k.Key, false); ok {
			index[key] = append(index[key], j)
		}
	}
	var pairs []match.Pair
	for i, t := range r.Tuples() {
		key, ok := projKey(r, t, k.Key, true)
		if !ok {
			continue
		}
		for _, j := range index[key] {
			pairs = append(pairs, match.Pair{RIndex: i, SIndex: j})
		}
	}
	return mkTable(r, s, pairs), nil
}

func projKey(rel *relation.Relation, t relation.Tuple, pairs []AttrPair, left bool) (string, bool) {
	var b strings.Builder
	for n, p := range pairs {
		a := p.S
		if left {
			a = p.R
		}
		v := t[rel.Schema().Index(a)]
		if v.IsNull() {
			return "", false
		}
		if n > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.Key())
	}
	return b.String(), true
}

// UserSpecified implements §2.2's approach 2: the user supplies the
// pairing explicitly as (R primary-key values, S primary-key values)
// rows, the Pegasus-style mapping table. Entries that do not resolve to
// tuples are reported as errors (a stale mapping is user error, not a
// non-match).
type UserSpecified struct {
	// Mapping holds one entry per asserted pair: key values for R's
	// primary key followed by key values for S's primary key.
	Mapping [][]value.Value
}

// Name implements Matcher.
func (u UserSpecified) Name() string { return "user-specified" }

// Match implements Matcher.
func (u UserSpecified) Match(r, s *relation.Relation) (*match.Table, error) {
	rk := len(r.Schema().PrimaryKey())
	sk := len(s.Schema().PrimaryKey())
	var pairs []match.Pair
	for n, row := range u.Mapping {
		if len(row) != rk+sk {
			return nil, fmt.Errorf("baselines: mapping row %d has %d values, want %d+%d", n, len(row), rk, sk)
		}
		i := r.LookupKey(row[:rk]...)
		if i < 0 {
			return nil, fmt.Errorf("baselines: mapping row %d: no R tuple with key %v", n, row[:rk])
		}
		j := s.LookupKey(row[rk:]...)
		if j < 0 {
			return nil, fmt.Errorf("baselines: mapping row %d: no S tuple with key %v", n, row[rk:])
		}
		pairs = append(pairs, match.Pair{RIndex: i, SIndex: j})
	}
	return mkTable(r, s, pairs), nil
}

// ProbabilisticKey implements §2.2's approach 3 (Pu): key values are
// split into subfields and two keys match when the fraction of agreeing
// subfields reaches Threshold. Ambiguity (several S tuples tie at the
// best score) keeps only the first, mirroring the "may admit erroneous
// matching" caveat.
type ProbabilisticKey struct {
	Key []AttrPair
	// Threshold is the minimum fraction of matching subfields (0–1];
	// zero means 0.75, a typical name-matching setting.
	Threshold float64
}

// Name implements Matcher.
func (p ProbabilisticKey) Name() string { return "probabilistic-key" }

// Match implements Matcher.
func (p ProbabilisticKey) Match(r, s *relation.Relation) (*match.Table, error) {
	if err := validatePairs(r, s, p.Key); err != nil {
		return nil, err
	}
	th := p.Threshold
	if th == 0 {
		th = 0.75
	}
	if th < 0 || th > 1 {
		return nil, fmt.Errorf("baselines: threshold %g out of (0,1]", th)
	}
	var pairs []match.Pair
	for i, rt := range r.Tuples() {
		best, bestScore := -1, 0.0
		for j, st := range s.Tuples() {
			score := p.score(r, rt, s, st)
			if score > bestScore {
				best, bestScore = j, score
			}
		}
		if best >= 0 && bestScore >= th {
			pairs = append(pairs, match.Pair{RIndex: i, SIndex: best})
		}
	}
	return mkTable(r, s, pairs), nil
}

func (p ProbabilisticKey) score(r *relation.Relation, rt relation.Tuple, s *relation.Relation, st relation.Tuple) float64 {
	var total, matched int
	for _, pr := range p.Key {
		rv := rt[r.Schema().Index(pr.R)]
		sv := st[s.Schema().Index(pr.S)]
		rf := Subfields(rv)
		sf := Subfields(sv)
		if len(rf) == 0 && len(sf) == 0 {
			continue
		}
		total += maxInt(len(rf), len(sf))
		matched += overlap(rf, sf)
	}
	if total == 0 {
		return 0
	}
	return float64(matched) / float64(total)
}

// Subfields splits a value into normalized subfields for probabilistic
// key matching: lower-cased, split on spaces, dots, commas, hyphens.
// NULL has no subfields.
func Subfields(v value.Value) []string {
	if v.IsNull() {
		return nil
	}
	text := strings.ToLower(v.String())
	fields := strings.FieldsFunc(text, func(r rune) bool {
		switch r {
		case ' ', '.', ',', '-', '_', '/':
			return true
		}
		return false
	})
	return fields
}

func overlap(a, b []string) int {
	set := map[string]int{}
	for _, x := range a {
		set[x]++
	}
	n := 0
	for _, x := range b {
		if set[x] > 0 {
			set[x]--
			n++
		}
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ProbabilisticAttr implements §2.2's approach 4 (Chatterjee & Segev):
// every common attribute contributes to a comparison value — the
// weighted fraction of agreeing attributes among those non-NULL on both
// sides — and pairs at or above Threshold match greedily (best score
// first, one match per tuple). Figure 2's scenario shows why this can
// be unsound: identical attribute values do not imply identical
// entities.
type ProbabilisticAttr struct {
	Common []AttrPair
	// Weights optionally weighs each common attribute (default 1).
	Weights []float64
	// Threshold is the minimum comparison value (0–1]; zero means 1.0,
	// i.e. all comparable attributes must agree.
	Threshold float64
}

// Name implements Matcher.
func (p ProbabilisticAttr) Name() string { return "probabilistic-attribute" }

// Match implements Matcher.
func (p ProbabilisticAttr) Match(r, s *relation.Relation) (*match.Table, error) {
	if err := validatePairs(r, s, p.Common); err != nil {
		return nil, err
	}
	if p.Weights != nil && len(p.Weights) != len(p.Common) {
		return nil, fmt.Errorf("baselines: %d weights for %d attributes", len(p.Weights), len(p.Common))
	}
	th := p.Threshold
	if th == 0 {
		th = 1.0
	}
	if th < 0 || th > 1 {
		return nil, fmt.Errorf("baselines: threshold %g out of (0,1]", th)
	}
	type cand struct {
		i, j  int
		score float64
	}
	var cands []cand
	for i, rt := range r.Tuples() {
		for j, st := range s.Tuples() {
			if score, ok := p.compare(r, rt, s, st); ok && score >= th {
				cands = append(cands, cand{i, j, score})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})
	usedR := map[int]bool{}
	usedS := map[int]bool{}
	var pairs []match.Pair
	for _, c := range cands {
		if usedR[c.i] || usedS[c.j] {
			continue
		}
		usedR[c.i], usedS[c.j] = true, true
		pairs = append(pairs, match.Pair{RIndex: c.i, SIndex: c.j})
	}
	return mkTable(r, s, pairs), nil
}

// compare returns the comparison value for a pair; ok is false when no
// attribute is comparable (both sides NULL everywhere).
func (p ProbabilisticAttr) compare(r *relation.Relation, rt relation.Tuple, s *relation.Relation, st relation.Tuple) (float64, bool) {
	var total, agree float64
	for n, pr := range p.Common {
		w := 1.0
		if p.Weights != nil {
			w = p.Weights[n]
		}
		rv := rt[r.Schema().Index(pr.R)]
		sv := st[s.Schema().Index(pr.S)]
		if rv.IsNull() || sv.IsNull() {
			continue
		}
		total += w
		if value.Equal(rv, sv) {
			agree += w
		}
	}
	if total == 0 {
		return 0, false
	}
	return agree / total, true
}

// Heuristic implements §2.2's approach 5 (Wang & Madnick): heuristic
// rules — written in the same form as ILFDs but *not* guaranteed
// correct — infer additional attribute values, then tuples agreeing on
// the inferred Key attributes match. Because the knowledge is heuristic
// the result may be wrong; the experiments feed it deliberately noisy
// rules to quantify that.
type Heuristic struct {
	// Rules are applied with first-match (cut) semantics to both sides.
	Rules ilfd.Set
	// Key lists the integrated attributes to equate after inference;
	// each must exist (or be derivable) on both sides.
	Key []AttrPair
	// Derive lists attributes to add to each relation before applying
	// rules (integrated name and kind); attributes already present are
	// left alone.
	DeriveR, DeriveS []schema.Attribute
}

// Name implements Matcher.
func (h Heuristic) Name() string { return "heuristic-rules" }

// Match implements Matcher.
func (h Heuristic) Match(r, s *relation.Relation) (*match.Table, error) {
	rx, _, err := derive.Extend(r, r.Schema().Name()+"+", h.DeriveR, h.Rules, derive.Options{})
	if err != nil {
		return nil, err
	}
	sx, _, err := derive.Extend(s, s.Schema().Name()+"+", h.DeriveS, h.Rules, derive.Options{})
	if err != nil {
		return nil, err
	}
	if err := validatePairs(rx, sx, h.Key); err != nil {
		return nil, err
	}
	index := map[string][]int{}
	for j, t := range sx.Tuples() {
		if key, ok := projKey(sx, t, h.Key, false); ok {
			index[key] = append(index[key], j)
		}
	}
	var pairs []match.Pair
	for i, t := range rx.Tuples() {
		key, ok := projKey(rx, t, h.Key, true)
		if !ok {
			continue
		}
		for _, j := range index[key] {
			pairs = append(pairs, match.Pair{RIndex: i, SIndex: j})
		}
	}
	return mkTable(r, s, pairs), nil
}

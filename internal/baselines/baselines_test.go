package baselines

import (
	"strings"
	"testing"

	"entityid/internal/ilfd"
	"entityid/internal/match"
	"entityid/internal/paperdata"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

func s(v string) value.Value { return value.String(v) }

// TestKeyEquivalenceInapplicableExample1 reproduces the paper's core
// argument against approach 1: Table 1's R and S share no candidate
// key, so key equivalence refuses to run.
func TestKeyEquivalenceInapplicableExample1(t *testing.T) {
	r, sRel := paperdata.Table1R(), paperdata.Table1S()
	m := KeyEquivalence{Key: []AttrPair{{R: "name", S: "name"}}}
	_, err := m.Match(r, sRel)
	if err == nil || !strings.Contains(err.Error(), "inapplicable") {
		t.Fatalf("Match = %v, want inapplicable error", err)
	}
}

// TestKeyEquivalenceAmbiguityExample1 forces the common-attribute match
// the paper warns about: with AllowNonKey, matching Table 1 on name
// works until the paper's VillageWok/Penn.Ave. insertion makes one S
// tuple match two R tuples.
func TestKeyEquivalenceAmbiguityExample1(t *testing.T) {
	r, sRel := paperdata.Table1R(), paperdata.Table1S()
	m := KeyEquivalence{Key: []AttrPair{{R: "name", S: "name"}}, AllowNonKey: true}
	mt, err := m.Match(r, sRel)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if mt.Len() != 2 { // VillageWok and OldCountry share names
		t.Fatalf("pairs = %d, want 2", mt.Len())
	}
	// The paper's insertion.
	if err := r.Insert(relation.Tuple{s("VillageWok"), s("Penn.Ave."), s("Chinese")}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	mt, err = m.Match(r, sRel)
	if err != nil {
		t.Fatalf("Match after insert: %v", err)
	}
	perS := map[int]int{}
	for _, p := range mt.Pairs {
		perS[p.SIndex]++
	}
	if perS[0] != 2 {
		t.Errorf("S tuple 0 matched %d times, want the ambiguous 2", perS[0])
	}
}

func TestKeyEquivalenceHappyPath(t *testing.T) {
	// Figure 2 relations share candidate key (name).
	r, sRel := paperdata.Figure2R(), paperdata.Figure2S()
	m := KeyEquivalence{Key: []AttrPair{{R: "name", S: "name"}}}
	mt, err := m.Match(r, sRel)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if mt.Len() != 1 {
		t.Errorf("pairs = %d", mt.Len())
	}
	if m.Name() != "key-equivalence" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestKeyEquivalenceValidation(t *testing.T) {
	r, sRel := paperdata.Figure2R(), paperdata.Figure2S()
	if _, err := (KeyEquivalence{}).Match(r, sRel); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := (KeyEquivalence{Key: []AttrPair{{R: "zzz", S: "name"}}}).Match(r, sRel); err == nil {
		t.Error("unknown R attribute accepted")
	}
	if _, err := (KeyEquivalence{Key: []AttrPair{{R: "name", S: "zzz"}}}).Match(r, sRel); err == nil {
		t.Error("unknown S attribute accepted")
	}
}

func TestUserSpecified(t *testing.T) {
	r, sRel := paperdata.Table1R(), paperdata.Table1S()
	m := UserSpecified{Mapping: [][]value.Value{
		// R key (name, street) then S key (name, city).
		{s("VillageWok"), s("Wash.Ave."), s("VillageWok"), s("Mpls")},
		{s("OldCountry"), s("Co.B2 Rd."), s("OldCountry"), s("Roseville")},
	}}
	mt, err := m.Match(r, sRel)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if mt.Len() != 2 {
		t.Errorf("pairs = %d, want 2", mt.Len())
	}
	if !mt.Contains(0, 0) || !mt.Contains(2, 1) {
		t.Errorf("pairs = %v", mt.Pairs)
	}
	if m.Name() != "user-specified" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestUserSpecifiedErrors(t *testing.T) {
	r, sRel := paperdata.Table1R(), paperdata.Table1S()
	cases := []struct {
		name    string
		mapping [][]value.Value
		want    string
	}{
		{"wrong arity", [][]value.Value{{s("a")}}, "want 2+2"},
		{"stale R", [][]value.Value{{s("Nope"), s("X"), s("VillageWok"), s("Mpls")}}, "no R tuple"},
		{"stale S", [][]value.Value{{s("VillageWok"), s("Wash.Ave."), s("Nope"), s("X")}}, "no S tuple"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := UserSpecified{Mapping: c.mapping}.Match(r, sRel)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want contains %q", err, c.want)
			}
		})
	}
}

func TestSubfields(t *testing.T) {
	got := Subfields(s("Village Wok. Lake-Street"))
	want := []string{"village", "wok", "lake", "street"}
	if len(got) != len(want) {
		t.Fatalf("Subfields = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Subfields = %v, want %v", got, want)
		}
	}
	if Subfields(value.Null) != nil {
		t.Error("NULL has subfields")
	}
}

func TestProbabilisticKey(t *testing.T) {
	rSch := schema.MustNew("R", []schema.Attribute{{Name: "name", Kind: value.KindString}}, []string{"name"})
	sSch := schema.MustNew("S", []schema.Attribute{{Name: "name", Kind: value.KindString}}, []string{"name"})
	r := relation.New(rSch)
	r.MustInsert(s("village wok minneapolis"))
	r.MustInsert(s("old country buffet"))
	sRel := relation.New(sSch)
	sRel.MustInsert(s("village wok mpls"))       // 2/3 subfields match
	sRel.MustInsert(s("totally different name")) // no match

	m := ProbabilisticKey{Key: []AttrPair{{R: "name", S: "name"}}, Threshold: 0.6}
	mt, err := m.Match(r, sRel)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if mt.Len() != 1 || !mt.Contains(0, 0) {
		t.Errorf("pairs = %v, want [(0,0)]", mt.Pairs)
	}
	// Raising the threshold kills the partial match.
	m.Threshold = 0.9
	mt, err = m.Match(r, sRel)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Len() != 0 {
		t.Errorf("pairs = %v at threshold 0.9", mt.Pairs)
	}
	if m.Name() != "probabilistic-key" {
		t.Errorf("Name = %q", m.Name())
	}
	if _, err := (ProbabilisticKey{Key: []AttrPair{{R: "name", S: "name"}}, Threshold: 2}).Match(r, sRel); err == nil {
		t.Error("bad threshold accepted")
	}
}

// TestProbabilisticKeyErroneousMatch demonstrates the paper's caveat:
// subfield matching "may admit erroneous matching" — two different
// restaurants sharing most name tokens get matched.
func TestProbabilisticKeyErroneousMatch(t *testing.T) {
	rSch := schema.MustNew("R", []schema.Attribute{{Name: "name", Kind: value.KindString}}, []string{"name"})
	sSch := schema.MustNew("S", []schema.Attribute{{Name: "name", Kind: value.KindString}}, []string{"name"})
	r := relation.New(rSch)
	r.MustInsert(s("golden dragon st paul"))
	sRel := relation.New(sSch)
	sRel.MustInsert(s("golden dragon minneapolis")) // different entity!

	m := ProbabilisticKey{Key: []AttrPair{{R: "name", S: "name"}}, Threshold: 0.5}
	mt, err := m.Match(r, sRel)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Len() != 1 {
		t.Error("expected the (unsound) probabilistic match to fire")
	}
}

func TestProbabilisticAttr(t *testing.T) {
	r, sRel := paperdata.Figure2R(), paperdata.Figure2S()
	m := ProbabilisticAttr{Common: []AttrPair{
		{R: "name", S: "name"}, {R: "cuisine", S: "cuisine"},
	}}
	mt, err := m.Match(r, sRel)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	// Figure 2: the comparison value is 1.0 — and the match is wrong.
	// The baseline cannot know that; the test pins the unsound behaviour
	// the paper uses to motivate sound techniques.
	if mt.Len() != 1 {
		t.Errorf("pairs = %d, want the (unsound) 1", mt.Len())
	}
	if m.Name() != "probabilistic-attribute" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestProbabilisticAttrThresholdAndWeights(t *testing.T) {
	rSch := schema.MustNew("R", []schema.Attribute{
		{Name: "name", Kind: value.KindString},
		{Name: "city", Kind: value.KindString},
	}, []string{"name"})
	sSch := schema.MustNew("S", []schema.Attribute{
		{Name: "name", Kind: value.KindString},
		{Name: "city", Kind: value.KindString},
	}, []string{"name"})
	r := relation.New(rSch)
	r.MustInsert(s("wok"), s("mpls"))
	sRel := relation.New(sSch)
	sRel.MustInsert(s("wok"), s("stpaul"))

	common := []AttrPair{{R: "name", S: "name"}, {R: "city", S: "city"}}
	// Unweighted, threshold 1.0: city disagrees -> no match.
	mt, err := ProbabilisticAttr{Common: common}.Match(r, sRel)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Len() != 0 {
		t.Errorf("pairs = %d at threshold 1.0", mt.Len())
	}
	// Threshold 0.5 admits the half-agreement.
	mt, err = ProbabilisticAttr{Common: common, Threshold: 0.5}.Match(r, sRel)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Len() != 1 {
		t.Errorf("pairs = %d at threshold 0.5", mt.Len())
	}
	// Heavy name weight pushes the comparison value up.
	mt, err = ProbabilisticAttr{Common: common, Weights: []float64{9, 1}, Threshold: 0.9}.Match(r, sRel)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Len() != 1 {
		t.Errorf("pairs = %d with weights", mt.Len())
	}
	// Weight arity check.
	if _, err := (ProbabilisticAttr{Common: common, Weights: []float64{1}}).Match(r, sRel); err == nil {
		t.Error("wrong weight count accepted")
	}
	if _, err := (ProbabilisticAttr{Common: common, Threshold: -1}).Match(r, sRel); err == nil {
		t.Error("bad threshold accepted")
	}
}

func TestProbabilisticAttrGreedyOneToOne(t *testing.T) {
	rSch := schema.MustNew("R", []schema.Attribute{{Name: "name", Kind: value.KindString}, {Name: "id", Kind: value.KindInt}}, []string{"id"})
	sSch := schema.MustNew("S", []schema.Attribute{{Name: "name", Kind: value.KindString}, {Name: "id", Kind: value.KindInt}}, []string{"id"})
	r := relation.New(rSch)
	r.MustInsert(s("wok"), value.Int(1))
	r.MustInsert(s("wok"), value.Int(2))
	sRel := relation.New(sSch)
	sRel.MustInsert(s("wok"), value.Int(10))

	mt, err := ProbabilisticAttr{Common: []AttrPair{{R: "name", S: "name"}}}.Match(r, sRel)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Len() != 1 {
		t.Errorf("greedy assignment produced %d pairs, want 1", mt.Len())
	}
}

func TestProbabilisticAttrAllNullIncomparable(t *testing.T) {
	rSch := schema.MustNew("R", []schema.Attribute{{Name: "a", Kind: value.KindString}, {Name: "k", Kind: value.KindInt}}, []string{"k"})
	sSch := schema.MustNew("S", []schema.Attribute{{Name: "a", Kind: value.KindString}, {Name: "k", Kind: value.KindInt}}, []string{"k"})
	r := relation.New(rSch)
	r.MustInsert(value.Null, value.Int(1))
	sRel := relation.New(sSch)
	sRel.MustInsert(value.Null, value.Int(2))
	mt, err := ProbabilisticAttr{Common: []AttrPair{{R: "a", S: "a"}}}.Match(r, sRel)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Len() != 0 {
		t.Error("incomparable pair matched")
	}
}

func TestHeuristic(t *testing.T) {
	// Heuristic rules in the style of Wang & Madnick: infer cuisine on
	// the S side, then equate (name, cuisine). One rule is wrong on
	// purpose: gyros → chinese.
	r, sRel := paperdata.Table5R(), paperdata.Table5S()
	h := Heuristic{
		Rules: ilfd.Set{
			ilfd.MustParse("speciality=Hunan -> cuisine=Chinese"),
			ilfd.MustParse("speciality=Gyros -> cuisine=Chinese"), // wrong!
			ilfd.MustParse("speciality=Mughalai -> cuisine=Indian"),
		},
		Key:     []AttrPair{{R: "name", S: "name"}, {R: "cuisine", S: "cuisine"}},
		DeriveS: []schema.Attribute{{Name: "cuisine", Kind: value.KindString}},
	}
	mt, err := h.Match(r, sRel)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	// TwinCities/Hunan and Anjuman/Mughalai match correctly; It'sGreek
	// does NOT match because the wrong rule derived chinese ≠ greek. The
	// wrong rule silently loses a correct match — exactly the "result
	// may not be correct" failure mode.
	if mt.Len() != 2 {
		t.Errorf("pairs = %d, want 2", mt.Len())
	}
	for _, p := range mt.Pairs {
		if r.MustValue(p.RIndex, "name").Str() == "It'sGreek" {
			t.Error("It'sGreek matched despite wrong heuristic rule")
		}
	}
	if h.Name() != "heuristic-rules" {
		t.Errorf("Name = %q", h.Name())
	}
}

func TestHeuristicUnsoundMatch(t *testing.T) {
	// A wrong heuristic rule can also create a spurious match: derive
	// cuisine=Chinese for Gyros and ALSO flip It'sGreek's R cuisine by
	// matching name only through the derived key. Build a scenario where
	// the wrong rule makes two different entities agree.
	rSch := schema.MustNew("R", []schema.Attribute{
		{Name: "name", Kind: value.KindString},
		{Name: "cuisine", Kind: value.KindString},
	}, []string{"name", "cuisine"})
	r := relation.New(rSch)
	r.MustInsert(s("corner"), s("chinese")) // entity A
	sSch := schema.MustNew("S", []schema.Attribute{
		{Name: "name", Kind: value.KindString},
		{Name: "speciality", Kind: value.KindString},
	}, []string{"name", "speciality"})
	sRel := relation.New(sSch)
	sRel.MustInsert(s("corner"), s("gyros")) // entity B (greek place)

	h := Heuristic{
		Rules:   ilfd.Set{ilfd.MustParse("speciality=gyros -> cuisine=chinese")}, // wrong
		Key:     []AttrPair{{R: "name", S: "name"}, {R: "cuisine", S: "cuisine"}},
		DeriveS: []schema.Attribute{{Name: "cuisine", Kind: value.KindString}},
	}
	mt, err := h.Match(r, sRel)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Len() != 1 {
		t.Errorf("pairs = %d; the wrong rule should produce the unsound match", mt.Len())
	}
}

func TestHeuristicValidation(t *testing.T) {
	r, sRel := paperdata.Table5R(), paperdata.Table5S()
	h := Heuristic{Key: []AttrPair{{R: "name", S: "bogus"}}}
	if _, err := h.Match(r, sRel); err == nil {
		t.Error("unknown key attribute accepted")
	}
}

// TestBaselinesAreMatchers pins the interface.
func TestBaselinesAreMatchers(t *testing.T) {
	for _, m := range []Matcher{
		KeyEquivalence{}, UserSpecified{}, ProbabilisticKey{},
		ProbabilisticAttr{}, Heuristic{},
	} {
		if m.Name() == "" {
			t.Errorf("%T has empty name", m)
		}
	}
}

var _ = match.Pair{} // keep the import for doc references

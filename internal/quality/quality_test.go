package quality

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"entityid/internal/match"
)

func mt(pairs ...[2]int) *match.Table {
	t := &match.Table{}
	for _, p := range pairs {
		t.Pairs = append(t.Pairs, match.Pair{RIndex: p[0], SIndex: p[1]})
	}
	return t
}

func truth(pairs ...[2]int) TruthSet {
	ts := TruthSet{}
	for _, p := range pairs {
		ts[p] = true
	}
	return ts
}

func TestEvaluateBasic(t *testing.T) {
	sc := Evaluate(
		mt([2]int{0, 0}, [2]int{1, 1}, [2]int{2, 5}),
		truth([2]int{0, 0}, [2]int{1, 1}, [2]int{3, 3}),
	)
	if sc.TruePos != 2 || sc.FalsePos != 1 || sc.FalseNeg != 1 {
		t.Fatalf("score = %+v", sc)
	}
	if got := sc.Precision(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("precision = %g", got)
	}
	if got := sc.Recall(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("recall = %g", got)
	}
	if got := sc.F1(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("f1 = %g", got)
	}
	if sc.Sound() {
		t.Error("score with FP reported sound")
	}
	for _, want := range []string{"tp=2", "fp=1", "fn=1", "precision=0.667"} {
		if !strings.Contains(sc.String(), want) {
			t.Errorf("String missing %q: %s", want, sc)
		}
	}
}

func TestEvaluateDedupsPredictions(t *testing.T) {
	sc := Evaluate(mt([2]int{0, 0}, [2]int{0, 0}), truth([2]int{0, 0}))
	if sc.TruePos != 1 || sc.FalsePos != 0 {
		t.Errorf("duplicate prediction counted: %+v", sc)
	}
}

func TestEdgeCases(t *testing.T) {
	// Empty prediction, empty truth: vacuously perfect.
	sc := Evaluate(mt(), truth())
	if sc.Precision() != 1 || sc.Recall() != 1 {
		t.Errorf("empty-empty = %+v", sc)
	}
	if !sc.Sound() {
		t.Error("empty prediction not sound")
	}
	// Empty prediction, nonempty truth: recall 0, precision 1.
	sc = Evaluate(mt(), truth([2]int{0, 0}))
	if sc.Precision() != 1 || sc.Recall() != 0 {
		t.Errorf("empty-pred = %+v", sc)
	}
	if sc.F1() != 0 {
		t.Errorf("f1 = %g", sc.F1())
	}
}

func TestScoreInvariantsQuick(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		sc := Score{TruePos: int(tp), FalsePos: int(fp), FalseNeg: int(fn)}
		p, r := sc.Precision(), sc.Recall()
		if p < 0 || p > 1 || r < 0 || r > 1 {
			return false
		}
		f1 := sc.F1()
		return f1 >= 0 && f1 <= 1 && (sc.Sound() == (fp == 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartition(t *testing.T) {
	p := Partition{Matching: 3, NotMatching: 5, Undetermined: 2}
	if p.Total() != 10 {
		t.Errorf("Total = %d", p.Total())
	}
	if got := p.UndeterminedFrac(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("UndeterminedFrac = %g", got)
	}
	if p.Complete() {
		t.Error("incomplete partition reported complete")
	}
	full := Partition{Matching: 1, NotMatching: 1}
	if !full.Complete() {
		t.Error("complete partition not recognised")
	}
	empty := Partition{}
	if empty.UndeterminedFrac() != 0 {
		t.Error("empty partition fraction nonzero")
	}
	if !strings.Contains(p.String(), "20.0% undetermined") {
		t.Errorf("String = %q", p.String())
	}
}

// Package quality scores entity-identification results against ground
// truth: precision, recall, F1, soundness violations (the false
// positives §3.2's soundness property forbids) and the undetermined
// fraction (§3.3's completeness gap).
package quality

import (
	"fmt"

	"entityid/internal/match"
)

// TruthSet is the ground-truth matching: the set of (R index, S index)
// pairs that model the same real-world entity.
type TruthSet map[[2]int]bool

// Score summarises a predicted matching table against the truth.
type Score struct {
	// TruePos counts predicted pairs present in the truth.
	TruePos int
	// FalsePos counts predicted pairs absent from the truth — each one
	// is a soundness violation.
	FalsePos int
	// FalseNeg counts truth pairs the prediction missed.
	FalseNeg int
}

// Evaluate scores a matching table against the truth.
func Evaluate(mt *match.Table, truth TruthSet) Score {
	var sc Score
	seen := map[[2]int]bool{}
	for _, p := range mt.Pairs {
		k := [2]int{p.RIndex, p.SIndex}
		if seen[k] {
			continue
		}
		seen[k] = true
		if truth[k] {
			sc.TruePos++
		} else {
			sc.FalsePos++
		}
	}
	for k := range truth {
		if !seen[k] {
			sc.FalseNeg++
		}
	}
	return sc
}

// Precision returns TP/(TP+FP); 1 when nothing was predicted (vacuously
// sound).
func (s Score) Precision() float64 {
	if s.TruePos+s.FalsePos == 0 {
		return 1
	}
	return float64(s.TruePos) / float64(s.TruePos+s.FalsePos)
}

// Recall returns TP/(TP+FN); 1 when the truth is empty.
func (s Score) Recall() float64 {
	if s.TruePos+s.FalseNeg == 0 {
		return 1
	}
	return float64(s.TruePos) / float64(s.TruePos+s.FalseNeg)
}

// F1 returns the harmonic mean of precision and recall.
func (s Score) F1() float64 {
	p, r := s.Precision(), s.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Sound reports whether the prediction made no false assertions —
// the paper's minimum bar for a successful identification process.
func (s Score) Sound() bool { return s.FalsePos == 0 }

// String renders the score compactly.
func (s Score) String() string {
	return fmt.Sprintf("tp=%d fp=%d fn=%d precision=%.3f recall=%.3f f1=%.3f",
		s.TruePos, s.FalsePos, s.FalseNeg, s.Precision(), s.Recall(), s.F1())
}

// Partition summarises the three-valued classification over all pairs
// (Figure 3): the counts and the undetermined fraction, whose decrease
// under growing knowledge is the monotonicity experiment.
type Partition struct {
	Matching, NotMatching, Undetermined int
}

// Total returns the number of classified pairs.
func (p Partition) Total() int { return p.Matching + p.NotMatching + p.Undetermined }

// UndeterminedFrac returns the fraction of undetermined pairs; 0 for an
// empty partition.
func (p Partition) UndeterminedFrac() float64 {
	if p.Total() == 0 {
		return 0
	}
	return float64(p.Undetermined) / float64(p.Total())
}

// Complete reports whether the identification process is complete in
// the paper's sense (§3.2): no pair is undetermined.
func (p Partition) Complete() bool { return p.Undetermined == 0 }

// String renders the partition.
func (p Partition) String() string {
	return fmt.Sprintf("matching=%d not-matching=%d undetermined=%d (%.1f%% undetermined)",
		p.Matching, p.NotMatching, p.Undetermined, 100*p.UndeterminedFrac())
}

package datagen

import (
	"testing"

	"entityid/internal/match"
	"entityid/internal/quality"
)

func TestEmployeeValidate(t *testing.T) {
	bad := []EmployeeConfig{
		{Employees: 0},
		{Employees: 10, OverlapFrac: -1},
		{Employees: 10, DuplicateNameRate: 2},
		{Employees: 10, KnowledgeFrac: 1.1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", cfg)
		}
	}
}

func TestEmployeeDeterministic(t *testing.T) {
	cfg := EmployeeConfig{Employees: 150, OverlapFrac: 0.5, DuplicateNameRate: 0.2, KnowledgeFrac: 0.6, Seed: 9}
	a := MustGenerateEmployees(cfg)
	b := MustGenerateEmployees(cfg)
	if !a.HR.Equal(b.HR) || !a.Sales.Equal(b.Sales) {
		t.Error("same seed, different relations")
	}
}

func TestEmployeeShape(t *testing.T) {
	w := MustGenerateEmployees(EmployeeConfig{
		Employees: 400, OverlapFrac: 0.6, DuplicateNameRate: 0.25, KnowledgeFrac: 0.5, Seed: 21,
	})
	if !w.HR.Schema().IsKey([]string{"name", "office"}) {
		t.Error("HR key wrong")
	}
	if !w.Sales.Schema().IsKey([]string{"name", "territory"}) {
		t.Error("Sales key wrong")
	}
	// Duplicate names exist.
	names := map[string]int{}
	for _, e := range w.Employees {
		names[e.Name]++
	}
	dups := 0
	for _, n := range names {
		if n > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("no duplicate names at rate 0.25")
	}
	// (name, office) is a key of the universe.
	seen := map[string]bool{}
	for _, e := range w.Employees {
		k := e.Name + "|" + e.Office
		if seen[k] {
			t.Fatalf("universe key collision: %s", k)
		}
		seen[k] = true
	}
	// Truth pairs reference the right entities.
	for p := range w.Truth {
		hrName := w.HR.MustValue(p[0], "name")
		salesName := w.Sales.MustValue(p[1], "name")
		if hrName.Str() != salesName.Str() {
			t.Fatalf("truth pair %v names differ", p)
		}
	}
}

// TestEmployeeEndToEnd runs the paper's technique on the employee
// domain: precision must be 1 (nobody is wrongly fired), recall equals
// the knowledge fraction's reach.
func TestEmployeeEndToEnd(t *testing.T) {
	w := MustGenerateEmployees(EmployeeConfig{
		Employees: 500, OverlapFrac: 0.5, DuplicateNameRate: 0.3, KnowledgeFrac: 0.7, Seed: 33,
	})
	res, err := match.Build(w.MatchConfig())
	if err != nil {
		t.Fatalf("match.Build: %v", err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	sc := quality.Evaluate(res.MT, w.Truth)
	if !sc.Sound() {
		t.Errorf("unsound employee matching: %s", sc)
	}
	if sc.TruePos == 0 {
		t.Error("no matches at 0.7 knowledge")
	}
	if sc.Recall() > 0.95 {
		t.Errorf("recall %g suspiciously above knowledge fraction", sc.Recall())
	}
}

func TestEmployeeFullKnowledge(t *testing.T) {
	w := MustGenerateEmployees(EmployeeConfig{
		Employees: 200, OverlapFrac: 0.5, DuplicateNameRate: 0.2, KnowledgeFrac: 1, Seed: 44,
	})
	res, err := match.Build(w.MatchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	sc := quality.Evaluate(res.MT, w.Truth)
	if sc.Recall() != 1 || !sc.Sound() {
		t.Errorf("full knowledge: %s", sc)
	}
}

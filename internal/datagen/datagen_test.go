package datagen

import (
	"math"
	"testing"

	"entityid/internal/match"
	"entityid/internal/quality"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{Entities: 0},
		{Entities: 10, OverlapFrac: -0.1},
		{Entities: 10, HomonymRate: 1.5},
		{Entities: 10, ILFDCoverage: 2},
		{Entities: 10, MissingPhone: -1},
		{Entities: 10, DirtyPhone: 9},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", cfg)
		}
	}
	good := Config{Entities: 10, OverlapFrac: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Entities: 200, OverlapFrac: 0.5, HomonymRate: 0.1, ILFDCoverage: 0.7, Seed: 7}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if !a.R.Equal(b.R) || !a.S.Equal(b.S) {
		t.Error("same seed produced different relations")
	}
	if len(a.Truth) != len(b.Truth) {
		t.Error("same seed produced different truth")
	}
	c := MustGenerate(Config{Entities: 200, OverlapFrac: 0.5, HomonymRate: 0.1, ILFDCoverage: 0.7, Seed: 8})
	if a.R.Equal(c.R) {
		t.Error("different seeds produced identical R")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{Entities: 500, OverlapFrac: 0.6, HomonymRate: 0.15, ILFDCoverage: 0.5, MissingPhone: 0.2, DirtyPhone: 0.2, Seed: 42}
	w := MustGenerate(cfg)

	if len(w.Entities) != 500 {
		t.Fatalf("entities = %d", len(w.Entities))
	}
	if w.R.Len() == 0 || w.S.Len() == 0 {
		t.Fatal("empty relation")
	}
	if len(w.RToEntity) != w.R.Len() || len(w.SToEntity) != w.S.Len() {
		t.Fatal("provenance length mismatch")
	}
	// Truth pairs ~ overlap fraction of entities.
	frac := float64(len(w.Truth)) / float64(len(w.Entities))
	if math.Abs(frac-cfg.OverlapFrac) > 0.1 {
		t.Errorf("truth fraction = %.2f, want ≈ %.2f", frac, cfg.OverlapFrac)
	}
	// Truth pairs actually model the same entity.
	for p := range w.Truth {
		if w.RToEntity[p[0]] != w.SToEntity[p[1]] {
			t.Fatalf("truth pair %v crosses entities", p)
		}
	}
	// No common candidate key: R key (name, street), S key (name, city).
	if !w.R.Schema().IsKey([]string{"name", "street"}) {
		t.Error("R key wrong")
	}
	if !w.S.Schema().IsKey([]string{"name", "city"}) {
		t.Error("S key wrong")
	}
	// Homonyms exist.
	names := map[string]int{}
	for _, e := range w.Entities {
		names[e.Name]++
	}
	homonyms := 0
	for _, n := range names {
		if n > 1 {
			homonyms += n
		}
	}
	if homonyms == 0 {
		t.Error("no homonyms generated at rate 0.15")
	}
	// Extended key is a key of the universe: no two entities agree on
	// (name, cuisine, speciality).
	seen := map[string]bool{}
	for _, e := range w.Entities {
		k := e.Name + "|" + e.Cuisine + "|" + e.Speciality
		if seen[k] {
			t.Fatalf("extended key collision: %s", k)
		}
		seen[k] = true
	}
}

// TestEndToEndSoundness runs the paper's technique on a generated
// workload and checks the headline claim: precision 1.0 (soundness),
// recall bounded by ILFD coverage.
func TestEndToEndSoundness(t *testing.T) {
	w := MustGenerate(Config{
		Entities: 400, OverlapFrac: 0.5, HomonymRate: 0.2,
		ILFDCoverage: 0.6, MissingPhone: 0.1, DirtyPhone: 0.3, Seed: 11,
	})
	res, err := match.Build(w.MatchConfig())
	if err != nil {
		t.Fatalf("match.Build: %v", err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	sc := quality.Evaluate(res.MT, w.Truth)
	if !sc.Sound() {
		t.Errorf("unsound result: %s", sc)
	}
	// Recall equals the covered fraction of the truth exactly: every
	// covered R tuple derives speciality, every S tuple derives cuisine
	// (the family is total), and the extended key is a true key.
	covered := w.CoveredTruth()
	if sc.TruePos != covered {
		t.Errorf("recall: matched %d pairs, coverage ceiling %d", sc.TruePos, covered)
	}
	if covered == 0 || covered == len(w.Truth) {
		t.Logf("warning: degenerate coverage %d/%d", covered, len(w.Truth))
	}
}

func TestZeroCoverageMatchesNothing(t *testing.T) {
	w := MustGenerate(Config{Entities: 100, OverlapFrac: 0.5, ILFDCoverage: 0, Seed: 3})
	res, err := match.Build(w.MatchConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := quality.Evaluate(res.MT, w.Truth)
	if sc.TruePos != 0 || sc.FalsePos != 0 {
		t.Errorf("zero coverage matched: %s", sc)
	}
}

func TestFullCoverageFullRecall(t *testing.T) {
	w := MustGenerate(Config{Entities: 150, OverlapFrac: 0.5, HomonymRate: 0.1, ILFDCoverage: 1, Seed: 5})
	res, err := match.Build(w.MatchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	sc := quality.Evaluate(res.MT, w.Truth)
	if sc.Recall() != 1 {
		t.Errorf("full coverage recall = %g (%s)", sc.Recall(), sc)
	}
	if !sc.Sound() {
		t.Errorf("unsound: %s", sc)
	}
}

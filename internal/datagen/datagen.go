// Package datagen generates synthetic integration workloads with ground
// truth: a universe of real-world entities projected into two
// autonomous relations with different candidate keys, plus the ILFDs a
// DBA could plausibly supply. The generator reproduces, at scale, the
// structural features of the paper's examples:
//
//   - no common candidate key between R and S (Example 1),
//   - homonyms: distinct entities sharing a name (§3.1's Minneapolis /
//     St. Paul restaurants),
//   - category knowledge: a functional speciality→cuisine map, the
//     uniform ILFD family of Table 8,
//   - instance knowledge: per-entity ILFDs in the style of I5/I6, whose
//     coverage fraction is the knob behind the monotonicity experiments,
//   - partial overlap: entities modeled in one database only (Figure
//     1's e4), and
//   - dirty/missing data in a shared non-key attribute (phone), which
//     the probabilistic baselines lean on.
//
// Everything is deterministic given Config.Seed.
package datagen

import (
	"fmt"
	"math/rand"

	"entityid/internal/ilfd"
	"entityid/internal/match"
	"entityid/internal/quality"
	"entityid/internal/relation"
	"entityid/internal/rules"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// Config parameterises workload generation.
type Config struct {
	// Entities is the size of the real-world universe.
	Entities int
	// OverlapFrac is the fraction of entities modeled in both databases
	// (the rest split evenly between R-only and S-only).
	OverlapFrac float64
	// HomonymRate is the fraction of entities that share their name with
	// another entity.
	HomonymRate float64
	// ILFDCoverage is the fraction of entities for which an instance
	// ILFD (name ∧ street → speciality) is available, i.e. how much of
	// R's missing extended-key attribute is derivable.
	ILFDCoverage float64
	// MissingPhone is the per-side probability that the shared phone
	// attribute is NULL.
	MissingPhone float64
	// DirtyPhone is the probability that a phone disagrees between the
	// two databases for the same entity.
	DirtyPhone float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Validate checks the configuration ranges.
func (c Config) Validate() error {
	if c.Entities <= 0 {
		return fmt.Errorf("datagen: Entities = %d, want > 0", c.Entities)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"OverlapFrac", c.OverlapFrac},
		{"HomonymRate", c.HomonymRate},
		{"ILFDCoverage", c.ILFDCoverage},
		{"MissingPhone", c.MissingPhone},
		{"DirtyPhone", c.DirtyPhone},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("datagen: %s = %g, want [0,1]", f.name, f.v)
		}
	}
	return nil
}

// Entity is one ground-truth restaurant.
type Entity struct {
	ID         int
	Name       string
	Street     string
	City       string
	Speciality string
	Cuisine    string
	Phone      string
	InR, InS   bool
}

// Workload is a generated integration problem with ground truth.
type Workload struct {
	// R and S are the two autonomous relations.
	// R(name, street, cuisine, phone) with key (name, street);
	// S(name, city, speciality, phone) with key (name, city).
	R, S *relation.Relation
	// Entities is the ground-truth universe.
	Entities []Entity
	// Truth maps (R index, S index) pairs modeling the same entity.
	Truth quality.TruthSet
	// RToEntity and SToEntity map tuple positions to entity IDs.
	RToEntity, SToEntity []int
	// ILFDs holds the generated knowledge: the full speciality→cuisine
	// family plus instance ILFDs for the covered entities.
	ILFDs ilfd.Set
	// Attrs and ExtKey configure match.Build for this workload.
	Attrs  []match.AttrMap
	ExtKey []string
}

// The closed vocabularies. Cuisine is functionally determined by
// speciality, mirroring Table 8.
var specialityCuisine = [][2]string{
	{"hunan", "chinese"}, {"sichuan", "chinese"}, {"cantonese", "chinese"},
	{"gyros", "greek"}, {"souvlaki", "greek"},
	{"mughalai", "indian"}, {"tandoori", "indian"}, {"dosa", "indian"},
	{"sushi", "japanese"}, {"ramen", "japanese"},
	{"tacos", "mexican"}, {"mole", "mexican"},
	{"bbq", "american"}, {"burgers", "american"},
	{"pho", "vietnamese"}, {"banhmi", "vietnamese"},
}

var cities = []string{
	"minneapolis", "stpaul", "roseville", "burnsville", "edina",
	"bloomington", "eagan", "plymouth",
}

var nameStems = []string{
	"villagewok", "twincities", "oldcountry", "expresscafe", "anjuman",
	"itsgreek", "lakeside", "northstar", "riverview", "unionhall",
	"goldenleaf", "bluedoor", "redpepper", "silverspoon", "greengarden",
}

// Generate builds a workload from the configuration.
func Generate(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	entities := make([]Entity, cfg.Entities)
	// Candidate-key uniqueness across the whole universe: (name, street)
	// is R's key and (name, city) is S's key, so regenerate street/city
	// until both projections are fresh.
	usedNS := map[string]bool{}    // name+street
	usedNC := map[string]bool{}    // name+city
	usedNSpec := map[string]bool{} // name+speciality
	// Name assignment with controlled homonyms: a homonym entity reuses
	// the previous entity's name; everyone else gets a unique name built
	// from a stem plus its id.
	for i := range entities {
		sc := specialityCuisine[rng.Intn(len(specialityCuisine))]
		e := Entity{
			ID:         i,
			Street:     fmt.Sprintf("%d %s st", 100+rng.Intn(9900), nameStems[rng.Intn(len(nameStems))]),
			City:       cities[rng.Intn(len(cities))],
			Speciality: sc[0],
			Cuisine:    sc[1],
			Phone:      fmt.Sprintf("612-%03d-%04d", rng.Intn(1000), rng.Intn(10000)),
		}
		if i > 0 && rng.Float64() < cfg.HomonymRate {
			// A homonym elsewhere in town: same name, necessarily a
			// different street and city (the paper's Minneapolis-vs-
			// St. Paul situation, and what R's and S's keys require).
			e.Name = entities[i-1].Name
		} else {
			e.Name = fmt.Sprintf("%s-%d", nameStems[rng.Intn(len(nameStems))], i)
		}
		for usedNS[e.Name+"\x1f"+e.Street] {
			e.Street = fmt.Sprintf("%d %s st", 100+rng.Intn(9900), nameStems[rng.Intn(len(nameStems))])
		}
		for usedNC[e.Name+"\x1f"+e.City] {
			e.City = fmt.Sprintf("%s-%d", cities[rng.Intn(len(cities))], rng.Intn(1000))
		}
		// The workload's extended key is {name, cuisine, speciality}; for
		// it to be a key of the integrated world (the §4.1 definition),
		// same-named entities must differ in speciality. Homonym sets
		// larger than the vocabulary would exhaust this loop, so spread
		// over both speciality and a numbered cuisine-preserving variant.
		for n := 0; usedNSpec[e.Name+"\x1f"+e.Speciality]; n++ {
			sc2 := specialityCuisine[rng.Intn(len(specialityCuisine))]
			e.Speciality, e.Cuisine = sc2[0], sc2[1]
			if n >= len(specialityCuisine) {
				e.Speciality = fmt.Sprintf("%s-%d", sc2[0], rng.Intn(1000000))
			}
		}
		usedNS[e.Name+"\x1f"+e.Street] = true
		usedNC[e.Name+"\x1f"+e.City] = true
		usedNSpec[e.Name+"\x1f"+e.Speciality] = true
		// Membership: overlap fraction in both, remainder split.
		switch f := rng.Float64(); {
		case f < cfg.OverlapFrac:
			e.InR, e.InS = true, true
		case f < cfg.OverlapFrac+(1-cfg.OverlapFrac)/2:
			e.InR = true
		default:
			e.InS = true
		}
		entities[i] = e
	}

	rSchema := schema.MustNew("R",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "street", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
			{Name: "phone", Kind: value.KindString},
		},
		[]string{"name", "street"},
	)
	sSchema := schema.MustNew("S",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "city", Kind: value.KindString},
			{Name: "speciality", Kind: value.KindString},
			{Name: "phone", Kind: value.KindString},
		},
		[]string{"name", "city"},
	)
	w := &Workload{
		R:        relation.New(rSchema),
		S:        relation.New(sSchema),
		Entities: entities,
		Truth:    quality.TruthSet{},
		Attrs: []match.AttrMap{
			{Name: "name", R: "name", S: "name"},
			{Name: "street", R: "street", S: ""},
			{Name: "city", R: "", S: "city"},
			{Name: "cuisine", R: "cuisine", S: ""},
			{Name: "speciality", R: "", S: "speciality"},
			{Name: "phone", R: "phone", S: "phone"},
		},
		ExtKey: []string{"name", "cuisine", "speciality"},
	}

	phone := func(e Entity, dirty bool) value.Value {
		if rng.Float64() < cfg.MissingPhone {
			return value.Null
		}
		if dirty && rng.Float64() < cfg.DirtyPhone {
			return value.String(fmt.Sprintf("612-%03d-%04d", rng.Intn(1000), rng.Intn(10000)))
		}
		return value.String(e.Phone)
	}

	rIdx := map[int]int{}
	sIdx := map[int]int{}
	for _, e := range entities {
		if e.InR {
			err := w.R.Insert(relation.Tuple{
				value.String(e.Name), value.String(e.Street),
				value.String(e.Cuisine), phone(e, false),
			})
			if err != nil {
				return nil, fmt.Errorf("datagen: R insert: %w", err)
			}
			rIdx[e.ID] = w.R.Len() - 1
			w.RToEntity = append(w.RToEntity, e.ID)
		}
		if e.InS {
			err := w.S.Insert(relation.Tuple{
				value.String(e.Name), value.String(e.City),
				value.String(e.Speciality), phone(e, true),
			})
			if err != nil {
				return nil, fmt.Errorf("datagen: S insert: %w", err)
			}
			sIdx[e.ID] = w.S.Len() - 1
			w.SToEntity = append(w.SToEntity, e.ID)
		}
		if e.InR && e.InS {
			w.Truth[[2]int{rIdx[e.ID], sIdx[e.ID]}] = true
		}
	}

	// Knowledge: the full uniform speciality→cuisine family, taken from
	// the values actually present in the universe (homonym spreading can
	// mint speciality variants beyond the base vocabulary).
	seenSpec := map[string]bool{}
	for _, e := range entities {
		if seenSpec[e.Speciality] {
			continue
		}
		seenSpec[e.Speciality] = true
		w.ILFDs = append(w.ILFDs, ilfd.MustNew(
			ilfd.Conditions{ilfd.C("speciality", e.Speciality)},
			ilfd.Conditions{ilfd.C("cuisine", e.Cuisine)},
		))
	}
	// …plus instance ILFDs (name ∧ street → speciality) for a covered
	// fraction of R-resident entities, the I5/I6 pattern.
	for _, e := range entities {
		if !e.InR {
			continue
		}
		if rng.Float64() < cfg.ILFDCoverage {
			w.ILFDs = append(w.ILFDs, ilfd.MustNew(
				ilfd.Conditions{ilfd.C("name", e.Name), ilfd.C("street", e.Street)},
				ilfd.Conditions{ilfd.C("speciality", e.Speciality)},
			))
		}
	}
	return w, nil
}

// MustGenerate panics on error; for benchmarks and examples.
func MustGenerate(cfg Config) *Workload {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// MatchConfig assembles the match.Config for this workload.
func (w *Workload) MatchConfig() match.Config {
	return match.Config{
		R:      w.R,
		S:      w.S,
		Attrs:  w.Attrs,
		ExtKey: w.ExtKey,
		ILFDs:  w.ILFDs,
	}
}

// ScaleMatchConfig is the canonical perf workload shared by the
// BenchmarkScale* benchmarks and benchreport's BENCH_match.json
// emitter: ~2k×2k tuples, a blocked identity rule (name ∧ phone) that
// carries the bulk of the matching table, light instance-ILFD coverage
// so the distinctness-rule set stays representative without drowning
// the sweep in rules. Deterministic (fixed seed), so timings across
// PRs measure the engine, not the data.
func ScaleMatchConfig() match.Config {
	w := MustGenerate(Config{
		Entities:    2700, // ≈2k tuples per side at 0.5 overlap
		OverlapFrac: 0.5,
		HomonymRate: 0.05,
		// Instance-ILFD coverage is deliberately light: each covered
		// entity mints a Prop.-1 distinctness rule, and the sweep cost is
		// |R|·|S|·|rules| — 1% keeps the rule set at a realistic dozens,
		// not thousands.
		ILFDCoverage: 0.01,
		Seed:         424242,
	})
	cfg := w.MatchConfig()
	cfg.Identity = []rules.IdentityRule{rules.MustNewIdentity("name-phone", []rules.Predicate{
		{Left: rules.Attr1("name"), Op: rules.Eq, Right: rules.Attr2("name")},
		{Left: rules.Attr1("phone"), Op: rules.Eq, Right: rules.Attr2("phone")},
	})}
	return cfg
}

// CoveredTruth counts the truth pairs whose R-side entity has an
// instance ILFD, i.e. the recall ceiling of the paper's technique on
// this workload.
func (w *Workload) CoveredTruth() int {
	covered := map[string]bool{}
	for _, f := range w.ILFDs {
		if len(f.Antecedent) == 2 && len(f.Consequent) == 1 && f.Consequent[0].Attr == "speciality" {
			covered[f.Antecedent.String()] = true
		}
	}
	n := 0
	for pair := range w.Truth {
		e := w.Entities[w.RToEntity[pair[0]]]
		key := ilfd.Conditions{ilfd.C("name", e.Name), ilfd.C("street", e.Street)}.Normalize()
		if covered[key.String()] {
			n++
		}
	}
	return n
}

package datagen

import (
	"fmt"
	"math/rand"

	"entityid/internal/ilfd"
	"entityid/internal/match"
	"entityid/internal/quality"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// EmployeeConfig parameterises the employee-domain generator, the
// paper's §4 motivating scenario at scale: an HR database keyed
// (name, office) and a sales-performance database keyed
// (name, territory), with territory→office knowledge as ILFDs.
type EmployeeConfig struct {
	// Employees is the universe size.
	Employees int
	// OverlapFrac is the fraction present in both databases.
	OverlapFrac float64
	// DuplicateNameRate is the fraction of employees sharing a name
	// with a colleague (the J. Smith problem).
	DuplicateNameRate float64
	// KnowledgeFrac is the fraction of territories whose office mapping
	// the DBA knows (ILFD coverage).
	KnowledgeFrac float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Validate checks ranges.
func (c EmployeeConfig) Validate() error {
	if c.Employees <= 0 {
		return fmt.Errorf("datagen: Employees = %d, want > 0", c.Employees)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"OverlapFrac", c.OverlapFrac},
		{"DuplicateNameRate", c.DuplicateNameRate},
		{"KnowledgeFrac", c.KnowledgeFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("datagen: %s = %g, want [0,1]", f.name, f.v)
		}
	}
	return nil
}

// Employee is one ground-truth person.
type Employee struct {
	ID        int
	Name      string
	Office    string
	Territory string
	QuotaMet  bool
	InHR      bool
	InSales   bool
}

// EmployeeWorkload is a generated HR-vs-sales matching problem.
type EmployeeWorkload struct {
	// HR(name, office, title), key (name, office).
	// Sales(name, territory, quota_met), key (name, territory).
	HR, Sales *relation.Relation
	Employees []Employee
	Truth     quality.TruthSet
	// ILFDs: territory=X → office=Y for the known fraction.
	ILFDs  ilfd.Set
	Attrs  []match.AttrMap
	ExtKey []string
}

var firstNames = []string{"j", "m", "a", "k", "r", "s", "t", "d"}
var lastNames = []string{
	"smith", "jones", "chen", "olson", "larson", "nguyen", "johnson",
	"peterson", "schmidt", "garcia",
}
var offices = []string{
	"minneapolis", "st.paul", "edina", "bloomington", "roseville",
	"plymouth", "eagan", "burnsville", "woodbury", "maplegrove",
	"stillwater", "hopkins",
}
var titles = []string{"account-exec", "senior-exec", "manager", "director"}

// GenerateEmployees builds an employee workload. Each office owns a
// disjoint set of territories (territory functionally determines
// office, the knowledge the ILFDs encode), and duplicate-named
// employees always sit in different offices — so {name, office} is a
// key of the integrated world and sound matching is possible exactly
// where territory knowledge exists.
func GenerateEmployees(cfg EmployeeConfig) (*EmployeeWorkload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	emps := make([]Employee, cfg.Employees)
	usedNameOffice := map[string]bool{}
	usedNameTerr := map[string]bool{}
	territoryOf := map[string]string{} // territory -> office (functional)
	terrSeq := 0
	for i := range emps {
		e := Employee{ID: i, QuotaMet: rng.Float64() < 0.8}
		if i > 0 && rng.Float64() < cfg.DuplicateNameRate {
			e.Name = emps[i-1].Name
		} else {
			e.Name = fmt.Sprintf("%s.%s%d", firstNames[rng.Intn(len(firstNames))],
				lastNames[rng.Intn(len(lastNames))], i/7)
		}
		e.Office = offices[rng.Intn(len(offices))]
		for usedNameOffice[e.Name+"\x1f"+e.Office] {
			e.Office = fmt.Sprintf("%s-%d", offices[rng.Intn(len(offices))], rng.Intn(100))
		}
		usedNameOffice[e.Name+"\x1f"+e.Office] = true
		// A fresh territory per employee, owned by their office: keeps
		// territory→office functional and (name, territory) unique.
		e.Territory = fmt.Sprintf("terr-%d", terrSeq)
		terrSeq++
		territoryOf[e.Territory] = e.Office
		usedNameTerr[e.Name+"\x1f"+e.Territory] = true

		switch f := rng.Float64(); {
		case f < cfg.OverlapFrac:
			e.InHR, e.InSales = true, true
		case f < cfg.OverlapFrac+(1-cfg.OverlapFrac)/2:
			e.InHR = true
		default:
			e.InSales = true
		}
		emps[i] = e
	}

	hrSchema := schema.MustNew("HR",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "office", Kind: value.KindString},
			{Name: "title", Kind: value.KindString},
		},
		[]string{"name", "office"},
	)
	salesSchema := schema.MustNew("Sales",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "territory", Kind: value.KindString},
			{Name: "quota_met", Kind: value.KindBool},
		},
		[]string{"name", "territory"},
	)
	w := &EmployeeWorkload{
		HR:        relation.New(hrSchema),
		Sales:     relation.New(salesSchema),
		Employees: emps,
		Truth:     quality.TruthSet{},
		Attrs: []match.AttrMap{
			{Name: "name", R: "name", S: "name"},
			{Name: "office", R: "office", S: ""},
			{Name: "territory", R: "", S: "territory"},
		},
		ExtKey: []string{"name", "office"},
	}
	hrIdx := map[int]int{}
	salesIdx := map[int]int{}
	for _, e := range emps {
		if e.InHR {
			if err := w.HR.Insert(relation.Tuple{
				value.String(e.Name), value.String(e.Office),
				value.String(titles[rng.Intn(len(titles))]),
			}); err != nil {
				return nil, fmt.Errorf("datagen: HR insert: %w", err)
			}
			hrIdx[e.ID] = w.HR.Len() - 1
		}
		if e.InSales {
			if err := w.Sales.Insert(relation.Tuple{
				value.String(e.Name), value.String(e.Territory),
				value.Bool(e.QuotaMet),
			}); err != nil {
				return nil, fmt.Errorf("datagen: Sales insert: %w", err)
			}
			salesIdx[e.ID] = w.Sales.Len() - 1
		}
		if e.InHR && e.InSales {
			w.Truth[[2]int{hrIdx[e.ID], salesIdx[e.ID]}] = true
		}
	}
	// Knowledge: territory→office for a known fraction of territories
	// that actually appear in Sales.
	for _, e := range emps {
		if !e.InSales {
			continue
		}
		if rng.Float64() < cfg.KnowledgeFrac {
			w.ILFDs = append(w.ILFDs, ilfd.MustNew(
				ilfd.Conditions{ilfd.C("territory", e.Territory)},
				ilfd.Conditions{ilfd.C("office", territoryOf[e.Territory])},
			))
		}
	}
	return w, nil
}

// MustGenerateEmployees panics on error.
func MustGenerateEmployees(cfg EmployeeConfig) *EmployeeWorkload {
	w, err := GenerateEmployees(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// MatchConfig assembles the match.Config for this workload.
func (w *EmployeeWorkload) MatchConfig() match.Config {
	return match.Config{
		R:      w.HR,
		S:      w.Sales,
		Attrs:  w.Attrs,
		ExtKey: w.ExtKey,
		ILFDs:  w.ILFDs,
	}
}

package datagen

import (
	"testing"

	"entityid/internal/match"
)

func TestMultiGenerateShapesAndDeterminism(t *testing.T) {
	cfg := MultiConfig{
		Sources: 4, Entities: 50, PresenceFrac: 0.7, HomonymRate: 0.3,
		MissingPhone: 0.2, DirtyPhone: 0.2, Seed: 99,
	}
	w, err := MultiGenerate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Relations) != 4 || len(w.Names) != 4 || len(w.ToEntity) != 4 {
		t.Fatalf("want 4 sources, got %d/%d/%d", len(w.Relations), len(w.Names), len(w.ToEntity))
	}
	for k, rel := range w.Relations {
		if rel.Len() != len(w.ToEntity[k]) {
			t.Fatalf("source %d: %d tuples but %d entity links", k, rel.Len(), len(w.ToEntity[k]))
		}
		want := "cuisine"
		if k%2 == 1 {
			want = "speciality"
		}
		if !rel.Schema().Has(want) {
			t.Fatalf("source %d missing %q", k, want)
		}
	}
	w2 := MustMultiGenerate(cfg)
	for k := range w.Relations {
		if !w.Relations[k].Equal(w2.Relations[k]) {
			t.Fatalf("source %d not deterministic", k)
		}
	}
	if len(w.ILFDs) == 0 {
		t.Fatal("no uniform ILFDs generated")
	}
}

func TestMultiPairSpecsBuildSoundMatches(t *testing.T) {
	// Every pair parity combination must assemble into a valid, sound
	// batch configuration whose matching table is exactly the planted
	// cross-source truth.
	w := MustMultiGenerate(MultiConfig{
		Sources: 4, Entities: 60, PresenceFrac: 0.6, HomonymRate: 0.2, Seed: 5,
	})
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			mp := w.Pair(i, j)
			res, err := match.Build(match.Config{
				R: w.Relations[i], S: w.Relations[j],
				Attrs: mp.Attrs, ExtKey: mp.ExtKey, ILFDs: mp.ILFDs,
			})
			if err != nil {
				t.Fatalf("pair %d-%d: %v", i, j, err)
			}
			if err := res.Verify(); err != nil {
				t.Fatalf("pair %d-%d unsound: %v", i, j, err)
			}
			want := 0
			byEntity := map[int]bool{}
			for _, id := range w.ToEntity[i] {
				byEntity[id] = true
			}
			for _, id := range w.ToEntity[j] {
				if byEntity[id] {
					want++
				}
			}
			if res.MT.Len() != want {
				t.Fatalf("pair %d-%d: %d matches, want %d planted", i, j, res.MT.Len(), want)
			}
		}
	}
}

package datagen

import (
	"testing"

	"entityid/internal/match"
)

func TestMultiGenerateShapesAndDeterminism(t *testing.T) {
	cfg := MultiConfig{
		Sources: 4, Entities: 50, PresenceFrac: 0.7, HomonymRate: 0.3,
		MissingPhone: 0.2, DirtyPhone: 0.2, Seed: 99,
	}
	w, err := MultiGenerate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Relations) != 4 || len(w.Names) != 4 || len(w.ToEntity) != 4 {
		t.Fatalf("want 4 sources, got %d/%d/%d", len(w.Relations), len(w.Names), len(w.ToEntity))
	}
	for k, rel := range w.Relations {
		if rel.Len() != len(w.ToEntity[k]) {
			t.Fatalf("source %d: %d tuples but %d entity links", k, rel.Len(), len(w.ToEntity[k]))
		}
		want := "cuisine"
		if k%2 == 1 {
			want = "speciality"
		}
		if !rel.Schema().Has(want) {
			t.Fatalf("source %d missing %q", k, want)
		}
	}
	w2 := MustMultiGenerate(cfg)
	for k := range w.Relations {
		if !w.Relations[k].Equal(w2.Relations[k]) {
			t.Fatalf("source %d not deterministic", k)
		}
	}
	if len(w.ILFDs) == 0 {
		t.Fatal("no uniform ILFDs generated")
	}
}

func TestMultiPairSpecsBuildSoundMatches(t *testing.T) {
	// Every pair parity combination must assemble into a valid, sound
	// batch configuration whose matching table is exactly the planted
	// cross-source truth.
	w := MustMultiGenerate(MultiConfig{
		Sources: 4, Entities: 60, PresenceFrac: 0.6, HomonymRate: 0.2, Seed: 5,
	})
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			mp := w.Pair(i, j)
			res, err := match.Build(match.Config{
				R: w.Relations[i], S: w.Relations[j],
				Attrs: mp.Attrs, ExtKey: mp.ExtKey, ILFDs: mp.ILFDs,
			})
			if err != nil {
				t.Fatalf("pair %d-%d: %v", i, j, err)
			}
			if err := res.Verify(); err != nil {
				t.Fatalf("pair %d-%d unsound: %v", i, j, err)
			}
			want := 0
			byEntity := map[int]bool{}
			for _, id := range w.ToEntity[i] {
				byEntity[id] = true
			}
			for _, id := range w.ToEntity[j] {
				if byEntity[id] {
					want++
				}
			}
			if res.MT.Len() != want {
				t.Fatalf("pair %d-%d: %d matches, want %d planted", i, j, res.MT.Len(), want)
			}
		}
	}
}

// TestMultiGenerateEdgeCases pins the degenerate corners the
// crash-recovery harness sweeps: K=1 (a linkless federation), an empty
// universe, and sources emptied by presence 0 must all produce valid,
// trivial ground truth — not errors or malformed specs.
func TestMultiGenerateEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		cfg  MultiConfig
		// wantErr marks configurations Validate must reject.
		wantErr bool
	}{
		{"single-source", MultiConfig{Sources: 1, Entities: 12, PresenceFrac: 1, Seed: 1}, false},
		{"empty-universe", MultiConfig{Sources: 3, Entities: 0, PresenceFrac: 0.5, Seed: 2}, false},
		{"absent-everywhere", MultiConfig{Sources: 3, Entities: 10, PresenceFrac: 0, Seed: 3}, false},
		{"single-source-empty", MultiConfig{Sources: 1, Entities: 0, Seed: 4}, false},
		{"single-entity-homonyms", MultiConfig{Sources: 2, Entities: 1, PresenceFrac: 1, HomonymRate: 1, Seed: 5}, false},
		{"zero-sources", MultiConfig{Sources: 0, Entities: 5}, true},
		{"negative-entities", MultiConfig{Sources: 2, Entities: -1}, true},
		{"bad-fraction", MultiConfig{Sources: 2, Entities: 5, PresenceFrac: 1.5}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := MultiGenerate(tc.cfg)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("config %+v accepted", tc.cfg)
				}
				return
			}
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			if len(w.Names) != tc.cfg.Sources || len(w.Relations) != tc.cfg.Sources || len(w.ToEntity) != tc.cfg.Sources {
				t.Fatalf("workload shape: %d names, %d relations, %d maps",
					len(w.Names), len(w.Relations), len(w.ToEntity))
			}
			total := 0
			for k, rel := range w.Relations {
				if rel.Schema() == nil || rel.Schema().Arity() != 4 {
					t.Fatalf("source %d schema malformed", k)
				}
				if len(w.ToEntity[k]) != rel.Len() {
					t.Fatalf("source %d: %d ground-truth entries for %d tuples", k, len(w.ToEntity[k]), rel.Len())
				}
				total += rel.Len()
			}
			truth := w.TruthClusters()
			members := 0
			for _, c := range truth {
				if len(c) == 0 {
					t.Fatal("empty truth cluster")
				}
				members += len(c)
			}
			if members != total {
				t.Fatalf("truth covers %d members, workload has %d tuples", members, total)
			}
			if tc.cfg.Entities == 0 || tc.cfg.PresenceFrac == 0 {
				if total != 0 || len(truth) != 0 {
					t.Fatalf("empty workload has %d tuples, %d clusters", total, len(truth))
				}
			}
			if tc.cfg.Sources == 1 {
				// No pairs exist; every tuple is its own entity.
				for _, c := range truth {
					if len(c) != 1 {
						t.Fatalf("single-source truth cluster of size %d", len(c))
					}
				}
			}
			// Pair specs stay well-formed on every linkable pair.
			for i := 0; i < tc.cfg.Sources; i++ {
				for j := i + 1; j < tc.cfg.Sources; j++ {
					p := w.Pair(i, j)
					if p.Left != w.Names[i] || p.Right != w.Names[j] || len(p.ExtKey) == 0 || len(p.Attrs) < 4 {
						t.Fatalf("pair (%d,%d) spec malformed: %+v", i, j, p)
					}
				}
			}
		})
	}
}

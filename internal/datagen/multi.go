// Multi-source workload generation: the K-source generalisation of the
// two-relation workload, for the hub subsystem. A universe of
// restaurant entities is projected into K autonomous sources — each
// with its own key attribute, its own subset of entities, and
// alternating knowledge (even sources record cuisine, odd sources
// record speciality, the paper's Table 5 split) — so every source pair
// reproduces the paper's situation: no common candidate key, matching
// only through the extended key {name, cuisine} with cuisine derived
// via the uniform speciality→cuisine ILFD family where a side lacks
// it.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"entityid/internal/ilfd"
	"entityid/internal/match"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// MultiConfig parameterises K-source workload generation.
type MultiConfig struct {
	// Sources is K, the number of autonomous sources (>= 1; K=1 is the
	// degenerate federation with no links, every tuple its own entity).
	Sources int
	// Entities is the size of the real-world universe (>= 0; 0 plants
	// an empty universe — every source is empty and the ground truth is
	// the empty partition).
	Entities int
	// PresenceFrac is the per-source probability that an entity is
	// modeled by the source (presence is independent per source, so
	// cross-source overlap is PresenceFrac² per pair in expectation).
	PresenceFrac float64
	// HomonymRate is the fraction of entities sharing their name with
	// another entity (forced onto a different cuisine, so the extended
	// key stays a key of the integrated world).
	HomonymRate float64
	// MissingPhone / DirtyPhone control per-source phone noise, the
	// attribute the merged cross-source view surfaces conflicts on.
	MissingPhone, DirtyPhone float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Validate checks the configuration ranges. The degenerate corners are
// legal: a single source yields a linkless hub with singleton ground
// truth, and an empty universe (or PresenceFrac 0) yields empty
// sources with empty ground truth — both must produce trivially valid
// workloads, not degenerate specs (crash-recovery harnesses sweep
// these corners).
func (c MultiConfig) Validate() error {
	if c.Sources < 1 {
		return fmt.Errorf("datagen: Sources = %d, want >= 1", c.Sources)
	}
	if c.Entities < 0 {
		return fmt.Errorf("datagen: Entities = %d, want >= 0", c.Entities)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"PresenceFrac", c.PresenceFrac},
		{"HomonymRate", c.HomonymRate},
		{"MissingPhone", c.MissingPhone},
		{"DirtyPhone", c.DirtyPhone},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("datagen: %s = %g, want [0,1]", f.name, f.v)
		}
	}
	return nil
}

// MultiWorkload is a generated K-source integration problem with
// ground truth.
type MultiWorkload struct {
	// Names and Relations hold the K sources in order. Source k's
	// schema is (name, loc, cuisine|speciality, phone) with key
	// (name, loc): even sources record cuisine, odd record speciality.
	Names     []string
	Relations []*relation.Relation
	// ToEntity maps (source, tuple position) to entity ID.
	ToEntity [][]int
	// ILFDs is the uniform speciality→cuisine family over the
	// vocabulary the universe actually uses.
	ILFDs ilfd.Set
}

// multiEntity is one ground-truth entity of the K-source universe.
type multiEntity struct {
	name, speciality, cuisine, phone string
}

// MultiGenerate builds a K-source workload from the configuration.
func MultiGenerate(cfg MultiConfig) (*MultiWorkload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Universe: names unique except controlled homonyms; (name, cuisine)
	// unique outright, because {name, cuisine} is every pair's extended
	// key and must be a key of the integrated world (§4.1).
	entities := make([]multiEntity, cfg.Entities)
	usedNC := map[string]bool{}
	for i := range entities {
		sc := specialityCuisine[rng.Intn(len(specialityCuisine))]
		e := multiEntity{
			speciality: sc[0],
			cuisine:    sc[1],
			phone:      fmt.Sprintf("612-%03d-%04d", rng.Intn(1000), rng.Intn(10000)),
		}
		if i > 0 && rng.Float64() < cfg.HomonymRate {
			e.name = entities[i-1].name
		} else {
			e.name = fmt.Sprintf("%s-%d", nameStems[rng.Intn(len(nameStems))], i)
		}
		// Force (name, cuisine) uniqueness; a homonym chain that exhausts
		// the cuisine vocabulary falls back to a fresh unique name.
		for tries := 0; usedNC[e.name+"\x1f"+e.cuisine]; tries++ {
			if tries >= 4*len(specialityCuisine) {
				e.name = fmt.Sprintf("%s-%d", nameStems[rng.Intn(len(nameStems))], i)
				continue
			}
			sc = specialityCuisine[rng.Intn(len(specialityCuisine))]
			e.speciality, e.cuisine = sc[0], sc[1]
		}
		usedNC[e.name+"\x1f"+e.cuisine] = true
		entities[i] = e
	}

	w := &MultiWorkload{}
	for k := 0; k < cfg.Sources; k++ {
		name := fmt.Sprintf("src%d", k)
		know := "cuisine"
		if k%2 == 1 {
			know = "speciality"
		}
		sch := schema.MustNew(name,
			[]schema.Attribute{
				{Name: "name", Kind: value.KindString},
				{Name: "loc", Kind: value.KindString},
				{Name: know, Kind: value.KindString},
				{Name: "phone", Kind: value.KindString},
			},
			[]string{"name", "loc"},
		)
		w.Names = append(w.Names, name)
		w.Relations = append(w.Relations, relation.New(sch))
		w.ToEntity = append(w.ToEntity, nil)
	}

	for id, e := range entities {
		for k := 0; k < cfg.Sources; k++ {
			if rng.Float64() >= cfg.PresenceFrac {
				continue
			}
			rel := w.Relations[k]
			// Source-local key component, regenerated until (name, loc)
			// is fresh within the source.
			loc := fmt.Sprintf("%d %s st", 100+rng.Intn(9900), nameStems[rng.Intn(len(nameStems))])
			for rel.LookupKey(value.String(e.name), value.String(loc)) >= 0 {
				loc = fmt.Sprintf("%d %s st", 100+rng.Intn(9900), nameStems[rng.Intn(len(nameStems))])
			}
			phone := value.String(e.phone)
			if rng.Float64() < cfg.MissingPhone {
				phone = value.Null
			} else if rng.Float64() < cfg.DirtyPhone {
				phone = value.String(fmt.Sprintf("612-%03d-%04d", rng.Intn(1000), rng.Intn(10000)))
			}
			know := value.String(e.cuisine)
			if k%2 == 1 {
				know = value.String(e.speciality)
			}
			t := relation.Tuple{value.String(e.name), value.String(loc), know, phone}
			if err := rel.Insert(t); err != nil {
				return nil, fmt.Errorf("datagen: source %s insert: %w", w.Names[k], err)
			}
			w.ToEntity[k] = append(w.ToEntity[k], id)
		}
	}

	// Knowledge: the uniform speciality→cuisine family over the
	// specialities the universe uses (Table 8's ILFD table as rules).
	seenSpec := map[string]bool{}
	for _, e := range entities {
		if seenSpec[e.speciality] {
			continue
		}
		seenSpec[e.speciality] = true
		w.ILFDs = append(w.ILFDs, ilfd.MustNew(
			ilfd.Conditions{ilfd.C("speciality", e.speciality)},
			ilfd.Conditions{ilfd.C("cuisine", e.cuisine)},
		))
	}
	return w, nil
}

// MustMultiGenerate panics on error; for benchmarks and examples.
func MustMultiGenerate(cfg MultiConfig) *MultiWorkload {
	w, err := MultiGenerate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// MultiPair is the identification knowledge for one source pair,
// expressed over match types so the hub layer (or a direct
// federate/match caller) can assemble it into its own configuration.
type MultiPair struct {
	Left, Right string
	Attrs       []match.AttrMap
	ExtKey      []string
	ILFDs       ilfd.Set
}

// Pair assembles the link knowledge between sources i and j: attribute
// correspondences with per-source loc attributes kept apart, the
// {name, cuisine} extended key, and the uniform ILFD family whenever a
// side needs cuisine derived from speciality.
func (w *MultiWorkload) Pair(i, j int) MultiPair {
	spec := MultiPair{
		Left:   w.Names[i],
		Right:  w.Names[j],
		ExtKey: []string{"name", "cuisine"},
		Attrs: []match.AttrMap{
			{Name: "name", R: "name", S: "name"},
			{Name: "loc_" + w.Names[i], R: "loc", S: ""},
			{Name: "loc_" + w.Names[j], R: "", S: "loc"},
			{Name: "phone", R: "phone", S: "phone"},
		},
	}
	cuisine := match.AttrMap{Name: "cuisine"}
	if i%2 == 0 {
		cuisine.R = "cuisine"
	}
	if j%2 == 0 {
		cuisine.S = "cuisine"
	}
	spec.Attrs = append(spec.Attrs, cuisine)
	if i%2 == 1 || j%2 == 1 {
		speciality := match.AttrMap{Name: "speciality"}
		if i%2 == 1 {
			speciality.R = "speciality"
		}
		if j%2 == 1 {
			speciality.S = "speciality"
		}
		spec.Attrs = append(spec.Attrs, speciality)
		spec.ILFDs = w.ILFDs
	}
	return spec
}

// TruthClusters returns the expected global partition: for every
// entity present in at least one source, its member list as
// (source ordinal, tuple position) pairs, sorted; clusters sorted by
// their first member.
func (w *MultiWorkload) TruthClusters() [][][2]int {
	byEntity := map[int][][2]int{}
	for k := range w.Relations {
		for idx, id := range w.ToEntity[k] {
			byEntity[id] = append(byEntity[id], [2]int{k, idx})
		}
	}
	out := make([][][2]int, 0, len(byEntity))
	for _, members := range byEntity {
		sort.Slice(members, func(a, b int) bool {
			if members[a][0] != members[b][0] {
				return members[a][0] < members[b][0]
			}
			return members[a][1] < members[b][1]
		})
		out = append(out, members)
	}
	sort.Slice(out, func(a, b int) bool {
		ma, mb := out[a][0], out[b][0]
		if ma[0] != mb[0] {
			return ma[0] < mb[0]
		}
		return ma[1] < mb[1]
	})
	return out
}

// Package disk is the tiered storage backend: cold cluster records
// and cold pair tables spill to CRC-framed section files (the PR 4
// WAL frame format) and page back in on demand, keeping resident
// memory bounded by the configured hot-tier budget.
//
// The spill tier is a CACHE, not a durability layer. Durability stays
// with the WAL and snapshots; Open wipes any leftover spill files from
// a previous process, because recovery rebuilds every record it needs
// by replay. That makes crash-consistency trivial — there is no spill
// state to fsck — and means spill writes never fsync.
//
// Tier discipline for cluster records:
//
//   - Reads page a cold record in, install it hot, and evict the
//     least-recently-used records back down to budget. Evicting a
//     record whose body is already on disk is free (the frame stays
//     addressable); only never-spilled records pay a write.
//
//   - Writer-side lookups (Members) page in WITHOUT evicting: the
//     commit path must never lose a record between its uniqueness
//     check and its merge publication. Publish rebalances at the end
//     of the commit instead.
//
//   - If a spill write fails, the victim simply stays resident and the
//     eviction pass stops: the tier runs over budget rather than
//     losing data. Publish therefore never fails.
//
// Returned member slices are immutable and remain valid after the
// record is evicted or superseded — eviction drops the store's
// reference, not the caller's.
//
// Concurrency: one mutex serialises the whole tier. This is the
// capacity tier, not the fast path — the hub's hot reads are served
// from resident records under the same single lock, which profiles
// fine next to the page-in I/O this backend exists to perform. The
// always-hot mem backend keeps the sharded lock-striped layout for
// read scalability.
package disk

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"entityid/internal/match"
	"entityid/internal/obs"
	"entityid/internal/store"
	"entityid/internal/wal"
)

var (
	mTierReads = obs.Default.CounterVec("store_tier_reads_total",
		"Cluster-record reads by serving tier (disk backend)", "tier")
	tierHot  = mTierReads.With("hot")
	tierCold = mTierReads.With("cold")

	mSpills = obs.Default.CounterVec("store_tier_spills_total",
		"Bodies written to the spill tier", "kind")
	spillCluster = mSpills.With("cluster")
	spillPair    = mSpills.With("pair")

	mPageIns = obs.Default.CounterVec("store_tier_pageins_total",
		"Bodies read back from the spill tier", "kind")
	pageInCluster = mPageIns.With("cluster")
	pageInPair    = mPageIns.With("pair")

	mPageInSeconds = obs.Default.LatencyHistogramVec("store_tier_pagein_seconds",
		"Spill-tier page-in latency", "kind")
	pageInClusterSec = mPageInSeconds.With("cluster")
	pageInPairSec    = mPageInSeconds.With("pair")

	mSpillErrors = obs.Default.Counter("store_tier_spill_errors_total",
		"Failed spill writes (the victim stays resident)")

	mHotEntries = obs.Default.Gauge("store_hot_cluster_entries",
		"Members across resident cluster records (disk backend; last backend to update wins)")
)

// rec is the index entry for one published cluster. members is nil
// while the body lives only in the spill file; size, the member count,
// is always known so merge accounting never pages in.
type rec struct {
	members []store.Node
	size    int
	off     int64 // spill frame offset; -1 when never spilled
	flen    int64 // spill frame length
	elem    *elem // LRU position while resident
}

// elem is a node of the intrusive LRU list (front = most recent).
type elem struct {
	r          *rec
	prev, next *elem
}

// lruList is a tiny intrusive doubly-linked list; container/list would
// do, but an intrusive list keeps rec↔element wiring explicit.
type lruList struct {
	front, back *elem
	n           int
}

func (l *lruList) pushFront(r *rec) *elem {
	e := &elem{r: r, next: l.front}
	if l.front != nil {
		l.front.prev = e
	}
	l.front = e
	if l.back == nil {
		l.back = e
	}
	l.n++
	return e
}

func (l *lruList) remove(e *elem) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.back = e.prev
	}
	e.prev, e.next = nil, nil
	l.n--
}

func (l *lruList) moveToFront(e *elem) {
	if l.front == e {
		return
	}
	l.remove(e)
	e.next = l.front
	if l.front != nil {
		l.front.prev = e
	}
	l.front = e
	if l.back == nil {
		l.back = e
	}
	l.n++
}

// clusters is the tiered cluster-record store.
type clusters struct {
	//entitylint:lock rank=100
	mu         sync.Mutex
	byNode     map[store.Node]*rec
	lru        lruList
	hotEntries int
	cold       int
	budget     int // HotClusterEntries; 0 = unbounded

	f     *os.File // append-only spill file
	wsize int64    // logical end of f (append offset)
	seq   uint64   // next spill frame ordinal

	merged  atomic.Int64
	hits    atomic.Int64
	misses  atomic.Int64
	spills  atomic.Int64
	pageIns atomic.Int64
}

func (c *clusters) Read(n store.Node) ([]store.Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.byNode[n]
	if r == nil {
		return nil, nil
	}
	if r.members != nil {
		c.hits.Add(1)
		tierHot.Inc()
		c.lru.moveToFront(r.elem)
		return r.members, nil
	}
	c.misses.Add(1)
	tierCold.Inc()
	ms, err := c.load(r)
	if err != nil {
		return nil, err
	}
	c.install(r, ms)
	c.evict()
	return ms, nil
}

func (c *clusters) Members(n store.Node) ([]store.Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.byNode[n]
	if r == nil {
		return []store.Node{n}, nil
	}
	if r.members != nil {
		c.lru.moveToFront(r.elem)
		return r.members, nil
	}
	c.misses.Add(1)
	tierCold.Inc()
	ms, err := c.load(r)
	if err != nil {
		return nil, err
	}
	// No evict here: everything the commit path pages in stays
	// resident until Publish rebalances (see package comment).
	c.install(r, ms)
	return ms, nil
}

func (c *clusters) Has(n store.Node) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byNode[n] != nil
}

func (c *clusters) Publish(members []store.Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := 0
	seen := map[*rec]bool{}
	for _, m := range members {
		if r := c.byNode[m]; r != nil && !seen[r] {
			seen[r] = true
			prev += r.size - 1
			// Supersede: the new member set is a superset, so every
			// byNode entry pointing at r is overwritten below.
			if r.members != nil {
				c.lru.remove(r.elem)
				r.elem = nil
				r.members = nil
				c.hotEntries -= r.size
			} else {
				c.cold--
			}
		}
	}
	nr := &rec{members: members, size: len(members), off: -1}
	nr.elem = c.lru.pushFront(nr)
	c.hotEntries += nr.size
	for _, m := range members {
		c.byNode[m] = nr
	}
	c.merged.Add(int64(len(members) - 1 - prev))
	c.evict()
	mHotEntries.Set(int64(c.hotEntries))
}

func (c *clusters) Merged() int64 { return c.merged.Load() }

// Partition reads every record — paging cold bodies without installing
// them, so a snapshot scan does not thrash the hot tier.
func (c *clusters) Partition() ([][]store.Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[*rec]bool{}
	var out [][]store.Node
	for _, r := range c.byNode {
		if seen[r] {
			continue
		}
		seen[r] = true
		ms := r.members
		if ms == nil {
			var err error
			ms, err = c.load(r)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, ms)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0].Src != out[b][0].Src {
			return out[a][0].Src < out[b][0].Src
		}
		return out[a][0].Idx < out[b][0].Idx
	})
	return out, nil
}

func (c *clusters) Stats() store.ClusterStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return store.ClusterStats{
		HotRecords:  c.lru.n,
		HotEntries:  c.hotEntries,
		ColdRecords: c.cold,
		Budget:      c.budget,
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Spills:      c.spills.Load(),
		PageIns:     c.pageIns.Load(),
	}
}

// install makes a paged-in body resident. Caller holds c.mu.
func (c *clusters) install(r *rec, ms []store.Node) {
	r.members = ms
	r.elem = c.lru.pushFront(r)
	c.hotEntries += r.size
	c.cold--
	mHotEntries.Set(int64(c.hotEntries))
}

// evict spills least-recently-used records until the hot tier fits its
// budget. A record already on disk evicts for free; a spill-write
// failure keeps the victim resident and stops the pass. Caller holds
// c.mu.
func (c *clusters) evict() {
	if c.budget <= 0 {
		return
	}
	for c.hotEntries > c.budget && c.lru.back != nil {
		e := c.lru.back
		r := e.r
		if r.off < 0 {
			if err := c.spill(r); err != nil {
				mSpillErrors.Inc()
				return
			}
		}
		c.lru.remove(e)
		r.elem = nil
		r.members = nil
		c.hotEntries -= r.size
		c.cold++
	}
	mHotEntries.Set(int64(c.hotEntries))
}

// spill appends r's body to the spill file and records its address.
// Caller holds c.mu.
func (c *clusters) spill(r *rec) error {
	payload, err := json.Marshal(nodePairs(r.members))
	if err != nil {
		return err
	}
	c.seq++
	frame, err := wal.EncodeRecord(c.seq, payload)
	if err != nil {
		return err
	}
	if _, err := c.f.WriteAt(frame, c.wsize); err != nil {
		return err
	}
	r.off = c.wsize
	r.flen = int64(len(frame))
	c.wsize += int64(len(frame))
	c.spills.Add(1)
	spillCluster.Inc()
	return nil
}

// load reads r's body back from the spill file without changing tier
// state. Caller holds c.mu.
func (c *clusters) load(r *rec) ([]store.Node, error) {
	start := time.Now()
	sc := wal.NewFrameScanner(io.NewSectionReader(c.f, r.off, r.flen))
	frame, _, err := sc.Next()
	if err != nil {
		return nil, fmt.Errorf("disk: cluster page-in at %d: %w", r.off, err)
	}
	var ps [][2]int
	if err := json.Unmarshal(frame.Payload, &ps); err != nil {
		return nil, fmt.Errorf("disk: cluster page-in at %d: %w", r.off, err)
	}
	if len(ps) != r.size {
		return nil, fmt.Errorf("disk: cluster page-in at %d: %d members on disk, index says %d", r.off, len(ps), r.size)
	}
	ms := make([]store.Node, len(ps))
	for i, p := range ps {
		ms[i] = store.Node{Src: p[0], Idx: p[1]}
	}
	c.pageIns.Add(1)
	pageInCluster.Inc()
	pageInClusterSec.Since(start)
	return ms, nil
}

func nodePairs(ms []store.Node) [][2]int {
	ps := make([][2]int, len(ms))
	for i, m := range ms {
		ps[i] = [2]int{m.Src, m.Idx}
	}
	return ps
}

func pairOf(pr [2]int) match.Pair {
	return match.Pair{RIndex: pr[0], SIndex: pr[1]}
}

// pairHdr is the first chunk of a spilled pair table.
type pairHdr struct {
	RLen  int `json:"rlen"`
	SLen  int `json:"slen"`
	Pairs int `json:"pairs"`
}

// pairChunk is the pair count per continuation chunk: small enough to
// stay far under the frame cap even when tests lower it is not a goal
// (spill failures are tolerated); large enough to amortise framing.
const pairChunk = 1 << 16

// pairs spills pair tables to content-addressed section files, one per
// link ordinal, replaced atomically on each save.
type pairs struct {
	//entitylint:lock rank=110
	mu    sync.Mutex
	dir   string
	files map[int]string

	spills  atomic.Int64
	pageIns atomic.Int64
}

func (p *pairs) Save(id int, tab store.PairTab) error {
	var buf fileBuf
	sw := wal.NewSectionWriter(&buf)
	hdr, err := json.Marshal(pairHdr{RLen: tab.RLen, SLen: tab.SLen, Pairs: len(tab.Pairs)})
	if err != nil {
		return err
	}
	if err := sw.WriteChunk(hdr); err != nil {
		return err
	}
	for lo := 0; lo < len(tab.Pairs); lo += pairChunk {
		hi := min(lo+pairChunk, len(tab.Pairs))
		ps := make([][2]int, hi-lo)
		for i, pr := range tab.Pairs[lo:hi] {
			ps[i] = [2]int{pr.RIndex, pr.SIndex}
		}
		payload, err := json.Marshal(ps)
		if err != nil {
			return err
		}
		if err := sw.WriteChunk(payload); err != nil {
			return err
		}
	}
	name := fmt.Sprintf("p%d-%s.sec", id, sw.Sum()[:16])
	path := filepath.Join(p.dir, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	p.mu.Lock()
	old, had := p.files[id]
	p.files[id] = path
	p.mu.Unlock()
	if had && old != path {
		os.Remove(old)
	}
	p.spills.Add(1)
	spillPair.Inc()
	return nil
}

func (p *pairs) Load(id int) (store.PairTab, error) {
	start := time.Now()
	p.mu.Lock()
	path, ok := p.files[id]
	p.mu.Unlock()
	if !ok {
		return store.PairTab{}, fmt.Errorf("disk: pair %d not spilled", id)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return store.PairTab{}, fmt.Errorf("disk: pair %d page-in: %w", id, err)
	}
	sc := wal.NewFrameScanner(bytes.NewReader(data))
	first, _, err := sc.Next()
	if err != nil {
		return store.PairTab{}, fmt.Errorf("disk: pair %d page-in: %w", id, err)
	}
	var hdr pairHdr
	if err := json.Unmarshal(first.Payload, &hdr); err != nil {
		return store.PairTab{}, fmt.Errorf("disk: pair %d page-in: %w", id, err)
	}
	tab := store.PairTab{RLen: hdr.RLen, SLen: hdr.SLen}
	for len(tab.Pairs) < hdr.Pairs {
		rec, _, err := sc.Next()
		if err != nil {
			return store.PairTab{}, fmt.Errorf("disk: pair %d page-in: truncated table: %w", id, err)
		}
		var ps [][2]int
		if err := json.Unmarshal(rec.Payload, &ps); err != nil {
			return store.PairTab{}, fmt.Errorf("disk: pair %d page-in: %w", id, err)
		}
		for _, pr := range ps {
			tab.Pairs = append(tab.Pairs, pairOf(pr))
		}
	}
	if len(tab.Pairs) != hdr.Pairs {
		return store.PairTab{}, fmt.Errorf("disk: pair %d page-in: %d pairs on disk, header says %d", id, len(tab.Pairs), hdr.Pairs)
	}
	p.pageIns.Add(1)
	pageInPair.Inc()
	pageInPairSec.Since(start)
	return tab, nil
}

func (p *pairs) Stats() store.PairStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return store.PairStats{
		Spilled: len(p.files),
		Spills:  p.spills.Load(),
		PageIns: p.pageIns.Load(),
	}
}

// fileBuf is a minimal append-only byte buffer implementing io.Writer.
type fileBuf struct{ b []byte }

func (f *fileBuf) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

// Backend is the disk-tiered storage backend.
type Backend struct {
	dir       string
	caps      store.Caps
	c         clusters
	p         pairs
	t         store.ResidentTuples
	closeOnce sync.Once
	closeErr  error
}

// Open prepares the spill tier under dir. Any leftover spill state
// from a previous process is discarded: the tier only caches records
// the hub republishes during recovery, so stale files are garbage, and
// wiping them is what makes crash recovery correct by construction.
func Open(dir string, caps store.Caps) (*Backend, error) {
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("disk: reset spill tier: %w", err)
	}
	pairDir := filepath.Join(dir, "pairs")
	if err := os.MkdirAll(pairDir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "clusters.spill"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	b := &Backend{dir: dir, caps: caps}
	b.c = clusters{byNode: map[store.Node]*rec{}, budget: caps.HotClusterEntries, f: f}
	b.p = pairs{dir: pairDir, files: map[int]string{}}
	return b, nil
}

func (b *Backend) Name() string             { return "disk" }
func (b *Backend) Caps() store.Caps         { return b.caps }
func (b *Backend) Clusters() store.Clusters { return &b.c }
func (b *Backend) Pairs() store.Pairs       { return &b.p }
func (b *Backend) Tuples() store.Tuples     { return &b.t }

func (b *Backend) Close() error {
	b.closeOnce.Do(func() {
		b.closeErr = b.c.f.Close()
	})
	return b.closeErr
}

// Package store is the hub's storage seam: narrow interfaces for the
// three kinds of committed state the hub serves — per-source tuples,
// per-pair matching tables, and cluster records — plus the generic
// merge logic that is identical across backends.
//
// The hub never reaches into concrete maps; it holds a Backend and
// talks to whatever that backend returns. store/mem is the default
// and reproduces the pre-seam in-memory layout bit for bit. store/disk
// bounds resident memory by spilling cold cluster records and cold
// pair tables to CRC-framed section files and paging them back on
// demand.
//
// Concurrency contract: Clusters readers (Read, Has, Merged, Stats)
// may run concurrently with each other and with the single mutator.
// Mutations (Publish) and writer-side reads (Members, CheckMerge,
// Apply) are serialized by the hub's commit lock; backends may rely on
// at most one of these running at a time. Slices returned by Read and
// Members are immutable once returned — callers must not modify them,
// and backends must never mutate a slice they have handed out, even
// after the record is superseded or evicted.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"entityid/internal/federate"
	"entityid/internal/relation"
)

// Node identifies one tuple: source ordinal and tuple index within
// that source. It is the key of the cluster-record store.
type Node struct {
	Src int
	Idx int
}

// SortNodes orders nodes by (Src, Idx), the canonical member order of
// every published cluster record.
func SortNodes(ns []Node) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Src != ns[j].Src {
			return ns[i].Src < ns[j].Src
		}
		return ns[i].Idx < ns[j].Idx
	})
}

// ErrUniqueness marks a merge rejected because it would place two
// tuples of the same real-world source into one cluster, violating the
// paper's §3.2 instance-level uniqueness assumption transitively.
// Callers classify rejections with errors.Is(err, ErrUniqueness);
// anything else out of CheckMerge is a storage fault.
var ErrUniqueness = errors.New("transitive uniqueness violation")

// ClusterStats describes the cluster store's tiers. Always-hot
// backends report zero cold records and zero tier-traffic counters.
type ClusterStats struct {
	HotRecords  int   // multi-member records resident in memory
	HotEntries  int   // total members across resident records (the budgeted unit)
	ColdRecords int   // records whose members live only in the spill tier
	Budget      int   // configured HotEntries ceiling; 0 = unbounded
	Hits        int64 // reads served from the hot tier
	Misses      int64 // reads that had to page in
	Spills      int64 // record bodies written to the spill tier
	PageIns     int64 // record bodies read back from the spill tier
}

// Clusters is the cluster-record store: the mapping from a node to the
// sorted member set of its entity cluster. Nodes without a record are
// singletons.
type Clusters interface {
	// Read returns the cluster members containing n, or nil when n is
	// a singleton (or unknown). Safe for concurrent use; the returned
	// slice must not be modified.
	Read(n Node) ([]Node, error)

	// Members is the writer-side Read: it returns {n} itself for a
	// singleton instead of nil, and tiered backends keep the record
	// resident until the next Publish. Serialized by the commit lock.
	Members(n Node) ([]Node, error)

	// Has reports whether n currently has a multi-member record,
	// without touching tier state. Serialized by the commit lock.
	Has(n Node) bool

	// Publish installs a new record mapping every member to the given
	// sorted member set, superseding the members' previous records.
	// The caller's member set must be a superset of every superseded
	// record (always true for union-style merges). Publish is
	// infallible: a tiered backend that cannot spill keeps records
	// resident (over budget) rather than losing them.
	Publish(members []Node)

	// Merged returns the total merge count: for each record,
	// len(members)-1, summed. Safe for concurrent use.
	Merged() int64

	// Partition returns every record's member set, sorted by first
	// member, without disturbing tier state. Serialized by the commit
	// lock (snapshot cuts hold it).
	Partition() ([][]Node, error)

	// Stats snapshots tier occupancy and traffic counters.
	Stats() ClusterStats
}

// PairTab is the portable state of one pairwise federation. The hub
// stores it with Pairs in COMMIT ORDER (federate.ExportOrdered), not
// sorted: snapshot cuts reconstruct "the first n commits" as a plain
// prefix, so a spill that happens after a cut still serves the cut.
type PairTab = federate.State

// PairStats describes the pair store's spill tier.
type PairStats struct {
	Spilled int   // pair tables currently held by the store
	Spills  int64 // Save calls (table bodies written)
	PageIns int64 // Load calls (table bodies read back)
}

// Pairs is the per-pair matching-table store. The hub spills a pair's
// exported federation state here when the pair falls out of the hot
// budget, and loads it back before the pair's next mutation or when a
// snapshot needs a cold pair's table.
type Pairs interface {
	// Save stores the pair table for link ordinal id, replacing any
	// previous save.
	Save(id int, tab PairTab) error

	// Load returns the most recently saved table for id. Loading an
	// id that was never saved is an error.
	Load(id int) (PairTab, error)

	// Stats snapshots spill-tier occupancy and traffic counters.
	Stats() PairStats
}

// Tuples is the per-source tuple store. Both current backends keep
// every relation resident — the live pairwise matchers require
// resident attribute access — so the interface registers canonical
// relations and hands back the resident handle; it is the seam a
// future tiered tuple store plugs into.
type Tuples interface {
	// Attach registers source ordinal si's canonical relation.
	// Ordinals arrive densely, in order.
	Attach(si int, rel *relation.Relation)

	// Relation returns the resident handle for source si.
	Relation(si int) *relation.Relation
}

// Caps is a backend's residency budget. Zero means unbounded (the mem
// backend); the disk backend evicts past these.
type Caps struct {
	HotClusterEntries int // Σ members of resident cluster records
	HotPairs          int // live federations the hub keeps resident
}

// Backend bundles the three stores plus identity and lifecycle.
type Backend interface {
	Name() string
	Caps() Caps
	Clusters() Clusters
	Pairs() Pairs
	Tuples() Tuples

	// Close releases backend resources. Idempotent.
	Close() error
}

// ResidentTuples is the always-resident Tuples implementation shared
// by both backends.
type ResidentTuples struct {
	//entitylint:lock rank=100
	mu   sync.RWMutex
	rels []*relation.Relation
}

func (t *ResidentTuples) Attach(si int, rel *relation.Relation) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.rels) <= si {
		t.rels = append(t.rels, nil)
	}
	t.rels[si] = rel
}

func (t *ResidentTuples) Relation(si int) *relation.Relation {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if si < 0 || si >= len(t.rels) {
		return nil
	}
	return t.rels[si]
}

// CheckMerge verifies that merging node n with the clusters of the
// given partner nodes cannot place two tuples of one source into the
// same cluster. Backend-generic: records are identified by their lead
// (first, smallest) member, which is unique per record because records
// partition the node space. srcName renders a source ordinal for the
// rejection message. Serialized by the commit lock.
func CheckMerge(c Clusters, n Node, partners []Node, srcName func(int) string) error {
	if len(partners) == 0 {
		return nil
	}
	bySrc := make(map[int]Node, len(partners)+1)
	bySrc[n.Src] = n
	seen := make(map[Node]bool, len(partners)) // lead (first) member -> cluster absorbed
	absorb := func(m Node) error {
		if prev, ok := bySrc[m.Src]; ok {
			if prev != m {
				return fmt.Errorf("%w: tuples %d and %d of source %q would join one cluster",
					ErrUniqueness, prev.Idx, m.Idx, srcName(m.Src))
			}
			return nil
		}
		bySrc[m.Src] = m
		return nil
	}
	for _, p := range partners {
		ms, err := c.Members(p)
		if err != nil {
			return err
		}
		// Dedup clusters by their lead member: records partition the
		// node space, so the sorted member set's first node uniquely
		// identifies the record (and a singleton is its own lead).
		if seen[ms[0]] {
			continue
		}
		seen[ms[0]] = true
		for _, m := range ms {
			if err := absorb(m); err != nil {
				return err
			}
		}
	}
	return nil
}

// Apply merges node n with its partners' clusters and publishes the
// union record, returning the sorted member set. Must follow a
// successful CheckMerge under the same commit-lock critical section.
// A nil error is the only acceptable outcome after the merge has been
// logged; backends keep everything Apply needs resident between
// CheckMerge and Apply (see Members).
func Apply(c Clusters, n Node, partners []Node) ([]Node, error) {
	if len(partners) == 0 && !c.Has(n) {
		return nil, nil
	}
	memberSet := make(map[Node]bool)
	add := func(m Node) error {
		if memberSet[m] {
			return nil
		}
		ms, err := c.Members(m)
		if err != nil {
			return err
		}
		for _, x := range ms {
			memberSet[x] = true
		}
		return nil
	}
	if err := add(n); err != nil {
		return nil, err
	}
	for _, p := range partners {
		if err := add(p); err != nil {
			return nil, err
		}
	}
	members := make([]Node, 0, len(memberSet))
	for m := range memberSet {
		members = append(members, m)
	}
	SortNodes(members)
	c.Publish(members)
	return members, nil
}

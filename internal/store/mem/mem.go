// Package mem is the default, always-resident storage backend: the
// pre-seam in-memory layout of the hub, verbatim. Cluster records live
// in a node→record map striped across lock shards; pair tables are
// held as plain exported states (the hub only spills pairs when a
// backend advertises a hot-pair budget, which mem does not, so the
// pair store here exists for interface completeness and tests).
//
// The design splits the cluster store along the reader/writer
// asymmetry:
//
//   - Cluster records are immutable. A record is the complete, sorted
//     member set of one cluster; a merge builds a fresh record and
//     republishes it for every member. A reader that has loaded a
//     record therefore holds a committed member set with no further
//     locking — there is nothing it could observe half-updated.
//
//   - Readers take only one shard's read lock, and only around the map
//     lookup itself. Point reads on different shards share nothing; no
//     read path takes a hub-global lock.
//
//   - Writers are already serialised by the hub's commit lock, so
//     writer-side lookups need no shard lock at all, and shard write
//     locks are held only for the map stores that publish a record.
//
// Readers racing a merge see either the old record or the new one for
// any given node — never a torn member set. Singletons are implicit: a
// node with no record is its own cluster, so unmatched inserts publish
// nothing and touch no shard lock.
package mem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"entityid/internal/store"
)

// shardCount stripes the node→record map; a power of two so shardOf
// reduces to a mask. 32 shards keep per-shard reader locks uncontended
// well past the core counts one process serves.
const shardCount = 32

// rec is one published cluster: its members sorted by (source ordinal,
// tuple index). Immutable after publication.
type rec struct {
	members []store.Node
}

// shard is one lock stripe of the store.
type shard struct {
	// Shard locks are never nested (Publish locks one shard at a time),
	// so one rank covers all stripes.
	//entitylint:lock rank=100
	mu  sync.RWMutex
	rec map[store.Node]*rec
	// pad spaces shards onto distinct cache lines so reader locks on
	// neighbouring shards do not false-share.
	_ [64]byte
}

// clusters is the sharded node → cluster map plus the running merge
// count that makes Stats O(sources) instead of O(hub).
type clusters struct {
	shards [shardCount]shard
	// merged is Σ (cluster size − 1) over all non-singleton clusters:
	// the number of tuples clustering has folded away. Updated at
	// publish time under the commit lock; read atomically.
	merged atomic.Int64
	// recs/entries track hot-tier occupancy for Stats (everything is
	// hot here). Updated under the commit lock, read atomically.
	recs    atomic.Int64
	entries atomic.Int64
}

// shardOf maps a node onto its lock stripe.
//
//entitylint:hotpath
func shardOf(n store.Node) int {
	h := uint64(uint32(n.Src))*0x9e3779b1 ^ uint64(uint32(n.Idx))*0x85ebca77
	return int((h ^ h>>16) & (shardCount - 1))
}

//entitylint:hotpath noalloc,noobs,noio
func (c *clusters) Read(n store.Node) ([]store.Node, error) {
	sh := &c.shards[shardOf(n)]
	sh.mu.RLock()
	r := sh.rec[n]
	sh.mu.RUnlock()
	if r == nil {
		return nil, nil
	}
	return r.members, nil
}

// recOf is the writer-side lookup. Callers hold the hub's commit lock —
// the store's single-mutator guarantee — so no shard lock is needed.
//
//entitylint:hotpath
func (c *clusters) recOf(n store.Node) *rec {
	return c.shards[shardOf(n)].rec[n]
}

func (c *clusters) Members(n store.Node) ([]store.Node, error) {
	if r := c.recOf(n); r != nil {
		return r.members, nil
	}
	return []store.Node{n}, nil
}

//entitylint:hotpath
func (c *clusters) Has(n store.Node) bool {
	return c.recOf(n) != nil
}

// Publish installs one cluster: a fresh immutable record stored for
// every member, one shard at a time (shard write locks are never
// nested). A reader of any member sees either its old record or the
// new one — both committed states. Writer-side; the only place shard
// write locks are taken.
func (c *clusters) Publish(members []store.Node) {
	prev := 0
	prevRecs := 0
	seen := map[*rec]bool{}
	for _, m := range members {
		if r := c.recOf(m); r != nil && !seen[r] {
			seen[r] = true
			prev += len(r.members) - 1
			prevRecs++
		}
	}
	nr := &rec{members: members}
	var byShard [shardCount][]store.Node
	for _, m := range members {
		byShard[shardOf(m)] = append(byShard[shardOf(m)], m)
	}
	for si := range byShard {
		if len(byShard[si]) == 0 {
			continue
		}
		sh := &c.shards[si]
		sh.mu.Lock()
		for _, m := range byShard[si] {
			sh.rec[m] = nr
		}
		sh.mu.Unlock()
	}
	c.merged.Add(int64(len(members) - 1 - prev))
	c.recs.Add(int64(1 - prevRecs))
	c.entries.Add(int64(len(members) - (prev + prevRecs)))
}

func (c *clusters) Merged() int64 { return c.merged.Load() }

// Partition returns the canonical non-singleton cluster partition:
// members sorted by (source, index), clusters sorted by first member —
// the snapshot/verification form. Every record holds ≥ 2 members by
// construction, so the records themselves are the partition.
// Writer-side.
func (c *clusters) Partition() ([][]store.Node, error) {
	seen := map[*rec]bool{}
	var out [][]store.Node
	for i := range c.shards {
		for _, r := range c.shards[i].rec {
			if seen[r] {
				continue
			}
			seen[r] = true
			out = append(out, r.members)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0].Src != out[b][0].Src {
			return out[a][0].Src < out[b][0].Src
		}
		return out[a][0].Idx < out[b][0].Idx
	})
	return out, nil
}

func (c *clusters) Stats() store.ClusterStats {
	return store.ClusterStats{
		HotRecords: int(c.recs.Load()),
		HotEntries: int(c.entries.Load()),
	}
}

// pairs holds saved pair tables resident. The hub never spills pairs
// to an unbounded backend, so in production this map stays empty; it
// behaves correctly regardless.
type pairs struct {
	//entitylint:lock rank=110
	mu   sync.Mutex
	tabs map[int]store.PairTab
	st   store.PairStats
}

func (p *pairs) Save(id int, tab store.PairTab) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.tabs[id]; !ok {
		p.st.Spilled++
	}
	p.tabs[id] = tab
	p.st.Spills++
	return nil
}

func (p *pairs) Load(id int) (store.PairTab, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tab, ok := p.tabs[id]
	if !ok {
		return store.PairTab{}, fmt.Errorf("mem: pair %d not saved", id)
	}
	p.st.PageIns++
	return tab, nil
}

func (p *pairs) Stats() store.PairStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// Backend is the in-memory storage backend.
type Backend struct {
	c clusters
	p pairs
	t store.ResidentTuples
}

// New returns a fresh, empty in-memory backend.
func New() *Backend {
	b := &Backend{}
	for i := range b.c.shards {
		b.c.shards[i].rec = map[store.Node]*rec{}
	}
	b.p.tabs = map[int]store.PairTab{}
	return b
}

func (b *Backend) Name() string             { return "mem" }
func (b *Backend) Caps() store.Caps         { return store.Caps{} }
func (b *Backend) Clusters() store.Clusters { return &b.c }
func (b *Backend) Pairs() store.Pairs       { return &b.p }
func (b *Backend) Tuples() store.Tuples     { return &b.t }
func (b *Backend) Close() error             { return nil }

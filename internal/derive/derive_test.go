package derive

import (
	"strings"
	"testing"

	"entityid/internal/ilfd"
	"entityid/internal/paperdata"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

func strAttr(names ...string) []schema.Attribute {
	out := make([]schema.Attribute, len(names))
	for i, n := range names {
		out[i] = schema.Attribute{Name: n, Kind: value.KindString}
	}
	return out
}

// TestExtendTable6R reproduces the R′ column of Table 6: extending
// Table 5's R with speciality derives Hunan (via I5), Gyros (via the
// I7∘I8 chain) and Mughalai (via I6), leaving the Indian TwinCities and
// VillageWok rows NULL.
func TestExtendTable6R(t *testing.T) {
	r := paperdata.Table5R()
	got, conflicts, err := Extend(r, "R'", strAttr("speciality", "county"), paperdata.Example3ILFDs(), Options{})
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if len(conflicts) != 0 {
		t.Fatalf("conflicts: %v", conflicts)
	}
	want := map[string]string{ // street (unique per row) -> derived speciality
		"Co.B2":       "Hunan",
		"Co.B3":       "",
		"FrontAve.":   "Gyros",
		"LeSalleAve.": "Mughalai",
		"Wash.Ave.":   "",
	}
	for i := 0; i < got.Len(); i++ {
		street := got.MustValue(i, "street").Str()
		spec := got.MustValue(i, "speciality")
		if want[street] == "" {
			if !spec.IsNull() {
				t.Errorf("row %s: speciality = %v, want NULL", street, spec)
			}
			continue
		}
		if spec.IsNull() || spec.Str() != want[street] {
			t.Errorf("row %s: speciality = %v, want %s", street, spec, want[street])
		}
	}
	// The chained county derivation (I7) must also be visible.
	for i := 0; i < got.Len(); i++ {
		if got.MustValue(i, "street").Str() == "FrontAve." {
			if c := got.MustValue(i, "county"); c.IsNull() || c.Str() != "Ramsey" {
				t.Errorf("county = %v, want Ramsey", c)
			}
		}
	}
	// Matches the pinned Table 6 fixture projected onto shared attrs.
	wantRel := paperdata.Table6RPrime()
	for i := 0; i < got.Len(); i++ {
		name := got.MustValue(i, "name").Str()
		cui := got.MustValue(i, "cuisine").Str()
		j := wantRel.LookupKey(value.String(name), value.String(cui))
		if j < 0 {
			t.Errorf("row (%s,%s) not in Table 6 fixture", name, cui)
			continue
		}
		if !value.Identical(got.MustValue(i, "speciality"), wantRel.MustValue(j, "speciality")) {
			t.Errorf("row (%s,%s): speciality %v vs fixture %v",
				name, cui, got.MustValue(i, "speciality"), wantRel.MustValue(j, "speciality"))
		}
	}
}

// TestExtendTable6S reproduces the S′ column of Table 6: extending
// Table 5's S with cuisine via I1–I4 fills every row.
func TestExtendTable6S(t *testing.T) {
	sRel := paperdata.Table5S()
	got, conflicts, err := Extend(sRel, "S'", strAttr("cuisine"), paperdata.Example3ILFDs(), Options{})
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if len(conflicts) != 0 {
		t.Fatalf("conflicts: %v", conflicts)
	}
	want := map[string]string{
		"Hunan":    "Chinese",
		"Sichuan":  "Chinese",
		"Gyros":    "Greek",
		"Mughalai": "Indian",
	}
	for i := 0; i < got.Len(); i++ {
		spec := got.MustValue(i, "speciality").Str()
		cui := got.MustValue(i, "cuisine")
		if cui.IsNull() || cui.Str() != want[spec] {
			t.Errorf("speciality %s: cuisine = %v, want %s", spec, cui, want[spec])
		}
	}
}

func TestExtendRejectsDuplicateAttribute(t *testing.T) {
	r := paperdata.Table5R()
	if _, _, err := Extend(r, "R'", strAttr("cuisine"), nil, Options{}); err == nil {
		t.Error("extending with existing attribute accepted")
	}
}

func TestExtendPreservesSourceValues(t *testing.T) {
	// An ILFD contradicting a source value must not overwrite it.
	sch := schema.MustNew("T", strAttr("a", "b"), []string{"a"})
	r := relation.New(sch)
	r.MustInsert(value.String("x"), value.String("original"))
	fs := ilfd.Set{ilfd.MustParse("a=x -> b=derived")}

	got, conflicts, err := Extend(r, "T'", nil, fs, Options{Mode: FirstMatch})
	if err != nil {
		t.Fatal(err)
	}
	if v := got.MustValue(0, "b").Str(); v != "original" {
		t.Errorf("FirstMatch overwrote source value: %q", v)
	}
	if len(conflicts) != 0 {
		t.Errorf("FirstMatch reported conflicts: %v", conflicts)
	}
	got, conflicts, err = Extend(r, "T'", nil, fs, Options{Mode: Fixpoint})
	if err != nil {
		t.Fatal(err)
	}
	if v := got.MustValue(0, "b").Str(); v != "original" {
		t.Errorf("Fixpoint overwrote source value: %q", v)
	}
	if len(conflicts) != 1 {
		t.Errorf("Fixpoint conflicts = %v, want 1", conflicts)
	} else {
		if !strings.Contains(conflicts[0].Error(), `"b"`) {
			t.Errorf("conflict message = %q", conflicts[0].Error())
		}
	}
}

func TestFirstMatchCutSemantics(t *testing.T) {
	// Two ILFDs derive different values for b; rule order decides under
	// FirstMatch (the Prolog cut), and Fixpoint reports the conflict.
	sch := schema.MustNew("T", strAttr("a", "b"), []string{"a"})
	r := relation.New(sch)
	r.MustInsert(value.String("x"), value.Null)
	fs := ilfd.Set{
		ilfd.MustParse("a=x -> b=first"),
		ilfd.MustParse("a=x -> b=second"),
	}
	got, conflicts, err := Extend(r, "T'", nil, fs, Options{Mode: FirstMatch})
	if err != nil {
		t.Fatal(err)
	}
	if v := got.MustValue(0, "b").Str(); v != "first" {
		t.Errorf("cut semantics: b = %q, want first", v)
	}
	if len(conflicts) != 0 {
		t.Errorf("FirstMatch conflicts = %v", conflicts)
	}
	// Reversed order, reversed winner.
	rev := ilfd.Set{fs[1], fs[0]}
	got, _, err = Extend(r, "T'", nil, rev, Options{Mode: FirstMatch})
	if err != nil {
		t.Fatal(err)
	}
	if v := got.MustValue(0, "b").Str(); v != "second" {
		t.Errorf("reversed cut: b = %q, want second", v)
	}
	// Fixpoint surfaces the disagreement.
	_, conflicts, err = Extend(r, "T'", nil, fs, Options{Mode: Fixpoint})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 {
		t.Errorf("Fixpoint conflicts = %v, want 1", conflicts)
	}
}

func TestChainingDepth(t *testing.T) {
	// a -> b -> c -> d chain must resolve in both modes.
	sch := schema.MustNew("T", strAttr("a", "b", "c", "d"), []string{"a"})
	r := relation.New(sch)
	r.MustInsert(value.String("1"), value.Null, value.Null, value.Null)
	fs := ilfd.Set{
		// Deliberately ordered so a single pass cannot finish.
		ilfd.MustParse("c=3 -> d=4"),
		ilfd.MustParse("b=2 -> c=3"),
		ilfd.MustParse("a=1 -> b=2"),
	}
	for _, mode := range []Mode{FirstMatch, Fixpoint} {
		got, conflicts, err := Extend(r, "T'", nil, fs, Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(conflicts) != 0 {
			t.Fatalf("%v conflicts: %v", mode, conflicts)
		}
		for attr, want := range map[string]string{"b": "2", "c": "3", "d": "4"} {
			if v := got.MustValue(0, attr); v.IsNull() || v.Str() != want {
				t.Errorf("%v: %s = %v, want %s", mode, attr, v, want)
			}
		}
	}
}

func TestMaxRoundsBoundsChaining(t *testing.T) {
	sch := schema.MustNew("T", strAttr("a", "b", "c"), []string{"a"})
	r := relation.New(sch)
	r.MustInsert(value.String("1"), value.Null, value.Null)
	fs := ilfd.Set{
		ilfd.MustParse("b=2 -> c=3"),
		ilfd.MustParse("a=1 -> b=2"),
	}
	got, _, err := Extend(r, "T'", nil, fs, Options{Mode: FirstMatch, MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.MustValue(0, "c").IsNull() {
		t.Error("MaxRounds=1 still chained two levels")
	}
}

func TestUnknownModeError(t *testing.T) {
	r := paperdata.Table5R()
	_, _, err := Extend(r, "R'", nil, nil, Options{Mode: Mode(42)})
	if err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Errorf("unknown mode error = %v", err)
	}
	if got := Mode(42).String(); got != "mode(42)" {
		t.Errorf("Mode(42).String() = %q", got)
	}
	if FirstMatch.String() != "first-match" || Fixpoint.String() != "fixpoint" {
		t.Error("mode names wrong")
	}
}

func TestDerivable(t *testing.T) {
	fs := paperdata.Example3ILFDs()
	d := Derivable(fs)
	for _, attr := range []string{"cuisine", "speciality", "county"} {
		if !d[attr] {
			t.Errorf("Derivable missing %q", attr)
		}
	}
	if d["name"] || d["street"] {
		t.Error("Derivable reports non-consequent attributes")
	}
}

// TestExtendWithTablesMatchesRules checks the §4.2 relational pipeline
// derives exactly what rule-driven derivation derives on Example 3,
// including the chained I7∘I8 values.
func TestExtendWithTablesMatchesRules(t *testing.T) {
	fs := paperdata.Example3ILFDs()
	kindOf := func(string) value.Kind { return value.KindString }
	tables, rest, err := ilfd.FromSet(fs, kindOf)
	if err != nil {
		t.Fatalf("FromSet: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("unexpected non-uniform ILFDs: %v", rest)
	}
	for _, fixture := range []struct {
		rel   *relation.Relation
		extra []schema.Attribute
	}{
		{paperdata.Table5R(), strAttr("speciality", "county")},
		{paperdata.Table5S(), strAttr("cuisine", "street")},
	} {
		byRules, _, err := Extend(fixture.rel, "X'", fixture.extra, fs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		byTables, conflicts, err := ExtendWithTables(fixture.rel, "X'", fixture.extra, tables, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(conflicts) != 0 {
			t.Fatalf("table conflicts: %v", conflicts)
		}
		if !byRules.Equal(byTables) {
			t.Errorf("rule-driven and table-driven extensions differ:\n%s\nvs\n%s", byRules, byTables)
		}
	}
}

func TestExtendWithTablesConflictDetection(t *testing.T) {
	sch := schema.MustNew("T", strAttr("a", "b"), []string{"a"})
	r := relation.New(sch)
	r.MustInsert(value.String("x"), value.String("original"))
	tab := ilfd.MustNewTable("IM(a;b)", []string{"a"}, "b", nil)
	tab.MustAdd(value.String("x"), value.String("derived"))

	_, conflicts, err := ExtendWithTables(r, "T'", nil, []*ilfd.Table{tab}, Options{Mode: Fixpoint})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 {
		t.Errorf("conflicts = %v, want 1", conflicts)
	}
	// FirstMatch: source wins silently.
	got, conflicts, err := ExtendWithTables(r, "T'", nil, []*ilfd.Table{tab}, Options{Mode: FirstMatch})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Errorf("FirstMatch conflicts = %v", conflicts)
	}
	if v := got.MustValue(0, "b").Str(); v != "original" {
		t.Errorf("b = %q", v)
	}
}

func TestExtendWithTablesRejectsDuplicateAttr(t *testing.T) {
	r := paperdata.Table5R()
	if _, _, err := ExtendWithTables(r, "R'", strAttr("cuisine"), nil, Options{}); err == nil {
		t.Error("duplicate attribute accepted")
	}
}

func TestExtendEmptyILFDSetLeavesNulls(t *testing.T) {
	r := paperdata.Table5R()
	got, conflicts, err := Extend(r, "R'", strAttr("speciality"), nil, Options{})
	if err != nil || len(conflicts) != 0 {
		t.Fatalf("Extend: %v %v", err, conflicts)
	}
	for i := 0; i < got.Len(); i++ {
		if !got.MustValue(i, "speciality").IsNull() {
			t.Errorf("row %d: speciality not NULL with empty ILFD set", i)
		}
	}
}

// Package derive applies ILFDs to relations to fill in missing
// extended-key attribute values, the R → R′ extension step of §4.2.
//
// Two modes reproduce the two derivation disciplines discussed in the
// paper:
//
//   - FirstMatch mirrors the Prolog prototype (§6.1): ILFDs are tried in
//     order and a cut prevents later rules from firing for an attribute
//     once one has succeeded. Rule order is significant; conflicting
//     ILFDs are silently resolved in favour of the earliest.
//
//   - Fixpoint is order-insensitive: all applicable ILFDs fire
//     repeatedly until no new values are derivable, and two ILFDs
//     deriving different values for the same attribute of the same tuple
//     is reported as a conflict instead of masked.
//
// Both modes chain: a derived value can satisfy another ILFD's
// antecedent (the paper's I9 = I7 ∘ I8 example: street → county and
// name ∧ county → speciality compose to derive speciality from name and
// street). Attributes that no ILFD derives default to NULL, matching the
// prototype's "assert NULL after all ILFDs fail" idiom (§6.2).
package derive

import (
	"fmt"
	"sort"

	"entityid/internal/ilfd"
	"entityid/internal/ra"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// Mode selects the derivation discipline.
type Mode int

// The derivation modes.
const (
	// FirstMatch applies ILFDs in order with cut semantics (the Prolog
	// prototype's behaviour).
	FirstMatch Mode = iota
	// Fixpoint applies all ILFDs to a fixpoint and reports conflicts.
	Fixpoint
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case FirstMatch:
		return "first-match"
	case Fixpoint:
		return "fixpoint"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Conflict records two ILFDs deriving different values for the same
// attribute of the same tuple (Fixpoint mode only).
type Conflict struct {
	TupleIndex int
	Attr       string
	Old, New   value.Value
}

// Error satisfies the error interface.
func (c Conflict) Error() string {
	return fmt.Sprintf("derive: conflict on tuple %d attribute %q: %s vs %s",
		c.TupleIndex, c.Attr, c.Old, c.New)
}

// Options configures Extend.
type Options struct {
	// Mode selects cut vs fixpoint semantics. The zero value is
	// FirstMatch, the prototype's behaviour.
	Mode Mode
	// MaxRounds bounds chaining depth (0 means len(ILFDs)+1 rounds, which
	// suffices for any terminating chain).
	MaxRounds int
}

// Extend returns a copy of rel extended with the `extra` attributes
// (NULL-initialised) and with every attribute of the *extended* schema
// that the ILFDs can derive filled in. Existing non-NULL values are
// never overwritten: source data takes precedence over derived data, and
// in Fixpoint mode an ILFD contradicting an existing non-NULL value is a
// conflict.
//
// The relation's candidate keys are preserved; the extended relation is
// named name. For repeated extensions with the same ILFD set (e.g.
// per-insert incremental identification), build an Extender once.
func Extend(rel *relation.Relation, name string, extra []schema.Attribute, fs ilfd.Set, opts Options) (*relation.Relation, []Conflict, error) {
	return NewExtender(fs, opts).Extend(rel, name, extra)
}

// Extender applies a fixed ILFD set under fixed options, amortising the
// discrimination-index construction across calls.
type Extender struct {
	fs   ilfd.Set
	ix   *ilfdIndex
	opts Options
}

// NewExtender prepares an extender for the ILFD set.
func NewExtender(fs ilfd.Set, opts Options) *Extender {
	return &Extender{fs: fs, ix: indexILFDs(fs), opts: opts}
}

// Extend is Extend with the extender's cached index.
func (e *Extender) Extend(rel *relation.Relation, name string, extra []schema.Attribute) (*relation.Relation, []Conflict, error) {
	sch := rel.Schema()
	for _, a := range extra {
		if sch.Has(a.Name) {
			return nil, nil, fmt.Errorf("derive: relation %s already has attribute %q", sch.Name(), a.Name)
		}
	}
	extSch, err := sch.Extend(name, extra)
	if err != nil {
		return nil, nil, err
	}
	out := relation.New(extSch)
	var conflicts []Conflict
	for idx, t := range rel.Tuples() {
		ext := make(relation.Tuple, extSch.Arity())
		copy(ext, t)
		for i := sch.Arity(); i < extSch.Arity(); i++ {
			ext[i] = value.Null
		}
		rowConflicts, err := deriveTuple(out, ext, idx, e.fs, e.ix, e.opts)
		if err != nil {
			return nil, nil, err
		}
		conflicts = append(conflicts, rowConflicts...)
		if err := out.Insert(ext); err != nil {
			return nil, nil, fmt.Errorf("derive: %w", err)
		}
	}
	return out, conflicts, nil
}

// ExtendTuple derives a single pre-padded tuple in place against the
// extended schema extSch (the tuple must already have extSch's arity,
// with NULLs in underived positions). It returns the conflicts found
// (Fixpoint mode). This is the per-insert path of incremental
// identification.
func (e *Extender) ExtendTuple(extSch *schema.Schema, ext relation.Tuple) ([]Conflict, error) {
	if len(ext) != extSch.Arity() {
		return nil, fmt.Errorf("derive: tuple arity %d, schema wants %d", len(ext), extSch.Arity())
	}
	scratch := relation.New(extSch)
	return deriveTuple(scratch, ext, 0, e.fs, e.ix, e.opts)
}

// ilfdIndex is a discrimination index over an ILFD set: rules grouped
// by their canonically smallest antecedent condition, so a tuple only
// examines rules whose indexed condition its current values could
// satisfy (a rule fires only when its whole antecedent holds, so any
// one condition is a sound index key; the smallest is chosen so the
// keying does not depend on how the caller ordered the antecedent).
// ilfd.New normalizes antecedents into sorted order, but ILFD values
// can be constructed as raw literals, so the minimum is computed here
// rather than assumed at position 0. Rules with empty antecedents are
// always candidates.
type ilfdIndex struct {
	byCond map[string][]int
	always []int
}

func indexILFDs(fs ilfd.Set) *ilfdIndex {
	ix := &ilfdIndex{byCond: make(map[string][]int, len(fs))}
	for i, f := range fs {
		if len(f.Antecedent) == 0 {
			ix.always = append(ix.always, i)
			continue
		}
		k := f.Antecedent[0].Key()
		for _, c := range f.Antecedent[1:] {
			if ck := c.Key(); ck < k {
				k = ck
			}
		}
		ix.byCond[k] = append(ix.byCond[k], i)
	}
	return ix
}

// candidates returns, in ascending rule order, the indexes of rules
// whose indexed (canonically smallest) antecedent condition holds in
// ext (plus the empty-antecedent rules). scratch is reused across
// calls.
func (ix *ilfdIndex) candidates(rel *relation.Relation, ext relation.Tuple, scratch []int) []int {
	out := scratch[:0]
	out = append(out, ix.always...)
	sch := rel.Schema()
	for i, v := range ext {
		if v.IsNull() {
			continue
		}
		k := ilfd.Condition{Attr: sch.Attr(i).Name, Val: v}.Key()
		out = append(out, ix.byCond[k]...)
	}
	sort.Ints(out)
	return out
}

// deriveTuple fills derivable NULL attributes of ext in place. Only
// rules surfaced by the discrimination index are examined each round,
// and the pruned pass is exactly equivalent to an unindexed in-order
// pass: when a firing changes ext, the candidate list is refreshed and
// iteration resumes just past the fired rule, so rules a mid-round
// derivation enables fire at the same position — and under the same
// cut state — as they would without pruning. (Rules earlier than the
// firing one wait for the next round in both disciplines: the pass
// already moved past them.)
func deriveTuple(rel *relation.Relation, ext relation.Tuple, idx int, fs ilfd.Set, ix *ilfdIndex, opts Options) ([]Conflict, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = len(fs) + 1
	}
	var conflicts []Conflict
	var scratch []int
	// runRound makes one in-order pass, applying fire(fi) to each
	// candidate rule whose antecedent holds; a true return from fire
	// means ext changed, triggering the refresh-and-resume.
	runRound := func(fire func(fi int) bool) bool {
		changed := false
		scratch = ix.candidates(rel, ext, scratch)
		k := 0
		for k < len(scratch) {
			fi := scratch[k]
			if fs[fi].Antecedent.HoldIn(rel, ext) && fire(fi) {
				changed = true
				scratch = ix.candidates(rel, ext, scratch)
				k = sort.SearchInts(scratch, fi+1)
				continue
			}
			k++
		}
		return changed
	}
	switch opts.Mode {
	case FirstMatch:
		// A cut per (attribute): once a rule has set an attribute, later
		// rules never touch it. Chaining still happens across rounds
		// because newly set attributes can satisfy other antecedents.
		cut := map[string]bool{}
		fire := func(fi int) bool {
			changed := false
			for _, c := range fs[fi].Consequent {
				i := rel.Schema().Index(c.Attr)
				if i < 0 || cut[c.Attr] {
					continue
				}
				if !ext[i].IsNull() {
					// Source value present: the prototype's rule order
					// places facts before ILFDs, so facts win; cut the
					// attribute so no ILFD overrides it.
					cut[c.Attr] = true
					continue
				}
				ext[i] = c.Val
				cut[c.Attr] = true
				changed = true
			}
			return changed
		}
		for round := 0; round < maxRounds; round++ {
			if !runRound(fire) {
				break
			}
		}
	case Fixpoint:
		seen := map[string]bool{}
		fire := func(fi int) bool {
			changed := false
			for _, c := range fs[fi].Consequent {
				i := rel.Schema().Index(c.Attr)
				if i < 0 {
					continue
				}
				cur := ext[i]
				if cur.IsNull() {
					ext[i] = c.Val
					changed = true
					continue
				}
				if !value.Equal(cur, c.Val) {
					k := c.Attr + "\x1f" + cur.Key() + "\x1f" + c.Val.Key()
					if !seen[k] {
						seen[k] = true
						conflicts = append(conflicts, Conflict{
							TupleIndex: idx, Attr: c.Attr, Old: cur, New: c.Val,
						})
					}
				}
			}
			return changed
		}
		for round := 0; round < maxRounds; round++ {
			if !runRound(fire) {
				break
			}
		}
	default:
		return nil, fmt.Errorf("derive: unknown mode %v", opts.Mode)
	}
	return conflicts, nil
}

// Derivable returns, for each attribute name, whether some ILFD in fs
// has it as a consequent — i.e. whether derivation could ever supply it.
// Used to report which missing extended-key attributes are simply
// unobtainable (they stay NULL for every tuple).
func Derivable(fs ilfd.Set) map[string]bool {
	out := map[string]bool{}
	for _, f := range fs {
		for _, c := range f.Consequent {
			out[c.Attr] = true
		}
	}
	return out
}

// ExtendWithTables derives missing attributes relationally, the §4.2
// formulation: for each ILFD table IM(x̄,y), R_y = Π_{K_R,y}(R ⋈_x̄ IM)
// and the derived values are folded back onto R keyed by K_R (the
// paper's series of outer joins). Chaining across tables is achieved by
// iterating passes until a fixpoint: a county derived by one table can
// feed a later speciality table, reproducing the I9 = I7 ∘ I8 chain.
//
// Semantics match Extend over the tables' expanded ILFDs: in FirstMatch
// mode an attribute set in an earlier pass or by an earlier table is
// never overwritten; in Fixpoint mode a disagreeing derivation is
// reported as a Conflict. Derived-value folding is keyed on the source
// relation's primary key, as in the paper's expressions; tuples whose
// primary key contains NULL cannot be addressed relationally and are
// left for rule-driven derivation.
func ExtendWithTables(rel *relation.Relation, name string, extra []schema.Attribute, tables []*ilfd.Table, opts Options) (*relation.Relation, []Conflict, error) {
	sch := rel.Schema()
	for _, a := range extra {
		if sch.Has(a.Name) {
			return nil, nil, fmt.Errorf("derive: relation %s already has attribute %q", sch.Name(), a.Name)
		}
	}
	extSch, err := sch.Extend(name, extra)
	if err != nil {
		return nil, nil, err
	}
	// Working tuples, NULL-padded.
	work := make([]relation.Tuple, rel.Len())
	for i, t := range rel.Tuples() {
		ext := make(relation.Tuple, extSch.Arity())
		copy(ext, t)
		for j := sch.Arity(); j < extSch.Arity(); j++ {
			ext[j] = value.Null
		}
		work[i] = ext
	}
	// Primary-key positions for folding derived values back.
	pk := sch.PrimaryKey()
	pkIdx := make([]int, len(pk))
	for i, a := range pk {
		pkIdx[i] = extSch.Index(a)
	}
	keyOf := func(t relation.Tuple) (string, bool) {
		k := ""
		for n, i := range pkIdx {
			if t[i].IsNull() {
				return "", false
			}
			if n > 0 {
				k += "\x1f"
			}
			k += t[i].Key()
		}
		return k, true
	}
	index := map[string]int{}
	for i, t := range work {
		if k, ok := keyOf(t); ok {
			index[k] = i
		}
	}

	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = len(tables) + 1
	}
	var conflicts []Conflict
	seenConflict := map[string]bool{}
	for round := 0; round < maxRounds; round++ {
		changed := false
		// Materialize the current working state for joining.
		cur := relation.New(extSch)
		for _, t := range work {
			if err := cur.Insert(t.Clone()); err != nil {
				return nil, nil, fmt.Errorf("derive: materialize: %w", err)
			}
		}
		for _, tab := range tables {
			yPos := extSch.Index(tab.To())
			if yPos < 0 {
				continue
			}
			usable := true
			conds := make([]ra.On, 0, len(tab.From()))
			for _, a := range tab.From() {
				if !extSch.Has(a) {
					usable = false
					break
				}
				conds = append(conds, ra.On{Left: a, Right: a})
			}
			if !usable {
				continue
			}
			// R ⋈_x̄ IM: joined rows carry R′'s attributes first, then the
			// table's; the consequent column sits right after the
			// antecedent columns.
			j, err := ra.Join(cur, tab.Relation(), "Rj", ra.Inner, conds)
			if err != nil {
				return nil, nil, fmt.Errorf("derive: table join: %w", err)
			}
			consPos := extSch.Arity() + len(tab.From())
			for _, jt := range j.Tuples() {
				k, ok := keyOf(jt[:extSch.Arity()])
				if !ok {
					continue
				}
				i, found := index[k]
				if !found {
					continue
				}
				derived := jt[consPos]
				curVal := work[i][yPos]
				if curVal.IsNull() {
					work[i][yPos] = derived
					changed = true
					continue
				}
				if !value.Equal(curVal, derived) && opts.Mode == Fixpoint {
					ck := fmt.Sprintf("%d\x1f%s\x1f%s\x1f%s", i, tab.To(), curVal.Key(), derived.Key())
					if !seenConflict[ck] {
						seenConflict[ck] = true
						conflicts = append(conflicts, Conflict{
							TupleIndex: i, Attr: tab.To(), Old: curVal, New: derived,
						})
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	out := relation.New(extSch)
	for _, t := range work {
		if err := out.Insert(t); err != nil {
			return nil, nil, fmt.Errorf("derive: %w", err)
		}
	}
	return out, conflicts, nil
}

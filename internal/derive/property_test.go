package derive

import (
	"fmt"
	"math/rand"
	"testing"

	"entityid/internal/ilfd"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// randWorld builds a random relation and a random consistent ILFD set
// over a small vocabulary. Consistency is guaranteed by deriving each
// rule's consequent from a fixed functional table attr->value, so no
// two rules ever disagree.
func randWorld(rng *rand.Rand) (*relation.Relation, ilfd.Set, []schema.Attribute) {
	baseAttrs := []schema.Attribute{
		{Name: "a", Kind: value.KindString},
		{Name: "b", Kind: value.KindString},
		{Name: "id", Kind: value.KindInt},
	}
	extra := []schema.Attribute{
		{Name: "x", Kind: value.KindString},
		{Name: "y", Kind: value.KindString},
	}
	sch := schema.MustNew("T", baseAttrs, []string{"id"})
	r := relation.New(sch)
	vals := []string{"0", "1", "2"}
	for i := 0; i < 3+rng.Intn(6); i++ {
		r.MustInsert(
			value.String(vals[rng.Intn(len(vals))]),
			value.String(vals[rng.Intn(len(vals))]),
			value.Int(int64(i)),
		)
	}
	// Functional consequent assignment: x determined by a-value, y by
	// x-value (to force chains).
	var fs ilfd.Set
	for _, v := range vals {
		if rng.Intn(2) == 0 {
			fs = append(fs, ilfd.MustNew(
				ilfd.Conditions{ilfd.C("a", v)},
				ilfd.Conditions{ilfd.C("x", "x"+v)},
			))
		}
		if rng.Intn(2) == 0 {
			fs = append(fs, ilfd.MustNew(
				ilfd.Conditions{ilfd.C("x", "x"+v)},
				ilfd.Conditions{ilfd.C("y", "y"+v)},
			))
		}
	}
	return r, fs, extra
}

// TestExtendIdempotent: extending an already-extended relation with an
// empty extra set derives nothing new (the fixpoint was reached).
func TestExtendIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		r, fs, extra := randWorld(rng)
		for _, mode := range []Mode{FirstMatch, Fixpoint} {
			once, conf, err := Extend(r, "T'", extra, fs, Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if len(conf) != 0 {
				t.Fatalf("trial %d: consistent world produced conflicts: %v", trial, conf)
			}
			twice, conf, err := Extend(once, "T'", nil, fs, Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if len(conf) != 0 {
				t.Fatalf("trial %d: re-extension produced conflicts: %v", trial, conf)
			}
			if !once.Equal(twice) {
				t.Fatalf("trial %d (%v): extension not idempotent:\n%s\nvs\n%s",
					trial, mode, once, twice)
			}
		}
	}
}

// TestExtendModesAgreeOnConsistentKnowledge: with functionally
// consistent ILFDs, cut and fixpoint derivation produce identical
// extensions.
func TestExtendModesAgreeOnConsistentKnowledge(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		r, fs, extra := randWorld(rng)
		cut, _, err := Extend(r, "T'", extra, fs, Options{Mode: FirstMatch})
		if err != nil {
			t.Fatal(err)
		}
		fix, conf, err := Extend(r, "T'", extra, fs, Options{Mode: Fixpoint})
		if err != nil {
			t.Fatal(err)
		}
		if len(conf) != 0 {
			t.Fatalf("trial %d: conflicts on consistent set: %v", trial, conf)
		}
		if !cut.Equal(fix) {
			t.Fatalf("trial %d: modes disagree:\n%s\nvs\n%s", trial, cut, fix)
		}
	}
}

// TestExtendRuleOrderIrrelevantForFixpoint: permuting the ILFD set does
// not change the fixpoint extension.
func TestExtendRuleOrderIrrelevantForFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		r, fs, extra := randWorld(rng)
		if len(fs) < 2 {
			continue
		}
		ref, _, err := Extend(r, "T'", extra, fs, Options{Mode: Fixpoint})
		if err != nil {
			t.Fatal(err)
		}
		perm := make(ilfd.Set, len(fs))
		copy(perm, fs)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got, _, err := Extend(r, "T'", extra, perm, Options{Mode: Fixpoint})
		if err != nil {
			t.Fatal(err)
		}
		if !ref.Equal(got) {
			t.Fatalf("trial %d: fixpoint order-sensitive", trial)
		}
	}
}

// TestExtenderMatchesExtend: the cached-extender path and the one-shot
// path produce identical results, including ExtendTuple.
func TestExtenderMatchesExtend(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 50; trial++ {
		r, fs, extra := randWorld(rng)
		oneShot, _, err := Extend(r, "T'", extra, fs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ext := NewExtender(fs, Options{})
		cached, _, err := ext.Extend(r, "T'", extra)
		if err != nil {
			t.Fatal(err)
		}
		if !oneShot.Equal(cached) {
			t.Fatalf("trial %d: extender path differs", trial)
		}
		// Per-tuple path.
		extSch := cached.Schema()
		for i, base := range r.Tuples() {
			tup := make(relation.Tuple, extSch.Arity())
			copy(tup, base)
			for j := len(base); j < extSch.Arity(); j++ {
				tup[j] = value.Null
			}
			if _, err := ext.ExtendTuple(extSch, tup); err != nil {
				t.Fatal(err)
			}
			if !tup.Identical(cached.Tuple(i)) {
				t.Fatalf("trial %d tuple %d: ExtendTuple %v vs Extend %v",
					trial, i, tup, cached.Tuple(i))
			}
		}
	}
}

func TestExtendTupleArityCheck(t *testing.T) {
	ext := NewExtender(nil, Options{})
	sch := schema.MustNew("T", []schema.Attribute{{Name: "a", Kind: value.KindString}})
	if _, err := ext.ExtendTuple(sch, relation.Tuple{}); err == nil {
		t.Error("wrong arity accepted")
	}
}

var _ = fmt.Sprintf // reserved for debugging helpers

// TestIndexedCandidatesMatchUnindexed pins the discrimination index
// against an unindexed reference: for ILFD sets whose antecedents are
// deliberately NOT in canonical order (raw struct literals bypass
// ilfd.New's normalization), the index must surface exactly the rules
// whose canonically smallest antecedent condition holds in the tuple
// (plus empty-antecedent rules), and Extend must produce the same
// relation with and without pruning, in both modes.
func TestIndexedCandidatesMatchUnindexed(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		r, fs, extra := randWorld(rng)
		// Scramble every antecedent (and add a two-condition rule) so
		// position 0 is often NOT the canonically smallest condition.
		scrambled := make(ilfd.Set, 0, len(fs)+1)
		for _, f := range fs {
			g := ilfd.ILFD{
				Antecedent: append(ilfd.Conditions(nil), f.Antecedent...),
				Consequent: f.Consequent,
			}
			rng.Shuffle(len(g.Antecedent), func(i, j int) {
				g.Antecedent[i], g.Antecedent[j] = g.Antecedent[j], g.Antecedent[i]
			})
			scrambled = append(scrambled, g)
		}
		scrambled = append(scrambled, ilfd.ILFD{
			// Unsorted literal: "b" sorts before "x0..", so index key
			// must be the b-condition, not Antecedent[0].
			Antecedent: ilfd.Conditions{ilfd.C("x", "x0"), ilfd.C("b", "1")},
			Consequent: ilfd.Conditions{ilfd.C("y", "yb")},
		})

		// Candidate sets: the index vs a brute-force reference.
		ix := indexILFDs(scrambled)
		extSch, err := r.Schema().Extend("T'", extra)
		if err != nil {
			t.Fatal(err)
		}
		scratch := relation.New(extSch)
		for ti := 0; ti < r.Len(); ti++ {
			ext := make(relation.Tuple, extSch.Arity())
			copy(ext, r.Tuple(ti))
			for i := r.Schema().Arity(); i < extSch.Arity(); i++ {
				ext[i] = value.Null
			}
			got := ix.candidates(scratch, ext, nil)
			var want []int
			for fi, f := range scrambled {
				if len(f.Antecedent) == 0 {
					want = append(want, fi)
					continue
				}
				min := f.Antecedent[0]
				for _, c := range f.Antecedent[1:] {
					if c.Key() < min.Key() {
						min = c
					}
				}
				j := extSch.Index(min.Attr)
				if j >= 0 && !ext[j].IsNull() && value.Equal(ext[j], min.Val) {
					want = append(want, fi)
				}
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d tuple %d: indexed candidates %v, unindexed reference %v", trial, ti, got, want)
			}
		}

		// End-to-end: pruned and unpruned derivation agree bit-for-bit.
		unpruned := &ilfdIndex{}
		for fi := range scrambled {
			unpruned.always = append(unpruned.always, fi)
		}
		for _, mode := range []Mode{FirstMatch, Fixpoint} {
			e := NewExtender(scrambled, Options{Mode: mode})
			indexed, _, err := e.Extend(r, "T'", extra)
			if err != nil {
				t.Fatalf("trial %d mode %v indexed: %v", trial, mode, err)
			}
			ref := &Extender{fs: scrambled, ix: unpruned, opts: Options{Mode: mode}}
			plain, _, err := ref.Extend(r, "T'", extra)
			if err != nil {
				t.Fatalf("trial %d mode %v unindexed: %v", trial, mode, err)
			}
			if indexed.Len() != plain.Len() {
				t.Fatalf("trial %d mode %v: %d vs %d tuples", trial, mode, indexed.Len(), plain.Len())
			}
			for i := 0; i < indexed.Len(); i++ {
				if !indexed.Tuple(i).Identical(plain.Tuple(i)) {
					t.Fatalf("trial %d mode %v tuple %d: indexed %v, unindexed %v",
						trial, mode, i, indexed.Tuple(i), plain.Tuple(i))
				}
			}
		}
	}
}

package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"entityid/internal/schema"
	"entityid/internal/value"
)

// ReadCSV loads a relation from CSV. The first record must be a header of
// the form "attr" or "attr:kind" (kind one of string, int, float, bool;
// default string). Key columns are marked with a leading '*', e.g.
// "*name:string"; if no column is starred the whole attribute set is the
// key, per the paper's convention. Empty fields and the literal "null"
// load as NULL.
func ReadCSV(name string, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation %s: read csv: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation %s: empty csv (no header)", name)
	}
	attrs := make([]schema.Attribute, 0, len(records[0]))
	var key []string
	for _, h := range records[0] {
		h = strings.TrimSpace(h)
		isKey := strings.HasPrefix(h, "*")
		h = strings.TrimPrefix(h, "*")
		attrName, kindName := h, "string"
		if i := strings.IndexByte(h, ':'); i >= 0 {
			attrName, kindName = h[:i], h[i+1:]
		}
		kind, err := parseKind(kindName)
		if err != nil {
			return nil, fmt.Errorf("relation %s: header %q: %w", name, h, err)
		}
		attrs = append(attrs, schema.Attribute{Name: attrName, Kind: kind})
		if isKey {
			key = append(key, attrName)
		}
	}
	var keys [][]string
	if len(key) > 0 {
		keys = [][]string{key}
	}
	sch, err := schema.New(name, attrs, keys...)
	if err != nil {
		return nil, err
	}
	rel := New(sch)
	for li, rec := range records[1:] {
		if err := rel.InsertStrings(rec...); err != nil {
			return nil, fmt.Errorf("relation %s: line %d: %w", name, li+2, err)
		}
	}
	return rel, nil
}

// WriteCSV writes the relation in the format ReadCSV accepts (kinds and
// key markers included in the header).
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	sch := r.schema
	keySet := map[string]bool{}
	for _, a := range sch.PrimaryKey() {
		keySet[a] = true
	}
	header := make([]string, sch.Arity())
	for i := 0; i < sch.Arity(); i++ {
		a := sch.Attr(i)
		h := fmt.Sprintf("%s:%s", a.Name, a.Kind)
		if keySet[a.Name] {
			h = "*" + h
		}
		header[i] = h
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, sch.Arity())
	for _, t := range r.tuples {
		for i, v := range t {
			if v.IsNull() {
				rec[i] = "null"
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func parseKind(s string) (value.Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "string", "str":
		return value.KindString, nil
	case "int", "integer":
		return value.KindInt, nil
	case "float", "double":
		return value.KindFloat, nil
	case "bool", "boolean":
		return value.KindBool, nil
	default:
		return value.KindNull, fmt.Errorf("unknown kind %q", s)
	}
}

// Package relation implements in-memory relations: ordered collections of
// tuples over a schema, with candidate-key enforcement and deterministic
// iteration. Relations are the substrate every other package operates on —
// the paper assumes "the data model used is relational and real-world
// entities of the same type can be represented as tuples in relations"
// (§3.1).
//
// Key enforcement deliberately skips NULLs: the extended relations R′ and
// S′ of §4.2 carry NULL in attributes the source relation never modeled,
// and the integrated table T_RS may hold NULLs even inside extended-key
// attributes. Candidate keys are therefore checked with storage-level
// identity over fully non-NULL key projections only.
package relation

import (
	"fmt"
	"sort"
	"strings"

	"entityid/internal/schema"
	"entityid/internal/value"
)

// Tuple is one row of a relation. Values appear in schema attribute order.
type Tuple []value.Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	return append(Tuple(nil), t...)
}

// Key encodes the tuple (or a projection of it) as a map key.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// Identical reports storage-level equality of two tuples (NULL identical
// to NULL).
func (t Tuple) Identical(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !value.Identical(t[i], o[i]) {
			return false
		}
	}
	return true
}

// Relation is a mutable multiset of tuples over a schema. The first
// candidate key of the schema is enforced on Insert: two tuples may not
// agree (non-NULL, storage-identical) on all primary-key attributes. All
// candidate keys declared on the schema are enforced likewise.
type Relation struct {
	schema *schema.Schema
	tuples []Tuple
	// keyIdx maps candidate-key ordinal -> key-projection string -> tuple
	// position, for O(1) duplicate detection and key lookups.
	keyIdx []map[string]int
	// bag disables duplicate detection (NewBag).
	bag bool
}

// New creates an empty relation with the given schema.
func New(s *schema.Schema) *Relation {
	r := &Relation{schema: s}
	r.keyIdx = make([]map[string]int, len(s.Keys()))
	for i := range r.keyIdx {
		r.keyIdx[i] = make(map[string]int)
	}
	return r
}

// NewBag creates an empty relation that does not enforce candidate
// keys: a bag, for operator outputs (merged views, projections) whose
// rows may legitimately repeat. The schema's keys remain declared for
// documentation, and LookupKey still resolves the last-inserted tuple
// per key value.
func NewBag(s *schema.Schema) *Relation {
	r := New(s)
	r.bag = true
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *schema.Schema { return r.schema }

// IsBag reports whether the relation was created with NewBag (no
// candidate-key enforcement).
func (r *Relation) IsBag() bool { return r.bag }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns the tuple at position i (not a copy; callers must not
// mutate it).
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Tuples returns the tuples in insertion order. The slice is shared;
// callers must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Value returns tuple i's value for the named attribute.
func (r *Relation) Value(i int, attr string) (value.Value, error) {
	j := r.schema.Index(attr)
	if j < 0 {
		return value.Null, fmt.Errorf("relation %s: no attribute %q", r.schema.Name(), attr)
	}
	return r.tuples[i][j], nil
}

// MustValue is Value that panics on unknown attributes.
func (r *Relation) MustValue(i int, attr string) value.Value {
	v, err := r.Value(i, attr)
	if err != nil {
		panic(err)
	}
	return v
}

// keyProjection returns the encoded projection of t onto key, and whether
// every key attribute is non-NULL (NULL-containing projections are not
// indexed, mirroring SQL's treatment of NULLs in unique constraints and
// the paper's extended relations).
func (r *Relation) keyProjection(t Tuple, key []string) (string, bool) {
	var b strings.Builder
	for i, a := range key {
		v := t[r.schema.Index(a)]
		if v.IsNull() {
			return "", false
		}
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.Key())
	}
	return b.String(), true
}

// CanInsert reports whether Insert would accept the tuple, without
// mutating the relation: it checks arity, value kinds and candidate
// keys. Incremental pipelines use it as a cheap insertion guard.
func (r *Relation) CanInsert(t Tuple) error {
	if err := r.checkShape(t); err != nil {
		return err
	}
	for ki, key := range r.schema.Keys() {
		proj, full := r.keyProjection(t, key)
		if !full {
			continue
		}
		if at, dup := r.keyIdx[ki][proj]; dup && !r.bag {
			return fmt.Errorf("relation %s: key (%s) violation: tuple %v duplicates tuple %d",
				r.schema.Name(), strings.Join(key, ","), t, at)
		}
	}
	return nil
}

func (r *Relation) checkShape(t Tuple) error {
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("relation %s: arity %d tuple, schema wants %d",
			r.schema.Name(), len(t), r.schema.Arity())
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		if want := r.schema.Attr(i).Kind; v.Kind() != want {
			return fmt.Errorf("relation %s: attribute %q: %s value, schema wants %s",
				r.schema.Name(), r.schema.Attr(i).Name, v.Kind(), want)
		}
	}
	return nil
}

// Insert appends a tuple. It fails if the arity is wrong, a value's kind
// disagrees with the schema (NULL is allowed anywhere), or a candidate key
// is violated.
func (r *Relation) Insert(t Tuple) error {
	if err := r.checkShape(t); err != nil {
		return err
	}
	keys := r.schema.Keys()
	projs := make([]string, len(keys))
	indexed := make([]bool, len(keys))
	for ki, key := range keys {
		proj, full := r.keyProjection(t, key)
		if !full {
			continue
		}
		if at, dup := r.keyIdx[ki][proj]; dup && !r.bag {
			return fmt.Errorf("relation %s: key (%s) violation: tuple %v duplicates tuple %d",
				r.schema.Name(), strings.Join(key, ","), t, at)
		}
		projs[ki], indexed[ki] = proj, true
	}
	pos := len(r.tuples)
	r.tuples = append(r.tuples, t.Clone())
	for ki := range keys {
		if indexed[ki] {
			r.keyIdx[ki][projs[ki]] = pos
		}
	}
	return nil
}

// MustInsert is Insert that panics on error; for literals in tests and
// examples.
func (r *Relation) MustInsert(vals ...value.Value) {
	if err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// InsertStrings inserts a tuple given as text, parsing each field
// according to the schema's declared kind ("null" and "" become NULL).
func (r *Relation) InsertStrings(fields ...string) error {
	if len(fields) != r.schema.Arity() {
		return fmt.Errorf("relation %s: %d fields, schema wants %d",
			r.schema.Name(), len(fields), r.schema.Arity())
	}
	t := make(Tuple, len(fields))
	for i, f := range fields {
		v, err := value.Parse(f, r.schema.Attr(i).Kind)
		if err != nil {
			return fmt.Errorf("relation %s: field %d: %w", r.schema.Name(), i, err)
		}
		t[i] = v
	}
	return r.Insert(t)
}

// LookupKey finds the tuple whose primary-key projection equals the given
// values (in primary-key attribute order). It returns the tuple index or
// -1. NULL key values never match.
//
//entitylint:hotpath nolock,noobs,noio
func (r *Relation) LookupKey(keyVals ...value.Value) int {
	key := r.schema.PrimaryKey()
	if len(keyVals) != len(key) {
		return -1
	}
	var b strings.Builder
	for i, v := range keyVals {
		if v.IsNull() {
			return -1
		}
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.Key())
	}
	if pos, ok := r.keyIdx[0][b.String()]; ok {
		return pos
	}
	return -1
}

// Project returns the values of tuple t for the named attributes, in
// order.
func (r *Relation) Project(t Tuple, attrs []string) (Tuple, error) {
	out := make(Tuple, len(attrs))
	for i, a := range attrs {
		j := r.schema.Index(a)
		if j < 0 {
			return nil, fmt.Errorf("relation %s: no attribute %q", r.schema.Name(), a)
		}
		out[i] = t[j]
	}
	return out, nil
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := New(r.schema)
	out.bag = r.bag
	out.tuples = make([]Tuple, len(r.tuples))
	for i, t := range r.tuples {
		out.tuples[i] = t.Clone()
	}
	for ki := range r.keyIdx {
		for k, v := range r.keyIdx[ki] {
			out.keyIdx[ki][k] = v
		}
	}
	return out
}

// Equal reports whether two relations have equal schemas and the same
// multiset of tuples (order-insensitive, storage-level identity).
func (r *Relation) Equal(o *Relation) bool {
	if !r.schema.Equal(o.schema) || r.Len() != o.Len() {
		return false
	}
	counts := make(map[string]int, r.Len())
	for _, t := range r.tuples {
		counts[t.Key()]++
	}
	for _, t := range o.tuples {
		counts[t.Key()]--
		if counts[t.Key()] < 0 {
			return false
		}
	}
	return true
}

// Sort orders tuples by the given attributes (ascending, value.Compare),
// in place. With no attributes it sorts by the whole tuple. Sorting
// re-indexes keys.
func (r *Relation) Sort(attrs ...string) error {
	idx := make([]int, 0, len(attrs))
	for _, a := range attrs {
		j := r.schema.Index(a)
		if j < 0 {
			return fmt.Errorf("relation %s: sort: no attribute %q", r.schema.Name(), a)
		}
		idx = append(idx, j)
	}
	if len(idx) == 0 {
		for j := 0; j < r.schema.Arity(); j++ {
			idx = append(idx, j)
		}
	}
	sort.SliceStable(r.tuples, func(a, b int) bool {
		ta, tb := r.tuples[a], r.tuples[b]
		for _, j := range idx {
			if c := value.Compare(ta[j], tb[j]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	r.reindex()
	return nil
}

func (r *Relation) reindex() {
	keys := r.schema.Keys()
	for ki := range r.keyIdx {
		r.keyIdx[ki] = make(map[string]int)
	}
	for pos, t := range r.tuples {
		for ki, key := range keys {
			if proj, full := r.keyProjection(t, key); full {
				r.keyIdx[ki][proj] = pos
			}
		}
	}
}

// String renders the relation as an aligned text table in the prototype's
// style: a header line with attribute names, a dashed rule, then one line
// per tuple with NULLs printed as "null".
func (r *Relation) String() string {
	return Format(r.schema.Name(), r.schema.AttrNames(), r.tuples)
}

// Format renders any header + rows as the aligned text table used by the
// prototype's print utilities (§6.3).
func Format(title string, header []string, rows []Tuple) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	cells := make([][]string, len(rows))
	for ri, row := range rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("-", max(len(title), 8)))
		b.WriteByte('\n')
	}
	for i, h := range header {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], h)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package relation

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"entityid/internal/schema"
	"entityid/internal/value"
)

func mkSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew("R",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "street", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
		},
		[]string{"name", "street"},
	)
}

func mkTable1R(t *testing.T) *Relation {
	t.Helper()
	r := New(mkSchema(t))
	r.MustInsert(value.String("VillageWok"), value.String("Wash.Ave."), value.String("Chinese"))
	r.MustInsert(value.String("Ching"), value.String("Co.B Rd."), value.String("Chinese"))
	r.MustInsert(value.String("OldCountry"), value.String("Co.B2 Rd."), value.String("American"))
	return r
}

func TestInsertAndAccess(t *testing.T) {
	r := mkTable1R(t)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	v, err := r.Value(0, "cuisine")
	if err != nil || v.Str() != "Chinese" {
		t.Errorf("Value(0, cuisine) = %v, %v", v, err)
	}
	if _, err := r.Value(0, "bogus"); err == nil {
		t.Error("Value on unknown attribute did not fail")
	}
	if got := r.MustValue(1, "name").Str(); got != "Ching" {
		t.Errorf("MustValue = %q", got)
	}
}

func TestInsertArityAndKindChecks(t *testing.T) {
	r := New(mkSchema(t))
	if err := r.Insert(Tuple{value.String("a")}); err == nil {
		t.Error("short tuple accepted")
	}
	err := r.Insert(Tuple{value.String("a"), value.Int(1), value.String("c")})
	if err == nil || !strings.Contains(err.Error(), "schema wants string") {
		t.Errorf("kind mismatch error = %v", err)
	}
	// NULL is allowed in any attribute.
	if err := r.Insert(Tuple{value.String("a"), value.String("b"), value.Null}); err != nil {
		t.Errorf("NULL value rejected: %v", err)
	}
}

func TestKeyEnforcement(t *testing.T) {
	r := mkTable1R(t)
	// Same (name, street) => key violation.
	err := r.Insert(Tuple{value.String("VillageWok"), value.String("Wash.Ave."), value.String("Thai")})
	if err == nil || !strings.Contains(err.Error(), "key (name,street) violation") {
		t.Errorf("key violation error = %v", err)
	}
	// Example 1's insertion: same name, different street is fine — this is
	// exactly why name alone cannot identify restaurants.
	if err := r.Insert(Tuple{value.String("VillageWok"), value.String("Penn.Ave."), value.String("Chinese")}); err != nil {
		t.Errorf("distinct street rejected: %v", err)
	}
}

func TestKeyEnforcementSkipsNulls(t *testing.T) {
	r := New(mkSchema(t))
	// Two tuples with NULL street: not a key violation, because a NULL key
	// projection is not indexed (extended relations carry NULLs in key
	// attributes).
	if err := r.Insert(Tuple{value.String("a"), value.Null, value.Null}); err != nil {
		t.Fatalf("first NULL-key tuple: %v", err)
	}
	if err := r.Insert(Tuple{value.String("a"), value.Null, value.Null}); err != nil {
		t.Errorf("second NULL-key tuple rejected: %v", err)
	}
}

func TestMultipleCandidateKeys(t *testing.T) {
	s := schema.MustNew("E",
		[]schema.Attribute{
			{Name: "empno", Kind: value.KindInt},
			{Name: "ssn", Kind: value.KindString},
			{Name: "name", Kind: value.KindString},
		},
		[]string{"empno"}, []string{"ssn"},
	)
	r := New(s)
	r.MustInsert(value.Int(1), value.String("111"), value.String("ann"))
	err := r.Insert(Tuple{value.Int(2), value.String("111"), value.String("bob")})
	if err == nil || !strings.Contains(err.Error(), "key (ssn)") {
		t.Errorf("second candidate key not enforced: %v", err)
	}
}

func TestLookupKey(t *testing.T) {
	r := mkTable1R(t)
	if got := r.LookupKey(value.String("Ching"), value.String("Co.B Rd.")); got != 1 {
		t.Errorf("LookupKey = %d, want 1", got)
	}
	if got := r.LookupKey(value.String("Ching")); got != -1 {
		t.Errorf("LookupKey wrong arity = %d, want -1", got)
	}
	if got := r.LookupKey(value.String("Nobody"), value.String("Nowhere")); got != -1 {
		t.Errorf("LookupKey missing = %d, want -1", got)
	}
	if got := r.LookupKey(value.Null, value.String("Wash.Ave.")); got != -1 {
		t.Errorf("LookupKey with NULL = %d, want -1", got)
	}
}

func TestInsertStrings(t *testing.T) {
	r := New(mkSchema(t))
	if err := r.InsertStrings("VillageWok", "Wash.Ave.", "Chinese"); err != nil {
		t.Fatalf("InsertStrings: %v", err)
	}
	if err := r.InsertStrings("x", "y", "null"); err != nil {
		t.Fatalf("InsertStrings null: %v", err)
	}
	if !r.Tuple(1)[2].IsNull() {
		t.Error("null literal did not parse to NULL")
	}
	if err := r.InsertStrings("only-two", "fields"); err == nil {
		t.Error("wrong field count accepted")
	}
	intRel := New(schema.MustNew("N", []schema.Attribute{{Name: "n", Kind: value.KindInt}}))
	if err := intRel.InsertStrings("notanint"); err == nil {
		t.Error("bad int accepted")
	}
}

func TestProjectTuple(t *testing.T) {
	r := mkTable1R(t)
	p, err := r.Project(r.Tuple(0), []string{"cuisine", "name"})
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p[0].Str() != "Chinese" || p[1].Str() != "VillageWok" {
		t.Errorf("Project = %v", p)
	}
	if _, err := r.Project(r.Tuple(0), []string{"zzz"}); err == nil {
		t.Error("Project unknown attribute did not fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := mkTable1R(t)
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatal("clone not Equal to original")
	}
	c.MustInsert(value.String("New"), value.String("St."), value.String("Thai"))
	if r.Len() == c.Len() {
		t.Error("mutating clone changed original length")
	}
	if r.Equal(c) {
		t.Error("clone still Equal after divergence")
	}
	// Key index in clone must be live.
	if got := c.LookupKey(value.String("New"), value.String("St.")); got != 3 {
		t.Errorf("clone LookupKey = %d", got)
	}
}

func TestEqualOrderInsensitive(t *testing.T) {
	a := mkTable1R(t)
	b := New(mkSchema(t))
	// Insert in reverse order.
	for i := a.Len() - 1; i >= 0; i-- {
		if err := b.Insert(a.Tuple(i).Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Equal(b) {
		t.Error("order-permuted relations not Equal")
	}
}

func TestEqualDetectsMultisetDifference(t *testing.T) {
	s := schema.MustNew("M", []schema.Attribute{{Name: "a", Kind: value.KindString}, {Name: "b", Kind: value.KindString}})
	mk := func(rows ...[2]string) *Relation {
		r := New(s)
		for _, row := range rows {
			// No declared key: full-attribute key skips NULLs, so duplicate
			// rows need a NULL to coexist — use distinct b to avoid that.
			r.MustInsert(value.String(row[0]), value.String(row[1]))
		}
		return r
	}
	a := mk([2]string{"x", "1"}, [2]string{"y", "2"})
	b := mk([2]string{"x", "1"}, [2]string{"y", "3"})
	if a.Equal(b) {
		t.Error("different relations Equal")
	}
}

func TestSortDeterminism(t *testing.T) {
	r := mkTable1R(t)
	if err := r.Sort("name"); err != nil {
		t.Fatalf("Sort: %v", err)
	}
	names := []string{}
	for _, tup := range r.Tuples() {
		names = append(names, tup[0].Str())
	}
	want := []string{"Ching", "OldCountry", "VillageWok"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("sorted names = %v, want %v", names, want)
		}
	}
	// Index must survive sorting.
	if got := r.LookupKey(value.String("VillageWok"), value.String("Wash.Ave.")); got != 2 {
		t.Errorf("LookupKey after sort = %d, want 2", got)
	}
	if err := r.Sort("bogus"); err == nil {
		t.Error("Sort on unknown attribute did not fail")
	}
	// Sort with no attributes sorts by whole tuple.
	if err := r.Sort(); err != nil {
		t.Errorf("whole-tuple Sort: %v", err)
	}
}

func TestTupleKeyInjectiveQuick(t *testing.T) {
	f := func(a1, a2, b1, b2 string) bool {
		t1 := Tuple{value.String(a1), value.String(a2)}
		t2 := Tuple{value.String(b1), value.String(b2)}
		return (t1.Key() == t2.Key()) == t1.Identical(t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleIdentical(t *testing.T) {
	a := Tuple{value.String("x"), value.Null}
	b := Tuple{value.String("x"), value.Null}
	if !a.Identical(b) {
		t.Error("tuples with NULLs not Identical")
	}
	if a.Identical(Tuple{value.String("x")}) {
		t.Error("different arity Identical")
	}
}

func TestFormatAndString(t *testing.T) {
	r := mkTable1R(t)
	out := r.String()
	for _, want := range []string{"R", "name", "street", "cuisine", "VillageWok", "Wash.Ave."} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q in:\n%s", want, out)
		}
	}
	// NULL renders as "null".
	n := New(mkSchema(t))
	n.MustInsert(value.String("a"), value.String("b"), value.Null)
	if !strings.Contains(n.String(), "null") {
		t.Errorf("NULL not rendered as null:\n%s", n.String())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := mkTable1R(t)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV("R", &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !r.Equal(back) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", r, back)
	}
	if !back.Schema().IsKey([]string{"name", "street"}) {
		t.Error("key lost in round trip")
	}
}

func TestReadCSVHeaderForms(t *testing.T) {
	in := "*id:int,name,score:float,ok:bool\n1,ann,2.5,true\n2,bob,null,false\n"
	r, err := ReadCSV("T", strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if got := r.MustValue(0, "id"); got.IntVal() != 1 {
		t.Errorf("id = %v", got)
	}
	if got := r.MustValue(0, "score"); got.FloatVal() != 2.5 {
		t.Errorf("score = %v", got)
	}
	if !r.MustValue(1, "score").IsNull() {
		t.Error("null float not NULL")
	}
	if !r.Schema().IsKey([]string{"id"}) {
		t.Error("starred key not honored")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad kind", "a:llama\nx\n"},
		{"bad value", "a:int\nnotint\n"},
		{"key violation", "*a\nx\nx\n"},
		{"ragged", "a,b\nonly-one-without-quote,\"x\",extra\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV("T", strings.NewReader(c.in)); err == nil {
				t.Errorf("ReadCSV(%q) succeeded, want error", c.in)
			}
		})
	}
}

package relation

import (
	"testing"

	"entityid/internal/schema"
	"entityid/internal/value"
)

func TestNewBagAllowsDuplicates(t *testing.T) {
	sch := schema.MustNew("B", []schema.Attribute{
		{Name: "x", Kind: value.KindString},
	}, []string{"x"})
	b := NewBag(sch)
	b.MustInsert(value.String("dup"))
	if err := b.Insert(Tuple{value.String("dup")}); err != nil {
		t.Fatalf("bag rejected duplicate: %v", err)
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d", b.Len())
	}
	// Still kind-checked.
	if err := b.Insert(Tuple{value.Int(1)}); err == nil {
		t.Error("bag accepted wrong kind")
	}
	// LookupKey resolves to the last insertion.
	if got := b.LookupKey(value.String("dup")); got != 1 {
		t.Errorf("LookupKey = %d, want 1 (last inserted)", got)
	}
}

func TestCanInsert(t *testing.T) {
	sch := schema.MustNew("R", []schema.Attribute{
		{Name: "a", Kind: value.KindString},
		{Name: "b", Kind: value.KindInt},
	}, []string{"a"})
	r := New(sch)
	r.MustInsert(value.String("x"), value.Int(1))

	if err := r.CanInsert(Tuple{value.String("y"), value.Int(2)}); err != nil {
		t.Errorf("CanInsert(valid) = %v", err)
	}
	if err := r.CanInsert(Tuple{value.String("x"), value.Int(3)}); err == nil {
		t.Error("CanInsert accepted key violation")
	}
	if err := r.CanInsert(Tuple{value.String("y")}); err == nil {
		t.Error("CanInsert accepted wrong arity")
	}
	if err := r.CanInsert(Tuple{value.Int(1), value.Int(2)}); err == nil {
		t.Error("CanInsert accepted wrong kind")
	}
	// CanInsert must not mutate: the valid probe tuple is still
	// insertable afterwards, and Len is unchanged.
	if r.Len() != 1 {
		t.Errorf("CanInsert mutated: Len = %d", r.Len())
	}
	if err := r.Insert(Tuple{value.String("y"), value.Int(2)}); err != nil {
		t.Errorf("post-probe insert failed: %v", err)
	}
	// Bags accept duplicates in CanInsert too.
	bag := NewBag(sch)
	bag.MustInsert(value.String("x"), value.Int(1))
	if err := bag.CanInsert(Tuple{value.String("x"), value.Int(1)}); err != nil {
		t.Errorf("bag CanInsert(duplicate) = %v", err)
	}
}

func TestBagCloneStaysBag(t *testing.T) {
	sch := schema.MustNew("B", []schema.Attribute{
		{Name: "x", Kind: value.KindString},
	}, []string{"x"})
	b := NewBag(sch)
	b.MustInsert(value.String("dup"))
	c := b.Clone()
	if err := c.Insert(Tuple{value.String("dup")}); err != nil {
		t.Errorf("cloned bag rejected duplicate: %v", err)
	}
	// And a cloned set relation stays a set.
	s := New(sch)
	s.MustInsert(value.String("dup"))
	s2 := s.Clone()
	if err := s2.Insert(Tuple{value.String("dup")}); err == nil {
		t.Error("cloned set accepted duplicate")
	}
}

package hub

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"entityid/internal/datagen"
)

// TestLoadSnapshotNoGoroutineLeak hammers LoadSnapshot with bit-rotted
// streams (the fuzz workload in miniature) and checks the per-section
// decode goroutines are always reaped, on failure paths included.
func TestLoadSnapshotNoGoroutineLeak(t *testing.T) {
	h, _ := multiHub(t, datagen.MultiConfig{
		Sources: 2, Entities: 12, PresenceFrac: 0.8, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 5,
	})
	h.snapChunkBytes = 1 << 10
	var valid bytes.Buffer
	if _, err := h.SaveSnapshot(&valid); err != nil {
		t.Fatal(err)
	}
	base := valid.Bytes()
	rng := rand.New(rand.NewSource(1))
	before := runtime.NumGoroutine()
	start := time.Now()
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		data := append([]byte(nil), base...)
		for n := 0; n < 1+rng.Intn(4); n++ {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		LoadSnapshot(bytes.NewReader(data))
	}
	t.Logf("%d loads in %v (%.0f/sec)", rounds, time.Since(start), rounds/time.Since(start).Seconds())
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+5 {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

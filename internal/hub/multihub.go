// Assembly of hubs over datagen's K-source synthetic workloads, shared
// by the property tests, the ingest benchmarks and benchreport's perf
// record. Lives on the hub side of the package graph because datagen is
// imported by lower layers' tests and must stay hub-free.
package hub

import (
	"fmt"
	"time"

	"entityid/internal/datagen"
	"entityid/internal/relation"
	"entityid/internal/value"
)

// SpecFromMultiPair lifts a datagen pair description into a link spec.
func SpecFromMultiPair(mp datagen.MultiPair) PairSpec {
	return PairSpec{
		Left:   mp.Left,
		Right:  mp.Right,
		Attrs:  mp.Attrs,
		ExtKey: mp.ExtKey,
		ILFDs:  mp.ILFDs,
	}
}

// NewFromMulti assembles a hub over empty copies of the workload's
// sources with every pair linked — the streaming-ingest starting state.
func NewFromMulti(w *datagen.MultiWorkload) (*Hub, error) {
	h := New()
	for k, name := range w.Names {
		if err := h.AddSource(name, relation.New(w.Relations[k].Schema())); err != nil {
			return nil, err
		}
	}
	for i := 0; i < len(w.Names); i++ {
		for j := i + 1; j < len(w.Names); j++ {
			if err := h.Link(SpecFromMultiPair(w.Pair(i, j))); err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}

// MultiInserts flattens the workload into ingest items, in source-major
// order; callers shuffle for streaming experiments.
func MultiInserts(w *datagen.MultiWorkload) []Insert {
	var out []Insert
	for k, rel := range w.Relations {
		for _, t := range rel.Tuples() {
			out = append(out, Insert{Source: w.Names[k], Tuple: t.Clone()})
		}
	}
	return out
}

// BenchIngestItem is the i-th item of an endless ingest stream over a
// multi workload: the real items first, then fresh synthetic singleton
// tuples (matching the MultiGenerate schema, with keys that never
// collide). The mixed read/ingest serving benchmarks share it through
// NewServeBench so they always ingest the same workload shape.
func BenchIngestItem(names []string, items []Insert, i int) Insert {
	if i < len(items) {
		return items[i]
	}
	k := i - len(items)
	return Insert{Source: names[k%len(names)], Tuple: relation.Tuple{
		value.String(fmt.Sprintf("bench-extra-%d", k)),
		value.String(fmt.Sprintf("%d bench st", k)),
		value.Null, value.Null,
	}}
}

// ServeIngester is the background committer of a mixed read/ingest
// serving benchmark, started by NewServeBench. Stop it exactly once.
type ServeIngester struct {
	stop chan struct{}
	done chan error
	n    int
	ns   int64
}

// Stop halts the ingester and reports how many tuples it committed,
// over how long, and the first insert error if one stopped it early.
func (bi *ServeIngester) Stop() (ingested int, elapsedNS int64, err error) {
	close(bi.stop)
	err = <-bi.done
	return bi.n, bi.ns, err
}

// NewServeBench builds the mixed-serving benchmark state: a hub with
// the first half of the workload ingested and a running background
// ingester streaming the rest — then fresh synthetic singletons — until
// stopped, so timed reads always overlap a live commit path. Both
// BenchmarkHubServe and benchreport's serve series run on this one
// harness, so the mixed-load mechanics of the CI smoke bench and the
// recorded BENCH_match.json series can never drift apart (their
// workload configs still differ in scale, so absolute numbers are not
// comparable across the two).
func NewServeBench(w *datagen.MultiWorkload) (*Hub, *ServeIngester, error) {
	h, err := NewFromMulti(w)
	if err != nil {
		return nil, nil, err
	}
	items := MultiInserts(w)
	half := len(items) / 2
	for _, res := range h.IngestBatch(items[:half]) {
		if res.Err != nil {
			return nil, nil, res.Err
		}
	}
	ing := &ServeIngester{stop: make(chan struct{}), done: make(chan error, 1)}
	go func() {
		start := time.Now()
		finish := func(err error) {
			ing.ns = time.Since(start).Nanoseconds()
			ing.done <- err
		}
		for i := half; ; i++ {
			select {
			case <-ing.stop:
				finish(nil)
				return
			default:
			}
			it := BenchIngestItem(w.Names, items, i)
			if _, err := h.Insert(it.Source, it.Tuple); err != nil {
				finish(err)
				return
			}
			ing.n++
		}
	}()
	return h, ing, nil
}

// Assembly of hubs over datagen's K-source synthetic workloads, shared
// by the property tests, the ingest benchmarks and benchreport's perf
// record. Lives on the hub side of the package graph because datagen is
// imported by lower layers' tests and must stay hub-free.
package hub

import (
	"entityid/internal/datagen"
	"entityid/internal/relation"
)

// SpecFromMultiPair lifts a datagen pair description into a link spec.
func SpecFromMultiPair(mp datagen.MultiPair) PairSpec {
	return PairSpec{
		Left:   mp.Left,
		Right:  mp.Right,
		Attrs:  mp.Attrs,
		ExtKey: mp.ExtKey,
		ILFDs:  mp.ILFDs,
	}
}

// NewFromMulti assembles a hub over empty copies of the workload's
// sources with every pair linked — the streaming-ingest starting state.
func NewFromMulti(w *datagen.MultiWorkload) (*Hub, error) {
	h := New()
	for k, name := range w.Names {
		if err := h.AddSource(name, relation.New(w.Relations[k].Schema())); err != nil {
			return nil, err
		}
	}
	for i := 0; i < len(w.Names); i++ {
		for j := i + 1; j < len(w.Names); j++ {
			if err := h.Link(SpecFromMultiPair(w.Pair(i, j))); err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}

// MultiInserts flattens the workload into ingest items, in source-major
// order; callers shuffle for streaming experiments.
func MultiInserts(w *datagen.MultiWorkload) []Insert {
	var out []Insert
	for k, rel := range w.Relations {
		for _, t := range rel.Tuples() {
			out = append(out, Insert{Source: w.Names[k], Tuple: t.Clone()})
		}
	}
	return out
}

// Package hub generalizes the pairwise federation (federate) to N
// autonomous sources: the multi-database integration the paper frames
// in §1, where "a federated system" integrates "a number of autonomous
// databases" and entity identification is the prerequisite for every
// cross-database operation.
//
// A Hub registers named sources and links source pairs, each link
// carrying its own attribute correspondences, extended key, ILFDs and
// rules — pairwise knowledge stays pairwise, exactly as autonomous
// administration implies. Every link owns a live federate.Federation;
// the hub folds the pairwise matching tables into global entity
// clusters with a union-find (cluster.go), lifting the §3.2 uniqueness
// constraint transitively: a cluster may hold at most one tuple per
// source, and an insert whose pairwise matches would merge two tuples
// of one source is rejected with every pairwise state rolled back
// (nothing was committed), preserving §3.3 monotonicity — clusters
// only ever grow or merge.
//
// Ingest is concurrent: Insert prepares the new tuple against every
// pairwise federation of its source (federate's side-effect-free
// Prepare), checks the transitive constraint, and only then commits
// everywhere. Locking is per source, per pair and one commit lock,
// acquired in a fixed order (source → pairs by ordinal → commit), so
// inserts into disjoint regions of the topology proceed in parallel.
// Bulk ingest is streaming: IngestStream (pipeline.go) flows tuples
// through resident bounded-channel stages — validate, WAL-encode,
// commit — with backpressure, and IngestBatch rides the same stages.
//
// Reads scale independently of ingest: point reads (Lookup, ClusterAt)
// resolve the topology through an atomically published snapshot, the
// tuple store through per-source published views, and the cluster
// partition through the storage backend's cluster-record store — no
// read path takes the commit lock or any hub-global exclusive lock, so
// reads proceed concurrently with each other and with commits. Cluster
// enumeration streams (iter.go) instead of materialising the hub under
// a lock.
//
// Storage is a seam (internal/store): the hub talks to a pluggable
// Backend for cluster records, spilled pair tables and tuple
// registration. The default mem backend keeps everything resident;
// the disk backend bounds resident memory by spilling cold cluster
// records and cold pairwise federations and paging them back on
// demand (see pairFedLocked / maybeSpillPairs below for the pair
// lifecycle the hub drives).
package hub

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"entityid/internal/derive"
	"entityid/internal/federate"
	"entityid/internal/ilfd"
	"entityid/internal/match"
	"entityid/internal/obs"
	"entityid/internal/relation"
	"entityid/internal/resolve"
	"entityid/internal/rules"
	"entityid/internal/schema"
	"entityid/internal/store"
	"entityid/internal/store/mem"
	"entityid/internal/value"
)

// PairSpec configures the identification link between two registered
// sources: the per-pair knowledge a DBA supplies. Attrs maps integrated
// attribute names onto the two sources (AttrMap.R addresses Left,
// AttrMap.S addresses Right).
type PairSpec struct {
	Left, Right  string
	Attrs        []match.AttrMap
	ExtKey       []string
	ILFDs        ilfd.Set
	Identity     []rules.IdentityRule
	Distinct     []rules.DistinctnessRule
	DeriveMode   derive.Mode
	DisableProp1 bool
}

// sourceState is one registered source: the hub-owned canonical
// relation plus the links that involve it.
type sourceState struct {
	id   int
	name string
	//entitylint:published
	rel *relation.Relation
	// mu serialises inserts into this source, which keeps tuple
	// positions identical across the canonical relation and every
	// pairwise federation the source participates in.
	//entitylint:lock rank=30
	mu sync.Mutex
	//entitylint:published
	pairs []*pairState
	// attrOf maps integrated attribute names (from the pair specs) to
	// this source's attribute names, for the merged cross-source view.
	attrOf map[string]string
	// keyMu guards the relation's key index for point lookups: Lookup
	// takes it shared, and the commit path wraps rel.Insert plus the
	// view republication in it exclusively — so a key hit is always
	// covered by the view a reader loads afterwards.
	//entitylint:lock rank=60
	keyMu sync.RWMutex
	// view is the published snapshot of the committed tuples. Tuples are
	// immutable once inserted and the slice prefix a view exposes is
	// never rewritten, so readers materialise members lock-free from it.
	//entitylint:published
	view atomic.Pointer[tupleView]
}

// tupleView is one source's committed-tuple snapshot: everything below
// len(tuples) is committed and immutable. Republished on every commit.
type tupleView struct {
	tuples []relation.Tuple
}

// publishView re-publishes the source's committed tuples. Callers hold
// the commit lock (and keyMu exclusively on the insert path).
//
//entitylint:publishes
func (s *sourceState) publishView() {
	s.view.Store(&tupleView{tuples: s.rel.Tuples()})
}

// topoView is the read-path snapshot of the source topology, published
// atomically by AddSource so point reads resolve source names without
// touching the topology lock.
type topoView struct {
	sources []*sourceState
	byName  map[string]int
}

// pairState is one link. The live pairwise federation is held through
// an atomic pointer that is nil while the pair is spilled to the
// backend's pair store: mutators page it back in under mu before
// preparing against it, and snapshot capture reads the pointer
// lock-free (a spilled pair's table is served from the store — see
// copyPairMT). The spec is retained for snapshots and the WAL.
type pairState struct {
	id          int
	left, right int
	// The commit loop acquires several pairs' locks in sequence under
	// the source lock, hence multi.
	//entitylint:lock rank=40 multi
	mu   sync.Mutex
	fed  atomic.Pointer[federate.Federation]
	spec PairSpec
	// mtLen mirrors the federation's matching-table length. It is
	// written under mu + the commit lock (registration and the commit
	// loop) and read under either, so snapshot cuts and Stats see it
	// without paging a cold pair in.
	//entitylint:published
	mtLen int
	// lastUse orders pairs for spill eviction (hub.pairClock ticks).
	lastUse atomic.Int64
}

// Hub is the multi-source federation coordinator.
type Hub struct {
	// mu guards the topology (source and pair registration). Inserts
	// hold it shared; AddSource and Link hold it exclusively. Read paths
	// use the published topo snapshot instead.
	//entitylint:lock rank=20
	mu sync.RWMutex
	//entitylint:published
	sources []*sourceState
	//entitylint:published
	byName map[string]int
	//entitylint:published
	pairs []*pairState
	// topo is the atomically published topology snapshot the read paths
	// resolve source names through. Republished by AddSource.
	//entitylint:published
	topo atomic.Pointer[topoView]
	// commitMu serialises commits: every canonical-relation mutation and
	// every cluster-store publication happens under it, so the cluster
	// store has exactly one mutator at a time. Readers never take it —
	// they go through the per-source views and the store's Read path.
	//entitylint:lock rank=50
	commitMu sync.Mutex
	// backend is the storage layer (internal/store); clusters is its
	// cluster-record store, cached because every commit and point read
	// touches it.
	//entitylint:published
	backend store.Backend
	//entitylint:published
	clusters store.Clusters
	// caps is the backend's residency budget. HotPairs > 0 turns on
	// the pair spill lifecycle below.
	caps store.Caps
	// pairClock ticks lastUse stamps; hotPairs counts resident
	// federations; spillMu serialises spill passes.
	pairClock atomic.Int64
	hotPairs  atomic.Int64
	//entitylint:lock rank=10
	spillMu sync.Mutex
	// per is the durability layer (persist.go); nil for a memory-only
	// hub. Mutators append to the write-ahead log before committing, so
	// a crash can lose an unacknowledged insert but never resurrect a
	// rejected one or tear a committed one.
	per *walLogger
	// pipe is the resident streaming-ingest machinery (pipeline.go):
	// stages spawn when the first stream or multi-item batch attaches
	// and exit when the last detaches.
	pipe pipeline
	// snapChunkBytes overrides the snapshot chunk payload budget
	// (0 means wal.DefaultChunkPayload); set by Open from Options and by
	// tests exercising the multi-chunk paths at small scale.
	snapChunkBytes int
	// health is the degraded-mode state machine (degraded.go): ingest
	// fails fast while the disk is sick, reads keep serving.
	health healthState
}

// New creates an empty hub on the default in-memory backend.
func New() *Hub {
	return NewWithBackend(nil)
}

// NewWithBackend creates an empty hub on the given storage backend
// (nil means a fresh in-memory backend). The hub owns the backend and
// closes it on Close.
func NewWithBackend(b store.Backend) *Hub {
	if b == nil {
		b = mem.New()
	}
	h := &Hub{byName: map[string]int{}, backend: b, clusters: b.Clusters(), caps: b.Caps()}
	h.topo.Store(&topoView{byName: map[string]int{}})
	return h
}

// publishTopo re-publishes the read-path topology snapshot. Callers
// hold h.mu exclusively.
//
//entitylint:publishes
func (h *Hub) publishTopo() {
	t := &topoView{
		sources: append([]*sourceState(nil), h.sources...),
		byName:  make(map[string]int, len(h.byName)),
	}
	for k, v := range h.byName {
		t.byName[k] = v
	}
	h.topo.Store(t)
}

// AddSource registers an autonomous source under a unique name. The
// relation seeds the hub's canonical copy (cloned — later hub inserts
// do not touch the original); pass an empty relation to start blank.
//
//entitylint:commitpath
func (h *Hub) AddSource(name string, rel *relation.Relation) error {
	if name == "" {
		return fmt.Errorf("hub: empty source name")
	}
	if rel == nil {
		return fmt.Errorf("hub: source %q: nil relation", name)
	}
	if err := h.healthErr(); err != nil {
		return fmt.Errorf("hub: source %q: %w", name, err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.byName[name]; dup {
		return fmt.Errorf("hub: source %q already registered", name)
	}
	if h.per != nil {
		if err := h.per.appendAddSource(name, rel); err != nil {
			return fmt.Errorf("hub: source %q: %w", name, h.ingestFailed(err))
		}
	}
	id := len(h.sources)
	s := &sourceState{
		id:     id,
		name:   name,
		rel:    rel.Clone(),
		attrOf: map[string]string{},
	}
	h.backend.Tuples().Attach(id, s.rel)
	s.publishView()
	h.sources = append(h.sources, s)
	h.byName[name] = id
	h.publishTopo()
	return nil
}

// addSourceOwned registers a source taking ownership of rel — no clone,
// no write-ahead logging. It is the loader/replay path: the relation
// was just built from persisted records, so cloning it would only
// re-buffer state that already lives nowhere else (the triple-buffered
// load spike this avoids), and logging it would re-log a record being
// replayed.
func (h *Hub) addSourceOwned(name string, rel *relation.Relation) error {
	if name == "" {
		return fmt.Errorf("hub: empty source name")
	}
	if rel == nil {
		return fmt.Errorf("hub: source %q: nil relation", name)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.byName[name]; dup {
		return fmt.Errorf("hub: source %q already registered", name)
	}
	id := len(h.sources)
	s := &sourceState{
		id:     id,
		name:   name,
		rel:    rel,
		attrOf: map[string]string{},
	}
	h.backend.Tuples().Attach(id, s.rel)
	s.publishView()
	h.sources = append(h.sources, s)
	h.byName[name] = id
	h.publishTopo()
	return nil
}

// Link registers the identification link between two sources and
// builds its pairwise federation from the sources' current contents.
// The initial matching table must verify pairwise (federate.New fails
// closed) and fold into the global clusters without a transitive
// uniqueness violation; on any failure the hub is unchanged.
func (h *Hub) Link(spec PairSpec) error {
	if err := h.healthErr(); err != nil {
		return fmt.Errorf("hub: link %q-%q: %w", spec.Left, spec.Right, err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.linkLocked(spec, nil)
}

// linkLocked implements Link. With a non-nil restore state (snapshot
// recovery), the federation is rebuilt through federate.Restore, which
// verifies the rebuilt matching table against the saved one. Callers
// hold h.mu exclusively.
func (h *Hub) linkLocked(spec PairSpec, restore *federate.State) error {
	li, ri, err := h.resolveLinkLocked(spec)
	if err != nil {
		return err
	}
	cfg := h.matchConfig(li, ri, spec)
	var fed *federate.Federation
	if restore != nil {
		fed, err = federate.Restore(cfg, *restore)
	} else {
		fed, err = federate.New(cfg)
	}
	if err != nil {
		return fmt.Errorf("hub: link %q-%q: %w", spec.Left, spec.Right, err)
	}
	return h.registerLinkLocked(spec, li, ri, fed)
}

// matchConfig builds a pair's matching configuration over the hub's
// canonical relations — the single place the PairSpec→match.Config
// mapping lives, shared by live linking and snapshot restoration so
// the two can never diverge on a knob.
func (h *Hub) matchConfig(li, ri int, spec PairSpec) match.Config {
	return match.Config{
		R:            h.sources[li].rel,
		S:            h.sources[ri].rel,
		Attrs:        spec.Attrs,
		ExtKey:       spec.ExtKey,
		ILFDs:        spec.ILFDs,
		Identity:     spec.Identity,
		Distinct:     spec.Distinct,
		DeriveMode:   spec.DeriveMode,
		DisableProp1: spec.DisableProp1,
	}
}

// linkRestored registers a link whose federation was already rebuilt
// and verified (the snapshot loader restores pairwise federations in
// parallel before folding them in sequentially). Callers hold h.mu
// exclusively.
func (h *Hub) linkRestored(spec PairSpec, fed *federate.Federation) error {
	li, ri, err := h.resolveLinkLocked(spec)
	if err != nil {
		return err
	}
	return h.registerLinkLocked(spec, li, ri, fed)
}

// resolveLinkLocked validates a link spec against the topology: both
// sources registered, not self-linked, not already linked, attribute
// names consistent. Callers hold h.mu exclusively.
func (h *Hub) resolveLinkLocked(spec PairSpec) (li, ri int, err error) {
	li, ok := h.byName[spec.Left]
	if !ok {
		return 0, 0, fmt.Errorf("hub: link: unknown source %q", spec.Left)
	}
	ri, ok = h.byName[spec.Right]
	if !ok {
		return 0, 0, fmt.Errorf("hub: link: unknown source %q", spec.Right)
	}
	if li == ri {
		return 0, 0, fmt.Errorf("hub: link: source %q linked to itself", spec.Left)
	}
	for _, p := range h.pairs {
		if (p.left == li && p.right == ri) || (p.left == ri && p.right == li) {
			return 0, 0, fmt.Errorf("hub: link: sources %q and %q already linked", spec.Left, spec.Right)
		}
	}
	// The merged view needs a consistent integrated-name -> source-attr
	// mapping across all links of a source; validate before mutating.
	if err := checkAttrNames(h.sources[li], h.sources[ri], spec.Attrs); err != nil {
		return 0, 0, err
	}
	return li, ri, nil
}

// registerLinkLocked folds a validated link's initial matching table
// into the clusters and commits the registration. Callers hold h.mu
// exclusively.
//
//entitylint:commitpath
func (h *Hub) registerLinkLocked(spec PairSpec, li, ri int, fed *federate.Federation) error {
	left, right := h.sources[li], h.sources[ri]
	// Fold the initial matching table speculatively: seed a scratch
	// union-find with the current clusters of every involved node,
	// check-and-union each pair there, and only publish the merged
	// clusters to the cluster store once every pair proved sound — on
	// failure the store is untouched.
	h.commitMu.Lock()
	defer h.commitMu.Unlock()
	scratch := newClusterSet()
	seeded := map[node]bool{}
	// origLen records each seeded node's pre-link cluster size, so the
	// publish loop below can skip unchanged components without touching
	// the store again (store reads stay ahead of the WAL append — the
	// registration cannot fail once logged).
	origLen := map[node]int{}
	seed := func(n node) error {
		if seeded[n] {
			return nil
		}
		ms, err := h.clusters.Members(n)
		if err != nil {
			return err
		}
		for _, m := range ms {
			seeded[m] = true
			origLen[m] = len(ms)
		}
		for i := 1; i < len(ms); i++ {
			scratch.union(ms[0], ms[i])
		}
		return nil
	}
	for _, pr := range fed.MT().Pairs {
		a, b := node{Src: li, Idx: pr.RIndex}, node{Src: ri, Idx: pr.SIndex}
		if err := seed(a); err != nil {
			return fmt.Errorf("hub: link %q-%q: %w", spec.Left, spec.Right, err)
		}
		if err := seed(b); err != nil {
			return fmt.Errorf("hub: link %q-%q: %w", spec.Left, spec.Right, err)
		}
		if err := scratch.checkMerge(a, []node{b}, h.sourceName); err != nil {
			return fmt.Errorf("hub: link %q-%q: initial pair (%d,%d): %w",
				spec.Left, spec.Right, pr.RIndex, pr.SIndex, err)
		}
		scratch.union(a, b)
	}
	if h.per != nil {
		if err := h.per.appendLink(spec); err != nil {
			return fmt.Errorf("hub: link %q-%q: %w", spec.Left, spec.Right, h.ingestFailed(err))
		}
	}
	p := &pairState{id: len(h.pairs), left: li, right: ri, spec: spec, mtLen: fed.MT().Len()}
	p.fed.Store(fed)
	p.lastUse.Store(h.pairClock.Add(1))
	h.hotPairs.Add(1)
	h.pairs = append(h.pairs, p)
	left.pairs = append(left.pairs, p)
	right.pairs = append(right.pairs, p)
	recordAttrNames(left, right, spec.Attrs)
	// Publish every scratch component that grew past its pre-existing
	// record (a component equal in size to its first member's record is
	// that record — memberships only ever grow).
	byRoot := map[node][]node{}
	for n := range scratch.parent {
		byRoot[scratch.find(n)] = append(byRoot[scratch.find(n)], n)
	}
	for _, ms := range byRoot {
		if len(ms) < 2 {
			continue
		}
		if origLen[ms[0]] == len(ms) {
			continue
		}
		sortNodes(ms)
		h.clusters.Publish(ms)
	}
	return nil
}

// checkAttrNames verifies a link's attribute map agrees with the
// integrated names already established by the sources' other links.
func checkAttrNames(left, right *sourceState, attrs []match.AttrMap) error {
	for _, am := range attrs {
		if am.R != "" {
			if prev, ok := left.attrOf[am.Name]; ok && prev != am.R {
				return fmt.Errorf("hub: link: integrated attribute %q maps to both %q and %q in source %q",
					am.Name, prev, am.R, left.name)
			}
		}
		if am.S != "" {
			if prev, ok := right.attrOf[am.Name]; ok && prev != am.S {
				return fmt.Errorf("hub: link: integrated attribute %q maps to both %q and %q in source %q",
					am.Name, prev, am.S, right.name)
			}
		}
	}
	return nil
}

// recordAttrNames commits a validated link's integrated-name mapping.
func recordAttrNames(left, right *sourceState, attrs []match.AttrMap) {
	for _, am := range attrs {
		if am.R != "" {
			left.attrOf[am.Name] = am.R
		}
		if am.S != "" {
			right.attrOf[am.Name] = am.S
		}
	}
}

// Member is one tuple of one cluster.
type Member struct {
	Source string
	Index  int
	Tuple  relation.Tuple
}

// Cluster is one global entity: its members across sources, sorted by
// (source registration order, tuple position). ID is derived from the
// smallest member, so it is stable under any insert order producing the
// same partition.
type Cluster struct {
	ID      string
	Members []Member
}

// Receipt reports a successful insert: the tuple's position in its
// source, the pairwise matches it produced, and its cluster after the
// insert.
type Receipt struct {
	Source  string
	Index   int
	Matched []Member
	Cluster Cluster
}

// Insert streams one tuple into a source: it is identified against
// every linked source concurrently-safely, and either committed
// everywhere — canonical relation, every pairwise federation, global
// clusters — or rejected everywhere. Rejections (source key violation,
// pairwise §3.2 uniqueness or consistency violation, transitive
// cluster-uniqueness violation) leave the hub exactly as it was.
func (h *Hub) Insert(source string, t relation.Tuple) (*Receipt, error) {
	return h.insertTraced(source, t, nil)
}

// insertTraced is the traced commit path shared by Insert and the
// pipeline's commit stage: health fast path, slow-op tracing, outcome
// counters. payload, when non-nil, is the pre-encoded WAL record for
// this exact (source, tuple) — the encode stage produces it so the
// write-ahead append needs no marshaling under the locks.
func (h *Hub) insertTraced(source string, t relation.Tuple, payload []byte) (*Receipt, error) {
	// Degraded/poisoned fast path: fail before taking any lock, so a
	// sick disk turns ingest into an immediate typed rejection instead
	// of a queue behind the failure.
	if err := h.healthErr(); err != nil {
		ingestUnavailable.Inc()
		return nil, fmt.Errorf("hub: source %q: %w", source, err)
	}
	op := obs.StartOp("insert", source)
	rec, err := h.insert(source, t, payload, &op)
	total := op.Finish(SlowOps)
	// Rebalance the resident-pair budget outside every insert lock —
	// a no-op unless the backend caps hot pairs and an insert paged
	// some in.
	h.maybeSpillPairs()
	if err != nil {
		ingestRejected.Inc()
		return nil, err
	}
	ingestOK.Inc()
	if total > 0 {
		mIngestSeconds.Observe(total)
	}
	return rec, nil
}

// insert is Insert's locked body; op marks its commit stages.
//
//entitylint:commitpath
func (h *Hub) insert(source string, t relation.Tuple, payload []byte, op *obs.Op) (*Receipt, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	si, ok := h.byName[source]
	if !ok {
		return nil, fmt.Errorf("hub: unknown source %q", source)
	}
	src := h.sources[si]
	src.mu.Lock()
	defer src.mu.Unlock()
	// Pair locks in ordinal order (source.pairs is ordinal-sorted by
	// construction): fixed acquisition order across all inserts.
	for _, p := range src.pairs {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	if err := src.rel.CanInsert(t); err != nil {
		return nil, fmt.Errorf("hub: source %q: %w", source, err)
	}
	// Page any spilled pairwise federation back in before preparing.
	// Under the pair locks both side relations are frozen, so the
	// restored federation verifies against exactly the lengths it was
	// spilled at (a cold pair implies frozen sides — every mutation of
	// either side pages the pair in first, through this very path).
	for _, p := range src.pairs {
		if _, err := h.pairFedLocked(p); err != nil {
			return nil, fmt.Errorf("hub: source %q: %w", source, err)
		}
		p.lastUse.Store(h.pairClock.Add(1))
	}
	// Phase 1: prepare against every pairwise federation, mutating
	// nothing, collecting the partner tuples the insert would match.
	pendings := make([]*federate.Pending, 0, len(src.pairs))
	var partners []node
	for _, p := range src.pairs {
		var pd *federate.Pending
		var err error
		if p.left == si {
			pd, err = p.fed.Load().PrepareR(t)
		} else {
			pd, err = p.fed.Load().PrepareS(t)
		}
		if err != nil {
			mUniqueness.Inc()
			return nil, fmt.Errorf("hub: source %q vs %q: %w", source, h.sources[p.other(si)].name, err)
		}
		for _, pr := range pd.Pairs() {
			if p.left == si {
				partners = append(partners, node{Src: p.right, Idx: pr.SIndex})
			} else {
				partners = append(partners, node{Src: p.left, Idx: pr.RIndex})
			}
		}
		pendings = append(pendings, pd)
	}
	n := node{Src: si, Idx: src.rel.Len()}
	// Phase 2: transitive uniqueness, then commit everywhere. The check
	// precedes every mutation, so rejection needs no undo; commits
	// cannot fail under the locks held here.
	h.commitMu.Lock()
	defer h.commitMu.Unlock()
	if err := store.CheckMerge(h.clusters, n, partners, h.sourceName); err != nil {
		if errors.Is(err, store.ErrUniqueness) {
			mUniqueness.Inc()
		}
		return nil, fmt.Errorf("hub: source %q: %w", source, err)
	}
	observeStage(stagePrepare, op.Stage("prepare"))
	// Write-ahead: the insert reaches the log before any in-memory
	// commit. A failed append rejects the insert with the hub unchanged
	// (at worst a torn, unacknowledged record reaches disk — recovery's
	// CRC check drops it), so replaying the log can never resurrect a
	// rejected insert or observe a torn commit. A persistent failure
	// (ENOSPC, EIO, unusable log) additionally degrades the hub to
	// read-only; the rejection is typed either way.
	if h.per != nil {
		var aerr error
		if payload != nil {
			aerr = h.per.appendPayload(payload)
		} else {
			aerr = h.per.appendInsert(source, t)
		}
		if aerr != nil {
			return nil, fmt.Errorf("hub: source %q: %w", source, h.ingestFailed(aerr))
		}
	}
	observeStage(stageWalAppend, op.Stage("wal_append"))
	for i, pd := range pendings {
		prs, err := pd.Commit()
		if err != nil {
			// Unreachable under the locking discipline. If it fires
			// anyway, in-memory pairwise state is torn mid-commit while
			// the WAL already holds the record: poison the hub —
			// fail-closed ingest, reads keep serving the published
			// views, restart replays the log into a consistent state.
			return nil, fmt.Errorf("hub: source %q: %w", source,
				h.poison(fmt.Errorf("pair %d commit after successful prepare: %v", src.pairs[i].id, err)))
		}
		src.pairs[i].mtLen += len(prs)
	}
	// The canonical insert and the view republication share the key
	// lock, so a reader whose key lookup finds the new tuple always
	// loads a view that covers it.
	src.keyMu.Lock()
	insErr := src.rel.Insert(t)
	if insErr == nil {
		src.publishView()
	}
	src.keyMu.Unlock()
	if insErr != nil {
		// Same invariant class as the pair-commit failure above: the
		// pairwise federations committed but the canonical relation
		// refused a tuple CanInsert accepted. Poison instead of panic.
		return nil, fmt.Errorf("hub: source %q: %w", source,
			h.poison(fmt.Errorf("canonical insert after CanInsert: %v", insErr)))
	}
	observeStage(stageApply, op.Stage("apply"))
	members, err := store.Apply(h.clusters, n, partners)
	if err != nil {
		// Practically unreachable: everything Apply folds was paged in
		// resident by CheckMerge (writer-side reads defer eviction to
		// Publish), so Apply performs no I/O. If storage fails here
		// anyway the WAL already holds the record — poison, like the
		// pair-commit case above.
		return nil, fmt.Errorf("hub: source %q: %w", source,
			h.poison(fmt.Errorf("cluster fold after successful check: %v", err)))
	}
	if len(partners) > 0 {
		mClusterMerges.Inc()
	}
	observeStage(stageClusterFold, op.Stage("cluster_fold"))
	if h.per != nil {
		h.per.noteCommit(h)
	}
	rec := &Receipt{Source: source, Index: n.Idx}
	for _, p := range partners {
		rec.Matched = append(rec.Matched, h.member(p))
	}
	rec.Cluster = h.clusterOf(n, members)
	return rec, nil
}

// sourceName renders a source ordinal. Callers hold at least h.mu
// shared.
func (h *Hub) sourceName(si int) string { return h.sources[si].name }

// other returns the pair's counterpart of source ordinal si.
func (p *pairState) other(si int) int {
	if p.left == si {
		return p.right
	}
	return p.left
}

// member materialises a node on the writer side. Callers hold commitMu
// (every relation mutation happens under it, so direct reads are safe).
func (h *Hub) member(n node) Member {
	s := h.sources[n.Src]
	return Member{Source: s.name, Index: n.Idx, Tuple: s.rel.Tuple(n.Idx)}
}

// clusterOf builds the Cluster over a sorted member set (nil means the
// implicit singleton {n}) on the writer side. Callers hold commitMu.
func (h *Hub) clusterOf(n node, members []node) Cluster {
	if len(members) == 0 {
		members = []node{n}
	}
	c := Cluster{ID: fmt.Sprintf("%s/%d", h.sources[members[0].Src].name, members[0].Idx)}
	for _, m := range members {
		c.Members = append(c.Members, h.member(m))
	}
	return c
}

// materialize builds the Cluster over a sorted member set on the read
// side: each member's tuple comes from its source's published view,
// which is guaranteed to cover the member because views are published
// before the cluster record that references them. A record can also
// name a source registered *after* the caller's topo snapshot was
// taken (the topology only grows, and the record was published after
// the source), so the snapshot is upgraded on demand — the current
// topo is always at least as new as any record already read. Lock-free.
func (h *Hub) materialize(t *topoView, members []node) Cluster {
	for _, m := range members {
		if m.Src >= len(t.sources) {
			t = h.topo.Load()
			break
		}
	}
	lead := t.sources[members[0].Src]
	c := Cluster{ID: fmt.Sprintf("%s/%d", lead.name, members[0].Idx)}
	for _, m := range members {
		s := t.sources[m.Src]
		c.Members = append(c.Members, Member{Source: s.name, Index: m.Idx, Tuple: s.view.Load().tuples[m.Idx]})
	}
	return c
}

// clusterRead resolves and materialises node n's cluster on the read
// side: one store read around the record lookup (paging a cold record
// in on the disk backend), then lock-free tuple access. The member set
// is immutable, so it is always a committed partition state — never
// torn mid-merge.
func (h *Hub) clusterRead(t *topoView, n node) (Cluster, error) {
	ms, err := h.clusters.Read(n)
	if err != nil {
		return Cluster{}, err
	}
	if ms == nil {
		ms = []node{n}
	}
	return h.materialize(t, ms), nil
}

// Insert is the unit of IngestBatch.
type Insert struct {
	Source string
	Tuple  relation.Tuple
}

// InsertResult is one IngestBatch outcome, in input order.
type InsertResult struct {
	Receipt *Receipt
	Err     error
}

// IngestBatch runs a batch of inserts through the resident ingest
// pipeline, reporting per-item results in input order; a rejected item
// leaves the hub unchanged and does not stop the batch. Commits happen
// strictly in input order, so batch results are deterministic. A
// single-item batch — the hot serving shape — commits directly with no
// goroutine spawned at all; larger batches are fed to the pipeline
// stages from the caller's goroutine.
func (h *Hub) IngestBatch(items []Insert) []InsertResult {
	mBatchSize.ObserveVal(int64(len(items)))
	out := make([]InsertResult, len(items))
	if len(items) == 0 {
		return out
	}
	var appended int64
	if h.per != nil {
		appended = h.per.appended.Load()
	}
	if len(items) == 1 {
		rec, err := h.Insert(items[0].Source, items[0].Tuple)
		out[0] = InsertResult{Receipt: rec, Err: err}
	} else {
		h.ingestBatchPipeline(items, out)
	}
	// Group commit: under the opt-in fsync policy the whole batch is
	// flushed with one final sync instead of one per item — skipped
	// when nothing in this batch reached the log (empty and
	// fully-rejected batches cost no fsync).
	if h.per != nil && h.per.appended.Load() != appended {
		h.per.flushSync()
	}
	return out
}

// SourceNames lists the registered sources in registration order.
func (h *Hub) SourceNames() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, len(h.sources))
	for i, s := range h.sources {
		out[i] = s.name
	}
	return out
}

// SourceSchema returns a source's schema.
func (h *Hub) SourceSchema(source string) (*schema.Schema, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	si, ok := h.byName[source]
	if !ok {
		return nil, fmt.Errorf("hub: unknown source %q", source)
	}
	return h.sources[si].rel.Schema(), nil
}

// SourceRelation returns a clone of a source's current canonical
// relation, for inspection and differential testing.
func (h *Hub) SourceRelation(source string) (*relation.Relation, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	si, ok := h.byName[source]
	if !ok {
		return nil, fmt.Errorf("hub: unknown source %q", source)
	}
	src := h.sources[si]
	src.keyMu.RLock()
	defer src.keyMu.RUnlock()
	return src.rel.Clone(), nil
}

// SourceLen returns a source's current committed tuple count.
//
//entitylint:hotpath nolock,noobs,noio
func (h *Hub) SourceLen(source string) (int, error) {
	t := h.topo.Load()
	si, ok := t.byName[source]
	if !ok {
		return 0, fmt.Errorf("hub: unknown source %q", source)
	}
	return len(t.sources[si].view.Load().tuples), nil
}

// Lookup finds a source tuple by its primary-key values and returns its
// cluster. It is a point read: the source's key lock shared for the key
// probe, one shard lock shared for the cluster record — no hub-global
// lock, so lookups scale with readers and proceed during ingest.
//
//entitylint:hotpath noobs,noio
func (h *Hub) Lookup(source string, key ...value.Value) (Cluster, error) {
	t := h.topo.Load()
	si, ok := t.byName[source]
	if !ok {
		return Cluster{}, fmt.Errorf("hub: unknown source %q", source)
	}
	src := t.sources[si]
	src.keyMu.RLock()
	idx := src.rel.LookupKey(key...)
	src.keyMu.RUnlock()
	if idx < 0 {
		return Cluster{}, fmt.Errorf("hub: source %q: no tuple with key %v", source, key)
	}
	return h.clusterRead(t, node{Src: si, Idx: idx})
}

// ClusterAt returns the cluster of the tuple at a source position — a
// point read, like Lookup.
//
//entitylint:hotpath noobs,noio
func (h *Hub) ClusterAt(source string, idx int) (Cluster, error) {
	t := h.topo.Load()
	si, ok := t.byName[source]
	if !ok {
		return Cluster{}, fmt.Errorf("hub: unknown source %q", source)
	}
	if idx < 0 || idx >= len(t.sources[si].view.Load().tuples) {
		return Cluster{}, fmt.Errorf("hub: source %q: no tuple %d", source, idx)
	}
	return h.clusterRead(t, node{Src: si, Idx: idx})
}

// MergedEntity is a cluster's single merged record: one value per
// integrated attribute, resolved across the member tuples.
type MergedEntity struct {
	Cluster Cluster
	// Values maps integrated attribute names to the merged value.
	Values map[string]value.Value
	// Conflicts lists the integrated attributes whose member values
	// disagreed (empty under resolve.Strict, which fails instead).
	Conflicts []string
}

// Merged resolves a cluster into one record per integrated attribute
// (§2's attribute-value-conflict resolution, lifted from two sides to N
// members via resolve.Reduce). Member values are folded in member
// order; attributes no member models stay NULL and are omitted.
func (h *Hub) Merged(c Cluster, strategy resolve.Strategy) (*MergedEntity, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := &MergedEntity{Cluster: c, Values: map[string]value.Value{}}
	attrs := map[string]bool{}
	for _, m := range c.Members {
		si, ok := h.byName[m.Source]
		if !ok {
			return nil, fmt.Errorf("hub: unknown source %q", m.Source)
		}
		for name := range h.sources[si].attrOf {
			attrs[name] = true
		}
	}
	names := make([]string, 0, len(attrs))
	for name := range attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vals := make([]value.Value, 0, len(c.Members))
		for _, m := range c.Members {
			s := h.sources[h.byName[m.Source]]
			attr, ok := s.attrOf[name]
			if !ok {
				continue
			}
			vals = append(vals, m.Tuple[s.rel.Schema().Index(attr)])
		}
		v, conflicted, err := resolve.Reduce(strategy, vals...)
		if err != nil {
			return nil, fmt.Errorf("hub: merge %q: %w", name, err)
		}
		if conflicted {
			out.Conflicts = append(out.Conflicts, name)
		}
		if !v.IsNull() {
			out.Values[name] = v
		}
	}
	return out, nil
}

// Stats summarises the hub for serving and monitoring.
type Stats struct {
	Sources  int
	Pairs    int
	Tuples   int
	Matches  int
	Clusters int
}

// Stats counts sources, links, tuples, pairwise matches and clusters.
// It is O(sources+pairs): tuple counts come from the published views
// and the cluster count from the store's running merge counter, so
// Stats never scans the hub or blocks ingest. Under concurrent ingest
// the counters are each individually accurate but may straddle a
// commit; at quiescence they are exact.
func (h *Hub) Stats() Stats {
	h.mu.RLock()
	st := Stats{Sources: len(h.sources), Pairs: len(h.pairs)}
	for _, p := range h.pairs {
		p.mu.Lock()
		st.Matches += p.mtLen
		p.mu.Unlock()
	}
	h.mu.RUnlock()
	// Load merged before the views: views only grow, so the difference
	// can transiently overcount clusters but never go negative.
	merged := h.clusters.Merged()
	t := h.topo.Load()
	for _, s := range t.sources {
		st.Tuples += len(s.view.Load().tuples)
	}
	st.Clusters = st.Tuples - int(merged)
	return st
}

// Pairs returns, per link, the two source names and the current
// pairwise matching-pair count, in link order.
type PairInfo struct {
	Left, Right string
	Matches     int
}

// PairInfos lists the registered links.
func (h *Hub) PairInfos() []PairInfo {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]PairInfo, len(h.pairs))
	for i, p := range h.pairs {
		p.mu.Lock()
		out[i] = PairInfo{
			Left:    h.sources[p.left].name,
			Right:   h.sources[p.right].name,
			Matches: p.mtLen,
		}
		p.mu.Unlock()
	}
	return out
}

// PairResult exposes one link's current match result for differential
// testing against batch construction (shared state; hold no reference
// across hub mutations).
func (h *Hub) PairResult(left, right string) (*match.Result, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	li, ok := h.byName[left]
	if !ok {
		return nil, fmt.Errorf("hub: unknown source %q", left)
	}
	ri, ok := h.byName[right]
	if !ok {
		return nil, fmt.Errorf("hub: unknown source %q", right)
	}
	for _, p := range h.pairs {
		if p.left == li && p.right == ri {
			p.mu.Lock()
			fed, err := h.pairFedLocked(p)
			p.mu.Unlock()
			if err != nil {
				return nil, err
			}
			return fed.Result(), nil
		}
	}
	return nil, fmt.Errorf("hub: sources %q and %q not linked", left, right)
}

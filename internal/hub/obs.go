// Hub metrics and the shared slow-op tracer, registered into the
// process-wide obs registry. Metrics are process-global: a process
// serving several hubs (tests do this) sees aggregates, which is what
// a scrape wants anyway. Hot-path children of labeled families are
// resolved once here so Insert never touches the family's lookup map.
package hub

import (
	"time"

	"entityid/internal/obs"
)

// SlowOps records per-stage timings of commits slower than its
// threshold (default 100ms; entityidd overrides it via flag and serves
// the ring at /debug/slow). The ring holds the 128 most recent slow
// operations.
var SlowOps = obs.NewTracer(128, 100*time.Millisecond)

var (
	mIngestStage = obs.Default.LatencyHistogramVec("hub_ingest_stage_seconds",
		"Ingest commit latency by stage", "stage")
	stagePrepare     = mIngestStage.With("prepare")
	stageWalAppend   = mIngestStage.With("wal_append")
	stageApply       = mIngestStage.With("apply")
	stageClusterFold = mIngestStage.With("cluster_fold")

	mIngestSeconds = obs.Default.LatencyHistogram("hub_ingest_commit_seconds",
		"End-to-end latency of committed inserts")
	mIngestTotal = obs.Default.CounterVec("hub_ingest_total",
		"Insert outcomes", "outcome")
	ingestOK          = mIngestTotal.With("ok")
	ingestRejected    = mIngestTotal.With("rejected")
	ingestUnavailable = mIngestTotal.With("unavailable")

	mBatchSize = obs.Default.SizeHistogram("hub_ingest_batch_size",
		"IngestBatch sizes")

	mPipeDepth = obs.Default.GaugeVec("hub_pipeline_stage_depth",
		"Jobs queued at each ingest pipeline stage input", "stage")
	depthAdmit  = mPipeDepth.With("admit")
	depthEncode = mPipeDepth.With("encode")
	depthCommit = mPipeDepth.With("commit")

	mPipeStalls = obs.Default.CounterVec("hub_pipeline_stall_total",
		"Sends into a full pipeline stage input (backpressure engaged)", "stage")
	stallAdmit  = mPipeStalls.With("admit")
	stallEncode = mPipeStalls.With("encode")
	stallCommit = mPipeStalls.With("commit")

	mPipeStreams = obs.Default.Counter("hub_pipeline_streams_total",
		"IngestStream streams opened")
	mPipeFlushEpochs = obs.Default.Counter("hub_pipeline_flush_epochs_total",
		"Pipeline flush epochs that forced pending WAL appends to stable storage")
	mClusterMerges = obs.Default.Counter("hub_cluster_merges_total",
		"Inserts that merged the new tuple into at least one existing cluster")
	mUniqueness = obs.Default.Counter("hub_uniqueness_rejections_total",
		"Inserts rejected by a pairwise (§3.2) or transitive uniqueness check")

	mSnapshotSeconds = obs.Default.LatencyHistogram("hub_snapshot_seconds",
		"Snapshot production latency (capture, write, truncate)")
	mSnapshotTotal = obs.Default.CounterVec("hub_snapshot_total",
		"Snapshot outcomes", "outcome")
	snapshotOK     = mSnapshotTotal.With("ok")
	snapshotFail   = mSnapshotTotal.With("error")
	mSnapshotBytes = obs.Default.Counter("hub_snapshot_bytes_total",
		"Bytes newly written by snapshots (reused sections cost nothing)")
	mSnapSectionsWritten = obs.Default.Counter("hub_snapshot_sections_written_total",
		"Snapshot sections re-encoded and written")
	mSnapSectionsReused = obs.Default.Counter("hub_snapshot_sections_reused_total",
		"Snapshot sections carried forward by reference")

	mHealthState = obs.Default.Gauge("hub_health_state",
		"Hub health: 0 ready, 1 degraded, 2 poisoned (last hub to transition wins)")
	mProbes = obs.Default.Counter("hub_recovery_probes_total",
		"Degraded-mode recovery probe attempts")
	mRecoveries = obs.Default.Counter("hub_recoveries_total",
		"Completed degraded-to-ready recoveries")
)

// observeStage feeds a stage histogram, skipping the zero duration a
// disabled obs clock produces.
func observeStage(h *obs.Histogram, d time.Duration) {
	if d > 0 {
		h.Observe(d)
	}
}

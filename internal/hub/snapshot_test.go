package hub

// Tests for the chunked, incremental, streaming snapshot subsystem:
// byte-determinism of the stream form, the multi-chunk path past a
// (test-lowered) WAL frame cap that format 1 cannot cross, chunked
// jumbo AddSource logging, carry-forward economics of incremental
// snapshots, format-1 compatibility, and v2 tamper detection.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"entityid/internal/datagen"
	"entityid/internal/relation"
	"entityid/internal/wal"
)

// multiHub builds an ingested in-memory hub over a standard workload.
func multiHub(t *testing.T, cfg datagen.MultiConfig) (*Hub, *datagen.MultiWorkload) {
	t.Helper()
	w := datagen.MustMultiGenerate(cfg)
	h, err := NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range h.IngestBatch(MultiInserts(w)) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	return h, w
}

// TestSnapshotDeterministicRoundTrip pins snapshot→load→snapshot
// byte-identity: the stream a loaded hub saves is exactly the stream it
// was loaded from, chunk boundaries, hashes and manifest included.
func TestSnapshotDeterministicRoundTrip(t *testing.T) {
	h, _ := multiHub(t, datagen.MultiConfig{
		Sources: 3, Entities: 30, PresenceFrac: 0.7, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 41,
	})
	var buf1 bytes.Buffer
	if _, err := h.SaveSnapshot(&buf1); err != nil {
		t.Fatal(err)
	}
	h2, wm, err := LoadSnapshot(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if wm != 0 {
		t.Fatalf("memory-only snapshot watermark %d", wm)
	}
	mustEqualState(t, "stream round trip", stateOf(h2), stateOf(h))
	var buf2 bytes.Buffer
	if _, err := h2.SaveSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("snapshot→load→snapshot is not byte-identical: %d vs %d bytes", buf1.Len(), buf2.Len())
	}
}

// TestSnapshotMultiChunkBeyondV1FrameCap lowers the WAL frame cap so
// the hub's encoded state no longer fits one frame: the format-1
// encoder must fail (the 256MB ceiling in miniature), while the
// chunked snapshot both streams and persists it — multi-chunk sections,
// every frame under the cap — and recovers it bit-for-bit.
func TestSnapshotMultiChunkBeyondV1FrameCap(t *testing.T) {
	restore := wal.SetFrameCapForTesting(16 << 10)
	defer restore()

	h, w := multiHub(t, datagen.MultiConfig{
		Sources: 3, Entities: 60, PresenceFrac: 0.7, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 43,
	})
	h.snapChunkBytes = 2 << 10

	// Format 1 cannot hold this hub in one frame.
	h.mu.RLock()
	h.commitMu.Lock()
	v1, _ := h.captureLocked()
	h.commitMu.Unlock()
	h.mu.RUnlock()
	if _, err := encodeSnapshot(v1, 0); err == nil {
		t.Fatal("format-1 encoder fit a hub beyond the frame cap; grow the workload")
	}

	// The chunked stream form handles it.
	var buf bytes.Buffer
	if _, err := h.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	sc := wal.NewFrameScanner(bytes.NewReader(buf.Bytes()))
	frames, restarts := 0, 0
	for {
		rec, _, err := sc.Next()
		if err != nil {
			break
		}
		frames++
		if rec.Seq == 1 {
			restarts++
		}
	}
	if frames < 8 || restarts < 4 {
		t.Fatalf("expected a genuinely multi-chunk stream, got %d frames, %d sections", frames, restarts)
	}
	h2, _, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, "multi-chunk stream round trip", stateOf(h2), stateOf(h))

	// And the durable path: a hub too big for one frame still snapshots
	// to disk and recovers (multi-chunk section files), with a jumbo
	// AddSource seed relation chunked across source_begin/source_chunk
	// records on the way in.
	dir := t.TempDir()
	dh, _, err := Open(dir, Options{ChunkBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	seed := relation.New(w.Relations[0].Schema())
	for _, tup := range w.Relations[0].Tuples() {
		if err := seed.Insert(tup.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if err := dh.AddSource("jumbo", seed); err != nil {
		t.Fatalf("jumbo AddSource: %v", err)
	}
	for k, name := range w.Names {
		if err := dh.AddSource(name, relation.New(w.Relations[k].Schema())); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(w.Names); i++ {
		for j := i + 1; j < len(w.Names); j++ {
			if err := dh.Link(SpecFromMultiPair(w.Pair(i, j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, it := range MultiInserts(w) {
		if _, err := dh.Insert(it.Source, it.Tuple); err != nil {
			t.Fatal(err)
		}
	}
	if err := dh.SnapshotNow(); err != nil {
		t.Fatalf("chunked snapshot of an over-cap hub: %v", err)
	}
	want := stateOf(dh)
	if err := dh.Close(); err != nil {
		t.Fatal(err)
	}
	rh, info, err := Open(dir, Options{ChunkBytes: 2 << 10})
	if err != nil {
		t.Fatalf("recover over-cap hub: %v", err)
	}
	defer rh.Close()
	if !info.FromSnapshot || info.Replayed != 0 {
		t.Fatalf("recovery ignored the chunked snapshot: FromSnapshot=%v Replayed=%d", info.FromSnapshot, info.Replayed)
	}
	mustEqualState(t, "over-cap durable recovery", stateOf(rh), want)
}

// TestJumboAddSourceReplaysFromChunks pins the chunked AddSource log
// path without a snapshot: the seed relation splits across
// source_begin/source_chunk records and replays to the identical
// relation.
func TestJumboAddSourceReplaysFromChunks(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 1, Entities: 40, PresenceFrac: 1, Seed: 17,
	})
	dir := t.TempDir()
	h, _, err := Open(dir, Options{ChunkBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddSource(w.Names[0], w.Relations[0]); err != nil {
		t.Fatal(err)
	}
	want := stateOf(h)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// The log must actually contain a chunked group.
	data, err := os.ReadFile(filepath.Join(dir, "wal-"+fmt.Sprintf("%020d", 1)+".log"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), wal.TypeSourceBegin) {
		t.Fatal("jumbo AddSource was not chunked")
	}
	h2, info, err := Open(dir, Options{ChunkBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if got, wantN := info.Replayed, 1+countChunks(string(data)); got != wantN {
		t.Fatalf("replayed %d records, want %d (begin + chunks)", got, wantN)
	}
	mustEqualState(t, "jumbo replay", stateOf(h2), want)
}

func countChunks(log string) int {
	return strings.Count(log, `"type":"`+wal.TypeSourceChunk+`"`)
}

// TestSnapshotIncrementalCarryForward pins the economics: when almost
// nothing changed between snapshots, almost nothing is rewritten —
// unchanged source sections carry forward by reference and the bytes
// written are o(full state).
func TestSnapshotIncrementalCarryForward(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 4, Entities: 120, PresenceFrac: 0.7, HomonymRate: 0.1,
		MissingPhone: 0.1, DirtyPhone: 0.1, Seed: 47,
	})
	dir := t.TempDir()
	h, _ := openDurableMulti(t, dir, w, 0)
	items := MultiInserts(w)
	for _, it := range items {
		if _, err := h.Insert(it.Source, it.Tuple); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	full := h.LastSnapshot()
	if full.SectionsWritten == 0 || full.BytesWritten == 0 {
		t.Fatalf("full snapshot wrote nothing: %+v", full)
	}
	if full.SectionsReused != 0 {
		t.Fatalf("first snapshot reused sections: %+v", full)
	}

	// An unchanged hub re-snapshots for (almost) free: every section
	// carries forward, only the manifest is rewritten.
	if err := h.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	idle := h.LastSnapshot()
	if idle.SectionsWritten != 0 || idle.SectionsReused != full.SectionsWritten {
		t.Fatalf("idle snapshot rewrote sections: %+v (full %+v)", idle, full)
	}

	// Change one source (~1% of tuples): only that source's section,
	// the pair sections it participates in and the partition re-encode.
	extra := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 4, Entities: 2, PresenceFrac: 1, Seed: 48,
	})
	n := 0
	for _, tup := range extra.Relations[0].Tuples() {
		if _, err := h.Insert(w.Names[0], tup.Clone()); err == nil {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no incremental inserts landed")
	}
	if err := h.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	incr := h.LastSnapshot()
	unchangedSources := len(w.Names) - 1
	if incr.SectionsReused < unchangedSources {
		t.Fatalf("incremental snapshot reused %d sections, want at least the %d unchanged sources (%+v)",
			incr.SectionsReused, unchangedSources, incr)
	}
	if incr.BytesWritten*2 >= full.BytesWritten {
		t.Fatalf("incremental snapshot wrote %d bytes, not o(full %d)", incr.BytesWritten, full.BytesWritten)
	}
	want := stateOf(h)
	h.per.quiesce()
	h2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if !info.FromSnapshot || info.Replayed != 0 {
		t.Fatalf("incremental snapshot not used for recovery: %+v", info)
	}
	mustEqualState(t, "incremental recovery", stateOf(h2), want)
}

// TestFormatV1SnapshotStillLoads writes a PR 3 single-frame snapshot
// into a data directory and recovers from it: the legacy format must
// keep loading (and the next snapshot upgrades the directory to the
// chunked format).
func TestFormatV1SnapshotStillLoads(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 24, PresenceFrac: 0.7, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 53,
	})
	dir := t.TempDir()
	h, _ := openDurableMulti(t, dir, w, 0)
	for _, it := range MultiInserts(w) {
		if _, err := h.Insert(it.Source, it.Tuple); err != nil {
			t.Fatal(err)
		}
	}
	// Write the legacy single-frame snapshot exactly as PR 3 did.
	h.mu.RLock()
	h.commitMu.Lock()
	snap, _ := h.captureLocked()
	watermark := h.per.log.LastSeq()
	h.commitMu.Unlock()
	h.mu.RUnlock()
	frame, err := encodeSnapshot(snap, watermark)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	want := stateOf(h)
	h.per.quiesce()

	h2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recover from format-1 snapshot: %v", err)
	}
	if !info.FromSnapshot || info.Watermark != watermark {
		t.Fatalf("format-1 snapshot not used: %+v", info)
	}
	mustEqualState(t, "format-1 recovery", stateOf(h2), want)

	// The next snapshot upgrades in place: manifest + sections appear,
	// the legacy file is retired, and recovery keeps working.
	if err := h2.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); !os.IsNotExist(err) {
		t.Fatalf("legacy snapshot file not retired after upgrade: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotManifest)); err != nil {
		t.Fatalf("no manifest after upgrade: %v", err)
	}
	h2.per.quiesce()
	h3, info3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer h3.Close()
	if !info3.FromSnapshot || info3.Replayed != 0 {
		t.Fatalf("upgraded snapshot not used: %+v", info3)
	}
	mustEqualState(t, "post-upgrade recovery", stateOf(h3), want)
}

// TestSnapshotV2TamperDetection corrupts the chunked form three ways —
// a flipped bit in the stream (frame CRC), a doctored section file
// (content hash), and a doctored manifest (its own frame CRC) — all of
// which must fail the load.
func TestSnapshotV2TamperDetection(t *testing.T) {
	h, w := multiHub(t, datagen.MultiConfig{
		Sources: 3, Entities: 24, PresenceFrac: 0.7, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 59,
	})
	var buf bytes.Buffer
	if _, err := h.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{buf.Len() / 3, buf.Len() / 2, buf.Len() - 20} {
		rotted := append([]byte(nil), buf.Bytes()...)
		rotted[pos] ^= 0x04
		if _, _, err := LoadSnapshot(bytes.NewReader(rotted)); err == nil {
			t.Fatalf("bit-rotted stream (offset %d) loaded", pos)
		}
	}

	// On-disk: flip a byte inside a section file; the manifest hash
	// must catch it even though the file's own frames may still parse.
	dir := t.TempDir()
	dh, _ := openDurableMulti(t, dir, w, 0)
	for _, it := range MultiInserts(w) {
		if _, err := dh.Insert(it.Source, it.Tuple); err != nil {
			t.Fatal(err)
		}
	}
	if err := dh.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if err := dh.Close(); err != nil {
		t.Fatal(err)
	}
	secs, err := filepath.Glob(filepath.Join(dir, snapSecDir, "*"+snapSecSuffix))
	if err != nil || len(secs) == 0 {
		t.Fatalf("sections: %v %v", secs, err)
	}
	data, err := os.ReadFile(secs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(secs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("doctored section file loaded")
	}
}

// TestSaveSnapshotDuringIngest exercises SaveSnapshot concurrently with
// a streaming ingest (run under -race): the cut must be internally
// consistent — the loaded hub verifies or the load fails, never a torn
// capture.
func TestSaveSnapshotDuringIngest(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 60, PresenceFrac: 0.7, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 61,
	})
	h, err := NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	items := MultiInserts(w)
	done := make(chan []InsertResult, 1)
	go func() { done <- h.IngestBatch(items) }()
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if _, err := h.SaveSnapshot(&buf); err != nil {
			t.Errorf("concurrent snapshot %d: %v", i, err)
			continue
		}
		h2, _, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Errorf("concurrent snapshot %d failed verification: %v", i, err)
			continue
		}
		if got := h2.Stats().Tuples; got > len(items) {
			t.Errorf("concurrent snapshot %d holds %d tuples, more than ever ingested", i, got)
		}
	}
	for _, res := range <-done {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	// The final quiescent snapshot round-trips exactly.
	var buf bytes.Buffer
	if _, err := h.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	h2, _, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	mustEqualState(t, "post-ingest snapshot", stateOf(h2), stateOf(h))
}

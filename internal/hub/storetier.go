// The hub side of the storage tiers: paging spilled pairwise
// federations back in before mutation, spilling the least-recently
// used ones back out after commits, and surfacing tier occupancy for
// /readyz and benchmarks.
//
// A pair is "hot" while pairState.fed holds a live federation and
// "cold" while fed is nil and the pair's exported state lives in the
// backend's pair store. The invariant the whole lifecycle rests on:
// a cold pair's side relations are frozen at the lengths it was
// spilled with, because every mutation of either side pages the pair
// in first (insert takes the pair lock and calls pairFedLocked before
// preparing). Page-in therefore always restores against exactly the
// lengths federate.Restore verifies, and the rebuilt matching table is
// re-verified pair by pair — a page-in is a free integrity check.
//
// Spill stores the matching table in COMMIT ORDER (ExportOrdered), not
// sorted: snapshot cuts read "the first n commits" of a pair, and a
// commit-order table serves any earlier cut as a plain prefix even if
// the spill happened after the cut was taken.
package hub

import (
	"fmt"
	"sort"

	"entityid/internal/federate"
	"entityid/internal/match"
	"entityid/internal/store"
)

// pairFedLocked returns p's live federation, paging it in from the
// backend's pair store if it is spilled. Callers hold p.mu and at
// least h.mu shared (matchConfig reads the topology).
func (h *Hub) pairFedLocked(p *pairState) (*federate.Federation, error) {
	if fed := p.fed.Load(); fed != nil {
		return fed, nil
	}
	tab, err := h.backend.Pairs().Load(p.id)
	if err != nil {
		return nil, fmt.Errorf("pair %q-%q page-in: %w", p.spec.Left, p.spec.Right, err)
	}
	fed, err := federate.Restore(h.matchConfig(p.left, p.right, p.spec), tab)
	if err != nil {
		return nil, fmt.Errorf("pair %q-%q page-in: %w", p.spec.Left, p.spec.Right, err)
	}
	p.fed.Store(fed)
	h.hotPairs.Add(1)
	return fed, nil
}

// exportPair returns p's exported federation state whether the pair
// is hot or cold. Cold state is read straight from the pair store —
// no page-in, no residency change — and sorted into the canonical
// export order. Callers hold h.mu (at least shared) and h.commitMu,
// or otherwise guarantee quiescence.
func (h *Hub) exportPair(p *pairState) (federate.State, error) {
	if fed := p.fed.Load(); fed != nil {
		return fed.Export(), nil
	}
	tab, err := h.backend.Pairs().Load(p.id)
	if err != nil {
		return federate.State{}, fmt.Errorf("pair %q-%q: %w", p.spec.Left, p.spec.Right, err)
	}
	st := federate.State{Pairs: append([]match.Pair(nil), tab.Pairs...), RLen: tab.RLen, SLen: tab.SLen}
	federate.SortPairs(st.Pairs)
	return st, nil
}

// maybeSpillPairs spills least-recently-used pairs until the resident
// count fits the backend's hot-pair budget. Called with no hub locks
// held (it takes h.mu shared and individual pair locks, never a source
// lock or the commit lock, so it cannot deadlock against the insert
// order). A spill failure leaves the pair resident and stops the pass
// — the tier runs over budget rather than losing state.
func (h *Hub) maybeSpillPairs() {
	budget := h.caps.HotPairs
	if budget <= 0 || int(h.hotPairs.Load()) <= budget {
		return
	}
	h.spillMu.Lock()
	defer h.spillMu.Unlock()
	h.mu.RLock()
	cands := append([]*pairState(nil), h.pairs...)
	h.mu.RUnlock()
	sort.Slice(cands, func(a, b int) bool {
		return cands[a].lastUse.Load() < cands[b].lastUse.Load()
	})
	for _, p := range cands {
		if int(h.hotPairs.Load()) <= budget {
			return
		}
		p.mu.Lock()
		if fed := p.fed.Load(); fed != nil {
			if err := h.backend.Pairs().Save(p.id, fed.ExportOrdered()); err != nil {
				p.mu.Unlock()
				return
			}
			p.fed.Store(nil)
			h.hotPairs.Add(-1)
		}
		p.mu.Unlock()
	}
}

// StoreInfo describes the active storage backend and its tier
// occupancy, for /readyz and benchmark reporting.
type StoreInfo struct {
	Backend    string
	Clusters   store.ClusterStats
	Pairs      store.PairStats
	HotPairs   int
	PairBudget int
}

// StoreInfo snapshots the backend's tier state. Lock-free.
func (h *Hub) StoreInfo() StoreInfo {
	return StoreInfo{
		Backend:    h.backend.Name(),
		Clusters:   h.clusters.Stats(),
		Pairs:      h.backend.Pairs().Stats(),
		HotPairs:   int(h.hotPairs.Load()),
		PairBudget: h.caps.HotPairs,
	}
}

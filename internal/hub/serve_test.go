package hub_test

// Serving-path tests for the sharded cluster store and the streaming
// enumeration: point reads racing ingest under -race must never return
// a torn cluster (every member set is a committed partition state —
// contains the queried tuple, at most one tuple per source, sorted,
// ID = smallest member, and a subset of the tuple's final cluster),
// and the paginated enumeration must reproduce Clusters() exactly on a
// quiescent hub for any page size.

import (
	"fmt"
	"iter"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"entityid/internal/datagen"
	"entityid/internal/hub"
	"entityid/internal/match"
	"entityid/internal/obs"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// checkClusterShape verifies the per-read invariants every served
// cluster must satisfy regardless of concurrent ingest, reporting
// failures via t.Errorf (it runs on reader goroutines, where FailNow
// must not be called) and returning false. ordinal maps source names
// to registration order.
func checkClusterShape(t *testing.T, c hub.Cluster, ordinal map[string]int) bool {
	t.Helper()
	if len(c.Members) == 0 {
		t.Errorf("cluster %s has no members", c.ID)
		return false
	}
	lead := c.Members[0]
	if want := fmt.Sprintf("%s/%d", lead.Source, lead.Index); c.ID != want {
		t.Errorf("cluster ID %s does not name its smallest member %s", c.ID, want)
		return false
	}
	seen := map[string]bool{}
	for i, m := range c.Members {
		if seen[m.Source] {
			t.Errorf("cluster %s holds two tuples of source %s", c.ID, m.Source)
			return false
		}
		seen[m.Source] = true
		if i > 0 {
			p := c.Members[i-1]
			if ordinal[p.Source] > ordinal[m.Source] ||
				(ordinal[p.Source] == ordinal[m.Source] && p.Index >= m.Index) {
				t.Errorf("cluster %s members out of order at %d", c.ID, i)
				return false
			}
		}
	}
	return true
}

// sample is one concurrent read's observed member set, resolved to
// stable (source, primary-key) identities for the post-ingest
// subset-of-final check.
type sample struct {
	keys []string
}

func TestConcurrentReadsDuringIngest(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 150, PresenceFrac: 0.7, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 77,
	})
	h, err := hub.NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	items := hub.MultiInserts(w)
	rand.New(rand.NewSource(77)).Shuffle(len(items), func(a, b int) {
		items[a], items[b] = items[b], items[a]
	})
	names := h.SourceNames()
	ordinal := map[string]int{}
	for i, n := range names {
		ordinal[n] = i
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	const readers = 4
	samples := make([][]sample, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			for i := 0; !done.Load(); i++ {
				src := names[rng.Intn(len(names))]
				n, err := h.SourceLen(src)
				if err != nil {
					t.Error(err)
					return
				}
				if n == 0 {
					continue
				}
				idx := rng.Intn(n)
				c, err := h.ClusterAt(src, idx)
				if err != nil {
					t.Errorf("ClusterAt(%s, %d) with len %d: %v", src, idx, n, err)
					return
				}
				found := false
				for _, m := range c.Members {
					if m.Source == src && m.Index == idx {
						found = true
					}
				}
				if !found {
					t.Errorf("cluster of %s/%d does not contain it: %v", src, idx, c.ID)
					return
				}
				if !checkClusterShape(t, c, ordinal) {
					return
				}
				if i%8 == 0 && len(samples[r]) < 4000 {
					s := sample{}
					for _, m := range c.Members {
						s.keys = append(s.keys, memberKey(m))
					}
					samples[r] = append(samples[r], s)
				}
				// Every ~64 reads, one full streaming enumeration: the
				// clusters of a single weakly consistent pass must be
				// pairwise disjoint committed states.
				if i%64 == 0 {
					inPass := map[string]string{}
					for c := range h.ClustersIter() {
						if !checkClusterShape(t, c, ordinal) {
							return
						}
						for _, m := range c.Members {
							k := memberKey(m)
							if prev, dup := inPass[k]; dup {
								t.Errorf("one enumeration emitted %s in clusters %s and %s", k, prev, c.ID)
								return
							}
							inPass[k] = c.ID
						}
					}
				}
			}
		}(r)
	}
	// Sub-batch with explicit yields: the pipelined batch path commits a
	// batch this small in a few milliseconds on one core, so without
	// yield points the reader goroutines would barely interleave with
	// ingest and the test could sample nothing.
	for off := 0; off < len(items); off += 32 {
		end := min(off+32, len(items))
		for i, res := range h.IngestBatch(items[off:end]) {
			if res.Err != nil {
				t.Fatalf("insert %d: %v", off+i, res.Err)
			}
		}
		runtime.Gosched()
	}
	done.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every concurrently observed member set must be contained in one
	// final cluster: reads only ever saw committed prefixes of the
	// monotone partition, never a torn in-between.
	finalOf := map[string]string{}
	finalSet := map[string]map[string]bool{}
	for _, c := range h.Clusters() {
		set := map[string]bool{}
		for _, m := range c.Members {
			k := memberKey(m)
			finalOf[k] = c.ID
			set[k] = true
		}
		finalSet[c.ID] = set
	}
	checked := 0
	for _, rs := range samples {
		for _, s := range rs {
			home, ok := finalOf[s.keys[0]]
			if !ok {
				t.Fatalf("observed member %s missing from the final partition", s.keys[0])
			}
			for _, k := range s.keys {
				if !finalSet[home][k] {
					t.Fatalf("observed cluster %v is not a subset of final cluster %s", s.keys, home)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no concurrent reads were sampled")
	}
}

func TestClustersPaginationQuiescent(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 40, PresenceFrac: 0.7, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 5,
	})
	h, err := hub.NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range h.IngestBatch(hub.MultiInserts(w)) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	want := h.Clusters()
	if len(want) == 0 {
		t.Fatal("empty reference enumeration")
	}
	for _, limit := range []int{1, 2, 3, 7, len(want), len(want) + 5} {
		var got []hub.Cluster
		cursor := ""
		pages := 0
		for {
			page, next, err := h.ClustersPage(cursor, limit)
			if err != nil {
				t.Fatalf("limit %d: %v", limit, err)
			}
			if len(page) > limit {
				t.Fatalf("limit %d: page of %d", limit, len(page))
			}
			got = append(got, page...)
			pages++
			if next == "" {
				break
			}
			if next != page[len(page)-1].ID {
				t.Fatalf("limit %d: cursor %s is not the last cluster %s", limit, next, page[len(page)-1].ID)
			}
			cursor = next
		}
		if len(got) != len(want) {
			t.Fatalf("limit %d: %d clusters across %d pages, want %d", limit, len(got), pages, len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || len(got[i].Members) != len(want[i].Members) {
				t.Fatalf("limit %d: cluster %d is %s (%d members), want %s (%d members)",
					limit, i, got[i].ID, len(got[i].Members), want[i].ID, len(want[i].Members))
			}
		}
	}

	// The streaming iterator stops when the consumer does.
	seen := 0
	for range h.ClustersIter() {
		seen++
		if seen == 2 {
			break
		}
	}
	if seen != 2 {
		t.Fatalf("early break saw %d clusters", seen)
	}

	// Cursor errors: malformed shapes and unknown sources are rejected.
	for _, cursor := range []string{
		"nope", "a/b/", w.Names[0] + "/x", w.Names[0] + "/-1", "ghost/0",
		// The maximum int would overflow the resume increment.
		w.Names[0] + "/9223372036854775807",
	} {
		if _, err := h.ClustersFrom(cursor); err == nil {
			t.Fatalf("cursor %q accepted", cursor)
		}
	}
	// A cursor past the end yields an empty final page.
	lastID := want[len(want)-1].ID
	page, next, err := h.ClustersPage(lastID, 10)
	if err != nil {
		t.Fatal(err)
	}
	if next != "" {
		t.Fatalf("page after the last cluster has next %q", next)
	}
	for _, c := range page {
		for _, pc := range want[:len(want)-1] {
			if c.ID == pc.ID {
				t.Fatalf("page after %s re-emitted %s", lastID, c.ID)
			}
		}
	}
}

// twoSourceHub builds a minimal hand-written topology for iterator
// regression tests: two string-keyed sources matched on name.
func twoSourceHub(t *testing.T, names ...string) *hub.Hub {
	t.Helper()
	h := hub.New()
	for _, n := range names {
		rel := relation.New(schema.MustNew(n, []schema.Attribute{
			{Name: "id", Kind: value.KindString},
			{Name: "name", Kind: value.KindString},
		}, []string{"id"}))
		if err := h.AddSource(n, rel); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			err := h.Link(hub.PairSpec{
				Left: names[i], Right: names[j],
				Attrs: []match.AttrMap{
					{Name: "name", R: "name", S: "name"},
					{Name: "id_" + names[i], R: "id"},
					{Name: "id_" + names[j], S: "id"},
				},
				ExtKey: []string{"name"},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return h
}

func mustInsert(t *testing.T, h *hub.Hub, src, id, name string) {
	t.Helper()
	if _, err := h.Insert(src, relation.Tuple{value.String(id), value.String(name)}); err != nil {
		t.Fatal(err)
	}
}

// TestIterEmitsMergesWithOutOfCutLead pins the in-cut-lead emission
// rule: a pre-cut tuple whose cluster gains, mid-walk, a lead node
// committed after the cut must still be enumerated (at its oldest
// in-cut member), not skipped toward a node the walk never visits.
func TestIterEmitsMergesWithOutOfCutLead(t *testing.T) {
	h := twoSourceHub(t, "a", "b")
	mustInsert(t, h, "a", "a0", "x")
	mustInsert(t, h, "b", "b0", "y")

	next, stop := iter.Pull(h.ClustersIter())
	defer stop()
	first, ok := next()
	if !ok || first.ID != "a/0" {
		t.Fatalf("first cluster %v %v", first.ID, ok)
	}
	// Mid-walk: a/1 (outside the cut) merges with the in-cut b/0.
	mustInsert(t, h, "a", "a1", "y")
	var ids []string
	sawB0 := false
	for {
		c, ok := next()
		if !ok {
			break
		}
		ids = append(ids, c.ID)
		for _, m := range c.Members {
			if m.Source == "b" && m.Index == 0 {
				sawB0 = true
				if len(c.Members) != 2 {
					t.Fatalf("b/0 emitted without its merge partner: %v", c)
				}
			}
		}
	}
	if !sawB0 {
		t.Fatalf("pre-cut tuple b/0 dropped from the enumeration (saw %v)", ids)
	}
}

// TestReadsSurviveTopologyGrowth pins the stale-topo upgrade in
// materialize: an iterator (and a point read) started before a source
// was registered must still materialise clusters that gained members
// of the new source, instead of indexing past its topology snapshot.
func TestReadsSurviveTopologyGrowth(t *testing.T) {
	h := twoSourceHub(t, "a", "b")
	mustInsert(t, h, "a", "a0", "x")

	next, stop := iter.Pull(h.ClustersIter())
	defer stop()
	// The walk is pinned before the topology grows.
	// Register source c after the cut and merge it into a/0's cluster.
	rel := relation.New(schema.MustNew("c", []schema.Attribute{
		{Name: "id", Kind: value.KindString},
		{Name: "name", Kind: value.KindString},
	}, []string{"id"}))
	if err := h.AddSource("c", rel); err != nil {
		t.Fatal(err)
	}
	err := h.Link(hub.PairSpec{
		Left: "a", Right: "c",
		Attrs: []match.AttrMap{
			{Name: "name", R: "name", S: "name"},
			{Name: "id_a", R: "id"},
			{Name: "id_c", S: "id"},
		},
		ExtKey: []string{"name"},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustInsert(t, h, "c", "c0", "x")

	c, ok := next()
	if !ok {
		t.Fatal("enumeration ended before a/0")
	}
	if c.ID != "a/0" || len(c.Members) != 2 || c.Members[1].Source != "c" {
		t.Fatalf("cluster across grown topology: %+v", c)
	}
	// The point-read path resolves through the same upgrade.
	pc, err := h.ClusterAt("a", 0)
	if err != nil || len(pc.Members) != 2 {
		t.Fatalf("ClusterAt after growth: %v %v", pc, err)
	}
}

// TestPageCursorTracksWalkPosition pins the pagination anchor: when a
// concurrent merge hands a cluster a lead outside the walk's cut, the
// cluster's ID names that (never-visited) lead, but the resume cursor
// must name the visit position — otherwise resuming would jump the
// walk backwards and re-serve clusters already emitted.
func TestPageCursorTracksWalkPosition(t *testing.T) {
	h := twoSourceHub(t, "a", "b")
	mustInsert(t, h, "a", "a0", "x")
	mustInsert(t, h, "b", "b0", "y")
	mustInsert(t, h, "b", "b1", "z")

	var ids, resumes []string
	err := h.ClustersWalk("", 0, func(c hub.Cluster, resume string) bool {
		ids = append(ids, c.ID)
		resumes = append(resumes, resume)
		if len(ids) == 1 {
			// Mid-walk: a/1 (outside the cut) merges with b/0.
			mustInsert(t, h, "a", "a1", "y")
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ids) != "[a/0 a/1 b/1]" {
		t.Fatalf("walk IDs %v", ids)
	}
	// The merged cluster's ID names the out-of-cut lead a/1, but its
	// resume cursor must be the visit node b/0.
	if fmt.Sprint(resumes) != "[a/0 b/0 b/1]" {
		t.Fatalf("walk resume cursors %v", resumes)
	}
	// Resuming from that cursor continues forward — no re-emission of
	// the a-source region.
	page, next, err := h.ClustersPage("b/0", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 1 || page[0].ID != "b/1" || next != "" {
		t.Fatalf("page after b/0: %d clusters, next %q", len(page), next)
	}
}

// TestMetricsScrapeDuringIngest hammers the process-wide registry's
// exposition while a batch commits through the worker pool: under
// -race this pins down that every metric the ingest path touches is
// scrape-safe, and that each scrape is internally consistent enough to
// parse (non-empty, newline-terminated, core families present).
func TestMetricsScrapeDuringIngest(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 120, PresenceFrac: 0.7, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 31,
	})
	h, err := hub.NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	items := hub.MultiInserts(w)

	var done atomic.Bool
	var wg sync.WaitGroup
	scrapes := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			var sb strings.Builder
			if err := obs.Default.WritePrometheus(&sb); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			text := sb.String()
			if text == "" || !strings.HasSuffix(text, "\n") {
				t.Errorf("scrape output malformed: %q...", text[:min(len(text), 80)])
				return
			}
			scrapes++
		}
	}()
	for off := 0; off < len(items); off += 32 {
		end := min(off+32, len(items))
		for i, res := range h.IngestBatch(items[off:end]) {
			if res.Err != nil {
				t.Fatalf("insert %d: %v", off+i, res.Err)
			}
		}
		runtime.Gosched()
	}
	done.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}
	if scrapes == 0 {
		t.Fatal("no scrapes ran during ingest")
	}
	var sb strings.Builder
	if err := obs.Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, family := range []string{
		"hub_ingest_total", "hub_ingest_commit_seconds",
		"hub_ingest_stage_seconds", "hub_ingest_batch_size",
		"hub_health_state",
	} {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("core family %s missing from exposition", family)
		}
	}
	if !strings.Contains(text, `hub_ingest_total{outcome="ok"}`) {
		t.Error("no ok-outcome ingest sample after a committed batch")
	}
}

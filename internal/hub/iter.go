// Streaming cluster enumeration: Clusters()'s O(hub)
// materialise-under-lock is replaced by an iterator that visits nodes
// in (source registration order, tuple position) order and emits a
// cluster exactly when the node under the cursor is the cluster's
// smallest member *inside the iteration cut* — the committed lengths
// when the walk started. On a quiescent hub that is simply the
// smallest member, reproducing the classic enumeration order (by
// smallest member, singletons included) while holding only one shard
// read lock at a time and materialising one cluster at a time, so
// enumeration memory is O(largest cluster), not O(hub). Anchoring
// emission inside the cut matters under concurrent ingest: a cluster
// whose absolute lead was committed after the cut is still emitted at
// its oldest in-cut member instead of being skipped toward a node the
// walk will never visit.
//
// Consistency: each emitted cluster is a committed partition state at
// its visit time (the record is immutable), and one pass's clusters
// are always pairwise disjoint. Across a long enumeration concurrent
// ingest may merge clusters behind the cursor; the *entity* then
// appears in the earlier, smaller committed form the walk emitted
// before the merge — but a tuple whose cluster merges into a region
// the walk has already passed can be absent from that pass entirely
// (its own position is skipped as belonging to an already-visited
// lead, which was emitted before the tuple joined it). That is the
// weak consistency inherent to any snapshot-free cursor walk over a
// live store: per-pass output is sound, not tuple-complete. A
// quiescent hub enumerates exactly its partition, every tuple
// included, deterministically.
//
// Pagination builds on the same walk: the cursor is a walk position
// (source/index), and resumption seeks straight to the following node
// — O(1), not O(offset). ClustersWalk and ClustersPage hand back the
// exact resume cursor; on a quiescent hub it equals the last cluster's
// ID.
package hub

import (
	"fmt"
	"iter"
	"math"
	"strconv"
	"strings"
)

// clustersWalk visits, in canonical order, every cluster with a member
// inside the cut (the committed source lengths at call time) whose
// position follows start. fn receives the visit node and the cluster's
// member set (nil for an implicit singleton) and returns false to stop.
// Materialisation is left to the caller, so a walk can count or probe
// clusters without building them. A storage read error (possible only
// on a paging backend) stops the walk and is returned.
//
//entitylint:hotpath noobs,noio
func (h *Hub) clustersWalk(t *topoView, start node, fn func(n node, members []node) bool) error {
	lens := make([]int, len(t.sources))
	for i, s := range t.sources {
		lens[i] = len(s.view.Load().tuples)
	}
	inCut := func(m node) bool {
		return m.Src < len(lens) && m.Idx < lens[m.Src]
	}
	for si := start.Src; si < len(t.sources); si++ {
		lo := 0
		if si == start.Src {
			lo = start.Idx
		}
		for i := lo; i < lens[si]; i++ {
			n := node{Src: si, Idx: i}
			ms, err := h.clusters.Read(n)
			if err != nil {
				return err
			}
			var members []node
			if ms != nil {
				// Emit at the cluster's first in-cut member (n itself is
				// in the cut, so one exists at or before n).
				lead := n
				for _, m := range ms {
					if inCut(m) {
						lead = m
						break
					}
				}
				if lead != n {
					continue // emitted (or to be emitted) at an earlier node
				}
				members = ms
			}
			if !fn(n, members) {
				return nil
			}
		}
	}
	return nil
}

// ClustersIter streams every global entity cluster — including
// singletons for tuples matched nowhere — ordered by smallest member.
// The source lengths are cut when iteration starts; each cluster is a
// committed state at its visit time (see the package notes on weak
// consistency under concurrent ingest).
//
//entitylint:hotpath noobs,noio
func (h *Hub) ClustersIter() iter.Seq[Cluster] {
	seq, err := h.ClustersFrom("")
	if err != nil {
		// Unreachable: the empty cursor always parses.
		panic(err)
	}
	return seq
}

// ClustersFrom streams the clusters whose walk position follows the
// cursor — a source/index position; "" starts from the beginning. An
// unknown source or malformed cursor is an error. On a quiescent hub
// the last cluster's ID is exactly its walk position; to resume a walk
// that races ingest, use ClustersWalk or ClustersPage instead — their
// returned cursors track the visit position, whereas a concurrent
// merge can hand a cluster an ID outside the walk's cut that would
// rewind this seek and re-serve earlier clusters.
//
//entitylint:hotpath noobs,noio
func (h *Hub) ClustersFrom(cursor string) (iter.Seq[Cluster], error) {
	t := h.topo.Load()
	start, err := startFrom(t, cursor)
	if err != nil {
		return nil, err
	}
	return func(yield func(Cluster) bool) {
		// A storage read error ends the stream early; callers needing
		// the error use ClustersWalk or ClustersPage.
		_ = h.clustersWalk(t, start, func(n node, members []node) bool {
			if members == nil {
				members = []node{n}
			}
			return yield(h.materialize(t, members))
		})
	}, nil
}

// cursorFor renders the cursor that resumes the walk after visit node
// n. On a quiescent hub this equals the cluster's ID; under concurrent
// ingest the two can differ (a merge can hand the cluster a lead
// outside the cut), and it is the *visit* position that must anchor
// resumption — a cursor taken from the absolute lead could jump the
// walk backwards and re-serve clusters already emitted.
func cursorFor(t *topoView, n node) string {
	return fmt.Sprintf("%s/%d", t.sources[n.Src].name, n.Idx)
}

// ClustersWalk visits the clusters that follow the cursor ("" = from
// the beginning), passing each materialised cluster together with the
// cursor that resumes the walk immediately after it; fn returns false
// to stop. The first skip clusters are counted past without being
// materialised — the offset form of pagination. It is the primitive
// ClustersPage and the HTTP front-end paginate with: the resume cursor
// tracks the walk position, which stays monotone even when concurrent
// merges move a cluster's ID.
//
//entitylint:hotpath noobs,noio
func (h *Hub) ClustersWalk(cursor string, skip int, fn func(c Cluster, resume string) bool) error {
	t := h.topo.Load()
	start, err := startFrom(t, cursor)
	if err != nil {
		return err
	}
	return h.clustersWalk(t, start, func(n node, members []node) bool {
		if skip > 0 {
			skip--
			return true
		}
		if members == nil {
			members = []node{n}
		}
		return fn(h.materialize(t, members), cursorFor(t, n))
	})
}

// ClustersPage materialises one page of the enumeration: up to limit
// clusters after the cursor ("" = first page; limit <= 0 means
// DefaultClustersPageSize). The returned cursor addresses the next
// page, "" when the enumeration is exhausted. The look-ahead that
// detects a further page never materialises its cluster.
//
//entitylint:hotpath noobs,noio
func (h *Hub) ClustersPage(cursor string, limit int) ([]Cluster, string, error) {
	if limit <= 0 {
		limit = DefaultClustersPageSize
	}
	t := h.topo.Load()
	start, err := startFrom(t, cursor)
	if err != nil {
		return nil, "", err
	}
	out := make([]Cluster, 0, min(limit, 64))
	next, lastResume := "", ""
	if err := h.clustersWalk(t, start, func(n node, members []node) bool {
		if len(out) == limit {
			// A further cluster exists: the page is full and the walk
			// resumes after its last entry's visit position.
			next = lastResume
			return false
		}
		if members == nil {
			members = []node{n}
		}
		out = append(out, h.materialize(t, members))
		lastResume = cursorFor(t, n)
		return true
	}); err != nil {
		return nil, "", err
	}
	return out, next, nil
}

// DefaultClustersPageSize bounds ClustersPage when the caller passes no
// limit.
const DefaultClustersPageSize = 256

// Clusters enumerates every global entity cluster into one slice — the
// materialised form of ClustersIter, deterministic for a given
// partition regardless of insert order. Prefer ClustersIter or
// ClustersPage when the hub is large.
func (h *Hub) Clusters() []Cluster {
	var out []Cluster
	for c := range h.ClustersIter() {
		out = append(out, c)
	}
	return out
}

// startFrom resolves a cursor to the walk's first candidate node: the
// position immediately after the cursor, or the origin for "".
func startFrom(t *topoView, cursor string) (node, error) {
	if cursor == "" {
		return node{}, nil
	}
	after, err := parseCursor(t, cursor)
	if err != nil {
		return node{}, err
	}
	return node{Src: after.Src, Idx: after.Idx + 1}, nil
}

// parseCursor resolves a cluster ID ("source/index") to its node. The
// index is everything after the final slash, so source names containing
// slashes still parse.
func parseCursor(t *topoView, cursor string) (node, error) {
	slash := strings.LastIndexByte(cursor, '/')
	if slash < 0 {
		return node{}, fmt.Errorf("hub: bad cluster cursor %q (want source/index)", cursor)
	}
	name := cursor[:slash]
	si, ok := t.byName[name]
	if !ok {
		return node{}, fmt.Errorf("hub: bad cluster cursor %q: unknown source %q", cursor, name)
	}
	idx, err := strconv.Atoi(cursor[slash+1:])
	// The walk resumes at idx+1, so the maximum int is rejected too —
	// the increment must not overflow into a negative start position.
	if err != nil || idx < 0 || idx == math.MaxInt {
		return node{}, fmt.Errorf("hub: bad cluster cursor %q (want source/index)", cursor)
	}
	return node{Src: si, Idx: idx}, nil
}

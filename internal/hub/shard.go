// Sharded cluster store: the read-scalable home of the global entity
// clusters. The union-find of cluster.go is kept for speculative link
// folding and snapshot refolds; the *served* partition lives here, as a
// node → cluster-record map striped across lock shards.
//
// The design splits the store along the reader/writer asymmetry:
//
//   - Cluster records are immutable. A record is the complete, sorted
//     member set of one cluster; a merge builds a fresh record and
//     republishes it for every member. A reader that has loaded a
//     record therefore holds a committed member set with no further
//     locking — there is nothing it could observe half-updated.
//
//   - Readers take only one shard's read lock, and only around the map
//     lookup itself. Point reads on different shards share nothing;
//     point reads on the same shard share a read lock. No read path
//     takes a hub-global lock.
//
//   - Writers are already serialised: every mutation runs under the
//     hub's commit lock (hub.commitMu), so writer-side lookups need no
//     shard lock at all, and shard write locks are held only for the
//     map stores that publish a record — never across an O(hub) scan.
//
// Readers racing a merge see either the old record or the new one for
// any given node — never a torn member set. Two reads of different
// members of a merging cluster may straddle the merge; and in the
// instant between a tuple's view publication and its merge record
// landing, a freshly committed tuple can read as a momentary
// singleton. Every observable member set is therefore monotone-sound:
// it contains the queried tuple, holds at most one tuple per source,
// and is a subset of the cluster's eventual membership — the
// consistency the serving contract promises (see the README).
//
// Singletons are implicit: a node with no record is its own cluster,
// so unmatched inserts publish nothing and touch no shard lock.
package hub

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// clusterShardCount stripes the node→record map; a power of two so
// shardOf reduces to a mask. 32 shards keep per-shard reader locks
// uncontended well past the core counts one process serves.
const clusterShardCount = 32

// clusterRec is one published cluster: its members sorted by
// (source ordinal, tuple index). Immutable after publication.
type clusterRec struct {
	members []node
}

// clusterShard is one lock stripe of the store.
type clusterShard struct {
	mu  sync.RWMutex
	rec map[node]*clusterRec
	// pad spaces shards onto distinct cache lines so reader locks on
	// neighbouring shards do not false-share.
	_ [64]byte
}

// shardStore is the sharded node → cluster map plus the running merge
// count that makes Stats O(sources) instead of O(hub).
type shardStore struct {
	shards [clusterShardCount]clusterShard
	// merged is Σ (cluster size − 1) over all non-singleton clusters:
	// the number of tuples clustering has folded away. The live cluster
	// count is therefore tuples − merged. Updated at publish time under
	// the commit lock; read atomically by Stats.
	merged atomic.Int64
}

func newShardStore() *shardStore {
	s := &shardStore{}
	for i := range s.shards {
		s.shards[i].rec = map[node]*clusterRec{}
	}
	return s
}

// shardOf maps a node onto its lock stripe.
func shardOf(n node) int {
	h := uint64(uint32(n.src))*0x9e3779b1 ^ uint64(uint32(n.idx))*0x85ebca77
	return int((h ^ h>>16) & (clusterShardCount - 1))
}

// read returns n's published cluster record, or nil for an implicit
// singleton. Reader-side: takes only n's shard lock, shared, around the
// map lookup.
func (s *shardStore) read(n node) *clusterRec {
	sh := &s.shards[shardOf(n)]
	sh.mu.RLock()
	rec := sh.rec[n]
	sh.mu.RUnlock()
	return rec
}

// recOf is the writer-side lookup. Callers hold the hub's commit lock —
// the store's single-mutator guarantee — so no shard lock is needed:
// nothing can be writing the map concurrently.
func (s *shardStore) recOf(n node) *clusterRec {
	return s.shards[shardOf(n)].rec[n]
}

// membersOf returns n's current member set (shared; do not mutate).
// Writer-side.
func (s *shardStore) membersOf(n node) []node {
	if rec := s.recOf(n); rec != nil {
		return rec.members
	}
	return []node{n}
}

// checkMerge verifies that merging node n with the clusters of all
// partners preserves transitive uniqueness: the combined cluster must
// not hold two tuples of one source (srcName renders source ordinals
// for the violation message). n's own current cluster counts. It
// mutates nothing; a nil return guarantees the subsequent apply is
// sound. Writer-side.
func (s *shardStore) checkMerge(n node, partners []node, srcName func(int) string) error {
	bySrc := map[int]node{}
	seenRec := map[*clusterRec]bool{}
	seenOne := map[node]bool{}
	absorb := func(m node) error {
		if prev, dup := bySrc[m.src]; dup {
			return fmt.Errorf("transitive uniqueness violation: tuples %d and %d of source %q would join one cluster",
				prev.idx, m.idx, srcName(m.src))
		}
		bySrc[m.src] = m
		return nil
	}
	fold := func(p node) error {
		if rec := s.recOf(p); rec != nil {
			if seenRec[rec] {
				return nil
			}
			seenRec[rec] = true
			for _, m := range rec.members {
				if err := absorb(m); err != nil {
					return err
				}
			}
			return nil
		}
		if seenOne[p] {
			return nil
		}
		seenOne[p] = true
		return absorb(p)
	}
	if err := fold(n); err != nil {
		return err
	}
	for _, p := range partners {
		if err := fold(p); err != nil {
			return err
		}
	}
	return nil
}

// apply merges n with every partner's cluster and publishes the result,
// returning the merged, sorted member set (nil when n stays an implicit
// singleton — a matchless insert publishes nothing). Callers have
// already run checkMerge. Writer-side.
func (s *shardStore) apply(n node, partners []node) []node {
	if len(partners) == 0 && s.recOf(n) == nil {
		return nil
	}
	var members []node
	seenRec := map[*clusterRec]bool{}
	seenOne := map[node]bool{}
	add := func(p node) {
		if rec := s.recOf(p); rec != nil {
			if !seenRec[rec] {
				seenRec[rec] = true
				members = append(members, rec.members...)
			}
		} else if !seenOne[p] {
			seenOne[p] = true
			members = append(members, p)
		}
	}
	add(n)
	for _, p := range partners {
		add(p)
	}
	sortNodes(members)
	s.publish(members)
	return members
}

// publish installs one cluster: a fresh immutable record stored for
// every member, one shard at a time (shard write locks are never
// nested). A reader of any member sees either its old record or the new
// one — both committed states. Writer-side; the only place shard write
// locks are taken.
func (s *shardStore) publish(members []node) {
	prev := 0
	seenRec := map[*clusterRec]bool{}
	for _, m := range members {
		if rec := s.recOf(m); rec != nil && !seenRec[rec] {
			seenRec[rec] = true
			prev += len(rec.members) - 1
		}
	}
	rec := &clusterRec{members: members}
	var byShard [clusterShardCount][]node
	for _, m := range members {
		byShard[shardOf(m)] = append(byShard[shardOf(m)], m)
	}
	for si := range byShard {
		if len(byShard[si]) == 0 {
			continue
		}
		sh := &s.shards[si]
		sh.mu.Lock()
		for _, m := range byShard[si] {
			sh.rec[m] = rec
		}
		sh.mu.Unlock()
	}
	s.merged.Add(int64(len(members) - 1 - prev))
}

// partition returns the canonical non-singleton cluster partition:
// members sorted by (source, index), clusters sorted by first member —
// the snapshot/verification form. Every record holds ≥ 2 members by
// construction, so the records themselves are the partition.
// Writer-side.
func (s *shardStore) partition() [][][2]int {
	seen := map[*clusterRec]bool{}
	var out [][][2]int
	for i := range s.shards {
		for _, rec := range s.shards[i].rec {
			if seen[rec] {
				continue
			}
			seen[rec] = true
			c := make([][2]int, len(rec.members))
			for j, m := range rec.members {
				c[j] = [2]int{m.src, m.idx}
			}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0][0] != out[b][0][0] {
			return out[a][0][0] < out[b][0][0]
		}
		return out[a][0][1] < out[b][0][1]
	})
	return out
}

package hub

import (
	"testing"

	"entityid/internal/match"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// twoSourceHub builds the smallest hub with a real cluster record:
// A/0 and B/0 matched on name.
func twoSourceHub(t *testing.T) *Hub {
	t.Helper()
	h := New()
	mk := func(name string) {
		t.Helper()
		attrs := []schema.Attribute{
			{Name: "id", Kind: value.KindString},
			{Name: "name", Kind: value.KindString},
		}
		if err := h.AddSource(name, relation.New(schema.MustNew(name, attrs, []string{"id"}))); err != nil {
			t.Fatal(err)
		}
	}
	mk("A")
	mk("B")
	err := h.Link(PairSpec{
		Left:  "A",
		Right: "B",
		Attrs: []match.AttrMap{
			{Name: "name", R: "name", S: "name"},
			{Name: "id_A", R: "id", S: ""},
			{Name: "id_B", R: "", S: "id"},
		},
		ExtKey: []string{"name"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range [][2]string{{"A", "a0"}, {"B", "b0"}} {
		if _, err := h.Insert(ins[0], relation.Tuple{value.String(ins[1]), value.String("n1")}); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// TestPointReadPathZeroAlloc pins the positional point-read path —
// topo snapshot, published view, cluster-record read — at zero
// allocations per probe. This is the machine check behind the
// //entitylint:hotpath annotations on the read path: the snapshot
// load, the view load and the mem backend's shard read must stay
// alloc-free so point reads never pressure the GC under load.
func TestPointReadPathZeroAlloc(t *testing.T) {
	h := twoSourceHub(t)
	bad := false
	avg := testing.AllocsPerRun(200, func() {
		tv := h.topo.Load()
		si, ok := tv.byName["A"]
		if !ok {
			bad = true
			return
		}
		src := tv.sources[si]
		if src.view.Load().tuples[0] == nil {
			bad = true
			return
		}
		ms, err := h.clusters.Read(node{Src: si, Idx: 0})
		if err != nil || len(ms) != 2 {
			bad = true
		}
	})
	if bad {
		t.Fatal("point-read probe hit an unexpected state")
	}
	if avg != 0 {
		t.Fatalf("positional point read allocates %.1f times per probe, want 0", avg)
	}
}

// TestKeyedLookupAllocBound pins the keyed probe (LookupKey under the
// key read lock). Key encoding inherently allocates — value.Key builds
// a small string — but the cost must stay a small constant, never
// O(tuples) or O(members).
func TestKeyedLookupAllocBound(t *testing.T) {
	h := twoSourceHub(t)
	key := []value.Value{value.String("a0")}
	bad := false
	avg := testing.AllocsPerRun(200, func() {
		tv := h.topo.Load()
		src := tv.sources[tv.byName["A"]]
		src.keyMu.RLock()
		idx := src.rel.LookupKey(key...)
		src.keyMu.RUnlock()
		if idx != 0 {
			bad = true
		}
	})
	if bad {
		t.Fatal("keyed probe missed tuple A/0")
	}
	if avg > 3 {
		t.Fatalf("keyed lookup allocates %.1f times per probe, want <= 3", avg)
	}
}

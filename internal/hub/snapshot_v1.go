// Format-1 snapshots: the PR 3 encoding — the entire federation state
// as a single CRC-framed JSON record. Kept for compatibility (a data
// directory written by an older build must still recover; LoadSnapshot
// version-sniffs the first frame) and as the baseline the bench
// workflow compares the chunked format against. New snapshots are
// always written in format 2 (snapshot.go); the single frame caps a
// format-1 snapshot at the WAL frame limit, which is exactly the
// ceiling the chunked format removes.
package hub

import (
	"encoding/json"
	"fmt"

	"entityid/internal/relation"
	"entityid/internal/store"
	"entityid/internal/wal"
)

// hubSnap is the format-1 snapshot payload.
type hubSnap struct {
	// Watermark is the last WAL sequence number the snapshot covers;
	// replay resumes after it.
	Watermark uint64       `json:"watermark"`
	Sources   []sourceSnap `json:"sources"`
	Pairs     []pairSnap   `json:"pairs"`
	// Clusters is the canonical non-singleton cluster partition, each
	// cluster a sorted list of (source ordinal, tuple index) pairs,
	// clusters sorted by first member. Singletons are implicit.
	Clusters [][][2]int `json:"clusters,omitempty"`
}

// sourceSnap is one source: schema plus canonical tuples.
type sourceSnap struct {
	Name   string           `json:"name"`
	Schema wal.SchemaRec    `json:"schema"`
	Tuples [][]wal.ValueRec `json:"tuples,omitempty"`
}

// pairSnap is one link: its spec and the exported federation state.
type pairSnap struct {
	Link wal.LinkRec `json:"link"`
	MT   [][2]int    `json:"mt,omitempty"`
	RLen int         `json:"rlen"`
	SLen int         `json:"slen"`
}

// captureLocked copies the hub state into a format-1 snapshot payload.
// Callers hold h.mu (at least shared) and h.commitMu. Retained for the
// compatibility tests and the bench baseline; the production path
// captures per-section instead (snapshot.go). A spilled pair's state
// is read from the backend's pair store and sorted into the canonical
// export order.
func (h *Hub) captureLocked() (*hubSnap, error) {
	snap := &hubSnap{}
	for _, s := range h.sources {
		ss := sourceSnap{
			Name:   s.name,
			Schema: wal.EncodeSchema(s.rel.Schema()),
			Tuples: wal.EncodeTuples(s.rel.Tuples()),
		}
		snap.Sources = append(snap.Sources, ss)
	}
	for _, p := range h.pairs {
		st, err := h.exportPair(p)
		if err != nil {
			return nil, fmt.Errorf("hub: snapshot: %w", err)
		}
		ps := pairSnap{Link: linkRecFromSpec(p.spec), RLen: st.RLen, SLen: st.SLen}
		for _, pr := range st.Pairs {
			ps.MT = append(ps.MT, [2]int{pr.RIndex, pr.SIndex})
		}
		snap.Pairs = append(snap.Pairs, ps)
	}
	var err error
	if snap.Clusters, err = h.partitionLocked(); err != nil {
		return nil, err
	}
	return snap, nil
}

// encodeSnapshot frames a format-1 snapshot payload. The frame sequence
// number is watermark+1 so the zero watermark (no WAL yet) still frames
// validly; the authoritative watermark lives in the payload. A payload
// beyond the WAL frame cap fails here — the format-1 ceiling.
func encodeSnapshot(snap *hubSnap, watermark uint64) ([]byte, error) {
	snap.Watermark = watermark
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("hub: snapshot: %w", err)
	}
	frame, err := wal.EncodeRecord(watermark+1, payload)
	if err != nil {
		return nil, fmt.Errorf("hub: snapshot: %w", err)
	}
	return frame, nil
}

// EncodeLegacySnapshot renders the hub as a format-1 single-frame
// snapshot — the PR 3 encoding — for the bench workflow that tracks
// chunked vs single-frame recovery and for compatibility fixtures. It
// fails when the encoded hub exceeds the WAL frame cap: the format's
// defining limitation, and the reason new snapshots are chunked.
func (h *Hub) EncodeLegacySnapshot() ([]byte, error) {
	h.mu.RLock()
	h.commitMu.Lock()
	snap, err := h.captureLocked()
	var watermark uint64
	if h.per != nil {
		watermark = h.per.log.LastSeq()
	}
	h.commitMu.Unlock()
	h.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return encodeSnapshot(snap, watermark)
}

// loadSnapshotV1 rebuilds a hub from a decoded format-1 frame by
// converting it into the section form and running the shared assembly
// (parallel federate.Restore verification, cluster refold check) onto
// the given storage backend (nil means in-memory).
func loadSnapshotV1(rec wal.Record, b store.Backend) (*Hub, uint64, error) {
	var snap hubSnap
	if err := json.Unmarshal(rec.Payload, &snap); err != nil {
		return nil, 0, fmt.Errorf("hub: load snapshot: %w", err)
	}
	if rec.Seq != snap.Watermark+1 {
		return nil, 0, fmt.Errorf("hub: load snapshot: frame sequence %d does not match watermark %d", rec.Seq, snap.Watermark)
	}
	var secs []*decSection
	for _, ss := range snap.Sources {
		sch, err := wal.DecodeSchema(ss.Schema)
		if err != nil {
			return nil, 0, fmt.Errorf("hub: load snapshot: source %q: %w", ss.Name, err)
		}
		rel := relation.New(sch)
		for i, tr := range ss.Tuples {
			t, err := wal.DecodeTuple(tr)
			if err != nil {
				return nil, 0, fmt.Errorf("hub: load snapshot: source %q tuple %d: %w", ss.Name, i, err)
			}
			if err := rel.Insert(t); err != nil {
				return nil, 0, fmt.Errorf("hub: load snapshot: source %q tuple %d: %w", ss.Name, i, err)
			}
		}
		secs = append(secs, &decSection{
			meta: snapSection{Kind: secSource, Name: ss.Name},
			src:  &decSource{name: ss.Name, rel: rel},
		})
	}
	for _, ps := range snap.Pairs {
		dp := &decPair{link: ps.Link, rlen: ps.RLen, slen: ps.SLen}
		for _, pr := range ps.MT {
			dp.mt = append(dp.mt, matchPair(pr))
		}
		secs = append(secs, &decSection{meta: snapSection{Kind: secPair}, pair: dp})
	}
	secs = append(secs, &decSection{meta: snapSection{Kind: secClusters}, clusters: snap.Clusters})
	h, err := assembleHub(secs, b)
	if err != nil {
		return nil, 0, err
	}
	return h, snap.Watermark, nil
}

// Global entity clusters: the union-find structure that folds pairwise
// matching tables into hub-wide entity identities. A node is one tuple
// of one source; an edge is one pairwise matching-table entry; a
// cluster is a connected component — the set of tuples, across all
// sources, identified as modeling the same real-world entity. The
// union-find is the *folding* structure (speculative link folds,
// snapshot refolds); the *served* partition lives in the backend's
// cluster-record store (internal/store).
//
// The §3.2 uniqueness constraint lifts transitively: within one
// cluster, each source may contribute at most one tuple (two tuples of
// the same autonomous source in one cluster would assert that the
// source models the same entity twice, the cross-source analogue of a
// matching-table uniqueness violation). The check runs before any
// union, so a violating merge is rejected with the structure untouched.
package hub

import (
	"fmt"

	"entityid/internal/store"
)

// node identifies one tuple: source ordinal and tuple position. It is
// the storage layer's key type, aliased so hub code reads naturally.
type node = store.Node

// clusterSet is a union-find over nodes with per-root member lists.
// Nodes absent from parent are implicit singletons, so the structure
// never needs to be pre-populated with every tuple. Not safe for
// concurrent use; the Hub guards it with its cluster lock.
type clusterSet struct {
	parent  map[node]node
	size    map[node]int
	members map[node][]node
}

func newClusterSet() *clusterSet {
	return &clusterSet{
		parent:  map[node]node{},
		size:    map[node]int{},
		members: map[node][]node{},
	}
}

// find returns the root of n's cluster, with path compression.
func (c *clusterSet) find(n node) node {
	p, ok := c.parent[n]
	if !ok || p == n {
		return n
	}
	root := c.find(p)
	c.parent[n] = root
	return root
}

// membersOf returns the members of the cluster rooted at root (shared;
// do not mutate). Implicit singletons return themselves.
func (c *clusterSet) membersOf(root node) []node {
	if m, ok := c.members[root]; ok {
		return m
	}
	return []node{root}
}

// sizeOf returns the cluster size of a root.
func (c *clusterSet) sizeOf(root node) int {
	if s, ok := c.size[root]; ok {
		return s
	}
	return 1
}

// checkMerge verifies that merging node n with the clusters of all
// partners preserves transitive uniqueness: the combined cluster must
// not hold two tuples of one source (srcName renders source ordinals
// for the violation message). n's own current cluster counts — n may
// already be clustered when links fold seeded matching tables. It
// mutates nothing; a nil return guarantees the subsequent unions are
// sound.
func (c *clusterSet) checkMerge(n node, partners []node, srcName func(int) string) error {
	nRoot := c.find(n)
	bySrc := map[int]node{}
	for _, m := range c.membersOf(nRoot) {
		bySrc[m.Src] = m
	}
	seen := map[node]bool{nRoot: true}
	for _, p := range partners {
		root := c.find(p)
		if seen[root] {
			continue
		}
		seen[root] = true
		for _, m := range c.membersOf(root) {
			if prev, dup := bySrc[m.Src]; dup {
				return fmt.Errorf("transitive uniqueness violation: tuples %d and %d of source %q would join one cluster",
					prev.Idx, m.Idx, srcName(m.Src))
			}
			bySrc[m.Src] = m
		}
	}
	return nil
}

// union merges the clusters of a and b (union by size).
func (c *clusterSet) union(a, b node) {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return
	}
	if c.sizeOf(ra) < c.sizeOf(rb) {
		ra, rb = rb, ra
	}
	c.parent[rb] = ra
	if _, ok := c.parent[ra]; !ok {
		c.parent[ra] = ra
	}
	merged := append(append([]node(nil), c.membersOf(ra)...), c.membersOf(rb)...)
	c.size[ra] = len(merged)
	c.members[ra] = merged
	delete(c.members, rb)
	delete(c.size, rb)
}

// sortNodes orders nodes by (source, index).
func sortNodes(ns []node) { store.SortNodes(ns) }

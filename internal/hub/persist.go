// Hub durability: the write-ahead log and snapshot machinery behind
// Open. Every committed mutation — AddSource, Link, Insert — is
// appended to a wal.Log before it is applied (hub.go calls the
// append* helpers at its commit points), so the on-disk log is always
// a prefix-exact account of the in-memory state: recovery loads the
// latest snapshot and replays the log tail past the snapshot
// watermark, reproducing clusters, matching tables and canonical
// relations bit-for-bit.
//
// Snapshots are chunked and incremental (snapshot.go): the data
// directory holds a manifest file plus one content-addressed section
// file per source/pair/partition under snapsecs/. The background
// writer takes an O(sources+pairs) cut at the trigger (the only work
// under the commit locks), then captures and writes one section at a
// time, carrying sections whose content is unchanged since the
// previous manifest forward by reference — steady-state snapshot cost
// is proportional to change. The manifest rename is the commit point:
// a crash at any moment leaves either the old manifest with a longer
// log or the new manifest with a shorter one, and orphaned section
// files are swept on the next open or snapshot. Legacy single-frame
// snapshot.ei files (format 1) are still recognised on open.
//
// Jumbo source registrations take the same medicine: an AddSource
// whose seed relation would overflow one WAL frame is logged as a
// source_begin record plus source_chunk continuations, committing at
// the final chunk; replay discards a group the log abandons mid-way
// (the registration was never acknowledged).
package hub

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"entityid/internal/obs"
	"entityid/internal/relation"
	"entityid/internal/store"
	"entityid/internal/store/disk"
	"entityid/internal/wal"
)

const (
	snapshotFile     = "snapshot.ei" // format-1 single frame (legacy, read-only)
	snapshotTmp      = "snapshot.ei.tmp"
	snapshotManifest = "snapshot.manifest.ei"
	snapshotManTmp   = "snapshot.manifest.ei.tmp"
	snapSecDir       = "snapsecs"
	snapSecSuffix    = ".sec"
)

// Options configures a durable hub.
type Options struct {
	// SnapshotEvery is the number of committed inserts between
	// background snapshots (and the accompanying log truncation);
	// 0 disables automatic snapshots — the log grows until SnapshotNow.
	SnapshotEvery int
	// SyncEvery, when positive, fsyncs the write-ahead log after every
	// N appends (group commit): the window of committed-but-volatile
	// records under a power-loss crash model is bounded by N, and
	// IngestBatch flushes the remainder with one final sync per batch.
	// 0 leaves durability between snapshots to the OS page cache, as
	// before.
	SyncEvery int
	// ChunkBytes overrides the snapshot chunk payload budget
	// (0 means wal.DefaultChunkPayload). Also bounds the seed-tuple
	// batches of chunked AddSource log records.
	ChunkBytes int
	// FS is the filesystem the durability stack performs every file
	// operation through; nil means the real one (wal.OS). Tests inject
	// internal/wal/errfs here to drive ENOSPC/EIO/fsync stalls into
	// chosen call points.
	FS wal.FS
	// ProbeBackoff and ProbeBackoffMax shape the degraded-mode
	// recovery probe loop: the first probe fires after ProbeBackoff,
	// each failure doubles the delay, capped at ProbeBackoffMax.
	// Zero values mean 500ms and 15s.
	ProbeBackoff    time.Duration
	ProbeBackoffMax time.Duration
	// Store selects the storage backend by name: "mem" (the default)
	// keeps every structure resident; "disk" spills cold cluster
	// records and cold pair matching tables to a tier under the data
	// directory, paging them back on demand. Empty falls back to the
	// ENTITYID_STORE environment variable, then to "mem".
	Store string
	// Backend, when non-nil, is used directly and overrides Store.
	// The hub takes ownership and closes it with Close.
	Backend store.Backend
	// HotClusterEntries and HotPairs bound the disk backend's hot
	// tiers (total resident cluster members across records, resident
	// pair federations). Zero falls back to the
	// ENTITYID_STORE_HOT_CLUSTERS / ENTITYID_STORE_HOT_PAIRS
	// environment variables, then to the defaults.
	HotClusterEntries int
	HotPairs          int
}

// Default hot-tier budgets for the disk backend.
const (
	defaultHotClusterEntries = 1 << 16
	defaultHotPairs          = 8
)

// storeTierDir is the data-directory subdirectory the disk backend
// roots its spill tier in. The tier is an ephemeral cache — wiped on
// open; durability is always the WAL plus snapshots.
const storeTierDir = "storetier"

// resolveBackend picks the storage backend for a durable hub:
// opts.Backend if set, else the backend opts.Store names, else the
// ENTITYID_STORE environment variable, else memory (returned as nil —
// NewWithBackend supplies the memory backend). The caller must hold
// the directory lock: opening the disk backend wipes its spill tier.
func resolveBackend(dir string, opts Options) (store.Backend, error) {
	if opts.Backend != nil {
		return opts.Backend, nil
	}
	name := opts.Store
	if name == "" {
		name = os.Getenv("ENTITYID_STORE")
	}
	switch name {
	case "", "mem":
		return nil, nil
	case "disk":
		caps := store.Caps{
			HotClusterEntries: budgetFor(opts.HotClusterEntries, "ENTITYID_STORE_HOT_CLUSTERS", defaultHotClusterEntries),
			HotPairs:          budgetFor(opts.HotPairs, "ENTITYID_STORE_HOT_PAIRS", defaultHotPairs),
		}
		return disk.Open(filepath.Join(dir, storeTierDir), caps)
	default:
		return nil, fmt.Errorf("unknown storage backend %q (want mem or disk)", name)
	}
}

// budgetFor resolves one hot-tier budget: explicit option, environment
// override, default.
func budgetFor(opt int, env string, def int) int {
	if opt > 0 {
		return opt
	}
	if v := os.Getenv(env); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// Default recovery-probe backoff bounds.
const (
	defaultProbeBackoff    = 500 * time.Millisecond
	defaultProbeBackoffMax = 15 * time.Second
)

// RecoveryInfo reports what Open reconstructed.
type RecoveryInfo struct {
	// FromSnapshot reports whether a snapshot (either format) was
	// loaded.
	FromSnapshot bool
	// Watermark is the snapshot's last covered sequence number.
	Watermark uint64
	// LastSeq is the last good WAL record.
	LastSeq uint64
	// Replayed counts the log records applied after the watermark.
	Replayed int
	// TailDamage is non-empty when a torn or corrupt log tail was
	// detected (CRC/length/sequence check) and recovery stopped at the
	// last good record.
	TailDamage string
}

// SnapshotStats reports what the most recent snapshot wrote.
type SnapshotStats struct {
	// Watermark is the WAL sequence number the snapshot covers.
	Watermark uint64
	// BytesWritten counts newly written bytes (changed section files
	// plus the manifest); carried-forward sections cost nothing.
	BytesWritten int64
	// SectionsWritten and SectionsReused partition the snapshot's
	// sections into re-encoded vs carried forward by reference.
	SectionsWritten int
	SectionsReused  int
	// Taken is when the snapshot committed. After Open with no snapshot
	// written yet this session, it is seeded from the on-disk
	// manifest's modification time (zero if no snapshot exists at all),
	// so last-snapshot age survives restarts.
	Taken time.Time
}

// Open opens (or creates) a durable hub rooted at dir: it loads the
// snapshot if one exists (chunked format-2 manifests preferred, legacy
// format-1 files still recognised), replays the write-ahead log tail
// past the snapshot watermark, and attaches the logger so subsequent
// mutations are persisted. The returned hub must be Closed.
func Open(dir string, opts Options) (*Hub, *RecoveryInfo, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = wal.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("hub: open %s: %w", dir, err)
	}
	// The flock comes first: until it is held, a live writer may own
	// this directory and every file in it — including an in-flight
	// snapshot temp — so nothing may be read or removed yet.
	l, err := wal.OpenFS(dir, fsys)
	if err != nil {
		return nil, nil, fmt.Errorf("hub: open %s: %w", dir, err)
	}
	// Leftover temp files are interrupted snapshot writes by a now dead
	// writer (we hold the lock); the committed snapshot (if any) is
	// intact, so the temps are garbage.
	fsys.Remove(filepath.Join(dir, snapshotTmp))
	fsys.Remove(filepath.Join(dir, snapshotManTmp))

	// The backend opens under the lock too: the disk backend wipes and
	// recreates its spill tier, which must never race a live writer.
	b, err := resolveBackend(dir, opts)
	if err != nil {
		l.Close()
		return nil, nil, fmt.Errorf("hub: open %s: %w", dir, err)
	}
	fail := func(err error) (*Hub, *RecoveryInfo, error) {
		if b != nil {
			b.Close()
		}
		l.Close()
		return nil, nil, err
	}

	info := &RecoveryInfo{}
	var h *Hub
	var prevMan *snapManifest
	switch man, err := readManifestFS(fsys, dir); {
	case err == nil:
		h, err = loadSnapshotSections(fsys, dir, man, b)
		if err != nil {
			return fail(fmt.Errorf("hub: open %s: %w", dir, err))
		}
		prevMan = man
		info.FromSnapshot = true
		info.Watermark = man.Watermark
	case os.IsNotExist(err):
		// No manifest: fall back to a legacy format-1 snapshot, then to
		// an empty hub.
		f, ferr := fsys.Open(filepath.Join(dir, snapshotFile))
		switch {
		case ferr == nil:
			h, info.Watermark, err = loadSnapshot(f, b)
			f.Close()
			if err != nil {
				return fail(fmt.Errorf("hub: open %s: %w", dir, err))
			}
			info.FromSnapshot = true
		case os.IsNotExist(ferr):
			h = NewWithBackend(b)
		default:
			return fail(fmt.Errorf("hub: open %s: %w", dir, ferr))
		}
	default:
		return fail(fmt.Errorf("hub: open %s: %w", dir, err))
	}
	// Sweep section files no committed manifest references — debris of
	// snapshot attempts a crash interrupted before their manifest
	// rename.
	if err := sweepSections(fsys, dir, prevMan); err != nil {
		return fail(fmt.Errorf("hub: open %s: %w", dir, err))
	}

	if d := l.Damage(); d != nil {
		info.TailDamage = d.Error()
	}
	// Cross-check the log against the snapshot before trusting either: a
	// partially restored directory (lost segments, lost snapshot) would
	// otherwise replay around a hole — or log new commits at sequence
	// numbers a later replay skips. Fail closed instead.
	switch {
	case info.FromSnapshot && l.LastSeq() < info.Watermark:
		return fail(fmt.Errorf("hub: open %s: write-ahead log ends at record %d but the snapshot covers through %d: log records are missing",
			dir, l.LastSeq(), info.Watermark))
	case info.FromSnapshot && l.OldestSeq() > info.Watermark+1:
		return fail(fmt.Errorf("hub: open %s: write-ahead log starts at record %d but the snapshot covers only through %d: log records are missing",
			dir, l.OldestSeq(), info.Watermark))
	case !info.FromSnapshot && l.LastSeq() > 0 && l.OldestSeq() > 1:
		return fail(fmt.Errorf("hub: open %s: write-ahead log starts at record %d with no snapshot covering the truncated prefix",
			dir, l.OldestSeq()))
	}
	n, err := h.Replay(l, info.Watermark)
	if err != nil {
		return fail(fmt.Errorf("hub: open %s: %w", dir, err))
	}
	info.Replayed = n
	info.LastSeq = l.LastSeq()
	h.snapChunkBytes = opts.ChunkBytes
	probe, probeMax := opts.ProbeBackoff, opts.ProbeBackoffMax
	if probe <= 0 {
		probe = defaultProbeBackoff
	}
	if probeMax <= 0 {
		probeMax = defaultProbeBackoffMax
	}
	h.per = &walLogger{
		log: l, fs: fsys, dir: dir, every: opts.SnapshotEvery,
		syncEvery: opts.SyncEvery, chunkBytes: opts.ChunkBytes,
		prevMan: prevMan, hub: h,
		probeBase: probe, probeMax: probeMax,
		done: make(chan struct{}),
	}
	if prevMan != nil {
		// Seed last-snapshot age across restarts from the committed
		// manifest's mtime; byte/section figures stay zero — nothing was
		// written this session.
		if fi, serr := fsys.Stat(filepath.Join(dir, snapshotManifest)); serr == nil {
			h.per.stats.Taken = fi.ModTime()
			h.per.stats.Watermark = prevMan.Watermark
		}
	}
	return h, info, nil
}

// readManifest reads and validates the committed manifest file.
func readManifest(dir string) (*snapManifest, error) {
	return readManifestFS(wal.OS, dir)
}

// readManifestFS is readManifest over an injectable filesystem.
func readManifestFS(fsys wal.FS, dir string) (*snapManifest, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, snapshotManifest))
	if err != nil {
		return nil, err
	}
	rec, err := wal.DecodeRecord(data)
	if err != nil {
		return nil, fmt.Errorf("snapshot manifest: %w", err)
	}
	return decodeManifest(rec)
}

// secPath names a section's content-addressed file.
func secPath(dir, hash string) string {
	return filepath.Join(dir, snapSecDir, hash+snapSecSuffix)
}

// sweepSections removes section files the manifest does not reference
// (man may be nil: remove them all). The caller holds the directory
// lock.
func sweepSections(fsys wal.FS, dir string, man *snapManifest) error {
	secdir := filepath.Join(dir, snapSecDir)
	ents, err := fsys.ReadDir(secdir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	keep := map[string]bool{}
	if man != nil {
		for _, s := range man.Sections {
			keep[s.Hash+snapSecSuffix] = true
		}
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), snapSecSuffix) && !strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		if keep[e.Name()] {
			continue
		}
		if err := fsys.Remove(filepath.Join(secdir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// loadSnapshotSections rebuilds a hub from a manifest's section files,
// decoding independent sections in parallel and verifying each file's
// content hash, chunk count and item counts against the manifest. The
// hub is assembled onto the given storage backend (nil means memory).
func loadSnapshotSections(fsys wal.FS, dir string, man *snapManifest, b store.Backend) (*Hub, error) {
	secs := make([]*decSection, len(man.Sections))
	errs := make([]error, len(man.Sections))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i, want := range man.Sections {
		wg.Add(1)
		go func(i int, want snapSection) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			secs[i], errs[i] = readSectionFile(fsys, dir, i, want)
		}(i, want)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return assembleHub(secs, b)
}

// readSectionFile streams one section file through the chunk decoder.
func readSectionFile(fsys wal.FS, dir string, sec int, want snapSection) (*decSection, error) {
	f, err := fsys.Open(secPath(dir, want.Hash))
	if err != nil {
		return nil, fmt.Errorf("snapshot section: %w", err)
	}
	defer f.Close()
	a := newSectionAccum(sec)
	scanner := wal.NewFrameScanner(f)
	for !a.done {
		rec, raw, err := scanner.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("hub: snapshot section %d: %w", sec, err)
		}
		if err := a.addChunk(rec, raw); err != nil {
			return nil, err
		}
	}
	if a.done {
		if _, _, err := scanner.Next(); err != io.EOF {
			return nil, fmt.Errorf("hub: snapshot section %d: trailing frames after final chunk", sec)
		}
	}
	d, err := a.finish()
	if err != nil {
		return nil, err
	}
	if err := d.matches(want); err != nil {
		return nil, err
	}
	return d, nil
}

// Replay re-applies the log tail after the snapshot watermark: every
// record with a later sequence number is decoded and re-applied through
// the normal mutation paths (records the snapshot already covers are
// skipped). It returns the number of records applied. Replay must run
// before the logger is attached, so replayed mutations are not
// re-logged.
//
// A chunked source registration (source_begin + source_chunk records)
// commits only at its final chunk; a group the log abandons mid-way —
// the writer crashed or its append failed between chunks, so the
// registration was never acknowledged — is discarded, exactly like a
// torn single record.
func (h *Hub) Replay(l *wal.Log, after uint64) (int, error) {
	if h.per != nil {
		return 0, fmt.Errorf("hub: replay into a hub that is already logging")
	}
	n := 0
	var open *pendingSource
	err := l.Replay(after, func(rec wal.Record) error {
		env, err := wal.DecodeEnvelope(rec.Payload)
		if err != nil {
			return fmt.Errorf("record %d: %w", rec.Seq, err)
		}
		applied, err := h.applyRecord(env, &open)
		if err != nil {
			return fmt.Errorf("record %d: %w", rec.Seq, err)
		}
		n += applied
		return nil
	})
	// A group still open at the end of the log is an abandoned,
	// unacknowledged registration; its records were never counted and
	// nothing of it reached the hub.
	return n, err
}

// pendingSource buffers an in-flight chunked source registration during
// replay. records counts the group's log records, applied to the total
// only when the group commits.
type pendingSource struct {
	name    string
	rel     *relation.Relation
	records int
}

// applyRecord re-applies one decoded WAL record, returning how many log
// records it committed (group records count at the final chunk). open
// threads the chunked-registration state machine between records.
func (h *Hub) applyRecord(env wal.Envelope, open **pendingSource) (int, error) {
	if env.Type != wal.TypeSourceChunk && *open != nil {
		// Any non-continuation record aborts an open group: the group's
		// writer saw an append fail and the registration was rejected.
		// Forget the partial source; nothing of it was committed.
		*open = nil
	}
	switch env.Type {
	case wal.TypeAddSource:
		sch, err := wal.DecodeSchema(env.AddSource.Schema)
		if err != nil {
			return 0, err
		}
		rel := relation.New(sch)
		for i, tr := range env.AddSource.Tuples {
			t, err := wal.DecodeTuple(tr)
			if err != nil {
				return 0, fmt.Errorf("seed tuple %d: %w", i, err)
			}
			if err := rel.Insert(t); err != nil {
				return 0, fmt.Errorf("seed tuple %d: %w", i, err)
			}
		}
		return 1, h.addSourceOwned(env.AddSource.Name, rel)
	case wal.TypeSourceBegin:
		sch, err := wal.DecodeSchema(env.SourceBegin.Schema)
		if err != nil {
			return 0, err
		}
		*open = &pendingSource{name: env.SourceBegin.Name, rel: relation.New(sch), records: 1}
		return 0, nil
	case wal.TypeSourceChunk:
		p := *open
		if p == nil || p.name != env.SourceChunk.Name {
			return 0, fmt.Errorf("hub: source_chunk for %q without matching source_begin", env.SourceChunk.Name)
		}
		for i, tr := range env.SourceChunk.Tuples {
			t, err := wal.DecodeTuple(tr)
			if err != nil {
				return 0, fmt.Errorf("seed tuple %d: %w", i, err)
			}
			if err := p.rel.Insert(t); err != nil {
				return 0, fmt.Errorf("seed tuple %d: %w", i, err)
			}
		}
		p.records++
		if !env.SourceChunk.Final {
			return 0, nil
		}
		*open = nil
		return p.records, h.addSourceOwned(p.name, p.rel)
	case wal.TypeLink:
		spec, err := specFromLinkRec(*env.Link)
		if err != nil {
			return 0, err
		}
		return 1, h.Link(spec)
	case wal.TypeInsert:
		t, err := wal.DecodeTuple(env.Insert.Tuple)
		if err != nil {
			return 0, err
		}
		_, err = h.Insert(env.Insert.Source, t)
		return 1, err
	default:
		return 0, fmt.Errorf("hub: unknown record type %q", env.Type)
	}
}

// Close quiesces any in-flight background snapshot, closes the
// write-ahead log, and closes the storage backend. It returns the
// first background snapshot error, if any. A memory-only hub's close
// is a no-op (the memory backend has nothing to release).
func (h *Hub) Close() error {
	var err error
	if h.per != nil {
		err = h.per.close()
	}
	if h.backend != nil {
		if cerr := h.backend.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// SnapshotNow forces a synchronous snapshot: cut, per-section capture
// and write, manifest rename, log truncation. It fails on a memory-only
// hub.
func (h *Hub) SnapshotNow() error {
	p := h.per
	if p == nil {
		return fmt.Errorf("hub: snapshot of a memory-only hub (use Open)")
	}
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	h.mu.RLock()
	h.commitMu.Lock()
	cut := h.cutLocked(p.log.LastSeq())
	h.commitMu.Unlock()
	h.mu.RUnlock()
	if _, err := p.log.Rotate(); err != nil {
		if isPersistentIO(err) {
			h.degrade(err)
		}
		return err
	}
	if err := p.writeSnapshot(h, cut); err != nil {
		if isPersistentIO(err) {
			h.degrade(err)
		}
		return err
	}
	return nil
}

// LastSnapshot reports what the most recent completed snapshot wrote
// (zero value if none completed this session).
func (h *Hub) LastSnapshot() SnapshotStats {
	p := h.per
	if p == nil {
		return SnapshotStats{}
	}
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	return p.stats
}

// walLogger couples a hub to its write-ahead log and drives background
// snapshotting.
type walLogger struct {
	log        *wal.Log
	fs         wal.FS
	dir        string
	every      int
	syncEvery  int
	chunkBytes int
	// hub is the owner, so persistence failures discovered off the
	// ingest path (group-commit fsync, background snapshots) can
	// degrade it too.
	hub *Hub
	// probeBase/probeMax bound the degraded-mode recovery backoff;
	// probing guards the singleton probe loop, done stops it (and is
	// closed exactly once, by close or quiesce).
	probeBase time.Duration
	probeMax  time.Duration
	probing   atomic.Bool
	done      chan struct{}
	doneOnce  sync.Once
	// sinceSnap counts committed inserts since the last snapshot
	// trigger.
	sinceSnap atomic.Int64
	// unsynced counts appends since the last fsync under the opt-in
	// group-commit policy; a failed fsync leaves the count pending so
	// the next append retries. syncMu serialises the flushes.
	unsynced atomic.Int64
	//entitylint:lock rank=70
	syncMu sync.Mutex
	// appended counts every successful log append, so batch and
	// pipeline flush points can tell whether their window actually
	// reached the log — a window with no appends skips its fsync.
	appended atomic.Int64
	// snapMu serialises snapshot production (cut → capture → write →
	// truncate); the trigger uses TryLock so ingest never queues behind
	// a snapshot in flight. It also guards prevMan, which only snapshot
	// production touches.
	//entitylint:lock rank=15
	snapMu sync.Mutex
	// prevMan is the manifest of the latest committed snapshot: the
	// diff base that lets unchanged sections carry forward.
	prevMan *snapManifest
	// snapSectionHook, when set, runs after each section write — the
	// crash harness's mid-snapshot kill point.
	snapSectionHook func(int) error
	// wg tracks the background writer, so close can quiesce it.
	wg sync.WaitGroup
	// errMu/bgErr hold the first background snapshot failure, surfaced
	// by close. Failures do NOT suppress later snapshot attempts: a
	// transient error (disk briefly full) must not leave the log
	// growing unboundedly for the rest of the process lifetime.
	//entitylint:lock rank=80
	errMu sync.Mutex
	bgErr error
	// statsMu/stats report the latest completed snapshot.
	//entitylint:lock rank=81
	statsMu sync.Mutex
	stats   SnapshotStats
}

//entitylint:walappend
func (p *walLogger) append(env wal.Envelope) error {
	payload, err := env.Encode()
	if err != nil {
		return err
	}
	return p.appendPayload(payload)
}

// appendPayload appends an already-encoded record — the pipeline's
// encode stage marshals off the commit path and hands the bytes here.
//
//entitylint:walappend
func (p *walLogger) appendPayload(payload []byte) error {
	if _, err := p.log.Append(payload); err != nil {
		return err
	}
	p.appended.Add(1)
	p.maybeSync()
	return nil
}

// maybeSync applies the opt-in group-commit policy: after every
// SyncEvery appends, force the log to stable storage. The record is
// already committed when the sync runs, so a sync failure is surfaced
// as a background error (like a failed snapshot) rather than un-doing
// an acknowledged commit — but the pending count is only consumed on
// success, so the very next append retries the fsync and the
// power-loss exposure stays bounded at N instead of silently widening.
func (p *walLogger) maybeSync() {
	if p.syncEvery <= 0 {
		return
	}
	if p.unsynced.Add(1) < int64(p.syncEvery) {
		return
	}
	p.syncPending()
}

// flushSync forces any appends pending under the group-commit policy to
// stable storage — the one sync that covers a whole IngestBatch.
func (p *walLogger) flushSync() {
	if p.syncEvery <= 0 || p.unsynced.Load() == 0 {
		return
	}
	p.syncPending()
}

// syncPending fsyncs and consumes exactly the counted appends the sync
// covered (an append racing in after the Sync keeps its count, so it is
// flushed by a later sync). syncMu makes the load-sync-subtract triple
// atomic against concurrent flushes.
func (p *walLogger) syncPending() {
	p.syncMu.Lock()
	defer p.syncMu.Unlock()
	n := p.unsynced.Load()
	if n <= 0 {
		return
	}
	if err := p.log.Sync(); err != nil {
		p.fail(err)
		return
	}
	p.unsynced.Add(-n)
}

// appendAddSource logs a source registration. A seed relation that fits
// one frame-capped chunk is logged as a single add_source record,
// byte-compatible with older logs; a jumbo relation is split into a
// source_begin record plus budget-sized source_chunk continuations
// (the same writeChunked splitter the snapshot sections use, frame-cap
// halving included) that commit atomically at the final chunk.
//
//entitylint:walappend
func (p *walLogger) appendAddSource(name string, rel *relation.Relation) error {
	budget := p.chunkBytes
	if budget <= 0 {
		budget = wal.DefaultChunkPayload
	}
	tuples := rel.Tuples()
	items := tupleItems(tuples)
	total := 0
	for i := range tuples {
		total += items.estimate(i)
	}
	if total < budget {
		return p.append(wal.Envelope{Type: wal.TypeAddSource, AddSource: &wal.AddSourceRec{
			Name:   name,
			Schema: wal.EncodeSchema(rel.Schema()),
			Tuples: wal.EncodeTuples(tuples),
		}})
	}
	if err := p.append(wal.Envelope{Type: wal.TypeSourceBegin, SourceBegin: &wal.SourceBeginRec{
		Name:   name,
		Schema: wal.EncodeSchema(rel.Schema()),
	}}); err != nil {
		return err
	}
	encode := func(lo, hi int, _, last bool) ([]byte, error) {
		env := wal.Envelope{Type: wal.TypeSourceChunk, SourceChunk: &wal.SourceChunkRec{
			Name:   name,
			Tuples: wal.EncodeTuples(tuples[lo:hi]),
			Final:  last,
		}}
		return env.Encode()
	}
	return writeChunked(items, p.chunkBytes, encode, p.appendPayload)
}

//entitylint:walappend
func (p *walLogger) appendLink(spec PairSpec) error {
	rec := linkRecFromSpec(spec)
	return p.append(wal.Envelope{Type: wal.TypeLink, Link: &rec})
}

//entitylint:walappend
func (p *walLogger) appendInsert(source string, t relation.Tuple) error {
	return p.append(wal.Envelope{Type: wal.TypeInsert, Insert: &wal.InsertRec{
		Source: source,
		Tuple:  wal.EncodeTuple(t),
	}})
}

func (p *walLogger) fail(err error) {
	p.errMu.Lock()
	if p.bgErr == nil {
		p.bgErr = err
	}
	p.errMu.Unlock()
	// A persistent background failure (fsync ENOSPC, snapshot EIO)
	// degrades the hub just like an ingest-path append failure.
	if p.hub != nil && isPersistentIO(err) {
		p.hub.degrade(err)
	}
}

func (p *walLogger) failed() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.bgErr
}

// noteCommit is called by Insert at its commit point, with the commit
// locks held. When the snapshot interval elapses it takes the
// O(sources+pairs) cut and the watermark — the only work done under
// the lock — and hands everything slow (log rotation with its fsync,
// per-section capture, encoding, writing, truncation) to a background
// goroutine, so ingest never waits on snapshot I/O. Because rotation
// happens off-lock, the segment boundary may land past the watermark;
// that only means the boundary segment survives until a later snapshot
// covers it — RemoveThrough removes exactly the segments wholly ≤
// watermark.
func (p *walLogger) noteCommit(h *Hub) {
	if p.every <= 0 || p.sinceSnap.Add(1) < int64(p.every) {
		return
	}
	if !p.snapMu.TryLock() {
		return // a snapshot is already in flight; never block ingest
	}
	p.sinceSnap.Store(0)
	cut := h.cutLocked(p.log.LastSeq())
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer p.snapMu.Unlock()
		if _, err := p.log.Rotate(); err != nil {
			p.fail(err)
			return
		}
		if err := p.writeSnapshot(h, cut); err != nil {
			p.fail(err)
		}
	}()
}

// dirSink persists sections as content-addressed files under
// snapsecs/, carrying unchanged sections forward from the previous
// manifest, and commits by atomically renaming the manifest.
type dirSink struct {
	fs  wal.FS
	dir string
	// prevByID indexes the previous manifest's sections by identity
	// (kind + name/left/right), so carry-forward planning is O(1) per
	// section instead of rescanning the manifest.
	prevByID map[string]snapSection
	stats    SnapshotStats
}

// newDirSink indexes the previous manifest (nil for a full write).
func newDirSink(fsys wal.FS, dir string, prev *snapManifest) *dirSink {
	s := &dirSink{fs: fsys, dir: dir}
	if prev != nil {
		s.prevByID = make(map[string]snapSection, len(prev.Sections))
		for _, sec := range prev.Sections {
			s.prevByID[sectionID(sec)] = sec
		}
	}
	return s
}

// sectionID is a section's identity key within one manifest.
func sectionID(s snapSection) string {
	return s.Kind + "\x1f" + s.Name + "\x1f" + s.Left + "\x1f" + s.Right
}

func (s *dirSink) reuse(meta *snapSection) bool {
	prev, ok := s.prevByID[sectionID(*meta)]
	if !ok {
		return false
	}
	// Clusters sections match on identity alone: the writer only
	// attempts their reuse when every other section carried forward,
	// which pins the partition content.
	if meta.Kind != secClusters && !meta.sameContent(prev) {
		return false
	}
	if _, err := s.fs.Stat(secPath(s.dir, prev.Hash)); err != nil {
		return false
	}
	if meta.Kind == secClusters {
		*meta = prev
	} else {
		meta.Chunks, meta.Bytes, meta.Hash = prev.Chunks, prev.Bytes, prev.Hash
	}
	s.stats.SectionsReused++
	return true
}

func (s *dirSink) write(meta *snapSection, body *sectionBody, budget int) error {
	secdir := filepath.Join(s.dir, snapSecDir)
	if err := s.fs.MkdirAll(secdir, 0o755); err != nil {
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	tmp, err := s.fs.CreateTemp(secdir, "sec-*.tmp")
	if err != nil {
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	tmpName := tmp.Name()
	sw := wal.NewSectionWriter(tmp)
	if err := writeSectionChunks(sw, body, budget); err != nil {
		tmp.Close()
		s.fs.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		s.fs.Remove(tmpName)
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		s.fs.Remove(tmpName)
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	meta.Chunks, meta.Bytes, meta.Hash = sw.Chunks(), sw.Bytes(), sw.Sum()
	if err := s.fs.Rename(tmpName, secPath(s.dir, meta.Hash)); err != nil {
		s.fs.Remove(tmpName)
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	s.stats.SectionsWritten++
	s.stats.BytesWritten += sw.Bytes()
	return nil
}

func (s *dirSink) finish(man *snapManifest) error {
	frame, err := encodeManifest(man)
	if err != nil {
		return err
	}
	// The section files (and their directory entry) must be durable
	// before the manifest that references them commits.
	syncDir(s.fs, filepath.Join(s.dir, snapSecDir))
	tmp := filepath.Join(s.dir, snapshotManTmp)
	if err := writeFileSync(s.fs, tmp, frame); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, snapshotManifest)); err != nil {
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	syncDir(s.fs, s.dir)
	s.stats.BytesWritten += int64(len(frame))
	s.stats.Watermark = man.Watermark
	return nil
}

// syncDir best-effort fsyncs a directory so renames within it are
// durable (errors are ignored: some filesystems reject directory
// fsync, and the rename itself is still atomic).
func syncDir(fsys wal.FS, path string) {
	if d, err := fsys.Open(path); err == nil {
		d.Sync()
		d.Close()
	}
}

// writeFileSync writes and fsyncs a file.
func writeFileSync(fsys wal.FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	return nil
}

// writeSnapshot persists a snapshot at the given cut — per-section
// capture under briefly-held locks, incremental against the previous
// manifest — then sweeps stale files and truncates the log segments the
// snapshot covers. Callers hold snapMu.
func (p *walLogger) writeSnapshot(h *Hub, cut *snapshotCut) error {
	start := obs.Now()
	if err := p.writeSnapshotLocked(h, cut); err != nil {
		snapshotFail.Inc()
		return err
	}
	snapshotOK.Inc()
	mSnapshotSeconds.Since(start)
	p.statsMu.Lock()
	st := p.stats
	p.statsMu.Unlock()
	mSnapshotBytes.Add(uint64(st.BytesWritten))
	mSnapSectionsWritten.Add(uint64(st.SectionsWritten))
	mSnapSectionsReused.Add(uint64(st.SectionsReused))
	return nil
}

func (p *walLogger) writeSnapshotLocked(h *Hub, cut *snapshotCut) error {
	sink := newDirSink(p.fs, p.dir, p.prevMan)
	man, err := h.writeSnapshotV2(cut, sink, p.chunkBytes, p.snapSectionHook)
	if err != nil {
		return err
	}
	p.prevMan = man
	p.statsMu.Lock()
	p.stats = sink.stats
	p.stats.Taken = time.Now()
	p.statsMu.Unlock()
	// The manifest is committed: the legacy single-frame snapshot (if
	// any) and sections only older manifests referenced are now stale.
	p.fs.Remove(filepath.Join(p.dir, snapshotFile))
	if err := sweepSections(p.fs, p.dir, man); err != nil {
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	return p.log.RemoveThrough(cut.watermark)
}

// startProbes launches the degraded-mode recovery loop (at most one at
// a time): capped exponential backoff between probes, stop on recovery
// or when the logger shuts down. Called by Hub.degrade.
func (p *walLogger) startProbes(h *Hub) {
	if p.done == nil || !p.probing.CompareAndSwap(false, true) {
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer p.probing.Store(false)
		delay := p.probeBase
		t := time.NewTimer(delay)
		defer t.Stop()
		for {
			select {
			case <-p.done:
				return
			case <-t.C:
			}
			if State(h.health.state.Load()) != StateDegraded {
				return // poisoned or already recovered; nothing to probe for
			}
			h.noteProbe()
			if err := p.probe(); err == nil {
				h.recoverHealth()
				return
			}
			delay *= 2
			if delay > p.probeMax {
				delay = p.probeMax
			}
			t.Reset(delay)
		}
	}()
}

// probe checks whether the disk accepts writes again: a small canary
// file is written, fsynced and removed next to the log, then the log
// itself is healed (retrying the rollback of the append that degraded
// us and fsyncing the segment). Only when both succeed is the episode
// over — a canary that fits in a nearly-full disk must not resurrect a
// log whose own sync still fails.
func (p *walLogger) probe() error {
	canary := filepath.Join(p.dir, "probe.canary")
	f, err := p.fs.OpenFile(canary, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	buf := make([]byte, 8<<10)
	_, err = f.Write(buf)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if rerr := p.fs.Remove(canary); err == nil {
		err = rerr
	}
	if err != nil {
		return err
	}
	return p.log.Heal()
}

func (p *walLogger) close() error {
	p.stopProbes()
	p.wg.Wait()
	err := p.failed()
	if cerr := p.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// stopProbes tells the recovery loop to exit; safe to call repeatedly.
func (p *walLogger) stopProbes() {
	if p.done != nil {
		p.doneOnce.Do(func() { close(p.done) })
	}
}

// quiesce simulates the tail end of a process death for crash-recovery
// tests: it waits out any in-flight background snapshot (a real crash
// kills that goroutine; in-process it must drain before the directory
// is reopened) and releases the directory lock the way the kernel
// releases a dead process's flock. The hub must not be used afterwards.
func (p *walLogger) quiesce() {
	p.stopProbes()
	p.wg.Wait()
	p.log.DropLock()
	// The spill tier is an ephemeral cache the next open wipes anyway;
	// closing it here just releases the dead hub's file handles.
	if p.hub != nil && p.hub.backend != nil {
		p.hub.backend.Close()
	}
}

// Hub durability: the write-ahead log and snapshot machinery behind
// Open. Every committed mutation — AddSource, Link, Insert — is
// appended to a wal.Log before it is applied (hub.go calls the
// append* helpers at its commit points), so the on-disk log is always
// a prefix-exact account of the in-memory state: recovery loads the
// latest snapshot and replays the log tail past the snapshot
// watermark, reproducing clusters, matching tables and canonical
// relations bit-for-bit.
//
// Snapshotting is incremental-friendly: every SnapshotEvery committed
// inserts, the inserting goroutine captures the state and watermark in
// memory (it already holds the commit locks; the capture is a plain
// copy) and hands them to a background goroutine that rotates the log
// onto a fresh segment, encodes the capture, writes it to a temp file,
// fsyncs, renames it over the snapshot atomically, and only then
// deletes the log segments the snapshot covers. Ingest never waits on
// snapshot I/O — not even the rotation fsync — and a crash at any
// point leaves either the old snapshot with a longer log or the new
// snapshot with a shorter one; both recover to the same state.
package hub

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"entityid/internal/relation"
	"entityid/internal/wal"
)

const (
	snapshotFile = "snapshot.ei"
	snapshotTmp  = "snapshot.ei.tmp"
)

// Options configures a durable hub.
type Options struct {
	// SnapshotEvery is the number of committed inserts between
	// background snapshots (and the accompanying log truncation);
	// 0 disables automatic snapshots — the log grows until SnapshotNow.
	SnapshotEvery int
}

// RecoveryInfo reports what Open reconstructed.
type RecoveryInfo struct {
	// FromSnapshot reports whether a snapshot file was loaded.
	FromSnapshot bool
	// Watermark is the snapshot's last covered sequence number.
	Watermark uint64
	// LastSeq is the last good WAL record.
	LastSeq uint64
	// Replayed counts the log records applied after the watermark.
	Replayed int
	// TailDamage is non-empty when a torn or corrupt log tail was
	// detected (CRC/length/sequence check) and recovery stopped at the
	// last good record.
	TailDamage string
}

// Open opens (or creates) a durable hub rooted at dir: it loads the
// snapshot if one exists, replays the write-ahead log tail past the
// snapshot watermark, and attaches the logger so subsequent mutations
// are persisted. The returned hub must be Closed.
func Open(dir string, opts Options) (*Hub, *RecoveryInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("hub: open %s: %w", dir, err)
	}
	// The flock comes first: until it is held, a live writer may own
	// this directory and every file in it — including an in-flight
	// snapshot temp — so nothing may be read or removed yet.
	l, err := wal.Open(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("hub: open %s: %w", dir, err)
	}
	// A leftover temp file is an interrupted snapshot write by a now
	// dead writer (we hold the lock); the real snapshot (if any) is
	// intact, so the temp is garbage.
	os.Remove(filepath.Join(dir, snapshotTmp))

	info := &RecoveryInfo{}
	var h *Hub
	data, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	switch {
	case err == nil:
		h, info.Watermark, err = LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			l.Close()
			return nil, nil, fmt.Errorf("hub: open %s: %w", dir, err)
		}
		info.FromSnapshot = true
	case os.IsNotExist(err):
		h = New()
	default:
		l.Close()
		return nil, nil, fmt.Errorf("hub: open %s: %w", dir, err)
	}

	if d := l.Damage(); d != nil {
		info.TailDamage = d.Error()
	}
	// Cross-check the log against the snapshot before trusting either: a
	// partially restored directory (lost segments, lost snapshot) would
	// otherwise replay around a hole — or log new commits at sequence
	// numbers a later replay skips. Fail closed instead.
	switch {
	case info.FromSnapshot && l.LastSeq() < info.Watermark:
		l.Close()
		return nil, nil, fmt.Errorf("hub: open %s: write-ahead log ends at record %d but the snapshot covers through %d: log records are missing",
			dir, l.LastSeq(), info.Watermark)
	case info.FromSnapshot && l.OldestSeq() > info.Watermark+1:
		l.Close()
		return nil, nil, fmt.Errorf("hub: open %s: write-ahead log starts at record %d but the snapshot covers only through %d: log records are missing",
			dir, l.OldestSeq(), info.Watermark)
	case !info.FromSnapshot && l.LastSeq() > 0 && l.OldestSeq() > 1:
		l.Close()
		return nil, nil, fmt.Errorf("hub: open %s: write-ahead log starts at record %d with no snapshot covering the truncated prefix",
			dir, l.OldestSeq())
	}
	n, err := h.Replay(l, info.Watermark)
	if err != nil {
		l.Close()
		return nil, nil, fmt.Errorf("hub: open %s: %w", dir, err)
	}
	info.Replayed = n
	info.LastSeq = l.LastSeq()
	h.per = &walLogger{log: l, dir: dir, every: opts.SnapshotEvery}
	return h, info, nil
}

// Replay re-applies the log tail after the snapshot watermark: every
// record with a later sequence number is decoded and re-applied through
// the normal mutation paths (records the snapshot already covers are
// skipped). It returns the number of records applied. Replay must run
// before the logger is attached, so replayed mutations are not
// re-logged.
func (h *Hub) Replay(l *wal.Log, after uint64) (int, error) {
	if h.per != nil {
		return 0, fmt.Errorf("hub: replay into a hub that is already logging")
	}
	n := 0
	err := l.Replay(after, func(rec wal.Record) error {
		env, err := wal.DecodeEnvelope(rec.Payload)
		if err != nil {
			return fmt.Errorf("record %d: %w", rec.Seq, err)
		}
		if err := h.applyRecord(env); err != nil {
			return fmt.Errorf("record %d: %w", rec.Seq, err)
		}
		n++
		return nil
	})
	return n, err
}

// applyRecord re-applies one decoded WAL record.
func (h *Hub) applyRecord(env wal.Envelope) error {
	switch env.Type {
	case wal.TypeAddSource:
		sch, err := wal.DecodeSchema(env.AddSource.Schema)
		if err != nil {
			return err
		}
		rel := relation.New(sch)
		for i, tr := range env.AddSource.Tuples {
			t, err := wal.DecodeTuple(tr)
			if err != nil {
				return fmt.Errorf("seed tuple %d: %w", i, err)
			}
			if err := rel.Insert(t); err != nil {
				return fmt.Errorf("seed tuple %d: %w", i, err)
			}
		}
		return h.AddSource(env.AddSource.Name, rel)
	case wal.TypeLink:
		spec, err := specFromLinkRec(*env.Link)
		if err != nil {
			return err
		}
		return h.Link(spec)
	case wal.TypeInsert:
		t, err := wal.DecodeTuple(env.Insert.Tuple)
		if err != nil {
			return err
		}
		_, err = h.Insert(env.Insert.Source, t)
		return err
	default:
		return fmt.Errorf("hub: unknown record type %q", env.Type)
	}
}

// Close quiesces any in-flight background snapshot and closes the
// write-ahead log. It is a no-op on a memory-only hub. It returns the
// first background snapshot error, if any.
func (h *Hub) Close() error {
	if h.per == nil {
		return nil
	}
	return h.per.close()
}

// SnapshotNow forces a synchronous snapshot: capture, write, fsync,
// atomic rename, log truncation. It fails on a memory-only hub.
func (h *Hub) SnapshotNow() error {
	p := h.per
	if p == nil {
		return fmt.Errorf("hub: snapshot of a memory-only hub (use Open)")
	}
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	h.mu.RLock()
	h.clusterMu.Lock()
	snap := h.captureLocked()
	watermark := p.log.LastSeq()
	h.clusterMu.Unlock()
	h.mu.RUnlock()
	if _, err := p.log.Rotate(); err != nil {
		return err
	}
	return p.writeSnapshot(snap, watermark)
}

// walLogger couples a hub to its write-ahead log and drives background
// snapshotting.
type walLogger struct {
	log   *wal.Log
	dir   string
	every int
	// sinceSnap counts committed inserts since the last snapshot
	// trigger.
	sinceSnap atomic.Int64
	// snapMu serialises snapshot production (capture → write →
	// truncate); the trigger uses TryLock so ingest never queues behind
	// a snapshot in flight.
	snapMu sync.Mutex
	// wg tracks the background writer, so close can quiesce it.
	wg sync.WaitGroup
	// errMu/bgErr hold the first background snapshot failure, surfaced
	// by close. Failures do NOT suppress later snapshot attempts: a
	// transient error (disk briefly full) must not leave the log
	// growing unboundedly for the rest of the process lifetime.
	errMu sync.Mutex
	bgErr error
}

func (p *walLogger) append(env wal.Envelope) error {
	payload, err := env.Encode()
	if err != nil {
		return err
	}
	_, err = p.log.Append(payload)
	return err
}

func (p *walLogger) appendAddSource(name string, rel *relation.Relation) error {
	return p.append(wal.Envelope{Type: wal.TypeAddSource, AddSource: &wal.AddSourceRec{
		Name:   name,
		Schema: wal.EncodeSchema(rel.Schema()),
		Tuples: wal.EncodeTuples(rel.Tuples()),
	}})
}

func (p *walLogger) appendLink(spec PairSpec) error {
	rec := linkRecFromSpec(spec)
	return p.append(wal.Envelope{Type: wal.TypeLink, Link: &rec})
}

func (p *walLogger) appendInsert(source string, t relation.Tuple) error {
	return p.append(wal.Envelope{Type: wal.TypeInsert, Insert: &wal.InsertRec{
		Source: source,
		Tuple:  wal.EncodeTuple(t),
	}})
}

func (p *walLogger) fail(err error) {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	if p.bgErr == nil {
		p.bgErr = err
	}
}

func (p *walLogger) failed() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.bgErr
}

// noteCommit is called by Insert at its commit point, with the commit
// locks held. When the snapshot interval elapses it captures the state
// and the watermark in memory — the only work done under the lock —
// and hands everything slow (log rotation with its fsync, encoding,
// writing, truncation) to a background goroutine, so ingest never
// waits on snapshot I/O. Because rotation happens off-lock, the
// segment boundary may land past the watermark; that only means the
// boundary segment survives until a later snapshot covers it —
// RemoveThrough removes exactly the segments wholly ≤ watermark.
func (p *walLogger) noteCommit(h *Hub) {
	if p.every <= 0 || p.sinceSnap.Add(1) < int64(p.every) {
		return
	}
	if !p.snapMu.TryLock() {
		return // a snapshot is already in flight; never block ingest
	}
	p.sinceSnap.Store(0)
	snap := h.captureLocked()
	watermark := p.log.LastSeq()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer p.snapMu.Unlock()
		if _, err := p.log.Rotate(); err != nil {
			p.fail(err)
			return
		}
		if err := p.writeSnapshot(snap, watermark); err != nil {
			p.fail(err)
		}
	}()
}

// writeSnapshot persists a captured snapshot at the given watermark and
// truncates the log segments it covers.
func (p *walLogger) writeSnapshot(snap *hubSnap, watermark uint64) error {
	frame, err := encodeSnapshot(snap, watermark)
	if err != nil {
		return err
	}
	tmp := filepath.Join(p.dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, snapshotFile)); err != nil {
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	return p.log.RemoveThrough(watermark)
}

func (p *walLogger) close() error {
	p.wg.Wait()
	err := p.failed()
	if cerr := p.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// quiesce simulates the tail end of a process death for crash-recovery
// tests: it waits out any in-flight background snapshot (a real crash
// kills that goroutine; in-process it must drain before the directory
// is reopened) and releases the directory lock the way the kernel
// releases a dead process's flock. The hub must not be used afterwards.
func (p *walLogger) quiesce() {
	p.wg.Wait()
	p.log.DropLock()
}

package hub

// Crash-recovery harness for the durable hub: the K-source
// datagen.MultiGenerate workload is streamed into a hub backed by a
// write-ahead log, the hub is "killed" at randomized commit points —
// including mid-batch via an injected torn write, the observable
// behaviour of a process dying inside a WAL append — and recovery must
// reproduce the crashed hub's state bit-for-bit: same clusters, same
// per-pair matching tables, same canonical relations at the same tuple
// positions. Continuing the interrupted workload on the recovered hub
// must then land on exactly the state of an uninterrupted run, and
// inserts the hub rejected before the crash must NOT reappear after
// replay. Run under -race: ingest is concurrent and snapshots are
// written by a background goroutine.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"entityid/internal/datagen"
	"entityid/internal/match"
	"entityid/internal/relation"
	"entityid/internal/wal"
)

// hubState is everything recovery must reproduce exactly.
type hubState struct {
	clusters []Cluster
	pairs    map[string][]match.Pair
	rels     map[string][]relation.Tuple
}

// stateOf captures a quiescent hub's full observable state.
func stateOf(h *Hub) hubState {
	st := hubState{
		clusters: h.Clusters(),
		pairs:    map[string][]match.Pair{},
		rels:     map[string][]relation.Tuple{},
	}
	for _, p := range h.pairs {
		key := h.sources[p.left].name + "|" + h.sources[p.right].name
		est, err := h.exportPair(p)
		if err != nil {
			panic(err)
		}
		st.pairs[key] = est.Pairs
	}
	for _, s := range h.sources {
		tuples := make([]relation.Tuple, s.rel.Len())
		for i := 0; i < s.rel.Len(); i++ {
			tuples[i] = s.rel.Tuple(i).Clone()
		}
		st.rels[s.name] = tuples
	}
	return st
}

// mustEqualState asserts bit-for-bit equality: clusters (IDs, members,
// positions, tuples), sorted matching tables, and canonical relations
// position by position — plus the transitive uniqueness invariant.
func mustEqualState(t *testing.T, label string, got, want hubState) {
	t.Helper()
	if !reflect.DeepEqual(got.clusters, want.clusters) {
		t.Fatalf("%s: clusters differ:\ngot  %d clusters %v\nwant %d clusters %v",
			label, len(got.clusters), got.clusters, len(want.clusters), want.clusters)
	}
	if !reflect.DeepEqual(got.pairs, want.pairs) {
		t.Fatalf("%s: matching tables differ:\ngot  %v\nwant %v", label, got.pairs, want.pairs)
	}
	if !reflect.DeepEqual(got.rels, want.rels) {
		t.Fatalf("%s: canonical relations differ", label)
	}
	for _, c := range got.clusters {
		seen := map[string]bool{}
		for _, m := range c.Members {
			if seen[m.Source] {
				t.Fatalf("%s: cluster %s holds two tuples of source %s", label, c.ID, m.Source)
			}
			seen[m.Source] = true
		}
	}
}

// openDurableMulti opens a durable hub in dir and, when the directory
// is fresh, registers the workload's sources (empty) and links every
// pair — the durable analogue of NewFromMulti.
func openDurableMulti(t *testing.T, dir string, w *datagen.MultiWorkload, every int) (*Hub, *RecoveryInfo) {
	t.Helper()
	h, info, err := Open(dir, Options{SnapshotEvery: every})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	if !info.FromSnapshot && info.LastSeq == 0 {
		for k, name := range w.Names {
			if err := h.AddSource(name, relation.New(w.Relations[k].Schema())); err != nil {
				t.Fatalf("add source %s: %v", name, err)
			}
		}
		for i := 0; i < len(w.Names); i++ {
			for j := i + 1; j < len(w.Names); j++ {
				if err := h.Link(SpecFromMultiPair(w.Pair(i, j))); err != nil {
					t.Fatalf("link %d-%d: %v", i, j, err)
				}
			}
		}
	}
	return h, info
}

// shuffled returns the workload items in a deterministic shuffle.
func shuffled(w *datagen.MultiWorkload, seed int64) []Insert {
	items := MultiInserts(w)
	rand.New(rand.NewSource(seed)).Shuffle(len(items), func(a, b int) {
		items[a], items[b] = items[b], items[a]
	})
	return items
}

// TestCrashRecoveryRandomKillPoints kills a sequentially-fed durable
// hub at randomized commit points (snapshots and log truncation firing
// along the way), recovers, and checks (a) the recovered state is
// bit-for-bit the crashed state, and (b) finishing the workload on the
// recovered hub is bit-for-bit an uninterrupted run.
func TestCrashRecoveryRandomKillPoints(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 36, PresenceFrac: 0.65, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 7,
	})
	items := shuffled(w, 77)

	ref, err := NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if _, err := ref.Insert(it.Source, it.Tuple); err != nil {
			t.Fatalf("reference insert %d: %v", i, err)
		}
	}
	refState := stateOf(ref)

	rng := rand.New(rand.NewSource(42))
	kills := []int{0, 1, len(items) / 2, len(items) - 1, len(items)}
	for n := 0; n < 3; n++ {
		kills = append(kills, rng.Intn(len(items)+1))
	}
	for _, k := range kills {
		t.Run(fmt.Sprintf("kill=%d", k), func(t *testing.T) {
			dir := t.TempDir()
			h, _ := openDurableMulti(t, dir, w, 7)
			for i := 0; i < k; i++ {
				if _, err := h.Insert(items[i].Source, items[i].Tuple); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			crashed := stateOf(h)
			// Crash: abandon the hub without Close. Only the background
			// snapshot writer is awaited — it is another process's worth
			// of state otherwise racing the re-open below.
			h.per.quiesce()

			h2, info, err := Open(dir, Options{SnapshotEvery: 7})
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer h2.Close()
			if info.TailDamage != "" {
				t.Fatalf("clean kill reported tail damage: %s", info.TailDamage)
			}
			mustEqualState(t, "recovered vs crashed", stateOf(h2), crashed)

			for i := k; i < len(items); i++ {
				if _, err := h2.Insert(items[i].Source, items[i].Tuple); err != nil {
					t.Fatalf("post-recovery insert %d: %v", i, err)
				}
			}
			mustEqualState(t, "finished vs uninterrupted", stateOf(h2), refState)
		})
	}
}

// TestCrashRecoveryMidBatchTornWrite kills the hub in the middle of a
// concurrent IngestBatch by injecting a torn WAL write: the append
// writes half a frame and fails, every later append fails, and the
// affected inserts are rejected. Recovery must drop the torn tail
// (CRC), reproduce the crashed hub exactly — in particular, inserts
// that were rejected (torn-write casualties and duplicate-key items)
// must NOT reappear after replay — and the interrupted workload must
// finish to the planted ground truth.
func TestCrashRecoveryMidBatchTornWrite(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 4, Entities: 40, PresenceFrac: 0.6, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 11,
	})
	base := shuffled(w, 5)
	rng := rand.New(rand.NewSource(55))

	// Plant duplicate-key items: copies of earlier tuples that every
	// schedule must reject (the source key (name, loc) already exists by
	// the time the copy could commit — or the copy commits and the
	// original is the rejected one; either way the tuple lands once).
	items := append([]Insert(nil), base...)
	dups := map[string]bool{}
	for n := 0; n < 5; n++ {
		src := base[rng.Intn(len(base)/2)]
		dup := Insert{Source: src.Source, Tuple: src.Tuple.Clone()}
		dups[src.Source+"|"+src.Tuple.Key()] = true
		at := len(items) / 2
		items = append(items[:at], append([]Insert{dup}, items[at:]...)...)
	}

	for trial := 0; trial < 3; trial++ {
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			h, _ := openDurableMulti(t, dir, w, 0) // no snapshots: pure WAL replay
			// Kill mid-batch: after a random number of further appends,
			// the WAL tears.
			h.per.log.InjectTornAppends(len(items)/4 + rng.Intn(len(items)/2))
			results := h.IngestBatch(items)

			var torn, committed, rejected []int
			for i, res := range results {
				switch {
				case res.Err == nil:
					committed = append(committed, i)
				case errors.Is(res.Err, wal.ErrTornWrite):
					torn = append(torn, i)
				default:
					rejected = append(rejected, i)
				}
			}
			if len(torn) == 0 {
				t.Fatal("torn write never fired")
			}
			if len(committed)+len(torn)+len(rejected) != len(items) {
				t.Fatalf("results do not partition the batch")
			}
			crashed := stateOf(h)
			h.per.quiesce()

			h2, info, err := Open(dir, Options{SnapshotEvery: 0})
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer h2.Close()
			if info.TailDamage == "" {
				t.Fatal("torn write left no reported tail damage")
			}
			if info.Replayed != len(committed)+countSetup(w) {
				t.Fatalf("replayed %d records, want %d commits + %d setup",
					info.Replayed, len(committed), countSetup(w))
			}
			mustEqualState(t, "recovered vs crashed", stateOf(h2), crashed)

			// Rejected inserts must not have reappeared: a duplicate of a
			// tuple the recovered hub holds must still be rejected, with
			// nothing committed.
			present := map[string]bool{}
			for name, tuples := range stateOf(h2).rels {
				for _, tup := range tuples {
					present[name+"|"+tup.Key()] = true
				}
			}
			for key := range dups {
				if !present[key] {
					continue // its original was itself a torn-write casualty
				}
				name, _, _ := strings.Cut(key, "|")
				before, _ := h2.SourceLen(name)
				if _, err := h2.Insert(name, findTuple(t, items, key)); err == nil {
					t.Fatalf("duplicate %s accepted after recovery", key)
				}
				if after, _ := h2.SourceLen(name); after != before {
					t.Fatalf("rejected duplicate %s mutated source %s", key, name)
				}
			}

			// Finish the interrupted workload; only torn-write casualties
			// are outstanding. A casualty whose tuple is already present
			// (a duplicate-key item) must keep failing.
			for _, i := range torn {
				key := items[i].Source + "|" + items[i].Tuple.Key()
				_, err := h2.Insert(items[i].Source, items[i].Tuple)
				if present[key] {
					if err == nil {
						t.Fatalf("duplicate item %d accepted after recovery", i)
					}
					continue
				}
				if err != nil {
					t.Fatalf("post-recovery insert %d: %v", i, err)
				}
				present[key] = true
			}
			if got, want := partitionKeys(h2.Clusters()), truthKeys(w); !reflect.DeepEqual(got, want) {
				t.Fatalf("final partition differs from planted truth: %d vs %d clusters", len(got), len(want))
			}
		})
	}
}

// countSetup is the number of setup WAL records of a workload: one
// add_source per source, one link per pair.
func countSetup(w *datagen.MultiWorkload) int {
	k := len(w.Names)
	return k + k*(k-1)/2
}

// findTuple locates an item by its source|key identity.
func findTuple(t *testing.T, items []Insert, key string) relation.Tuple {
	t.Helper()
	for _, it := range items {
		if it.Source+"|"+it.Tuple.Key() == key {
			return it.Tuple.Clone()
		}
	}
	t.Fatalf("no item %s", key)
	return nil
}

// partitionKeys serialises a cluster set canonically by member content.
func partitionKeys(cs []Cluster) []string {
	out := make([]string, 0, len(cs))
	for _, c := range cs {
		keys := make([]string, 0, len(c.Members))
		for _, m := range c.Members {
			keys = append(keys, m.Source+"|"+m.Tuple.Key())
		}
		sort.Strings(keys)
		out = append(out, strings.Join(keys, " & "))
	}
	sort.Strings(out)
	return out
}

// truthKeys serialises the planted ground truth the same way.
func truthKeys(w *datagen.MultiWorkload) []string {
	out := []string{}
	for _, members := range w.TruthClusters() {
		keys := make([]string, 0, len(members))
		for _, m := range members {
			keys = append(keys, w.Names[m[0]]+"|"+w.Relations[m[0]].Tuple(m[1]).Key())
		}
		sort.Strings(keys)
		out = append(out, strings.Join(keys, " & "))
	}
	sort.Strings(out)
	return out
}

// TestRecoveryCorruptWALTail damages the log at random byte offsets —
// truncation and bit flips — and checks recovery stops at the last
// good record: the recovered hub equals an uninterrupted run over
// exactly the inserts whose records survived.
func TestRecoveryCorruptWALTail(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 30, PresenceFrac: 0.6, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 19,
	})
	items := shuffled(w, 9)

	// One full durable run, sequential so WAL order = item order.
	master := t.TempDir()
	h, _ := openDurableMulti(t, master, w, 0)
	seg := filepath.Join(master, "wal-"+fmt.Sprintf("%020d", 1)+".log")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	setupSize := fi.Size()
	for i, it := range items {
		if _, err := h.Insert(it.Source, it.Tuple); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 4; trial++ {
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			data := append([]byte(nil), clean...)
			pos := setupSize + int64(rng.Intn(int(int64(len(data))-setupSize)))
			if trial%2 == 0 {
				data = data[:pos] // truncate
			} else {
				data[pos] ^= 0x40 // bit flip
			}
			if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg)), data, 0o644); err != nil {
				t.Fatal(err)
			}

			h2, info, err := Open(dir, Options{SnapshotEvery: 0})
			if err != nil {
				t.Fatalf("recover from damaged log: %v", err)
			}
			defer h2.Close()
			// The surviving inserts are a prefix of the item sequence.
			n := h2.Stats().Tuples
			if n == len(items) && info.TailDamage == "" && trial%2 == 0 && pos < int64(len(clean)) {
				t.Fatalf("truncation at %d lost nothing", pos)
			}
			ref, err := NewFromMulti(w)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if _, err := ref.Insert(items[i].Source, items[i].Tuple); err != nil {
					t.Fatalf("reference insert %d: %v", i, err)
				}
			}
			mustEqualState(t, "recovered vs clean prefix run", stateOf(h2), stateOf(ref))
		})
	}
}

// TestBackgroundSnapshotTruncatesLog checks the snapshot pipeline:
// after enough commits a background snapshot lands, the covered log
// segments are deleted, and a re-open starts from the snapshot and
// replays only the tail. SnapshotNow then truncates the log to empty.
func TestBackgroundSnapshotTruncatesLog(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 30, PresenceFrac: 0.7, HomonymRate: 0.1,
		MissingPhone: 0.1, DirtyPhone: 0.1, Seed: 3,
	})
	items := shuffled(w, 31)
	dir := t.TempDir()
	h, _ := openDurableMulti(t, dir, w, 10)
	for i, it := range items {
		if _, err := h.Insert(it.Source, it.Tuple); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	h.per.quiesce()
	want := stateOf(h)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotManifest)); err != nil {
		t.Fatalf("no snapshot manifest written: %v", err)
	}
	if secs, err := filepath.Glob(filepath.Join(dir, snapSecDir, "*"+snapSecSuffix)); err != nil || len(secs) == 0 {
		t.Fatalf("no snapshot sections written: %v %v", secs, err)
	}
	// Background rotation is decoupled from the watermark, so the
	// boundary segment may survive one snapshot round; hard truncation
	// is asserted below after the synchronous SnapshotNow.

	h2, info, err := Open(dir, Options{SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !info.FromSnapshot {
		t.Fatal("re-open ignored the snapshot")
	}
	if info.Replayed >= len(items)+countSetup(w) {
		t.Fatalf("replayed %d records despite a snapshot", info.Replayed)
	}
	mustEqualState(t, "recovered from snapshot+tail", stateOf(h2), want)

	if err := h2.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// SnapshotNow is quiescent here, so its watermark equals the
	// rotation boundary: every prior segment must be truncated away.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments after SnapshotNow: %v %v (want exactly the fresh active segment)", segs, err)
	}
	if first := filepath.Base(segs[0]); first == "wal-"+fmt.Sprintf("%020d", 1)+".log" {
		t.Fatal("SnapshotNow did not truncate the log")
	}
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}
	h3, info3, err := Open(dir, Options{SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer h3.Close()
	if !info3.FromSnapshot || info3.Replayed != 0 {
		t.Fatalf("after SnapshotNow: FromSnapshot=%v Replayed=%d", info3.FromSnapshot, info3.Replayed)
	}
	mustEqualState(t, "recovered from forced snapshot", stateOf(h3), want)
}

// TestSnapshotRoundTripAndTamperDetection exercises the public
// SaveSnapshot/LoadSnapshot pair directly, then corrupts the snapshot
// three ways — bit rot (CRC), a doctored matching table
// (federate.Restore verification) and a doctored cluster partition
// (refold verification) — all of which must fail the load.
func TestSnapshotRoundTripAndTamperDetection(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 24, PresenceFrac: 0.7, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 13,
	})
	h, err := NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range h.IngestBatch(MultiInserts(w)) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	var buf strings.Builder
	if _, err := h.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	frame := []byte(buf.String())

	h2, wm, err := LoadSnapshot(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if wm != 0 {
		t.Fatalf("memory-only snapshot watermark %d", wm)
	}
	mustEqualState(t, "snapshot round trip", stateOf(h2), stateOf(h))

	rotted := append([]byte(nil), frame...)
	rotted[len(rotted)/2] ^= 0x04
	if _, _, err := LoadSnapshot(strings.NewReader(string(rotted))); err == nil {
		t.Fatal("bit-rotted snapshot loaded")
	}

	// Doctor the matching table: drop one pair and re-frame. The CRC is
	// now valid, so only the federate.Restore verification can catch it.
	doctor := func(mutate func(*hubSnap)) []byte {
		h.mu.RLock()
		h.commitMu.Lock()
		snap, _ := h.captureLocked()
		h.commitMu.Unlock()
		h.mu.RUnlock()
		mutate(snap)
		out, err := encodeSnapshot(snap, 0)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	badMT := doctor(func(s *hubSnap) {
		for i := range s.Pairs {
			if len(s.Pairs[i].MT) > 0 {
				s.Pairs[i].MT = s.Pairs[i].MT[:len(s.Pairs[i].MT)-1]
				return
			}
		}
		t.Fatal("no pairs to doctor")
	})
	if _, _, err := LoadSnapshot(strings.NewReader(string(badMT))); err == nil {
		t.Fatal("doctored matching table loaded")
	}
	badClusters := doctor(func(s *hubSnap) {
		if len(s.Clusters) == 0 {
			t.Fatal("no clusters to doctor")
		}
		s.Clusters = s.Clusters[:len(s.Clusters)-1]
	})
	if _, _, err := LoadSnapshot(strings.NewReader(string(badClusters))); err == nil {
		t.Fatal("doctored cluster store loaded")
	}
}

// TestRecoveryDegenerateWorkloads sweeps the workload corners datagen
// must generate validly — a single linkless source and empty sources —
// through the full durable cycle: crash, recover, compare.
func TestRecoveryDegenerateWorkloads(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  datagen.MultiConfig
	}{
		{"single-source", datagen.MultiConfig{Sources: 1, Entities: 8, PresenceFrac: 1, Seed: 2}},
		{"empty-universe", datagen.MultiConfig{Sources: 3, Entities: 0, PresenceFrac: 0.5, Seed: 2}},
		{"absent-everywhere", datagen.MultiConfig{Sources: 2, Entities: 6, PresenceFrac: 0, Seed: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := datagen.MustMultiGenerate(tc.cfg)
			dir := t.TempDir()
			h, _ := openDurableMulti(t, dir, w, 3)
			for i, it := range MultiInserts(w) {
				if _, err := h.Insert(it.Source, it.Tuple); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			crashed := stateOf(h)
			h.per.quiesce()
			h2, _, err := Open(dir, Options{SnapshotEvery: 3})
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer h2.Close()
			mustEqualState(t, "recovered vs crashed", stateOf(h2), crashed)
			if got, want := partitionKeys(h2.Clusters()), truthKeys(w); !reflect.DeepEqual(got, want) {
				t.Fatalf("partition differs from truth: %v vs %v", got, want)
			}
		})
	}
}

// TestRecoveryFailsClosedOnPartialRestore pins the snapshot↔WAL
// cross-check: a data directory missing pieces (lost log segments,
// lost snapshot) must refuse to open rather than silently replay
// around the hole or log new commits at already-covered sequence
// numbers.
func TestRecoveryFailsClosedOnPartialRestore(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 20, PresenceFrac: 0.7, HomonymRate: 0.1,
		MissingPhone: 0.1, DirtyPhone: 0.1, Seed: 29,
	})
	items := shuffled(w, 3)
	dir := t.TempDir()
	h, _ := openDurableMulti(t, dir, w, 10)
	for i, it := range items {
		if _, err := h.Insert(it.Source, it.Tuple); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := h.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}

	// copySnapshot copies the manifest and every section file.
	copySnapshot := func(t *testing.T, to string) {
		t.Helper()
		copyFile(t, filepath.Join(dir, snapshotManifest), filepath.Join(to, snapshotManifest))
		secs, err := filepath.Glob(filepath.Join(dir, snapSecDir, "*"+snapSecSuffix))
		if err != nil || len(secs) == 0 {
			t.Fatalf("sections: %v %v", secs, err)
		}
		if err := os.MkdirAll(filepath.Join(to, snapSecDir), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, s := range secs {
			copyFile(t, s, filepath.Join(to, snapSecDir, filepath.Base(s)))
		}
	}

	// Case 1: all log segments lost, snapshot kept → LastSeq < watermark.
	case1 := t.TempDir()
	copySnapshot(t, case1)
	if _, _, err := Open(case1, Options{}); err == nil {
		t.Fatal("opened a directory whose log is behind its snapshot")
	}

	// Case 2: log kept, snapshot lost → truncated prefix with no cover.
	case2 := t.TempDir()
	for _, s := range segs {
		copyFile(t, s, filepath.Join(case2, filepath.Base(s)))
	}
	if _, _, err := Open(case2, Options{}); err == nil {
		t.Fatal("opened a truncated log with no snapshot")
	}

	// Case 2b: manifest kept but a section file lost → fails closed.
	case2b := t.TempDir()
	copySnapshot(t, case2b)
	for _, s := range segs {
		copyFile(t, s, filepath.Join(case2b, filepath.Base(s)))
	}
	secs2b, _ := filepath.Glob(filepath.Join(case2b, snapSecDir, "*"+snapSecSuffix))
	if err := os.Remove(secs2b[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(case2b, Options{}); err == nil {
		t.Fatal("opened a snapshot with a missing section file")
	}

	// Control: both pieces together recover fine.
	case3 := t.TempDir()
	copySnapshot(t, case3)
	for _, s := range segs {
		copyFile(t, s, filepath.Join(case3, filepath.Base(s)))
	}
	h3, info, err := Open(case3, Options{})
	if err != nil {
		t.Fatalf("full restore: %v", err)
	}
	defer h3.Close()
	if !info.FromSnapshot {
		t.Fatal("full restore ignored the snapshot")
	}
	if got := h3.Stats().Tuples; got != len(items) {
		t.Fatalf("full restore has %d tuples, want %d", got, len(items))
	}
}

// copyFile copies one file for restore scenarios.
func copyFile(t *testing.T, from, to string) {
	t.Helper()
	data, err := os.ReadFile(from)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(to, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidSnapshotBetweenSections kills the snapshot writer between
// section writes (the new kill points the chunked format introduces):
// the manifest was not renamed, so recovery must come up from the
// previous snapshot (or pure log) with the crashed hub's exact state,
// the orphaned section files must be swept, and the interrupted
// workload must finish to the uninterrupted result.
func TestCrashMidSnapshotBetweenSections(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 36, PresenceFrac: 0.65, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 67,
	})
	items := shuffled(w, 19)

	ref, err := NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if _, err := ref.Insert(it.Source, it.Tuple); err != nil {
			t.Fatalf("reference insert %d: %v", i, err)
		}
	}
	refState := stateOf(ref)

	errBoom := errors.New("injected crash between section writes")
	for _, killAfter := range []int{0, 1, 2, 4} {
		t.Run(fmt.Sprintf("sections=%d", killAfter), func(t *testing.T) {
			dir := t.TempDir()
			h, _ := openDurableMulti(t, dir, w, 0)
			for i, it := range items[:len(items)/2] {
				if _, err := h.Insert(it.Source, it.Tuple); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			// First snapshot completes; the second dies mid-write.
			if err := h.SnapshotNow(); err != nil {
				t.Fatal(err)
			}
			for i, it := range items[len(items)/2:] {
				if _, err := h.Insert(it.Source, it.Tuple); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			h.per.snapSectionHook = func(sec int) error {
				if sec >= killAfter {
					return errBoom
				}
				return nil
			}
			if err := h.SnapshotNow(); !errors.Is(err, errBoom) {
				t.Fatalf("mid-snapshot kill did not fire: %v", err)
			}
			crashed := stateOf(h)
			h.per.quiesce()

			h2, info, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer h2.Close()
			if !info.FromSnapshot {
				t.Fatal("recovery ignored the committed first snapshot")
			}
			mustEqualState(t, "recovered vs crashed", stateOf(h2), crashed)
			// Orphans of the aborted attempt are swept: every surviving
			// section file is referenced by the committed manifest.
			man, err := readManifest(dir)
			if err != nil {
				t.Fatal(err)
			}
			referenced := map[string]bool{}
			for _, s := range man.Sections {
				referenced[s.Hash+snapSecSuffix] = true
			}
			secs, _ := filepath.Glob(filepath.Join(dir, snapSecDir, "*"))
			for _, s := range secs {
				if !referenced[filepath.Base(s)] {
					t.Fatalf("orphan section file survived recovery: %s", s)
				}
			}
			// A fresh snapshot on the recovered hub works and truncates.
			if err := h2.SnapshotNow(); err != nil {
				t.Fatal(err)
			}
			mustEqualState(t, "finished vs uninterrupted", stateOf(h2), refState)
		})
	}
}

// TestPowerLossAtSyncBoundary pins the opt-in group-commit policy:
// with SyncEvery=N, a power-loss-style crash (everything past the last
// fsync vanishes) leaves exactly the synced prefix, and recovery
// reproduces the reference run over that prefix. The truncation is
// simulated by cutting the segment file at the fsync boundary the log
// reported.
func TestPowerLossAtSyncBoundary(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 30, PresenceFrac: 0.7, HomonymRate: 0.1,
		MissingPhone: 0.1, DirtyPhone: 0.1, Seed: 71,
	})
	items := shuffled(w, 23)
	const every = 7

	dir := t.TempDir()
	h, _ := openDurableMulti(t, dir, w, 0)
	h.per.syncEvery = every
	for i, it := range items {
		if _, err := h.Insert(it.Source, it.Tuple); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	syncedSeq, syncedOff := h.per.log.Synced()
	lastSeq := h.per.log.LastSeq()
	if syncedSeq == lastSeq {
		t.Fatalf("workload ended exactly on a sync boundary; adjust sizes (seq %d)", lastSeq)
	}
	if (syncedSeq-uint64(countSetup(w)))%every != 0 {
		t.Fatalf("sync boundary %d is not a multiple of %d past setup", syncedSeq, every)
	}
	h.per.quiesce()

	// Power loss: the unsynced tail never reached the platter.
	seg := filepath.Join(dir, "wal-"+fmt.Sprintf("%020d", 1)+".log")
	if err := os.Truncate(seg, syncedOff); err != nil {
		t.Fatal(err)
	}

	h2, info, err := Open(dir, Options{SyncEvery: every})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer h2.Close()
	if info.LastSeq != syncedSeq {
		t.Fatalf("recovered through record %d, want the synced boundary %d", info.LastSeq, syncedSeq)
	}
	survived := int(syncedSeq) - countSetup(w)
	ref, err := NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < survived; i++ {
		if _, err := ref.Insert(items[i].Source, items[i].Tuple); err != nil {
			t.Fatalf("reference insert %d: %v", i, err)
		}
	}
	mustEqualState(t, "recovered vs synced prefix", stateOf(h2), stateOf(ref))

	// IngestBatch flushes the whole batch with one final sync: after a
	// batch, nothing is pending.
	rest := make([]Insert, 0, len(items)-survived)
	for _, it := range items[survived:] {
		rest = append(rest, Insert{Source: it.Source, Tuple: it.Tuple.Clone()})
	}
	for _, res := range h2.IngestBatch(rest) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if s, _ := h2.per.log.Synced(); s != h2.per.log.LastSeq() {
		t.Fatalf("IngestBatch left unsynced records: synced %d, last %d", s, h2.per.log.LastSeq())
	}
	mustEqualState(t, "finished vs uninterrupted", stateOf(h2), refState71(t, w, items))
}

// refState71 computes the uninterrupted reference state for the
// power-loss workload.
func refState71(t *testing.T, w *datagen.MultiWorkload, items []Insert) hubState {
	t.Helper()
	ref, err := NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if _, err := ref.Insert(it.Source, it.Tuple); err != nil {
			t.Fatalf("reference insert %d: %v", i, err)
		}
	}
	return stateOf(ref)
}

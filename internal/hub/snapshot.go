// Hub snapshots, format 2: a chunked, incremental, streaming encoding
// of the federation state. Instead of one CRC frame holding the whole
// hub (format 1, snapshot_v1.go — still loaded for compatibility), a
// snapshot is a *manifest* record plus one *section* per source, per
// pair and for the cluster partition. Each section is a run of CRC
// frames whose tuple/pair payloads are split across continuation
// chunks, so no frame approaches the WAL's frame cap no matter how
// large the hub grows; the manifest carries each section's SHA-256
// content address, chunk count and item count.
//
// Three properties fall out of the sectioned shape:
//
//   - Capture is per-section under briefly-held locks. A consistent cut
//     is just the per-source tuple counts, per-pair matching-table
//     lengths and the WAL watermark, taken in O(sources+pairs) under
//     the commit locks; the relations and matching tables are
//     append-only under those locks, so each section's content can be
//     copied later, one section at a time, holding the cluster lock
//     only long enough to copy that section's slice headers. Commits
//     never stall behind an O(hub) copy.
//
//   - Snapshots are incremental. Sections are content-addressed, so a
//     writer that remembers the previous manifest carries unchanged
//     sections forward by reference (same item count ⇒ same content,
//     by append-onlyness within one directory's lineage) and writes
//     only what changed — steady-state snapshot cost is proportional
//     to change, not to hub size.
//
//   - Loading streams and parallelises. The decoder hands each
//     section's chunks to its own goroutine as they arrive (or reads
//     section files concurrently), so independent sections are decoded
//     and their relations rebuilt in parallel, and the pairwise
//     federations are re-verified concurrently before the sequential
//     cluster fold.
//
// Loading fails closed exactly as format 1 did: frame CRCs, per-section
// content hashes and chunk/item counts are verified against the
// manifest; every schema, ILFD and rule is re-validated by its domain
// constructor; every pairwise federation is rebuilt through
// federate.Restore (which verifies the rebuilt matching table equals
// the saved one); and the cluster partition refolded from the pairwise
// tables must equal the saved partition.
package hub

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"runtime"
	"sort"
	"sync"

	"entityid/internal/derive"
	"entityid/internal/federate"
	"entityid/internal/match"
	"entityid/internal/relation"
	"entityid/internal/store"
	"entityid/internal/wal"
)

// matchPair converts the snapshot's compact pair form.
func matchPair(p [2]int) match.Pair { return match.Pair{RIndex: p[0], SIndex: p[1]} }

// The section kinds (and the v2 marker of manifest records).
const (
	secSource   = "source"
	secPair     = "pair"
	secClusters = "clusters"
	secManifest = "manifest"

	snapFormat = 2
)

// snapManifest is the manifest record: the snapshot's watermark and the
// ordered section directory. Its frame sequence number is watermark+1,
// like the format-1 frame, so the zero watermark still frames validly.
type snapManifest struct {
	V2        string        `json:"v2"` // always "manifest"
	Format    int           `json:"format"`
	Watermark uint64        `json:"watermark"`
	Sections  []snapSection `json:"sections"`
}

// snapSection is one manifest entry: the section's identity, logical
// size and content address.
type snapSection struct {
	Kind string `json:"kind"`
	// Name identifies a source section; Left/Right identify a pair
	// section.
	Name  string `json:"name,omitempty"`
	Left  string `json:"left,omitempty"`
	Right string `json:"right,omitempty"`
	// Items counts the section's logical entries (tuples, matching
	// pairs, clusters). RLen/SLen are a pair section's side lengths at
	// the cut.
	Items int `json:"items"`
	RLen  int `json:"rlen,omitempty"`
	SLen  int `json:"slen,omitempty"`
	// Chunks, Bytes and Hash describe the encoded frames: chunk count,
	// framed byte count, and hex SHA-256 over the frame bytes.
	Chunks int    `json:"chunks"`
	Bytes  int64  `json:"bytes"`
	Hash   string `json:"hash"`
}

// sameContent reports whether two section entries describe identical
// logical content for carry-forward purposes: same identity and item
// counts. Relations and matching tables are append-only, so within one
// data directory's lineage equal counts imply equal content.
func (s snapSection) sameContent(o snapSection) bool {
	return s.Kind == o.Kind && s.Name == o.Name && s.Left == o.Left && s.Right == o.Right &&
		s.Items == o.Items && s.RLen == o.RLen && s.SLen == o.SLen
}

// snapChunk is one section frame's payload. The first chunk of a
// section carries its header (name+schema, or link+side lengths); every
// chunk carries a slice of the section's items; the final chunk is
// marked Last.
type snapChunk struct {
	V2    string `json:"v2"` // section kind
	Sec   int    `json:"sec"`
	Chunk int    `json:"chunk"` // 1-based; equals the frame sequence number
	Last  bool   `json:"last,omitempty"`

	// Source sections.
	Name   string           `json:"name,omitempty"`
	Schema *wal.SchemaRec   `json:"schema,omitempty"`
	Tuples [][]wal.ValueRec `json:"tuples,omitempty"`

	// Pair sections.
	Link *wal.LinkRec `json:"link,omitempty"`
	RLen int          `json:"rlen,omitempty"`
	SLen int          `json:"slen,omitempty"`
	MT   [][2]int     `json:"mt,omitempty"`

	// Clusters section.
	Clusters [][][2]int `json:"clusters,omitempty"`
}

// ---------------------------------------------------------------------
// Consistent cut + per-section capture
// ---------------------------------------------------------------------

// cutSource is one source at the cut: the state pointer (stable — the
// topology only grows) and its tuple count.
type cutSource struct {
	s *sourceState
	n int
}

// cutPair is one pair at the cut: matching-table length and side
// lengths.
type cutPair struct {
	p          *pairState
	n          int
	rlen, slen int
}

// snapshotCut is a consistent cut of the hub: O(sources+pairs) counts
// plus the covered WAL watermark. Because every structure it points at
// is append-only under the commit locks, the cut pins the exact state
// at the watermark without copying any content.
type snapshotCut struct {
	watermark uint64
	sources   []cutSource
	pairs     []cutPair
}

// cutLocked builds a cut. Callers hold h.mu (at least shared) and
// h.commitMu — the commit locks — so the counts are mutually
// consistent and consistent with the watermark.
func (h *Hub) cutLocked(watermark uint64) *snapshotCut {
	cut := &snapshotCut{watermark: watermark}
	for _, s := range h.sources {
		cut.sources = append(cut.sources, cutSource{s: s, n: s.rel.Len()})
	}
	for _, p := range h.pairs {
		// p.mtLen is written under the commit lock (held here), so this
		// read is consistent without paging a cold pair in.
		cut.pairs = append(cut.pairs, cutPair{
			p: p, n: p.mtLen, rlen: h.sources[p.left].rel.Len(), slen: h.sources[p.right].rel.Len(),
		})
	}
	return cut
}

// copySourceTuples copies one source section's tuple headers from the
// published view — the view at the cut already covers cs.n and its
// prefix is immutable, so the copy takes no lock at all and commits
// never stall behind it.
func (h *Hub) copySourceTuples(cs cutSource) []relation.Tuple {
	v := cs.s.view.Load()
	out := make([]relation.Tuple, cs.n)
	copy(out, v.tuples[:cs.n])
	return out
}

// copyPairMT copies one pair section's matching-table prefix and sorts
// it canonically off-lock. A hot pair's prefix is read under a
// briefly-held commit lock; a cold pair's is read from the backend's
// pair store, whose spilled table is stored in commit order at a
// length ≥ the cut (the pair can only have been spilled at or after
// the cut was taken, and spilling requires the commit lock's ordering
// of mutations), so the length-n prefix is exactly the cut's table.
// The federation pointer loaded here may be spilled concurrently — the
// object itself is never mutated after the spill, so reading its
// frozen (≥ cut) state remains correct.
func (h *Hub) copyPairMT(cp cutPair) ([]match.Pair, error) {
	var ps []match.Pair
	if fed := cp.p.fed.Load(); fed != nil {
		h.commitMu.Lock()
		ps = fed.PairsPrefix(cp.n)
		h.commitMu.Unlock()
	} else {
		tab, err := h.backend.Pairs().Load(cp.p.id)
		if err != nil {
			return nil, fmt.Errorf("hub: snapshot pair %q-%q: %w", cp.p.spec.Left, cp.p.spec.Right, err)
		}
		if len(tab.Pairs) < cp.n {
			return nil, fmt.Errorf("hub: snapshot pair %q-%q: spilled table has %d pairs, cut expects %d",
				cp.p.spec.Left, cp.p.spec.Right, len(tab.Pairs), cp.n)
		}
		ps = append([]match.Pair(nil), tab.Pairs[:cp.n]...)
	}
	federate.SortPairs(ps)
	return ps, nil
}

// foldPartition refolds the cut's matching tables into the canonical
// non-singleton cluster partition — pure off-lock work that reproduces
// exactly what partitionLocked would have returned at the cut, by the
// invariant (verified on every load) that the live cluster store equals
// the transitive closure of the pairwise tables.
func foldPartition(cut *snapshotCut, mts [][]match.Pair) [][][2]int {
	cs := newClusterSet()
	for i, cp := range cut.pairs {
		for _, pr := range mts[i] {
			cs.union(node{Src: cp.p.left, Idx: pr.RIndex}, node{Src: cp.p.right, Idx: pr.SIndex})
		}
	}
	byRoot := map[node][]node{}
	for n := range cs.parent {
		root := cs.find(n)
		byRoot[root] = append(byRoot[root], n)
	}
	return canonicalPartition(byRoot)
}

// canonicalPartition renders non-singleton clusters canonically:
// members sorted by (source, index), clusters sorted by first member.
func canonicalPartition(byRoot map[node][]node) [][][2]int {
	var out [][][2]int
	for _, ns := range byRoot {
		if len(ns) < 2 {
			continue
		}
		sortNodes(ns)
		c := make([][2]int, len(ns))
		for i, n := range ns {
			c[i] = [2]int{n.Src, n.Idx}
		}
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0][0] != out[b][0][0] {
			return out[a][0][0] < out[b][0][0]
		}
		return out[a][0][1] < out[b][0][1]
	})
	return out
}

// partitionLocked returns the canonical non-singleton cluster
// partition of the live store. Callers hold h.commitMu (and h.mu at
// least shared).
func (h *Hub) partitionLocked() ([][][2]int, error) {
	part, err := h.clusters.Partition()
	if err != nil {
		return nil, err
	}
	out := make([][][2]int, len(part))
	for i, ms := range part {
		c := make([][2]int, len(ms))
		for j, m := range ms {
			c[j] = [2]int{m.Src, m.Idx}
		}
		out[i] = c
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Section encoding
// ---------------------------------------------------------------------

// chunkItems abstracts the three section bodies for size-budgeted
// chunking: tuple lists, matching-pair lists, cluster lists.
type chunkItems interface {
	len() int
	// estimate approximates item i's encoded size; it only needs to be
	// deterministic and roughly proportional.
	estimate(i int) int
	// put encodes items [lo, hi) into the chunk.
	put(c *snapChunk, lo, hi int)
}

type tupleItems []relation.Tuple

func (t tupleItems) len() int { return len(t) }
func (t tupleItems) estimate(i int) int {
	n := 4
	for _, v := range t[i] {
		if v.IsNull() {
			n += 12
		} else {
			n += len(v.Kind().String()) + len(v.String()) + 16
		}
	}
	return n
}
func (t tupleItems) put(c *snapChunk, lo, hi int) {
	c.Tuples = make([][]wal.ValueRec, hi-lo)
	for i := lo; i < hi; i++ {
		c.Tuples[i-lo] = wal.EncodeTuple(t[i])
	}
}

type mtItems []match.Pair

func (m mtItems) len() int         { return len(m) }
func (m mtItems) estimate(int) int { return 24 }
func (m mtItems) put(c *snapChunk, lo, hi int) {
	c.MT = make([][2]int, hi-lo)
	for i := lo; i < hi; i++ {
		c.MT[i-lo] = [2]int{m[i].RIndex, m[i].SIndex}
	}
}

type clusterItems [][][2]int

func (cl clusterItems) len() int           { return len(cl) }
func (cl clusterItems) estimate(i int) int { return 4 + 24*len(cl[i]) }
func (cl clusterItems) put(c *snapChunk, lo, hi int) {
	c.Clusters = cl[lo:hi:hi]
}

// sectionBody is the captured content of one section, ready to encode.
type sectionBody struct {
	kind   string
	sec    int
	name   string
	schema *wal.SchemaRec
	link   *wal.LinkRec
	rlen   int
	slen   int
	items  chunkItems
}

// writeChunked splits items into budget-sized runs, encoding each via
// encode and handing the payload to emit. The estimator is
// approximate, so a run whose encoded payload still overflows the
// frame cap is halved until it fits (a single item larger than the cap
// is unrepresentable and fails loudly at the frame encoder). The split
// is deterministic for given items and budget, so equal content always
// yields equal bytes. Shared by snapshot sections and chunked
// AddSource log groups.
func writeChunked(items chunkItems, budget int, encode func(lo, hi int, first, last bool) ([]byte, error), emit func([]byte) error) error {
	if budget <= 0 {
		budget = wal.DefaultChunkPayload
	}
	// Leave halving headroom under the frame cap even when the budget
	// override is set recklessly high.
	if max := wal.FrameCap() / 2; budget > max {
		budget = max
	}
	total := items.len()
	lo := 0
	for first := true; first || lo < total; first = false {
		hi, est := lo, 0
		for hi < total {
			est += items.estimate(hi)
			hi++
			if est >= budget {
				break
			}
		}
		for {
			payload, err := encode(lo, hi, first, hi == total)
			if err != nil {
				return err
			}
			if len(payload) > wal.FrameCap() && hi-lo > 1 {
				hi = lo + (hi-lo)/2
				continue
			}
			if err := emit(payload); err != nil {
				return err
			}
			break
		}
		lo = hi
	}
	return nil
}

// writeSectionChunks encodes the body as budget-sized chunks through
// the section writer.
func writeSectionChunks(sw *wal.SectionWriter, b *sectionBody, budget int) error {
	encode := func(lo, hi int, first, last bool) ([]byte, error) {
		c := snapChunk{V2: b.kind, Sec: b.sec, Chunk: sw.Chunks() + 1, Last: last}
		if first {
			c.Name, c.Schema, c.Link, c.RLen, c.SLen = b.name, b.schema, b.link, b.rlen, b.slen
		}
		if hi > lo {
			b.items.put(&c, lo, hi)
		}
		payload, err := json.Marshal(c)
		if err != nil {
			return nil, fmt.Errorf("hub: snapshot: %w", err)
		}
		return payload, nil
	}
	emit := func(payload []byte) error {
		if err := sw.WriteChunk(payload); err != nil {
			return fmt.Errorf("hub: snapshot: %w", err)
		}
		return nil
	}
	return writeChunked(b.items, budget, encode, emit)
}

// sectionSink receives encoded sections: the stream sink concatenates
// them into one writer; the directory sink gives each section its own
// content-addressed file and can carry unchanged sections forward.
type sectionSink interface {
	// reuse reports whether a section with this identity and content is
	// already persisted; on true it fills meta's Chunks/Bytes/Hash from
	// the previous snapshot.
	reuse(meta *snapSection) bool
	// write encodes the body and fills meta's Chunks/Bytes/Hash.
	write(meta *snapSection, body *sectionBody, budget int) error
	// finish persists the manifest (the commit point).
	finish(man *snapManifest) error
}

// writeSnapshotV2 drives a snapshot at the given cut through a sink:
// capture each section under briefly-held locks, encode, write (or
// carry forward), then commit the manifest. sectionHook, when non-nil,
// runs after each section is persisted — the crash harness's
// mid-snapshot kill point.
func (h *Hub) writeSnapshotV2(cut *snapshotCut, sink sectionSink, budget int, sectionHook func(int) error) (*snapManifest, error) {
	man := &snapManifest{V2: secManifest, Format: snapFormat, Watermark: cut.watermark}
	allCarried := true
	emit := func(meta *snapSection, body *sectionBody) error {
		if err := sink.write(meta, body, budget); err != nil {
			return err
		}
		if sectionHook != nil {
			if err := sectionHook(len(man.Sections)); err != nil {
				return err
			}
		}
		return nil
	}
	for i, cs := range cut.sources {
		meta := snapSection{Kind: secSource, Name: cs.s.name, Items: cs.n}
		if !sink.reuse(&meta) {
			allCarried = false
			sch := wal.EncodeSchema(cs.s.rel.Schema())
			body := &sectionBody{
				kind: secSource, sec: i, name: cs.s.name, schema: &sch,
				items: tupleItems(h.copySourceTuples(cs)),
			}
			if err := emit(&meta, body); err != nil {
				return nil, err
			}
		}
		man.Sections = append(man.Sections, meta)
	}
	mts := make([][]match.Pair, len(cut.pairs))
	for i, cp := range cut.pairs {
		meta := snapSection{
			Kind: secPair, Left: cp.p.spec.Left, Right: cp.p.spec.Right,
			Items: cp.n, RLen: cp.rlen, SLen: cp.slen,
		}
		if !sink.reuse(&meta) {
			allCarried = false
			var err error
			if mts[i], err = h.copyPairMT(cp); err != nil {
				return nil, err
			}
			link := linkRecFromSpec(cp.p.spec)
			body := &sectionBody{
				kind: secPair, sec: len(man.Sections), link: &link,
				rlen: cp.rlen, slen: cp.slen, items: mtItems(mts[i]),
			}
			if err := emit(&meta, body); err != nil {
				return nil, err
			}
		}
		man.Sections = append(man.Sections, meta)
	}
	// The cluster partition is a function of the matching tables and
	// side lengths, so it is unchanged exactly when every other section
	// was carried forward.
	clMeta := snapSection{Kind: secClusters}
	if !allCarried || !sink.reuse(&clMeta) {
		for i := range mts {
			if mts[i] == nil {
				var err error
				if mts[i], err = h.copyPairMT(cut.pairs[i]); err != nil {
					return nil, err
				}
			}
		}
		clusters := foldPartition(cut, mts)
		clMeta.Items = len(clusters)
		body := &sectionBody{kind: secClusters, sec: len(man.Sections), items: clusterItems(clusters)}
		if err := emit(&clMeta, body); err != nil {
			return nil, err
		}
	}
	man.Sections = append(man.Sections, clMeta)
	if err := sink.finish(man); err != nil {
		return nil, err
	}
	return man, nil
}

// encodeManifest frames a manifest under sequence watermark+1.
func encodeManifest(man *snapManifest) ([]byte, error) {
	payload, err := json.Marshal(man)
	if err != nil {
		return nil, fmt.Errorf("hub: snapshot: %w", err)
	}
	frame, err := wal.EncodeRecord(man.Watermark+1, payload)
	if err != nil {
		return nil, fmt.Errorf("hub: snapshot: %w", err)
	}
	return frame, nil
}

// decodeManifest validates a manifest record.
func decodeManifest(rec wal.Record) (*snapManifest, error) {
	var man snapManifest
	if err := json.Unmarshal(rec.Payload, &man); err != nil {
		return nil, fmt.Errorf("hub: snapshot manifest: %w", err)
	}
	if man.V2 != secManifest || man.Format != snapFormat {
		return nil, fmt.Errorf("hub: snapshot manifest: unsupported format %d", man.Format)
	}
	if rec.Seq != man.Watermark+1 {
		return nil, fmt.Errorf("hub: snapshot manifest: frame sequence %d does not match watermark %d", rec.Seq, man.Watermark)
	}
	return &man, nil
}

// manifestPrefix is the byte prefix every canonical manifest payload
// starts with (json.Marshal emits struct fields in order). Detection by
// prefix keeps the stream reader from JSON-scanning every chunk twice;
// a non-canonical manifest simply fails the load, consistent with the
// WAL's canonical-frame stance.
var manifestPrefix = []byte(`{"v2":"manifest"`)

// streamSink writes every section back-to-back into one writer, the
// manifest last — the SaveSnapshot wire form.
type streamSink struct {
	w io.Writer
}

func (s *streamSink) reuse(*snapSection) bool { return false }

func (s *streamSink) write(meta *snapSection, body *sectionBody, budget int) error {
	sw := wal.NewSectionWriter(s.w)
	if err := writeSectionChunks(sw, body, budget); err != nil {
		return err
	}
	meta.Chunks, meta.Bytes, meta.Hash = sw.Chunks(), sw.Bytes(), sw.Sum()
	return nil
}

func (s *streamSink) finish(man *snapManifest) error {
	frame, err := encodeManifest(man)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(frame); err != nil {
		return fmt.Errorf("hub: snapshot: %w", err)
	}
	return nil
}

// SaveSnapshot captures the hub's current state — sources, per-pair
// federation state, cluster store — and streams it to w as a chunked
// format-2 snapshot: section frames first, the manifest frame last. It
// returns the WAL watermark the snapshot covers (0 for a memory-only
// hub). Safe for concurrent use with ingest: commits are blocked only
// while the O(sources+pairs) cut is taken and while each section's
// slice headers are copied, never for the encode or the writes.
func (h *Hub) SaveSnapshot(w io.Writer) (uint64, error) {
	h.mu.RLock()
	h.commitMu.Lock()
	var watermark uint64
	if h.per != nil {
		watermark = h.per.log.LastSeq()
	}
	cut := h.cutLocked(watermark)
	h.commitMu.Unlock()
	h.mu.RUnlock()
	if _, err := h.writeSnapshotV2(cut, &streamSink{w: w}, h.snapChunkBytes, nil); err != nil {
		return 0, err
	}
	return watermark, nil
}

// ---------------------------------------------------------------------
// Section decoding
// ---------------------------------------------------------------------

// decSource is a decoded source section.
type decSource struct {
	name string
	rel  *relation.Relation
}

// decPair is a decoded pair section.
type decPair struct {
	link       wal.LinkRec
	rlen, slen int
	mt         []match.Pair
}

// decSection is one fully decoded section plus the manifest entry it
// reproduces (identity, counts, content address), for verification.
type decSection struct {
	meta     snapSection
	src      *decSource
	pair     *decPair
	clusters [][][2]int
}

// sectionAccum decodes one section chunk-at-a-time: each chunk is
// applied as it arrives (tuples are inserted into the relation
// incrementally, so a jumbo source never exists as one decoded buffer),
// and the section's content address — the SHA-256 of the raw frame
// bytes exactly as read — accumulates as it goes.
//
// The Sec ordinal embedded in chunks is validated for internal
// consistency only (every chunk of a section must declare the same
// one), not against the manifest position: a carried-forward section
// file keeps the ordinal it was written under even after the topology
// grows around it; its identity is its content address.
type sectionAccum struct {
	sec    int       // position in the manifest/stream, for error messages
	decSec int       // the Sec ordinal the section's chunks declare
	sum    hash.Hash // sha256 over the raw frame bytes
	chunks int
	bytes  int64
	meta   snapSection
	done   bool

	src      *decSource
	pair     *decPair
	clusters [][][2]int
}

func newSectionAccum(sec int) *sectionAccum {
	return &sectionAccum{sec: sec, sum: sha256.New()}
}

func (a *sectionAccum) addChunk(rec wal.Record, raw []byte) error {
	if a.done {
		return fmt.Errorf("hub: snapshot section %d: chunk after final chunk", a.sec)
	}
	var c snapChunk
	if err := json.Unmarshal(rec.Payload, &c); err != nil {
		return fmt.Errorf("hub: snapshot section %d: %w", a.sec, err)
	}
	wantChunk := a.chunks + 1
	if wantChunk == 1 {
		a.decSec = c.Sec
	}
	if c.Sec != a.decSec || c.Chunk != wantChunk || uint64(c.Chunk) != rec.Seq {
		return fmt.Errorf("hub: snapshot section %d: chunk out of sequence (sec %d chunk %d, frame %d, want sec %d chunk %d)",
			a.sec, c.Sec, c.Chunk, rec.Seq, a.decSec, wantChunk)
	}
	if wantChunk == 1 {
		a.meta.Kind = c.V2
		switch c.V2 {
		case secSource:
			if c.Schema == nil {
				return fmt.Errorf("hub: snapshot section %d: source section without schema header", a.sec)
			}
			sch, err := wal.DecodeSchema(*c.Schema)
			if err != nil {
				return fmt.Errorf("hub: snapshot source %q: %w", c.Name, err)
			}
			a.src = &decSource{name: c.Name, rel: relation.New(sch)}
			a.meta.Name = c.Name
		case secPair:
			if c.Link == nil {
				return fmt.Errorf("hub: snapshot section %d: pair section without link header", a.sec)
			}
			a.pair = &decPair{link: *c.Link, rlen: c.RLen, slen: c.SLen}
			a.meta.Left, a.meta.Right = c.Link.Left, c.Link.Right
			a.meta.RLen, a.meta.SLen = c.RLen, c.SLen
		case secClusters:
		default:
			return fmt.Errorf("hub: snapshot section %d: unknown section kind %q", a.sec, c.V2)
		}
	} else if c.V2 != a.meta.Kind {
		return fmt.Errorf("hub: snapshot section %d: chunk kind %q in %q section", a.sec, c.V2, a.meta.Kind)
	}
	switch a.meta.Kind {
	case secSource:
		for i, tr := range c.Tuples {
			t, err := wal.DecodeTuple(tr)
			if err != nil {
				return fmt.Errorf("hub: snapshot source %q tuple %d: %w", a.src.name, a.meta.Items+i, err)
			}
			if err := a.src.rel.Insert(t); err != nil {
				return fmt.Errorf("hub: snapshot source %q tuple %d: %w", a.src.name, a.meta.Items+i, err)
			}
		}
		a.meta.Items += len(c.Tuples)
	case secPair:
		for _, pr := range c.MT {
			a.pair.mt = append(a.pair.mt, matchPair(pr))
		}
		a.meta.Items += len(c.MT)
	case secClusters:
		a.clusters = append(a.clusters, c.Clusters...)
		a.meta.Items += len(c.Clusters)
	}
	a.sum.Write(raw)
	a.chunks++
	a.bytes += int64(len(raw))
	if c.Last {
		a.done = true
	}
	return nil
}

// finish validates terminal state and returns the decoded section.
func (a *sectionAccum) finish() (*decSection, error) {
	if !a.done {
		return nil, fmt.Errorf("hub: snapshot section %d: truncated (no final chunk)", a.sec)
	}
	a.meta.Chunks, a.meta.Bytes, a.meta.Hash = a.chunks, a.bytes, hex.EncodeToString(a.sum.Sum(nil))
	return &decSection{meta: a.meta, src: a.src, pair: a.pair, clusters: a.clusters}, nil
}

// matches verifies a decoded section against its manifest entry.
func (d *decSection) matches(want snapSection) error {
	got := d.meta
	if !got.sameContent(want) || got.Chunks != want.Chunks || got.Bytes != want.Bytes || got.Hash != want.Hash {
		return fmt.Errorf("hub: snapshot section %s %s%s-%s does not match its manifest entry",
			want.Kind, want.Name, want.Left, want.Right)
	}
	return nil
}

// LoadSnapshot rebuilds a hub from a snapshot and returns it with the
// snapshot's watermark. It sniffs the first frame: a format-1
// single-frame snapshot (PR 3) loads through the legacy path; a
// format-2 stream is decoded section-at-a-time, each section's chunks
// handed to its own goroutine so independent sections rebuild in
// parallel. Frame CRCs, section hashes, every domain constructor, every
// pairwise matching table and the cluster partition are re-verified;
// any mismatch fails the load.
func LoadSnapshot(r io.Reader) (*Hub, uint64, error) {
	return loadSnapshot(r, nil)
}

// loadSnapshot is LoadSnapshot onto a specific storage backend (nil
// means a fresh in-memory backend) — the Open path threads the
// configured backend through here.
func loadSnapshot(r io.Reader, b store.Backend) (*Hub, uint64, error) {
	sc := wal.NewFrameScanner(r)
	rec, raw, err := sc.Next()
	if err != nil {
		return nil, 0, fmt.Errorf("hub: load snapshot: %w", err)
	}
	if !bytes.HasPrefix(rec.Payload, []byte(`{"v2":"`)) {
		// Format 1: exactly one frame.
		if _, _, err := sc.Next(); err != io.EOF {
			return nil, 0, fmt.Errorf("hub: load snapshot: trailing data after single-record frame")
		}
		return loadSnapshotV1(rec, b)
	}
	return loadSnapshotV2Stream(sc, frameMsg{rec: rec, raw: raw}, b)
}

// sectionFeed decodes one section's chunks on its own goroutine.
type sectionFeed struct {
	ch  chan frameMsg
	res chan secResult
}

// frameMsg carries one frame plus its raw bytes (hashed for the
// section's content address).
type frameMsg struct {
	rec wal.Record
	raw []byte
}

type secResult struct {
	sec *decSection
	err error
}

func startSectionFeed(sec int) *sectionFeed {
	f := &sectionFeed{ch: make(chan frameMsg, 4), res: make(chan secResult, 1)}
	go func() {
		a := newSectionAccum(sec)
		var err error
		for msg := range f.ch {
			if err != nil {
				continue // drain
			}
			err = a.addChunk(msg.rec, msg.raw)
		}
		if err != nil {
			f.res <- secResult{err: err}
			return
		}
		d, err := a.finish()
		f.res <- secResult{sec: d, err: err}
	}()
	return f
}

// loadSnapshotV2Stream reads a format-2 stream: section frames
// (sequence numbers restarting at 1 per section) followed by the
// manifest frame. Each section is decoded by its own goroutine while
// the reader streams ahead.
func loadSnapshotV2Stream(sc *wal.FrameScanner, first frameMsg, b store.Backend) (*Hub, uint64, error) {
	var (
		feeds []*sectionFeed
		open  bool
		man   *snapManifest
	)
	closeOpen := func() {
		if open {
			close(feeds[len(feeds)-1].ch)
			open = false
		}
	}
	drain := func() {
		closeOpen()
		for _, f := range feeds {
			<-f.res
		}
	}
	fail := func(err error) (*Hub, uint64, error) {
		drain()
		return nil, 0, err
	}
	msg := first
	for {
		if bytes.HasPrefix(msg.rec.Payload, manifestPrefix) {
			closeOpen()
			m, err := decodeManifest(msg.rec)
			if err != nil {
				return fail(err)
			}
			man = m
			if _, _, err := sc.Next(); err != io.EOF {
				return fail(fmt.Errorf("hub: load snapshot: trailing data after manifest"))
			}
			break
		}
		if msg.rec.Seq == 1 {
			closeOpen()
			feeds = append(feeds, startSectionFeed(len(feeds)))
			open = true
		} else if !open {
			return fail(fmt.Errorf("hub: load snapshot: continuation frame %d with no open section", msg.rec.Seq))
		}
		feeds[len(feeds)-1].ch <- msg

		rec, raw, err := sc.Next()
		if err == io.EOF {
			return fail(fmt.Errorf("hub: load snapshot: stream ends without a manifest"))
		}
		if err != nil {
			return fail(fmt.Errorf("hub: load snapshot: %w", err))
		}
		msg = frameMsg{rec: rec, raw: raw}
	}
	secs := make([]*decSection, len(feeds))
	var firstErr error
	for i, f := range feeds {
		r := <-f.res
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		secs[i] = r.sec
	}
	if firstErr != nil {
		return nil, 0, firstErr
	}
	if len(man.Sections) != len(secs) {
		return nil, 0, fmt.Errorf("hub: load snapshot: manifest lists %d sections, stream holds %d", len(man.Sections), len(secs))
	}
	for i, sec := range secs {
		if err := sec.matches(man.Sections[i]); err != nil {
			return nil, 0, err
		}
	}
	h, err := assembleHub(secs, b)
	if err != nil {
		return nil, 0, err
	}
	return h, man.Watermark, nil
}

// ---------------------------------------------------------------------
// Assembly
// ---------------------------------------------------------------------

// assembleHub builds a hub from decoded sections onto the given
// storage backend (nil means in-memory): sources registered in section
// order, pairwise federations re-verified in parallel through
// federate.Restore, links folded sequentially, and the saved cluster
// partition checked against the refold.
func assembleHub(secs []*decSection, b store.Backend) (*Hub, error) {
	h := NewWithBackend(b)
	var pairs []*decPair
	var clusters [][][2]int
	clustersSeen := false
	for _, s := range secs {
		switch s.meta.Kind {
		case secSource:
			if err := h.addSourceOwned(s.src.name, s.src.rel); err != nil {
				return nil, fmt.Errorf("hub: load snapshot: %w", err)
			}
		case secPair:
			pairs = append(pairs, s.pair)
		case secClusters:
			if clustersSeen {
				return nil, fmt.Errorf("hub: load snapshot: duplicate clusters section")
			}
			clustersSeen = true
			clusters = s.clusters
		}
	}
	if !clustersSeen {
		return nil, fmt.Errorf("hub: load snapshot: no clusters section")
	}
	// Re-verify every pairwise federation concurrently: Restore rebuilds
	// the matching table from the loaded relations and proves it equals
	// the saved one — the expensive, independent step.
	specs := make([]PairSpec, len(pairs))
	feds := make([]*federate.Federation, len(pairs))
	errs := make([]error, len(pairs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i, dp := range pairs {
		wg.Add(1)
		go func(i int, dp *decPair) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			spec, err := specFromLinkRec(dp.link)
			if err != nil {
				errs[i] = fmt.Errorf("hub: load snapshot: link %q-%q: %w", dp.link.Left, dp.link.Right, err)
				return
			}
			li, ok := h.byName[spec.Left]
			if !ok {
				errs[i] = fmt.Errorf("hub: load snapshot: link references unknown source %q", spec.Left)
				return
			}
			ri, ok := h.byName[spec.Right]
			if !ok {
				errs[i] = fmt.Errorf("hub: load snapshot: link references unknown source %q", spec.Right)
				return
			}
			st := federate.State{RLen: dp.rlen, SLen: dp.slen, Pairs: dp.mt}
			fed, err := federate.Restore(h.matchConfig(li, ri, spec), st)
			if err != nil {
				errs[i] = fmt.Errorf("hub: load snapshot: link %q-%q: %w", spec.Left, spec.Right, err)
				return
			}
			specs[i], feds[i] = spec, fed
		}(i, dp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i := range pairs {
		h.mu.Lock()
		err := h.linkRestored(specs[i], feds[i])
		h.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("hub: load snapshot: %w", err)
		}
	}
	h.mu.RLock()
	h.commitMu.Lock()
	refolded, perr := h.partitionLocked()
	h.commitMu.Unlock()
	h.mu.RUnlock()
	if perr != nil {
		return nil, fmt.Errorf("hub: load snapshot: %w", perr)
	}
	if !partitionsEqual(refolded, clusters) {
		return nil, fmt.Errorf("hub: load snapshot: cluster store does not match the refolded pairwise matching tables")
	}
	return h, nil
}

// maxParallel bounds concurrent section work during loads.
func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	return n
}

func partitionsEqual(a, b [][][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// linkRecFromSpec converts a pair spec into its WAL/snapshot record.
func linkRecFromSpec(spec PairSpec) wal.LinkRec {
	return wal.LinkRec{
		Left:         spec.Left,
		Right:        spec.Right,
		Attrs:        wal.EncodeAttrMaps(spec.Attrs),
		ExtKey:       spec.ExtKey,
		ILFDs:        wal.EncodeILFDs(spec.ILFDs),
		Identity:     wal.EncodeIdentityRules(spec.Identity),
		Distinct:     wal.EncodeDistinctnessRules(spec.Distinct),
		DeriveMode:   int(spec.DeriveMode),
		DisableProp1: spec.DisableProp1,
	}
}

// specFromLinkRec restores a pair spec, re-validating ILFDs and rules.
func specFromLinkRec(r wal.LinkRec) (PairSpec, error) {
	ilfds, err := wal.DecodeILFDs(r.ILFDs)
	if err != nil {
		return PairSpec{}, err
	}
	identity, err := wal.DecodeIdentityRules(r.Identity)
	if err != nil {
		return PairSpec{}, err
	}
	distinct, err := wal.DecodeDistinctnessRules(r.Distinct)
	if err != nil {
		return PairSpec{}, err
	}
	if r.DeriveMode != int(derive.FirstMatch) && r.DeriveMode != int(derive.Fixpoint) {
		return PairSpec{}, fmt.Errorf("hub: unknown derive mode %d", r.DeriveMode)
	}
	return PairSpec{
		Left:         r.Left,
		Right:        r.Right,
		Attrs:        wal.DecodeAttrMaps(r.Attrs),
		ExtKey:       r.ExtKey,
		ILFDs:        ilfds,
		Identity:     identity,
		Distinct:     distinct,
		DeriveMode:   derive.Mode(r.DeriveMode),
		DisableProp1: r.DisableProp1,
	}, nil
}

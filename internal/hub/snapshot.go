// Hub snapshots: a point-in-time capture of the entire federation —
// sources (schema + canonical tuples), per-pair federation state (link
// spec + exported matching table), and the global cluster store — as a
// single CRC-framed JSON record (the same frame the WAL uses, so a
// torn or bit-rotted snapshot is detected, not loaded).
//
// Loading fails closed three ways: every schema, ILFD and rule is
// re-validated by its domain constructor; every pairwise federation is
// rebuilt through federate.Restore, which verifies the rebuilt
// matching table equals the saved one; and the cluster partition
// refolded from the pairwise tables must equal the saved partition.
// A snapshot that loads is therefore guaranteed to reproduce exactly
// the state that was captured.
package hub

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"entityid/internal/derive"
	"entityid/internal/federate"
	"entityid/internal/match"
	"entityid/internal/relation"
	"entityid/internal/wal"
)

// matchPair converts the snapshot's compact pair form.
func matchPair(p [2]int) match.Pair { return match.Pair{RIndex: p[0], SIndex: p[1]} }

// hubSnap is the snapshot payload.
type hubSnap struct {
	// Watermark is the last WAL sequence number the snapshot covers;
	// replay resumes after it.
	Watermark uint64       `json:"watermark"`
	Sources   []sourceSnap `json:"sources"`
	Pairs     []pairSnap   `json:"pairs"`
	// Clusters is the canonical non-singleton cluster partition, each
	// cluster a sorted list of (source ordinal, tuple index) pairs,
	// clusters sorted by first member. Singletons are implicit.
	Clusters [][][2]int `json:"clusters,omitempty"`
}

// sourceSnap is one source: schema plus canonical tuples.
type sourceSnap struct {
	Name   string           `json:"name"`
	Schema wal.SchemaRec    `json:"schema"`
	Tuples [][]wal.ValueRec `json:"tuples,omitempty"`
}

// pairSnap is one link: its spec and the exported federation state.
type pairSnap struct {
	Link wal.LinkRec `json:"link"`
	MT   [][2]int    `json:"mt,omitempty"`
	RLen int         `json:"rlen"`
	SLen int         `json:"slen"`
}

// captureLocked copies the hub state into a snapshot payload. Callers
// hold h.mu (at least shared) and h.clusterMu — under those locks no
// commit can run, so the copy is consistent; it is pure memory work,
// the slow encode/write happens off-lock.
func (h *Hub) captureLocked() *hubSnap {
	snap := &hubSnap{}
	for _, s := range h.sources {
		ss := sourceSnap{
			Name:   s.name,
			Schema: wal.EncodeSchema(s.rel.Schema()),
			Tuples: wal.EncodeTuples(s.rel.Tuples()),
		}
		snap.Sources = append(snap.Sources, ss)
	}
	for _, p := range h.pairs {
		st := p.fed.Export()
		ps := pairSnap{Link: linkRecFromSpec(p.spec), RLen: st.RLen, SLen: st.SLen}
		for _, pr := range st.Pairs {
			ps.MT = append(ps.MT, [2]int{pr.RIndex, pr.SIndex})
		}
		snap.Pairs = append(snap.Pairs, ps)
	}
	snap.Clusters = h.partitionLocked()
	return snap
}

// partitionLocked returns the canonical non-singleton cluster
// partition. Callers hold h.clusterMu.
func (h *Hub) partitionLocked() [][][2]int {
	byRoot := map[node][]node{}
	for si, s := range h.sources {
		for i := 0; i < s.rel.Len(); i++ {
			n := node{src: si, idx: i}
			root := h.clusters.find(n)
			byRoot[root] = append(byRoot[root], n)
		}
	}
	var out [][][2]int
	for _, ns := range byRoot {
		if len(ns) < 2 {
			continue
		}
		sortNodes(ns)
		c := make([][2]int, len(ns))
		for i, n := range ns {
			c[i] = [2]int{n.src, n.idx}
		}
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0][0] != out[b][0][0] {
			return out[a][0][0] < out[b][0][0]
		}
		return out[a][0][1] < out[b][0][1]
	})
	return out
}

// encodeSnapshot frames a snapshot payload. The frame sequence number
// is watermark+1 so the zero watermark (no WAL yet) still frames
// validly; the authoritative watermark lives in the payload.
func encodeSnapshot(snap *hubSnap, watermark uint64) ([]byte, error) {
	snap.Watermark = watermark
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("hub: snapshot: %w", err)
	}
	frame, err := wal.EncodeRecord(watermark+1, payload)
	if err != nil {
		return nil, fmt.Errorf("hub: snapshot: %w", err)
	}
	return frame, nil
}

// SaveSnapshot captures the hub's current state — sources, per-pair
// federation state, cluster store — and writes it to w as one framed,
// CRC-guarded record. It returns the WAL watermark the snapshot covers
// (0 for a memory-only hub). Safe for concurrent use with ingest.
func (h *Hub) SaveSnapshot(w io.Writer) (uint64, error) {
	h.mu.RLock()
	h.clusterMu.Lock()
	snap := h.captureLocked()
	var watermark uint64
	if h.per != nil {
		watermark = h.per.log.LastSeq()
	}
	h.clusterMu.Unlock()
	h.mu.RUnlock()
	frame, err := encodeSnapshot(snap, watermark)
	if err != nil {
		return 0, err
	}
	if _, err := w.Write(frame); err != nil {
		return 0, fmt.Errorf("hub: snapshot: %w", err)
	}
	return watermark, nil
}

// LoadSnapshot rebuilds a hub from a snapshot written by SaveSnapshot
// and returns it with the snapshot's watermark. The frame CRC, every
// domain constructor, every pairwise matching table and the cluster
// partition are re-verified; any mismatch fails the load.
func LoadSnapshot(r io.Reader) (*Hub, uint64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("hub: load snapshot: %w", err)
	}
	rec, err := wal.DecodeRecord(data)
	if err != nil {
		return nil, 0, fmt.Errorf("hub: load snapshot: %w", err)
	}
	var snap hubSnap
	if err := json.Unmarshal(rec.Payload, &snap); err != nil {
		return nil, 0, fmt.Errorf("hub: load snapshot: %w", err)
	}
	if rec.Seq != snap.Watermark+1 {
		return nil, 0, fmt.Errorf("hub: load snapshot: frame sequence %d does not match watermark %d", rec.Seq, snap.Watermark)
	}
	h := New()
	for _, ss := range snap.Sources {
		sch, err := wal.DecodeSchema(ss.Schema)
		if err != nil {
			return nil, 0, fmt.Errorf("hub: load snapshot: source %q: %w", ss.Name, err)
		}
		rel := relation.New(sch)
		for i, tr := range ss.Tuples {
			t, err := wal.DecodeTuple(tr)
			if err != nil {
				return nil, 0, fmt.Errorf("hub: load snapshot: source %q tuple %d: %w", ss.Name, i, err)
			}
			if err := rel.Insert(t); err != nil {
				return nil, 0, fmt.Errorf("hub: load snapshot: source %q tuple %d: %w", ss.Name, i, err)
			}
		}
		if err := h.AddSource(ss.Name, rel); err != nil {
			return nil, 0, fmt.Errorf("hub: load snapshot: %w", err)
		}
	}
	for _, ps := range snap.Pairs {
		spec, err := specFromLinkRec(ps.Link)
		if err != nil {
			return nil, 0, fmt.Errorf("hub: load snapshot: link %q-%q: %w", ps.Link.Left, ps.Link.Right, err)
		}
		st := federate.State{RLen: ps.RLen, SLen: ps.SLen}
		for _, pr := range ps.MT {
			st.Pairs = append(st.Pairs, matchPair(pr))
		}
		h.mu.Lock()
		err = h.linkLocked(spec, &st)
		h.mu.Unlock()
		if err != nil {
			return nil, 0, fmt.Errorf("hub: load snapshot: %w", err)
		}
	}
	h.mu.RLock()
	h.clusterMu.Lock()
	refolded := h.partitionLocked()
	h.clusterMu.Unlock()
	h.mu.RUnlock()
	if !partitionsEqual(refolded, snap.Clusters) {
		return nil, 0, fmt.Errorf("hub: load snapshot: cluster store does not match the refolded pairwise matching tables")
	}
	return h, snap.Watermark, nil
}

func partitionsEqual(a, b [][][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// linkRecFromSpec converts a pair spec into its WAL/snapshot record.
func linkRecFromSpec(spec PairSpec) wal.LinkRec {
	return wal.LinkRec{
		Left:         spec.Left,
		Right:        spec.Right,
		Attrs:        wal.EncodeAttrMaps(spec.Attrs),
		ExtKey:       spec.ExtKey,
		ILFDs:        wal.EncodeILFDs(spec.ILFDs),
		Identity:     wal.EncodeIdentityRules(spec.Identity),
		Distinct:     wal.EncodeDistinctnessRules(spec.Distinct),
		DeriveMode:   int(spec.DeriveMode),
		DisableProp1: spec.DisableProp1,
	}
}

// specFromLinkRec restores a pair spec, re-validating ILFDs and rules.
func specFromLinkRec(r wal.LinkRec) (PairSpec, error) {
	ilfds, err := wal.DecodeILFDs(r.ILFDs)
	if err != nil {
		return PairSpec{}, err
	}
	identity, err := wal.DecodeIdentityRules(r.Identity)
	if err != nil {
		return PairSpec{}, err
	}
	distinct, err := wal.DecodeDistinctnessRules(r.Distinct)
	if err != nil {
		return PairSpec{}, err
	}
	if r.DeriveMode != int(derive.FirstMatch) && r.DeriveMode != int(derive.Fixpoint) {
		return PairSpec{}, fmt.Errorf("hub: unknown derive mode %d", r.DeriveMode)
	}
	return PairSpec{
		Left:         r.Left,
		Right:        r.Right,
		Attrs:        wal.DecodeAttrMaps(r.Attrs),
		ExtKey:       r.ExtKey,
		ILFDs:        ilfds,
		Identity:     identity,
		Distinct:     distinct,
		DeriveMode:   derive.Mode(r.DeriveMode),
		DisableProp1: r.DisableProp1,
	}, nil
}

package hub

// Harness for the streaming dataflow ingest path: IngestStream must be
// observationally identical to the sequential Insert loop (same final
// state, results in submission order), hold its memory bound under a
// stalled consumer (backpressure, not buffering), leave exactly an
// acked prefix committed across cancellation + crash + recovery, keep
// every acknowledged insert through injected WAL faults at pipeline
// commit points, skip group-commit fsyncs for windows that appended
// nothing, and spawn no goroutines that outlive the streams. Run under
// -race: the stages, feeder and pump are all concurrent.

import (
	"context"
	"fmt"
	"runtime"
	"syscall"
	"testing"
	"time"

	"entityid/internal/datagen"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
	"entityid/internal/wal/errfs"
)

// pipeWorkload is the shared multi-source workload for the stream
// harness (distinct seed from the other harnesses' workloads).
func pipeWorkload(t *testing.T) (*datagen.MultiWorkload, []Insert) {
	t.Helper()
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 30, PresenceFrac: 0.65, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 83,
	})
	return w, shuffled(w, 29)
}

// streamAll feeds items through IngestStream and collects every result.
func streamAll(h *Hub, ctx context.Context, items []Insert, opts StreamOptions) []StreamResult {
	in := make(chan Insert)
	go func() {
		defer close(in)
		for _, it := range items {
			select {
			case in <- it:
			case <-ctx.Done():
				return
			}
		}
	}()
	var out []StreamResult
	for res := range h.IngestStream(ctx, in, opts) {
		out = append(out, res)
	}
	return out
}

// TestIngestStreamMatchesSequential pins stream ≡ sequential: the same
// items through IngestStream and through an Insert loop land on
// bit-for-bit the same hub state, with results in submission order.
func TestIngestStreamMatchesSequential(t *testing.T) {
	w, items := pipeWorkload(t)
	ref, err := NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if _, err := ref.Insert(it.Source, it.Tuple); err != nil {
			t.Fatalf("reference insert %d: %v", i, err)
		}
	}

	h, err := NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	results := streamAll(h, context.Background(), items, StreamOptions{})
	if len(results) != len(items) {
		t.Fatalf("%d results for %d items", len(results), len(items))
	}
	for i, res := range results {
		if res.Seq != i {
			t.Fatalf("result %d carries seq %d: stream reordered", i, res.Seq)
		}
		if res.Err != nil {
			t.Fatalf("stream insert %d: %v", i, res.Err)
		}
	}
	mustEqualState(t, "stream vs sequential", stateOf(h), stateOf(ref))
}

// oneSourceHub builds a linkless single-source hub whose inserts always
// commit — the workload for bounds and lifecycle tests where matching
// is noise.
func oneSourceHub(t *testing.T) *Hub {
	t.Helper()
	h := New()
	rel := relation.New(schema.MustNew("s", []schema.Attribute{
		{Name: "id", Kind: value.KindString},
	}, []string{"id"}))
	if err := h.AddSource("s", rel); err != nil {
		t.Fatal(err)
	}
	return h
}

// rowItems builds n unique single-column inserts for oneSourceHub.
func rowItems(n int) []Insert {
	items := make([]Insert, n)
	for i := range items {
		items[i] = Insert{Source: "s", Tuple: relation.Tuple{value.String(fmt.Sprintf("row-%d", i))}}
	}
	return items
}

// TestIngestStreamBackpressureBound pins the memory bound: with a
// consumer that reads nothing, a long stream must stall after at most
// 2×Window commits (Window credits in flight plus Window results
// buffered on the output channel) — the stream backpressures instead of
// buffering the input. Once the consumer drains, every item lands.
func TestIngestStreamBackpressureBound(t *testing.T) {
	const window, total = 8, 500
	h := oneSourceHub(t)
	items := rowItems(total)

	in := make(chan Insert)
	go func() {
		defer close(in)
		for _, it := range items {
			in <- it
		}
	}()
	out := h.IngestStream(context.Background(), in, StreamOptions{Window: window})

	// Consume nothing: the stream must quiesce at the bound, not run on.
	stable, last := 0, -1
	for stable < 10 {
		time.Sleep(5 * time.Millisecond)
		runtime.Gosched()
		if n, _ := h.SourceLen("s"); n == last {
			stable++
		} else {
			last = n
			stable = 0
		}
	}
	if last > 2*window {
		t.Fatalf("stalled consumer saw %d commits, want ≤ %d (2×window)", last, 2*window)
	}
	if last == 0 {
		t.Fatal("stream made no progress at all")
	}

	got := 0
	for res := range out {
		if res.Err != nil {
			t.Fatalf("stream insert %d: %v", res.Seq, res.Err)
		}
		got++
	}
	if got != total {
		t.Fatalf("drained %d results, want %d", got, total)
	}
	if n, _ := h.SourceLen("s"); n != total {
		t.Fatalf("committed %d tuples, want %d", n, total)
	}
}

// TestIngestStreamCancelAckedPrefix pins the cancellation contract end
// to end: consume K acks, cancel, crash the durable hub, recover — the
// committed set must be a prefix of the submission order containing at
// least every acked item.
func TestIngestStreamCancelAckedPrefix(t *testing.T) {
	w, items := pipeWorkload(t)
	dir := t.TempDir()
	h, _ := openDurableMulti(t, dir, w, 0)

	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan Insert)
	go func() {
		defer close(in)
		for _, it := range items {
			select {
			case in <- it:
			case <-ctx.Done():
				return
			}
		}
	}()
	out := h.IngestStream(ctx, in, StreamOptions{Window: 4})
	acked := 0
	for res := range out {
		if res.Err != nil {
			t.Fatalf("stream insert %d: %v", res.Seq, res.Err)
		}
		if acked = res.Seq + 1; acked == len(items)/3 {
			cancel()
			break
		}
	}
	for range out { // drain: post-cancel results are dropped by contract
	}
	defer cancel()

	// Crash without Close and recover.
	h.per.quiesce()
	h2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer h2.Close()

	n := h2.Stats().Tuples
	if n < acked {
		t.Fatalf("recovered %d tuples < %d acked: an acknowledged insert was lost", n, acked)
	}
	if n > len(items) {
		t.Fatalf("recovered %d tuples from a %d-item stream", n, len(items))
	}
	// Prefix, exactly: the recovered hub equals a sequential run over
	// the first n submitted items — nothing out of order, nothing past
	// the cancellation frontier reordered in.
	ref, err := NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := ref.Insert(items[i].Source, items[i].Tuple); err != nil {
			t.Fatalf("reference insert %d: %v", i, err)
		}
	}
	mustEqualState(t, "recovered vs submitted prefix", stateOf(h2), stateOf(ref))
}

// TestIngestStreamChaosWALFault injects ENOSPC at a WAL append in the
// middle of a stream — the pipeline's commit point — and checks the
// acked/failed split is honest: every result acked ok before the fault
// survives crash + recovery, every later item failed fast, and the
// recovered hub is exactly the acked set.
func TestIngestStreamChaosWALFault(t *testing.T) {
	w, items := pipeWorkload(t)
	fs := errfs.New(nil)
	dir := t.TempDir()
	h := openChaosMulti(t, dir, w, 0, fs)
	fs.Inject(errfs.Rule{Op: errfs.OpWrite, PathContains: "wal-", After: len(items) / 2, Err: syscall.ENOSPC})

	results := streamAll(h, context.Background(), items, StreamOptions{})
	if len(results) != len(items) {
		t.Fatalf("%d results for %d items", len(results), len(items))
	}
	var okSeqs []int
	for _, res := range results {
		if res.Err == nil {
			okSeqs = append(okSeqs, res.Seq)
		}
	}
	if len(okSeqs) == 0 || len(okSeqs) == len(items) {
		t.Fatalf("fault did not split the stream: %d/%d ok", len(okSeqs), len(items))
	}
	h.per.quiesce()

	h2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer h2.Close()
	present := map[string]bool{}
	for name, tuples := range stateOf(h2).rels {
		for _, tup := range tuples {
			present[name+"|"+tup.Key()] = true
		}
	}
	for _, seq := range okSeqs {
		key := items[seq].Source + "|" + items[seq].Tuple.Key()
		if !present[key] {
			t.Fatalf("acked insert %d (%s) lost to the WAL fault", seq, key)
		}
	}
	if got := h2.Stats().Tuples; got != len(okSeqs) {
		t.Fatalf("recovered %d tuples, want exactly the %d acked", got, len(okSeqs))
	}
}

// TestPipelineFlushSkipsWhenNoAppends pins the group-commit fix: a
// batch (or stream window) in which nothing reached the log must not
// pay an fsync, while one with appends must flush fully by its end.
func TestPipelineFlushSkipsWhenNoAppends(t *testing.T) {
	dir := t.TempDir()
	h, _, err := Open(dir, Options{SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rel := relation.New(schema.MustNew("s", []schema.Attribute{
		{Name: "id", Kind: value.KindString},
	}, []string{"id"}))
	if err := h.AddSource("s", rel); err != nil {
		t.Fatal(err)
	}
	h.per.flushSync() // settle the setup records
	seq0, _ := h.per.log.Synced()
	last0 := h.per.log.LastSeq()

	// All-rejected batch: every item targets an unknown source, nothing
	// is appended, no sync may fire.
	bad := make([]Insert, 8)
	for i := range bad {
		bad[i] = Insert{Source: "zzz", Tuple: relation.Tuple{value.String(fmt.Sprintf("x-%d", i))}}
	}
	for _, res := range h.IngestBatch(bad) {
		if res.Err == nil {
			t.Fatal("unknown-source insert accepted")
		}
	}
	// An empty stream is a flush window with no appends too.
	empty := make(chan Insert)
	close(empty)
	for range h.IngestStream(context.Background(), empty, StreamOptions{}) {
	}
	if seq, _ := h.per.log.Synced(); seq != seq0 || h.per.log.LastSeq() != last0 {
		t.Fatalf("append-free windows moved the log: synced %d→%d, last %d→%d",
			seq0, seq, last0, h.per.log.LastSeq())
	}

	// A batch with real appends flushes everything by its end.
	for _, res := range h.IngestBatch(rowItems(10)) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if seq, _ := h.per.log.Synced(); seq != h.per.log.LastSeq() || seq == seq0 {
		t.Fatalf("batch left unsynced appends: synced %d, last %d", seq, h.per.log.LastSeq())
	}
}

// TestPipelineGoroutineLifecycle pins the resident-stage lifecycle:
// batches and streams spawn stages on demand and reap them when the
// last producer detaches, so churning the ingest APIs leaks nothing and
// an idle hub owns no pipeline goroutines.
func TestPipelineGoroutineLifecycle(t *testing.T) {
	h := oneSourceHub(t)
	before := runtime.NumGoroutine()
	n := 0
	for round := 0; round < 50; round++ {
		items := make([]Insert, 8)
		for i := range items {
			items[i] = Insert{Source: "s", Tuple: relation.Tuple{value.String(fmt.Sprintf("r%d-%d", round, i))}}
			n++
		}
		if round%2 == 0 {
			for _, res := range h.IngestBatch(items) {
				if res.Err != nil {
					t.Fatal(res.Err)
				}
			}
		} else {
			for _, res := range streamAll(h, context.Background(), items, StreamOptions{Window: 3}) {
				if res.Err != nil {
					t.Fatal(res.Err)
				}
			}
		}
	}
	if got, _ := h.SourceLen("s"); got != n {
		t.Fatalf("committed %d tuples, want %d", got, n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+5 {
		t.Fatalf("goroutine leak: %d before, %d after 50 ingest rounds", before, after)
	}
}

package hub

// FuzzSnapshotDecode throws arbitrary bytes at the snapshot loader.
// The properties: LoadSnapshot never panics and never hangs — every
// input either yields a hub that passed full verification (matching
// tables rebuilt and compared, cluster partition refolded) or an
// error. The seed corpus covers the interesting shapes: a valid
// chunked stream, a stream truncated mid-section, a sequence jump
// between chunks, a valid legacy single-frame snapshot, and raw
// garbage.

import (
	"bytes"
	"strings"
	"testing"

	"entityid/internal/datagen"
)

func FuzzSnapshotDecode(f *testing.F) {
	h, _ := fuzzHub(f)
	h.snapChunkBytes = 1 << 10 // force several chunks per section
	var valid bytes.Buffer
	if _, err := h.SaveSnapshot(&valid); err != nil {
		f.Fatal(err)
	}
	stream := valid.Bytes()
	f.Add(stream)
	// Truncated mid-section: cut inside the second frame.
	lines := bytes.SplitAfter(stream, []byte("\n"))
	if len(lines) > 2 {
		f.Add(bytes.Join(lines[:2], nil)[:len(lines[0])+len(lines[1])/2])
	}
	// Sequence jump between chunks: drop a middle frame.
	if len(lines) > 3 {
		f.Add(append(append([]byte(nil), lines[0]...), bytes.Join(lines[2:], nil)...))
	}
	// Legacy single-frame snapshot.
	h.mu.RLock()
	h.commitMu.Lock()
	v1, _ := h.captureLocked()
	h.commitMu.Unlock()
	h.mu.RUnlock()
	if frame, err := encodeSnapshot(v1, 0); err == nil {
		f.Add(frame)
	}
	// A manifest with no sections, and garbage.
	man := &snapManifest{V2: secManifest, Format: snapFormat}
	if frame, err := encodeManifest(man); err == nil {
		f.Add(frame)
	}
	f.Add([]byte("w1 1 00000000 0 \n"))
	f.Add([]byte(nil))
	f.Add([]byte(strings.Repeat("{", 100)))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, _, err := LoadSnapshot(bytes.NewReader(data))
		if err == nil && h == nil {
			t.Fatal("nil hub with nil error")
		}
		if err == nil {
			// A snapshot that loads must re-save cleanly.
			var buf bytes.Buffer
			if _, err := h.SaveSnapshot(&buf); err != nil {
				t.Fatalf("accepted snapshot does not re-save: %v", err)
			}
		}
	})
}

// fuzzHub builds a small ingested hub for seed generation.
func fuzzHub(f *testing.F) (*Hub, *datagen.MultiWorkload) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 2, Entities: 12, PresenceFrac: 0.8, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 5,
	})
	h, err := NewFromMulti(w)
	if err != nil {
		f.Fatal(err)
	}
	for _, res := range h.IngestBatch(MultiInserts(w)) {
		if res.Err != nil {
			f.Fatal(res.Err)
		}
	}
	return h, w
}

// Degraded-mode state machine: how the hub serves through a failing
// disk instead of dying on it. A WAL append or snapshot failure that
// looks persistent (ENOSPC, EIO, a read-only remount — not a rejected
// tuple) moves the hub from Ready to Degraded: reads and cluster
// streaming keep serving from the published views, ingest fails fast
// with a typed ErrDegraded, and a background probe loop retries the
// disk with capped exponential backoff, flipping back to Ready on the
// first success. Because every mutation reaches the log *before* it
// touches memory, the failed append that triggers the transition was
// already rejected — acknowledged commits are never lost crossing
// either boundary.
//
// Poisoned is the terminal fail-closed state replacing the old
// commit-path invariant panics: an in-memory commit failed *after* its
// WAL append, so memory may have diverged from the log. Ingest is
// refused permanently (probes never clear poison); reads keep serving
// the views, and a restart replays the log into a consistent state.
package hub

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"entityid/internal/wal"
)

// State is the hub's health state.
type State int32

// Health states. Transitions: Ready→Degraded (persistent I/O failure),
// Degraded→Ready (recovery probe succeeds), any→Poisoned (commit-path
// invariant violation; terminal).
const (
	StateReady State = iota
	StateDegraded
	StatePoisoned
)

// String renders the state for logs and the /readyz body.
func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateDegraded:
		return "degraded"
	case StatePoisoned:
		return "poisoned"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ErrDegraded is the sentinel every ingest rejection in degraded mode
// matches via errors.Is: the hub is read-only until its disk heals.
var ErrDegraded = errors.New("hub: degraded (read-only): ingest rejected")

// ErrPoisoned is the sentinel for the terminal fail-closed state: an
// in-memory commit failed after its WAL append, so ingest is refused
// until a restart replays the log.
var ErrPoisoned = errors.New("hub: poisoned: ingest refused until restart")

// DegradedError carries the I/O failure that degraded the hub.
// errors.Is(err, ErrDegraded) matches it.
type DegradedError struct{ Cause error }

func (e *DegradedError) Error() string {
	return fmt.Sprintf("%v (cause: %v)", ErrDegraded, e.Cause)
}
func (e *DegradedError) Unwrap() error        { return e.Cause }
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// PoisonedError carries the invariant violation that poisoned the hub.
// errors.Is(err, ErrPoisoned) matches it.
type PoisonedError struct{ Cause error }

func (e *PoisonedError) Error() string {
	return fmt.Sprintf("%v (cause: %v)", ErrPoisoned, e.Cause)
}
func (e *PoisonedError) Unwrap() error        { return e.Cause }
func (e *PoisonedError) Is(target error) bool { return target == ErrPoisoned }

// Health is a point-in-time snapshot of the hub's health state.
type Health struct {
	// State is the current health state.
	State State
	// Cause is the failure that left Ready ("" while Ready).
	Cause string
	// Since is when the current state was entered.
	Since time.Time
	// Probes counts recovery probes attempted in the current degraded
	// episode (reset on recovery).
	Probes int
	// Recoveries counts completed Degraded→Ready transitions over the
	// hub's lifetime.
	Recoveries int
}

// healthState holds the hub's health fields. state is an atomic so the
// ingest fast path (one load, branch-free while Ready) never takes the
// mutex; the mutex covers the slow transitions and the descriptive
// fields.
type healthState struct {
	state atomic.Int32
	//entitylint:lock rank=85
	mu         sync.Mutex
	cause      error
	since      time.Time
	probes     int
	recoveries int
}

// Health reports the hub's current health.
func (h *Hub) Health() Health {
	h.health.mu.Lock()
	defer h.health.mu.Unlock()
	out := Health{
		State:      State(h.health.state.Load()),
		Since:      h.health.since,
		Probes:     h.health.probes,
		Recoveries: h.health.recoveries,
	}
	if h.health.cause != nil {
		out.Cause = h.health.cause.Error()
	}
	return out
}

// healthErr is the ingest fast path: nil while Ready (a single atomic
// load), a typed rejection otherwise.
func (h *Hub) healthErr() error {
	switch State(h.health.state.Load()) {
	case StateReady:
		return nil
	case StatePoisoned:
		h.health.mu.Lock()
		defer h.health.mu.Unlock()
		return &PoisonedError{Cause: h.health.cause}
	default:
		h.health.mu.Lock()
		defer h.health.mu.Unlock()
		return &DegradedError{Cause: h.health.cause}
	}
}

// ingestFailed classifies an ingest-path persistence failure. A
// persistent I/O error degrades the hub and is returned wrapped as a
// DegradedError; anything else (an encoding bug, a transient blip)
// passes through unchanged — the single failed request sees it, the
// hub stays read-write.
func (h *Hub) ingestFailed(err error) error {
	if !isPersistentIO(err) {
		return err
	}
	h.degrade(err)
	return &DegradedError{Cause: err}
}

// degrade moves Ready→Degraded and starts the recovery probe loop.
// Repeat calls while already degraded (or poisoned) are no-ops.
func (h *Hub) degrade(cause error) {
	h.health.mu.Lock()
	if !h.health.state.CompareAndSwap(int32(StateReady), int32(StateDegraded)) {
		h.health.mu.Unlock()
		return
	}
	h.health.cause = cause
	h.health.since = time.Now()
	h.health.probes = 0
	h.health.mu.Unlock()
	mHealthState.Set(int64(StateDegraded))
	if h.per != nil {
		h.per.startProbes(h)
	}
}

// poison moves the hub to the terminal fail-closed state and returns
// the typed error the failed call surfaces. It replaces the old
// commit-path panics: the WAL already holds the record whose in-memory
// commit failed, so memory may have diverged from the log — refusing
// all further ingest (while reads keep serving the published views)
// and replaying the log on restart is the only path that cannot make
// the divergence worse.
func (h *Hub) poison(cause error) error {
	h.health.mu.Lock()
	defer h.health.mu.Unlock()
	if State(h.health.state.Load()) != StatePoisoned {
		h.health.state.Store(int32(StatePoisoned))
		h.health.cause = cause
		h.health.since = time.Now()
		mHealthState.Set(int64(StatePoisoned))
	}
	return &PoisonedError{Cause: h.health.cause}
}

// recoverHealth completes a degraded episode: Degraded→Ready. Poison is
// never cleared.
func (h *Hub) recoverHealth() {
	h.health.mu.Lock()
	defer h.health.mu.Unlock()
	if !h.health.state.CompareAndSwap(int32(StateDegraded), int32(StateReady)) {
		return
	}
	h.health.cause = nil
	h.health.since = time.Now()
	h.health.probes = 0
	h.health.recoveries++
	mHealthState.Set(int64(StateReady))
	mRecoveries.Inc()
}

// noteProbe counts a recovery probe attempt.
func (h *Hub) noteProbe() {
	h.health.mu.Lock()
	h.health.probes++
	h.health.mu.Unlock()
	mProbes.Inc()
}

// isPersistentIO classifies a persistence failure as the kind that will
// keep failing until an operator or the environment intervenes — a full
// or dying disk, a read-only remount, an unusable log — as opposed to a
// per-request rejection (schema violation, oversized record) that says
// nothing about the next request.
func isPersistentIO(err error) bool {
	for _, target := range []error{
		syscall.ENOSPC, // disk full
		syscall.EDQUOT, // quota exhausted
		syscall.EIO,    // device-level I/O failure
		syscall.EROFS,  // read-only filesystem
		syscall.ENODEV, // device gone
	} {
		if errors.Is(err, target) {
			return true
		}
	}
	// The log declared itself unusable (failed append whose rollback
	// also failed) or hit a torn write: no append can succeed until
	// Heal does.
	return errors.Is(err, wal.ErrLogUnusable) || errors.Is(err, wal.ErrTornWrite)
}

// Streaming dataflow ingest: the hub's write path as a pipeline of
// bounded-channel stages instead of a batch barrier.
//
// Ingest work flows through three resident single-goroutine stages,
//
//	feeder → [admit] → [encode] → [commit] → results
//
// connected by bounded channels: admit validates the stream context,
// hub health and the target source against the lock-free topology
// snapshot; encode pre-marshals the tuple's write-ahead-log payload off
// the commit path; commit runs the existing Insert commit path —
// blocking (hash-join candidate generation), per-pair matching and the
// cluster fold all happen inside it, under the same per-source,
// per-pair and commit locks as a direct Insert, so per-item semantics
// (WAL write-ahead, §3.2 uniqueness, all-or-nothing per insert) are
// preserved bit-for-bit. The commit stage is deliberately not split
// further: a federate Pending is only valid while the pair locks are
// held, so blocking/matching cannot be committed by a different
// goroutine than the one that prepared them. What the pipeline overlaps
// is everything around the locked region — decoding, validation and WAL
// encoding of the next tuples proceed while the current one commits.
//
// Every channel is bounded, so a slow consumer backpressures the whole
// chain — feeder stalls, then the HTTP decoder, then the client's TCP
// window — and pipeline memory stays O(stage buffers), never O(stream).
// Each stream additionally carries a credit window bounding its own
// in-flight items, which keeps one stalled stream from absorbing the
// stage buffers' capacity indefinitely and makes the per-stream done
// queue non-blocking by construction.
//
// Ordering and durability: stages are single goroutines over FIFO
// channels, so commits happen in submission order per stream — the
// committed set after a crash is always a prefix of the submitted
// order, and every acknowledged result is committed (acked ⊆
// committed). Under the opt-in group-commit fsync policy (SyncEvery),
// the commit stage flushes by *flush epoch*: whenever its input drains
// — the natural batch boundary of a bursty stream — and when a stream
// ends, any appends since the last epoch are fsynced; an epoch in which
// nothing reached the log skips the fsync entirely.
//
// Lifecycle: the stages are spawned when the first stream attaches and
// exit when the last one detaches (the input channel closes and the
// chain drains), so an idle or memory-only hub owns no pipeline
// goroutines and tests' goroutine-leak guards stay clean.
package hub

import (
	"context"
	"fmt"
	"sync"

	"entityid/internal/obs"
	"entityid/internal/relation"
	"entityid/internal/wal"
)

const (
	// defaultStreamWindow bounds one stream's in-flight items (fed but
	// not yet consumed by the caller) when StreamOptions.Window is 0.
	defaultStreamWindow = 64
	// stageBuf is each stage input channel's capacity: deep enough to
	// decouple stage hiccups, shallow enough that pipeline memory stays
	// a few hundred tuples regardless of stream length.
	stageBuf = 64
)

// pipeline is the resident stage machinery, embedded in Hub. Stages
// spawn when active goes 0→1 and exit after it returns to 0; wg tracks
// a generation's stages so the next generation never runs concurrently
// with a draining predecessor.
type pipeline struct {
	//entitylint:lock rank=5
	mu     sync.Mutex
	active int
	in     chan *pipeJob
	wg     sync.WaitGroup
}

// pipeJob is one unit of pipeline work: an insert on its way through
// the stages, or the end-of-stream sentinel.
type pipeJob struct {
	s   *stream
	seq int
	eos bool
	src string
	t   relation.Tuple
	// payload is the pre-encoded WAL record, set by the encode stage on
	// durable hubs so the commit stage appends without marshaling.
	payload []byte
	// rejected short-circuits the remaining stages: res already holds
	// the outcome (admission failure, encode failure, canceled stream).
	rejected bool
	res      StreamResult
}

// stream is one attached producer: its cancellation context, credit
// window and completion queue. done's capacity (window+1: every
// in-flight item holds a credit, plus one eos sentinel) guarantees the
// commit stage's delivery never blocks, so one stream's stalled
// consumer can never wedge the shared commit stage.
type stream struct {
	ctx     context.Context
	credits chan struct{}
	done    chan *pipeJob
}

// StreamOptions configures IngestStream.
type StreamOptions struct {
	// Window bounds the stream's in-flight items: once Window items are
	// past the feeder but not yet consumed from the result channel, the
	// feeder stalls (and backpressure propagates to the input channel).
	// 0 means the default (64).
	Window int
}

// StreamResult is one IngestStream outcome. Seq is the item's 0-based
// position in the input stream; results are delivered in Seq order.
type StreamResult struct {
	Seq     int
	Receipt *Receipt
	Err     error
}

// attach registers a producer with the pipeline, spawning the stage
// goroutines if this is the first, and returns the input channel to
// feed. Every attach must be paired with exactly one detach after the
// producer's last send.
func (h *Hub) pipeAttach() chan<- *pipeJob {
	p := &h.pipe
	p.mu.Lock()
	defer p.mu.Unlock()
	p.active++
	if p.active == 1 {
		// A previous generation may still be draining its closed
		// channels; its stages must be fully gone before new ones share
		// the metrics and the WAL flush cursor.
		p.wg.Wait()
		in := make(chan *pipeJob, stageBuf)
		mid := make(chan *pipeJob, stageBuf)
		end := make(chan *pipeJob, stageBuf)
		p.in = in
		p.wg.Add(3)
		go func() { defer p.wg.Done(); h.admitStage(in, mid) }()
		go func() { defer p.wg.Done(); h.encodeStage(mid, end) }()
		go func() { defer p.wg.Done(); h.commitStage(end) }()
	}
	return p.in
}

// detach drops one producer; the last one out closes the input channel
// and the stages drain and exit.
func (h *Hub) pipeDetach() {
	p := &h.pipe
	p.mu.Lock()
	defer p.mu.Unlock()
	p.active--
	if p.active == 0 {
		close(p.in)
	}
}

// pipeSend hands a job to a stage input, counting queue depth and —
// when the channel is full — the backpressure stall.
func pipeSend(ch chan<- *pipeJob, j *pipeJob, depth *obs.Gauge, stall *obs.Counter) {
	depth.Add(1)
	select {
	case ch <- j:
		return
	default:
	}
	stall.Inc()
	ch <- j
}

// pipeSendCtx is pipeSend for the feeder, which must stay cancelable:
// false means the context fired before the job was accepted.
func pipeSendCtx(ctx context.Context, ch chan<- *pipeJob, j *pipeJob, depth *obs.Gauge, stall *obs.Counter) bool {
	depth.Add(1)
	select {
	case ch <- j:
		return true
	default:
	}
	stall.Inc()
	select {
	case ch <- j:
		return true
	case <-ctx.Done():
		depth.Add(-1)
		return false
	}
}

// admitStage validates each job before it costs anything: stream still
// live, hub healthy, source registered (against the lock-free topology
// snapshot — the commit path re-resolves authoritatively under its own
// locks). Rejections keep flowing through the pipe so results stay in
// submission order.
func (h *Hub) admitStage(in <-chan *pipeJob, next chan<- *pipeJob) {
	for j := range in {
		depthAdmit.Add(-1)
		if !j.eos && !j.rejected {
			if err := j.s.ctx.Err(); err != nil {
				j.rejected = true
				j.res = StreamResult{Seq: j.seq, Err: fmt.Errorf("hub: source %q: ingest canceled: %w", j.src, err)}
			} else if err := h.healthErr(); err != nil {
				ingestUnavailable.Inc()
				j.rejected = true
				j.res = StreamResult{Seq: j.seq, Err: fmt.Errorf("hub: source %q: %w", j.src, err)}
			} else if _, ok := h.topo.Load().byName[j.src]; !ok {
				j.rejected = true
				j.res = StreamResult{Seq: j.seq, Err: fmt.Errorf("hub: unknown source %q", j.src)}
			}
		}
		pipeSend(next, j, depthEncode, stallEncode)
	}
	close(next)
}

// encodeStage pre-marshals the WAL payload on durable hubs, so the
// commit stage's write-ahead append is a pure log write — the encoding
// of tuple N+1 overlaps the commit of tuple N.
func (h *Hub) encodeStage(in <-chan *pipeJob, next chan<- *pipeJob) {
	for j := range in {
		depthEncode.Add(-1)
		if !j.eos && !j.rejected && h.per != nil {
			env := wal.Envelope{Type: wal.TypeInsert, Insert: &wal.InsertRec{
				Source: j.src,
				Tuple:  wal.EncodeTuple(j.t),
			}}
			payload, err := env.Encode()
			if err != nil {
				j.rejected = true
				j.res = StreamResult{Seq: j.seq, Err: fmt.Errorf("hub: source %q: %w", j.src, err)}
			} else {
				j.payload = payload
			}
		}
		pipeSend(next, j, depthCommit, stallCommit)
	}
	close(next)
}

// commitStage runs the serialized tail of the pipeline: each job takes
// the full Insert commit path (prepare/block/match under the pair
// locks, transitive uniqueness, WAL append, apply, cluster fold), then
// its result is delivered to its stream's done queue — which never
// blocks, by the queue's capacity invariant. Whenever the input drains,
// and when the stage shuts down, a flush epoch ends: appends since the
// last epoch are fsynced under the group-commit policy, and an epoch
// with no appends skips the fsync.
func (h *Hub) commitStage(in <-chan *pipeJob) {
	var flushed int64
	if h.per != nil {
		flushed = h.per.appended.Load()
	}
	for {
		var j *pipeJob
		var ok bool
		select {
		case j, ok = <-in:
		default:
			// Input drained: the burst is over, close the flush epoch
			// before blocking for the next one.
			h.flushEpoch(&flushed)
			j, ok = <-in
		}
		if !ok {
			h.flushEpoch(&flushed)
			return
		}
		depthCommit.Add(-1)
		if !j.eos && !j.rejected {
			rec, err := h.insertTraced(j.src, j.t, j.payload)
			j.res = StreamResult{Seq: j.seq, Receipt: rec, Err: err}
		}
		j.s.done <- j
	}
}

// flushEpoch closes one group-commit window: pending WAL appends are
// forced to stable storage, unless nothing was appended since the last
// epoch (a drained pipe of rejections costs no fsync).
func (h *Hub) flushEpoch(flushed *int64) {
	if h.per == nil {
		return
	}
	cur := h.per.appended.Load()
	if cur == *flushed {
		return
	}
	*flushed = cur
	mPipeFlushEpochs.Inc()
	h.per.flushSync()
}

// IngestStream feeds an insert stream through the resident dataflow
// pipeline: items are read from in until it closes or ctx fires,
// committed strictly in order, and each outcome is delivered on the
// returned channel (closed after the last result). At most
// StreamOptions.Window items are in flight between the feeder and the
// consumer, so a slow consumer stalls the stream at bounded memory
// instead of buffering it.
//
// Cancellation leaves an acked-prefix-committed hub: commits happen in
// submission order, every result delivered before ctx fired is
// committed (and WAL-logged ahead), and items after the cancellation
// point are either rejected with the context error or never read.
func (h *Hub) IngestStream(ctx context.Context, in <-chan Insert, opts StreamOptions) <-chan StreamResult {
	if ctx == nil {
		ctx = context.Background()
	}
	window := opts.Window
	if window <= 0 {
		window = defaultStreamWindow
	}
	s := &stream{
		ctx:     ctx,
		credits: make(chan struct{}, window),
		done:    make(chan *pipeJob, window+1),
	}
	out := make(chan StreamResult, window)
	pin := h.pipeAttach()
	mPipeStreams.Inc()
	// Feeder: credit-gate each item into the pipe, then always terminate
	// the stream with an eos sentinel — even on cancellation — so the
	// pump knows when the stream's tail has fully drained.
	go func() {
	feed:
		for seq := 0; ; seq++ {
			var item Insert
			var ok bool
			select {
			case item, ok = <-in:
				if !ok {
					break feed
				}
			case <-ctx.Done():
				break feed
			}
			select {
			case s.credits <- struct{}{}:
			case <-ctx.Done():
				break feed
			}
			j := &pipeJob{s: s, seq: seq, src: item.Source, t: item.Tuple}
			if !pipeSendCtx(ctx, pin, j, depthAdmit, stallAdmit) {
				<-s.credits // the job never entered the pipe
				break feed
			}
		}
		pipeSend(pin, &pipeJob{s: s, eos: true}, depthAdmit, stallAdmit)
	}()
	// Pump: deliver results in order, releasing each item's credit once
	// the consumer has it. After cancellation results are dropped (the
	// commits behind them stand), and the eos sentinel closes out and
	// detaches the stream.
	go func() {
		for {
			j := <-s.done
			if j.eos {
				close(out)
				h.pipeDetach()
				return
			}
			if ctx.Err() == nil {
				select {
				case out <- j.res:
				case <-ctx.Done():
				}
			}
			<-s.credits
		}
	}()
	return out
}

// ingestBatchPipeline runs a multi-item batch through the resident
// pipeline from the caller's goroutine: one select loop interleaves
// feeding and result collection, so the batch API spawns no goroutines
// at all — the resident stages do the work.
func (h *Hub) ingestBatchPipeline(items []Insert, out []InsertResult) {
	s := &stream{ctx: context.Background(), done: make(chan *pipeJob, defaultStreamWindow+1)}
	pin := h.pipeAttach()
	defer h.pipeDetach()
	fed, got, inflight := 0, 0, 0
	record := func(j *pipeJob) {
		out[j.seq] = InsertResult{Receipt: j.res.Receipt, Err: j.res.Err}
		got++
		inflight--
	}
	for got < len(items) {
		if fed < len(items) && inflight < defaultStreamWindow {
			j := &pipeJob{s: s, seq: fed, src: items[fed].Source, t: items[fed].Tuple}
			depthAdmit.Add(1)
			select {
			case pin <- j:
				fed++
				inflight++
			case d := <-s.done:
				depthAdmit.Add(-1) // j was not sent; retry next turn
				record(d)
			}
			continue
		}
		record(<-s.done)
	}
}

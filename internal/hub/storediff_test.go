package hub

// Randomized differential harness for the storage backends: the same
// workload — source registration, links, shuffled ingest with planted
// rejects, snapshots, a crash, recovery — is driven through a
// memory-backed hub and a disk-backed hub whose hot tiers are squeezed
// far below the working set, and every served surface must be
// bit-for-bit identical: the full cluster partition, per-pair matching
// tables, canonical relations, point reads, and pagination at several
// page sizes. The memory backend is the executable specification; the
// disk backend must be indistinguishable through the public surface.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"entityid/internal/datagen"
	"entityid/internal/relation"
)

// diffWorkload generates the K-source workload the differential tests
// share.
func diffWorkload(seed int64) *datagen.MultiWorkload {
	return datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 4, Entities: 50, PresenceFrac: 0.6, HomonymRate: 0.25,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: seed,
	})
}

// openPair opens a mem-backed and a disk-backed hub over fresh
// directories, the disk hub's hot tiers squeezed so most of the state
// lives cold.
func openPair(t *testing.T, snapEvery int) (hm, hd *Hub) {
	t.Helper()
	hm = openBackend(t, t.TempDir(), "mem", snapEvery)
	hd = openBackend(t, t.TempDir(), "disk", snapEvery)
	return hm, hd
}

func openBackend(t *testing.T, dir, backend string, snapEvery int) *Hub {
	t.Helper()
	h, _, err := Open(dir, Options{
		SnapshotEvery: snapEvery,
		Store:         backend,
		// Squeeze the disk tiers: a handful of resident cluster
		// members and a single resident pair, so reads and snapshots
		// constantly page cold state back in.
		HotClusterEntries: 16,
		HotPairs:          1,
	})
	if err != nil {
		t.Fatalf("open %s hub: %v", backend, err)
	}
	return h
}

// seedTopology registers the workload's sources (empty) and links every
// pair on both hubs.
func seedTopology(t *testing.T, w *datagen.MultiWorkload, hubs ...*Hub) {
	t.Helper()
	for _, h := range hubs {
		for k, name := range w.Names {
			if err := h.AddSource(name, relation.New(w.Relations[k].Schema())); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < len(w.Names); i++ {
			for j := i + 1; j < len(w.Names); j++ {
				if err := h.Link(SpecFromMultiPair(w.Pair(i, j))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// mustEqualServed compares every served surface of the two hubs:
// the full observable state, point reads for every committed tuple,
// and pagination at several page sizes.
func mustEqualServed(t *testing.T, label string, hm, hd *Hub) {
	t.Helper()
	mustEqualState(t, label, stateOf(hd), stateOf(hm))

	// Point reads: every (source, index) must serve the same cluster.
	for _, s := range hm.sources {
		for i := 0; i < s.rel.Len(); i++ {
			cm, err := hm.ClusterAt(s.name, i)
			if err != nil {
				t.Fatalf("%s: mem ClusterAt(%s,%d): %v", label, s.name, i, err)
			}
			cd, err := hd.ClusterAt(s.name, i)
			if err != nil {
				t.Fatalf("%s: disk ClusterAt(%s,%d): %v", label, s.name, i, err)
			}
			if !reflect.DeepEqual(cm, cd) {
				t.Fatalf("%s: ClusterAt(%s,%d) diverges:\nmem:  %+v\ndisk: %+v", label, s.name, i, cm, cd)
			}
		}
	}

	// Pagination: identical pages, cursors and order at any page size.
	for _, limit := range []int{1, 3, 7, 1 << 20} {
		curM, curD := "", ""
		for page := 0; ; page++ {
			pm, nextM, err := hm.ClustersPage(curM, limit)
			if err != nil {
				t.Fatalf("%s: mem page %d: %v", label, page, err)
			}
			pd, nextD, err := hd.ClustersPage(curD, limit)
			if err != nil {
				t.Fatalf("%s: disk page %d: %v", label, page, err)
			}
			if !reflect.DeepEqual(pm, pd) || nextM != nextD {
				t.Fatalf("%s: page %d (limit %d) diverges: mem %d clusters next %q, disk %d clusters next %q",
					label, page, limit, len(pm), nextM, len(pd), nextD)
			}
			if nextM == "" {
				break
			}
			curM, curD = nextM, nextD
		}
	}
}

// TestStoreDifferentialMemVsDisk drives the same randomized workload
// through both backends and demands indistinguishable served state at
// a mid-stream checkpoint, at quiescence, and again after a crash and
// recovery of both.
func TestStoreDifferentialMemVsDisk(t *testing.T) {
	for _, seed := range []int64{7, 19} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			w := diffWorkload(seed)
			hm, hd := openPair(t, 40)
			seedTopology(t, w, hm, hd)

			items := MultiInserts(w)
			rand.New(rand.NewSource(seed)).Shuffle(len(items), func(a, b int) {
				items[a], items[b] = items[b], items[a]
			})
			insertBoth := func(label string, batch []Insert) {
				t.Helper()
				for i, it := range batch {
					_, errM := hm.Insert(it.Source, it.Tuple)
					_, errD := hd.Insert(it.Source, it.Tuple)
					if (errM == nil) != (errD == nil) {
						t.Fatalf("%s insert %d: outcomes diverge: mem %v, disk %v", label, i, errM, errD)
					}
				}
			}

			half := len(items) / 2
			insertBoth("first-half", items[:half])
			// Planted rejects: re-inserting committed tuples violates
			// per-source uniqueness identically on both backends.
			insertBoth("dup-replay", items[:min(10, half)])
			mustEqualServed(t, "mid-stream", hm, hd)

			insertBoth("second-half", items[half:])
			if err := hm.SnapshotNow(); err != nil {
				t.Fatal(err)
			}
			if err := hd.SnapshotNow(); err != nil {
				t.Fatal(err)
			}
			mustEqualServed(t, "quiescent", hm, hd)

			// The disk hub must actually have exercised its tiers, or
			// the test proves nothing.
			si := hd.StoreInfo()
			if si.Backend != "disk" {
				t.Fatalf("disk hub backend = %q", si.Backend)
			}
			if si.Clusters.Spills == 0 || si.Clusters.PageIns == 0 {
				t.Fatalf("disk hub never spilled/paged clusters: %+v", si.Clusters)
			}
			if si.Pairs.Spilled == 0 && si.Pairs.Spills == 0 {
				t.Fatalf("disk hub never spilled a pair: %+v", si.Pairs)
			}

			// Crash both (background work drained, flock dropped, spill
			// tier abandoned) and recover: the disk backend's cold tier
			// is a cache, so recovery must reproduce everything from the
			// WAL and snapshots alone.
			dirM, dirD := hm.per.dir, hd.per.dir
			hm.per.quiesce()
			hd.per.quiesce()
			hm = openBackend(t, dirM, "mem", 40)
			hd = openBackend(t, dirD, "disk", 40)
			defer hm.Close()
			defer hd.Close()
			mustEqualServed(t, "recovered", hm, hd)
		})
	}
}

// TestDiskStoreBoundedResidency holds the disk backend to its budget
// under a working set several times larger than the hot tier: resident
// cluster entries never exceed the budget at quiescence, a substantial
// cold tier exists, and the served partition still matches a
// memory-backed reference.
func TestDiskStoreBoundedResidency(t *testing.T) {
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 120, PresenceFrac: 0.7, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 5,
	})
	const budget = 24
	hd, _, err := Open(t.TempDir(), Options{
		Store: "disk", HotClusterEntries: budget, HotPairs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hd.Close()
	hr, err := NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	seedTopology(t, w, hd)
	for _, res := range hd.IngestBatch(MultiInserts(w)) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	for _, res := range hr.IngestBatch(MultiInserts(w)) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}

	st := hd.clusters.Stats()
	if st.HotEntries > budget {
		t.Fatalf("hot tier over budget at quiescence: %d resident entries, budget %d", st.HotEntries, budget)
	}
	var entries int
	for _, c := range hd.Clusters() {
		entries += len(c.Members)
	}
	if entries < 4*budget {
		t.Fatalf("working set too small to prove anything: %d member entries vs budget %d (want >= 4x); grow the workload", entries, budget)
	}
	total := st.HotRecords + st.ColdRecords
	if st.ColdRecords*4 < total*3 {
		t.Fatalf("working set does not dwarf the hot tier: %d cold of %d records (want >= 3/4 cold); grow the workload",
			st.ColdRecords, total)
	}
	if got, want := partitionIDs(hd), partitionIDs(hr); !reflect.DeepEqual(got, want) {
		t.Fatalf("disk partition diverges from memory reference:\ndisk: %v\nmem:  %v", got, want)
	}
	// And the full deep comparison.
	mustEqualState(t, "bounded-residency", stateOf(hd), stateOf(hr))
}

// partitionIDs flattens a hub's partition to cluster IDs with member
// counts — a quick structural fingerprint before the deep comparison.
func partitionIDs(h *Hub) []string {
	var out []string
	for _, c := range h.Clusters() {
		out = append(out, fmt.Sprintf("%s#%d", c.ID, len(c.Members)))
	}
	return out
}

package hub_test

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"entityid/internal/datagen"
	"entityid/internal/hub"
	"entityid/internal/match"
	"entityid/internal/relation"
	"entityid/internal/resolve"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// fourSourceHub builds the hand-written topology used by the
// transitive-uniqueness tests: four autonomous sources with one
// attribute pair each in common, so every link matches on a different
// extended key —
//
//	A(id, name, code)   ── name ──  B(id, name, phone)
//	   │ code                          │ phone
//	C(id, code, city)   ── city ──  D(id, phone, city)
func fourSourceHub(t *testing.T) *hub.Hub {
	t.Helper()
	h := hub.New()
	mk := func(name string, attrs ...string) {
		t.Helper()
		as := make([]schema.Attribute, len(attrs))
		for i, a := range attrs {
			as[i] = schema.Attribute{Name: a, Kind: value.KindString}
		}
		rel := relation.New(schema.MustNew(name, as, []string{"id"}))
		if err := h.AddSource(name, rel); err != nil {
			t.Fatal(err)
		}
	}
	mk("A", "id", "name", "code")
	mk("B", "id", "name", "phone")
	mk("C", "id", "code", "city")
	mk("D", "id", "phone", "city")
	link := func(left, right, shared string) {
		t.Helper()
		err := h.Link(hub.PairSpec{
			Left:  left,
			Right: right,
			Attrs: []match.AttrMap{
				{Name: shared, R: shared, S: shared},
				{Name: "id_" + left, R: "id", S: ""},
				{Name: "id_" + right, R: "", S: "id"},
			},
			ExtKey: []string{shared},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	link("A", "B", "name")
	link("A", "C", "code")
	link("B", "D", "phone")
	link("C", "D", "city")
	return h
}

func ins(t *testing.T, h *hub.Hub, source string, vals ...string) *hub.Receipt {
	t.Helper()
	tup := make(relation.Tuple, len(vals))
	for i, v := range vals {
		tup[i] = value.String(v)
	}
	rec, err := h.Insert(source, tup)
	if err != nil {
		t.Fatalf("insert %s %v: %v", source, vals, err)
	}
	return rec
}

func TestHubClustersAcrossPairs(t *testing.T) {
	h := fourSourceHub(t)
	ins(t, h, "A", "a0", "n1", "k1")
	rec := ins(t, h, "B", "b0", "n1", "p9")
	if len(rec.Matched) != 1 || rec.Matched[0].Source != "A" || rec.Matched[0].Index != 0 {
		t.Fatalf("b0 matched %v, want A/0", rec.Matched)
	}
	if got := len(rec.Cluster.Members); got != 2 {
		t.Fatalf("cluster size %d, want 2", got)
	}
	// d0 matches b0 on phone; the cluster becomes {a0, b0, d0}
	// transitively even though A and D share no link.
	rec = ins(t, h, "D", "d0", "p9", "mpls")
	if got := len(rec.Cluster.Members); got != 3 {
		t.Fatalf("cluster size %d, want 3", got)
	}
	cl, err := h.Lookup("A", value.String("a0"))
	if err != nil {
		t.Fatal(err)
	}
	var srcs []string
	for _, m := range cl.Members {
		srcs = append(srcs, fmt.Sprintf("%s/%d", m.Source, m.Index))
	}
	if got, want := strings.Join(srcs, ","), "A/0,B/0,D/0"; got != want {
		t.Fatalf("cluster members %q, want %q", got, want)
	}
	if cl.ID != "A/0" {
		t.Fatalf("cluster ID %q, want A/0", cl.ID)
	}
}

func TestHubRejectsTransitiveUniquenessViolationWithRollback(t *testing.T) {
	h := fourSourceHub(t)
	ins(t, h, "A", "a0", "n1", "k1")
	ins(t, h, "A", "a1", "n2", "k2")
	ins(t, h, "B", "b0", "n1", "p9")   // cluster {a0, b0} via name
	ins(t, h, "C", "c0", "k2", "mpls") // cluster {a1, c0} via code

	before := h.Stats()
	// d0 matches b0 on phone (pair B-D) and c0 on city (pair C-D); both
	// pairwise matches are individually sound, but the union would put
	// a0 and a1 — two tuples of source A — into one cluster.
	_, err := h.Insert("D", relation.Tuple{
		value.String("d0"), value.String("p9"), value.String("mpls"),
	})
	if err == nil {
		t.Fatal("transitive uniqueness violation not rejected")
	}
	if !strings.Contains(err.Error(), "transitive uniqueness") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Rollback: nothing changed anywhere — no tuple in D, no pairwise
	// matches added, clusters as before.
	if after := h.Stats(); !reflect.DeepEqual(before, after) {
		t.Fatalf("state changed by rejected insert: %+v -> %+v", before, after)
	}
	if n, _ := h.SourceLen("D"); n != 0 {
		t.Fatalf("D has %d tuples after rejected insert, want 0", n)
	}
	// The hub keeps serving: a non-violating D tuple goes through.
	rec := ins(t, h, "D", "d1", "p7", "duluth")
	if len(rec.Matched) != 0 || len(rec.Cluster.Members) != 1 {
		t.Fatalf("benign insert after rejection: %+v", rec)
	}
}

func TestHubLinkFoldsSeededSources(t *testing.T) {
	// Sources seeded before Link: the initial matching tables fold into
	// clusters at link time.
	h := hub.New()
	mkSeed := func(name string, rows [][]string, attrs ...string) {
		as := make([]schema.Attribute, len(attrs))
		for i, a := range attrs {
			as[i] = schema.Attribute{Name: a, Kind: value.KindString}
		}
		rel := relation.New(schema.MustNew(name, as, []string{"id"}))
		for _, row := range rows {
			if err := rel.InsertStrings(row...); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.AddSource(name, rel); err != nil {
			t.Fatal(err)
		}
	}
	mkSeed("A", [][]string{{"a0", "n1"}, {"a1", "n2"}}, "id", "name")
	mkSeed("B", [][]string{{"b0", "n2"}}, "id", "name")
	err := h.Link(hub.PairSpec{
		Left: "A", Right: "B",
		Attrs: []match.AttrMap{
			{Name: "name", R: "name", S: "name"},
			{Name: "id_A", R: "id", S: ""},
			{Name: "id_B", R: "", S: "id"},
		},
		ExtKey: []string{"name"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := h.Lookup("B", value.String("b0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Members) != 2 || cl.ID != "A/1" {
		t.Fatalf("seeded link cluster = %+v", cl)
	}
	if st := h.Stats(); st.Clusters != 2 {
		t.Fatalf("clusters = %d, want 2 ({a1,b0} and {a0})", st.Clusters)
	}
}

func TestHubMergedView(t *testing.T) {
	h := fourSourceHub(t)
	ins(t, h, "A", "a0", "n1", "k1")
	ins(t, h, "B", "b0", "n1", "p9")
	ins(t, h, "D", "d0", "p9", "mpls")
	cl, err := h.Lookup("A", value.String("a0"))
	if err != nil {
		t.Fatal(err)
	}
	me, err := h.Merged(cl, resolve.Coalesce)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"name": "n1", "code": "k1", "phone": "p9", "city": "mpls",
		"id_A": "a0", "id_B": "b0", "id_D": "d0",
	}
	for attr, wv := range want {
		if got, ok := me.Values[attr]; !ok || got.String() != wv {
			t.Fatalf("merged %q = %v (present %v), want %s", attr, got, ok, wv)
		}
	}
	if len(me.Conflicts) != 0 {
		t.Fatalf("unexpected conflicts %v", me.Conflicts)
	}
}

func TestHubPairwiseStateEqualsBatchBuild(t *testing.T) {
	// Differential acceptance check: after concurrent streaming ingest,
	// each link's live matching table equals batch match.Build on the
	// final relations.
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 80, PresenceFrac: 0.6, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 7,
	})
	h, err := hub.NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	items := hub.MultiInserts(w)
	for i, res := range h.IngestBatch(items) {
		if res.Err != nil {
			t.Fatalf("insert %d (%s): %v", i, items[i].Source, res.Err)
		}
	}
	for i := 0; i < len(w.Names); i++ {
		for j := i + 1; j < len(w.Names); j++ {
			mp := w.Pair(i, j)
			live, err := h.PairResult(mp.Left, mp.Right)
			if err != nil {
				t.Fatal(err)
			}
			r, err := h.SourceRelation(mp.Left)
			if err != nil {
				t.Fatal(err)
			}
			s, err := h.SourceRelation(mp.Right)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := match.Build(match.Config{
				R: r, S: s, Attrs: mp.Attrs, ExtKey: mp.ExtKey, ILFDs: mp.ILFDs,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := append([]match.Pair(nil), live.MT.Pairs...)
			wantPairs := append([]match.Pair(nil), batch.MT.Pairs...)
			sortPairs(got)
			sortPairs(wantPairs)
			if !reflect.DeepEqual(got, wantPairs) {
				t.Fatalf("pair %s-%s: live MT %v != batch MT %v", mp.Left, mp.Right, got, wantPairs)
			}
			if err := live.Verify(); err != nil {
				t.Fatalf("pair %s-%s: live state unsound: %v", mp.Left, mp.Right, err)
			}
		}
	}
}

func sortPairs(ps []match.Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].RIndex != ps[b].RIndex {
			return ps[a].RIndex < ps[b].RIndex
		}
		return ps[a].SIndex < ps[b].SIndex
	})
}

func TestHubLinkRejectsTransitiveViolationFromSeededSources(t *testing.T) {
	// Link-time folding must apply the same transitive check as
	// inserts, counting the folded node's existing cluster: here the
	// first two links cluster {a0, b0, c0}, and the third link's
	// initial matching table pairs b0 with c1 — which would put c0 and
	// c1 of source C into one cluster.
	h := hub.New()
	mkSeed := func(name string, rows [][]string, attrs ...string) {
		t.Helper()
		as := make([]schema.Attribute, len(attrs))
		for i, a := range attrs {
			as[i] = schema.Attribute{Name: a, Kind: value.KindString}
		}
		rel := relation.New(schema.MustNew(name, as, []string{"id"}))
		for _, row := range rows {
			if err := rel.InsertStrings(row...); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.AddSource(name, rel); err != nil {
			t.Fatal(err)
		}
	}
	mkSeed("A", [][]string{{"a0", "n1", "k1"}}, "id", "name", "code")
	mkSeed("B", [][]string{{"b0", "n1", "p1"}}, "id", "name", "phone")
	mkSeed("C", [][]string{{"c0", "k1", "p9"}, {"c1", "k9", "p1"}}, "id", "code", "phone")
	link := func(left, right, shared string) error {
		return h.Link(hub.PairSpec{
			Left: left, Right: right,
			Attrs: []match.AttrMap{
				{Name: shared, R: shared, S: shared},
				{Name: "id_" + left, R: "id", S: ""},
				{Name: "id_" + right, R: "", S: "id"},
			},
			ExtKey: []string{shared},
		})
	}
	if err := link("A", "B", "name"); err != nil {
		t.Fatal(err)
	}
	if err := link("A", "C", "code"); err != nil {
		t.Fatal(err)
	}
	before := h.Stats()
	err := link("B", "C", "phone")
	if err == nil || !strings.Contains(err.Error(), "transitive uniqueness") {
		t.Fatalf("seeded link folding missed the violation: %v", err)
	}
	if after := h.Stats(); !reflect.DeepEqual(before, after) {
		t.Fatalf("rejected link changed state: %+v -> %+v", before, after)
	}
	for _, c := range h.Clusters() {
		seen := map[string]bool{}
		for _, m := range c.Members {
			if seen[m.Source] {
				t.Fatalf("cluster %s holds two tuples of %s", c.ID, m.Source)
			}
			seen[m.Source] = true
		}
	}
}

func TestHubLinkValidation(t *testing.T) {
	h := fourSourceHub(t)
	if err := h.Link(hub.PairSpec{Left: "A", Right: "B"}); err == nil {
		t.Fatal("duplicate link accepted")
	}
	if err := h.Link(hub.PairSpec{Left: "A", Right: "A"}); err == nil {
		t.Fatal("self link accepted")
	}
	if err := h.Link(hub.PairSpec{Left: "A", Right: "nope"}); err == nil {
		t.Fatal("unknown source accepted")
	}
	// Conflicting integrated-name mapping: A-D link claiming "name" maps
	// to A's "code" clashes with the A-B link's name→name.
	err := h.Link(hub.PairSpec{
		Left: "A", Right: "D",
		Attrs: []match.AttrMap{
			{Name: "name", R: "code", S: "phone"},
			{Name: "id_A", R: "id", S: ""},
			{Name: "id_D", R: "", S: "id"},
		},
		ExtKey: []string{"name"},
	})
	if err == nil || !strings.Contains(err.Error(), "maps to both") {
		t.Fatalf("conflicting attribute mapping: %v", err)
	}
}

package hub_test

// Randomized property tests for hub clustering: K sources with planted
// cross-source entities, inserts shuffled and fanned across goroutines.
// The global partition must be (a) order-independent — any
// schedule/shuffle yields the same clusters, (b) exactly the planted
// ground truth, (c) monotone — clusters observed mid-stream only ever
// grow or merge, never split, and (d) transitively sound — no cluster
// holds two tuples of one source. Tuples are identified by their
// (source, primary key) rather than position, since concurrent ingest
// permutes per-source insertion order.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"entityid/internal/datagen"
	"entityid/internal/hub"
)

// memberKey identifies a cluster member stably across insert orders.
func memberKey(m hub.Member) string {
	return m.Source + "|" + m.Tuple.Key()
}

// partition serialises a cluster set canonically: each cluster as its
// sorted member keys, clusters sorted.
func partition(cs []hub.Cluster) []string {
	out := make([]string, 0, len(cs))
	for _, c := range cs {
		keys := make([]string, 0, len(c.Members))
		for _, m := range c.Members {
			keys = append(keys, memberKey(m))
		}
		sort.Strings(keys)
		out = append(out, strings.Join(keys, " & "))
	}
	sort.Strings(out)
	return out
}

// truthPartition serialises the planted ground truth the same way.
func truthPartition(w *datagen.MultiWorkload) []string {
	var out []string
	for _, members := range w.TruthClusters() {
		keys := make([]string, 0, len(members))
		for _, m := range members {
			keys = append(keys, w.Names[m[0]]+"|"+w.Relations[m[0]].Tuple(m[1]).Key())
		}
		sort.Strings(keys)
		out = append(out, strings.Join(keys, " & "))
	}
	sort.Strings(out)
	return out
}

func TestHubClusteringProperties(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			w := datagen.MustMultiGenerate(datagen.MultiConfig{
				Sources: 4, Entities: 60, PresenceFrac: 0.6, HomonymRate: 0.25,
				MissingPhone: 0.1, DirtyPhone: 0.2, Seed: seed,
			})
			truth := truthPartition(w)
			base := hub.MultiInserts(w)

			var first []string
			for shuffle := int64(0); shuffle < 3; shuffle++ {
				h, err := hub.NewFromMulti(w)
				if err != nil {
					t.Fatal(err)
				}
				items := append([]hub.Insert(nil), base...)
				rand.New(rand.NewSource(seed*100+shuffle)).Shuffle(len(items), func(a, b int) {
					items[a], items[b] = items[b], items[a]
				})

				// Monotonicity probe: ingest the first half, snapshot.
				half := len(items) / 2
				for i, res := range h.IngestBatch(items[:half]) {
					if res.Err != nil {
						t.Fatalf("shuffle %d insert %d: %v", shuffle, i, res.Err)
					}
				}
				mid := h.Clusters()
				for i, res := range h.IngestBatch(items[half:]) {
					if res.Err != nil {
						t.Fatalf("shuffle %d insert %d: %v", shuffle, half+i, res.Err)
					}
				}
				final := h.Clusters()

				// (d) transitive soundness.
				for _, c := range final {
					seen := map[string]bool{}
					for _, m := range c.Members {
						if seen[m.Source] {
							t.Fatalf("cluster %s holds two tuples of source %s", c.ID, m.Source)
						}
						seen[m.Source] = true
					}
				}
				// (c) monotone: every mid-stream cluster's member set is
				// contained in exactly one final cluster.
				finalOf := map[string]string{}
				for _, c := range final {
					for _, m := range c.Members {
						finalOf[memberKey(m)] = c.ID
					}
				}
				for _, c := range mid {
					var home string
					for n, m := range c.Members {
						id, ok := finalOf[memberKey(m)]
						if !ok {
							t.Fatalf("mid-stream member %s lost", memberKey(m))
						}
						if n == 0 {
							home = id
						} else if id != home {
							t.Fatalf("mid-stream cluster %s split across final clusters %s and %s", c.ID, home, id)
						}
					}
				}
				// (a) order independence across shuffles and schedules.
				p := partition(final)
				if first == nil {
					first = p
				} else if !reflect.DeepEqual(first, p) {
					t.Fatalf("shuffle %d produced a different partition", shuffle)
				}
			}
			// (b) the partition is the planted ground truth.
			if !reflect.DeepEqual(first, truth) {
				t.Fatalf("partition differs from planted truth:\ngot  %d clusters\nwant %d clusters",
					len(first), len(truth))
			}
		})
	}
}

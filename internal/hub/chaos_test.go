package hub

// Chaos harness for the degraded-mode state machine: ENOSPC/EIO faults
// are injected through the errfs filesystem at every WAL append point,
// mid-rotation and between snapshot section writes, and the hub must
// (a) lose no acknowledged insert, (b) keep serving reads from the
// published views while degraded, (c) reject ingest fast with a typed
// ErrDegraded, and (d) re-enter read-write automatically once the
// faults clear — all under -race.

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"

	"entityid/internal/datagen"
	"entityid/internal/relation"
	"entityid/internal/wal"
	"entityid/internal/wal/errfs"
)

// chaosWorkload is the shared small multi-source workload.
func chaosWorkload(t *testing.T) (*datagen.MultiWorkload, []Insert, hubState) {
	t.Helper()
	w := datagen.MustMultiGenerate(datagen.MultiConfig{
		Sources: 3, Entities: 24, PresenceFrac: 0.65, HomonymRate: 0.2,
		MissingPhone: 0.1, DirtyPhone: 0.2, Seed: 31,
	})
	items := shuffled(w, 13)
	ref, err := NewFromMulti(w)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if _, err := ref.Insert(it.Source, it.Tuple); err != nil {
			t.Fatalf("reference insert %d: %v", i, err)
		}
	}
	return w, items, stateOf(ref)
}

// openChaosMulti opens a durable hub over the injected filesystem with
// fast recovery probes, registering the workload topology when fresh.
func openChaosMulti(t *testing.T, dir string, w *datagen.MultiWorkload, every int, fsys wal.FS) *Hub {
	t.Helper()
	h, info, err := Open(dir, Options{
		SnapshotEvery: every, FS: fsys,
		ProbeBackoff: 2 * time.Millisecond, ProbeBackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	if !info.FromSnapshot && info.LastSeq == 0 {
		for k, name := range w.Names {
			if err := h.AddSource(name, relation.New(w.Relations[k].Schema())); err != nil {
				t.Fatalf("add source %s: %v", name, err)
			}
		}
		for i := 0; i < len(w.Names); i++ {
			for j := i + 1; j < len(w.Names); j++ {
				if err := h.Link(SpecFromMultiPair(w.Pair(i, j))); err != nil {
					t.Fatalf("link %d-%d: %v", i, j, err)
				}
			}
		}
	}
	return h
}

// waitHealth spins until the hub reaches the wanted state (the probe
// loop runs on millisecond backoff in these tests).
func waitHealth(t *testing.T, h *Hub, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if State(h.health.state.Load()) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("hub never reached %v (stuck at %v, cause %q)", want, h.Health().State, h.Health().Cause)
}

// mustReadsServe asserts the degraded read paths still answer from the
// published views.
func mustReadsServe(t *testing.T, h *Hub, w *datagen.MultiWorkload) {
	t.Helper()
	served := 0
	for _, name := range w.Names {
		n, err := h.SourceLen(name)
		if err != nil {
			t.Fatalf("SourceLen(%s) while degraded: %v", name, err)
		}
		for i := 0; i < n; i++ {
			if _, err := h.ClusterAt(name, i); err != nil {
				t.Fatalf("ClusterAt(%s, %d) while degraded: %v", name, i, err)
			}
			served++
		}
	}
	count := 0
	for range h.ClustersIter() {
		count++
	}
	if served > 0 && count == 0 {
		t.Fatal("cluster streaming returned nothing while degraded")
	}
}

// TestChaosDegradedReadOnlyAndAutoRecovery is the main episode: a disk
// that stops accepting writes degrades the hub (typed rejection, state
// bit-for-bit frozen, reads serving), then heals, and the hub resumes
// read-write on its own and finishes the workload to the uninterrupted
// reference state — surviving a final crash/reopen too.
func TestChaosDegradedReadOnlyAndAutoRecovery(t *testing.T) {
	w, items, refState := chaosWorkload(t)
	fs := errfs.New(nil)
	dir := t.TempDir()
	h := openChaosMulti(t, dir, w, 0, fs)

	half := len(items) / 2
	for i := 0; i < half; i++ {
		if _, err := h.Insert(items[i].Source, items[i].Tuple); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	preFault := stateOf(h)

	// The disk dies: every write (WAL segments and the recovery canary
	// alike) fails with ENOSPC.
	fs.Inject(errfs.Rule{Op: errfs.OpWrite, Err: syscall.ENOSPC})
	if _, err := h.Insert(items[half].Source, items[half].Tuple); !errors.Is(err, ErrDegraded) {
		t.Fatalf("insert on failing disk = %v, want ErrDegraded", err)
	}
	// Later ingest fails fast on the health check, still typed, and a
	// control-plane write is refused the same way.
	if _, err := h.Insert(items[half].Source, items[half].Tuple); !errors.Is(err, ErrDegraded) {
		t.Fatalf("insert while degraded = %v, want ErrDegraded", err)
	}
	if err := h.Link(PairSpec{Left: "nope", Right: "nada"}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("link while degraded = %v, want ErrDegraded", err)
	}
	hh := h.Health()
	if hh.State != StateDegraded || hh.Cause == "" {
		t.Fatalf("health = %+v, want degraded with a cause", hh)
	}
	// Nothing moved: the failed append was rejected before any
	// in-memory commit.
	mustEqualState(t, "degraded vs pre-fault", stateOf(h), preFault)
	mustReadsServe(t, h, w)

	// The disk heals; the probe loop notices and flips back without any
	// operator involvement.
	fs.Clear()
	waitHealth(t, h, StateReady)
	if got := h.Health(); got.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", got.Recoveries)
	}
	for i := half; i < len(items); i++ {
		if _, err := h.Insert(items[i].Source, items[i].Tuple); err != nil {
			t.Fatalf("post-recovery insert %d: %v", i, err)
		}
	}
	mustEqualState(t, "finished vs uninterrupted", stateOf(h), refState)

	// Crash and reopen on the clean filesystem: everything acknowledged
	// across both fault boundaries replays.
	h.per.quiesce()
	h2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer h2.Close()
	if info.TailDamage != "" {
		t.Fatalf("reopen reported tail damage: %s", info.TailDamage)
	}
	mustEqualState(t, "reopened vs finished", stateOf(h2), refState)
}

// TestChaosFaultAtEveryAppendPoint slides a persistent write fault
// across every WAL append of the ingest run (odd offsets also land
// partial frame bytes) and pins, for each fault point: acknowledged
// inserts survive a crash/reopen bit-for-bit, and the interrupted
// workload finishes to the reference state on the recovered directory.
func TestChaosFaultAtEveryAppendPoint(t *testing.T) {
	w, items, refState := chaosWorkload(t)
	for k := 0; k <= 10; k++ {
		k := k
		t.Run(fmt.Sprintf("after=%d", k), func(t *testing.T) {
			fs := errfs.New(nil)
			dir := t.TempDir()
			h := openChaosMulti(t, dir, w, 5, fs) // snapshots firing along the way
			rule := errfs.Rule{Op: errfs.OpWrite, PathContains: "wal-", After: k, Err: syscall.ENOSPC}
			if k%2 == 1 {
				rule.Partial = 7 // torn frame bytes land on disk, rollback must erase them
			}
			fs.Inject(rule)

			acked := make([]bool, len(items))
			for i, it := range items {
				if _, err := h.Insert(it.Source, it.Tuple); err == nil {
					acked[i] = true
				} else if !errors.Is(err, ErrDegraded) {
					t.Fatalf("insert %d failed untypedly: %v", i, err)
				}
			}
			degraded := stateOf(h)
			// Crash without Close; reopen on a healthy filesystem.
			h.per.quiesce()
			h2, info, err := Open(dir, Options{SnapshotEvery: 5})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer h2.Close()
			if info.TailDamage != "" {
				t.Fatalf("reopen reported tail damage: %s", info.TailDamage)
			}
			// No acknowledged insert lost, no rejected insert resurrected.
			mustEqualState(t, "reopened vs degraded", stateOf(h2), degraded)
			for i, it := range items {
				if acked[i] {
					continue
				}
				if _, err := h2.Insert(it.Source, it.Tuple); err != nil {
					t.Fatalf("finish insert %d: %v", i, err)
				}
			}
			mustEqualState(t, "finished vs uninterrupted", stateOf(h2), refState)
		})
	}
}

// TestChaosUnusableLogHeals drives the worst append failure — the
// rollback truncate fails too, leaving garbage tail bytes — and checks
// the hub degrades, serves reads, and that the recovery probe heals
// the log (re-truncating the garbage) before flipping back.
func TestChaosUnusableLogHeals(t *testing.T) {
	w, items, refState := chaosWorkload(t)
	fs := errfs.New(nil)
	dir := t.TempDir()
	h := openChaosMulti(t, dir, w, 0, fs)
	half := len(items) / 2
	for i := 0; i < half; i++ {
		if _, err := h.Insert(items[i].Source, items[i].Tuple); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	preFault := stateOf(h)
	fs.Inject(
		errfs.Rule{Op: errfs.OpWrite, PathContains: "wal-", Err: syscall.ENOSPC, Partial: 9},
		errfs.Rule{Op: errfs.OpTruncate, PathContains: "wal-", Err: syscall.EIO},
	)
	if _, err := h.Insert(items[half].Source, items[half].Tuple); !errors.Is(err, ErrDegraded) {
		t.Fatalf("insert on unusable log = %v, want ErrDegraded", err)
	}
	mustEqualState(t, "degraded vs pre-fault", stateOf(h), preFault)
	mustReadsServe(t, h, w)

	fs.Clear()
	waitHealth(t, h, StateReady)
	for i := half; i < len(items); i++ {
		if _, err := h.Insert(items[i].Source, items[i].Tuple); err != nil {
			t.Fatalf("post-heal insert %d: %v", i, err)
		}
	}
	mustEqualState(t, "finished vs uninterrupted", stateOf(h), refState)

	h.per.quiesce()
	h2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer h2.Close()
	mustEqualState(t, "reopened vs finished", stateOf(h2), refState)
}

// TestChaosSnapshotSectionFault fails snapshot section writes (first
// section through, EIO between sections): the synchronous snapshot
// reports the failure and degrades the hub, the WAL still holds
// everything, and after the fault clears a snapshot and a crash/reopen
// both land on the exact state.
func TestChaosSnapshotSectionFault(t *testing.T) {
	w, items, _ := chaosWorkload(t)
	fs := errfs.New(nil)
	dir := t.TempDir()
	h := openChaosMulti(t, dir, w, 0, fs)
	for i := 0; i < len(items); i++ {
		if _, err := h.Insert(items[i].Source, items[i].Tuple); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	full := stateOf(h)

	// Section temp files are written under snapsecs/ as sec-*.tmp; let
	// one section land, then EIO.
	fs.Inject(errfs.Rule{Op: errfs.OpWrite, PathContains: "sec-", After: 1, Err: syscall.EIO})
	if err := h.SnapshotNow(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("snapshot on failing disk = %v, want EIO", err)
	}
	if got := h.Health().State; got != StateDegraded {
		t.Fatalf("health after snapshot failure = %v, want degraded", got)
	}
	if _, err := h.Insert(items[0].Source, items[0].Tuple); !errors.Is(err, ErrDegraded) {
		t.Fatalf("insert after snapshot failure = %v, want ErrDegraded", err)
	}
	mustEqualState(t, "degraded vs full", stateOf(h), full)
	mustReadsServe(t, h, w)

	fs.Clear()
	waitHealth(t, h, StateReady)
	if err := h.SnapshotNow(); err != nil {
		t.Fatalf("snapshot after recovery: %v", err)
	}
	h.per.quiesce()
	h2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer h2.Close()
	if !info.FromSnapshot {
		t.Fatal("reopen did not load the recovered snapshot")
	}
	mustEqualState(t, "reopened vs full", stateOf(h2), full)
}

// TestChaosRotateFault fails the segment-file creation inside Rotate:
// the snapshot attempt degrades the hub, the old segment stays fully
// usable, and recovery resumes rotation and ingest.
func TestChaosRotateFault(t *testing.T) {
	w, items, refState := chaosWorkload(t)
	fs := errfs.New(nil)
	dir := t.TempDir()
	h := openChaosMulti(t, dir, w, 0, fs)
	half := len(items) / 2
	for i := 0; i < half; i++ {
		if _, err := h.Insert(items[i].Source, items[i].Tuple); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	preFault := stateOf(h)
	fs.Inject(errfs.Rule{Op: errfs.OpOpenFile, PathContains: "wal-", Err: syscall.ENOSPC})
	if err := h.SnapshotNow(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("snapshot with failing rotate = %v, want ENOSPC", err)
	}
	if got := h.Health().State; got != StateDegraded {
		t.Fatalf("health after rotate failure = %v, want degraded", got)
	}
	mustEqualState(t, "degraded vs pre-fault", stateOf(h), preFault)

	fs.Clear()
	waitHealth(t, h, StateReady)
	if err := h.SnapshotNow(); err != nil {
		t.Fatalf("snapshot after recovery: %v", err)
	}
	for i := half; i < len(items); i++ {
		if _, err := h.Insert(items[i].Source, items[i].Tuple); err != nil {
			t.Fatalf("post-recovery insert %d: %v", i, err)
		}
	}
	mustEqualState(t, "finished vs uninterrupted", stateOf(h), refState)
	if err := h.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestPoisonFailsClosed forces the commit-path invariant violation the
// old code answered with panic: the hub must poison instead — typed
// refusal of all ingest, reads still serving, probes never clearing it.
func TestPoisonFailsClosed(t *testing.T) {
	w, items, _ := chaosWorkload(t)
	fs := errfs.New(nil)
	dir := t.TempDir()
	h := openChaosMulti(t, dir, w, 0, fs)
	for i := 0; i < 4; i++ {
		if _, err := h.Insert(items[i].Source, items[i].Tuple); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	pre := stateOf(h)
	if err := h.poison(errors.New("simulated commit-path invariant violation")); !errors.Is(err, ErrPoisoned) {
		t.Fatal("poison did not return a typed ErrPoisoned")
	}
	if _, err := h.Insert(items[4].Source, items[4].Tuple); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("insert on poisoned hub = %v, want ErrPoisoned", err)
	}
	mustEqualState(t, "poisoned vs pre", stateOf(h), pre)
	mustReadsServe(t, h, w)
	// Poison is terminal: no probe may clear it.
	h.degrade(errors.New("should not downgrade poison"))
	time.Sleep(20 * time.Millisecond)
	if got := h.Health().State; got != StatePoisoned {
		t.Fatalf("health = %v, want poisoned (terminal)", got)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

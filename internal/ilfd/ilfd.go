// Package ilfd implements instance-level functional dependencies (ILFDs),
// the semantic constraints the paper uses to derive missing extended-key
// attribute values (§4.1, §5).
//
// An ILFD has the form
//
//	(A1=a1) ∧ … ∧ (An=an) → (B1=b1) ∧ … ∧ (Bm=bm)
//
// where each (A=a) is a proposition about a single entity: "the entity's A
// attribute has value a". Unlike a classical FD — whose violation involves
// two tuples — an ILFD is checked one tuple at a time (§4.1). Several
// ILFDs with identical antecedents combine into one formula with a
// conjunctive consequent (§5), which is why Consequent is a set here.
//
// The package provides the paper's full ILFD theory: satisfaction and
// violation over relations, Armstrong-style axioms and derived inference
// rules (§5.2), the closure X⁺_F of a set of proposition symbols, the
// inference test F ⊨ f, relational ILFD tables IM(x̄,y) (§4.2), and a
// small text format for rule files.
package ilfd

import (
	"fmt"
	"sort"
	"strings"

	"entityid/internal/relation"
	"entityid/internal/value"
)

// Condition is one proposition symbol: attribute Attr has value Val.
type Condition struct {
	Attr string
	Val  value.Value
}

// C is shorthand for a string-valued condition.
func C(attr, val string) Condition {
	return Condition{Attr: attr, Val: value.String(val)}
}

// Key encodes the condition for set membership; two conditions are the
// same proposition symbol iff their keys are equal.
func (c Condition) Key() string { return c.Attr + "\x1e" + c.Val.Key() }

// String renders the condition as attr=value.
func (c Condition) String() string { return c.Attr + "=" + c.Val.String() }

// HoldsIn reports whether the condition holds in tuple t of relation r:
// the attribute exists and its value Equals Val (matching-level equality,
// so a NULL attribute satisfies nothing).
func (c Condition) HoldsIn(r *relation.Relation, t relation.Tuple) bool {
	i := r.Schema().Index(c.Attr)
	return i >= 0 && value.Equal(t[i], c.Val)
}

// Conditions is a set of proposition symbols with canonical (sorted,
// deduplicated) order.
type Conditions []Condition

// Normalize sorts by key and removes duplicates, in place, returning the
// result.
func (cs Conditions) Normalize() Conditions {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Key() < cs[j].Key() })
	out := cs[:0]
	var last string
	for i, c := range cs {
		k := c.Key()
		if i > 0 && k == last {
			continue
		}
		out = append(out, c)
		last = k
	}
	return out
}

// Contains reports whether the set contains the proposition symbol c.
func (cs Conditions) Contains(c Condition) bool {
	k := c.Key()
	for _, x := range cs {
		if x.Key() == k {
			return true
		}
	}
	return false
}

// ContainsAll reports whether every symbol of o is in cs.
func (cs Conditions) ContainsAll(o Conditions) bool {
	for _, c := range o {
		if !cs.Contains(c) {
			return false
		}
	}
	return true
}

// Union returns the normalized union of two condition sets.
func (cs Conditions) Union(o Conditions) Conditions {
	out := make(Conditions, 0, len(cs)+len(o))
	out = append(out, cs...)
	out = append(out, o...)
	return out.Normalize()
}

// Equal reports set equality (after normalization of both operands).
func (cs Conditions) Equal(o Conditions) bool {
	a := append(Conditions(nil), cs...).Normalize()
	b := append(Conditions(nil), o...).Normalize()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}

// HoldIn reports whether every condition holds in tuple t.
func (cs Conditions) HoldIn(r *relation.Relation, t relation.Tuple) bool {
	for _, c := range cs {
		if !c.HoldsIn(r, t) {
			return false
		}
	}
	return true
}

// String renders the conjunction as (a=x) ∧ (b=y).
func (cs Conditions) String() string {
	if len(cs) == 0 {
		return "⊤"
	}
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, " ∧ ")
}

// ILFD is one instance-level functional dependency.
type ILFD struct {
	Antecedent Conditions
	Consequent Conditions
}

// New builds a normalized ILFD. The consequent must be non-empty; an
// empty antecedent is allowed (an unconditional fact, useful in theory
// tests) but rejected by Validate for use against relations.
func New(ante, cons Conditions) (ILFD, error) {
	if len(cons) == 0 {
		return ILFD{}, fmt.Errorf("ilfd: empty consequent")
	}
	f := ILFD{
		Antecedent: append(Conditions(nil), ante...).Normalize(),
		Consequent: append(Conditions(nil), cons...).Normalize(),
	}
	return f, nil
}

// MustNew panics on error; for literals in tests and examples.
func MustNew(ante, cons Conditions) ILFD {
	f, err := New(ante, cons)
	if err != nil {
		panic(err)
	}
	return f
}

// String renders the ILFD as (A=a) ∧ … → (B=b).
func (f ILFD) String() string {
	return f.Antecedent.String() + " → " + f.Consequent.String()
}

// Key is a canonical encoding for deduplication.
func (f ILFD) Key() string {
	parts := make([]string, 0, len(f.Antecedent)+1+len(f.Consequent))
	for _, c := range f.Antecedent {
		parts = append(parts, c.Key())
	}
	parts = append(parts, "\x1d")
	for _, c := range f.Consequent {
		parts = append(parts, c.Key())
	}
	return strings.Join(parts, "\x1c")
}

// Equal reports whether two ILFDs have the same antecedent and consequent
// sets.
func (f ILFD) Equal(o ILFD) bool {
	return f.Antecedent.Equal(o.Antecedent) && f.Consequent.Equal(o.Consequent)
}

// Trivial reports whether the ILFD is trivial in the sense of the
// reflexivity axiom (§5.2): its consequent is a subset of its antecedent,
// so it holds in every entity set regardless of F.
func (f ILFD) Trivial() bool {
	return f.Antecedent.ContainsAll(f.Consequent)
}

// Attrs returns the sorted set of attribute names the ILFD mentions.
func (f ILFD) Attrs() []string {
	set := map[string]bool{}
	for _, c := range f.Antecedent {
		set[c.Attr] = true
	}
	for _, c := range f.Consequent {
		set[c.Attr] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// SatisfiedBy reports whether tuple t of relation r satisfies the ILFD:
// if the antecedent holds in t, the consequent holds too. Violation
// checking involves only one tuple (§4.1).
//
// A consequent condition whose attribute is NULL in t counts as not
// holding — the tuple does not *contradict* the ILFD, but it does not
// satisfy it either; use Contradicts to distinguish.
func (f ILFD) SatisfiedBy(r *relation.Relation, t relation.Tuple) bool {
	if !f.Antecedent.HoldIn(r, t) {
		return true
	}
	return f.Consequent.HoldIn(r, t)
}

// Contradicts reports whether tuple t positively contradicts the ILFD:
// the antecedent holds and some consequent attribute has a non-NULL value
// different from the required one. A NULL consequent attribute is merely
// missing information, not a contradiction.
func (f ILFD) Contradicts(r *relation.Relation, t relation.Tuple) bool {
	if !f.Antecedent.HoldIn(r, t) {
		return false
	}
	for _, c := range f.Consequent {
		i := r.Schema().Index(c.Attr)
		if i < 0 {
			continue
		}
		v := t[i]
		if !v.IsNull() && !value.Equal(v, c.Val) {
			return true
		}
	}
	return false
}

// Set is an ordered collection of ILFDs (order matters for the
// first-match derivation mode, mirroring Prolog rule order).
type Set []ILFD

// Dedup returns the set with exact duplicates removed, preserving first
// occurrences.
func (fs Set) Dedup() Set {
	seen := map[string]bool{}
	out := make(Set, 0, len(fs))
	for _, f := range fs {
		k := f.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

// SatisfiedBy reports whether every ILFD in the set is satisfied by every
// tuple of r. The paper assumes "all tuples modeling the real world are
// consistent with the ILFDs" (§4.1); this is the checker for that
// assumption.
func (fs Set) SatisfiedBy(r *relation.Relation) bool {
	return len(fs.Violations(r)) == 0
}

// Violation records a tuple that fails an ILFD.
type Violation struct {
	ILFD  ILFD
	Index int // tuple position in the relation
}

// Violations returns every (ILFD, tuple) pair where the tuple's
// antecedent holds but its consequent does not hold (missing counts as
// not holding).
func (fs Set) Violations(r *relation.Relation) []Violation {
	var out []Violation
	for _, f := range fs {
		for i, t := range r.Tuples() {
			if !f.SatisfiedBy(r, t) {
				out = append(out, Violation{ILFD: f, Index: i})
			}
		}
	}
	return out
}

// Contradictions returns every (ILFD, tuple) pair where the tuple
// positively contradicts the ILFD (non-NULL wrong value).
func (fs Set) Contradictions(r *relation.Relation) []Violation {
	var out []Violation
	for _, f := range fs {
		for i, t := range r.Tuples() {
			if f.Contradicts(r, t) {
				out = append(out, Violation{ILFD: f, Index: i})
			}
		}
	}
	return out
}

// CombineByAntecedent merges ILFDs with identical antecedents into single
// formulas with conjunctive consequents, the §5 normal form
// ((P→Q1) ∧ (P→Q2) ≡ P→(Q1∧Q2)). Order follows first occurrence of each
// antecedent.
func (fs Set) CombineByAntecedent() Set {
	type slot struct {
		ante Conditions
		cons Conditions
	}
	var order []string
	byAnte := map[string]*slot{}
	for _, f := range fs {
		k := f.Antecedent.String()
		s, ok := byAnte[k]
		if !ok {
			s = &slot{ante: f.Antecedent}
			byAnte[k] = s
			order = append(order, k)
		}
		s.cons = s.cons.Union(f.Consequent)
	}
	out := make(Set, 0, len(order))
	for _, k := range order {
		s := byAnte[k]
		out = append(out, MustNew(s.ante, s.cons))
	}
	return out
}

package ilfd

import "fmt"

// This file implements Armstrong's axioms for ILFDs (§5.2) and the
// derived inference rules of Lemma 2. Each axiom is a total function that
// constructs the inferred ILFD; soundness (Lemma 1) and — via the closure
// algorithm — completeness (Theorem 1) are exercised by the package
// tests.

// Reflexivity returns the trivial ILFD X → Y for Y ⊆ X. It fails if Y is
// not a subset of X (the axiom only licenses subsets).
func Reflexivity(x, y Conditions) (ILFD, error) {
	if !x.ContainsAll(y) {
		return ILFD{}, fmt.Errorf("ilfd: reflexivity: %v is not a subset of %v", y, x)
	}
	return New(x, y)
}

// Augmentation turns X → Y into (X ∧ Z) → (Y ∧ Z).
func Augmentation(f ILFD, z Conditions) ILFD {
	return MustNew(f.Antecedent.Union(z), f.Consequent.Union(z))
}

// Transitivity combines X → Y and Y → Z into X → Z. It fails unless the
// first consequent equals the second antecedent as a set.
func Transitivity(xy, yz ILFD) (ILFD, error) {
	if !xy.Consequent.Equal(yz.Antecedent) {
		return ILFD{}, fmt.Errorf("ilfd: transitivity: consequent %v ≠ antecedent %v",
			xy.Consequent, yz.Antecedent)
	}
	return New(xy.Antecedent, yz.Consequent)
}

// UnionRule combines X → Y and X → Z into X → (Y ∧ Z) (Lemma 2.1). It
// fails unless the antecedents agree.
func UnionRule(xy, xz ILFD) (ILFD, error) {
	if !xy.Antecedent.Equal(xz.Antecedent) {
		return ILFD{}, fmt.Errorf("ilfd: union rule: antecedents differ: %v vs %v",
			xy.Antecedent, xz.Antecedent)
	}
	return New(xy.Antecedent, xy.Consequent.Union(xz.Consequent))
}

// PseudoTransitivity combines X → Y and (W ∧ Y) → Z into (W ∧ X) → Z
// (Lemma 2.2). The caller supplies W; the second ILFD's antecedent must
// equal W ∪ Y.
func PseudoTransitivity(xy ILFD, w Conditions, wyz ILFD) (ILFD, error) {
	if !wyz.Antecedent.Equal(w.Union(xy.Consequent)) {
		return ILFD{}, fmt.Errorf("ilfd: pseudotransitivity: antecedent %v ≠ W∪Y %v",
			wyz.Antecedent, w.Union(xy.Consequent))
	}
	return New(w.Union(xy.Antecedent), wyz.Consequent)
}

// Decomposition turns X → (Y ∧ Z) into X → Z for any subset Z of the
// consequent (Lemma 2.3).
func Decomposition(f ILFD, z Conditions) (ILFD, error) {
	if !f.Consequent.ContainsAll(z) {
		return ILFD{}, fmt.Errorf("ilfd: decomposition: %v not contained in consequent %v",
			z, f.Consequent)
	}
	return New(f.Antecedent, z)
}

// Closure computes X⁺_F: the set of proposition symbols derivable from X
// using the ILFDs in F under Armstrong's axioms. The algorithm is the
// standard attribute-closure fixpoint transliterated to proposition
// symbols (§5.2: "the algorithm for computing X⁺_F is the same as that
// for computing the closure of a set of attributes with respect to a set
// of FDs"). It runs in O(|F| · |symbols|) per pass and at most
// |symbols| passes.
func Closure(x Conditions, fs Set) Conditions {
	closure := append(Conditions(nil), x...).Normalize()
	inClosure := map[string]bool{}
	for _, c := range closure {
		inClosure[c.Key()] = true
	}
	used := make([]bool, len(fs))
	for changed := true; changed; {
		changed = false
		for i, f := range fs {
			if used[i] {
				continue
			}
			applicable := true
			for _, c := range f.Antecedent {
				if !inClosure[c.Key()] {
					applicable = false
					break
				}
			}
			if !applicable {
				continue
			}
			used[i] = true
			for _, c := range f.Consequent {
				if !inClosure[c.Key()] {
					inClosure[c.Key()] = true
					closure = append(closure, c)
					changed = true
				}
			}
		}
	}
	return closure.Normalize()
}

// Infers reports whether F ⊨ f, i.e. f's consequent is contained in the
// closure of f's antecedent under F. By Theorem 1 (soundness and
// completeness of the axioms) this decides logical implication.
func Infers(fs Set, f ILFD) bool {
	return Closure(f.Antecedent, fs).ContainsAll(f.Consequent)
}

// Redundant reports whether the i-th ILFD of fs is implied by the others.
func Redundant(fs Set, i int) bool {
	rest := make(Set, 0, len(fs)-1)
	rest = append(rest, fs[:i]...)
	rest = append(rest, fs[i+1:]...)
	return Infers(rest, fs[i])
}

// MinimalCover returns a subset of fs (split into single-consequent form)
// that implies every ILFD of fs and contains no redundant member, the
// ILFD analogue of an FD minimal cover. Antecedent reduction is also
// applied: a symbol is dropped from an antecedent when the remaining
// symbols still derive the consequent.
func MinimalCover(fs Set) Set {
	// Split into single-consequent ILFDs.
	var split Set
	for _, f := range fs {
		for _, c := range f.Consequent {
			split = append(split, MustNew(f.Antecedent, Conditions{c}))
		}
	}
	split = split.Dedup()

	// Drop trivial members (already implied by reflexivity).
	nontrivial := split[:0]
	for _, f := range split {
		if !f.Trivial() {
			nontrivial = append(nontrivial, f)
		}
	}
	split = nontrivial

	// Reduce antecedents.
	for i := range split {
		f := split[i]
		ante := append(Conditions(nil), f.Antecedent...)
		for j := 0; j < len(ante); {
			reduced := make(Conditions, 0, len(ante)-1)
			reduced = append(reduced, ante[:j]...)
			reduced = append(reduced, ante[j+1:]...)
			candidate := MustNew(reduced, f.Consequent)
			if Infers(split, candidate) {
				ante = reduced
			} else {
				j++
			}
		}
		split[i] = MustNew(ante, f.Consequent)
	}
	split = split.Dedup()

	// Drop redundant members. Iterate until stable, since removing one
	// can make another essential.
	for i := 0; i < len(split); {
		if Redundant(split, i) {
			split = append(split[:i], split[i+1:]...)
		} else {
			i++
		}
	}
	return split
}

// EnumerateClosure materialises the closure F⁺ restricted to a finite
// symbol universe: every non-trivial-to-state ILFD X → Y with X, Y
// non-empty subsets of the universe and F ⊨ X → Y. The paper notes F⁺
// is expensive — it is exponential in the universe — so the function
// refuses universes larger than maxUniverse symbols. The §5.2 example
// (F = {P→Q, Q→R} over three symbols) enumerates in microseconds.
//
// Trivial members (reflexivity instances) are included, as in the
// paper's listing of F⁺.
func EnumerateClosure(fs Set, universe Conditions) (Set, error) {
	const maxUniverse = 12
	u := append(Conditions(nil), universe...).Normalize()
	if len(u) > maxUniverse {
		return nil, fmt.Errorf("ilfd: universe of %d symbols too large for F+ enumeration (max %d)",
			len(u), maxUniverse)
	}
	n := len(u)
	subset := func(mask int) Conditions {
		var cs Conditions
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cs = append(cs, u[i])
			}
		}
		return cs
	}
	var out Set
	for xm := 1; xm < 1<<n; xm++ {
		x := subset(xm)
		clo := Closure(x, fs)
		inClo := map[string]bool{}
		for _, c := range clo {
			inClo[c.Key()] = true
		}
		// Enumerate consequent subsets drawn from the derivable symbols
		// of the universe.
		var derivable []int
		for i := 0; i < n; i++ {
			if inClo[u[i].Key()] {
				derivable = append(derivable, i)
			}
		}
		for ym := 1; ym < 1<<len(derivable); ym++ {
			var y Conditions
			for bi, i := range derivable {
				if ym&(1<<bi) != 0 {
					y = append(y, u[i])
				}
			}
			out = append(out, MustNew(x, y))
		}
	}
	return out, nil
}

// Equivalent reports whether two ILFD sets imply each other.
func Equivalent(a, b Set) bool {
	for _, f := range a {
		if !Infers(b, f) {
			return false
		}
	}
	for _, f := range b {
		if !Infers(a, f) {
			return false
		}
	}
	return true
}

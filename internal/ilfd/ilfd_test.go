package ilfd

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// mkRestaurants builds a small relation of restaurant entities used by
// the satisfaction tests.
func mkRestaurants(t *testing.T) *relation.Relation {
	t.Helper()
	sch := schema.MustNew("Restaurant",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "speciality", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
		},
		[]string{"name"},
	)
	r := relation.New(sch)
	r.MustInsert(value.String("twincities"), value.String("hunan"), value.String("chinese"))
	r.MustInsert(value.String("anjuman"), value.String("mughalai"), value.String("indian"))
	r.MustInsert(value.String("unknown"), value.String("gyros"), value.Null)
	return r
}

func TestConditionBasics(t *testing.T) {
	c := C("cuisine", "chinese")
	if c.String() != "cuisine=chinese" {
		t.Errorf("String = %q", c.String())
	}
	d := Condition{Attr: "cuisine", Val: value.String("chinese")}
	if c.Key() != d.Key() {
		t.Error("identical conditions have different keys")
	}
	e := Condition{Attr: "cuisine", Val: value.Int(1)}
	if c.Key() == e.Key() {
		t.Error("different-kind conditions share a key")
	}
}

func TestConditionHoldsIn(t *testing.T) {
	r := mkRestaurants(t)
	if !C("speciality", "hunan").HoldsIn(r, r.Tuple(0)) {
		t.Error("hunan condition does not hold")
	}
	if C("speciality", "sichuan").HoldsIn(r, r.Tuple(0)) {
		t.Error("sichuan condition holds wrongly")
	}
	// NULL satisfies nothing.
	if C("cuisine", "greek").HoldsIn(r, r.Tuple(2)) {
		t.Error("condition holds on NULL attribute")
	}
	// Unknown attribute satisfies nothing.
	if C("bogus", "x").HoldsIn(r, r.Tuple(0)) {
		t.Error("condition holds on unknown attribute")
	}
}

func TestConditionsNormalize(t *testing.T) {
	cs := Conditions{C("b", "2"), C("a", "1"), C("b", "2")}.Normalize()
	if len(cs) != 2 {
		t.Fatalf("normalized length = %d", len(cs))
	}
	if cs[0].Attr != "a" {
		t.Errorf("not sorted: %v", cs)
	}
}

func TestConditionsSetOps(t *testing.T) {
	a := Conditions{C("a", "1"), C("b", "2")}
	b := Conditions{C("b", "2")}
	if !a.ContainsAll(b) {
		t.Error("ContainsAll subset failed")
	}
	if b.ContainsAll(a) {
		t.Error("ContainsAll superset wrongly true")
	}
	u := a.Union(Conditions{C("c", "3")})
	if len(u) != 3 {
		t.Errorf("union = %v", u)
	}
	if !a.Equal(Conditions{C("b", "2"), C("a", "1")}) {
		t.Error("Equal order-sensitive")
	}
	if a.Equal(b) {
		t.Error("unequal sets Equal")
	}
	if got := (Conditions{}).String(); got != "⊤" {
		t.Errorf("empty conjunction = %q", got)
	}
	if got := a.String(); !strings.Contains(got, "∧") {
		t.Errorf("conjunction rendering = %q", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Conditions{C("a", "1")}, nil); err == nil {
		t.Error("empty consequent accepted")
	}
	f := MustNew(Conditions{C("b", "2"), C("a", "1")}, Conditions{C("c", "3")})
	if f.Antecedent[0].Attr != "a" {
		t.Error("antecedent not normalized")
	}
}

func TestILFDStringKeyEqual(t *testing.T) {
	f := MustParse("speciality=hunan -> cuisine=chinese")
	if got := f.String(); !strings.Contains(got, "→") || !strings.Contains(got, "speciality=hunan") {
		t.Errorf("String = %q", got)
	}
	g := MustParse("speciality=hunan -> cuisine=chinese")
	if f.Key() != g.Key() || !f.Equal(g) {
		t.Error("identical ILFDs not equal")
	}
	h := MustParse("speciality=hunan -> cuisine=greek")
	if f.Equal(h) {
		t.Error("different ILFDs Equal")
	}
}

func TestTrivial(t *testing.T) {
	if !MustParse("a=1 & b=2 -> a=1").Trivial() {
		t.Error("reflexive ILFD not trivial")
	}
	if MustParse("a=1 -> b=2").Trivial() {
		t.Error("non-reflexive ILFD trivial")
	}
}

func TestAttrs(t *testing.T) {
	f := MustParse("b=2 & a=1 -> c=3")
	got := f.Attrs()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Attrs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Attrs = %v, want %v", got, want)
		}
	}
}

func TestSatisfiedByAndContradicts(t *testing.T) {
	r := mkRestaurants(t)
	hunanChinese := MustParse("speciality=hunan -> cuisine=chinese")
	hunanGreek := MustParse("speciality=hunan -> cuisine=greek")
	gyrosGreek := MustParse("speciality=gyros -> cuisine=greek")

	if !hunanChinese.SatisfiedBy(r, r.Tuple(0)) {
		t.Error("satisfied ILFD reported unsatisfied")
	}
	if hunanGreek.SatisfiedBy(r, r.Tuple(0)) {
		t.Error("violated ILFD reported satisfied")
	}
	if !hunanGreek.Contradicts(r, r.Tuple(0)) {
		t.Error("contradiction not detected")
	}
	// Antecedent does not hold => satisfied vacuously.
	if !hunanGreek.SatisfiedBy(r, r.Tuple(1)) {
		t.Error("vacuous satisfaction failed")
	}
	// Tuple 2: antecedent holds (gyros) but cuisine is NULL: not
	// satisfied (missing info) yet not a contradiction.
	if gyrosGreek.SatisfiedBy(r, r.Tuple(2)) {
		t.Error("NULL consequent counted as satisfied")
	}
	if gyrosGreek.Contradicts(r, r.Tuple(2)) {
		t.Error("NULL consequent counted as contradiction")
	}
}

func TestSetViolationsAndContradictions(t *testing.T) {
	r := mkRestaurants(t)
	fs := Set{
		MustParse("speciality=hunan -> cuisine=chinese"),
		MustParse("speciality=gyros -> cuisine=greek"),
	}
	if fs.SatisfiedBy(r) {
		t.Error("set satisfied despite NULL-consequent tuple")
	}
	vs := fs.Violations(r)
	if len(vs) != 1 || vs[0].Index != 2 {
		t.Errorf("Violations = %+v", vs)
	}
	if got := fs.Contradictions(r); len(got) != 0 {
		t.Errorf("Contradictions = %+v", got)
	}
	// Make tuple 0 contradict.
	bad := Set{MustParse("speciality=hunan -> cuisine=greek")}
	if got := bad.Contradictions(r); len(got) != 1 || got[0].Index != 0 {
		t.Errorf("Contradictions = %+v", got)
	}
}

func TestDedupAndCombine(t *testing.T) {
	fs := Set{
		MustParse("a=1 -> b=2"),
		MustParse("a=1 -> b=2"),
		MustParse("a=1 -> c=3"),
		MustParse("x=9 -> y=8"),
	}
	if got := fs.Dedup(); len(got) != 3 {
		t.Errorf("Dedup len = %d", len(got))
	}
	combined := fs.CombineByAntecedent()
	if len(combined) != 2 {
		t.Fatalf("CombineByAntecedent len = %d: %v", len(combined), combined)
	}
	want := MustParse("a=1 -> b=2 & c=3")
	if !combined[0].Equal(want) {
		t.Errorf("combined[0] = %v, want %v", combined[0], want)
	}
}

// --- Armstrong's axioms (§5.2) ---

func TestReflexivity(t *testing.T) {
	x := Conditions{C("a", "1"), C("b", "2")}
	f, err := Reflexivity(x, Conditions{C("a", "1")})
	if err != nil {
		t.Fatalf("Reflexivity: %v", err)
	}
	if !f.Trivial() {
		t.Error("reflexivity produced non-trivial ILFD")
	}
	if _, err := Reflexivity(x, Conditions{C("z", "0")}); err == nil {
		t.Error("reflexivity on non-subset accepted")
	}
}

func TestAugmentation(t *testing.T) {
	f := MustParse("a=1 -> b=2")
	g := Augmentation(f, Conditions{C("z", "9")})
	want := MustParse("a=1 & z=9 -> b=2 & z=9")
	if !g.Equal(want) {
		t.Errorf("Augmentation = %v, want %v", g, want)
	}
}

func TestTransitivity(t *testing.T) {
	xy := MustParse("a=1 -> b=2")
	yz := MustParse("b=2 -> c=3")
	g, err := Transitivity(xy, yz)
	if err != nil {
		t.Fatalf("Transitivity: %v", err)
	}
	if !g.Equal(MustParse("a=1 -> c=3")) {
		t.Errorf("Transitivity = %v", g)
	}
	if _, err := Transitivity(xy, MustParse("q=7 -> c=3")); err == nil {
		t.Error("mismatched transitivity accepted")
	}
}

func TestUnionRule(t *testing.T) {
	g, err := UnionRule(MustParse("a=1 -> b=2"), MustParse("a=1 -> c=3"))
	if err != nil {
		t.Fatalf("UnionRule: %v", err)
	}
	if !g.Equal(MustParse("a=1 -> b=2 & c=3")) {
		t.Errorf("UnionRule = %v", g)
	}
	if _, err := UnionRule(MustParse("a=1 -> b=2"), MustParse("z=0 -> c=3")); err == nil {
		t.Error("mismatched union accepted")
	}
}

func TestPseudoTransitivity(t *testing.T) {
	xy := MustParse("a=1 -> b=2")
	w := Conditions{C("w", "5")}
	wyz := MustParse("w=5 & b=2 -> c=3")
	g, err := PseudoTransitivity(xy, w, wyz)
	if err != nil {
		t.Fatalf("PseudoTransitivity: %v", err)
	}
	if !g.Equal(MustParse("w=5 & a=1 -> c=3")) {
		t.Errorf("PseudoTransitivity = %v", g)
	}
	if _, err := PseudoTransitivity(xy, w, MustParse("q=0 -> c=3")); err == nil {
		t.Error("mismatched pseudotransitivity accepted")
	}
}

func TestDecomposition(t *testing.T) {
	f := MustParse("a=1 -> b=2 & c=3")
	g, err := Decomposition(f, Conditions{C("c", "3")})
	if err != nil {
		t.Fatalf("Decomposition: %v", err)
	}
	if !g.Equal(MustParse("a=1 -> c=3")) {
		t.Errorf("Decomposition = %v", g)
	}
	if _, err := Decomposition(f, Conditions{C("z", "0")}); err == nil {
		t.Error("decomposition outside consequent accepted")
	}
}

// --- Closure and inference (§5.2, Theorem 1) ---

func paperF() Set {
	// F = {(A=a1)→(B=b1), (B=b1)→(C=c1)}, the §5.2 example.
	return Set{
		MustParse("A=a1 -> B=b1"),
		MustParse("B=b1 -> C=c1"),
	}
}

func TestClosurePaperExample(t *testing.T) {
	got := Closure(Conditions{C("A", "a1")}, paperF())
	want := Conditions{C("A", "a1"), C("B", "b1"), C("C", "c1")}
	if !got.Equal(want) {
		t.Errorf("Closure = %v, want %v", got, want)
	}
	// Closure of B alone must not pull in A.
	got = Closure(Conditions{C("B", "b1")}, paperF())
	if got.Contains(C("A", "a1")) {
		t.Errorf("Closure(B) contains A: %v", got)
	}
}

func TestClosureIdempotent(t *testing.T) {
	fs := paperF()
	x := Conditions{C("A", "a1")}
	once := Closure(x, fs)
	twice := Closure(once, fs)
	if !once.Equal(twice) {
		t.Errorf("closure not idempotent: %v vs %v", once, twice)
	}
}

func TestClosureMonotone(t *testing.T) {
	fs := paperF()
	small := Closure(Conditions{C("B", "b1")}, fs)
	big := Closure(Conditions{C("B", "b1"), C("A", "a1")}, fs)
	if !big.ContainsAll(small) {
		t.Errorf("closure not monotone: %v ⊄ %v", small, big)
	}
}

func TestInfers(t *testing.T) {
	fs := paperF()
	// Transitivity consequence.
	if !Infers(fs, MustParse("A=a1 -> C=c1")) {
		t.Error("F does not infer A→C")
	}
	// Trivial consequence.
	if !Infers(fs, MustParse("A=a1 -> A=a1")) {
		t.Error("F does not infer trivial A→A")
	}
	// Non-consequence.
	if Infers(fs, MustParse("C=c1 -> A=a1")) {
		t.Error("F infers converse C→A")
	}
	if Infers(fs, MustParse("A=a2 -> B=b1")) {
		t.Error("F infers for wrong antecedent value")
	}
}

// TestAxiomSoundnessRandomized is the Lemma 1 property check: any ILFD
// produced from F by the axioms is satisfied by every tuple (over
// non-NULL attributes) that satisfies F.
func TestAxiomSoundnessRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	attrs := []string{"a", "b", "c", "d"}
	vals := []string{"0", "1", "2"}

	randCond := func() Condition {
		return C(attrs[rng.Intn(len(attrs))], vals[rng.Intn(len(vals))])
	}
	randConds := func(n int) Conditions {
		cs := make(Conditions, 0, n)
		for i := 0; i < n; i++ {
			cs = append(cs, randCond())
		}
		return cs.Normalize()
	}

	sch := schema.MustNew("T", []schema.Attribute{
		{Name: "a", Kind: value.KindString},
		{Name: "b", Kind: value.KindString},
		{Name: "c", Kind: value.KindString},
		{Name: "d", Kind: value.KindString},
		{Name: "id", Kind: value.KindInt},
	}, []string{"id"})

	for trial := 0; trial < 200; trial++ {
		// Random ILFD set.
		var fs Set
		for i := 0; i < 1+rng.Intn(4); i++ {
			ante := randConds(1 + rng.Intn(2))
			cons := randConds(1)
			fs = append(fs, MustNew(ante, cons))
		}
		// Random relation of tuples that satisfy fs (rejection sampling).
		r := relation.New(sch)
		id := int64(0)
		for len(r.Tuples()) < 5 {
			tup := relation.Tuple{
				value.String(vals[rng.Intn(len(vals))]),
				value.String(vals[rng.Intn(len(vals))]),
				value.String(vals[rng.Intn(len(vals))]),
				value.String(vals[rng.Intn(len(vals))]),
				value.Int(id),
			}
			ok := true
			for _, f := range fs {
				if !f.SatisfiedBy(r, tup) {
					ok = false
					break
				}
			}
			id++
			if id > 2000 {
				break // unsatisfiable combination; skip
			}
			if !ok {
				continue
			}
			if err := r.Insert(tup); err != nil {
				t.Fatal(err)
			}
		}
		if r.Len() == 0 {
			continue
		}
		// Derive consequences three ways and verify satisfaction.
		var derived Set
		for _, f := range fs {
			derived = append(derived, Augmentation(f, randConds(1)))
		}
		for _, f := range fs {
			for _, g := range fs {
				if h, err := Transitivity(f, g); err == nil {
					derived = append(derived, h)
				}
				if h, err := UnionRule(f, g); err == nil {
					derived = append(derived, h)
				}
			}
		}
		// Everything Infers says follows must hold in r.
		for _, f := range derived {
			if !Infers(fs, f) {
				t.Fatalf("axiom-derived ILFD %v not inferred from %v", f, fs)
			}
			for i, tup := range r.Tuples() {
				if !f.SatisfiedBy(r, tup) {
					t.Fatalf("trial %d: derived ILFD %v violated by satisfying tuple %d of\nF = %v",
						trial, f, i, fs)
				}
			}
		}
	}
}

// TestClosureCompletenessWitness is the Theorem 1 completeness argument
// made executable: when Y ⊄ X⁺_F (for a functionally consistent F), the
// witness tuple that realizes exactly X⁺_F satisfies F but violates
// X → Y, so X → Y is genuinely not a consequence.
func TestClosureCompletenessWitness(t *testing.T) {
	fs := Set{
		MustParse("a=1 -> b=2"),
		MustParse("b=2 & c=3 -> d=4"),
	}
	x := Conditions{C("a", "1")}
	y := Conditions{C("d", "4")}
	clo := Closure(x, fs)
	if clo.ContainsAll(y) {
		t.Fatal("test premise broken: Y in closure")
	}
	// Build the witness: attributes named in closure get their closure
	// value; every other attribute gets the fresh value "⊥".
	sch := schema.MustNew("W", []schema.Attribute{
		{Name: "a", Kind: value.KindString},
		{Name: "b", Kind: value.KindString},
		{Name: "c", Kind: value.KindString},
		{Name: "d", Kind: value.KindString},
	})
	vals := map[string]value.Value{}
	for _, c := range clo {
		vals[c.Attr] = c.Val
	}
	tup := make(relation.Tuple, sch.Arity())
	for i, a := range sch.AttrNames() {
		if v, ok := vals[a]; ok {
			tup[i] = v
		} else {
			tup[i] = value.String("⊥")
		}
	}
	r := relation.New(sch)
	if err := r.Insert(tup); err != nil {
		t.Fatal(err)
	}
	// The witness satisfies F…
	if !fs.SatisfiedBy(r) {
		t.Fatalf("witness violates F; closure = %v", clo)
	}
	// …but violates X → Y.
	xy := MustNew(x, y)
	if xy.SatisfiedBy(r, r.Tuple(0)) {
		t.Error("witness satisfies X→Y; completeness argument broken")
	}
}

// TestEnumerateClosurePaperExample reproduces the §5.2 F⁺ listing:
// with F = {(A=a1)→(B=b1), (B=b1)→(C=c1)} and P, Q, R denoting the
// three symbols, F⁺ contains P→P, Q→Q, R→R, (P∧Q)→P, …, P→(Q∧R), and
// never R→P.
func TestEnumerateClosurePaperExample(t *testing.T) {
	fs := paperF()
	p, q, r := C("A", "a1"), C("B", "b1"), C("C", "c1")
	universe := Conditions{p, q, r}
	fplus, err := EnumerateClosure(fs, universe)
	if err != nil {
		t.Fatalf("EnumerateClosure: %v", err)
	}
	contains := func(f ILFD) bool {
		for _, g := range fplus {
			if g.Equal(f) {
				return true
			}
		}
		return false
	}
	// Members from the paper's listing.
	for _, f := range []ILFD{
		MustNew(Conditions{p}, Conditions{p}),
		MustNew(Conditions{q}, Conditions{q}),
		MustNew(Conditions{r}, Conditions{r}),
		MustNew(Conditions{p, q}, Conditions{p}),
		MustNew(Conditions{p, q}, Conditions{q}),
		MustNew(Conditions{p, r}, Conditions{p}),
		MustNew(Conditions{q, r}, Conditions{q}),
		MustNew(Conditions{p, q, r}, Conditions{p}),
		// Derived, not just reflexive:
		MustNew(Conditions{p}, Conditions{q, r}),
		MustNew(Conditions{q}, Conditions{r}),
	} {
		if !contains(f) {
			t.Errorf("F+ missing %v", f)
		}
	}
	// Non-members.
	for _, f := range []ILFD{
		MustNew(Conditions{r}, Conditions{p}),
		MustNew(Conditions{q}, Conditions{p}),
		MustNew(Conditions{r}, Conditions{q}),
	} {
		if contains(f) {
			t.Errorf("F+ wrongly contains %v", f)
		}
	}
	// Every member is genuinely inferred.
	for _, f := range fplus {
		if !Infers(fs, f) {
			t.Errorf("F+ member %v not inferred", f)
		}
	}
	// Size sanity: for each of the 7 non-empty X, consequent subsets of
	// X⁺∩universe: P derives all 3 (7 subsets), Q derives {Q,R} (3),
	// R derives {R} (1), and supersets accordingly.
	if len(fplus) < 7*1 || len(fplus) > 7*7 {
		t.Errorf("F+ size = %d out of plausible range", len(fplus))
	}
}

func TestEnumerateClosureTooLarge(t *testing.T) {
	var universe Conditions
	for i := 0; i < 13; i++ {
		universe = append(universe, C(fmt.Sprintf("a%d", i), "1"))
	}
	if _, err := EnumerateClosure(nil, universe); err == nil {
		t.Error("oversized universe accepted")
	}
}

// --- Minimal cover and equivalence ---

func TestRedundant(t *testing.T) {
	fs := Set{
		MustParse("a=1 -> b=2"),
		MustParse("b=2 -> c=3"),
		MustParse("a=1 -> c=3"), // implied by the first two
	}
	if !Redundant(fs, 2) {
		t.Error("transitively implied ILFD not redundant")
	}
	if Redundant(fs, 0) {
		t.Error("essential ILFD reported redundant")
	}
}

func TestMinimalCover(t *testing.T) {
	fs := Set{
		MustParse("a=1 -> b=2 & c=3"),
		MustParse("b=2 -> c=3"),
		MustParse("a=1 -> c=3"),       // redundant
		MustParse("a=1 & z=9 -> b=2"), // antecedent reducible (a=1 suffices)
		MustParse("q=5 -> q=5"),       // trivial
	}
	cover := MinimalCover(fs)
	if !Equivalent(cover, fs) {
		t.Fatalf("cover %v not equivalent to original %v", cover, fs)
	}
	for i := range cover {
		if Redundant(cover, i) {
			t.Errorf("cover member %v is redundant", cover[i])
		}
		if cover[i].Trivial() {
			t.Errorf("cover contains trivial ILFD %v", cover[i])
		}
		if len(cover[i].Consequent) != 1 {
			t.Errorf("cover member %v not single-consequent", cover[i])
		}
	}
	// Antecedent reduction happened: no member should mention z.
	for _, f := range cover {
		for _, a := range f.Attrs() {
			if a == "z" {
				t.Errorf("cover member %v kept reducible antecedent symbol z", f)
			}
		}
	}
}

func TestEquivalent(t *testing.T) {
	a := Set{MustParse("a=1 -> b=2"), MustParse("b=2 -> c=3")}
	b := Set{MustParse("a=1 -> b=2"), MustParse("b=2 -> c=3"), MustParse("a=1 -> c=3")}
	if !Equivalent(a, b) {
		t.Error("equivalent sets reported different")
	}
	c := Set{MustParse("a=1 -> b=2")}
	if Equivalent(a, c) {
		t.Error("weaker set reported equivalent")
	}
}

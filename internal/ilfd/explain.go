package ilfd

import (
	"fmt"
	"strings"
)

// Step is one application of an ILFD during a closure computation: the
// rule fired and the symbols it newly contributed.
type Step struct {
	ILFD  ILFD
	Added Conditions
}

// Proof is a derivation trace: the sequence of ILFD applications that
// takes the antecedent symbols to (a superset of) the consequent
// symbols. An empty Steps list means the inference is trivial
// (reflexivity).
type Proof struct {
	Goal  ILFD
	Steps []Step
}

// String renders the proof in the style of the §5.2 examples.
func (p Proof) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "goal: %v\n", p.Goal)
	if len(p.Steps) == 0 {
		b.WriteString("  trivial (reflexivity)\n")
		return b.String()
	}
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "  %d. apply %v  ⇒  %v\n", i+1, s.ILFD, s.Added)
	}
	return b.String()
}

// Explain decides F ⊨ f like Infers, and on success returns a minimal-
// length forward-chaining proof: only the rule applications actually
// needed to reach f's consequent, in firing order. ok is false when f
// does not follow from fs.
func Explain(fs Set, f ILFD) (Proof, bool) {
	proof := Proof{Goal: f}
	// Forward-chain, recording which rule produced each symbol.
	type origin struct {
		ruleIdx int
		// premises are the antecedent symbols the rule consumed.
		premises Conditions
	}
	inClosure := map[string]bool{}
	producedBy := map[string]origin{}
	for _, c := range f.Antecedent {
		inClosure[c.Key()] = true
	}
	fired := make([]bool, len(fs))
	for changed := true; changed; {
		changed = false
		for i, g := range fs {
			if fired[i] {
				continue
			}
			ok := true
			for _, c := range g.Antecedent {
				if !inClosure[c.Key()] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			fired[i] = true
			for _, c := range g.Consequent {
				if !inClosure[c.Key()] {
					inClosure[c.Key()] = true
					producedBy[c.Key()] = origin{ruleIdx: i, premises: g.Antecedent}
					changed = true
				}
			}
		}
	}
	for _, c := range f.Consequent {
		if !inClosure[c.Key()] {
			return Proof{}, false
		}
	}
	// Walk back from the goal symbols to collect only the needed rules,
	// then emit them in firing (index-discovery) order.
	needed := map[int]bool{}
	var visit func(c Condition)
	seen := map[string]bool{}
	visit = func(c Condition) {
		k := c.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		o, derived := producedBy[k]
		if !derived {
			return // an antecedent symbol of the goal
		}
		needed[o.ruleIdx] = true
		for _, p := range o.premises {
			visit(p)
		}
	}
	for _, c := range f.Consequent {
		visit(c)
	}
	// Re-run the chaining restricted to needed rules to get firing order
	// and per-step contributions.
	inClosure = map[string]bool{}
	for _, c := range f.Antecedent {
		inClosure[c.Key()] = true
	}
	firedOnce := map[int]bool{}
	for changed := true; changed; {
		changed = false
		for i, g := range fs {
			if !needed[i] || firedOnce[i] {
				continue
			}
			ok := true
			for _, c := range g.Antecedent {
				if !inClosure[c.Key()] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			firedOnce[i] = true
			var added Conditions
			for _, c := range g.Consequent {
				if !inClosure[c.Key()] {
					inClosure[c.Key()] = true
					added = append(added, c)
				}
			}
			proof.Steps = append(proof.Steps, Step{ILFD: g, Added: added.Normalize()})
			changed = true
		}
	}
	return proof, true
}

package ilfd

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"entityid/internal/schema"
	"entityid/internal/value"
)

// This file implements the small text format used by rule files and the
// CLI:
//
//	# comment
//	speciality=Hunan -> cuisine=Chinese
//	name=TwinCities & street=Co.B2 -> speciality=Hunan
//	street=FrontAve. -> county=Ramsey & region=East
//
// Each line is antecedent -> consequent; conjuncts are joined with '&'.
// Values may be double-quoted to include '&', '=', '#' or leading/
// trailing spaces; inside quotes, '\"' and '\\' escape a quote and a
// backslash. Without a schema, values parse as strings; with a schema,
// each value parses according to the attribute's declared kind.

// ParseLine parses one ILFD in the text format with string-typed values.
func ParseLine(line string) (ILFD, error) {
	return parseLine(line, nil)
}

// ParseLineTyped parses one ILFD, typing each value by the attribute's
// kind in sch. Attributes missing from the schema default to string.
func ParseLineTyped(line string, sch *schema.Schema) (ILFD, error) {
	return parseLine(line, sch)
}

func parseLine(line string, sch *schema.Schema) (ILFD, error) {
	parts := strings.SplitN(line, "->", 2)
	if len(parts) != 2 {
		return ILFD{}, fmt.Errorf("ilfd: parse %q: missing '->'", line)
	}
	ante, err := parseConjunction(parts[0], sch)
	if err != nil {
		return ILFD{}, fmt.Errorf("ilfd: parse %q: antecedent: %w", line, err)
	}
	cons, err := parseConjunction(parts[1], sch)
	if err != nil {
		return ILFD{}, fmt.Errorf("ilfd: parse %q: consequent: %w", line, err)
	}
	if len(cons) == 0 {
		return ILFD{}, fmt.Errorf("ilfd: parse %q: empty consequent", line)
	}
	return New(ante, cons)
}

func parseConjunction(text string, sch *schema.Schema) (Conditions, error) {
	var out Conditions
	for _, part := range splitTop(text, '&') {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := indexTop(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("condition %q: missing '='", part)
		}
		attr := strings.TrimSpace(part[:eq])
		raw := strings.TrimSpace(part[eq+1:])
		if attr == "" {
			return nil, fmt.Errorf("condition %q: empty attribute", part)
		}
		text, quoted, err := unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("condition %q: %w", part, err)
		}
		var v value.Value
		if quoted {
			v = value.String(text)
		} else {
			kind := value.KindString
			if sch != nil && sch.Has(attr) {
				kind = sch.KindOf(attr)
			}
			v, err = value.Parse(text, kind)
			if err != nil {
				return nil, fmt.Errorf("condition %q: %w", part, err)
			}
			if v.IsNull() {
				return nil, fmt.Errorf("condition %q: ILFD conditions relate concrete values, not NULL", part)
			}
		}
		out = append(out, Condition{Attr: attr, Val: v})
	}
	return out, nil
}

// splitTop splits on sep outside double quotes (backslash escapes are
// honoured inside quotes).
func splitTop(s string, sep byte) []string {
	var out []string
	quoted := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if quoted && i+1 < len(s) {
				i++
			}
		case '"':
			quoted = !quoted
		case sep:
			if !quoted {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// indexTop finds the first sep outside double quotes, or -1.
func indexTop(s string, sep byte) int {
	quoted := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if quoted && i+1 < len(s) {
				i++
			}
		case '"':
			quoted = !quoted
		case sep:
			if !quoted {
				return i
			}
		}
	}
	return -1
}

func unquote(s string) (text string, quoted bool, err error) {
	if !strings.HasPrefix(s, `"`) {
		return s, false, nil
	}
	var b strings.Builder
	for i := 1; i < len(s); {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", false, fmt.Errorf("dangling escape in %q", s)
			}
			if n := s[i+1]; n == '"' || n == '\\' {
				b.WriteByte(n)
			} else {
				// Tolerate rule files written before escaping existed:
				// a backslash before any other character is literal.
				// The formatter always escapes backslashes, so its own
				// output never takes this branch. The one legacy shape
				// this cannot recover is a quoted value ENDING in a
				// backslash (`"a\"`): the trailing `\"` is inherently
				// ambiguous with an escaped quote, and such lines now
				// fail to parse — rewrite them with `\\`.
				b.WriteByte('\\')
				b.WriteByte(n)
			}
			i += 2
		case '"':
			if i != len(s)-1 {
				return "", false, fmt.Errorf("data after closing quote in %q", s)
			}
			return b.String(), true, nil
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", false, fmt.Errorf("unterminated quote in %q", s)
}

// ParseSet reads a rule file: one ILFD per line, blank lines and
// #-comments skipped. A nil schema types every value as string.
func ParseSet(r io.Reader, sch *schema.Schema) (Set, error) {
	var out Set
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f, err := parseLine(line, sch)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MustParse parses a single ILFD line with string values, panicking on
// error; for literals in tests and examples.
func MustParse(line string) ILFD {
	f, err := ParseLine(line)
	if err != nil {
		panic(err)
	}
	return f
}

// FormatSet renders a set in the parsable text format (values quoted when
// they contain metacharacters).
func FormatSet(fs Set) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(formatRule(f))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatRule(f ILFD) string {
	return formatConj(f.Antecedent) + " -> " + formatConj(f.Consequent)
}

func formatConj(cs Conditions) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.Attr + "=" + quoteIfNeeded(c.Val)
	}
	return strings.Join(parts, " & ")
}

var quoteEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`)

func quoteIfNeeded(v value.Value) string {
	s := v.String()
	if v.Kind() == value.KindString &&
		(strings.ContainsAny(s, `&="#\`) || strings.TrimSpace(s) != s || s == "" ||
			strings.EqualFold(s, "null")) {
		return `"` + quoteEscaper.Replace(s) + `"`
	}
	return s
}

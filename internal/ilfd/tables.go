package ilfd

import (
	"fmt"
	"sort"

	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// Table is a relational representation of a family of uniform ILFDs
// (§4.2): ILFDs of the form (A1=a1) ∧ … ∧ (An=an) → (B=b) whose
// antecedent attributes Ā and consequent attribute B are the same across
// the family are stored as rows of a relation IM(A1,…,An,B). Table 8 of
// the paper stores I1–I4 as IM(speciality, cuisine).
type Table struct {
	rel  *relation.Relation
	from []string // antecedent attributes, in schema order
	to   string   // consequent attribute
}

// NewTable creates an empty ILFD table deriving attribute `to` from
// antecedent attributes `from`. Kinds describe the attribute domains, in
// from-then-to order; pass nil for all-string.
func NewTable(name string, from []string, to string, kinds []value.Kind) (*Table, error) {
	if len(from) == 0 {
		return nil, fmt.Errorf("ilfd table %s: no antecedent attributes", name)
	}
	if to == "" {
		return nil, fmt.Errorf("ilfd table %s: empty consequent attribute", name)
	}
	if kinds == nil {
		kinds = make([]value.Kind, len(from)+1)
		for i := range kinds {
			kinds[i] = value.KindString
		}
	}
	if len(kinds) != len(from)+1 {
		return nil, fmt.Errorf("ilfd table %s: %d kinds for %d attributes", name, len(kinds), len(from)+1)
	}
	attrs := make([]schema.Attribute, 0, len(from)+1)
	for i, a := range from {
		if a == to {
			return nil, fmt.Errorf("ilfd table %s: consequent %q also antecedent", name, to)
		}
		attrs = append(attrs, schema.Attribute{Name: a, Kind: kinds[i]})
	}
	attrs = append(attrs, schema.Attribute{Name: to, Kind: kinds[len(from)]})
	// The antecedent attributes form the key: one ILFD per antecedent
	// value combination, making the table functional by construction.
	sch, err := schema.New(name, attrs, append([]string(nil), from...))
	if err != nil {
		return nil, err
	}
	return &Table{rel: relation.New(sch), from: append([]string(nil), from...), to: to}, nil
}

// MustNewTable panics on error; for literals in tests and examples.
func MustNewTable(name string, from []string, to string, kinds []value.Kind) *Table {
	t, err := NewTable(name, from, to, kinds)
	if err != nil {
		panic(err)
	}
	return t
}

// From returns the antecedent attribute names.
func (t *Table) From() []string { return append([]string(nil), t.from...) }

// To returns the consequent attribute name.
func (t *Table) To() string { return t.to }

// Relation exposes the underlying relation (for joins and printing).
func (t *Table) Relation() *relation.Relation { return t.rel }

// Len returns the number of stored ILFDs.
func (t *Table) Len() int { return t.rel.Len() }

// Add stores the ILFD (from[0]=vals[0]) ∧ … → (to=last val). The key on
// the antecedent attributes rejects two ILFDs with the same antecedent
// and different consequents.
func (t *Table) Add(vals ...value.Value) error {
	if len(vals) != len(t.from)+1 {
		return fmt.Errorf("ilfd table %s: %d values, want %d", t.rel.Schema().Name(), len(vals), len(t.from)+1)
	}
	for i, v := range vals {
		if v.IsNull() {
			return fmt.Errorf("ilfd table %s: NULL in position %d (ILFDs relate concrete values)",
				t.rel.Schema().Name(), i)
		}
	}
	return t.rel.Insert(relation.Tuple(vals))
}

// MustAdd panics on error.
func (t *Table) MustAdd(vals ...value.Value) {
	if err := t.Add(vals...); err != nil {
		panic(err)
	}
}

// ILFDs expands the table back into its member ILFDs, in row order. The
// expansion is the inverse of FromSet for uniform families.
func (t *Table) ILFDs() Set {
	out := make(Set, 0, t.rel.Len())
	for _, row := range t.rel.Tuples() {
		ante := make(Conditions, len(t.from))
		for i, a := range t.from {
			ante[i] = Condition{Attr: a, Val: row[i]}
		}
		cons := Conditions{{Attr: t.to, Val: row[len(t.from)]}}
		out = append(out, MustNew(ante, cons))
	}
	return out
}

// Lookup derives the consequent value for the given antecedent values,
// reporting ok=false when no stored ILFD matches.
func (t *Table) Lookup(vals ...value.Value) (value.Value, bool) {
	i := t.rel.LookupKey(vals...)
	if i < 0 {
		return value.Null, false
	}
	return t.rel.Tuple(i)[len(t.from)], true
}

// signature groups uniform ILFDs: same antecedent attribute list (sorted)
// and same single consequent attribute.
func signature(f ILFD) (from []string, to string, ok bool) {
	if len(f.Consequent) != 1 || len(f.Antecedent) == 0 {
		return nil, "", false
	}
	to = f.Consequent[0].Attr
	seen := map[string]bool{}
	for _, c := range f.Antecedent {
		if seen[c.Attr] || c.Attr == to {
			// Two conditions on one attribute (unsatisfiable antecedent) or
			// a self-dependency cannot be stored relationally.
			return nil, "", false
		}
		seen[c.Attr] = true
		from = append(from, c.Attr)
	}
	sort.Strings(from)
	return from, to, true
}

// FromSet partitions a set of single-consequent ILFDs into uniform
// tables, one per (antecedent attributes, consequent attribute)
// signature, plus the remainder that does not fit the relational form
// (multi-consequent ILFDs are split first). This implements the paper's
// observation that "for the second category of useful ILFDs, it may be
// storage efficient to store the ILFDs as relations" (§4.2).
func FromSet(fs Set, kindOf func(attr string) value.Kind) (tables []*Table, rest Set, err error) {
	var split Set
	for _, f := range fs {
		if len(f.Consequent) > 1 {
			for _, c := range f.Consequent {
				split = append(split, MustNew(f.Antecedent, Conditions{c}))
			}
		} else {
			split = append(split, f)
		}
	}
	bySig := map[string]*Table{}
	var order []string
	for _, f := range split {
		from, to, ok := signature(f)
		if !ok {
			rest = append(rest, f)
			continue
		}
		sig := fmt.Sprintf("%v->%s", from, to)
		tab := bySig[sig]
		if tab == nil {
			kinds := make([]value.Kind, 0, len(from)+1)
			for _, a := range from {
				kinds = append(kinds, kindOf(a))
			}
			kinds = append(kinds, kindOf(to))
			name := fmt.Sprintf("IM(%s;%s)", joinComma(from), to)
			tab, err = NewTable(name, from, to, kinds)
			if err != nil {
				return nil, nil, err
			}
			bySig[sig] = tab
			order = append(order, sig)
		}
		vals := make([]value.Value, 0, len(from)+1)
		for _, a := range from {
			for _, c := range f.Antecedent {
				if c.Attr == a {
					vals = append(vals, c.Val)
					break
				}
			}
		}
		vals = append(vals, f.Consequent[0].Val)
		if err := tab.Add(vals...); err != nil {
			// Two ILFDs with the same antecedent but different consequent
			// values: functionally inconsistent, surface it.
			return nil, nil, fmt.Errorf("ilfd: inconsistent family: %w", err)
		}
	}
	for _, sig := range order {
		tables = append(tables, bySig[sig])
	}
	return tables, rest, nil
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

package ilfd

import (
	"strings"
	"testing"
)

// FuzzILFDParse throws arbitrary lines at the ILFD text parser. The
// properties: parsing never panics, and every accepted rule survives a
// format→parse round trip unchanged — so rule files written by
// FormatSet always reload to the same knowledge base.
func FuzzILFDParse(f *testing.F) {
	for _, seed := range []string{
		"speciality=Hunan -> cuisine=Chinese",
		"name=TwinCities & street=Co.B2 -> speciality=Hunan",
		`a="x & y" -> b="null"`,
		`a="" -> b=c & d=e`,
		"a=1 -> b=2 -> c=3",
		`spaced = v alue -> q="#quoted"`,
		"->",
		`broken="unterminated -> x=y`,
		"a=b",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		fd, err := ParseLine(line)
		if err != nil {
			return
		}
		text := strings.TrimSuffix(FormatSet(Set{fd}), "\n")
		again, err := ParseLine(text)
		if err != nil {
			t.Fatalf("formatted rule does not reparse: %q -> %q: %v", line, text, err)
		}
		if !again.Antecedent.Equal(fd.Antecedent) || !again.Consequent.Equal(fd.Consequent) {
			t.Fatalf("round trip changed the rule: %q -> %q: %v vs %v", line, text, fd, again)
		}
	})
}

package ilfd

import (
	"strings"
	"testing"

	"entityid/internal/schema"
	"entityid/internal/value"
)

// table8 builds the paper's Table 8: IM(speciality, cuisine) holding
// ILFDs I1–I4.
func table8(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable("IM(speciality;cuisine)", []string{"speciality"}, "cuisine", nil)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	for _, row := range [][2]string{
		{"Hunan", "Chinese"},
		{"Sichuan", "Chinese"},
		{"Gyros", "Greek"},
		{"Mughalai", "Indian"},
	} {
		if err := tab.Add(value.String(row[0]), value.String(row[1])); err != nil {
			t.Fatalf("Add %v: %v", row, err)
		}
	}
	return tab
}

func TestTableBasics(t *testing.T) {
	tab := table8(t)
	if tab.Len() != 4 {
		t.Errorf("Len = %d", tab.Len())
	}
	if got := tab.From(); len(got) != 1 || got[0] != "speciality" {
		t.Errorf("From = %v", got)
	}
	if tab.To() != "cuisine" {
		t.Errorf("To = %q", tab.To())
	}
	v, ok := tab.Lookup(value.String("Mughalai"))
	if !ok || v.Str() != "Indian" {
		t.Errorf("Lookup(Mughalai) = %v, %t", v, ok)
	}
	if _, ok := tab.Lookup(value.String("Tandoori")); ok {
		t.Error("Lookup of absent antecedent succeeded")
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable("T", nil, "b", nil); err == nil {
		t.Error("empty antecedent accepted")
	}
	if _, err := NewTable("T", []string{"a"}, "", nil); err == nil {
		t.Error("empty consequent accepted")
	}
	if _, err := NewTable("T", []string{"a"}, "a", nil); err == nil {
		t.Error("self-dependency accepted")
	}
	if _, err := NewTable("T", []string{"a"}, "b", []value.Kind{value.KindString}); err == nil {
		t.Error("wrong kind count accepted")
	}
	tab := MustNewTable("T", []string{"a"}, "b", nil)
	if err := tab.Add(value.String("x")); err == nil {
		t.Error("wrong value count accepted")
	}
	if err := tab.Add(value.Null, value.String("y")); err == nil {
		t.Error("NULL antecedent accepted")
	}
	tab.MustAdd(value.String("x"), value.String("y"))
	// Functional: same antecedent, different consequent rejected by key.
	if err := tab.Add(value.String("x"), value.String("z")); err == nil {
		t.Error("non-functional pair accepted")
	}
}

func TestTableILFDsRoundTrip(t *testing.T) {
	tab := table8(t)
	fs := tab.ILFDs()
	if len(fs) != 4 {
		t.Fatalf("ILFDs len = %d", len(fs))
	}
	want := MustParse("speciality=Hunan -> cuisine=Chinese")
	if !fs[0].Equal(want) {
		t.Errorf("ILFDs[0] = %v, want %v", fs[0], want)
	}
	// Round trip through FromSet reconstitutes one identical table.
	tables, rest, err := FromSet(fs, func(string) value.Kind { return value.KindString })
	if err != nil {
		t.Fatalf("FromSet: %v", err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %v", rest)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	if !tables[0].Relation().Equal(tab.Relation()) {
		// Relation names differ; compare tuples instead.
		a, b := tables[0].Relation(), tab.Relation()
		if a.Len() != b.Len() {
			t.Errorf("round-trip table size %d vs %d", a.Len(), b.Len())
		}
	}
	got := tables[0].ILFDs()
	if len(got) != 4 {
		t.Fatalf("round-trip ILFDs len = %d", len(got))
	}
	for i := range got {
		if !got[i].Equal(fs[i]) {
			t.Errorf("round-trip ILFD %d = %v, want %v", i, got[i], fs[i])
		}
	}
}

func TestFromSetPartitioning(t *testing.T) {
	fs := Set{
		// Uniform family 1: speciality -> cuisine.
		MustParse("speciality=Hunan -> cuisine=Chinese"),
		MustParse("speciality=Gyros -> cuisine=Greek"),
		// Uniform family 2: name & street -> speciality (the paper's I5/I6).
		MustParse("name=TwinCities & street=Co.B2 -> speciality=Hunan"),
		MustParse("name=Anjuman & street=LeSalleAve. -> speciality=Mughalai"),
		// Multi-consequent: split before partitioning.
		MustParse("street=FrontAve. -> county=Ramsey & region=East"),
		// Non-uniform leftover: contradictory antecedent on one attribute.
		MustNew(Conditions{C("a", "1"), C("a", "2")}, Conditions{C("b", "3")}),
	}
	tables, rest, err := FromSet(fs, func(string) value.Kind { return value.KindString })
	if err != nil {
		t.Fatalf("FromSet: %v", err)
	}
	if len(tables) != 4 {
		for _, tab := range tables {
			t.Logf("table: %s", tab.Relation().Schema())
		}
		t.Fatalf("tables = %d, want 4 (speciality->cuisine, name+street->speciality, street->county, street->region)", len(tables))
	}
	if len(rest) != 1 {
		t.Errorf("rest = %v, want the contradictory-antecedent ILFD", rest)
	}
	// Family equivalence: expanding all tables + rest must be equivalent
	// to the original set.
	var expanded Set
	for _, tab := range tables {
		expanded = append(expanded, tab.ILFDs()...)
	}
	expanded = append(expanded, rest...)
	if !Equivalent(expanded, fs) {
		t.Error("table expansion not equivalent to original set")
	}
}

func TestFromSetDetectsInconsistentFamily(t *testing.T) {
	fs := Set{
		MustParse("speciality=Hunan -> cuisine=Chinese"),
		MustParse("speciality=Hunan -> cuisine=Greek"),
	}
	_, _, err := FromSet(fs, func(string) value.Kind { return value.KindString })
	if err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Errorf("FromSet error = %v, want inconsistent-family error", err)
	}
}

// --- Parser ---

func TestParseLine(t *testing.T) {
	f, err := ParseLine("speciality=Hunan -> cuisine=Chinese")
	if err != nil {
		t.Fatalf("ParseLine: %v", err)
	}
	if len(f.Antecedent) != 1 || len(f.Consequent) != 1 {
		t.Fatalf("parsed shape = %v", f)
	}
	if f.Antecedent[0].Attr != "speciality" || f.Antecedent[0].Val.Str() != "Hunan" {
		t.Errorf("antecedent = %v", f.Antecedent)
	}
}

func TestParseConjunctions(t *testing.T) {
	f := MustParse("name=TwinCities & street=Co.B2 -> speciality=Hunan")
	if len(f.Antecedent) != 2 {
		t.Errorf("antecedent = %v", f.Antecedent)
	}
	g := MustParse("a=1 -> b=2 & c=3")
	if len(g.Consequent) != 2 {
		t.Errorf("consequent = %v", g.Consequent)
	}
}

func TestParseQuoted(t *testing.T) {
	f := MustParse(`label="a & b = c" -> tag="x#y"`)
	if got := f.Antecedent[0].Val.Str(); got != "a & b = c" {
		t.Errorf("quoted antecedent value = %q", got)
	}
	if got := f.Consequent[0].Val.Str(); got != "x#y" {
		t.Errorf("quoted consequent value = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"no arrow here",
		"a=1 -> ",
		"-> b=2",         // empty antecedent is allowed ONLY when non-empty text... see below
		"a -> b=2",       // missing '='
		"=1 -> b=2",      // empty attribute
		`a="open -> b=2`, // unterminated quote
		"a=null -> b=2",  // NULL condition
		"a=1 -> b=null",  // NULL consequent
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			// "-> b=2" parses as an empty antecedent which New allows;
			// treat it as acceptable only if documented — we require
			// explicit error for everything in this list except that case.
			if line == "-> b=2" {
				continue
			}
			t.Errorf("ParseLine(%q) succeeded, want error", line)
		}
	}
}

func TestParseLineTyped(t *testing.T) {
	sch := schema.MustNew("T", []schema.Attribute{
		{Name: "n", Kind: value.KindInt},
		{Name: "s", Kind: value.KindString},
	})
	f, err := ParseLineTyped("n=42 -> s=ok", sch)
	if err != nil {
		t.Fatalf("ParseLineTyped: %v", err)
	}
	if f.Antecedent[0].Val.Kind() != value.KindInt {
		t.Errorf("typed antecedent kind = %v", f.Antecedent[0].Val.Kind())
	}
	if _, err := ParseLineTyped("n=notint -> s=ok", sch); err == nil {
		t.Error("bad typed value accepted")
	}
	// Quoted values stay strings even with a schema.
	g, err := ParseLineTyped(`s="42" -> s=ok`, sch)
	if err != nil {
		t.Fatal(err)
	}
	if g.Antecedent[0].Val.Kind() != value.KindString {
		t.Error("quoted value not string")
	}
}

func TestParseSet(t *testing.T) {
	src := `
# ILFDs I1-I4 of Example 3
speciality=Hunan -> cuisine=Chinese
speciality=Sichuan -> cuisine=Chinese

speciality=Gyros -> cuisine=Greek
speciality=Mughalai -> cuisine=Indian
`
	fs, err := ParseSet(strings.NewReader(src), nil)
	if err != nil {
		t.Fatalf("ParseSet: %v", err)
	}
	if len(fs) != 4 {
		t.Fatalf("parsed %d ILFDs", len(fs))
	}
	// Error includes line number.
	_, err = ParseSet(strings.NewReader("ok=1 -> b=2\nbroken line\n"), nil)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("ParseSet error = %v", err)
	}
}

func TestFormatSetRoundTrip(t *testing.T) {
	fs := Set{
		MustParse("speciality=Hunan -> cuisine=Chinese"),
		MustParse(`label="a & b" -> tag="x=y"`),
		MustParse("name=TwinCities & street=Co.B2 -> speciality=Hunan"),
	}
	text := FormatSet(fs)
	back, err := ParseSet(strings.NewReader(text), nil)
	if err != nil {
		t.Fatalf("reparse: %v\ntext:\n%s", err, text)
	}
	if len(back) != len(fs) {
		t.Fatalf("round trip count %d vs %d", len(back), len(fs))
	}
	for i := range fs {
		if !back[i].Equal(fs[i]) {
			t.Errorf("round trip %d: %v vs %v", i, back[i], fs[i])
		}
	}
}

func TestQuoteIfNeeded(t *testing.T) {
	cases := []struct {
		v    value.Value
		want string
	}{
		{value.String("plain"), "plain"},
		{value.String("has space"), "has space"}, // inner spaces fine
		{value.String(" lead"), `" lead"`},
		{value.String("a&b"), `"a&b"`},
		{value.String("a=b"), `"a=b"`},
		{value.String("null"), `"null"`},
		{value.String(""), `""`},
		{value.Int(42), "42"},
	}
	for _, c := range cases {
		if got := quoteIfNeeded(c.v); got != c.want {
			t.Errorf("quoteIfNeeded(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseQuotedEscapes(t *testing.T) {
	// The escaped forms the formatter emits.
	f := MustParse(`label="a\"b" -> tag="c\\d"`)
	if got := f.Antecedent[0].Val.Str(); got != `a"b` {
		t.Errorf("escaped quote value = %q", got)
	}
	if got := f.Consequent[0].Val.Str(); got != `c\d` {
		t.Errorf("escaped backslash value = %q", got)
	}
	// Legacy tolerance: rule files written before escaping existed kept
	// lone backslashes literal inside quotes; they must still load.
	legacy := MustParse(`path="b&\c" -> tag=x`)
	if got := legacy.Antecedent[0].Val.Str(); got != `b&\c` {
		t.Errorf("legacy lone backslash value = %q", got)
	}
	// And the reloaded rule round-trips through the modern formatter.
	again := MustParse(strings.TrimSuffix(FormatSet(Set{legacy}), "\n"))
	if !again.Antecedent.Equal(legacy.Antecedent) || !again.Consequent.Equal(legacy.Consequent) {
		t.Errorf("legacy value does not round-trip: %v vs %v", again, legacy)
	}
	// Pinned limitation: a quoted value ENDING in a backslash is
	// inherently ambiguous with an escaped closing quote and no longer
	// parses; such legacy lines must be rewritten with `\\`.
	if _, err := ParseLine(`path="a\" -> tag=x`); err == nil {
		t.Error("trailing-backslash quoted value parsed; ambiguity should be rejected")
	}
}

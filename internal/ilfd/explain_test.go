package ilfd

import (
	"strings"
	"testing"
)

// TestExplainI9 reproduces the paper's derived ILFD I9: from I7
// (street=FrontAve. → county=Ramsey) and I8 (name=It'sGreek ∧
// county=Ramsey → speciality=Gyros), derive I9 (name=It'sGreek ∧
// street=FrontAve. → speciality=Gyros) with an inspectable proof.
func TestExplainI9(t *testing.T) {
	fs := Set{
		MustParse("speciality=Hunan -> cuisine=Chinese"),                // noise
		MustParse("street=FrontAve. -> county=Ramsey"),                  // I7
		MustParse("name=It'sGreek & county=Ramsey -> speciality=Gyros"), // I8
		MustParse("speciality=Mughalai -> cuisine=Indian"),              // noise
	}
	i9 := MustParse("name=It'sGreek & street=FrontAve. -> speciality=Gyros")
	proof, ok := Explain(fs, i9)
	if !ok {
		t.Fatal("I9 not derivable")
	}
	if len(proof.Steps) != 2 {
		t.Fatalf("proof steps = %d, want 2 (I7 then I8):\n%s", len(proof.Steps), proof)
	}
	if !proof.Steps[0].ILFD.Equal(fs[1]) {
		t.Errorf("step 1 = %v, want I7", proof.Steps[0].ILFD)
	}
	if !proof.Steps[1].ILFD.Equal(fs[2]) {
		t.Errorf("step 2 = %v, want I8", proof.Steps[1].ILFD)
	}
	// Contributions recorded.
	if !proof.Steps[0].Added.Contains(C("county", "Ramsey")) {
		t.Errorf("step 1 added = %v", proof.Steps[0].Added)
	}
	if !proof.Steps[1].Added.Contains(C("speciality", "Gyros")) {
		t.Errorf("step 2 added = %v", proof.Steps[1].Added)
	}
	// Noise rules must not appear.
	for _, s := range proof.Steps {
		for _, c := range s.ILFD.Consequent {
			if c.Attr == "cuisine" {
				t.Errorf("irrelevant rule in proof: %v", s.ILFD)
			}
		}
	}
	out := proof.String()
	for _, want := range []string{"goal:", "1. apply", "2. apply", "Gyros"} {
		if !strings.Contains(out, want) {
			t.Errorf("proof rendering missing %q:\n%s", want, out)
		}
	}
}

func TestExplainTrivial(t *testing.T) {
	proof, ok := Explain(nil, MustParse("a=1 -> a=1"))
	if !ok {
		t.Fatal("trivial inference rejected")
	}
	if len(proof.Steps) != 0 {
		t.Errorf("trivial proof has %d steps", len(proof.Steps))
	}
	if !strings.Contains(proof.String(), "reflexivity") {
		t.Errorf("trivial rendering = %q", proof.String())
	}
}

func TestExplainFailure(t *testing.T) {
	fs := Set{MustParse("a=1 -> b=2")}
	if _, ok := Explain(fs, MustParse("b=2 -> a=1")); ok {
		t.Error("converse explained")
	}
	if _, ok := Explain(fs, MustParse("a=1 -> c=3")); ok {
		t.Error("unreachable consequent explained")
	}
}

// TestExplainAgreesWithInfers is the coherence property: Explain
// succeeds exactly when Infers says the inference holds, across a
// deterministic family of goals.
func TestExplainAgreesWithInfers(t *testing.T) {
	fs := Set{
		MustParse("a=1 -> b=2"),
		MustParse("b=2 -> c=3"),
		MustParse("c=3 & d=4 -> e=5"),
		MustParse("x=9 -> y=8"),
	}
	goals := []ILFD{
		MustParse("a=1 -> c=3"),
		MustParse("a=1 -> e=5"),
		MustParse("a=1 & d=4 -> e=5"),
		MustParse("x=9 -> y=8"),
		MustParse("x=9 -> c=3"),
		MustParse("a=1 & x=9 -> y=8"),
	}
	for _, g := range goals {
		proof, ok := Explain(fs, g)
		if ok != Infers(fs, g) {
			t.Errorf("Explain(%v) = %t, Infers = %t", g, ok, Infers(fs, g))
			continue
		}
		if !ok {
			continue
		}
		// Replaying the proof steps from the antecedent must reach the
		// consequent: the proof is self-contained.
		have := map[string]bool{}
		for _, c := range g.Antecedent {
			have[c.Key()] = true
		}
		for _, s := range proof.Steps {
			for _, c := range s.ILFD.Antecedent {
				if !have[c.Key()] {
					t.Errorf("proof for %v applies %v before its premise %v is available",
						g, s.ILFD, c)
				}
			}
			for _, c := range s.ILFD.Consequent {
				have[c.Key()] = true
			}
		}
		for _, c := range g.Consequent {
			if !have[c.Key()] {
				t.Errorf("proof for %v never derives %v", g, c)
			}
		}
	}
}

package paperdata

import (
	"testing"

	"entityid/internal/ilfd"
)

// The fixture tests pin the paper's data against accidental edits:
// sizes, keys and a handful of cell values straight from the tables.

func TestTable1Fixtures(t *testing.T) {
	r, s := Table1R(), Table1S()
	if r.Len() != 3 || s.Len() != 3 {
		t.Fatalf("sizes %d/%d", r.Len(), s.Len())
	}
	if !r.Schema().IsKey([]string{"name", "street"}) {
		t.Error("R key wrong")
	}
	if !s.Schema().IsKey([]string{"name", "city"}) {
		t.Error("S key wrong")
	}
	if got := r.MustValue(0, "name").Str(); got != "VillageWok" {
		t.Errorf("R[0].name = %q", got)
	}
	if got := s.MustValue(2, "manager").Str(); got != "Tom" {
		t.Errorf("S[2].manager = %q", got)
	}
	c := Table1Correspondences(r, s)
	if got := c.Names(); len(got) != 1 || got[0] != "name" {
		t.Errorf("correspondences = %v", got)
	}
}

func TestTable2Fixtures(t *testing.T) {
	r, s := Table2R(), Table2S()
	if r.Len() != 2 || s.Len() != 1 {
		t.Fatalf("sizes %d/%d", r.Len(), s.Len())
	}
	if !r.Schema().IsKey([]string{"name", "cuisine"}) {
		t.Error("R key wrong")
	}
	if !s.Schema().IsKey([]string{"name", "speciality"}) {
		t.Error("S key wrong")
	}
	f := Example2ILFD()
	if f.String() != "(speciality=Mughalai) → (cuisine=Indian)" {
		t.Errorf("I4 = %v", f)
	}
	if c := Table2Correspondences(r, s); c == nil {
		t.Error("correspondences nil")
	}
}

func TestTable5Fixtures(t *testing.T) {
	r, s := Table5R(), Table5S()
	if r.Len() != 5 || s.Len() != 4 {
		t.Fatalf("sizes %d/%d", r.Len(), s.Len())
	}
	if got := r.MustValue(4, "street").Str(); got != "Wash.Ave." {
		t.Errorf("R[4].street = %q", got)
	}
	if got := s.MustValue(3, "county").Str(); got != "Mpls." {
		t.Errorf("S[3].county = %q", got)
	}
	if c := Table5Correspondences(r, s); c == nil {
		t.Error("correspondences nil")
	}
}

func TestExample3ILFDFixtures(t *testing.T) {
	fs := Example3ILFDs()
	if len(fs) != 8 {
		t.Fatalf("ILFDs = %d, want I1–I8", len(fs))
	}
	// The set must be internally consistent and non-redundant except for
	// combined inferences (each I is essential).
	for i := range fs {
		if ilfd.Redundant(fs, i) {
			t.Errorf("I%d is redundant: %v", i+1, fs[i])
		}
	}
	// The paper's derived I9.
	if !ilfd.Infers(fs, Example3DerivedI9()) {
		t.Error("I9 not derivable from I1–I8")
	}
	// But not the converse of I7.
	if ilfd.Infers(fs, ilfd.MustParse("county=Ramsey -> street=FrontAve.")) {
		t.Error("converse of I7 wrongly derivable")
	}
	if got := len(Example3ExtendedKey()); got != 3 {
		t.Errorf("extended key size = %d", got)
	}
}

func TestTable6Table7Table8Fixtures(t *testing.T) {
	rp, sp := Table6RPrime(), Table6SPrime()
	if rp.Len() != 5 || sp.Len() != 4 {
		t.Fatalf("extended sizes %d/%d", rp.Len(), sp.Len())
	}
	// NULL cells exactly where the paper has them.
	if !rp.MustValue(1, "speciality").IsNull() {
		t.Error("R'[TwinCities,Indian].speciality not NULL")
	}
	if !rp.MustValue(4, "speciality").IsNull() {
		t.Error("R'[VillageWok].speciality not NULL")
	}
	if rp.MustValue(0, "speciality").IsNull() {
		t.Error("R'[TwinCities,Chinese].speciality NULL, want Hunan")
	}
	if got := Table7Expected(); len(got) != 3 {
		t.Errorf("Table 7 rows = %d", len(got))
	}
	tab := Table8()
	if tab.Len() != 4 {
		t.Errorf("Table 8 rows = %d", tab.Len())
	}
	if v, ok := tab.Lookup(Table8().Relation().Tuple(0)[0]); !ok || v.Str() != "Chinese" {
		t.Errorf("Table 8 lookup = %v, %t", v, ok)
	}
}

func TestFigure2Fixtures(t *testing.T) {
	r, s := Figure2R(), Figure2S()
	// The whole point: identical attribute values.
	if !r.Tuple(0).Identical(s.Tuple(0)) {
		t.Error("Figure 2 tuples differ")
	}
	rd, sd := Figure2RWithDomain(), Figure2SWithDomain()
	if rd.MustValue(0, "domain").Str() == sd.MustValue(0, "domain").Str() {
		t.Error("domain attributes equal; scenario broken")
	}
	if got := Figure2Distinctness(); len(got) != 1 {
		t.Errorf("distinctness rules = %d", len(got))
	}
}

// Package paperdata holds the exact example data of Lim et al.: the
// relations of Tables 1, 2 and 5, the ILFDs I1–I8 of Example 3, the
// Figure 2 soundness-failure scenario, and the attribute correspondences
// each example assumes. Tests, experiments, examples and benchmarks all
// draw on these fixtures so the reproduced tables stay pinned to the
// paper.
package paperdata

import (
	"entityid/internal/ilfd"
	"entityid/internal/relation"
	"entityid/internal/rules"
	"entityid/internal/schema"
	"entityid/internal/value"
)

func s(v string) value.Value { return value.String(v) }

// Table1R returns relation R of Table 1: restaurants with candidate key
// (name, street).
//
//	name        street     cuisine
//	VillageWok  Wash.Ave.  Chinese
//	Ching       Co.B Rd.   Chinese
//	OldCountry  Co.B2 Rd.  American
func Table1R() *relation.Relation {
	sch := schema.MustNew("R",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "street", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
		},
		[]string{"name", "street"},
	)
	r := relation.New(sch)
	r.MustInsert(s("VillageWok"), s("Wash.Ave."), s("Chinese"))
	r.MustInsert(s("Ching"), s("Co.B Rd."), s("Chinese"))
	r.MustInsert(s("OldCountry"), s("Co.B2 Rd."), s("American"))
	return r
}

// Table1S returns relation S of Table 1: restaurants with candidate key
// (name, city).
//
//	name         city       manager
//	VillageWok   Mpls       Hwang
//	OldCountry   Roseville  Libby
//	ExpressCafe  Burnsville Tom
func Table1S() *relation.Relation {
	sch := schema.MustNew("S",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "city", Kind: value.KindString},
			{Name: "manager", Kind: value.KindString},
		},
		[]string{"name", "city"},
	)
	r := relation.New(sch)
	r.MustInsert(s("VillageWok"), s("Mpls"), s("Hwang"))
	r.MustInsert(s("OldCountry"), s("Roseville"), s("Libby"))
	r.MustInsert(s("ExpressCafe"), s("Burnsville"), s("Tom"))
	return r
}

// Table1Correspondences links Table 1's R and S: only name corresponds.
func Table1Correspondences(r, sRel *relation.Relation) *schema.Correspondences {
	return schema.MustNewCorrespondences(r.Schema(), sRel.Schema(), []schema.Correspondence{
		{Name: "name", Left: "name", Right: "name"},
	})
}

// Table2R returns relation R of Table 2 (Example 2), key (name, cuisine)
// per the paper's underlining.
//
//	name        cuisine  street
//	TwinCities  Chinese  Wash.Ave.
//	TwinCities  Indian   Univ.Ave.
func Table2R() *relation.Relation {
	sch := schema.MustNew("R",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
			{Name: "street", Kind: value.KindString},
		},
		[]string{"name", "cuisine"},
	)
	r := relation.New(sch)
	r.MustInsert(s("TwinCities"), s("Chinese"), s("Wash.Ave."))
	r.MustInsert(s("TwinCities"), s("Indian"), s("Univ.Ave."))
	return r
}

// Table2S returns relation S of Table 2 (Example 2), key (name,
// speciality).
//
//	name        speciality  city
//	TwinCities  Mughalai    St. Paul
func Table2S() *relation.Relation {
	sch := schema.MustNew("S",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "speciality", Kind: value.KindString},
			{Name: "city", Kind: value.KindString},
		},
		[]string{"name", "speciality"},
	)
	r := relation.New(sch)
	r.MustInsert(s("TwinCities"), s("Mughalai"), s("St. Paul"))
	return r
}

// Table2Correspondences links Table 2's R and S: only name corresponds
// directly; cuisine exists only in R and speciality only in S.
func Table2Correspondences(r, sRel *relation.Relation) *schema.Correspondences {
	return schema.MustNewCorrespondences(r.Schema(), sRel.Schema(), []schema.Correspondence{
		{Name: "name", Left: "name", Right: "name"},
	})
}

// Example2ILFD returns I4, the single ILFD Example 2 uses:
// speciality=Mughalai → cuisine=Indian.
func Example2ILFD() ilfd.ILFD {
	return ilfd.MustParse("speciality=Mughalai -> cuisine=Indian")
}

// Table5R returns relation R of Table 5 (Example 3), key (name, cuisine).
//
//	name        cuisine  street
//	TwinCities  Chinese  Co.B2
//	TwinCities  Indian   Co.B3
//	It'sGreek   Greek    FrontAve.
//	Anjuman     Indian   LeSalleAve.
//	VillageWok  Chinese  Wash.Ave.
func Table5R() *relation.Relation {
	sch := schema.MustNew("R",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
			{Name: "street", Kind: value.KindString},
		},
		[]string{"name", "cuisine"},
	)
	r := relation.New(sch)
	r.MustInsert(s("TwinCities"), s("Chinese"), s("Co.B2"))
	r.MustInsert(s("TwinCities"), s("Indian"), s("Co.B3"))
	r.MustInsert(s("It'sGreek"), s("Greek"), s("FrontAve."))
	r.MustInsert(s("Anjuman"), s("Indian"), s("LeSalleAve."))
	r.MustInsert(s("VillageWok"), s("Chinese"), s("Wash.Ave."))
	return r
}

// Table5S returns relation S of Table 5 (Example 3), key (name,
// speciality).
//
//	name        speciality  county
//	TwinCities  Hunan       Roseville
//	TwinCities  Sichuan     Hennepin
//	It'sGreek   Gyros       Ramsey
//	Anjuman     Mughalai    Mpls.
func Table5S() *relation.Relation {
	sch := schema.MustNew("S",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "speciality", Kind: value.KindString},
			{Name: "county", Kind: value.KindString},
		},
		[]string{"name", "speciality"},
	)
	r := relation.New(sch)
	r.MustInsert(s("TwinCities"), s("Hunan"), s("Roseville"))
	r.MustInsert(s("TwinCities"), s("Sichuan"), s("Hennepin"))
	r.MustInsert(s("It'sGreek"), s("Gyros"), s("Ramsey"))
	r.MustInsert(s("Anjuman"), s("Mughalai"), s("Mpls."))
	return r
}

// Table5Correspondences links Table 5's R and S. name corresponds in
// both; the extended key's cuisine and speciality each exist in only one
// relation — the correspondences record their one-sided locations with
// the absent side left empty (""), which the ek package treats as
// missing.
//
// The prototype's setup_extkey lists exactly these three integrated
// attributes: Name (r_name, s_name), Spec (r_spec, s_spec), Cui (r_cui,
// s_cui) — after the relations are extended, both sides carry all three.
func Table5Correspondences(r, sRel *relation.Relation) *schema.Correspondences {
	return schema.MustNewCorrespondences(r.Schema(), sRel.Schema(), []schema.Correspondence{
		{Name: "name", Left: "name", Right: "name"},
	})
}

// Example3ILFDs returns ILFDs I1–I8 of Example 3 in paper order. The
// derived I9 (It'sGreek ∧ FrontAve. → Gyros) follows from I7 and I8 by
// the axioms; tests confirm it with ilfd.Infers.
//
//	I1: speciality=Hunan → cuisine=Chinese
//	I2: speciality=Sichuan → cuisine=Chinese
//	I3: speciality=Gyros → cuisine=Greek
//	I4: speciality=Mughalai → cuisine=Indian
//	I5: name=TwinCities ∧ street=Co.B2 → speciality=Hunan
//	I6: name=Anjuman ∧ street=LeSalleAve. → speciality=Mughalai
//	I7: street=FrontAve. → county=Ramsey
//	I8: name=It'sGreek ∧ county=Ramsey → speciality=Gyros
func Example3ILFDs() ilfd.Set {
	return ilfd.Set{
		ilfd.MustParse("speciality=Hunan -> cuisine=Chinese"),
		ilfd.MustParse("speciality=Sichuan -> cuisine=Chinese"),
		ilfd.MustParse("speciality=Gyros -> cuisine=Greek"),
		ilfd.MustParse("speciality=Mughalai -> cuisine=Indian"),
		ilfd.MustParse("name=TwinCities & street=Co.B2 -> speciality=Hunan"),
		ilfd.MustParse("name=Anjuman & street=LeSalleAve. -> speciality=Mughalai"),
		ilfd.MustParse("street=FrontAve. -> county=Ramsey"),
		ilfd.MustParse("name=It'sGreek & county=Ramsey -> speciality=Gyros"),
	}
}

// Example3DerivedI9 returns the ILFD the paper lists as derived:
// I9: name=It'sGreek ∧ street=FrontAve. → speciality=Gyros.
func Example3DerivedI9() ilfd.ILFD {
	return ilfd.MustParse("name=It'sGreek & street=FrontAve. -> speciality=Gyros")
}

// Example3ExtendedKey returns the extended key of Example 3:
// {name, cuisine, speciality}.
func Example3ExtendedKey() []string {
	return []string{"name", "cuisine", "speciality"}
}

// Table6RPrime returns the expected extended relation R′ of Table 6.
// Attribute order follows the paper: name, cuisine, speciality, street.
//
//	TwinCities  Chinese  Hunan     Co.B2
//	TwinCities  Indian   NULL      Co.B3
//	It'sGreek   Greek    Gyros     FrontAve.
//	Anjuman     Indian   Mughalai  LeSalleAve.
//	VillageWok  Chinese  NULL      Wash.Ave.
func Table6RPrime() *relation.Relation {
	sch := schema.MustNew("R'",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
			{Name: "speciality", Kind: value.KindString},
			{Name: "street", Kind: value.KindString},
		},
		[]string{"name", "cuisine"},
	)
	r := relation.New(sch)
	r.MustInsert(s("TwinCities"), s("Chinese"), s("Hunan"), s("Co.B2"))
	r.MustInsert(s("TwinCities"), s("Indian"), value.Null, s("Co.B3"))
	r.MustInsert(s("It'sGreek"), s("Greek"), s("Gyros"), s("FrontAve."))
	r.MustInsert(s("Anjuman"), s("Indian"), s("Mughalai"), s("LeSalleAve."))
	r.MustInsert(s("VillageWok"), s("Chinese"), value.Null, s("Wash.Ave."))
	return r
}

// Table6SPrime returns the expected extended relation S′ of Table 6.
// Attribute order follows the paper: name, speciality, cuisine, county.
//
//	TwinCities  Hunan     Chinese  Roseville
//	TwinCities  Sichuan   Chinese  Hennepin
//	It'sGreek   Gyros     Greek    Ramsey
//	Anjuman     Mughalai  Indian   Mpls.
func Table6SPrime() *relation.Relation {
	sch := schema.MustNew("S'",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "speciality", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
			{Name: "county", Kind: value.KindString},
		},
		[]string{"name", "speciality"},
	)
	r := relation.New(sch)
	r.MustInsert(s("TwinCities"), s("Hunan"), s("Chinese"), s("Roseville"))
	r.MustInsert(s("TwinCities"), s("Sichuan"), s("Chinese"), s("Hennepin"))
	r.MustInsert(s("It'sGreek"), s("Gyros"), s("Greek"), s("Ramsey"))
	r.MustInsert(s("Anjuman"), s("Mughalai"), s("Indian"), s("Mpls."))
	return r
}

// Table7Expected returns the expected matching table MT_RS of Table 7 as
// (R.name, R.cuisine, S.name, S.speciality) rows, sorted as the
// prototype prints them.
//
//	anjuman     indian   anjuman     mughalai
//	it'sgreek   greek    it'sgreek   gyros
//	twincities  chinese  twincities  hunan
func Table7Expected() [][4]string {
	return [][4]string{
		{"Anjuman", "Indian", "Anjuman", "Mughalai"},
		{"It'sGreek", "Greek", "It'sGreek", "Gyros"},
		{"TwinCities", "Chinese", "TwinCities", "Hunan"},
	}
}

// Table8 returns the paper's Table 8: ILFDs I1–I4 stored as the relation
// IM(speciality, cuisine).
func Table8() *ilfd.Table {
	tab := ilfd.MustNewTable("IM(speciality;cuisine)", []string{"speciality"}, "cuisine", nil)
	tab.MustAdd(s("Hunan"), s("Chinese"))
	tab.MustAdd(s("Sichuan"), s("Chinese"))
	tab.MustAdd(s("Gyros"), s("Greek"))
	tab.MustAdd(s("Mughalai"), s("Indian"))
	return tab
}

// Figure2R and Figure2S model the Figure 2 scenario: two databases whose
// tuples have identical attribute values but model two different
// real-world entities (VillageWok on Wash.Ave. in DB1 vs VillageWok on
// Co.B2.Rd. in DB2 — street is not modeled in either relation, so
// attribute-value equivalence wrongly equates them).
func Figure2R() *relation.Relation {
	sch := schema.MustNew("R",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
		},
		[]string{"name"},
	)
	r := relation.New(sch)
	r.MustInsert(s("VillageWok"), s("Chinese"))
	return r
}

// Figure2S is the DB2 relation of the Figure 2 scenario.
func Figure2S() *relation.Relation {
	sch := schema.MustNew("S",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
		},
		[]string{"name"},
	)
	r := relation.New(sch)
	r.MustInsert(s("VillageWok"), s("Chinese"))
	return r
}

// Figure2RWithDomain and Figure2SWithDomain add the domain attribute the
// paper proposes as the fix: tuples carry their source database, so
// assertions can distinguish the two worlds.
func Figure2RWithDomain() *relation.Relation {
	sch := schema.MustNew("R",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
			{Name: "domain", Kind: value.KindString},
		},
		[]string{"name"},
	)
	r := relation.New(sch)
	r.MustInsert(s("VillageWok"), s("Chinese"), s("DB1"))
	return r
}

// Figure2Distinctness returns the DBA assertion that fixes Figure 2's
// unsoundness: databases DB1 and DB2 model disjoint subsets of the
// restaurant domain, so a DB1 tuple and a DB2 tuple are never the same
// entity.
func Figure2Distinctness() []rules.DistinctnessRule {
	return []rules.DistinctnessRule{
		rules.MustNewDistinctness("disjoint-domains", []rules.Predicate{
			{Left: rules.Attr1("domain"), Op: rules.Eq, Right: rules.Const(value.String("DB1"))},
			{Left: rules.Attr2("domain"), Op: rules.Eq, Right: rules.Const(value.String("DB2"))},
		}),
	}
}

// Figure2SWithDomain is the DB2 relation with the domain attribute.
func Figure2SWithDomain() *relation.Relation {
	sch := schema.MustNew("S",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
			{Name: "domain", Kind: value.KindString},
		},
		[]string{"name"},
	)
	r := relation.New(sch)
	r.MustInsert(s("VillageWok"), s("Chinese"), s("DB2"))
	return r
}

// Package rules implements the paper's identity and distinctness rules
// (§3.2), the knowledge an entity-identification process uses to declare
// two tuples matched or unmatched.
//
// An identity rule has the form
//
//	∀ e1,e2 ∈ E:  P(e1.A1,…,e1.Am, e2.B1,…,e2.Bn) → (e1 ≡ e2)
//
// where P is a conjunction of predicates "ei.attr op ej.attr" or
// "ei.attr op value" and — crucially — P must imply e1.Ai = e2.Ai for
// every attribute Ai appearing in P. The paper's example r2
// ((e1.cuisine="Chinese") → e1 ≡ e2) is rejected by exactly this
// well-formedness check: it never constrains e2.
//
// A distinctness rule has the same predicate language with the opposite
// conclusion (e1 ≢ e2) and the weaker requirement that P involve some
// attribute from each of e1 and e2. Proposition 1 maps every ILFD to a
// distinctness rule; ToDistinctness/ILFDFromDistinctness implement both
// directions.
package rules

import (
	"fmt"
	"strings"

	"entityid/internal/ilfd"
	"entityid/internal/relation"
	"entityid/internal/value"
)

// Op is a comparison operator in a rule predicate: =, ≠, <, ≤, >, ≥
// (§3.2 allows exactly these).
type Op int

// The predicate operators.
const (
	Eq Op = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "≠"
	case Lt:
		return "<"
	case Le:
		return "≤"
	case Gt:
		return ">"
	case Ge:
		return "≥"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// eval applies the operator to two non-NULL values. NULL operands make
// every predicate false (missing information proves nothing).
func (o Op) eval(a, b value.Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	switch o {
	case Eq:
		return value.Equal(a, b)
	case Ne:
		return !value.Equal(a, b) && a.Kind() == b.Kind()
	case Lt:
		return a.Kind() == b.Kind() && value.Compare(a, b) < 0
	case Le:
		return a.Kind() == b.Kind() && value.Compare(a, b) <= 0
	case Gt:
		return a.Kind() == b.Kind() && value.Compare(a, b) > 0
	case Ge:
		return a.Kind() == b.Kind() && value.Compare(a, b) >= 0
	default:
		return false
	}
}

// Side selects which entity a predicate operand refers to.
type Side int

// The two entities of a rule.
const (
	E1 Side = 1
	E2 Side = 2
)

// Operand is either an attribute reference ei.attr or a constant.
type Operand struct {
	// Side and Attr are set for attribute references.
	Side Side
	Attr string
	// Const is set (non-NULL) for constants.
	Const value.Value
}

// Attr1 references e1.attr.
func Attr1(attr string) Operand { return Operand{Side: E1, Attr: attr} }

// Attr2 references e2.attr.
func Attr2(attr string) Operand { return Operand{Side: E2, Attr: attr} }

// Const wraps a constant value.
func Const(v value.Value) Operand { return Operand{Const: v} }

// IsConst reports whether the operand is a constant.
func (o Operand) IsConst() bool { return o.Side == 0 }

// String renders the operand.
func (o Operand) String() string {
	if o.IsConst() {
		return fmt.Sprintf("%q", o.Const.String())
	}
	return fmt.Sprintf("e%d.%s", o.Side, o.Attr)
}

// resolve fetches the operand's value given the two tuples.
func (o Operand) resolve(r1 *relation.Relation, t1 relation.Tuple, r2 *relation.Relation, t2 relation.Tuple) value.Value {
	if o.IsConst() {
		return o.Const
	}
	var r *relation.Relation
	var t relation.Tuple
	if o.Side == E1 {
		r, t = r1, t1
	} else {
		r, t = r2, t2
	}
	i := r.Schema().Index(o.Attr)
	if i < 0 {
		return value.Null
	}
	return t[i]
}

// Predicate is one comparison in a rule's conjunction.
type Predicate struct {
	Left  Operand
	Op    Op
	Right Operand
}

// String renders the predicate.
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// Holds evaluates the predicate over a pair of tuples.
func (p Predicate) Holds(r1 *relation.Relation, t1 relation.Tuple, r2 *relation.Relation, t2 relation.Tuple) bool {
	a := p.Left.resolve(r1, t1, r2, t2)
	b := p.Right.resolve(r1, t1, r2, t2)
	return p.Op.eval(a, b)
}

// IdentityRule concludes e1 ≡ e2 when all predicates hold.
type IdentityRule struct {
	Name  string
	Preds []Predicate
}

// DistinctnessRule concludes e1 ≢ e2 when all predicates hold.
type DistinctnessRule struct {
	Name  string
	Preds []Predicate
}

// NewIdentity validates and builds an identity rule. Well-formedness
// (§3.2): the conjunction must imply e1.A = e2.A for every attribute A
// appearing in any predicate. The implication checker recognises the two
// forms the paper's examples use:
//
//   - a direct cross predicate e1.A = e2.A, and
//   - a pair of constant predicates e1.A = v and e2.A = v with the same
//     constant (the r1 pattern: cuisine="Chinese" on both sides).
//
// Any attribute mentioned without being pinned equal on both sides makes
// the rule ill-formed (the paper's r2).
func NewIdentity(name string, preds []Predicate) (IdentityRule, error) {
	if len(preds) == 0 {
		return IdentityRule{}, fmt.Errorf("identity rule %s: no predicates", name)
	}
	if err := impliesAttrEquality(preds); err != nil {
		return IdentityRule{}, fmt.Errorf("identity rule %s: %w", name, err)
	}
	return IdentityRule{Name: name, Preds: append([]Predicate(nil), preds...)}, nil
}

// MustNewIdentity panics on error; for literals in tests and examples.
func MustNewIdentity(name string, preds []Predicate) IdentityRule {
	r, err := NewIdentity(name, preds)
	if err != nil {
		panic(err)
	}
	return r
}

// impliesAttrEquality enforces the paper's identity-rule side condition.
func impliesAttrEquality(preds []Predicate) error {
	type constPin struct {
		val value.Value
		ok  bool
	}
	crossEqual := map[string]bool{} // attr -> e1.attr = e2.attr present
	constPins := map[Side]map[string]constPin{E1: {}, E2: {}}
	mentioned := map[string]bool{}

	for _, p := range preds {
		for _, o := range []Operand{p.Left, p.Right} {
			if !o.IsConst() {
				mentioned[o.Attr] = true
			}
		}
		if p.Op != Eq {
			continue
		}
		l, r := p.Left, p.Right
		// e1.A = e2.A (either orientation).
		if !l.IsConst() && !r.IsConst() && l.Attr == r.Attr && l.Side != r.Side {
			crossEqual[l.Attr] = true
		}
		// ei.A = const (either orientation).
		if !l.IsConst() && r.IsConst() {
			constPins[l.Side][l.Attr] = constPin{val: r.Const, ok: true}
		}
		if l.IsConst() && !r.IsConst() {
			constPins[r.Side][r.Attr] = constPin{val: l.Const, ok: true}
		}
	}
	for attr := range mentioned {
		if crossEqual[attr] {
			continue
		}
		p1, p2 := constPins[E1][attr], constPins[E2][attr]
		if p1.ok && p2.ok && value.Equal(p1.val, p2.val) {
			continue
		}
		return fmt.Errorf("predicates do not imply e1.%s = e2.%s (cf. the paper's ill-formed rule r2)", attr, attr)
	}
	return nil
}

// Holds evaluates the identity rule over a pair of tuples: true means
// the rule asserts e1 ≡ e2 for this pair.
func (r IdentityRule) Holds(r1 *relation.Relation, t1 relation.Tuple, r2 *relation.Relation, t2 relation.Tuple) bool {
	for _, p := range r.Preds {
		if !p.Holds(r1, t1, r2, t2) {
			return false
		}
	}
	return true
}

// String renders the rule.
func (r IdentityRule) String() string {
	return fmt.Sprintf("%s: %s → e1 ≡ e2", r.Name, formatPreds(r.Preds))
}

// NewDistinctness validates and builds a distinctness rule. The §3.2
// side condition is weaker than for identity rules: P must involve at
// least one attribute of each of e1 and e2.
func NewDistinctness(name string, preds []Predicate) (DistinctnessRule, error) {
	if len(preds) == 0 {
		return DistinctnessRule{}, fmt.Errorf("distinctness rule %s: no predicates", name)
	}
	has := map[Side]bool{}
	for _, p := range preds {
		for _, o := range []Operand{p.Left, p.Right} {
			if !o.IsConst() {
				has[o.Side] = true
			}
		}
	}
	if !has[E1] || !has[E2] {
		return DistinctnessRule{}, fmt.Errorf("distinctness rule %s: predicates must involve attributes of both e1 and e2", name)
	}
	return DistinctnessRule{Name: name, Preds: append([]Predicate(nil), preds...)}, nil
}

// MustNewDistinctness panics on error.
func MustNewDistinctness(name string, preds []Predicate) DistinctnessRule {
	r, err := NewDistinctness(name, preds)
	if err != nil {
		panic(err)
	}
	return r
}

// Holds evaluates the distinctness rule: true means the rule asserts
// e1 ≢ e2 for this pair.
func (r DistinctnessRule) Holds(r1 *relation.Relation, t1 relation.Tuple, r2 *relation.Relation, t2 relation.Tuple) bool {
	for _, p := range r.Preds {
		if !p.Holds(r1, t1, r2, t2) {
			return false
		}
	}
	return true
}

// String renders the rule.
func (r DistinctnessRule) String() string {
	return fmt.Sprintf("%s: %s → e1 ≢ e2", r.Name, formatPreds(r.Preds))
}

func formatPreds(preds []Predicate) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, " ∧ ")
}

// ToDistinctness implements the "only if" direction of Proposition 1:
// the ILFD (A1=a1) ∧ … ∧ (An=an) → (B=b) becomes, for each consequent
// condition, the distinctness rule
//
//	(e1.A1=a1) ∧ … ∧ (e1.An=an) ∧ (e2.B ≠ b) → (e1 ≢ e2).
//
// Multi-consequent ILFDs yield one rule per consequent condition.
func ToDistinctness(f ilfd.ILFD) []DistinctnessRule {
	var out []DistinctnessRule
	for _, cons := range f.Consequent {
		preds := make([]Predicate, 0, len(f.Antecedent)+1)
		for _, a := range f.Antecedent {
			preds = append(preds, Predicate{Left: Attr1(a.Attr), Op: Eq, Right: Const(a.Val)})
		}
		preds = append(preds, Predicate{Left: Attr2(cons.Attr), Op: Ne, Right: Const(cons.Val)})
		name := fmt.Sprintf("dist(%s)", f.String())
		out = append(out, MustNewDistinctness(name, preds))
	}
	return out
}

// ILFDFromDistinctness implements the "if" direction of Proposition 1:
// a distinctness rule of the Prop.-1 shape — e1-side constant equalities
// plus a single e2-side constant inequality — converts back to the ILFD
// whose antecedent is the e1 conjunction and whose consequent negates
// the inequality. Rules of any other shape return ok=false.
func ILFDFromDistinctness(r DistinctnessRule) (ilfd.ILFD, bool) {
	var ante ilfd.Conditions
	var cons ilfd.Conditions
	for _, p := range r.Preds {
		l, rt := p.Left, p.Right
		// Normalize orientation: attribute on the left.
		if l.IsConst() && !rt.IsConst() {
			l, rt = rt, l
		}
		if l.IsConst() || !rt.IsConst() {
			return ilfd.ILFD{}, false
		}
		switch {
		case p.Op == Eq && l.Side == E1:
			ante = append(ante, ilfd.Condition{Attr: l.Attr, Val: rt.Const})
		case p.Op == Ne && l.Side == E2:
			if len(cons) > 0 {
				return ilfd.ILFD{}, false
			}
			cons = ilfd.Conditions{{Attr: l.Attr, Val: rt.Const}}
		default:
			return ilfd.ILFD{}, false
		}
	}
	if len(ante) == 0 || len(cons) != 1 {
		return ilfd.ILFD{}, false
	}
	f, err := ilfd.New(ante, cons)
	if err != nil {
		return ilfd.ILFD{}, false
	}
	return f, true
}

// KeyEquivalence builds the identity rule "agree on every attribute of
// key ⇒ same entity", the classical key-equivalence rule of §2.2 (and
// the extended-key equivalence rule of §4.1 when key is an extended
// key). Attribute names are shared between the two sides; callers with
// differently-named attributes should rename first (see the ek package
// for correspondence-aware construction).
func KeyEquivalence(name string, key []string) (IdentityRule, error) {
	if len(key) == 0 {
		return IdentityRule{}, fmt.Errorf("identity rule %s: empty key", name)
	}
	preds := make([]Predicate, 0, len(key))
	for _, a := range key {
		preds = append(preds, Predicate{Left: Attr1(a), Op: Eq, Right: Attr2(a)})
	}
	return NewIdentity(name, preds)
}

package rules

import (
	"reflect"
	"testing"

	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

func compileSchemas(t *testing.T) (*schema.Schema, *schema.Schema, relation.Tuple, relation.Tuple) {
	t.Helper()
	s1 := schema.MustNew("R", []schema.Attribute{
		{Name: "name"}, {Name: "cuisine"}, {Name: "rank", Kind: value.KindInt},
	})
	s2 := schema.MustNew("S", []schema.Attribute{
		{Name: "cuisine"}, {Name: "name"}, {Name: "rank", Kind: value.KindInt},
	})
	t1 := relation.Tuple{value.String("wok"), value.String("chinese"), value.Int(3)}
	t2 := relation.Tuple{value.String("chinese"), value.String("wok"), value.Int(5)}
	return s1, s2, t1, t2
}

// TestCompiledAgreesWithInterpreted pins the compiled evaluator to the
// interpreted one over every operator, attribute layout (the two
// schemas order their columns differently), NULL operands, and an
// absent attribute.
func TestCompiledAgreesWithInterpreted(t *testing.T) {
	s1, s2, t1, t2 := compileSchemas(t)
	r1, r2 := relation.New(s1), relation.New(s2)
	preds := []Predicate{
		{Left: Attr1("name"), Op: Eq, Right: Attr2("name")},
		{Left: Attr1("cuisine"), Op: Eq, Right: Const(value.String("chinese"))},
		{Left: Attr1("rank"), Op: Lt, Right: Attr2("rank")},
		{Left: Attr1("rank"), Op: Ge, Right: Attr2("rank")},
		{Left: Attr1("rank"), Op: Ne, Right: Const(value.String("3"))}, // kind mismatch
		{Left: Attr1("missing"), Op: Eq, Right: Attr2("name")},         // absent attribute
		{Left: Const(value.Null), Op: Eq, Right: Attr2("name")},        // NULL operand
	}
	for n, p := range preds {
		want := p.Holds(r1, t1, r2, t2)
		got := CompiledPredicate{
			left:  compileOperand(p.Left, s1, s2),
			op:    p.Op,
			right: compileOperand(p.Right, s1, s2),
		}.Holds(t1, t2)
		if got != want {
			t.Errorf("pred %d (%s): compiled %v, interpreted %v", n, p, got, want)
		}
	}
}

func TestCompiledRuleBothOrientations(t *testing.T) {
	s1, s2, t1, t2 := compileSchemas(t)
	r1, r2 := relation.New(s1), relation.New(s2)
	rule := MustNewDistinctness("ranked", []Predicate{
		{Left: Attr1("name"), Op: Eq, Right: Attr2("name")},
		{Left: Attr1("rank"), Op: Lt, Right: Attr2("rank")},
	})
	fwd := rule.Compile(s1, s2)
	rev := rule.Compile(s2, s1)
	if got, want := fwd.Holds(t1, t2), rule.Holds(r1, t1, r2, t2); got != want {
		t.Errorf("forward: compiled %v, interpreted %v", got, want)
	}
	if got, want := rev.Holds(t2, t1), rule.Holds(r2, t2, r1, t1); got != want {
		t.Errorf("reverse: compiled %v, interpreted %v", got, want)
	}
	if !fwd.Holds(t1, t2) || rev.Holds(t2, t1) {
		t.Errorf("rank 3 < 5 should hold forward only: fwd %v rev %v", fwd.Holds(t1, t2), rev.Holds(t2, t1))
	}
}

func TestEqualityAttrs(t *testing.T) {
	rule := MustNewIdentity("r", []Predicate{
		{Left: Attr1("name"), Op: Eq, Right: Attr2("name")},
		{Left: Attr2("city"), Op: Eq, Right: Attr1("city")},
		{Left: Attr1("cuisine"), Op: Eq, Right: Const(value.String("chinese"))},
		{Left: Attr2("cuisine"), Op: Eq, Right: Const(value.String("chinese"))},
	})
	if got, want := rule.EqualityAttrs(), []string{"city", "name"}; !reflect.DeepEqual(got, want) {
		t.Errorf("EqualityAttrs = %v, want %v", got, want)
	}
	constOnly := MustNewIdentity("c", []Predicate{
		{Left: Attr1("cuisine"), Op: Eq, Right: Const(value.String("chinese"))},
		{Left: Attr2("cuisine"), Op: Eq, Right: Const(value.String("chinese"))},
	})
	if got := constOnly.EqualityAttrs(); len(got) != 0 {
		t.Errorf("EqualityAttrs = %v, want none", got)
	}
}

func TestSidePredicates(t *testing.T) {
	s1, s2, t1, _ := compileSchemas(t)
	rule := MustNewDistinctness("d", []Predicate{
		{Left: Attr1("cuisine"), Op: Eq, Right: Const(value.String("chinese"))}, // e1-only
		{Left: Attr2("rank"), Op: Gt, Right: Const(value.Int(1))},               // e2-only
		{Left: Attr1("name"), Op: Ne, Right: Attr2("name")},                     // cross
		{Left: Const(value.Int(1)), Op: Eq, Right: Const(value.Int(1))},         // const-only
	})
	e1, e2, cross := rule.Compile(s1, s2).SidePredicates()
	if len(e1) != 2 || len(e2) != 1 || len(cross) != 1 {
		t.Fatalf("split = %d/%d/%d preds, want 2/1/1", len(e1), len(e2), len(cross))
	}
	if !e1[0].HoldsSingle(E1, t1) {
		t.Errorf("e1-only predicate should hold on %v", t1)
	}
	if !e1[1].HoldsSingle(E1, nil) {
		t.Errorf("const-only predicate should hold with no tuple at all")
	}
	if cross[0].HoldsSingle(E1, t1) {
		t.Errorf("cross predicate must fail single-side evaluation")
	}
}

package rules

import (
	"strings"
	"testing"

	"entityid/internal/ilfd"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

func mkPair(t *testing.T) (*relation.Relation, *relation.Relation) {
	t.Helper()
	r := relation.New(schema.MustNew("R",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
			{Name: "speciality", Kind: value.KindString},
			{Name: "rating", Kind: value.KindInt},
		},
		[]string{"name"},
	))
	r.MustInsert(value.String("twincities"), value.String("chinese"), value.String("hunan"), value.Int(4))
	r.MustInsert(value.String("anjuman"), value.String("indian"), value.String("mughalai"), value.Int(5))
	r.MustInsert(value.String("mystery"), value.Null, value.Null, value.Int(2))

	s := relation.New(schema.MustNew("S",
		[]schema.Attribute{
			{Name: "name", Kind: value.KindString},
			{Name: "cuisine", Kind: value.KindString},
			{Name: "speciality", Kind: value.KindString},
			{Name: "rating", Kind: value.KindInt},
		},
		[]string{"name"},
	))
	s.MustInsert(value.String("twincities"), value.String("chinese"), value.String("hunan"), value.Int(4))
	s.MustInsert(value.String("olympia"), value.String("greek"), value.String("gyros"), value.Int(3))
	return r, s
}

func TestOpString(t *testing.T) {
	want := map[Op]string{Eq: "=", Ne: "≠", Lt: "<", Le: "≤", Gt: ">", Ge: "≥", Op(99): "op(99)"}
	for op, w := range want {
		if got := op.String(); got != w {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, w)
		}
	}
}

func TestOpEval(t *testing.T) {
	one, two := value.Int(1), value.Int(2)
	cases := []struct {
		op   Op
		a, b value.Value
		want bool
	}{
		{Eq, one, one, true},
		{Eq, one, two, false},
		{Ne, one, two, true},
		{Ne, one, one, false},
		{Lt, one, two, true},
		{Le, one, one, true},
		{Gt, two, one, true},
		{Ge, one, two, false},
		// NULL operands: always false, every operator.
		{Eq, value.Null, value.Null, false},
		{Ne, value.Null, one, false},
		{Lt, value.Null, one, false},
		// Cross-kind comparisons are false (domains were reconciled at
		// schema integration; mismatches indicate misuse).
		{Ne, one, value.String("1"), false},
		{Lt, one, value.String("2"), false},
	}
	for _, c := range cases {
		if got := c.op.eval(c.a, c.b); got != c.want {
			t.Errorf("%v.eval(%v, %v) = %t, want %t", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestPredicateHolds(t *testing.T) {
	r, s := mkPair(t)
	p := Predicate{Left: Attr1("name"), Op: Eq, Right: Attr2("name")}
	if !p.Holds(r, r.Tuple(0), s, s.Tuple(0)) {
		t.Error("name=name predicate fails on equal names")
	}
	if p.Holds(r, r.Tuple(1), s, s.Tuple(1)) {
		t.Error("name=name predicate holds on different names")
	}
	pc := Predicate{Left: Attr1("cuisine"), Op: Eq, Right: Const(value.String("chinese"))}
	if !pc.Holds(r, r.Tuple(0), s, s.Tuple(0)) {
		t.Error("const predicate fails")
	}
	// NULL attribute: predicate false.
	if pc.Holds(r, r.Tuple(2), s, s.Tuple(0)) {
		t.Error("predicate holds on NULL attribute")
	}
	// Unknown attribute resolves to NULL: predicate false.
	pu := Predicate{Left: Attr1("bogus"), Op: Eq, Right: Const(value.String("x"))}
	if pu.Holds(r, r.Tuple(0), s, s.Tuple(0)) {
		t.Error("predicate holds on unknown attribute")
	}
}

func TestOperandString(t *testing.T) {
	if got := Attr1("name").String(); got != "e1.name" {
		t.Errorf("Attr1 String = %q", got)
	}
	if got := Attr2("cui").String(); got != "e2.cui" {
		t.Errorf("Attr2 String = %q", got)
	}
	if got := Const(value.String("x")).String(); got != `"x"` {
		t.Errorf("Const String = %q", got)
	}
}

// TestPaperRuleR1R2 reproduces the §3.2 example: r1 is a well-formed
// identity rule; r2 is rejected because its antecedent does not imply
// e2.cuisine = e1.cuisine.
func TestPaperRuleR1R2(t *testing.T) {
	r1, err := NewIdentity("r1", []Predicate{
		{Left: Attr1("cuisine"), Op: Eq, Right: Const(value.String("Chinese"))},
		{Left: Attr2("cuisine"), Op: Eq, Right: Const(value.String("Chinese"))},
	})
	if err != nil {
		t.Fatalf("r1 rejected: %v", err)
	}
	if len(r1.Preds) != 2 {
		t.Errorf("r1 predicates = %d", len(r1.Preds))
	}
	_, err = NewIdentity("r2", []Predicate{
		{Left: Attr1("cuisine"), Op: Eq, Right: Const(value.String("Chinese"))},
	})
	if err == nil {
		t.Fatal("r2 accepted; the paper's well-formedness condition not enforced")
	}
	if !strings.Contains(err.Error(), "r2") && !strings.Contains(err.Error(), "imply") {
		t.Errorf("r2 rejection message unhelpful: %v", err)
	}
}

func TestIdentityWellFormedness(t *testing.T) {
	// Cross equality makes an attribute safe.
	if _, err := NewIdentity("ok", []Predicate{
		{Left: Attr1("name"), Op: Eq, Right: Attr2("name")},
	}); err != nil {
		t.Errorf("cross-equality rule rejected: %v", err)
	}
	// Reversed orientation also recognised.
	if _, err := NewIdentity("ok2", []Predicate{
		{Left: Attr2("name"), Op: Eq, Right: Attr1("name")},
		{Left: Const(value.String("Chinese")), Op: Eq, Right: Attr1("cuisine")},
		{Left: Attr2("cuisine"), Op: Eq, Right: Const(value.String("Chinese"))},
	}); err != nil {
		t.Errorf("reversed orientations rejected: %v", err)
	}
	// Constant pins with different constants do not imply equality.
	if _, err := NewIdentity("bad", []Predicate{
		{Left: Attr1("cuisine"), Op: Eq, Right: Const(value.String("Chinese"))},
		{Left: Attr2("cuisine"), Op: Eq, Right: Const(value.String("Greek"))},
	}); err == nil {
		t.Error("different-constant rule accepted")
	}
	// Inequality predicates never pin attributes.
	if _, err := NewIdentity("bad2", []Predicate{
		{Left: Attr1("rating"), Op: Ge, Right: Attr2("rating")},
	}); err == nil {
		t.Error("inequality-only rule accepted")
	}
	// Same-side "cross" equality (e1.a = e1.a) must not count.
	if _, err := NewIdentity("bad3", []Predicate{
		{Left: Attr1("name"), Op: Eq, Right: Attr1("name")},
	}); err == nil {
		t.Error("same-side equality rule accepted")
	}
	if _, err := NewIdentity("empty", nil); err == nil {
		t.Error("empty identity rule accepted")
	}
}

func TestIdentityHolds(t *testing.T) {
	r, s := mkPair(t)
	rule := MustNewIdentity("keyish", []Predicate{
		{Left: Attr1("name"), Op: Eq, Right: Attr2("name")},
		{Left: Attr1("cuisine"), Op: Eq, Right: Attr2("cuisine")},
	})
	if !rule.Holds(r, r.Tuple(0), s, s.Tuple(0)) {
		t.Error("rule fails on matching pair")
	}
	if rule.Holds(r, r.Tuple(1), s, s.Tuple(1)) {
		t.Error("rule holds on non-matching pair")
	}
	// NULL cuisine on e1: predicate false, rule does not fire (sound).
	if rule.Holds(r, r.Tuple(2), s, s.Tuple(0)) {
		t.Error("rule holds with NULL attribute")
	}
	if got := rule.String(); !strings.Contains(got, "≡") || !strings.Contains(got, "keyish") {
		t.Errorf("String = %q", got)
	}
}

func TestDistinctnessValidation(t *testing.T) {
	// The paper's r3: e1.speciality="Mughalai" ∧ e2.cuisine≠"Indian" → e1 ≢ e2.
	r3, err := NewDistinctness("r3", []Predicate{
		{Left: Attr1("speciality"), Op: Eq, Right: Const(value.String("Mughalai"))},
		{Left: Attr2("cuisine"), Op: Ne, Right: Const(value.String("Indian"))},
	})
	if err != nil {
		t.Fatalf("r3 rejected: %v", err)
	}
	if got := r3.String(); !strings.Contains(got, "≢") {
		t.Errorf("String = %q", got)
	}
	// Must involve both sides.
	if _, err := NewDistinctness("one-sided", []Predicate{
		{Left: Attr1("speciality"), Op: Eq, Right: Const(value.String("Mughalai"))},
	}); err == nil {
		t.Error("one-sided distinctness rule accepted")
	}
	if _, err := NewDistinctness("empty", nil); err == nil {
		t.Error("empty distinctness rule accepted")
	}
}

func TestDistinctnessHolds(t *testing.T) {
	r, s := mkPair(t)
	rule := MustNewDistinctness("r3", []Predicate{
		{Left: Attr1("speciality"), Op: Eq, Right: Const(value.String("mughalai"))},
		{Left: Attr2("cuisine"), Op: Ne, Right: Const(value.String("indian"))},
	})
	// r tuple 1 is the mughalai restaurant; s tuple 1 is greek: distinct.
	if !rule.Holds(r, r.Tuple(1), s, s.Tuple(1)) {
		t.Error("distinctness rule fails on genuinely distinct pair")
	}
	// s tuple 0 is chinese — also ≠ indian, so the rule fires there too.
	if !rule.Holds(r, r.Tuple(1), s, s.Tuple(0)) {
		t.Error("distinctness rule fails on chinese restaurant")
	}
	// Antecedent not satisfied: rule silent.
	if rule.Holds(r, r.Tuple(0), s, s.Tuple(1)) {
		t.Error("distinctness rule fires without antecedent")
	}
	// NULL e2.cuisine: Ne is false on NULL, rule must not fire (sound:
	// missing information is not evidence of distinctness).
	r2, _ := mkPair(t)
	if rule.Holds(r2, r2.Tuple(1), r2, r2.Tuple(2)) {
		t.Error("distinctness rule fires on NULL attribute")
	}
}

// TestProposition1 checks both directions of Prop. 1 on the paper's
// example ILFD I4: speciality=Mughalai → cuisine=Indian.
func TestProposition1(t *testing.T) {
	f := ilfd.MustParse("speciality=Mughalai -> cuisine=Indian")
	ds := ToDistinctness(f)
	if len(ds) != 1 {
		t.Fatalf("ToDistinctness returned %d rules", len(ds))
	}
	d := ds[0]
	// Shape: e1.speciality = Mughalai ∧ e2.cuisine ≠ Indian.
	if len(d.Preds) != 2 {
		t.Fatalf("rule predicates = %v", d.Preds)
	}
	// Round trip back to the ILFD.
	back, ok := ILFDFromDistinctness(d)
	if !ok {
		t.Fatal("ILFDFromDistinctness failed on Prop-1-shaped rule")
	}
	if !back.Equal(f) {
		t.Errorf("round trip = %v, want %v", back, f)
	}
}

func TestProposition1MultiConsequent(t *testing.T) {
	f := ilfd.MustParse("street=FrontAve. -> county=Ramsey & state=MN")
	ds := ToDistinctness(f)
	if len(ds) != 2 {
		t.Fatalf("multi-consequent ToDistinctness returned %d rules", len(ds))
	}
	for _, d := range ds {
		back, ok := ILFDFromDistinctness(d)
		if !ok {
			t.Errorf("round trip failed for %v", d)
			continue
		}
		if !back.Antecedent.Equal(f.Antecedent) {
			t.Errorf("antecedent drifted: %v", back)
		}
	}
}

func TestILFDFromDistinctnessRejectsOtherShapes(t *testing.T) {
	// Cross-attribute rule: not Prop-1 shape.
	cross := MustNewDistinctness("cross", []Predicate{
		{Left: Attr1("a"), Op: Lt, Right: Attr2("a")},
	})
	if _, ok := ILFDFromDistinctness(cross); ok {
		t.Error("cross-attribute rule converted")
	}
	// Two inequalities: not Prop-1 shape.
	twoNe := MustNewDistinctness("twone", []Predicate{
		{Left: Attr1("a"), Op: Eq, Right: Const(value.String("1"))},
		{Left: Attr2("b"), Op: Ne, Right: Const(value.String("2"))},
		{Left: Attr2("c"), Op: Ne, Right: Const(value.String("3"))},
	})
	if _, ok := ILFDFromDistinctness(twoNe); ok {
		t.Error("double-inequality rule converted")
	}
	// Eq on e2 side: not Prop-1 shape.
	eqE2 := MustNewDistinctness("eqe2", []Predicate{
		{Left: Attr1("a"), Op: Eq, Right: Const(value.String("1"))},
		{Left: Attr2("b"), Op: Eq, Right: Const(value.String("2"))},
	})
	if _, ok := ILFDFromDistinctness(eqE2); ok {
		t.Error("e2-equality rule converted")
	}
}

// TestProposition1Semantics verifies the semantic content of Prop. 1 on
// data: for tuples drawn from an ILFD-consistent world, whenever the
// derived distinctness rule fires on a pair, the pair genuinely refers
// to different entities (here: keys differ).
func TestProposition1Semantics(t *testing.T) {
	r, s := mkPair(t)
	f := ilfd.MustParse("speciality=hunan -> cuisine=chinese")
	for _, d := range ToDistinctness(f) {
		for i := 0; i < r.Len(); i++ {
			for j := 0; j < s.Len(); j++ {
				if d.Holds(r, r.Tuple(i), s, s.Tuple(j)) {
					// Pairs the rule declares distinct must not share the
					// (name) key — in this fixture names are entity ids.
					if value.Equal(r.MustValue(i, "name"), s.MustValue(j, "name")) {
						t.Errorf("distinctness fired on same-entity pair (%d,%d)", i, j)
					}
				}
			}
		}
	}
}

func TestKeyEquivalence(t *testing.T) {
	rule, err := KeyEquivalence("key-eq", []string{"name", "cuisine"})
	if err != nil {
		t.Fatalf("KeyEquivalence: %v", err)
	}
	r, s := mkPair(t)
	if !rule.Holds(r, r.Tuple(0), s, s.Tuple(0)) {
		t.Error("key equivalence fails on matching pair")
	}
	if rule.Holds(r, r.Tuple(1), s, s.Tuple(0)) {
		t.Error("key equivalence holds on non-matching pair")
	}
	if _, err := KeyEquivalence("empty", nil); err == nil {
		t.Error("empty key accepted")
	}
}

// Rule compilation: the engine-facing evaluation layer. An interpreted
// rule resolves each operand's attribute name to a column offset through
// Schema().Index on every evaluation; over an |R|×|S| sweep that lookup
// dominates. Compile binds a rule to a concrete (e1-schema, e2-schema)
// pair once, after which Holds works on raw tuple slices with no map
// traffic. Semantics are identical to the interpreted path: an operand
// whose attribute is absent from its schema resolves to NULL, and NULL
// operands make every predicate false.

package rules

import (
	"sort"

	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// compiledOperand is an operand with its attribute reference resolved to
// a column offset (-1 when the schema lacks the attribute).
type compiledOperand struct {
	constVal value.Value
	isConst  bool
	e2       bool // references e2's tuple rather than e1's
	idx      int
}

func compileOperand(o Operand, s1, s2 *schema.Schema) compiledOperand {
	if o.IsConst() {
		return compiledOperand{constVal: o.Const, isConst: true}
	}
	s, e2 := s1, false
	if o.Side == E2 {
		s, e2 = s2, true
	}
	return compiledOperand{e2: e2, idx: s.Index(o.Attr)}
}

func (o compiledOperand) value(t1, t2 relation.Tuple) value.Value {
	if o.isConst {
		return o.constVal
	}
	t := t1
	if o.e2 {
		t = t2
	}
	if o.idx < 0 || o.idx >= len(t) {
		return value.Null
	}
	return t[o.idx]
}

// CompiledPredicate is a predicate with both operands resolved.
type CompiledPredicate struct {
	left, right compiledOperand
	op          Op
}

// Holds evaluates the predicate over raw tuples laid out per the schemas
// the predicate was compiled against (t1 for e1, t2 for e2).
func (p CompiledPredicate) Holds(t1, t2 relation.Tuple) bool {
	return p.op.eval(p.left.value(t1, t2), p.right.value(t1, t2))
}

func compilePreds(preds []Predicate, s1, s2 *schema.Schema) []CompiledPredicate {
	out := make([]CompiledPredicate, len(preds))
	for i, p := range preds {
		out[i] = CompiledPredicate{
			left:  compileOperand(p.Left, s1, s2),
			op:    p.Op,
			right: compileOperand(p.Right, s1, s2),
		}
	}
	return out
}

func allHold(preds []CompiledPredicate, t1, t2 relation.Tuple) bool {
	for _, p := range preds {
		if !p.Holds(t1, t2) {
			return false
		}
	}
	return true
}

// CompiledIdentityRule is an identity rule bound to an (e1, e2) schema
// pair. The zero value holds for nothing.
type CompiledIdentityRule struct {
	Name  string
	preds []CompiledPredicate
}

// Compile resolves the rule's operands against s1 (e1's schema) and s2
// (e2's schema). Evaluating the opposite orientation requires a second
// compilation with the schemas swapped.
func (r IdentityRule) Compile(s1, s2 *schema.Schema) CompiledIdentityRule {
	return CompiledIdentityRule{Name: r.Name, preds: compilePreds(r.Preds, s1, s2)}
}

// Holds reports whether every predicate holds for (t1, t2), with t1 laid
// out per the compile-time e1 schema and t2 per the e2 schema.
func (c CompiledIdentityRule) Holds(t1, t2 relation.Tuple) bool {
	return allHold(c.preds, t1, t2)
}

// CompiledDistinctnessRule is a distinctness rule bound to an (e1, e2)
// schema pair.
type CompiledDistinctnessRule struct {
	Name  string
	preds []CompiledPredicate
}

// Compile resolves the rule's operands against s1 (e1's schema) and s2
// (e2's schema).
func (r DistinctnessRule) Compile(s1, s2 *schema.Schema) CompiledDistinctnessRule {
	return CompiledDistinctnessRule{Name: r.Name, preds: compilePreds(r.Preds, s1, s2)}
}

// Holds reports whether every predicate holds for (t1, t2).
func (c CompiledDistinctnessRule) Holds(t1, t2 relation.Tuple) bool {
	return allHold(c.preds, t1, t2)
}

// SidePredicates partitions the compiled rule's conjunction by the
// tuples each predicate reads: predicates over e1's tuple only, over
// e2's tuple only, and over both (cross predicates). Constant-only
// predicates land in e1Only. Grid sweeps use the partition to evaluate
// the single-side predicates once per row/column instead of once per
// cell; the conjunction holds on a cell iff all three groups hold.
func (c CompiledDistinctnessRule) SidePredicates() (e1Only, e2Only, cross []CompiledPredicate) {
	return splitBySide(c.preds)
}

func splitBySide(preds []CompiledPredicate) (e1Only, e2Only, cross []CompiledPredicate) {
	for _, p := range preds {
		reads1, reads2 := false, false
		for _, o := range []compiledOperand{p.left, p.right} {
			if o.isConst {
				continue
			}
			if o.e2 {
				reads2 = true
			} else {
				reads1 = true
			}
		}
		switch {
		case reads1 && reads2:
			cross = append(cross, p)
		case reads2:
			e2Only = append(e2Only, p)
		default:
			e1Only = append(e1Only, p)
		}
	}
	return e1Only, e2Only, cross
}

// HoldsSingle evaluates a single-side (or constant-only) predicate with
// the unused side's tuple absent; operands referencing the absent side
// resolve to NULL and fail, so calling it on a cross predicate is safe
// but always false.
func (p CompiledPredicate) HoldsSingle(side Side, t relation.Tuple) bool {
	if side == E1 {
		return p.Holds(t, nil)
	}
	return p.Holds(nil, t)
}

// EqualityAttrs returns, sorted, the attributes A for which the rule
// carries a direct cross predicate e1.A = e2.A. For a well-formed
// identity rule the conjunction pins every mentioned attribute equal
// across the pair, so these attributes are safe hash-join (blocking)
// keys: any pair the rule matches agrees, non-NULL, on all of them.
func (r IdentityRule) EqualityAttrs() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range r.Preds {
		if p.Op != Eq || p.Left.IsConst() || p.Right.IsConst() {
			continue
		}
		if p.Left.Attr == p.Right.Attr && p.Left.Side != p.Right.Side && !seen[p.Left.Attr] {
			seen[p.Left.Attr] = true
			out = append(out, p.Left.Attr)
		}
	}
	sort.Strings(out)
	return out
}

// Package boundedcard guards the metrics plane against label
// cardinality bombs: every child of an obs labeled family — a
// `.With(values...)` call on a *Vec type — must be created from values
// the compiler can prove constant. A request-derived string as a label
// value mints an unbounded set of children; the runtime 64-child cap
// only caps the damage, this check prevents it.
//
// A non-constant value that provably ranges over a finite set (a
// switch over an enum, a fixed table) is allowed when the call carries
// an //entitylint:bounded <reason> directive on its line or the line
// above; the reason is mandatory so the proof obligation lives next to
// the code.
package boundedcard

import (
	"go/ast"
	"go/types"
	"strings"

	"entityid/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "boundedcard",
	Doc: "labeled-family children (Vec.With) must be created from compile-time " +
		"constants or carry an //entitylint:bounded justification",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		lines := analysis.LineDirectives(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isVecWith(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				tv, ok := pass.TypesInfo.Types[arg]
				if ok && tv.Value != nil {
					continue // compile-time constant: bounded by definition
				}
				d, ok := boundedAt(pass, lines, arg)
				if !ok {
					pass.Reportf(arg.Pos(),
						"labeled-family child created from a non-constant value: label values "+
							"must come from a finite static set (or carry //entitylint:bounded <reason>)")
					continue
				}
				if strings.TrimSpace(d.Args) == "" {
					pass.Reportf(arg.Pos(), "//entitylint:bounded requires a justification")
				}
			}
			return true
		})
	}
	return nil, nil
}

// isVecWith recognizes a With method call on a named *Vec type.
func isVecWith(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "With" {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return strings.HasSuffix(namedName(recv.Type()), "Vec")
}

// namedName unwraps pointers and returns the named type's name.
func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// boundedAt finds a bounded directive covering the argument's line.
func boundedAt(pass *analysis.Pass, lines map[int][]analysis.Directive, arg ast.Expr) (analysis.Directive, bool) {
	line := pass.Fset.Position(arg.Pos()).Line
	for _, l := range []int{line, line - 1} {
		for _, d := range lines[l] {
			if d.Verb == "bounded" {
				return d, true
			}
		}
	}
	return analysis.Directive{}, false
}

package boundedcard_test

import (
	"testing"

	"entityid/internal/analysis/analysistest"
	"entityid/internal/analysis/boundedcard"
)

func TestBoundedCard(t *testing.T) {
	analysistest.Run(t, "../testdata", boundedcard.Analyzer, "boundedcard_a")
}

package lockorder_test

import (
	"testing"

	"entityid/internal/analysis/analysistest"
	"entityid/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "../testdata", lockorder.Analyzer, "lockorder_a")
}

// Package lockorder checks mutex acquisitions against a declared
// partial order. Mutex struct fields annotated
//
//	//entitylint:lock rank=N [multi]
//
// form lock classes; within any function (and transitively through
// same-package calls) an acquisition must have a rank strictly greater
// than every lock already held. Re-acquiring a held class is flagged as
// re-entrant unless the class is declared multi (several instances
// acquired in a deliberate sequence, e.g. per-pair locks in a commit
// loop). TryLock/TryRLock never block, so they are exempt.
//
// The checker evaluates each function body in rough execution order:
// straight-line statements thread a held-lock multiset through; loop
// bodies thread the same state (so defer-in-loop accumulation is
// visible); the branches of if/switch/select are each checked against
// the state at the branch point and their effects are then discarded,
// which keeps early-return lock/unlock idioms from polluting the
// fall-through path. Function literals are checked as independent
// functions starting from no held locks.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"entityid/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "check mutex acquisitions against the declared //entitylint:lock rank order; " +
		"flag out-of-order and re-entrant acquisitions",
	Run: run,
}

// lockClass is one declared lock: a mutex field and its global rank.
type lockClass struct {
	obj   *types.Var
	name  string
	rank  int
	multi bool
}

// acquireKind distinguishes blocking acquisitions from releases.
type acquireKind int

const (
	opNone acquireKind = iota
	opAcquire
	opRelease
)

// methodOp classifies a mutex method name.
func methodOp(name string) acquireKind {
	switch name {
	case "Lock", "RLock":
		return opAcquire
	case "Unlock", "RUnlock":
		return opRelease
	}
	return opNone // TryLock/TryRLock are non-blocking: exempt
}

type checker struct {
	pass    *analysis.Pass
	classes map[*types.Var]*lockClass
	// acquires maps each package function to the set of lock classes it
	// (transitively) may acquire, for call-site checking.
	acquires map[*types.Func]map[*lockClass]bool
	decls    map[*types.Func]*ast.FuncDecl
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:     pass,
		classes:  map[*types.Var]*lockClass{},
		acquires: map[*types.Func]map[*lockClass]bool{},
		decls:    map[*types.Func]*ast.FuncDecl{},
	}
	c.collectClasses()
	if len(c.classes) == 0 {
		return nil, nil
	}
	c.collectDecls()
	c.buildSummaries()
	for _, fd := range sortedDecls(c.decls) {
		if fd.Body == nil {
			continue
		}
		c.checkBody(fd.Body)
	}
	return nil, nil
}

// collectClasses finds annotated mutex fields and validates their
// directives.
func (c *checker) collectClasses() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				d, ok := analysis.FindDirective("lock", field.Doc, field.Comment)
				if !ok {
					continue
				}
				rank, multi, err := parseLockArgs(d.Args)
				if err != nil {
					c.pass.Reportf(d.Pos, "bad //entitylint:lock directive: %v", err)
					continue
				}
				for _, name := range field.Names {
					v, ok := c.pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					c.classes[v] = &lockClass{obj: v, name: className(v), rank: rank, multi: multi}
				}
			}
			return true
		})
	}
}

// parseLockArgs parses "rank=N [multi]".
func parseLockArgs(args string) (rank int, multi bool, err error) {
	rank = -1
	for _, tok := range strings.Fields(args) {
		switch {
		case strings.HasPrefix(tok, "rank="):
			rank, err = strconv.Atoi(strings.TrimPrefix(tok, "rank="))
			if err != nil || rank < 0 {
				return 0, false, fmt.Errorf("rank must be a non-negative integer, got %q", tok)
			}
		case tok == "multi":
			multi = true
		default:
			return 0, false, fmt.Errorf("unknown argument %q (want rank=N and optional multi)", tok)
		}
	}
	if rank < 0 {
		return 0, false, fmt.Errorf("missing rank=N")
	}
	return rank, multi, nil
}

// className renders a lock class as Owner.field for diagnostics.
func className(v *types.Var) string {
	return v.Name() + " (field of " + ownerName(v) + ")"
}

// ownerName best-effort names the struct type owning the field.
func ownerName(v *types.Var) string {
	if v.Pkg() == nil {
		return "?"
	}
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return "?"
}

func (c *checker) collectDecls() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
			}
		}
	}
}

func sortedDecls(decls map[*types.Func]*ast.FuncDecl) []*ast.FuncDecl {
	out := make([]*ast.FuncDecl, 0, len(decls))
	for _, fd := range decls {
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// buildSummaries computes, to a fixpoint, which lock classes each
// package function may acquire, directly or through same-package calls.
func (c *checker) buildSummaries() {
	callees := map[*types.Func][]*types.Func{}
	for fn, fd := range c.decls {
		c.acquires[fn] = map[*lockClass]bool{}
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // analyzed separately; may run on another goroutine
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if cls, op := c.lockOp(call); cls != nil && op == opAcquire {
				c.acquires[fn][cls] = true
				return true
			}
			if callee := analysis.CalleeFunc(c.pass.TypesInfo, call); callee != nil {
				if _, local := c.decls[callee]; local {
					callees[fn] = append(callees[fn], callee)
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			for _, callee := range cs {
				for cls := range c.acquires[callee] {
					if !c.acquires[fn][cls] {
						c.acquires[fn][cls] = true
						changed = true
					}
				}
			}
		}
	}
}

// lockOp classifies a call as a lock acquisition/release on a declared
// class, resolving the receiver expression to the annotated field.
func (c *checker) lockOp(call *ast.CallExpr) (*lockClass, acquireKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, opNone
	}
	op := methodOp(sel.Sel.Name)
	if op == opNone {
		return nil, opNone
	}
	// Receiver must end in a selection of an annotated field:
	// x.mu.Lock(), h.health.mu.RLock(), etc.
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, opNone
	}
	obj, ok := c.pass.TypesInfo.Uses[recv.Sel].(*types.Var)
	if !ok {
		return nil, opNone
	}
	if cls, ok := c.classes[obj]; ok {
		return cls, op
	}
	return nil, opNone
}

// held is the multiset of lock classes currently held, with the
// acquisition order preserved for diagnostics.
type held struct {
	count map[*lockClass]int
	order []*lockClass
}

func newHeld() *held { return &held{count: map[*lockClass]int{}} }

func (h *held) clone() *held {
	n := newHeld()
	for k, v := range h.count {
		n.count[k] = v
	}
	n.order = append(n.order, h.order...)
	return n
}

func (h *held) acquire(cls *lockClass) {
	h.count[cls]++
	h.order = append(h.order, cls)
}

func (h *held) release(cls *lockClass) {
	if h.count[cls] > 0 {
		h.count[cls]--
		for i := len(h.order) - 1; i >= 0; i-- {
			if h.order[i] == cls {
				h.order = append(h.order[:i], h.order[i+1:]...)
				break
			}
		}
	}
}

// maxRankHeld returns the highest-ranked held class, nil when empty.
func (h *held) maxRankHeld() *lockClass {
	var best *lockClass
	for cls, n := range h.count {
		if n > 0 && (best == nil || cls.rank > best.rank) {
			best = cls
		}
	}
	return best
}

// checkBody walks one function (or function literal) body.
func (c *checker) checkBody(body *ast.BlockStmt) {
	c.walkStmts(body.List, newHeld())
}

func (c *checker) walkStmts(stmts []ast.Stmt, h *held) {
	for _, s := range stmts {
		c.walkStmt(s, h)
	}
}

func (c *checker) walkStmt(s ast.Stmt, h *held) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		c.walkStmts(s.List, h)
	case *ast.ExprStmt:
		c.walkExpr(s.X, h)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.walkExpr(e, h)
		}
		for _, e := range s.Lhs {
			c.walkExpr(e, h)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.walkExpr(e, h)
		}
	case *ast.DeferStmt:
		// A deferred release keeps the lock held to function end (the
		// state already reflects that: we simply do not release). A
		// deferred acquire or arbitrary call runs at exit; skip it.
		c.walkFuncLits(s.Call, h)
	case *ast.GoStmt:
		// The goroutine body runs concurrently with no inherited locks.
		c.walkFuncLits(s.Call, h)
	case *ast.IfStmt:
		c.walkStmt(s.Init, h)
		c.walkExpr(s.Cond, h)
		c.walkStmt(s.Body, h.clone())
		c.walkStmt(s.Else, h.clone())
	case *ast.SwitchStmt:
		c.walkStmt(s.Init, h)
		if s.Tag != nil {
			c.walkExpr(s.Tag, h)
		}
		for _, cl := range s.Body.List {
			c.walkStmts(cl.(*ast.CaseClause).Body, h.clone())
		}
	case *ast.TypeSwitchStmt:
		c.walkStmt(s.Init, h)
		for _, cl := range s.Body.List {
			c.walkStmts(cl.(*ast.CaseClause).Body, h.clone())
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			branch := h.clone()
			c.walkStmt(cc.Comm, branch)
			c.walkStmts(cc.Body, branch)
		}
	case *ast.ForStmt:
		c.walkStmt(s.Init, h)
		if s.Cond != nil {
			c.walkExpr(s.Cond, h)
		}
		c.walkStmt(s.Body, h)
		c.walkStmt(s.Post, h)
	case *ast.RangeStmt:
		c.walkExpr(s.X, h)
		c.walkStmt(s.Body, h)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, h)
	case *ast.IncDecStmt:
		c.walkExpr(s.X, h)
	case *ast.SendStmt:
		c.walkExpr(s.Chan, h)
		c.walkExpr(s.Value, h)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.walkExpr(e, h)
					}
				}
			}
		}
	}
}

// walkFuncLits checks any function literals appearing in a deferred or
// go'd call (the call itself runs outside this body's lock context).
func (c *checker) walkFuncLits(call *ast.CallExpr, _ *held) {
	ast.Inspect(call, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			c.checkBody(fl.Body)
			return false
		}
		return true
	})
}

// walkExpr evaluates an expression's lock events in syntactic order.
func (c *checker) walkExpr(e ast.Expr, h *held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			c.checkBody(fl.Body) // fresh state: literals run elsewhere
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Arguments evaluate before the call: Inspect visits the call
		// node before its children, so handle the call here but let the
		// traversal descend for nested calls (their events are rare and
		// order inversions inside one expression are beyond this
		// checker's precision).
		c.handleCall(call, h)
		return true
	})
}

func (c *checker) handleCall(call *ast.CallExpr, h *held) {
	if cls, op := c.lockOp(call); cls != nil {
		switch op {
		case opAcquire:
			c.checkAcquire(call, cls, h, "")
			h.acquire(cls)
		case opRelease:
			h.release(cls)
		}
		return
	}
	callee := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	if summary, ok := c.acquires[callee]; ok {
		for _, cls := range sortedClasses(summary) {
			c.checkAcquire(call, cls, h, callee.Name())
		}
	}
}

func sortedClasses(set map[*lockClass]bool) []*lockClass {
	out := make([]*lockClass, 0, len(set))
	for cls := range set {
		out = append(out, cls)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].rank < out[j].rank })
	return out
}

// checkAcquire reports a violation when acquiring cls with h held.
// via names the called function when the acquisition is indirect.
func (c *checker) checkAcquire(call *ast.CallExpr, cls *lockClass, h *held, via string) {
	if h.count[cls] > 0 {
		if cls.multi || via != "" {
			// Multiple instances of a multi class in sequence are the
			// declared idiom; an indirect re-acquire through a callee is
			// usually a different instance — do not second-guess it.
			return
		}
		c.pass.Reportf(call.Pos(),
			"re-entrant acquisition of %s (rank %d): already held; declare the field "+
				"`multi` if distinct instances are acquired in sequence", cls.name, cls.rank)
		return
	}
	top := h.maxRankHeld()
	if top == nil || cls.rank > top.rank {
		return
	}
	if via != "" {
		c.pass.Reportf(call.Pos(),
			"call to %s may acquire %s (rank %d) while holding %s (rank %d): declared "+
				"lock order requires strictly increasing ranks", via, cls.name, cls.rank, top.name, top.rank)
		return
	}
	c.pass.Reportf(call.Pos(),
		"%s (rank %d) acquired while holding %s (rank %d): declared lock order "+
			"requires strictly increasing ranks", cls.name, cls.rank, top.name, top.rank)
}

// Package walfirst enforces write-ahead discipline on the commit path:
// inside a function annotated //entitylint:commitpath, every mutation
// of published hub state must be dominated by a write-ahead append.
//
// Appends are calls to functions annotated //entitylint:walappend (or
// same-package functions that transitively call one). Mutations are:
//
//   - method calls with a store/publish verb name (Publish, Commit,
//     Insert, Attach, Store) whose receiver chain passes through a
//     struct field annotated //entitylint:published — a Store on an
//     unannotated field (an eviction clock, a page-in cache) is not a
//     logical mutation;
//   - same-package calls to functions annotated //entitylint:publishes
//     (or transitively reaching one);
//   - assignments (including compound and inc/dec) whose target is a
//     struct field annotated //entitylint:published.
//
// Domination is computed by a conservative must-analysis over the
// syntax: a statement sequence establishes "appended" once an append
// executes unconditionally, or once a conditional's only non-appending
// paths terminate (return/panic). The common guarded idiom
//
//	if h.per != nil { if err := h.per.append...; err != nil { return } }
//
// counts as appended after the guard: when persistence is disabled
// there is nothing to log, and the error path returned.
package walfirst

import (
	"go/ast"
	"go/token"
	"go/types"

	"entityid/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "walfirst",
	Doc: "in //entitylint:commitpath functions, flag mutations of published state " +
		"not dominated by a write-ahead (//entitylint:walappend) append",
	Run: run,
}

// mutatorMethods are method names that publish or store committed
// state when invoked through a published field.
var mutatorMethods = map[string]bool{
	"Publish": true, "Commit": true, "Insert": true, "Attach": true, "Store": true,
}

type checker struct {
	pass      *analysis.Pass
	decls     map[*types.Func]*ast.FuncDecl
	appends   map[*types.Func]bool // transitively performs a WAL append
	publishes map[*types.Func]bool // transitively mutates published state
	published map[*types.Var]bool  // fields annotated published
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:      pass,
		decls:     map[*types.Func]*ast.FuncDecl{},
		appends:   map[*types.Func]bool{},
		publishes: map[*types.Func]bool{},
		published: map[*types.Var]bool{},
	}
	c.collect()
	c.propagate()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := analysis.FindDirective("commitpath", fd.Doc); !ok {
				continue
			}
			st := state{}
			c.checkStmts(fd.Body.List, &st)
		}
	}
	return nil, nil
}

// collect indexes declarations, directive-annotated functions and
// fields.
func (c *checker) collect() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.decls[fn] = fd
			if _, ok := analysis.FindDirective("walappend", fd.Doc); ok {
				c.appends[fn] = true
			}
			if _, ok := analysis.FindDirective("publishes", fd.Doc); ok {
				c.publishes[fn] = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if _, ok := analysis.FindDirective("published", field.Doc, field.Comment); !ok {
					continue
				}
				for _, name := range field.Names {
					if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
						c.published[v] = true
					}
				}
			}
			return true
		})
	}
}

// propagate closes appends/publishes over the same-package call graph.
func (c *checker) propagate() {
	callees := map[*types.Func][]*types.Func{}
	for fn, fd := range c.decls {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := analysis.CalleeFunc(c.pass.TypesInfo, call); callee != nil {
				if _, local := c.decls[callee]; local {
					callees[fn] = append(callees[fn], callee)
				}
			}
			// Direct published-state mutations inside helpers make the
			// helper itself a publisher.
			return true
		})
		if !c.publishes[fn] && c.directlyPublishes(fd) {
			c.publishes[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			for _, callee := range cs {
				if c.appends[callee] && !c.appends[fn] {
					c.appends[fn] = true
					changed = true
				}
				if c.publishes[callee] && !c.publishes[fn] {
					c.publishes[fn] = true
					changed = true
				}
			}
		}
	}
}

// directlyPublishes reports whether a function body contains a direct
// mutation site (used to seed the publishes fixpoint).
func (c *checker) directlyPublishes(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, ok := c.publishedMutator(n); ok {
				found = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if c.publishedTarget(lhs) != nil {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if c.publishedTarget(n.X) != nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// publishedMutator reports whether a call is a mutator-verb method
// invoked through a published field, returning that field.
func (c *checker) publishedMutator(call *ast.CallExpr) (*types.Var, bool) {
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil || !mutatorMethods[fn.Name()] {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	return c.publishedInChain(sel.X)
}

// publishedInChain walks a receiver chain (h.clusters, s.view,
// h.backend.Tuples(), src.pairs[i].fed ...) looking for a published
// field.
func (c *checker) publishedInChain(e ast.Expr) (*types.Var, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if v, ok := c.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && c.published[v] {
				return v, true
			}
			e = x.X
		case *ast.CallExpr:
			if f, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				e = f.X
				continue
			}
			return nil, false
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// publishedTarget returns the annotated field a mutation target writes
// through, or nil. Handles h.f, h.f[k], h.a.f chains.
func (c *checker) publishedTarget(e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if v, ok := c.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && c.published[v] {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// state is the must-analysis fact set threaded through a statement
// sequence.
type state struct {
	appended   bool // a WAL append has definitely executed
	terminated bool // control definitely left the function
}

// checkStmts walks a statement list, reporting mutations that precede
// the append and updating st.
func (c *checker) checkStmts(stmts []ast.Stmt, st *state) {
	for _, s := range stmts {
		if st.terminated {
			return
		}
		c.checkStmt(s, st)
	}
}

func (c *checker) checkStmt(s ast.Stmt, st *state) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		c.checkStmts(s.List, st)
	case *ast.ExprStmt:
		c.checkExpr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkExpr(e, st)
		}
		for _, lhs := range s.Lhs {
			if v := c.publishedTarget(lhs); v != nil && !st.appended {
				c.report(lhs.Pos(), "assignment to published field "+v.Name())
			}
		}
	case *ast.IncDecStmt:
		if v := c.publishedTarget(s.X); v != nil && !st.appended {
			c.report(s.X.Pos(), "update of published field "+v.Name())
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, st)
		}
		st.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto end the sequence conservatively: facts
		// established after them on this path do not reach fall-through.
		st.terminated = true
	case *ast.IfStmt:
		c.checkStmt(s.Init, st)
		c.checkExpr(s.Cond, st)
		then := *st
		c.checkStmt(s.Body, &then)
		els := *st
		if s.Else != nil {
			c.checkStmt(s.Else, &els)
		}
		merge(st, then, els, s.Else != nil, c.isNilGuard(s))
	case *ast.SwitchStmt:
		c.checkStmt(s.Init, st)
		if s.Tag != nil {
			c.checkExpr(s.Tag, st)
		}
		c.checkCases(s.Body, st)
	case *ast.TypeSwitchStmt:
		c.checkStmt(s.Init, st)
		c.checkCases(s.Body, st)
	case *ast.SelectStmt:
		c.checkCases(s.Body, st)
	case *ast.ForStmt:
		c.checkStmt(s.Init, st)
		if s.Cond != nil {
			c.checkExpr(s.Cond, st)
		}
		body := *st
		c.checkStmt(s.Body, &body)
		c.checkStmt(s.Post, &body)
		// Zero iterations are possible: loop effects are not guaranteed.
	case *ast.RangeStmt:
		c.checkExpr(s.X, st)
		body := *st
		c.checkStmt(s.Body, &body)
	case *ast.LabeledStmt:
		c.checkStmt(s.Stmt, st)
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/concurrent work is outside the dominance order.
	case *ast.SendStmt:
		c.checkExpr(s.Chan, st)
		c.checkExpr(s.Value, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.checkExpr(e, st)
					}
				}
			}
		}
	}
}

// checkCases evaluates each clause against the entry state; the merged
// fall-through keeps entry facts plus append-everywhere when the
// construct has a default and every live clause appended.
func (c *checker) checkCases(body *ast.BlockStmt, st *state) {
	entry := *st
	allAppend, allTerm, hasDefault := true, true, false
	for _, cl := range body.List {
		branch := entry
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				c.checkExpr(e, &branch)
			}
			c.checkStmts(cl.Body, &branch)
		case *ast.CommClause:
			hasDefault = hasDefault || cl.Comm == nil
			c.checkStmt(cl.Comm, &branch)
			c.checkStmts(cl.Body, &branch)
		}
		if !branch.terminated {
			allTerm = false
			if !branch.appended {
				allAppend = false
			}
		}
	}
	if hasDefault && allTerm {
		st.terminated = true
	}
	if hasDefault && allAppend {
		st.appended = true
	}
}

// merge folds an if/else's branch facts into the fall-through state.
func merge(st *state, then, els state, hasElse, nilGuard bool) {
	if hasElse {
		if then.terminated && els.terminated {
			st.terminated = true
			return
		}
		appended := true
		if !then.terminated && !then.appended {
			appended = false
		}
		if !els.terminated && !els.appended {
			appended = false
		}
		if appended {
			st.appended = true
		}
		return
	}
	// No else: fall-through may skip the branch entirely, so its facts
	// only hold when the branch both ran and appended — which we can
	// only assume for the recognized nil-guard idiom, where skipping
	// the branch means persistence is off and nothing needs logging.
	if nilGuard && (then.appended || then.terminated) {
		st.appended = true
	}
	if then.terminated && els.appended {
		st.appended = true
	}
}

// isNilGuard recognizes `if X != nil { ... }` — the standard guard
// around optional persistence.
func (c *checker) isNilGuard(s *ast.IfStmt) bool {
	be, ok := ast.Unparen(s.Cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	return isNilIdent(be.X) || isNilIdent(be.Y)
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// checkExpr scans an expression for mutation and append events.
func (c *checker) checkExpr(e ast.Expr, st *state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c.handleCall(call, st)
		return true
	})
}

func (c *checker) handleCall(call *ast.CallExpr, st *state) {
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if _, local := c.decls[fn]; local || fn.Pkg() == c.pass.Pkg {
		if c.appends[fn] {
			st.appended = true
			return
		}
		if c.publishes[fn] && !st.appended {
			c.report(call.Pos(), "call to "+fn.Name()+", which mutates published state")
		}
		return
	}
	if v, ok := c.publishedMutator(call); ok && !st.appended {
		c.report(call.Pos(), "call to "+fn.Name()+" through published field "+v.Name())
	}
}

func (c *checker) report(pos token.Pos, what string) {
	c.pass.Reportf(pos,
		"%s before the write-ahead append: commit-path mutations must be "+
			"dominated by a walappend call", what)
}

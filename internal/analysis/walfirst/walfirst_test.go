package walfirst_test

import (
	"testing"

	"entityid/internal/analysis/analysistest"
	"entityid/internal/analysis/walfirst"
)

func TestWALFirst(t *testing.T) {
	analysistest.Run(t, "../testdata", walfirst.Analyzer, "walfirst_a")
}

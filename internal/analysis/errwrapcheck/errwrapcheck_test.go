package errwrapcheck_test

import (
	"testing"

	"entityid/internal/analysis/analysistest"
	"entityid/internal/analysis/errwrapcheck"
)

func TestErrWrapCheck(t *testing.T) {
	analysistest.Run(t, "../testdata", errwrapcheck.Analyzer, "errwrap_a")
}

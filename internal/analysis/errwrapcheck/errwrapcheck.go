// Package errwrapcheck enforces the sentinel-error contract: sentinel
// errors (package-level error variables named Err*) must be compared
// with errors.Is, never == or !=, and must be wrapped with %w — a
// sentinel formatted into fmt.Errorf under %v or %s produces an error
// that errors.Is can no longer match, silently breaking the
// degraded/poisoned → HTTP-status mapping and every other classifier.
//
// Exemption: the body of an `Is(target error) bool` method may compare
// against sentinels with == — that is precisely where the identity
// comparison belongs.
package errwrapcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"entityid/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errwrapcheck",
	Doc: "sentinel errors (Err*) must be wrapped with %w and compared via errors.Is, " +
		"never == / != / switch",
	Run: run,
}

var sentinelName = regexp.MustCompile(`^Err[A-Z0-9_]`)

type checker struct {
	pass     *analysis.Pass
	errIface *types.Interface
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:     pass,
		errIface: types.Universe.Lookup("error").Type().Underlying().(*types.Interface),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
		// Package-level var initializers can alias sentinels (legal) but
		// not compare them; expressions there are rare — skip.
	}
	return nil, nil
}

// isSentinel reports whether an expression denotes a package-level
// error variable named Err*.
func (c *checker) isSentinel(e ast.Expr) (*types.Var, bool) {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[x.Sel]
	default:
		return nil, false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil, false
	}
	if !sentinelName.MatchString(v.Name()) {
		return nil, false
	}
	if !types.Implements(v.Type(), c.errIface) &&
		!types.Identical(v.Type(), c.errIface) &&
		v.Type().String() != "error" {
		return nil, false
	}
	return v, true
}

// isErrorTyped reports whether an expression's static type satisfies
// the error interface (so errors.Is applies to it).
func (c *checker) isErrorTyped(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	return types.Implements(t, c.errIface) || types.Identical(t, c.errIface) || t.String() == "error"
}

// isIsMethod recognizes the errors.Is support method
// `func (T) Is(error) bool`, whose body legitimately compares by
// identity.
func isIsMethod(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Is" || fd.Recv == nil {
		return false
	}
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 1 &&
		sig.Params().At(0).Type().String() == "error" &&
		sig.Results().Len() == 1 &&
		sig.Results().At(0).Type().String() == "bool"
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	exemptIdentity := isIsMethod(c.pass.TypesInfo, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if exemptIdentity {
				return true
			}
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			for i, side := range []ast.Expr{n.X, n.Y} {
				v, ok := c.isSentinel(side)
				if !ok {
					continue
				}
				// Comparing a sentinel against a non-error-typed value
				// (e.g. a recover()ed any, per the net/http
				// ErrAbortHandler contract) is panic-value identity, not
				// error classification — errors.Is would not even
				// compile there.
				other := n.Y
				if i == 1 {
					other = n.X
				}
				if !c.isErrorTyped(other) {
					continue
				}
				c.pass.Reportf(n.Pos(),
					"sentinel %s compared with %s: use errors.Is so wrapped errors match",
					v.Name(), n.Op)
				break
			}
		case *ast.SwitchStmt:
			if exemptIdentity || n.Tag == nil {
				return true
			}
			for _, cl := range n.Body.List {
				for _, e := range cl.(*ast.CaseClause).List {
					if v, ok := c.isSentinel(e); ok {
						c.pass.Reportf(e.Pos(),
							"sentinel %s used as a switch case: switch compares with ==; "+
								"use errors.Is in an if/else chain", v.Name())
					}
				}
			}
		case *ast.CallExpr:
			c.checkErrorf(n)
		}
		return true
	})
}

// checkErrorf flags sentinels passed to fmt.Errorf under a non-%w verb.
func (c *checker) checkErrorf(call *ast.CallExpr) {
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Errorf" || analysis.PkgPathOf(fn) != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := parseVerbs(constant.StringVal(tv.Value))
	if !ok {
		return // explicit argument indexes etc.: bail rather than misreport
	}
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		if verb == 'w' || verb == '*' {
			continue
		}
		if v, ok := c.isSentinel(call.Args[argIdx]); ok {
			c.pass.Reportf(call.Args[argIdx].Pos(),
				"sentinel %s formatted with %%%c: use %%w so errors.Is matches through the wrap",
				v.Name(), verb)
		}
	}
}

// parseVerbs returns the verb consuming each successive argument of a
// Printf-style format ('*' entries are width/precision arguments). ok
// is false for formats this simple scanner does not model (explicit
// argument indexes).
func parseVerbs(format string) (verbs []rune, ok bool) {
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		// Flags.
		for i < len(rs) && strings.ContainsRune("+-# 0", rs[i]) {
			i++
		}
		// Width.
		for i < len(rs) && (rs[i] == '*' || (rs[i] >= '0' && rs[i] <= '9')) {
			if rs[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		// Precision.
		if i < len(rs) && rs[i] == '.' {
			i++
			for i < len(rs) && (rs[i] == '*' || (rs[i] >= '0' && rs[i] <= '9')) {
				if rs[i] == '*' {
					verbs = append(verbs, '*')
				}
				i++
			}
		}
		if i >= len(rs) {
			break
		}
		switch rs[i] {
		case '%':
		case '[':
			return nil, false
		default:
			verbs = append(verbs, rs[i])
		}
	}
	return verbs, true
}

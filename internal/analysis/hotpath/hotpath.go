// Package hotpath checks functions annotated //entitylint:hotpath
// against the read-path discipline: no allocation, no blocking
// synchronization, no obs instrumentation, no I/O. The directive takes
// a comma-separated subset of the flags noalloc,nolock,noobs,noio; an
// empty flag list means all four.
//
// The check is transitive within the package: a call from a hotpath
// function to an unannotated same-package function descends into the
// callee and reports violations with the call chain. A call to an
// annotated function instead checks that the callee's declared flags
// cover the caller's — annotations are the trust boundary, and
// cross-package calls into this module must be annotated in their own
// package to be checked.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"entityid/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //entitylint:hotpath must not allocate, take locks, " +
		"call obs instrumentation, or do I/O (per their declared flags)",
	Run: run,
}

// flagSet is the set of hot-path disciplines a function declares.
type flagSet struct {
	noalloc, nolock, noobs, noio bool
}

var allFlags = flagSet{noalloc: true, nolock: true, noobs: true, noio: true}

func (f flagSet) covers(g flagSet) bool {
	return (f.noalloc || !g.noalloc) && (f.nolock || !g.nolock) &&
		(f.noobs || !g.noobs) && (f.noio || !g.noio)
}

func (f flagSet) String() string {
	var parts []string
	if f.noalloc {
		parts = append(parts, "noalloc")
	}
	if f.nolock {
		parts = append(parts, "nolock")
	}
	if f.noobs {
		parts = append(parts, "noobs")
	}
	if f.noio {
		parts = append(parts, "noio")
	}
	return strings.Join(parts, ",")
}

// parseFlags parses the directive argument list.
func parseFlags(args string) (flagSet, error) {
	if strings.TrimSpace(args) == "" {
		return allFlags, nil
	}
	var f flagSet
	for _, tok := range strings.Split(args, ",") {
		switch strings.TrimSpace(tok) {
		case "noalloc":
			f.noalloc = true
		case "nolock":
			f.nolock = true
		case "noobs":
			f.noobs = true
		case "noio":
			f.noio = true
		default:
			return f, fmt.Errorf("unknown hotpath flag %q (want noalloc,nolock,noobs,noio)", strings.TrimSpace(tok))
		}
	}
	return f, nil
}

// ioPackages are import-path roots whose calls count as I/O.
var ioPackages = map[string]bool{
	"os": true, "io": true, "net": true, "syscall": true, "bufio": true,
}

type checker struct {
	pass      *analysis.Pass
	decls     map[*types.Func]*ast.FuncDecl
	annotated map[*types.Func]flagSet
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:      pass,
		decls:     map[*types.Func]*ast.FuncDecl{},
		annotated: map[*types.Func]flagSet{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.decls[fn] = fd
			d, ok := analysis.FindDirective("hotpath", fd.Doc)
			if !ok {
				continue
			}
			flags, err := parseFlags(d.Args)
			if err != nil {
				pass.Reportf(d.Pos, "bad //entitylint:hotpath directive: %v", err)
				continue
			}
			c.annotated[fn] = flags
		}
	}
	roots := make([]*types.Func, 0, len(c.annotated))
	for fn := range c.annotated {
		roots = append(roots, fn)
	}
	sort.Slice(roots, func(i, j int) bool {
		return c.decls[roots[i]].Pos() < c.decls[roots[j]].Pos()
	})
	for _, fn := range roots {
		c.visit(fn, c.annotated[fn], nil, map[*types.Func]bool{fn: true})
	}
	return nil, nil
}

// visit walks one function body under the given flags; chain names the
// call path from the annotated root (empty at the root itself).
func (c *checker) visit(fn *types.Func, flags flagSet, chain []string, seen map[*types.Func]bool) {
	fd := c.decls[fn]
	if fd == nil || fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if flags.noalloc {
				c.report(n.Pos(), chain, "function literal allocates a closure")
			}
			return false
		case *ast.CompositeLit:
			if flags.noalloc {
				c.report(n.Pos(), chain, "composite literal allocates")
			}
		case *ast.BinaryExpr:
			if flags.noalloc && n.Op == token.ADD && c.isString(n) {
				c.report(n.Pos(), chain, "string concatenation allocates")
			}
		case *ast.SendStmt:
			if flags.nolock {
				c.report(n.Pos(), chain, "channel send can block")
			}
		case *ast.UnaryExpr:
			if flags.nolock && n.Op == token.ARROW {
				c.report(n.Pos(), chain, "channel receive can block")
			}
		case *ast.SelectStmt:
			if flags.nolock {
				c.report(n.Pos(), chain, "select can block")
			}
		case *ast.GoStmt:
			if flags.nolock {
				c.report(n.Pos(), chain, "spawning a goroutine on the hot path")
			}
			return false
		case *ast.CallExpr:
			c.checkCall(n, fn, flags, chain, seen)
		}
		return true
	})
}

// isString reports whether an expression has (possibly named) string
// type.
func (c *checker) isString(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// lockingMethods are sync-package methods that acquire or wait.
var lockingMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
	"Wait": true, "Do": true,
}

func (c *checker) checkCall(call *ast.CallExpr, caller *types.Func, flags flagSet, chain []string, seen map[*types.Func]bool) {
	// Builtin allocators.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if flags.noalloc {
				switch b.Name() {
				case "make", "new", "append":
					c.report(call.Pos(), chain, b.Name()+" allocates")
				}
			}
			return
		}
	}
	// Conversions between strings and byte/rune slices copy.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if flags.noalloc && len(call.Args) == 1 && c.isStringSliceConv(tv.Type, call.Args[0]) {
			c.report(call.Pos(), chain, "string conversion allocates")
		}
		return
	}
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	pkgPath := analysis.PkgPathOf(fn)
	if flags.nolock && pkgPath == "sync" && lockingMethods[fn.Name()] {
		c.report(call.Pos(), chain, "acquires "+fn.Name()+" on the hot path")
		return
	}
	if flags.noobs && hasPathSegment(pkgPath, "obs") {
		c.report(call.Pos(), chain, "calls obs instrumentation ("+fn.Name()+")")
		return
	}
	if flags.noio && ioPackages[rootSegment(pkgPath)] {
		c.report(call.Pos(), chain, "performs I/O ("+pkgPath+"."+fn.Name()+")")
		return
	}
	if flags.noalloc && pkgPath == "fmt" {
		c.report(call.Pos(), chain, "fmt."+fn.Name()+" allocates")
		return
	}
	// Same-package static calls: trust annotations, descend otherwise.
	if fn.Pkg() == c.pass.Pkg {
		if callee, ok := c.annotated[fn]; ok {
			if !callee.covers(flags) {
				c.report(call.Pos(), chain,
					fmt.Sprintf("calls %s, whose hotpath flags (%s) do not cover the required %s",
						fn.Name(), callee, flags))
			}
			return
		}
		if fd, ok := c.decls[fn]; ok && fd.Body != nil && !seen[fn] && len(chain) < 12 {
			seen[fn] = true
			c.visit(fn, flags, append(chain, fn.Name()), seen)
		}
	}
}

// isStringSliceConv reports a conversion between string and []byte or
// []rune (either direction).
func (c *checker) isStringSliceConv(to types.Type, arg ast.Expr) bool {
	from := c.pass.TypesInfo.TypeOf(arg)
	if from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// hasPathSegment reports whether a slash-separated import path has the
// given segment.
func hasPathSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

func rootSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

func (c *checker) report(pos token.Pos, chain []string, what string) {
	if len(chain) > 0 {
		c.pass.Reportf(pos, "hotpath violation (via %s): %s", strings.Join(chain, " -> "), what)
		return
	}
	c.pass.Reportf(pos, "hotpath violation: %s", what)
}

package hotpath_test

import (
	"testing"

	"entityid/internal/analysis/analysistest"
	"entityid/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "../testdata", hotpath.Analyzer, "hotpath_a")
}

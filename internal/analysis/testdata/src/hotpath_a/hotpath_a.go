// Fixture for the hotpath analyzer: annotated read paths that honour
// and violate the noalloc/nolock/noobs/noio disciplines.
package hotpath_a

import (
	"fmt"
	"os"
	"sync"

	"obs"
)

type table struct {
	mu  sync.RWMutex
	m   map[int][]int
	ctr *obs.Counter
}

//entitylint:hotpath
func (t *table) goodRead(k int) []int {
	return t.m[k]
}

// lockedRead declares only the disciplines it keeps: the shard-style
// read lock is allowed because nolock is not claimed.
//
//entitylint:hotpath noalloc,noobs,noio
func (t *table) lockedRead(k int) []int {
	t.mu.RLock()
	v := t.m[k]
	t.mu.RUnlock()
	return v
}

//entitylint:hotpath
func (t *table) badAlloc(k int) []int {
	out := make([]int, 0, 1) // want `make allocates`
	out = append(out, k)     // want `append allocates`
	return out
}

//entitylint:hotpath
func (t *table) badLock(k int) []int {
	t.mu.RLock() // want `acquires RLock on the hot path`
	defer t.mu.RUnlock()
	return t.m[k]
}

//entitylint:hotpath
func (t *table) badObs() {
	t.ctr.Inc() // want `calls obs instrumentation \(Inc\)`
}

//entitylint:hotpath
func (t *table) badIO() int {
	return os.Getpid() // want `performs I/O \(os\.Getpid\)`
}

//entitylint:hotpath
func (t *table) badFmt(k int) string {
	return fmt.Sprint(k) // want `fmt\.Sprint allocates`
}

//entitylint:hotpath
func (t *table) badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

func helper(t *table) {
	t.ctr.Inc() // want `hotpath violation \(via helper\): calls obs instrumentation`
}

//entitylint:hotpath
func (t *table) badChain() {
	helper(t)
}

//entitylint:hotpath noobs
func weak(t *table) {
	t.mu.RLock()
	t.mu.RUnlock()
}

//entitylint:hotpath
func (t *table) badCallee() {
	weak(t) // want `calls weak, whose hotpath flags \(noobs\) do not cover the required noalloc,nolock,noobs,noio`
}

// Fixture for the lockorder analyzer: a hub-shaped lock hierarchy with
// in-order, out-of-order, re-entrant, multi-instance and transitive
// acquisitions.
package lockorder_a

import "sync"

type Hub struct {
	//entitylint:lock rank=10
	snapMu sync.Mutex
	//entitylint:lock rank=20
	mu sync.RWMutex
	//entitylint:lock rank=50
	commitMu sync.Mutex
}

type Pair struct {
	//entitylint:lock rank=30 multi
	mu sync.Mutex
}

func inOrder(h *Hub) {
	h.snapMu.Lock()
	h.mu.RLock()
	h.commitMu.Lock()
	h.commitMu.Unlock()
	h.mu.RUnlock()
	h.snapMu.Unlock()
}

func badOrder(h *Hub) {
	h.commitMu.Lock()
	defer h.commitMu.Unlock()
	h.mu.RLock() // want `mu \(field of Hub\) \(rank 20\) acquired while holding commitMu`
	h.mu.RUnlock()
}

func badReentrant(h *Hub) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	h.mu.RLock() // want `re-entrant acquisition of mu`
	h.mu.RUnlock()
}

// multiInstances mirrors the commit loop: per-pair locks (one class,
// many instances) acquired in sequence under the hub lock.
func multiInstances(h *Hub, pairs []*Pair) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, p := range pairs {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	h.commitMu.Lock()
	h.commitMu.Unlock()
}

// releaseResets shows that an explicit unlock reopens the lower ranks.
func releaseResets(h *Hub) {
	h.commitMu.Lock()
	h.commitMu.Unlock()
	h.snapMu.Lock()
	h.snapMu.Unlock()
}

// branchesIsolated: each switch case locks and returns; the cases must
// not pollute each other or the fall-through path.
func branchesIsolated(h *Hub, k int) int {
	switch k {
	case 0:
		h.mu.RLock()
		defer h.mu.RUnlock()
		return 0
	case 1:
		h.mu.RLock()
		defer h.mu.RUnlock()
		return 1
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return 2
}

// tryIsExempt: TryLock never blocks, so ordering does not apply.
func tryIsExempt(h *Hub) {
	h.commitMu.Lock()
	defer h.commitMu.Unlock()
	if h.snapMu.TryLock() {
		h.snapMu.Unlock()
	}
}

func lockLow(h *Hub) {
	h.mu.RLock()
	h.mu.RUnlock()
}

func badViaCall(h *Hub) {
	h.commitMu.Lock()
	defer h.commitMu.Unlock()
	lockLow(h) // want `call to lockLow may acquire mu \(field of Hub\) \(rank 20\) while holding commitMu`
}

func okViaCall(h *Hub) {
	h.snapMu.Lock()
	defer h.snapMu.Unlock()
	lockLow(h)
}

// Package obs is a fixture stand-in for the repo's instrumentation
// package: the hotpath analyzer recognizes callees by the "obs" path
// segment.
package obs

type Counter struct{ n int64 }

func (c *Counter) Inc() { c.n++ }

// Fixture for the errwrapcheck analyzer: sentinel comparisons and
// wrapping, right and wrong.
package errwrap_a

import (
	"errors"
	"fmt"
)

var ErrGone = errors.New("gone")
var ErrStale = errors.New("stale")

type wrapped struct{ msg string }

func (w *wrapped) Error() string { return w.msg }

// Is methods are the one legitimate home of identity comparison.
func (w *wrapped) Is(target error) bool {
	return target == ErrGone
}

func badEq(err error) bool {
	return err == ErrGone // want `sentinel ErrGone compared with ==`
}

func badNeq(err error) bool {
	return err != ErrStale // want `sentinel ErrStale compared with !=`
}

func badSwitch(err error) string {
	switch err {
	case ErrGone: // want `sentinel ErrGone used as a switch case`
		return "gone"
	default:
		return ""
	}
}

func badWrap(err error) error {
	return fmt.Errorf("lookup failed: %v", ErrGone) // want `sentinel ErrGone formatted with %v: use %w`
}

// recoveredPanic compares a sentinel against a recover()ed any value:
// panic identity per the net/http ErrAbortHandler contract, allowed.
func recoveredPanic() {
	if r := recover(); r == ErrGone {
		panic(r)
	}
}

func good(err error) error {
	if errors.Is(err, ErrGone) {
		return fmt.Errorf("lookup failed: %w", ErrGone)
	}
	if err != nil {
		return err
	}
	return nil
}

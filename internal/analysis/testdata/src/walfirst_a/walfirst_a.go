// Fixture for the walfirst analyzer: commit-path functions that do and
// do not log write-ahead before mutating published state.
package walfirst_a

import "sync/atomic"

type logger struct{ n int }

//entitylint:walappend
func (l *logger) appendRecord(b []byte) error {
	l.n += len(b)
	return nil
}

type Hub struct {
	per *logger
	//entitylint:published
	view atomic.Value
	// clock is deliberately NOT published: Store calls through it are
	// cache/bookkeeping, not logical mutations.
	clock atomic.Value
	//entitylint:published
	sources []int
}

//entitylint:publishes
func (h *Hub) publishView() {
	h.view.Store(len(h.sources))
}

//entitylint:commitpath
func (h *Hub) goodCommit(b []byte) error {
	if h.per != nil {
		if err := h.per.appendRecord(b); err != nil {
			return err
		}
	}
	h.sources = append(h.sources, len(b))
	h.view.Store(len(h.sources))
	h.publishView()
	return nil
}

//entitylint:commitpath
func (h *Hub) badCommit(b []byte) error {
	h.sources = append(h.sources, len(b)) // want `assignment to published field sources before the write-ahead append`
	h.view.Store(len(h.sources))          // want `call to Store through published field view before the write-ahead append`
	h.clock.Store(1)                      // bookkeeping store: not flagged
	if h.per != nil {
		if err := h.per.appendRecord(b); err != nil {
			return err
		}
	}
	return nil
}

//entitylint:commitpath
func (h *Hub) badViaHelper(b []byte) error {
	h.publishView() // want `call to publishView, which mutates published state before the write-ahead append`
	if h.per != nil {
		if err := h.per.appendRecord(b); err != nil {
			return err
		}
	}
	return nil
}

// badConditionalAppend: the append is guarded by an arbitrary flag, not
// a persistence nil-guard, so it does not dominate the mutation.
//
//entitylint:commitpath
func (h *Hub) badConditionalAppend(b []byte, ok bool) {
	if ok {
		_ = h.per.appendRecord(b)
	}
	h.view.Store(1) // want `call to Store through published field view before the write-ahead append`
}

// goodBothBranches: both arms of the if append, so the mutation after
// the merge point is dominated.
//
//entitylint:commitpath
func (h *Hub) goodBothBranches(b []byte, ok bool) {
	if ok {
		_ = h.per.appendRecord(b)
	} else {
		_ = h.per.appendRecord(nil)
	}
	h.view.Store(1)
}

// unannotated functions may mutate freely (replay/restore paths).
func (h *Hub) restore(members []int) {
	h.sources = members
	h.view.Store(len(members))
}

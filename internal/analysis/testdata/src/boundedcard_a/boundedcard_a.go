// Fixture for the boundedcard analyzer: labeled-family children from
// constants, from request-derived strings, and from justified bounded
// sets.
package boundedcard_a

type Counter struct{ n int64 }

func (c *Counter) Inc() { c.n++ }

type CounterVec struct{}

func (v *CounterVec) With(values ...string) *Counter { return &Counter{} }

var requests = &CounterVec{}

const methodGet = "GET"

func good() {
	requests.With("static", "2xx").Inc()
	requests.With(methodGet).Inc()
}

func bad(route string) {
	requests.With(route).Inc() // want `labeled-family child created from a non-constant value`
}

func justified(route string) {
	//entitylint:bounded route is one of the fixed mux patterns
	requests.With(route).Inc()
}

func unjustified(route string) {
	//entitylint:bounded
	requests.With(route).Inc() // want `requires a justification`
}

func statusClass(code int) string {
	switch code / 100 {
	case 2:
		return "2xx"
	case 4:
		return "4xx"
	default:
		return "5xx"
	}
}

func mixed(code int) {
	// The class string is computed, so it needs the justification even
	// though the set is finite.
	//entitylint:bounded statusClass returns one of three constants
	requests.With(statusClass(code)).Inc()
}

// Package load turns Go packages into analysis passes without
// golang.org/x/tools: module packages are enumerated by `go list
// -export -deps -test -json` and type-checked from source against the
// export data the go command already produced (the same data the
// compiler uses, read through go/importer's gc lookup mode), and
// GOPATH-style fixture trees (internal/analysis/testdata/src) are
// type-checked recursively from source with stdlib imports resolved
// the same way. Everything works offline: the only external process is
// the go command itself.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the import path; test variants keep the go list
	// bracket form ("p [p.test]") so diagnostics disambiguate.
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects type-checker complaints; analyzers should
	// only run on packages with none.
	TypeErrors []error
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
}

const listFields = "ImportPath,Dir,Export,GoFiles,Standard,DepOnly,ForTest,ImportMap"

// goList runs `go list -export -json` with the given extra arguments
// in dir and decodes the package stream.
func goList(dir string, args ...string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-export", "-json=" + listFields}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding output: %v", strings.Join(args, " "), err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// newInfo allocates the full types.Info an analyzer pass needs.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// exportLookup builds the go/importer gc-mode lookup function over a
// package's import map and the global export index.
func exportLookup(importMap map[string]string, exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// parseFiles parses the named files (relative to dir) with comments.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one package from parsed syntax.
func check(pkgPath string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, []error) {
	var terrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	info := newInfo()
	pkg, _ := conf.Check(pkgPath, fset, files, info)
	return pkg, info, terrs
}

// Module loads every package matching the patterns in the module
// rooted at dir, including in-package and external test variants, each
// fully type-checked. Dependencies resolve through export data, so the
// cost is parsing and checking only the matched packages themselves.
func Module(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, append([]string{"-deps", "-test", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	// The analyze set: matched, non-standard packages, skipping the
	// synthesized test mains and — when an in-package test variant
	// exists — the bare package it supersedes (the variant's file set
	// is a superset, so analyzing both would double-report).
	hasTestVariant := map[string]bool{}
	for _, p := range listed {
		if p.ForTest != "" && p.ImportPath == p.ForTest+" ["+p.ForTest+".test]" {
			hasTestVariant[p.ForTest] = true
		}
	}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if hasTestVariant[p.ImportPath] {
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		// The importer is per-package: the same import path can map to
		// different compilations (test variants) in different packages,
		// so the importer's cache must not leak across them.
		imp := importer.ForCompiler(fset, "gc", exportLookup(p.ImportMap, exports))
		typesPath := p.ImportPath
		if i := strings.IndexByte(typesPath, ' '); i >= 0 {
			typesPath = typesPath[:i] // "p [p.test]" type-checks as "p"
		}
		tpkg, info, terrs := check(typesPath, fset, files, imp)
		out = append(out, &Package{
			PkgPath:    p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
			TypeErrors: terrs,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// stdExports caches stdlib export-data locations across fixture loads
// (each `go list -export -deps` answer covers a whole import closure,
// so the cache converges after the first few queries).
var stdExports = struct {
	sync.Mutex
	files map[string]string
}{files: map[string]string{}}

// stdExportFile resolves a standard-library import path to its export
// data file, querying the go command on first sight.
func stdExportFile(dir, path string) (string, error) {
	stdExports.Lock()
	defer stdExports.Unlock()
	if f, ok := stdExports.files[path]; ok {
		if f == "" {
			return "", fmt.Errorf("%q is not a loadable package", path)
		}
		return f, nil
	}
	listed, err := goList(dir, "-deps", "--", path)
	if err != nil {
		stdExports.files[path] = ""
		return "", err
	}
	for _, p := range listed {
		if p.Export != "" {
			stdExports.files[p.ImportPath] = p.Export
		}
	}
	f := stdExports.files[path]
	if f == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	return f, nil
}

// fixtureImporter resolves a fixture package's imports: paths that
// exist as directories under the testdata src root load recursively
// from source; anything else resolves as a standard-library import
// through export data.
type fixtureImporter struct {
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*Package // loaded fixture packages by path
	gc      types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return p.Types, nil
	}
	dir := filepath.Join(fi.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		fi.pkgs[path] = nil // cycle guard
		p, err := loadFixturePkg(fi, path, dir)
		if err != nil {
			return nil, err
		}
		fi.pkgs[path] = p
		return p.Types, nil
	}
	return fi.gc.Import(path)
}

// loadFixturePkg parses and type-checks one fixture directory.
func loadFixturePkg(fi *fixtureImporter, path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture %q: no Go files in %s", path, dir)
	}
	files, err := parseFiles(fi.fset, dir, names)
	if err != nil {
		return nil, err
	}
	tpkg, info, terrs := check(path, fi.fset, files, fi)
	return &Package{
		PkgPath:    path,
		Dir:        dir,
		Fset:       fi.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: terrs,
	}, nil
}

// Fixture loads the GOPATH-style fixture package at srcRoot/path
// (srcRoot is a testdata/src directory), resolving in-tree imports
// from source and everything else from standard-library export data.
func Fixture(srcRoot, path string) (*Package, error) {
	abs, err := filepath.Abs(srcRoot)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	fi := &fixtureImporter{srcRoot: abs, fset: fset, pkgs: map[string]*Package{}}
	fi.gc = importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
		f, err := stdExportFile(abs, p)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
	dir := filepath.Join(abs, filepath.FromSlash(path))
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("fixture %q: %v", path, err)
	}
	fi.pkgs[path] = nil
	p, err := loadFixturePkg(fi, path, dir)
	if err != nil {
		return nil, err
	}
	fi.pkgs[path] = p
	return p, nil
}

// Package analysis is the hub's static-analysis framework: a minimal,
// dependency-free mirror of the golang.org/x/tools/go/analysis API
// shape, carrying exactly what the entitylint analyzers need — parsed
// syntax, full type information and a diagnostic sink. The repo bakes
// in no third-party modules, so the framework, the package loader
// (load) and the fixture runner (analysistest) are built on go/ast,
// go/types and the go command alone; an analyzer written against this
// package is a one-line port away from the upstream API if x/tools
// ever becomes available.
//
// Analyzers communicate with the checked code through //entitylint:
// directives (see Directive). The grammar, one directive per comment
// line:
//
//	//entitylint:lock rank=N [multi]    on a mutex field: declares its
//	                                    place in the global acquisition
//	                                    order (lockorder)
//	//entitylint:commitpath             on a function: it mutates
//	                                    published hub state and must
//	                                    log write-ahead first (walfirst)
//	//entitylint:walappend              on a function: calling it is a
//	                                    write-ahead append (walfirst)
//	//entitylint:publishes              on a function: calling it
//	                                    mutates published state
//	                                    (walfirst)
//	//entitylint:published              on a struct field: assigning it
//	                                    mutates published state
//	                                    (walfirst)
//	//entitylint:hotpath [flags]        on a function: it serves the
//	                                    hot read path; flags is a
//	                                    comma-separated subset of
//	                                    noalloc,nolock,noobs,noio
//	                                    (empty means all) (hotpath)
//	//entitylint:bounded <reason>       on or above a labeled-family
//	                                    With call: the non-constant
//	                                    label provably comes from a
//	                                    finite set (boundedcard)
//	//entitylint:ignore <analyzer> <reason>
//	                                    on or above a line: suppress
//	                                    that analyzer's findings there
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check, in the x/tools go/analysis shape.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -disable lists.
	Name string
	// Doc is the one-paragraph description shown by entitylint -list.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver wires suppression
	// (//entitylint:ignore) and output formatting behind it.
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// directivePrefix marks an entitylint directive comment.
const directivePrefix = "//entitylint:"

// Directive is one parsed //entitylint:<verb> [args] comment.
type Directive struct {
	Pos  token.Pos
	Verb string
	Args string
}

// parseDirective parses one comment line; ok is false for ordinary
// comments.
func parseDirective(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	verb, args, _ := strings.Cut(rest, " ")
	verb = strings.TrimSpace(verb)
	if verb == "" {
		return Directive{}, false
	}
	return Directive{Pos: c.Pos(), Verb: verb, Args: strings.TrimSpace(args)}, true
}

// Directives extracts every entitylint directive from a comment group.
func Directives(groups ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if d, ok := parseDirective(c); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// FindDirective returns the first directive with the given verb among
// the comment groups (a declaration's Doc and trailing Comment, say).
func FindDirective(verb string, groups ...*ast.CommentGroup) (Directive, bool) {
	for _, d := range Directives(groups...) {
		if d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// LineDirectives indexes every directive in a file by the source line
// its comment starts on — the shape suppression lookups need.
func LineDirectives(fset *token.FileSet, f *ast.File) map[int][]Directive {
	out := map[int][]Directive{}
	for _, g := range f.Comments {
		for _, c := range g.List {
			if d, ok := parseDirective(c); ok {
				line := fset.Position(c.Pos()).Line
				out[line] = append(out[line], d)
			}
		}
	}
	return out
}

// Suppressor answers "is this diagnostic suppressed?" for one package:
// an //entitylint:ignore <analyzer> <reason> comment on the reported
// line or the line above it silences the finding. The reason is
// mandatory — a bare ignore suppresses nothing, so every suppression
// carries its justification in the source.
type Suppressor struct {
	fset  *token.FileSet
	lines map[string]map[int][]Directive
}

// NewSuppressor indexes the ignore directives of a package.
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{fset: fset, lines: map[string]map[int][]Directive{}}
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		s.lines[name] = LineDirectives(fset, f)
	}
	return s
}

// Suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by an ignore directive.
func (s *Suppressor) Suppressed(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	lines := s.lines[p.Filename]
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range lines[line] {
			if d.Verb != "ignore" {
				continue
			}
			name, reason, _ := strings.Cut(d.Args, " ")
			if name == analyzer && strings.TrimSpace(reason) != "" {
				return true
			}
		}
	}
	return false
}

// IsMethodNamed reports whether fn is a method with the given name on
// some receiver, matching on the types.Func.
func IsMethodNamed(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// PkgPathOf returns the package path a function object is declared in
// ("" for builtins and error.Error etc. with no package).
func PkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// CalleeFunc resolves a call expression to the *types.Func it
// statically invokes: a plain function, a method on a concrete value,
// or an interface method. Calls through function-typed variables and
// built-ins resolve to nil.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

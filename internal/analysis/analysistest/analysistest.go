// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its diagnostics against // want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest: every
// diagnostic must match a want expectation on its line, and every
// expectation must be consumed. Because expectations are exact, a
// fixture with want comments fails loudly if the analyzer is disabled
// or stops detecting its violation — the fixtures are self-proving.
package analysistest

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"testing"

	"entityid/internal/analysis"
	"entityid/internal/analysis/load"
)

// wantRe matches one expectation comment: // want "rx" "rx" ... where
// each pattern is a double-quoted Go string or a backquoted raw string.
var (
	wantRe    = regexp.MustCompile(`//\s*want\s+(.*)$`)
	patternRe = regexp.MustCompile("(\"(?:[^\"\\\\]|\\\\.)*\")|(`[^`]*`)")
)

// expectation is one want pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// collectWants scans the loaded package's comments for expectations.
func collectWants(t *testing.T, p *load.Package) []*expectation {
	var wants []*expectation
	for _, f := range p.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				pats := patternRe.FindAllString(m[1], -1)
				if len(pats) == 0 {
					t.Errorf("%s:%d: malformed want comment: %s", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, pat := range pats {
					body := pat[1 : len(pat)-1]
					if pat[0] == '"' {
						body = strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(body)
					}
					rx, err := regexp.Compile(body)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, body, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: body})
				}
			}
		}
	}
	return wants
}

// Run loads each fixture package from testdata/src, applies the
// analyzer, and verifies its diagnostics against the // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkgPath := range pkgs {
		p, err := load.Fixture(testdata+"/src", pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", pkgPath, err)
		}
		if len(p.TypeErrors) > 0 {
			for _, e := range p.TypeErrors {
				t.Errorf("fixture %q: type error: %v", pkgPath, e)
			}
			t.FailNow()
		}
		diags := RunPass(t, a, p)
		wants := collectWants(t, p)
		for _, d := range diags {
			pos := p.Fset.Position(d.Pos)
			matched := false
			for _, w := range wants {
				if w.matched || w.file != pos.Filename || w.line != pos.Line {
					continue
				}
				if w.rx.MatchString(d.Message) {
					w.matched = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched pattern %q", w.file, w.line, w.raw)
			}
		}
	}
}

// RunPass applies the analyzer to one loaded package and returns its
// surviving (non-suppressed) diagnostics sorted by position.
func RunPass(t *testing.T, a *analysis.Analyzer, p *load.Package) []analysis.Diagnostic {
	t.Helper()
	sup := analysis.NewSuppressor(p.Fset, p.Files)
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.Info,
		Report: func(d analysis.Diagnostic) {
			if !sup.Suppressed(a.Name, d.Pos) {
				diags = append(diags, d)
			}
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

// Diagnose is RunPass without a testing.T, for the driver: it returns
// formatted findings ("file:line:col: message [analyzer]").
func Diagnose(a *analysis.Analyzer, p *load.Package) ([]string, error) {
	sup := analysis.NewSuppressor(p.Fset, p.Files)
	var out []string
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.Info,
		Report: func(d analysis.Diagnostic) {
			if !sup.Suppressed(a.Name, d.Pos) {
				out = append(out, fmt.Sprintf("%s: %s [%s]", p.Fset.Position(d.Pos), d.Message, a.Name))
			}
		},
	}
	if _, err := a.Run(pass); err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

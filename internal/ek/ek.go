// Package ek implements extended keys (§4.1): the minimal attribute set
// K_Ext = K1 ∪ K2 ∪ Ā that uniquely identifies an entity in the
// integrated world, together with the extended-key-equivalence identity
// rule it induces and the bookkeeping for the attributes each source
// relation is missing (K_Ext−R, K_Ext−S).
//
// Extended-key attributes are integrated-world names, mapped to
// source-relation attributes through schema.Correspondences; an
// extended-key attribute with no correspondence entry for a relation is,
// by definition, missing from that relation and must be derived by ILFDs
// or left NULL.
package ek

import (
	"fmt"
	"sort"

	"entityid/internal/relation"
	"entityid/internal/rules"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// Key is an extended key over integrated-world attribute names.
type Key struct {
	attrs []string
}

// New builds an extended key from integrated attribute names. Names must
// be non-empty and unique; order is preserved for display but
// set-semantics apply elsewhere.
func New(attrs ...string) (Key, error) {
	if len(attrs) == 0 {
		return Key{}, fmt.Errorf("ek: empty extended key")
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if a == "" {
			return Key{}, fmt.Errorf("ek: empty attribute name")
		}
		if seen[a] {
			return Key{}, fmt.Errorf("ek: duplicate attribute %q", a)
		}
		seen[a] = true
	}
	return Key{attrs: append([]string(nil), attrs...)}, nil
}

// MustNew panics on error; for literals in tests and examples.
func MustNew(attrs ...string) Key {
	k, err := New(attrs...)
	if err != nil {
		panic(err)
	}
	return k
}

// Attrs returns the key attributes in declaration order.
func (k Key) Attrs() []string { return append([]string(nil), k.attrs...) }

// Len returns the number of key attributes.
func (k Key) Len() int { return len(k.attrs) }

// Has reports whether the key contains the attribute.
func (k Key) Has(attr string) bool {
	for _, a := range k.attrs {
		if a == attr {
			return true
		}
	}
	return false
}

// String renders the key as {a, b, c}.
func (k Key) String() string {
	out := "{"
	for i, a := range k.attrs {
		if i > 0 {
			out += ", "
		}
		out += a
	}
	return out + "}"
}

// Missing returns K_Ext − R: the key attributes with no correspondence
// for the given side. side must be schema.Correspondences' left or right
// schema; chooses by pointer identity.
func (k Key) Missing(c *schema.Correspondences, rel *schema.Schema) ([]string, error) {
	left := rel == c.Left()
	if !left && rel != c.Right() {
		return nil, fmt.Errorf("ek: schema %s is neither side of the correspondences", rel.Name())
	}
	var missing []string
	for _, a := range k.attrs {
		if _, ok := c.ByName(a); !ok {
			// No correspondence at all: missing from both sides.
			missing = append(missing, a)
			continue
		}
		var attr string
		var found bool
		if left {
			attr, found = c.LeftAttr(a)
		} else {
			attr, found = c.RightAttr(a)
		}
		if !found || attr == "" || !rel.Has(attr) {
			missing = append(missing, a)
		}
	}
	return missing, nil
}

// Rule returns the extended-key-equivalence identity rule (§4.1):
// ∀e1,e2: (e1.A1=e2.A1) ∧ … ∧ (e1.Ak=e2.Ak) → e1 ≡ e2 over the
// integrated attribute names.
func (k Key) Rule() (rules.IdentityRule, error) {
	return rules.KeyEquivalence(fmt.Sprintf("extended-key%s", k.String()), k.attrs)
}

// Covers reports whether the key includes every attribute of the given
// candidate key (under the integrated names provided by toIntegrated,
// which maps a source attribute to its integrated name, "" if none).
// A common candidate key fully covered by K_Ext is the degenerate case
// where extended-key equivalence reduces to classical key equivalence.
func (k Key) Covers(candidate []string, toIntegrated func(string) string) bool {
	for _, a := range candidate {
		name := toIntegrated(a)
		if name == "" || !k.Has(name) {
			return false
		}
	}
	return true
}

// UniqueIn checks the necessary condition the paper states for identity
// rules (§3.2): tuples satisfying the rule's conditions must be unique
// within each relation. For extended-key equivalence this means no two
// tuples of rel agree (non-NULL) on all key attributes present in rel —
// i.e. the present part of the extended key behaves as a key. Returns
// the offending pair if violated.
func (k Key) UniqueIn(rel *relation.Relation, attrOf func(string) (string, bool)) (i, j int, ok bool) {
	var present []string
	for _, a := range k.attrs {
		if src, found := attrOf(a); found && rel.Schema().Has(src) {
			present = append(present, src)
		}
	}
	if len(present) == 0 {
		return -1, -1, true
	}
	seen := map[string]int{}
	for idx, t := range rel.Tuples() {
		keyStr := ""
		full := true
		for n, a := range present {
			v := t[rel.Schema().Index(a)]
			if v.IsNull() {
				full = false
				break
			}
			if n > 0 {
				keyStr += "\x1f"
			}
			keyStr += v.Key()
		}
		if !full {
			continue
		}
		if prev, dup := seen[keyStr]; dup {
			return prev, idx, false
		}
		seen[keyStr] = idx
	}
	return -1, -1, true
}

// Minimal reports whether the key is minimal with respect to a
// uniqueness oracle: no proper subset of its attributes still uniquely
// identifies entities. unique is called with candidate attribute subsets
// and should report whether the subset is a key of the integrated world;
// the extended key definition requires minimality (§4.1).
func (k Key) Minimal(unique func(attrs []string) bool) bool {
	if !unique(k.Attrs()) {
		return false
	}
	for i := range k.attrs {
		subset := make([]string, 0, len(k.attrs)-1)
		subset = append(subset, k.attrs[:i]...)
		subset = append(subset, k.attrs[i+1:]...)
		if len(subset) > 0 && unique(subset) {
			return false
		}
	}
	return true
}

// CandidateAttrs lists the integrated names available for extended-key
// selection, sorted — the list the prototype's setup_extkey prints
// (§6.3).
func CandidateAttrs(c *schema.Correspondences) []string {
	names := c.Names()
	sort.Strings(names)
	return names
}

// SourceAttrs resolves the key to concrete attribute names for one side
// of the correspondences; missing attributes resolve to "" in the same
// position.
func (k Key) SourceAttrs(c *schema.Correspondences, left bool) []string {
	out := make([]string, len(k.attrs))
	for i, a := range k.attrs {
		if left {
			if src, ok := c.LeftAttr(a); ok {
				out[i] = src
			}
		} else {
			if src, ok := c.RightAttr(a); ok {
				out[i] = src
			}
		}
	}
	return out
}

// ProjectionOf returns tuple t's values for the key, using the side's
// source attribute names; attributes missing from the relation yield
// NULL.
func (k Key) ProjectionOf(rel *relation.Relation, t relation.Tuple, srcAttrs []string) []value.Value {
	out := make([]value.Value, len(k.attrs))
	for i, src := range srcAttrs {
		if src == "" || !rel.Schema().Has(src) {
			out[i] = value.Null
			continue
		}
		out[i] = t[rel.Schema().Index(src)]
	}
	return out
}

package ek

import (
	"strings"
	"testing"

	"entityid/internal/paperdata"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := New(""); err == nil {
		t.Error("empty attribute accepted")
	}
	if _, err := New("a", "a"); err == nil {
		t.Error("duplicate attribute accepted")
	}
	k := MustNew("name", "cuisine", "speciality")
	if k.Len() != 3 || !k.Has("cuisine") || k.Has("bogus") {
		t.Errorf("key basics wrong: %v", k)
	}
	if got := k.String(); got != "{name, cuisine, speciality}" {
		t.Errorf("String = %q", got)
	}
	if got := k.Attrs(); len(got) != 3 || got[0] != "name" {
		t.Errorf("Attrs = %v", got)
	}
}

func TestMissingExample3(t *testing.T) {
	r, s := paperdata.Table5R(), paperdata.Table5S()
	c := paperdata.Table5Correspondences(r, s)
	k := MustNew(paperdata.Example3ExtendedKey()...)

	// K_Ext − R = {speciality}: R has name and cuisine but no speciality.
	// The correspondences only list name, so cuisine/speciality have no
	// entry; Missing falls back to "no correspondence = missing", hence
	// both cuisine and speciality are reported for S, and speciality and
	// cuisine for R — refine with direct schema probing below.
	missR, err := k.Missing(c, r.Schema())
	if err != nil {
		t.Fatalf("Missing(R): %v", err)
	}
	// cuisine exists in R but has no correspondence entry; the ek
	// contract is "no correspondence -> missing", so the caller (match
	// package) supplements correspondences for one-sided attributes. At
	// this level we just check speciality is reported.
	found := false
	for _, a := range missR {
		if a == "speciality" {
			found = true
		}
	}
	if !found {
		t.Errorf("Missing(R) = %v, want to include speciality", missR)
	}
	if _, err := k.Missing(c, paperdata.Table1R().Schema()); err == nil {
		t.Error("Missing with foreign schema accepted")
	}
}

func TestMissingWithFullCorrespondences(t *testing.T) {
	// After the relations are extended (Table 6), every extended-key
	// attribute has a correspondence and nothing is missing.
	rp, sp := paperdata.Table6RPrime(), paperdata.Table6SPrime()
	c := schema.MustNewCorrespondences(rp.Schema(), sp.Schema(), []schema.Correspondence{
		{Name: "name", Left: "name", Right: "name"},
		{Name: "cuisine", Left: "cuisine", Right: "cuisine"},
		{Name: "speciality", Left: "speciality", Right: "speciality"},
	})
	k := MustNew(paperdata.Example3ExtendedKey()...)
	missR, err := k.Missing(c, rp.Schema())
	if err != nil {
		t.Fatalf("Missing(R'): %v", err)
	}
	if len(missR) != 0 {
		t.Errorf("Missing(R') = %v, want none", missR)
	}
	missS, err := k.Missing(c, sp.Schema())
	if err != nil {
		t.Fatalf("Missing(S'): %v", err)
	}
	if len(missS) != 0 {
		t.Errorf("Missing(S') = %v, want none", missS)
	}
}

func TestRule(t *testing.T) {
	k := MustNew("name", "cuisine")
	rule, err := k.Rule()
	if err != nil {
		t.Fatalf("Rule: %v", err)
	}
	if !strings.Contains(rule.Name, "extended-key") {
		t.Errorf("rule name = %q", rule.Name)
	}
	if len(rule.Preds) != 2 {
		t.Errorf("rule predicates = %d", len(rule.Preds))
	}
}

func TestCovers(t *testing.T) {
	k := MustNew("name", "cuisine")
	ident := func(a string) string { return a }
	if !k.Covers([]string{"name"}, ident) {
		t.Error("Covers(name) = false")
	}
	if k.Covers([]string{"name", "street"}, ident) {
		t.Error("Covers(name,street) = true")
	}
	if k.Covers([]string{"name"}, func(string) string { return "" }) {
		t.Error("Covers with unmapped attr = true")
	}
}

func TestUniqueIn(t *testing.T) {
	r := paperdata.Table5R()
	ident := func(a string) (string, bool) { return a, true }

	// {name, cuisine} is R's key: unique.
	k := MustNew("name", "cuisine")
	if _, _, ok := k.UniqueIn(r, ident); !ok {
		t.Error("key attrs reported non-unique")
	}
	// {name} alone: TwinCities repeats -> violation, and the offending
	// pair is reported.
	k1 := MustNew("name")
	i, j, ok := k1.UniqueIn(r, ident)
	if ok {
		t.Fatal("{name} reported unique despite duplicate TwinCities")
	}
	if r.MustValue(i, "name").Str() != "TwinCities" || r.MustValue(j, "name").Str() != "TwinCities" {
		t.Errorf("offending pair (%d,%d) not the TwinCities rows", i, j)
	}
	// Attributes entirely absent: trivially unique (nothing to compare).
	kAbsent := MustNew("nonexistent")
	if _, _, ok := kAbsent.UniqueIn(r, func(string) (string, bool) { return "", false }); !ok {
		t.Error("absent attributes reported non-unique")
	}
}

func TestUniqueInSkipsNullProjections(t *testing.T) {
	sch := schema.MustNew("T", []schema.Attribute{
		{Name: "a", Kind: value.KindString},
		{Name: "b", Kind: value.KindString},
	}, []string{"a", "b"})
	r := relation.New(sch)
	r.MustInsert(value.String("x"), value.Null)
	r.MustInsert(value.String("x"), value.Null)
	k := MustNew("a", "b")
	if _, _, ok := k.UniqueIn(r, func(a string) (string, bool) { return a, true }); !ok {
		t.Error("NULL-containing projections flagged as duplicates")
	}
}

func TestMinimal(t *testing.T) {
	k := MustNew("name", "cuisine")
	// Oracle: only the full pair is unique.
	pairOnly := func(attrs []string) bool { return len(attrs) == 2 }
	if !k.Minimal(pairOnly) {
		t.Error("minimal key reported non-minimal")
	}
	// Oracle: name alone is already unique -> {name, cuisine} not minimal.
	nameEnough := func(attrs []string) bool {
		for _, a := range attrs {
			if a == "name" {
				return true
			}
		}
		return false
	}
	if k.Minimal(nameEnough) {
		t.Error("non-minimal key reported minimal")
	}
	// Oracle: nothing is unique -> not even a key.
	if k.Minimal(func([]string) bool { return false }) {
		t.Error("non-key reported minimal")
	}
}

func TestCandidateAttrsAndSourceAttrs(t *testing.T) {
	r, s := paperdata.Table1R(), paperdata.Table1S()
	c := paperdata.Table1Correspondences(r, s)
	if got := CandidateAttrs(c); len(got) != 1 || got[0] != "name" {
		t.Errorf("CandidateAttrs = %v", got)
	}
	k := MustNew("name", "street")
	left := k.SourceAttrs(c, true)
	if left[0] != "name" || left[1] != "" {
		t.Errorf("SourceAttrs(left) = %v", left)
	}
	right := k.SourceAttrs(c, false)
	if right[0] != "name" || right[1] != "" {
		t.Errorf("SourceAttrs(right) = %v", right)
	}
}

func TestProjectionOf(t *testing.T) {
	r, s := paperdata.Table1R(), paperdata.Table1S()
	c := paperdata.Table1Correspondences(r, s)
	k := MustNew("name", "street")
	src := k.SourceAttrs(c, true)
	proj := k.ProjectionOf(r, r.Tuple(0), src)
	if proj[0].Str() != "VillageWok" {
		t.Errorf("projection name = %v", proj[0])
	}
	if !proj[1].IsNull() {
		// street has no correspondence -> NULL in the integrated
		// projection even though R happens to have a street attribute
		// (the projection goes through integrated names).
		t.Errorf("projection street = %v, want NULL (no correspondence)", proj[1])
	}
}

package integrate

import (
	"strings"
	"testing"

	"entityid/internal/match"
	"entityid/internal/paperdata"
	"entityid/internal/value"
)

func example3Result(t *testing.T) *match.Result {
	t.Helper()
	res, err := match.Build(match.Config{
		R: paperdata.Table5R(),
		S: paperdata.Table5S(),
		Attrs: []match.AttrMap{
			{Name: "name", R: "name", S: "name"},
			{Name: "cuisine", R: "cuisine", S: ""},
			{Name: "speciality", R: "", S: "speciality"},
			{Name: "street", R: "street", S: ""},
			{Name: "county", R: "", S: "county"},
		},
		ExtKey: paperdata.Example3ExtendedKey(),
		ILFDs:  paperdata.Example3ILFDs(),
	})
	if err != nil {
		t.Fatalf("match.Build: %v", err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return res
}

// TestIntegratedTableExample3 reproduces the prototype's
// print_integ_table output structure (§6.3): 3 merged rows + 2
// unmatched R rows + 1 unmatched S row = 6 rows.
func TestIntegratedTableExample3(t *testing.T) {
	res := example3Result(t)
	tab, err := Build(res, Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if tab.Len() != 6 {
		t.Fatalf("integrated table has %d rows, want 6:\n%s", tab.Len(), tab.Render("integrated table"))
	}
	merged, unmatchedR, unmatchedS := 0, 0, 0
	for i := range tab.Rows {
		switch {
		case tab.Merged(i):
			merged++
		case tab.Rows[i].RIndex >= 0:
			unmatchedR++
		default:
			unmatchedS++
		}
	}
	if merged != 3 || unmatchedR != 2 || unmatchedS != 1 {
		t.Errorf("rows = %d merged, %d R-only, %d S-only; want 3/2/1", merged, unmatchedR, unmatchedS)
	}
	// The prototype's exact rows: check the anjuman merged row and the
	// villagewok unmatched row.
	out := tab.Render("integrated table")
	for _, want := range []string{
		"r_name", "s_name", "r_street", "s_county",
		"Anjuman", "VillageWok", "Wash.Ave.", "null",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	// VillageWok row: everything on the S side NULL.
	found := false
	for i := 0; i < tab.Rel.Len(); i++ {
		name := tab.Rel.MustValue(i, "r_name")
		if !name.IsNull() && name.Str() == "VillageWok" {
			found = true
			if v := tab.Rel.MustValue(i, "s_name"); !v.IsNull() {
				t.Errorf("VillageWok s_name = %v, want NULL", v)
			}
			if v := tab.Rel.MustValue(i, "s_county"); !v.IsNull() {
				t.Errorf("VillageWok s_county = %v, want NULL", v)
			}
		}
	}
	if !found {
		t.Error("VillageWok row missing")
	}
	// Sichuan TwinCities: unmatched S row with NULL r side.
	found = false
	for i := 0; i < tab.Rel.Len(); i++ {
		spec := tab.Rel.MustValue(i, "s_speciality")
		if !spec.IsNull() && spec.Str() == "Sichuan" {
			found = true
			if v := tab.Rel.MustValue(i, "r_name"); !v.IsNull() {
				t.Errorf("Sichuan r_name = %v, want NULL", v)
			}
			// Its derived cuisine survives integration.
			if v := tab.Rel.MustValue(i, "s_cuisine"); v.IsNull() || v.Str() != "Chinese" {
				t.Errorf("Sichuan s_cuisine = %v, want Chinese", v)
			}
		}
	}
	if !found {
		t.Error("Sichuan row missing")
	}
}

func TestOptionsValidation(t *testing.T) {
	res := example3Result(t)
	if _, err := Build(res, Options{RPrefix: "x_", SPrefix: "x_"}); err == nil {
		t.Error("equal prefixes accepted")
	}
	tab, err := Build(res, Options{RPrefix: "left.", SPrefix: "right."})
	if err != nil {
		t.Fatalf("custom prefixes: %v", err)
	}
	if !tab.Rel.Schema().Has("left.name") || !tab.Rel.Schema().Has("right.county") {
		t.Errorf("custom prefixes not applied: %v", tab.Rel.Schema())
	}
}

func TestCoalescedKey(t *testing.T) {
	res := example3Result(t)
	tab, err := Build(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tab.Len(); i++ {
		key, err := tab.CoalescedKey(i, "", "")
		if err != nil {
			t.Fatalf("CoalescedKey(%d): %v", i, err)
		}
		if len(key) != 3 {
			t.Fatalf("key len = %d", len(key))
		}
		// Merged rows have a fully non-NULL coalesced key (that is what
		// made them match).
		if tab.Merged(i) {
			for n, v := range key {
				if v.IsNull() {
					t.Errorf("merged row %d: key[%d] NULL", i, n)
				}
			}
		}
	}
}

// TestPossibleMatches checks the §4.1 residual-match semantics: the
// unmatched R rows (TwinCities-Indian with NULL speciality, VillageWok
// with NULL speciality) and the unmatched S row (TwinCities-Sichuan)
// possibly match when their non-NULL extended-key values agree.
func TestPossibleMatches(t *testing.T) {
	res := example3Result(t)
	tab, err := Build(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := tab.PossibleMatches()
	if err != nil {
		t.Fatalf("PossibleMatches: %v", err)
	}
	// TwinCities-Indian (R) vs TwinCities-Sichuan-Chinese (S): cuisine
	// Indian vs Chinese conflict -> NOT a possible match.
	// VillageWok (R) vs TwinCities-Sichuan (S): name conflict -> no.
	// So no residual possible matches are expected in Example 3.
	for _, p := range pm {
		n1 := tab.Rel.MustValue(p[0], "r_name")
		n2 := tab.Rel.MustValue(p[1], "s_name")
		t.Errorf("unexpected possible match between rows %d (%v) and %d (%v)", p[0], n1, p[1], n2)
	}
}

func TestPossibleMatchesWithCompatibleNulls(t *testing.T) {
	// Drop the ILFDs so extended-key attributes stay NULL; then
	// same-name rows from opposite sides become possible matches.
	res, err := match.Build(match.Config{
		R: paperdata.Table5R(),
		S: paperdata.Table5S(),
		Attrs: []match.AttrMap{
			{Name: "name", R: "name", S: "name"},
			{Name: "cuisine", R: "cuisine", S: ""},
			{Name: "speciality", R: "", S: "speciality"},
		},
		ExtKey: paperdata.Example3ExtendedKey(),
		// No ILFDs: nothing matches, everything is residual.
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Build(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 9 { // 5 R rows + 4 S rows, no merges
		t.Fatalf("rows = %d, want 9", tab.Len())
	}
	pm, err := tab.PossibleMatches()
	if err != nil {
		t.Fatal(err)
	}
	// VillageWok (R) has no same-name S row: candidates are TwinCities
	// (2 R rows × 2 S rows, minus cuisine conflicts unavailable since S
	// cuisine is NULL => all 4 compatible), It'sGreek (1×1), Anjuman
	// (1×1). Name conflicts exclude the rest.
	if len(pm) != 6 {
		t.Errorf("possible matches = %d, want 6", len(pm))
	}
	for _, p := range pm {
		a, _ := tab.CoalescedKey(p[0], "", "")
		b, _ := tab.CoalescedKey(p[1], "", "")
		if !value.Equal(a[0], b[0]) {
			t.Errorf("possible match with different names: %v vs %v", a[0], b[0])
		}
	}
}

func TestRenderSorted(t *testing.T) {
	res := example3Result(t)
	tab, err := Build(res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render("integrated table")
	// NULL sorts first: the S-only row (r_name NULL) is the first data row.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("short render:\n%s", out)
	}
	if !strings.HasPrefix(lines[3], "null") {
		t.Errorf("first data row does not start with null:\n%s", out)
	}
}

// Package integrate builds the integrated table T_RS = MT_RS ⋈ R
// full-outer-join S (§4.1–4.2): matched pairs merge into one row;
// unmatched tuples of either relation survive as rows padded with NULL
// on the other side. The paper's prototype prints exactly this table
// (§6.3's print_integ_table).
//
// Within T_RS a real-world entity can still be modeled by up to two
// tuples (a row from R and a row from S that the available knowledge
// could not match). The paper defines the residual "possible match"
// relation on T_RS — two rows possibly match when their extended-key
// values have no conflicting non-NULL entries — implemented here as
// PossibleMatches.
package integrate

import (
	"fmt"

	"entityid/internal/match"
	"entityid/internal/relation"
	"entityid/internal/schema"
	"entityid/internal/value"
)

// Options controls column naming in the integrated table.
type Options struct {
	// RPrefix and SPrefix prefix the two sides' attribute names. The
	// defaults "r_" and "s_" reproduce the prototype's column names
	// (r_name, s_cui, …).
	RPrefix, SPrefix string
}

// Row links an integrated tuple back to its sources: RIndex/SIndex are
// positions in the extended relations, or -1 for the padded side.
type Row struct {
	RIndex, SIndex int
}

// Table is the integrated table T_RS plus row provenance.
type Table struct {
	Rel  *relation.Relation
	Rows []Row
	// rArity is the number of R-side columns (provenance for the
	// extended-key coalescing helpers).
	rArity int
	extKey []string
}

// Build constructs T_RS from a match result. Column order is R′'s
// attributes then S′'s, each side prefixed per Options.
func Build(res *match.Result, opts Options) (*Table, error) {
	if opts.RPrefix == "" {
		opts.RPrefix = "r_"
	}
	if opts.SPrefix == "" {
		opts.SPrefix = "s_"
	}
	if opts.RPrefix == opts.SPrefix {
		return nil, fmt.Errorf("integrate: prefixes must differ")
	}
	rp, sp := res.RPrime, res.SPrime
	var attrs []schema.Attribute
	for _, a := range rp.Schema().Attrs() {
		attrs = append(attrs, schema.Attribute{Name: opts.RPrefix + a.Name, Kind: a.Kind})
	}
	for _, a := range sp.Schema().Attrs() {
		attrs = append(attrs, schema.Attribute{Name: opts.SPrefix + a.Name, Kind: a.Kind})
	}
	sch, err := schema.New("T_RS", attrs)
	if err != nil {
		return nil, err
	}
	out := relation.New(sch)
	tab := &Table{Rel: out, rArity: rp.Schema().Arity(), extKey: res.ExtKey()}

	matchedR := make(map[int]int, res.MT.Len()) // RIndex -> SIndex
	matchedS := make(map[int]bool, res.MT.Len())
	for _, p := range res.MT.Pairs {
		matchedR[p.RIndex] = p.SIndex
		matchedS[p.SIndex] = true
	}
	nullsR := nullTuple(rp.Schema().Arity())
	nullsS := nullTuple(sp.Schema().Arity())

	insert := func(rIdx, sIdx int, rt, st relation.Tuple) error {
		row := make(relation.Tuple, 0, len(rt)+len(st))
		row = append(row, rt...)
		row = append(row, st...)
		if err := out.Insert(row); err != nil {
			return fmt.Errorf("integrate: %w", err)
		}
		tab.Rows = append(tab.Rows, Row{RIndex: rIdx, SIndex: sIdx})
		return nil
	}
	// Matched pairs merge; unmatched R rows pad right; unmatched S rows
	// pad left — the full outer join.
	for i, rt := range rp.Tuples() {
		if j, ok := matchedR[i]; ok {
			if err := insert(i, j, rt, sp.Tuple(j)); err != nil {
				return nil, err
			}
			continue
		}
		if err := insert(i, -1, rt, nullsS); err != nil {
			return nil, err
		}
	}
	for j, st := range sp.Tuples() {
		if matchedS[j] {
			continue
		}
		if err := insert(-1, j, nullsR, st); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

func nullTuple(n int) relation.Tuple {
	t := make(relation.Tuple, n)
	for i := range t {
		t[i] = value.Null
	}
	return t
}

// Len returns the number of integrated rows.
func (t *Table) Len() int { return t.Rel.Len() }

// Merged reports whether row i combines a tuple from each source.
func (t *Table) Merged(i int) bool {
	return t.Rows[i].RIndex >= 0 && t.Rows[i].SIndex >= 0
}

// CoalescedKey returns row i's extended-key values with R-side values
// taking precedence and the S side filling NULLs: the integrated
// entity's identity under the extended key. A conflict (both sides
// non-NULL and different) returns an error — it would mean the matching
// table merged tuples the extended key distinguishes.
func (t *Table) CoalescedKey(i int, rPrefix, sPrefix string) ([]value.Value, error) {
	if rPrefix == "" {
		rPrefix = "r_"
	}
	if sPrefix == "" {
		sPrefix = "s_"
	}
	row := t.Rel.Tuple(i)
	out := make([]value.Value, len(t.extKey))
	for n, a := range t.extKey {
		ri := t.Rel.Schema().Index(rPrefix + a)
		si := t.Rel.Schema().Index(sPrefix + a)
		var rv, sv value.Value
		if ri >= 0 {
			rv = row[ri]
		}
		if si >= 0 {
			sv = row[si]
		}
		switch {
		case rv.IsNull():
			out[n] = sv
		case sv.IsNull():
			out[n] = rv
		case value.Equal(rv, sv):
			out[n] = rv
		default:
			return nil, fmt.Errorf("integrate: row %d: conflicting extended-key values %s vs %s for %q",
				i, rv, sv, a)
		}
	}
	return out, nil
}

// PossibleMatches returns the pairs of integrated rows that could still
// model the same real-world entity: their coalesced extended keys have
// no conflicting non-NULL values, and they originate from opposite
// sides (a merged row is already resolved). This is the §4.1 residual-
// match relation on T_RS.
func (t *Table) PossibleMatches() ([][2]int, error) {
	keys := make([][]value.Value, t.Len())
	for i := range keys {
		k, err := t.CoalescedKey(i, "", "")
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	var out [][2]int
	for i := 0; i < t.Len(); i++ {
		for j := i + 1; j < t.Len(); j++ {
			// Two unresolved rows from opposite sides.
			ri, rj := t.Rows[i], t.Rows[j]
			if t.Merged(i) || t.Merged(j) {
				continue
			}
			fromR := ri.RIndex >= 0
			otherFromR := rj.RIndex >= 0
			if fromR == otherFromR {
				continue
			}
			compatible := true
			for n := range t.extKey {
				a, b := keys[i][n], keys[j][n]
				if !a.IsNull() && !b.IsNull() && !value.Equal(a, b) {
					compatible = false
					break
				}
			}
			if compatible {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out, nil
}

// Render prints the integrated table in the prototype's format, sorted
// by the whole row for determinism.
func (t *Table) Render(title string) string {
	clone := t.Rel.Clone()
	if err := clone.Sort(); err != nil {
		return err.Error()
	}
	return relation.Format(title, clone.Schema().AttrNames(), clone.Tuples())
}

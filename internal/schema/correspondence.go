package schema

import (
	"fmt"
	"sort"
)

// Correspondence records that an attribute of one relation is semantically
// equivalent to an attribute of another relation. The paper assumes these
// equivalences were determined during schema integration (§3.1: "the
// synonym problem would have been resolved before entity identification");
// the prototype's setup_extkey lists exactly these pairs as extended-key
// candidates (§6.3).
type Correspondence struct {
	// Name is the integrated-world attribute name, e.g. "name" for the
	// pair (r_name, s_name).
	Name string
	// Left and Right are the attribute names in the two source relations.
	Left, Right string
}

// Correspondences is the set of attribute equivalences between two
// relations, the input to extended-key selection.
type Correspondences struct {
	left, right *Schema
	list        []Correspondence
	byName      map[string]Correspondence
}

// NewCorrespondences validates and collects attribute correspondences
// between the two schemas. Every referenced attribute must exist in its
// schema, kinds must agree (the paper assumes domain mismatches were
// resolved at schema integration), and integrated names must be unique.
func NewCorrespondences(left, right *Schema, list []Correspondence) (*Correspondences, error) {
	c := &Correspondences{
		left:   left,
		right:  right,
		byName: make(map[string]Correspondence, len(list)),
	}
	for _, cor := range list {
		if cor.Name == "" {
			return nil, fmt.Errorf("correspondence (%s,%s): empty integrated name", cor.Left, cor.Right)
		}
		if !left.Has(cor.Left) {
			return nil, fmt.Errorf("correspondence %s: %s has no attribute %q", cor.Name, left.Name(), cor.Left)
		}
		if !right.Has(cor.Right) {
			return nil, fmt.Errorf("correspondence %s: %s has no attribute %q", cor.Name, right.Name(), cor.Right)
		}
		if lk, rk := left.KindOf(cor.Left), right.KindOf(cor.Right); lk != rk {
			return nil, fmt.Errorf("correspondence %s: kind mismatch %s:%s vs %s:%s",
				cor.Name, cor.Left, lk, cor.Right, rk)
		}
		if _, dup := c.byName[cor.Name]; dup {
			return nil, fmt.Errorf("correspondence %s: duplicate integrated name", cor.Name)
		}
		c.byName[cor.Name] = cor
		c.list = append(c.list, cor)
	}
	return c, nil
}

// MustNewCorrespondences panics on error; for literals in tests/examples.
func MustNewCorrespondences(left, right *Schema, list []Correspondence) *Correspondences {
	c, err := NewCorrespondences(left, right, list)
	if err != nil {
		panic(err)
	}
	return c
}

// Left returns the left schema.
func (c *Correspondences) Left() *Schema { return c.left }

// Right returns the right schema.
func (c *Correspondences) Right() *Schema { return c.right }

// List returns the correspondences in declaration order.
func (c *Correspondences) List() []Correspondence {
	return append([]Correspondence(nil), c.list...)
}

// Names returns the integrated attribute names, sorted, i.e. the candidate
// attributes the prototype's setup_extkey offers for extended-key
// selection.
func (c *Correspondences) Names() []string {
	out := make([]string, 0, len(c.list))
	for _, cor := range c.list {
		out = append(out, cor.Name)
	}
	sort.Strings(out)
	return out
}

// ByName resolves an integrated attribute name to its correspondence.
func (c *Correspondences) ByName(name string) (Correspondence, bool) {
	cor, ok := c.byName[name]
	return cor, ok
}

// LeftAttr returns the left-relation attribute for an integrated name.
func (c *Correspondences) LeftAttr(name string) (string, bool) {
	cor, ok := c.byName[name]
	return cor.Left, ok
}

// RightAttr returns the right-relation attribute for an integrated name.
func (c *Correspondences) RightAttr(name string) (string, bool) {
	cor, ok := c.byName[name]
	return cor.Right, ok
}

// Package schema describes relation schemas: named attributes with typed
// domains, one or more candidate keys, and the cross-database attribute
// correspondences that the paper assumes were established during schema
// integration (§3.1).
//
// The entity-identification problem is posed at the instance level; the
// schema package only records the results of the (out-of-scope) schema
// integration phase: which attributes exist, which attribute combinations
// are candidate keys, and which attributes of two relations are
// semantically equivalent.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"entityid/internal/value"
)

// Attribute is a named, typed column of a relation. The zero Kind
// (value.KindNull) defaults to string on schema construction, so
// literal attribute lists may omit it; no stored attribute ever has
// kind null (KindOf reserves that for "attribute absent").
type Attribute struct {
	Name string
	Kind value.Kind
}

// Schema describes a relation: its name, ordered attributes, and candidate
// keys. Each candidate key is a set of attribute names; per the paper
// (§3.1, footnote 1), a relation with no declared key is treated as having
// its entire attribute set as the key.
type Schema struct {
	name  string
	attrs []Attribute
	index map[string]int
	keys  [][]string
}

// New builds a schema. Attribute names must be unique and non-empty; each
// key must reference declared attributes. If no keys are given, the entire
// attribute set becomes the single candidate key.
func New(name string, attrs []Attribute, keys ...[]string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: relation name is empty")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("schema %s: no attributes", name)
	}
	s := &Schema{
		name:  name,
		attrs: append([]Attribute(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema %s: attribute %d has empty name", name, i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("schema %s: duplicate attribute %q", name, a.Name)
		}
		if a.Kind == value.KindNull {
			s.attrs[i].Kind = value.KindString
		}
		s.index[a.Name] = i
	}
	if len(keys) == 0 {
		all := make([]string, len(attrs))
		for i, a := range s.attrs {
			all[i] = a.Name
		}
		keys = [][]string{all}
	}
	for _, k := range keys {
		if len(k) == 0 {
			return nil, fmt.Errorf("schema %s: empty candidate key", name)
		}
		seen := map[string]bool{}
		kk := append([]string(nil), k...)
		for _, a := range kk {
			if _, ok := s.index[a]; !ok {
				return nil, fmt.Errorf("schema %s: key attribute %q not declared", name, a)
			}
			if seen[a] {
				return nil, fmt.Errorf("schema %s: key repeats attribute %q", name, a)
			}
			seen[a] = true
		}
		s.keys = append(s.keys, kk)
	}
	return s, nil
}

// MustNew is New that panics on error; for literals in tests and examples.
func MustNew(name string, attrs []Attribute, keys ...[]string) *Schema {
	s, err := New(name, attrs, keys...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attrs returns a copy of the attribute list in declaration order.
func (s *Schema) Attrs() []Attribute {
	return append([]Attribute(nil), s.attrs...)
}

// AttrNames returns the attribute names in declaration order.
func (s *Schema) AttrNames() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Index returns the position of the named attribute, or -1 if absent.
func (s *Schema) Index(attr string) int {
	i, ok := s.index[attr]
	if !ok {
		return -1
	}
	return i
}

// Has reports whether the schema declares the named attribute.
func (s *Schema) Has(attr string) bool { return s.Index(attr) >= 0 }

// Attr returns the attribute at position i.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// KindOf returns the declared kind of the named attribute; KindNull if the
// attribute is not declared.
func (s *Schema) KindOf(attr string) value.Kind {
	i := s.Index(attr)
	if i < 0 {
		return value.KindNull
	}
	return s.attrs[i].Kind
}

// Keys returns copies of the candidate keys. The first key is the primary
// identification key K_R used in matching tables.
func (s *Schema) Keys() [][]string {
	out := make([][]string, len(s.keys))
	for i, k := range s.keys {
		out[i] = append([]string(nil), k...)
	}
	return out
}

// PrimaryKey returns a copy of the first candidate key.
func (s *Schema) PrimaryKey() []string {
	return append([]string(nil), s.keys[0]...)
}

// IsKey reports whether attrs is exactly one of the declared candidate
// keys (order-insensitive).
func (s *Schema) IsKey(attrs []string) bool {
	want := sortedCopy(attrs)
	for _, k := range s.keys {
		if equalStrings(sortedCopy(k), want) {
			return true
		}
	}
	return false
}

// Extend returns a new schema with the given attributes appended. It is
// the schema-level counterpart of the paper's R → R′ extension step: the
// extended relation carries the missing extended-key attributes. Candidate
// keys are preserved. Extending with an attribute that already exists is
// an error.
func (s *Schema) Extend(name string, extra []Attribute) (*Schema, error) {
	attrs := append(s.Attrs(), extra...)
	return New(name, attrs, s.Keys()...)
}

// Project returns a new schema containing only the named attributes, in
// the given order, with the whole projection as its key (projection does
// not in general preserve keys).
func (s *Schema) Project(name string, attrs []string) (*Schema, error) {
	out := make([]Attribute, 0, len(attrs))
	for _, a := range attrs {
		i := s.Index(a)
		if i < 0 {
			return nil, fmt.Errorf("schema %s: project: no attribute %q", s.name, a)
		}
		out = append(out, s.attrs[i])
	}
	return New(name, out)
}

// Equal reports whether two schemas have the same name, attributes (in
// order, with kinds) and candidate keys (in order).
func (s *Schema) Equal(o *Schema) bool {
	if s.name != o.name || len(s.attrs) != len(o.attrs) || len(s.keys) != len(o.keys) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	for i := range s.keys {
		if !equalStrings(s.keys[i], o.keys[i]) {
			return false
		}
	}
	return true
}

// String renders the schema as Name(attr:kind, ..., key=(a,b)).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", a.Name, a.Kind)
	}
	for _, k := range s.keys {
		fmt.Fprintf(&b, ", key=(%s)", strings.Join(k, ","))
	}
	b.WriteByte(')')
	return b.String()
}

func sortedCopy(ss []string) []string {
	out := append([]string(nil), ss...)
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
